module github.com/gables-model/gables

go 1.22
