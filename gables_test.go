package gables_test

import (
	"testing"

	gables "github.com/gables-model/gables"
)

// TestQuickstartFigure6 exercises the public façade end to end on the
// paper's appendix numbers, exactly as the README's quick start does.
func TestQuickstartFigure6(t *testing.T) {
	soc, err := gables.TwoIP("demo", gables.Gops(40), gables.GBs(10), 5,
		gables.GBs(6), gables.GBs(15))
	if err != nil {
		t.Fatal(err)
	}
	m, err := gables.New(soc)
	if err != nil {
		t.Fatal(err)
	}
	u, err := gables.TwoIPUsecase("fig6b", 0.75, 8, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Evaluate(u)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Attainable.Gops(); got < 1.32 || got > 1.34 {
		t.Errorf("Fig 6b via the façade = %v, want ~1.328", got)
	}
	if res.Bottleneck.Kind != "memory" {
		t.Errorf("bottleneck = %v, want memory", res.Bottleneck)
	}
}

func TestCatalogThroughFacade(t *testing.T) {
	chip := gables.Snapdragon835Like()
	m, index, err := chip.Model("CPU")
	if err != nil {
		t.Fatal(err)
	}
	flow := gables.GoogleLens(gables.FHD)
	u, err := flow.ToGables(len(m.SoC.IPs), index)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Evaluate(u)
	if err != nil {
		t.Fatal(err)
	}
	if res.Attainable <= 0 {
		t.Error("catalog usecase evaluation must produce a bound")
	}
}

func TestMeasurementThroughFacade(t *testing.T) {
	sys, err := gables.NewSimSystem(gables.SimSnapdragon835())
	if err != nil {
		t.Fatal(err)
	}
	_, fit, err := gables.MeasureRoofline(sys, "CPU", gables.SweepOptions{
		Pattern: gables.ReadWrite, MaxExp: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fit.Peak.Gops() < 7 || fit.Peak.Gops() > 8 {
		t.Errorf("measured CPU peak = %v, want ~7.5", fit.Peak.Gops())
	}
}

func TestChartThroughFacade(t *testing.T) {
	soc, _ := gables.TwoIP("demo", gables.Gops(40), gables.GBs(10), 5,
		gables.GBs(6), gables.GBs(15))
	m, _ := gables.New(soc)
	u, _ := gables.TwoIPUsecase("fig6b", 0.75, 8, 0.1)
	ch, err := gables.GablesChart(m, u, 0.01, 100, 49)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ch.SVG(800, 500); err != nil {
		t.Fatal(err)
	}
}

func TestNativeKernelThroughFacade(t *testing.T) {
	res, err := gables.RunNativeKernel(gables.Kernel{
		Name: "host", WorkingSet: 256 << 10, Trials: 2,
		FlopsPerWord: 8, Pattern: gables.ReadWrite,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rate <= 0 {
		t.Error("native kernel must report a rate")
	}
}
