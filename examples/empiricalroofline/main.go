// Empiricalroofline reproduces the paper's §IV methodology end to end on
// the simulated Snapdragon 835: sweep the Algorithm 1 micro-benchmark over
// operational intensities on each programmable engine, fit the pessimistic
// rooflines, derive the Gables model inputs from them, and run the mixing
// analysis. It also runs Algorithm 1 natively on the host CPU, the same
// code path the paper's Android app runs on silicon.
package main

import (
	"fmt"
	"log"

	gables "github.com/gables-model/gables"
)

func main() {
	sys, err := gables.NewSimSystem(gables.SimSnapdragon835())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Empirical rooflines on the simulated Snapdragon 835:")
	for _, probe := range []struct {
		ip      string
		pattern gables.KernelPattern
	}{
		{"CPU", gables.ReadWrite},
		{"GPU", gables.StreamCopy},
		{"DSP", gables.ReadWrite},
	} {
		_, fit, err := gables.MeasureRoofline(sys, probe.ip, gables.SweepOptions{
			Pattern: probe.pattern,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-4s %12s peak, %10s to DRAM (ridge at %.2f ops/B)\n",
			probe.ip, fit.Peak, fit.Bandwidth, float64(fit.RidgePoint()))
	}

	// §IV → §III: measured rooflines become model inputs.
	derived, err := gables.DeriveGables(sys, []string{"CPU", "GPU", "DSP"},
		map[string]gables.KernelPattern{"GPU": gables.StreamCopy})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nDerived Gables inputs (paper: A_GPU = 46.6 ≈ 47x):")
	for _, ip := range derived.IPs {
		fmt.Printf("  %-4s A=%-7.3g B=%s\n", ip.Name, ip.Acceleration, ip.Bandwidth)
	}

	// §IV-C mixing: should one offload to the GPU?
	mix, err := gables.Mixing(sys, gables.MixingOptions{
		CPU: "CPU", Accel: "GPU",
		Fractions:    []float64{0, 0.5, 1},
		FlopsPerWord: []int{8, 512, 8192}, // intensities 1, 64, 1024
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nMixing analysis (normalized to CPU-only at I=1):")
	fmt.Printf("%8s  %8s  %8s  %8s\n", "f", "I=1", "I=64", "I=1024")
	for i, p := range mix.Line(8) {
		fmt.Printf("%8.2f  %8.3f  %8.3f  %8.3f\n",
			p.F, p.Normalized, mix.Line(512)[i].Normalized, mix.Line(8192)[i].Normalized)
	}
	fmt.Println("-> low-intensity offload hurts; high-intensity offload wins big (paper: up to 39.4x)")

	// Bonus: the same kernel, natively on this host.
	fmt.Println("\nAlgorithm 1 natively on this machine (read+write, 8 MiB):")
	for _, fpw := range []int{2, 16, 128, 1024} {
		res, err := gables.RunNativeKernel(gables.Kernel{
			Name: "host", WorkingSet: 8 << 20, Trials: 3,
			FlopsPerWord: fpw, Pattern: gables.ReadWrite,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %4d flops/word -> %s\n", fpw, res.Rate)
	}
}
