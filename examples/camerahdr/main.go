// Camerahdr analyzes the paper's motivating camera usecases (Table I) on a
// Snapdragon-835-like chip: it derives Gables work fractions and
// intensities from each usecase's dataflow graph, finds the bottleneck per
// usecase, and shows the §II-B bandwidth wall at 4K high frame rate.
package main

import (
	"fmt"
	"log"

	gables "github.com/gables-model/gables"
)

func main() {
	chip := gables.Snapdragon835Like()
	m, index, err := chip.Model("CPU")
	if err != nil {
		log.Fatal(err)
	}

	flows := []*gables.Dataflow{
		gables.HDRPlus(gables.UHD4K),
		gables.VideoCapture(gables.UHD4K, 2),
		gables.VideoCaptureHFR(gables.UHD4K),
		gables.VideoPlaybackUI(gables.UHD4K),
		gables.GoogleLens(gables.FHD),
	}

	fmt.Printf("Camera usecases on %s (per-frame dataflows):\n\n", chip.Name)
	for _, flow := range flows {
		// Frame-rate feasibility: the usecase-level question a system
		// integrator asks first.
		rate, limiter, err := gables.MaxRate(flow, chip)
		if err != nil {
			log.Fatal(err)
		}

		// The Gables view: concurrent work fractions and intensities
		// derived from the same dataflow.
		u, err := flow.ToGables(len(m.SoC.IPs), index)
		if err != nil {
			log.Fatal(err)
		}
		res, err := m.Evaluate(u)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%-22s blocks: %v\n", flow.Name, flow.Blocks())
		fmt.Printf("%22s max rate %.1f items/s (limited by %s)\n", "", rate, limiter)
		fmt.Printf("%22s Gables bound %s, bottleneck %s\n\n",
			"", res.Attainable, res.Bottleneck)
	}

	// The §II-B back-of-envelope: 4K240 blows the DRAM budget.
	frame := gables.FrameBytes(gables.UHD4K, gables.YUV420)
	fmt.Printf("4K YUV420 frame: %s (paper: ~12 MB)\n", frame)
	hfr := gables.VideoCaptureHFR(gables.UHD4K)
	analysis, err := gables.AnalyzeRate(hfr, chip, 240)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4K @ 240 FPS HFR capture: DRAM demand %.1f GB/s against %s — feasible: %v\n",
		float64(analysis.DRAMDemand)/1e9, chip.DRAMBandwidth, analysis.Feasible)
	if !analysis.Feasible {
		maxRate, limiter, err := gables.MaxRate(hfr, chip)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("the chip sustains at most %.0f FPS at 4K (limited by %s)\n", maxRate, limiter)
	}
}
