// Quickstart walks through the paper's §III-C two-IP example (Figures
// 6a–6d) using the public gables API: define a SoC, assign a usecase, read
// the attainable-performance bound and its bottleneck, then fix the design
// step by step until it is balanced.
package main

import (
	"fmt"
	"log"

	gables "github.com/gables-model/gables"
)

func main() {
	// Hardware: Ppeak = 40 Gops/s CPU (B0 = 6 GB/s), a 5× accelerator
	// (B1 = 15 GB/s), 10 GB/s of off-chip bandwidth.
	step := func(title string, bpeakGB, f, i0, i1 float64) {
		soc, err := gables.TwoIP("demo", gables.Gops(40), gables.GBs(bpeakGB), 5,
			gables.GBs(6), gables.GBs(15))
		if err != nil {
			log.Fatal(err)
		}
		m, err := gables.New(soc)
		if err != nil {
			log.Fatal(err)
		}
		u, err := gables.TwoIPUsecase(title, f, gables.Intensity(i0), gables.Intensity(i1))
		if err != nil {
			log.Fatal(err)
		}
		res, err := m.Evaluate(u)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-52s -> %10s  (bottleneck: %s)\n", title, res.Attainable, res.Bottleneck)
	}

	fmt.Println("The paper's Figure 6 walk-through:")
	step("6a: all work on the CPU (f=0, I0=8)", 10, 0, 8, 0.1)
	step("6b: offload 75% to the accelerator (I1=0.1)", 10, 0.75, 8, 0.1)
	step("6c: triple memory bandwidth to 30 GB/s", 30, 0.75, 8, 0.1)
	step("6d: add reuse (I1=8), trim Bpeak to 20 GB/s", 20, 0.75, 8, 8)

	// The balanced design: confirm all rooflines meet, then print the
	// §III-C multi-roofline plot in the terminal.
	soc, err := gables.TwoIP("demo", gables.Gops(40), gables.GBs(20), 5,
		gables.GBs(6), gables.GBs(15))
	if err != nil {
		log.Fatal(err)
	}
	m, err := gables.New(soc)
	if err != nil {
		log.Fatal(err)
	}
	u, err := gables.TwoIPUsecase("balanced", 0.75, 8, 8)
	if err != nil {
		log.Fatal(err)
	}
	bal, err := gables.AnalyzeBalance(m, u)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nBalance of the final design (headroom 1.0 = at the bound):")
	for _, b := range bal {
		fmt.Printf("  %-18s headroom %.3f\n", b.Component, b.Headroom)
	}
	if gables.IsBalanced(bal, 1e-9) {
		fmt.Println("  -> perfectly balanced: all three rooflines equal at I = 8")
	}

	ch, err := gables.GablesChart(m, u, 0.05, 200, 65)
	if err != nil {
		log.Fatal(err)
	}
	art, err := ch.ASCII(72, 18)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n" + art)
}
