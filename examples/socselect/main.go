// Socselect does the §I down-selection task: "end-users (i.e., application
// designers) need to evaluate several different trade-offs between the
// different SoCs to determine which SoC best suits their performance,
// power and cost targets." It runs the standard 13-usecase suite over
// candidate chips — two catalog generations and a next-generation sketch —
// and picks the cheapest candidate whose *every* usecase passes (the
// average being immaterial).
package main

import (
	"fmt"
	"log"

	gables "github.com/gables-model/gables"
)

// nextGen sketches a future chip: roughly double the 835-like entry.
func nextGen() *gables.Chip {
	c := gables.Snapdragon835Like()
	c.Name = "next-gen-candidate"
	c.DRAMBandwidth = gables.GBs(51.2)
	for i := range c.Fabrics {
		c.Fabrics[i].Bandwidth *= 1.8
	}
	for i := range c.Blocks {
		c.Blocks[i].Peak *= 2
		c.Blocks[i].Bandwidth *= 1.7
	}
	return c
}

func main() {
	type candidate struct {
		chip *gables.Chip
		cost float64 // relative unit cost
	}
	candidates := []candidate{
		{gables.Snapdragon821Like(), 0.7},
		{gables.Snapdragon835Like(), 1.0},
		{nextGen(), 1.6},
	}

	suite := gables.StandardSuite()
	fmt.Printf("Down-selecting across %d candidates on a %d-usecase suite\n\n",
		len(candidates), len(suite))

	bestCost := -1.0
	var best string
	for _, c := range candidates {
		rep, err := gables.AnalyzeSuite(c.chip, suite)
		if err != nil {
			log.Fatal(err)
		}
		binding := rep.Entries[rep.Binding]
		verdict := "FAILS"
		if rep.AllMet {
			verdict = "passes"
			if bestCost < 0 || c.cost < bestCost {
				bestCost, best = c.cost, c.chip.Name
			}
		}
		fmt.Printf("%-24s cost %.1f  %s the suite; binding usecase %q (margin %.2f, %s)\n",
			c.chip.Name, c.cost, verdict, binding.Usecase, binding.Margin, binding.Limiter)
		failed := 0
		for _, e := range rep.Entries {
			if !e.Met {
				fmt.Printf("%26s missing: %-28s needs %.0f, sustains %.0f items/s\n",
					"", e.Usecase, e.TargetRate, e.MaxRate)
				failed++
			}
		}
	}

	if best == "" {
		fmt.Println("\nno candidate satisfies every usecase — revisit targets or designs")
		return
	}
	fmt.Printf("\nselected: %s (cheapest candidate passing every usecase)\n", best)
	fmt.Println("note: averages never entered the decision — only each suite's worst margin (§I).")
}
