// Designspace does the early-stage exploration §VII's conjectures
// motivate: given a candidate usecase, sweep accelerator strength and
// off-chip bandwidth, find the sufficient Bpeak and the best work split,
// and print the attainable-performance landscape an architect would use
// to pick an IP "and roughly how big" — years before software exists.
package main

import (
	"fmt"
	"log"

	gables "github.com/gables-model/gables"
)

func main() {
	const (
		ppeakGops = 10  // CPU complex reference
		i0        = 4   // CPU-side reuse of the target usecase
		i1        = 2   // accelerator-side reuse (before tuning)
		f         = 0.8 // work the accelerator is meant to absorb
	)

	fmt.Println("Candidate usecase: f=0.8 offload, I0=4, I1=2 ops/B on a 10 Gops/s CPU")
	fmt.Println("\nHow big an accelerator is worth building? (Bpeak=12 GB/s)")
	fmt.Printf("%6s  %12s  %s\n", "A", "Pattainable", "bottleneck")
	for _, a := range []float64{2, 4, 8, 16, 32, 64} {
		res := evaluate(a, 12, f, i0, i1)
		fmt.Printf("%6.0f  %12s  %s\n", a, res.Attainable, res.Bottleneck)
	}
	fmt.Println("-> acceleration beyond the memory wall is wasted silicon (Amdahl again)")

	fmt.Println("\nHow much off-chip bandwidth does the A=16 design deserve?")
	m := model(16, 12)
	u, err := gables.TwoIPUsecase("target", f, i0, i1)
	if err != nil {
		log.Fatal(err)
	}
	pts, err := gables.SweepMemoryBandwidth(m, u, []gables.BytesPerSec{
		gables.GBs(4), gables.GBs(8), gables.GBs(12), gables.GBs(16),
		gables.GBs(24), gables.GBs(32), gables.GBs(48),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%10s  %12s  %s\n", "Bpeak", "Pattainable", "bottleneck")
	for _, p := range pts {
		fmt.Printf("%8.0f G  %12s  %s\n", p.X/1e9, p.Attainable, p.Bottleneck)
	}
	suff, err := gables.SufficientBandwidth(m, u)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("-> sufficient Bpeak: %s; anything more buys nothing for this usecase\n", suff)

	fmt.Println("\nAnd if software could retune the split?")
	split, err := gables.BestSplit(m, i0, i1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("-> best f = %.3f achieving %s (%s)\n",
		split.F, split.Attainable, split.Bottleneck)

	fmt.Println("\nHow much accelerator-side reuse unlocks the full design?")
	ipts, err := gables.SweepIntensity(m, u, 1, []gables.Intensity{1, 2, 4, 8, 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%6s  %12s  %s\n", "I1", "Pattainable", "bottleneck")
	for _, p := range ipts {
		fmt.Printf("%6.0f  %12s  %s\n", p.X, p.Attainable, p.Bottleneck)
	}
}

func model(a, bpeakGB float64) *gables.Model {
	soc, err := gables.TwoIP("candidate", gables.Gops(10), gables.GBs(bpeakGB), a,
		gables.GBs(8), gables.GBs(16))
	if err != nil {
		log.Fatal(err)
	}
	m, err := gables.New(soc)
	if err != nil {
		log.Fatal(err)
	}
	return m
}

func evaluate(a, bpeakGB, f, i0, i1 float64) *gables.Result {
	u, err := gables.TwoIPUsecase("target", f, gables.Intensity(i0), gables.Intensity(i1))
	if err != nil {
		log.Fatal(err)
	}
	res, err := model(a, bpeakGB).Evaluate(u)
	if err != nil {
		log.Fatal(err)
	}
	return res
}
