// Videostream models the paper's Figure 4 usecase — streaming Internet
// content over WiFi — and exercises the §V extensions on it: a memory-side
// system cache that filters the decoder's DRAM traffic, the fabric
// hierarchy as the interconnect extension, and the serialized-work
// comparison.
package main

import (
	"fmt"
	"log"

	gables "github.com/gables-model/gables"
)

func main() {
	chip := gables.Snapdragon835Like()
	flow := gables.StreamingWiFi(gables.FHD, 30)

	fmt.Printf("Usecase: %s\n", flow.Name)
	fmt.Println("stages (per second of stream):")
	for _, s := range flow.Stages {
		fmt.Printf("  %-18s on %-8s %12.0f ops, %s in, %s out\n",
			s.Name, s.Block, float64(s.Ops), s.BytesIn, s.BytesOut)
	}

	// Steady-state feasibility at real time.
	analysis, err := gables.AnalyzeRate(flow, chip, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreal-time feasible: %v (DRAM utilization %.1f%%)\n",
		analysis.Feasible, 100*analysis.DRAMUtilization)

	// The Gables view with the fabric hierarchy (§V-B) attached.
	m, index, err := chip.Model("CPU")
	if err != nil {
		log.Fatal(err)
	}
	u, err := flow.ToGables(len(m.SoC.IPs), index)
	if err != nil {
		log.Fatal(err)
	}
	base, err := m.Evaluate(u)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGables bound with fabric hierarchy: %s (bottleneck %s)\n",
		base.Attainable, base.Bottleneck)

	// §V-A: a memory-side system cache that captures the decoder's
	// frame-buffer reuse (the display controller re-reads what the
	// decoder just wrote).
	miss := make([]float64, len(m.SoC.IPs))
	for i := range miss {
		miss[i] = 1
	}
	miss[index["VDEC"]] = 0.3
	miss[index["Display"]] = 0.2
	withCache := &gables.Model{SoC: m.SoC, Buses: m.Buses,
		SRAM: &gables.SRAM{Name: "system cache", MissRatio: miss}}
	cached, err := withCache.Evaluate(u)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with a memory-side system cache (§V-A): %s (bottleneck %s)\n",
		cached.Attainable, cached.Bottleneck)
	fmt.Printf("off-chip traffic per frame-second: %s -> %s\n",
		base.MemoryTraffic, cached.MemoryTraffic)

	// §V-C: what if the stages ran exclusively instead of concurrently?
	serial, err := m.EvaluateSerialized(u)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconcurrent vs serialized (§V-C): %s vs %s (%.2fx from concurrency)\n",
		base.Attainable, serial.Attainable,
		float64(base.Attainable)/float64(serial.Attainable))
}
