package gables_test

import (
	"fmt"

	gables "github.com/gables-model/gables"
)

// Example walks the paper's two-IP story end to end: a low-reuse offload
// starves on memory; adding reuse and right-sizing bandwidth balances the
// design at 160 Gops/s.
func Example() {
	evaluate := func(bpeakGB, f, i0, i1 float64) {
		soc, _ := gables.TwoIP("demo", gables.Gops(40), gables.GBs(bpeakGB), 5,
			gables.GBs(6), gables.GBs(15))
		m, _ := gables.New(soc)
		u, _ := gables.TwoIPUsecase("u", f, gables.Intensity(i0), gables.Intensity(i1))
		res, _ := m.Evaluate(u)
		fmt.Printf("Bpeak=%g f=%g I1=%g -> %s\n", bpeakGB, f, i1, res.Attainable)
	}
	evaluate(10, 0, 8, 0.1)    // Fig 6a
	evaluate(10, 0.75, 8, 0.1) // Fig 6b
	evaluate(30, 0.75, 8, 0.1) // Fig 6c
	evaluate(20, 0.75, 8, 8)   // Fig 6d
	// Output:
	// Bpeak=10 f=0 I1=0.1 -> 40 Gops/s
	// Bpeak=10 f=0.75 I1=0.1 -> 1.328 Gops/s
	// Bpeak=30 f=0.75 I1=0.1 -> 2 Gops/s
	// Bpeak=20 f=0.75 I1=8 -> 160 Gops/s
}

// ExampleSufficientBandwidth answers an early-design question directly:
// how much off-chip bandwidth does this usecase deserve?
func ExampleSufficientBandwidth() {
	soc, _ := gables.TwoIP("candidate", gables.Gops(40), gables.GBs(30), 5,
		gables.GBs(6), gables.GBs(15))
	m, _ := gables.New(soc)
	u, _ := gables.TwoIPUsecase("target", 0.75, 8, 8)
	suff, _ := gables.SufficientBandwidth(m, u)
	fmt.Println(suff)
	// Output: 20 GB/s
}

// ExampleMaxRate asks the usecase-level question a system integrator asks
// first: will 4K high-frame-rate capture hit its frame rate on this chip?
func ExampleMaxRate() {
	chip := gables.Snapdragon835Like()
	flow := gables.VideoCaptureHFR(gables.UHD4K)
	rate, limiter, _ := gables.MaxRate(flow, chip)
	fmt.Printf("%.0f FPS (limited by %s)\n", rate, limiter)
	// Output: 105 FPS (limited by VENC link)
}

// ExampleMeasureRoofline applies the paper's §IV methodology to the
// simulated Snapdragon 835 and recovers the published CPU ceilings.
func ExampleMeasureRoofline() {
	sys, _ := gables.NewSimSystem(gables.SimSnapdragon835())
	_, fit, _ := gables.MeasureRoofline(sys, "CPU", gables.SweepOptions{
		Pattern: gables.ReadWrite,
	})
	fmt.Printf("peak %.1f GFLOPS/s, bandwidth %.1f GB/s\n",
		fit.Peak.Gops(), fit.Bandwidth.GB())
	// Output: peak 7.5 GFLOPS/s, bandwidth 15.0 GB/s
}
