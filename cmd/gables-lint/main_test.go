package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/gables-model/gables/internal/analysis/suite"
)

// writeModule lays out a throwaway module on disk so Lint exercises the
// same `go list -export` + type-check path that CI uses, rather than a
// mocked loader.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		p := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestLintReportsSeededViolation(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module example.com/seeded\n\ngo 1.22\n",
		"seeded.go": `package seeded

// Match mirrors the pre-fix tag-match bug from internal/experiments.
func Match(frac float64) bool {
	return frac == 0.8
}
`,
	})
	var buf bytes.Buffer
	n, err := Lint(dir, []string{"./..."}, suite.All, true, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("findings = %d, want 1; output:\n%s", n, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "seeded.go:5:") || !strings.Contains(out, "floatcmp") {
		t.Errorf("finding not attributed to seeded.go:5 / floatcmp:\n%s", out)
	}
}

func TestLintHonorsSuppression(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module example.com/sup\n\ngo 1.22\n",
		"sup.go": `package sup

func Match(frac float64) bool {
	//lint:ignore floatcmp exact sentinel by contract
	return frac == 0.8
}
`,
	})
	var buf bytes.Buffer
	n, err := Lint(dir, []string{"./..."}, suite.All, true, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("findings = %d, want 0 (suppressed); output:\n%s", n, buf.String())
	}
}

func TestLintReportsStaleDirective(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module example.com/stale\n\ngo 1.22\n",
		"stale.go": `package stale

func Fine(a, b int) bool {
	//lint:ignore floatcmp nothing here actually trips the analyzer
	return a == b
}
`,
	})
	var buf bytes.Buffer
	n, err := Lint(dir, []string{"./..."}, suite.All, true, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || !strings.Contains(buf.String(), "unused //lint: directive") {
		t.Fatalf("findings = %d, want 1 stale-directive report; output:\n%s", n, buf.String())
	}
}

func TestLintSkipsStaleCheckWhenFiltered(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module example.com/filtered\n\ngo 1.22\n",
		"f.go": `package filtered

func Fine(a, b int) bool {
	//lint:ignore floatcmp aimed at an analyzer this run skips
	return a == b
}
`,
	})
	only, ok := suite.ByName("maporder")
	if !ok {
		t.Fatal("maporder analyzer missing from suite")
	}
	var buf bytes.Buffer
	n, err := Lint(dir, []string{"./..."}, only, true, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("filtered run reported %d finding(s); a partial run cannot judge staleness:\n%s", n, buf.String())
	}
}

// TestLintRepositoryClean is the in-process twin of CI's blocking
// `go run ./cmd/gables-lint ./...` step: the tree must lint clean.
func TestLintRepositoryClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-repository lint is not a short test")
	}
	var buf bytes.Buffer
	n, err := Lint(filepath.Join("..", ".."), []string{"./..."}, suite.All, true, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("repository has %d lint finding(s); fix them or add //lint:ignore with a reason:\n%s", n, buf.String())
	}
}

func TestLintTestFlagExcludesTestFiles(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module example.com/tf\n\ngo 1.22\n",
		"tf.go":  "package tf\n",
		"tf_test.go": `package tf

import "fmt"

// dump trips maporder, which (unlike floatcmp) applies to test files too.
func dump(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v)
	}
}
`,
	})
	n, err := Lint(dir, []string{"./..."}, suite.All, false, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("tests=false still analyzed _test.go files: %d finding(s)", n)
	}
	var buf bytes.Buffer
	n, err = Lint(dir, []string{"./..."}, suite.All, true, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || !strings.Contains(buf.String(), "maporder") {
		t.Fatalf("tests=true run = %d finding(s), want the 1 maporder hit:\n%s", n, buf.String())
	}
}
