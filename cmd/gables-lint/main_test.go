package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/gables-model/gables/internal/analysis"
	"github.com/gables-model/gables/internal/analysis/suite"
)

// writeModule lays out a throwaway module on disk so Lint exercises the
// same `go list -export` + type-check path that CI uses, rather than a
// mocked loader.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		p := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func lintAll(t *testing.T, dir string, opt Options) []analysis.Finding {
	t.Helper()
	findings, err := Lint(dir, []string{"./..."}, suite.All, opt)
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

func TestLintReportsSeededViolation(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module example.com/seeded\n\ngo 1.22\n",
		"seeded.go": `package seeded

// Match mirrors the pre-fix tag-match bug from internal/experiments.
func Match(frac float64) bool {
	return frac == 0.8
}
`,
	})
	findings := lintAll(t, dir, Options{Tests: true})
	if len(findings) != 1 {
		t.Fatalf("findings = %d, want 1: %v", len(findings), findings)
	}
	f := findings[0]
	if f.File != "seeded.go" || f.Line != 5 || f.Analyzer != "floatcmp" || f.Severity != "error" {
		t.Errorf("finding not attributed to seeded.go:5 / floatcmp / error: %+v", f)
	}
}

func TestLintHonorsSuppression(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module example.com/sup\n\ngo 1.22\n",
		"sup.go": `package sup

func Match(frac float64) bool {
	//lint:ignore floatcmp exact sentinel by contract
	return frac == 0.8
}
`,
	})
	if findings := lintAll(t, dir, Options{Tests: true}); len(findings) != 0 {
		t.Fatalf("findings = %d, want 0 (suppressed): %v", len(findings), findings)
	}
}

func TestLintReportsStaleDirective(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module example.com/stale\n\ngo 1.22\n",
		"stale.go": `package stale

func Fine(a, b int) bool {
	//lint:ignore floatcmp nothing here actually trips the analyzer
	return a == b
}
`,
	})
	findings := lintAll(t, dir, Options{Tests: true})
	if len(findings) != 1 || !strings.Contains(findings[0].Message, "unused //lint: directive") {
		t.Fatalf("findings = %v, want 1 stale-directive report", findings)
	}
	if findings[0].Severity != "warning" {
		t.Errorf("stale-directive severity = %q, want warning", findings[0].Severity)
	}
}

func TestLintSkipsStaleCheckWhenFiltered(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module example.com/filtered\n\ngo 1.22\n",
		"f.go": `package filtered

func Fine(a, b int) bool {
	//lint:ignore floatcmp aimed at an analyzer this run skips
	return a == b
}
`,
	})
	only, ok := suite.ByName("maporder")
	if !ok {
		t.Fatal("maporder analyzer missing from suite")
	}
	findings, err := Lint(dir, []string{"./..."}, only, Options{Tests: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("filtered run reported %d finding(s); a partial run cannot judge staleness:\n%v", len(findings), findings)
	}
}

// TestLintRepositoryClean is the in-process twin of CI's blocking
// `go run ./cmd/gables-lint ./...` step: the tree must lint clean under
// the full suite, including the stale-directive meta-check.
func TestLintRepositoryClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-repository lint is not a short test")
	}
	findings := lintAll(t, filepath.Join("..", ".."), Options{Tests: true})
	for _, f := range findings {
		t.Errorf("repository lint finding (fix it or add //lint:ignore with a reason): %s", f)
	}
}

func TestLintTestFlagExcludesTestFiles(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module example.com/tf\n\ngo 1.22\n",
		"tf.go":  "package tf\n",
		"tf_test.go": `package tf

import "fmt"

// dump trips maporder, which (unlike floatcmp) applies to test files too.
func dump(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v)
	}
}
`,
	})
	if findings := lintAll(t, dir, Options{Tests: false}); len(findings) != 0 {
		t.Fatalf("tests=false still analyzed _test.go files: %v", findings)
	}
	findings := lintAll(t, dir, Options{Tests: true})
	if len(findings) != 1 || findings[0].Analyzer != "maporder" {
		t.Fatalf("tests=true run = %v, want the 1 maporder hit", findings)
	}
}

// TestLintTestOnlyPackage covers the suite-runner edge case of a package
// directory holding nothing but test files: it must be analyzed when
// tests are on, skipped cleanly (no error, no findings) when off.
func TestLintTestOnlyPackage(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module example.com/onlytests\n\ngo 1.22\n",
		"probe/probe_test.go": `package probe

import "fmt"

func dump(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v)
	}
}
`,
	})
	if findings := lintAll(t, dir, Options{Tests: false}); len(findings) != 0 {
		t.Fatalf("tests=false found %v in a test-only package", findings)
	}
	findings := lintAll(t, dir, Options{Tests: true})
	if len(findings) != 1 || findings[0].Analyzer != "maporder" || findings[0].File != "probe/probe_test.go" {
		t.Fatalf("test-only package findings = %v, want 1 maporder hit in probe/probe_test.go", findings)
	}
}

// TestLintZeroFindingsEverywhere covers the all-clean path: every
// analyzer runs and returns nothing, and the (nil) finding list still
// serializes as an empty JSON array.
func TestLintZeroFindingsEverywhere(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":   "module example.com/clean\n\ngo 1.22\n",
		"clean.go": "package clean\n\n// Nothing reports anything here.\nfunc Add(a, b int) int { return a + b }\n",
	})
	findings := lintAll(t, dir, Options{Tests: true})
	if len(findings) != 0 {
		t.Fatalf("clean module produced findings: %v", findings)
	}
	var buf bytes.Buffer
	if err := analysis.WriteJSON(&buf, findings); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Errorf("zero findings serialized as %q, want []", buf.String())
	}
}

// TestLintOverlappingSuppressionsOneLine pins the resolution order when
// two directives cover the same diagnostic line: the first in source
// order (the line-above form) claims the diagnostic, and the trailing
// same-line directive is reported stale rather than silently double
// counted.
func TestLintOverlappingSuppressionsOneLine(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module example.com/overlap\n\ngo 1.22\n",
		"o.go": `package overlap

func Match(frac float64) bool {
	//lint:ignore floatcmp first form: claims the diagnostic below
	return frac == 0.8 //lint:ignore floatcmp second form on the same line: never consulted
}
`,
	})
	findings := lintAll(t, dir, Options{Tests: true})
	if len(findings) != 1 {
		t.Fatalf("findings = %v, want exactly the stale second directive", findings)
	}
	f := findings[0]
	if !strings.Contains(f.Message, "unused //lint: directive") || f.Line != 5 {
		t.Errorf("overlapping suppression resolution changed: %+v", f)
	}
}

// TestLintFixDeletesStaleDirective exercises the -fix pipeline
// end-to-end: the stale directive is deleted in place, the finding is
// marked Fixed, and a rerun comes back clean.
func TestLintFixDeletesStaleDirective(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module example.com/fixme\n\ngo 1.22\n",
		"fixme.go": `package fixme

func Fine(a, b int) bool {
	//lint:ignore floatcmp stale: ints never trip floatcmp
	return a == b
}
`,
	})
	findings := lintAll(t, dir, Options{Tests: true, Fix: true})
	if len(findings) != 1 || !findings[0].Fixed {
		t.Fatalf("fix run findings = %v, want 1 finding marked fixed", findings)
	}
	src, err := os.ReadFile(filepath.Join(dir, "fixme.go"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(src), "lint:ignore") {
		t.Errorf("stale directive survived -fix:\n%s", src)
	}
	if strings.Contains(string(src), "\n\n\treturn") {
		t.Errorf("-fix left a blank-line residue:\n%s", src)
	}
	if rerun := lintAll(t, dir, Options{Tests: true}); len(rerun) != 0 {
		t.Errorf("tree not clean after -fix: %v", rerun)
	}
}
