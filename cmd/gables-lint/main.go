// Command gables-lint runs the repository's analyzer suite
// (internal/analysis/...) over Go packages and reports every finding that
// is not excused by a //lint:ignore directive. CI runs it as a blocking
// step:
//
//	go run ./cmd/gables-lint ./...
//
// Findings print as file:line:col text by default; -json emits the same
// findings as a machine-readable array (stable field order), and
// -sarif <file> additionally writes a SARIF 2.1.0 log for GitHub code
// scanning. -fix applies the suggested fixes some diagnostics carry
// (stale-directive deletion, //fp:lock refreshes) and reports what it
// changed; rerun afterwards to confirm the tree is clean.
//
// The tool type-checks each target package from source; imports are
// satisfied from compiled export data produced by `go list -export`, so a
// run needs no network access and no dependencies beyond the Go
// toolchain. Exit status is 0 when the tree is clean, 1 when there are
// findings (fixed or not), 2 on operational errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/gables-model/gables/internal/analysis"
	"github.com/gables-model/gables/internal/analysis/suite"
)

const infoURI = "https://github.com/gables-model/gables"

func main() {
	var (
		list      = flag.Bool("list", false, "list the analyzers and exit")
		only      = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		tests     = flag.Bool("tests", true, "also analyze _test.go files")
		jsonOut   = flag.Bool("json", false, "emit findings as a JSON array on stdout instead of text")
		sarifPath = flag.String("sarif", "", `also write a SARIF 2.1.0 log to this file ("-" for stdout)`)
		fix       = flag.Bool("fix", false, "apply suggested fixes (stale directives, //fp:lock refreshes) in place")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: gables-lint [flags] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the Gables analyzer suite; see DESIGN.md §5 and §10.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range suite.All {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := suite.All
	if *only != "" {
		var ok bool
		analyzers, ok = suite.ByName(strings.Split(*only, ",")...)
		if !ok {
			fmt.Fprintf(os.Stderr, "gables-lint: unknown analyzer in -only=%s (use -list)\n", *only)
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := Lint(".", patterns, analyzers, Options{Tests: *tests, Fix: *fix})
	if err != nil {
		fmt.Fprintf(os.Stderr, "gables-lint: %v\n", err)
		os.Exit(2)
	}

	if *jsonOut {
		if err := analysis.WriteJSON(os.Stdout, findings); err != nil {
			fmt.Fprintf(os.Stderr, "gables-lint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if *sarifPath != "" {
		if err := writeSARIF(*sarifPath, findings); err != nil {
			fmt.Fprintf(os.Stderr, "gables-lint: %v\n", err)
			os.Exit(2)
		}
	}
	if n := len(findings); n > 0 {
		fixed := 0
		for _, f := range findings {
			if f.Fixed {
				fixed++
			}
		}
		if fixed > 0 {
			fmt.Fprintf(os.Stderr, "gables-lint: %d finding(s), %d fixed in place — rerun to confirm\n", n, fixed)
		} else {
			fmt.Fprintf(os.Stderr, "gables-lint: %d finding(s)\n", n)
		}
		os.Exit(1)
	}
}

func writeSARIF(path string, findings []analysis.Finding) error {
	w := io.Writer(os.Stdout)
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return analysis.WriteSARIF(w, "gables-lint", infoURI, suite.Rules(), findings)
}

// Options tune a Lint run.
type Options struct {
	// Tests includes _test.go files (in-package and external).
	Tests bool
	// Fix applies each diagnostic's first suggested fix in place.
	Fix bool
}

// unit is one type-check target: a package's ordinary compilation or its
// external _test package.
type unit struct {
	path     string   // import path to check under
	files    []string // absolute source file names
	xtestFor string   // for external test units: path of the package under test
}

// Lint runs the analyzers over the packages matching patterns (resolved
// relative to dir) and returns the findings with repo-relative,
// slash-separated paths, sorted by position. The unused-directive
// staleness check is active only when the full suite runs, since a
// filtered run cannot tell a stale directive from one aimed at an
// analyzer that was skipped.
func Lint(dir string, patterns []string, analyzers []*analysis.Analyzer, opt Options) ([]analysis.Finding, error) {
	listed, err := analysis.GoList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	idx := analysis.NewExportIndex(listed)
	opts := analysis.RunOptions{ReportUnused: len(analyzers) == len(suite.All)}

	var units []unit
	for _, p := range listed {
		if p.Standard || p.Module == nil || p.ForTest != "" || p.IsTestBinary() {
			continue
		}
		files := absFiles(p.Dir, p.GoFiles)
		if opt.Tests {
			files = append(files, absFiles(p.Dir, p.TestGoFiles)...)
		}
		if len(files) > 0 {
			units = append(units, unit{path: p.ImportPath, files: files})
		}
		if opt.Tests && len(p.XTestGoFiles) > 0 {
			units = append(units, unit{
				path:     p.ImportPath + "_test",
				files:    absFiles(p.Dir, p.XTestGoFiles),
				xtestFor: p.ImportPath,
			})
		}
	}
	sort.Slice(units, func(i, j int) bool { return units[i].path < units[j].path })

	absDir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	var findings []analysis.Finding
	for _, u := range units {
		// Each unit gets its own loader: an external _test package must
		// import the test-variant export of the package under test (it
		// may use helpers declared in in-package _test.go files), and
		// loaders cache imports by path.
		loader := analysis.NewLoader()
		loader.Lookup = idx.Lookup(u.xtestFor)
		pkg, err := loader.CheckFiles(u.path, u.files)
		if err != nil {
			return findings, err
		}
		diags, err := analysis.Run(pkg, analyzers, opts)
		if err != nil {
			return findings, err
		}
		var fixed []bool
		if opt.Fix {
			if fixed, _, err = analysis.ApplyFixes(pkg.Fset, diags); err != nil {
				return findings, err
			}
		}
		for i, d := range diags {
			pos := d.Position(pkg.Fset)
			name := pos.Filename
			if rel, err := filepath.Rel(absDir, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				name = filepath.ToSlash(rel)
			}
			f := analysis.Finding{
				File:     name,
				Line:     pos.Line,
				Column:   pos.Column,
				Analyzer: d.Analyzer,
				Severity: d.Severity.String(),
				Message:  d.Message,
			}
			if fixed != nil {
				f.Fixed = fixed[i]
			}
			findings = append(findings, f)
		}
	}
	return findings, nil
}

func absFiles(dir string, names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = filepath.Join(dir, n)
	}
	return out
}
