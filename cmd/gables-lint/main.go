// Command gables-lint runs the repository's analyzer suite
// (internal/analysis/...) over Go packages and reports every finding that
// is not excused by a //lint:ignore directive. CI runs it as a blocking
// step:
//
//	go run ./cmd/gables-lint ./...
//
// The tool type-checks each target package from source; imports are
// satisfied from compiled export data produced by `go list -export`, so a
// run needs no network access and no dependencies beyond the Go
// toolchain. Exit status is 0 when the tree is clean, 1 when there are
// findings, 2 on operational errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/gables-model/gables/internal/analysis"
	"github.com/gables-model/gables/internal/analysis/suite"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list the analyzers and exit")
		only  = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		tests = flag.Bool("tests", true, "also analyze _test.go files")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: gables-lint [flags] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the Gables analyzer suite; see DESIGN.md §5.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range suite.All {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := suite.All
	if *only != "" {
		var ok bool
		analyzers, ok = suite.ByName(strings.Split(*only, ",")...)
		if !ok {
			fmt.Fprintf(os.Stderr, "gables-lint: unknown analyzer in -only=%s (use -list)\n", *only)
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := Lint(".", patterns, analyzers, *tests, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gables-lint: %v\n", err)
		os.Exit(2)
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "gables-lint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

// unit is one type-check target: a package's ordinary compilation or its
// external _test package.
type unit struct {
	path     string   // import path to check under
	files    []string // absolute source file names
	xtestFor string   // for external test units: path of the package under test
}

// Lint runs the analyzers over the packages matching patterns (resolved
// relative to dir), writes findings to w, and returns how many there
// were. The unused-directive staleness check is active only when the full
// suite runs, since a filtered run cannot tell a stale directive from one
// aimed at an analyzer that was skipped.
func Lint(dir string, patterns []string, analyzers []*analysis.Analyzer, tests bool, w io.Writer) (int, error) {
	listed, err := analysis.GoList(dir, patterns...)
	if err != nil {
		return 0, err
	}
	idx := analysis.NewExportIndex(listed)
	opts := analysis.RunOptions{ReportUnused: len(analyzers) == len(suite.All)}

	var units []unit
	for _, p := range listed {
		if p.Standard || p.Module == nil || p.ForTest != "" || p.IsTestBinary() {
			continue
		}
		files := absFiles(p.Dir, p.GoFiles)
		if tests {
			files = append(files, absFiles(p.Dir, p.TestGoFiles)...)
		}
		if len(files) > 0 {
			units = append(units, unit{path: p.ImportPath, files: files})
		}
		if tests && len(p.XTestGoFiles) > 0 {
			units = append(units, unit{
				path:     p.ImportPath + "_test",
				files:    absFiles(p.Dir, p.XTestGoFiles),
				xtestFor: p.ImportPath,
			})
		}
	}
	sort.Slice(units, func(i, j int) bool { return units[i].path < units[j].path })

	absDir, err := filepath.Abs(dir)
	if err != nil {
		return 0, err
	}
	findings := 0
	for _, u := range units {
		// Each unit gets its own loader: an external _test package must
		// import the test-variant export of the package under test (it
		// may use helpers declared in in-package _test.go files), and
		// loaders cache imports by path.
		loader := analysis.NewLoader()
		loader.Lookup = idx.Lookup(u.xtestFor)
		pkg, err := loader.CheckFiles(u.path, u.files)
		if err != nil {
			return findings, err
		}
		diags, err := analysis.Run(pkg, analyzers, opts)
		if err != nil {
			return findings, err
		}
		for _, d := range diags {
			pos := d.Position(pkg.Fset)
			name := pos.Filename
			if rel, err := filepath.Rel(absDir, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
			fmt.Fprintf(w, "%s:%d:%d: %s: %s\n", name, pos.Line, pos.Column, d.Analyzer, d.Message)
			findings++
		}
	}
	return findings, nil
}

func absFiles(dir string, names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = filepath.Join(dir, n)
	}
	return out
}
