// Command gables-web serves the interactive Gables visualization — the
// repository's counterpart of the interactive tool published on the
// paper's home page. It renders the two-IP multi-roofline plot live as
// hardware and usecase parameters change.
//
// Usage:
//
//	gables-web [-addr :8337]
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"github.com/gables-model/gables/internal/web"
)

func main() {
	addr := flag.String("addr", ":8337", "listen address")
	flag.Parse()

	fmt.Printf("gables-web: serving the interactive model on http://localhost%s/\n", *addr)
	if err := http.ListenAndServe(*addr, web.Handler()); err != nil {
		fmt.Fprintln(os.Stderr, "gables-web:", err)
		os.Exit(1)
	}
}
