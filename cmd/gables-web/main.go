// Command gables-web serves the interactive Gables visualization — the
// repository's counterpart of the interactive tool published on the
// paper's home page. It renders the two-IP multi-roofline plot live as
// hardware and usecase parameters change. Identical form submissions are
// memoized through internal/simcache; /stats reports the cache and
// tracing counters as JSON.
//
// Both listeners run as configured http.Servers (header/read/idle
// timeouts, so a slow-loris client cannot pin connections open forever)
// and shut down gracefully on SIGINT/SIGTERM: in-flight renders finish,
// then the process exits.
//
// -pprof exposes net/http/pprof on a separate localhost-only listener for
// profiling the evaluation and render path; it is off by default so the
// public listener never serves profiling data.
//
// The /eval JSON endpoint answers SoC+work queries through the unified
// evaluator registry; -backend selects the process-default backend it uses
// when a request does not name one (?backend=analytic|sim|auto).
// POST /eval/batch answers arrays of the same question. Both run behind
// the admission limiter: -max-inflight bounds concurrent evaluations,
// -queue bounds each class's wait queue, and requests beyond both are
// shed with 429 (flags override GABLES_MAX_INFLIGHT / GABLES_QUEUE_DEPTH).
//
// -peer-cache points the simulation cache at another replica's /simcache/
// surface (overriding GABLES_PEER_CACHE) so a fleet deduplicates sim work:
// each replica consults its peer before simulating and pushes fresh
// results back. This replica's own /simcache/ surface is served only when
// peer serving is enabled — explicitly with -serve-peer, or implicitly
// when -peer-cache/GABLES_PEER_CACHE makes it part of a mesh — because
// the surface accepts cache pushes and so assumes a trusted network;
// -peer-token (or GABLES_PEER_TOKEN) adds a shared bearer token in both
// directions for fleets whose network is not.
//
// Usage:
//
//	gables-web [-addr :8337] [-backend auto] [-pprof 6060]
//	           [-max-inflight 64] [-queue 128]
//	           [-peer-cache http://replica:8337] [-serve-peer] [-peer-token T]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/gables-model/gables/internal/eval"
	"github.com/gables-model/gables/internal/simcache"
	"github.com/gables-model/gables/internal/web"
)

// Server hardening and shutdown knobs. The read timeouts bound how long a
// client may take to deliver a request; idle bounds keep-alive parking;
// the shutdown grace bounds how long in-flight renders may run after a
// signal before the listener is torn down anyway.
const (
	readHeaderTimeout = 5 * time.Second
	readTimeout       = 10 * time.Second
	idleTimeout       = 120 * time.Second
	shutdownGrace     = 5 * time.Second
)

func main() {
	addr := flag.String("addr", ":8337", "listen address")
	pprofPort := flag.Int("pprof", 0, "serve net/http/pprof on localhost:PORT (0 = disabled)")
	backend := flag.String("backend", "", "default /eval backend: "+
		strings.Join(eval.Names(), "|")+" (default sim; requests override with ?backend=)")
	maxInFlight := flag.Int("max-inflight", 0, "max concurrent evaluations (0 = GABLES_MAX_INFLIGHT or default)")
	queueDepth := flag.Int("queue", 0, "admission queue depth per class (0 = GABLES_QUEUE_DEPTH or default)")
	peerCache := flag.String("peer-cache", "", "peer replica base URL for sim-cache dedup (empty = GABLES_PEER_CACHE)")
	servePeer := flag.Bool("serve-peer", false, "serve this replica's /simcache/ peer surface (implied by -peer-cache/GABLES_PEER_CACHE; assumes a trusted network unless -peer-token is set)")
	peerToken := flag.String("peer-token", "", "shared bearer token for the peer surface and outgoing peer requests (empty = GABLES_PEER_TOKEN)")
	flag.Parse()

	if err := selectBackend(*backend); err != nil {
		fmt.Fprintln(os.Stderr, "gables-web:", err)
		os.Exit(1)
	}
	peerBase := *peerCache
	if peerBase == "" {
		peerBase = os.Getenv(simcache.EnvPeer)
	}
	token := *peerToken
	if token == "" {
		token = os.Getenv(simcache.EnvPeerToken)
	}
	simcache.EnablePeer(peerBase)
	if token != "" {
		simcache.EnablePeerToken(token)
	}
	opts := web.EnvOptions()
	if *maxInFlight > 0 {
		opts.MaxInFlight = *maxInFlight
	}
	if *queueDepth > 0 {
		opts.QueueDepth = *queueDepth
	}
	opts.ServePeer = *servePeer || peerBase != ""
	opts.PeerToken = token

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *addr, *pprofPort, opts, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gables-web:", err)
		os.Exit(1)
	}
}

// selectBackend validates -backend at flag-parse time — a typo'd name
// fails immediately with the allowed set, before the listeners come up —
// and installs the valid, non-empty name as the process-default evaluator.
func selectBackend(name string) error {
	if err := eval.CheckBackend(name); err != nil {
		return err
	}
	if name == "" {
		return nil
	}
	return eval.SetDefault(name)
}

// newServer returns an http.Server with the hardening timeouts applied —
// both listeners go through it so neither regresses to the zero-valued
// (timeout-free) configuration.
func newServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: readHeaderTimeout,
		ReadTimeout:       readTimeout,
		IdleTimeout:       idleTimeout,
	}
}

// run serves until ctx is canceled (the signal path) or a listener fails,
// then drains in-flight requests for up to shutdownGrace. It is main minus
// the process concerns, so tests can drive the full lifecycle.
func run(ctx context.Context, addr string, pprofPort int, opts web.Options, out io.Writer) error {
	srv := newServer(addr, web.NewHandler(opts))
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "gables-web: serving the interactive model on http://%s/ (cache stats at /stats)\n", displayAddr(ln))

	errc := make(chan error, 2)
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	var psrv *http.Server
	if pprofPort != 0 {
		paddr := fmt.Sprintf("localhost:%d", pprofPort)
		psrv = newServer(paddr, pprofMux())
		pln, err := net.Listen("tcp", paddr)
		if err != nil {
			shutdown(srv)
			<-errc
			return fmt.Errorf("pprof: %w", err)
		}
		fmt.Fprintf(out, "gables-web: pprof on http://%s/debug/pprof/\n", paddr)
		go func() {
			if err := psrv.Serve(pln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				errc <- fmt.Errorf("pprof: %w", err)
				return
			}
			errc <- nil
		}()
	}

	// Wait for a signal or the first listener failure, then drain both
	// servers gracefully.
	var first error
	received := 0
	select {
	case <-ctx.Done():
		fmt.Fprintln(out, "gables-web: shutting down")
	case first = <-errc:
		received = 1
	}
	shutdown(srv)
	if psrv != nil {
		shutdown(psrv)
	}
	// Collect the remaining serve goroutines' exits.
	total := 1
	if psrv != nil {
		total++
	}
	for i := received; i < total; i++ {
		if err := <-errc; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// shutdown drains one server for up to shutdownGrace, then closes it hard.
func shutdown(srv *http.Server) {
	ctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		srv.Close()
	}
}

// displayAddr renders the listener's bound address for the startup line,
// substituting localhost when bound to the wildcard address.
func displayAddr(ln net.Listener) string {
	addr, ok := ln.Addr().(*net.TCPAddr)
	if !ok {
		return ln.Addr().String()
	}
	if addr.IP.IsUnspecified() {
		return fmt.Sprintf("localhost:%d", addr.Port)
	}
	return addr.String()
}

// pprofMux registers the profiling endpoints on their own mux (the main
// handler uses a private ServeMux, so the pprof default-mux registrations
// never leak into it); run binds it to loopback only.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
