// Command gables-web serves the interactive Gables visualization — the
// repository's counterpart of the interactive tool published on the
// paper's home page. It renders the two-IP multi-roofline plot live as
// hardware and usecase parameters change. Identical form submissions are
// memoized through internal/simcache; /stats reports the cache counters
// as JSON.
//
// -pprof exposes net/http/pprof on a separate localhost-only listener for
// profiling the evaluation and render path; it is off by default so the
// public listener never serves profiling data.
//
// Usage:
//
//	gables-web [-addr :8337] [-pprof 6060]
package main

import (
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"

	"github.com/gables-model/gables/internal/web"
)

func main() {
	addr := flag.String("addr", ":8337", "listen address")
	pprofPort := flag.Int("pprof", 0, "serve net/http/pprof on localhost:PORT (0 = disabled)")
	flag.Parse()

	if *pprofPort != 0 {
		go servePprof(*pprofPort)
	}
	fmt.Printf("gables-web: serving the interactive model on http://localhost%s/ (cache stats at /stats)\n", *addr)
	if err := http.ListenAndServe(*addr, web.Handler()); err != nil {
		fmt.Fprintln(os.Stderr, "gables-web:", err)
		os.Exit(1)
	}
}

// servePprof runs the profiling endpoints on their own mux (the main
// handler uses a private ServeMux, so the pprof default-mux registrations
// never leak into it) bound to loopback only.
func servePprof(port int) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	addr := fmt.Sprintf("localhost:%d", port)
	fmt.Printf("gables-web: pprof on http://%s/debug/pprof/\n", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		fmt.Fprintln(os.Stderr, "gables-web: pprof:", err)
	}
}
