package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/gables-model/gables/internal/eval"
	"github.com/gables-model/gables/internal/web"
)

// syncBuffer is a goroutine-safe writer the lifecycle tests poll while
// run is serving on another goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var urlLine = regexp.MustCompile(`http://([^/\s]+)/`)

// waitForAddr polls the startup output until the nth serving URL appears.
func waitForAddr(t *testing.T, out *syncBuffer, n int) string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if m := urlLine.FindAllStringSubmatch(out.String(), -1); len(m) >= n {
			return m[n-1][1]
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("server never announced listener %d; output: %q", n, out.String())
	return ""
}

// startRun launches run on a background goroutine and returns the error
// channel carrying its exit.
func startRun(ctx context.Context, addr string, pprofPort int, out io.Writer) chan error {
	done := make(chan error, 1)
	go func() { done <- run(ctx, addr, pprofPort, web.Options{}, out) }()
	return done
}

func waitExit(t *testing.T, done chan error) error {
	t.Helper()
	select {
	case err := <-done:
		return err
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit after context cancellation")
		return nil
	}
}

func TestServerTimeoutsConfigured(t *testing.T) {
	srv := newServer(":0", http.NotFoundHandler())
	if srv.ReadHeaderTimeout <= 0 || srv.ReadTimeout <= 0 || srv.IdleTimeout <= 0 {
		t.Errorf("server must carry hardening timeouts, got %+v", srv)
	}
}

// The full lifecycle: serve, answer requests, then exit cleanly when the
// signal context is canceled (the SIGINT/SIGTERM path).
func TestRunServeAndGracefulShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := &syncBuffer{}
	done := startRun(ctx, "127.0.0.1:0", 0, out)

	host := waitForAddr(t, out, 1)
	resp, err := http.Get("http://" + host + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET / = %d, want 200", resp.StatusCode)
	}

	cancel()
	if err := waitExit(t, done); err != nil {
		t.Fatalf("graceful shutdown returned %v", err)
	}
	if !strings.Contains(out.String(), "shutting down") {
		t.Errorf("shutdown not announced; output: %q", out.String())
	}
}

// The pprof listener serves on its own port and shuts down with the rest.
func TestRunWithPprofListener(t *testing.T) {
	port := freePort(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := &syncBuffer{}
	done := startRun(ctx, "127.0.0.1:0", port, out)

	waitForAddr(t, out, 2) // pprof announced second
	resp, err := http.Get(fmt.Sprintf("http://localhost:%d/debug/pprof/", port))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/pprof/ = %d, want 200", resp.StatusCode)
	}

	cancel()
	if err := waitExit(t, done); err != nil {
		t.Fatalf("graceful shutdown returned %v", err)
	}
}

// A listener that cannot bind must surface its error instead of serving.
func TestRunListenFailure(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if err := run(context.Background(), ln.Addr().String(), 0, web.Options{}, io.Discard); err == nil {
		t.Fatal("binding an in-use address must fail")
	}
}

// A pprof listener that cannot bind must tear the main server down too.
func TestRunPprofListenFailure(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	port := ln.Addr().(*net.TCPAddr).Port
	err = run(context.Background(), "127.0.0.1:0", port, web.Options{}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "pprof") {
		t.Fatalf("want a pprof bind error, got %v", err)
	}
}

// freePort reserves then releases an ephemeral port for the pprof flag
// (which takes a port number, not an address).
func freePort(t *testing.T) int {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := ln.Addr().(*net.TCPAddr).Port
	ln.Close()
	return port
}

// TestSelectBackend is the flag-parse-time gate: every registered backend
// name (surrogate included) is accepted, anything else fails immediately
// with the allowed set.
func TestSelectBackend(t *testing.T) {
	defer func() {
		if err := eval.SetDefault("sim"); err != nil {
			t.Fatal(err)
		}
	}()
	valid := append([]string{""}, eval.Names()...)
	for _, name := range valid {
		if err := selectBackend(name); err != nil {
			t.Errorf("selectBackend(%q) = %v, want nil", name, err)
		}
	}
	for _, name := range []string{"bogus", "SIM", "simulator"} {
		err := selectBackend(name)
		if err == nil {
			t.Errorf("selectBackend(%q) accepted", name)
			continue
		}
		if !strings.Contains(err.Error(), "allowed:") || !strings.Contains(err.Error(), "surrogate") {
			t.Errorf("selectBackend(%q) error %q does not list the allowed set", name, err)
		}
	}
}
