// Command gables-explore answers the early-stage design questions §VII's
// conjectures motivate, for a spec file or the built-in paper SoC: which
// component binds each usecase, how much headroom every other component
// wastes, the minimal sufficient off-chip bandwidth, the reuse each IP
// would need for balance, and (for two-IP SoCs) the best work split.
//
// Usage:
//
//	gables-explore [-spec file.json] [-target gops]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/gables-model/gables/internal/core"
	"github.com/gables-model/gables/internal/optimize"
	"github.com/gables-model/gables/internal/report"
	"github.com/gables-model/gables/internal/soc"
	"github.com/gables-model/gables/internal/spec"
	"github.com/gables-model/gables/internal/units"
	"github.com/gables-model/gables/internal/usecase"
)

func main() {
	specPath := flag.String("spec", "", "JSON spec file; empty explores the paper's Fig 6b design")
	target := flag.Float64("target", 0, "optional target performance in Gops/s for required-intensity analysis")
	suite := flag.Bool("suite", false, "run the §I usecase-suite criterion instead")
	chipPath := flag.String("chip", "", "block-level chip JSON for -suite; empty uses the Snapdragon-835-like catalog entry")
	flag.Parse()

	var err error
	if *suite {
		err = runSuite(*chipPath)
	} else {
		err = run(*specPath, *target)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gables-explore:", err)
		os.Exit(1)
	}
}

// runSuite checks the standard 13-usecase suite on a chip: every usecase
// must run acceptably; the average is immaterial (§I).
func runSuite(chipPath string) error {
	chip := soc.Snapdragon835Like()
	if chipPath != "" {
		data, err := os.ReadFile(chipPath)
		if err != nil {
			return err
		}
		chip, err = spec.ParseChip(data)
		if err != nil {
			return err
		}
	}
	rep, err := usecase.AnalyzeSuite(chip, usecase.StandardSuite())
	if err != nil {
		return err
	}
	tbl := report.NewTable(fmt.Sprintf("usecase suite on %s", rep.Chip),
		"usecase", "target", "max rate", "margin", "limited by", "ok")
	for _, e := range rep.Entries {
		tbl.AddRow(e.Usecase, e.TargetRate, e.MaxRate, e.Margin, e.Limiter, e.Met)
	}
	if err := tbl.WriteText(os.Stdout); err != nil {
		return err
	}
	binding := rep.Entries[rep.Binding]
	fmt.Printf("\nsuite acceptable: %v; binding usecase: %q (margin %.2f, limited by %s)\n",
		rep.AllMet, binding.Usecase, binding.Margin, binding.Limiter)
	return nil
}

func run(specPath string, targetGops float64) error {
	m, usecases, err := load(specPath)
	if err != nil {
		return err
	}
	for _, u := range usecases {
		//lint:ignore evalboundary spec-driven CLI evaluates user-authored models the eval query cannot express
		res, err := m.Evaluate(u)
		if err != nil {
			return err
		}
		fmt.Printf("== usecase %q on %s ==\n", u.Name, m.SoC.Name)
		fmt.Printf("Pattainable = %s, bottleneck %s\n", res.Attainable, res.Bottleneck)

		bal, err := optimize.Analyze(m, u)
		if err != nil {
			return err
		}
		tbl := report.NewTable("component headroom (1.0 = bottleneck)", "component", "headroom")
		for _, b := range bal {
			tbl.AddRow(b.Component.String(), b.Headroom)
		}
		if err := tbl.WriteText(os.Stdout); err != nil {
			return err
		}
		if optimize.IsBalanced(bal, 0.01) {
			fmt.Println("design is balanced for this usecase (all rooflines meet)")
		}

		if suff, err := optimize.SufficientBandwidth(m, u); err == nil {
			fmt.Printf("sufficient Bpeak: %s (configured %s)\n", suff, m.SoC.MemoryBandwidth)
			if float64(m.SoC.MemoryBandwidth) > float64(suff)*1.05 {
				fmt.Println("  -> memory bandwidth is over-provisioned for this usecase")
			}
		}

		target := res.Attainable
		if targetGops > 0 {
			target = units.GopsPerSec(targetGops)
		}
		for i := range m.SoC.IPs {
			if u.Work[i].Fraction == 0 {
				continue
			}
			need, err := optimize.RequiredIntensity(m, u, i, target)
			if err != nil {
				fmt.Printf("IP[%d] (%s): cannot reach %s (%v)\n", i, m.SoC.IPs[i].Name, target, err)
				continue
			}
			fmt.Printf("IP[%d] (%s): needs I >= %.4g ops/B for %s (currently %.4g)\n",
				i, m.SoC.IPs[i].Name, float64(need), target, float64(u.Work[i].Intensity))
		}

		if len(m.SoC.IPs) == 2 {
			i0, i1 := u.Work[0].Intensity, u.Work[1].Intensity
			if i0 > 0 && i1 > 0 {
				split, err := optimize.BestSplit(m, i0, i1)
				if err != nil {
					return err
				}
				fmt.Printf("best work split at these intensities: f = %.4g -> %s (%s)\n",
					split.F, split.Attainable, split.Bottleneck)
			}
		}
		fmt.Println()
	}
	return nil
}

func load(specPath string) (*core.Model, []*core.Usecase, error) {
	if specPath == "" {
		s, err := core.TwoIP("paper-two-ip", units.GopsPerSec(40), units.GBPerSec(10), 5,
			units.GBPerSec(6), units.GBPerSec(15))
		if err != nil {
			return nil, nil, err
		}
		m, err := core.New(s)
		if err != nil {
			return nil, nil, err
		}
		u, err := core.TwoIPUsecase("fig6b", 0.75, 8, 0.1)
		if err != nil {
			return nil, nil, err
		}
		return m, []*core.Usecase{u}, nil
	}
	data, err := os.ReadFile(specPath)
	if err != nil {
		return nil, nil, err
	}
	doc, err := spec.Parse(data)
	if err != nil {
		return nil, nil, err
	}
	m, err := doc.Model()
	if err != nil {
		return nil, nil, err
	}
	us, err := doc.CoreUsecases()
	if err != nil {
		return nil, nil, err
	}
	return m, us, nil
}
