package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunBuiltin(t *testing.T) {
	if err := run("", 0); err != nil {
		t.Fatalf("built-in exploration failed: %v", err)
	}
	if err := run("", 100); err != nil {
		t.Fatalf("explicit target failed: %v", err)
	}
}

func TestRunSuiteCatalog(t *testing.T) {
	if err := runSuite(""); err != nil {
		t.Fatalf("catalog suite failed: %v", err)
	}
}

func TestRunSuiteCustomChip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "chip.json")
	// A chip with every block the standard suite references.
	doc := `{
  "chip": {
    "name": "custom", "dram_gbs": 40,
    "blocks": [
      {"name": "CPU", "class": "cpu", "peak_gops": 10, "bandwidth_gbs": 16},
      {"name": "GPU", "class": "gpu", "peak_gops": 400, "bandwidth_gbs": 30},
      {"name": "DSP", "class": "dsp", "peak_gops": 4, "bandwidth_gbs": 6},
      {"name": "ISP", "class": "isp", "peak_gops": 80, "bandwidth_gbs": 16},
      {"name": "IPU", "class": "ipu", "peak_gops": 150, "bandwidth_gbs": 12},
      {"name": "VDEC", "class": "vdec", "peak_gops": 50, "bandwidth_gbs": 10},
      {"name": "VENC", "class": "venc", "peak_gops": 50, "bandwidth_gbs": 10},
      {"name": "JPEG", "class": "jpeg", "peak_gops": 25, "bandwidth_gbs": 5},
      {"name": "G2D", "class": "g2d", "peak_gops": 20, "bandwidth_gbs": 8},
      {"name": "Display", "class": "display", "peak_gops": 12, "bandwidth_gbs": 10},
      {"name": "Audio", "class": "audio", "peak_gops": 3, "bandwidth_gbs": 1.5},
      {"name": "Modem", "class": "modem", "peak_gops": 5, "bandwidth_gbs": 3},
      {"name": "Crypto", "class": "crypto", "peak_gops": 10, "bandwidth_gbs": 5}
    ]
  }
}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runSuite(path); err != nil {
		t.Fatalf("custom chip suite failed: %v", err)
	}
}

func TestRunSuiteErrors(t *testing.T) {
	if err := runSuite("/nonexistent.json"); err == nil {
		t.Error("missing chip file must fail")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"chip":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runSuite(bad); err == nil {
		t.Error("invalid chip must fail")
	}
}
