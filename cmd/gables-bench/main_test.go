package main

import (
	"os"
	"path/filepath"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: github.com/gables-model/gables
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkSimKernel-8   	  143142	     15950 ns/op	    7752 B/op	     110 allocs/op
BenchmarkScheduleRun 	 3129111	        38.12 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	github.com/gables-model/gables	3.2s
`

func TestParseBench(t *testing.T) {
	results := ParseBench(sampleOutput)
	if len(results) != 2 {
		t.Fatalf("parsed %d results, want 2: %+v", len(results), results)
	}
	r := results[0]
	if r.Name != "BenchmarkSimKernel" {
		t.Errorf("name = %q, want BenchmarkSimKernel (GOMAXPROCS suffix stripped)", r.Name)
	}
	if r.Iterations != 143142 || r.NsPerOp != 15950 || r.BytesPerOp != 7752 || r.AllocsPerOp != 110 {
		t.Errorf("unexpected fields: %+v", r)
	}
	if results[1].NsPerOp != 38.12 {
		t.Errorf("fractional ns/op = %v, want 38.12", results[1].NsPerOp)
	}
}

func TestParseBenchIgnoresNoise(t *testing.T) {
	if got := ParseBench("PASS\nok pkg 1.2s\n"); len(got) != 0 {
		t.Errorf("parsed %d results from non-benchmark output", len(got))
	}
}

func rec(name string, ns, allocs float64) Record {
	return Record{Benchmarks: []Result{{Name: name, NsPerOp: ns, AllocsPerOp: allocs}}}
}

func TestCompareFlagsRegression(t *testing.T) {
	regs := Compare(rec("BenchmarkX", 100, 10), rec("BenchmarkX", 140, 10), 0.25)
	if len(regs) != 1 || regs[0].Metric != "ns/op" {
		t.Fatalf("regs = %+v, want one ns/op regression", regs)
	}
	regs = Compare(rec("BenchmarkX", 100, 10), rec("BenchmarkX", 100, 20), 0.25)
	if len(regs) != 1 || regs[0].Metric != "allocs/op" {
		t.Fatalf("regs = %+v, want one allocs/op regression", regs)
	}
}

func TestCompareWithinThreshold(t *testing.T) {
	if regs := Compare(rec("BenchmarkX", 100, 10), rec("BenchmarkX", 120, 12), 0.25); len(regs) != 0 {
		t.Errorf("regs = %+v, want none within threshold", regs)
	}
	// Improvements never flag.
	if regs := Compare(rec("BenchmarkX", 100, 10), rec("BenchmarkX", 50, 1), 0.25); len(regs) != 0 {
		t.Errorf("regs = %+v, improvement must not flag", regs)
	}
}

func TestCompareZeroAllocBaselineNoise(t *testing.T) {
	// An amortized-zero-alloc benchmark drifting to a fraction of an
	// allocation per op must not flag (ratio floor of one alloc).
	if regs := Compare(rec("BenchmarkX", 100, 0), rec("BenchmarkX", 100, 0.9), 0.25); len(regs) != 0 {
		t.Errorf("regs = %+v, sub-1 allocs baseline must use a floor", regs)
	}
	if regs := Compare(rec("BenchmarkX", 100, 0), rec("BenchmarkX", 100, 3), 0.25); len(regs) != 1 {
		t.Errorf("regs = %+v, a real allocation jump must flag", regs)
	}
}

func TestCompareSkipsUnmatched(t *testing.T) {
	prev := rec("BenchmarkOld", 1, 1)
	cur := rec("BenchmarkNew", 1e9, 1e9)
	if regs := Compare(prev, cur, 0.25); len(regs) != 0 {
		t.Errorf("regs = %+v, unmatched benchmarks must be skipped", regs)
	}
}

func harnessResults(seq, par float64) []Result {
	return []Result{
		{Name: "BenchmarkHarnessSequential", NsPerOp: seq},
		{Name: "BenchmarkHarnessParallel", NsPerOp: par},
		{Name: "BenchmarkSimKernel", NsPerOp: 1},
	}
}

func TestHarnessRatio(t *testing.T) {
	if ratio, ok := HarnessRatio(harnessResults(300, 100)); !ok || ratio != 3 {
		t.Errorf("ratio = %v, %v; want 3, true", ratio, ok)
	}
	if _, ok := HarnessRatio([]Result{{Name: "BenchmarkHarnessSequential", NsPerOp: 100}}); ok {
		t.Error("missing parallel result must not produce a ratio")
	}
	if _, ok := HarnessRatio(nil); ok {
		t.Error("empty results must not produce a ratio")
	}
}

func TestCheckHarnessRatioFloor(t *testing.T) {
	// Above the floor on a big machine: logged, no miss.
	line, miss := CheckHarnessRatio(harnessResults(200, 100), 8)
	if miss || line == "" {
		t.Errorf("2.0x on 8 CPUs: line=%q miss=%v, want logged pass", line, miss)
	}
	// Below the floor on a big machine: miss.
	line, miss = CheckHarnessRatio(harnessResults(110, 100), 8)
	if !miss {
		t.Errorf("1.1x on 8 CPUs must miss the %vx floor (line=%q)", HarnessParallelFloor, line)
	}
	// Below the floor on a small machine: logged skip, never a miss.
	line, miss = CheckHarnessRatio(harnessResults(100, 100), 1)
	if miss || line == "" {
		t.Errorf("1.0x on 1 CPU: line=%q miss=%v, want logged skip", line, miss)
	}
	// Harness benchmarks absent (e.g. a filtered run): silent no-op.
	if line, miss := CheckHarnessRatio(nil, 8); line != "" || miss {
		t.Errorf("no harness results: line=%q miss=%v, want silence", line, miss)
	}
}

func surrogateResults(fast, cold float64) []Result {
	return []Result{
		{Name: "BenchmarkSurrogateEvaluate", NsPerOp: fast},
		{Name: "BenchmarkSurrogateSimCold", NsPerOp: cold},
		{Name: "BenchmarkCalibrate", NsPerOp: 1},
	}
}

func TestSurrogateRatio(t *testing.T) {
	if ratio, ok := SurrogateRatio(surrogateResults(100, 20000)); !ok || ratio != 200 {
		t.Errorf("ratio = %v, %v; want 200, true", ratio, ok)
	}
	if _, ok := SurrogateRatio([]Result{{Name: "BenchmarkSurrogateEvaluate", NsPerOp: 100}}); ok {
		t.Error("missing cold-sim result must not produce a ratio")
	}
	if _, ok := SurrogateRatio(nil); ok {
		t.Error("empty results must not produce a ratio")
	}
}

func TestCheckSurrogateRatioFloor(t *testing.T) {
	// Above the floor: logged, no miss.
	line, miss := CheckSurrogateRatio(surrogateResults(100, 20000))
	if miss || line == "" {
		t.Errorf("200x: line=%q miss=%v, want logged pass", line, miss)
	}
	// Below the floor: miss.
	line, miss = CheckSurrogateRatio(surrogateResults(100, 5000))
	if !miss {
		t.Errorf("50x must miss the %vx floor (line=%q)", SurrogateSpeedupFloor, line)
	}
	// Surrogate benchmarks absent (e.g. a filtered run): silent no-op.
	if line, miss := CheckSurrogateRatio(nil); line != "" || miss {
		t.Errorf("no surrogate results: line=%q miss=%v, want silence", line, miss)
	}
}

func TestLoadSaveRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_sim.json")

	// Missing file is an empty trajectory, not an error.
	f, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Records) != 0 {
		t.Fatalf("missing file yielded %d records", len(f.Records))
	}

	f.Records = append(f.Records, Record{
		GitSHA:     "abc1234",
		GoVersion:  "go1.22.0",
		Benchmarks: []Result{{Name: "BenchmarkX", Iterations: 10, NsPerOp: 1.5, BytesPerOp: 8, AllocsPerOp: 1}},
	})
	if err := Save(path, f); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Records) != 1 || back.Records[0].GitSHA != "abc1234" ||
		back.Records[0].Benchmarks[0] != f.Records[0].Benchmarks[0] {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
}

func TestLoadRejectsCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_sim.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("corrupt trajectory file must be rejected")
	}
}
