// Command gables-bench records the repository's performance trajectory.
// It runs the engine/sim/harness benchmark suite under `go test -benchmem`,
// parses the per-benchmark ns/op, B/op, and allocs/op, appends a record
// (tagged with the current git SHA and Go version) to BENCH_sim.json, and
// compares the new record against the previous one, flagging regressions
// beyond a relative threshold.
//
// Usage:
//
//	gables-bench [-out BENCH_sim.json] [-benchtime 200ms] [-threshold 0.25] [-check] [-tier1]
//
// With -check the process exits 1 when any benchmark regressed (ns/op or
// allocs/op grew by more than the threshold relative to the previous
// record), when the parallel experiment harness fell below the pinned
// HarnessParallelFloor speedup over the sequential baseline on a machine
// with enough cores, or when the surrogate backend's fitted fast path
// fell below the pinned SurrogateSpeedupFloor over the equivalent cold
// sim query. CI runs this as a non-blocking perf-smoke job and uploads the
// refreshed trajectory as an artifact; DESIGN.md §6 describes how to read
// and refresh the committed file.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// target names one `go test -bench` invocation of the suite.
type target struct {
	Pkg   string
	Bench string
	Tier1 bool // included in the quick CI perf-smoke subset
}

// suite is the benchmark trajectory's fixed coverage: the discrete-event
// core, the bandwidth servers, the whole simulated kernel path, the model
// evaluator, the experiment harness (sequential and parallel, so the
// speedup floor below is checkable from one record), the batched analytic
// grid, the coarse-to-fine sim grid, the simulation-result cache (cold vs
// warm sweep grids), and the surrogate backend (fitted fast path vs the
// cold sim query it stands in for, plus the warm-cache re-calibration).
var suite = []target{
	{Pkg: "./internal/sim/engine", Bench: ".", Tier1: true},
	{Pkg: "./internal/sim/mem", Bench: ".", Tier1: true},
	{Pkg: ".", Bench: "BenchmarkSimKernel$|BenchmarkSimKernelTraced$|BenchmarkEvaluateTwoIP$|BenchmarkEvaluateNIP$", Tier1: true},
	{Pkg: "./internal/experiments", Bench: "BenchmarkHarnessSequential$", Tier1: true},
	{Pkg: "./internal/experiments", Bench: "BenchmarkHarnessParallel$", Tier1: true},
	{Pkg: "./internal/sweep", Bench: "BenchmarkGridAnalyticBatch$", Tier1: true},
	{Pkg: "./internal/gridplan", Bench: "BenchmarkGridCoarseToFine$", Tier1: true},
	{Pkg: "./internal/simcache", Bench: "BenchmarkCacheColdGrid$|BenchmarkCacheWarmGrid$", Tier1: true},
	{Pkg: "./internal/surrogate", Bench: "BenchmarkSurrogateEvaluate$|BenchmarkSurrogateSimCold$|BenchmarkCalibrate$", Tier1: true},
}

// HarnessParallelFloor is the pinned minimum speedup of the parallel
// experiment harness over the honest sequential baseline
// (BenchmarkHarnessSequential pins GABLES_PARALLEL=1). The floor is only
// enforced on runners with at least harnessMinCPU cores — below that the
// worker pool cannot express the speedup and the check logs a skip.
const HarnessParallelFloor = 1.5

// harnessMinCPU matches the 4-vCPU GitHub-hosted runner the floor was
// pinned on.
const harnessMinCPU = 4

// HarnessRatio extracts the sequential/parallel ns-per-op ratio (the
// parallel speedup) from one record's results; ok is false when either
// harness benchmark is missing from the run.
func HarnessRatio(results []Result) (ratio float64, ok bool) {
	var seq, par float64
	for _, r := range results {
		switch r.Name {
		case "BenchmarkHarnessSequential":
			seq = r.NsPerOp
		case "BenchmarkHarnessParallel":
			par = r.NsPerOp
		}
	}
	if seq <= 0 || par <= 0 {
		return 0, false
	}
	return seq / par, true
}

// CheckHarnessRatio renders the speedup line for the log and reports
// whether the floor was missed on a machine where it applies. An empty
// line means the run did not include both harness benchmarks.
func CheckHarnessRatio(results []Result, ncpu int) (line string, miss bool) {
	ratio, ok := HarnessRatio(results)
	if !ok {
		return "", false
	}
	switch {
	case ncpu < harnessMinCPU:
		return fmt.Sprintf("harness parallel speedup %.2fx (floor %.1fx not enforced: %d CPUs < %d)",
			ratio, HarnessParallelFloor, ncpu, harnessMinCPU), false
	case ratio < HarnessParallelFloor:
		return fmt.Sprintf("FLOOR MISS harness parallel speedup %.2fx < %.1fx floor",
			ratio, HarnessParallelFloor), true
	default:
		return fmt.Sprintf("harness parallel speedup %.2fx (floor %.1fx)",
			ratio, HarnessParallelFloor), false
	}
}

// SurrogateSpeedupFloor is the pinned minimum speedup of the surrogate
// backend's fitted fast path over the cold sim query it replaces
// (BenchmarkSurrogateSimCold resets the simulation cache every iteration,
// so the ratio compares against genuine measurement cost, not a cache
// hit). Unlike the harness floor this one is not CPU-gated: both sides
// are single-threaded closed-form-vs-simulation work.
const SurrogateSpeedupFloor = 100

// SurrogateRatio extracts the cold-sim/fitted ns-per-op ratio (the
// surrogate speedup) from one record's results; ok is false when either
// benchmark is missing from the run.
func SurrogateRatio(results []Result) (ratio float64, ok bool) {
	var fast, cold float64
	for _, r := range results {
		switch r.Name {
		case "BenchmarkSurrogateEvaluate":
			fast = r.NsPerOp
		case "BenchmarkSurrogateSimCold":
			cold = r.NsPerOp
		}
	}
	if fast <= 0 || cold <= 0 {
		return 0, false
	}
	return cold / fast, true
}

// CheckSurrogateRatio renders the speedup line for the log and reports
// whether the floor was missed. An empty line means the run did not
// include both surrogate benchmarks.
func CheckSurrogateRatio(results []Result) (line string, miss bool) {
	ratio, ok := SurrogateRatio(results)
	if !ok {
		return "", false
	}
	if ratio < SurrogateSpeedupFloor {
		return fmt.Sprintf("FLOOR MISS surrogate fast-path speedup %.0fx < %.0fx floor",
			ratio, float64(SurrogateSpeedupFloor)), true
	}
	return fmt.Sprintf("surrogate fast-path speedup %.0fx (floor %.0fx)",
		ratio, float64(SurrogateSpeedupFloor)), false
}

// Result is one benchmark's measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_op"`
	BytesPerOp  float64 `json:"b_op"`
	AllocsPerOp float64 `json:"allocs_op"`
}

// Record is one run of the suite.
type Record struct {
	GitSHA     string   `json:"git_sha"`
	GoVersion  string   `json:"go_version"`
	Benchmarks []Result `json:"benchmarks"`
}

// File is the trajectory: records in run order, newest last.
type File struct {
	Records []Record `json:"records"`
}

// benchLine matches `go test -bench -benchmem` output, e.g.
//
//	BenchmarkSimKernel-8   143142   15950 ns/op   7752 B/op   110 allocs/op
//
// The -N GOMAXPROCS suffix is stripped so records compare across machines.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op)?(?:\s+([0-9.]+) allocs/op)?`)

// ParseBench extracts benchmark results from `go test -bench` output.
func ParseBench(out string) []Result {
	var results []Result
	for _, line := range strings.Split(out, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, _ := strconv.Atoi(m[2])
		ns, _ := strconv.ParseFloat(m[3], 64)
		r := Result{Name: m[1], Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			r.BytesPerOp, _ = strconv.ParseFloat(m[4], 64)
		}
		if m[5] != "" {
			r.AllocsPerOp, _ = strconv.ParseFloat(m[5], 64)
		}
		results = append(results, r)
	}
	return results
}

// Regression is one benchmark that got slower or more allocation-hungry
// than the threshold allows.
type Regression struct {
	Name   string
	Metric string
	Old    float64
	New    float64
	Ratio  float64
}

// Compare diffs two records benchmark-by-benchmark. Benchmarks present in
// only one record are skipped: the trajectory tolerates suite growth.
// A regression is a relative increase beyond threshold in ns/op or
// allocs/op; an allocs/op increase from a sub-1 baseline is measured
// against a floor of one allocation so amortized-zero benchmarks do not
// flag on scheduling noise.
func Compare(prev, cur Record, threshold float64) []Regression {
	old := make(map[string]Result, len(prev.Benchmarks))
	for _, r := range prev.Benchmarks {
		old[r.Name] = r
	}
	var regs []Regression
	for _, r := range cur.Benchmarks {
		p, ok := old[r.Name]
		if !ok {
			continue
		}
		if p.NsPerOp > 0 {
			ratio := r.NsPerOp / p.NsPerOp
			if ratio > 1+threshold {
				regs = append(regs, Regression{r.Name, "ns/op", p.NsPerOp, r.NsPerOp, ratio})
			}
		}
		base := p.AllocsPerOp
		if base < 1 {
			base = 1
		}
		if ratio := r.AllocsPerOp / base; ratio > 1+threshold {
			regs = append(regs, Regression{r.Name, "allocs/op", p.AllocsPerOp, r.AllocsPerOp, ratio})
		}
	}
	return regs
}

// Load reads a trajectory file; a missing file is an empty trajectory.
func Load(path string) (File, error) {
	var f File
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return f, nil
	}
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("gables-bench: %s: %v", path, err)
	}
	return f, nil
}

// Save writes the trajectory with stable, diff-friendly formatting.
func Save(path string, f File) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// gitSHA resolves HEAD — suffixed with "-dirty" when the worktree has
// uncommitted changes, so a record is never mistaken for the commit it
// merely sits on top of — or "unknown" outside a git checkout.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	sha := strings.TrimSpace(string(out))
	if status, err := exec.Command("git", "status", "--porcelain").Output(); err == nil && len(status) > 0 {
		sha += "-dirty"
	}
	return sha
}

// runSuite executes the selected targets and collects their results.
func runSuite(benchtime string, tier1Only bool, logf func(string, ...any)) ([]Result, error) {
	var all []Result
	for _, t := range suite {
		if tier1Only && !t.Tier1 {
			continue
		}
		logf("# go test -run=NONE -bench %s -benchmem -benchtime %s %s\n", t.Bench, benchtime, t.Pkg)
		cmd := exec.Command("go", "test", "-run=NONE", "-bench", t.Bench,
			"-benchmem", "-benchtime", benchtime, t.Pkg)
		var buf bytes.Buffer
		cmd.Stdout = &buf
		cmd.Stderr = &buf
		if err := cmd.Run(); err != nil {
			return nil, fmt.Errorf("gables-bench: %s: %v\n%s", t.Pkg, err, buf.String())
		}
		results := ParseBench(buf.String())
		if len(results) == 0 {
			return nil, fmt.Errorf("gables-bench: %s: no benchmark results in output:\n%s", t.Pkg, buf.String())
		}
		all = append(all, results...)
	}
	return all, nil
}

func run(args []string, stdout *os.File) int {
	fs := flag.NewFlagSet("gables-bench", flag.ContinueOnError)
	out := fs.String("out", "BENCH_sim.json", "trajectory file to append to")
	benchtime := fs.String("benchtime", "200ms", "-benchtime passed to go test")
	threshold := fs.Float64("threshold", 0.25, "relative regression threshold on ns/op and allocs/op")
	check := fs.Bool("check", false, "exit 1 when a benchmark regressed vs the previous record")
	tier1 := fs.Bool("tier1", false, "run only the quick tier-1 subset (the CI perf-smoke selection)")
	dry := fs.Bool("dry", false, "measure and compare without rewriting the trajectory file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	logf := func(format string, a ...any) { fmt.Fprintf(stdout, format, a...) }

	results, err := runSuite(*benchtime, *tier1, logf)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	cur := Record{GitSHA: gitSHA(), GoVersion: runtime.Version(), Benchmarks: results}

	traj, err := Load(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	for _, r := range results {
		logf("%-40s %14.1f ns/op %12.0f B/op %10.1f allocs/op\n",
			r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}

	var regs []Regression
	if n := len(traj.Records); n > 0 {
		prev := traj.Records[n-1]
		regs = Compare(prev, cur, *threshold)
		logf("\ncompared against record %d (git %s):\n", n-1, prev.GitSHA)
		if len(regs) == 0 {
			logf("  no regressions beyond %.0f%%\n", *threshold*100)
		}
		for _, g := range regs {
			logf("  REGRESSION %s %s: %.1f -> %.1f (%.2fx)\n", g.Name, g.Metric, g.Old, g.New, g.Ratio)
		}
	} else {
		logf("\nno previous record in %s: baseline established\n", *out)
	}

	ratioLine, floorMiss := CheckHarnessRatio(results, runtime.NumCPU())
	if ratioLine != "" {
		logf("%s\n", ratioLine)
	}
	surLine, surMiss := CheckSurrogateRatio(results)
	if surLine != "" {
		logf("%s\n", surLine)
	}
	floorMiss = floorMiss || surMiss

	if !*dry {
		traj.Records = append(traj.Records, cur)
		if err := Save(*out, traj); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		logf("appended record %d to %s\n", len(traj.Records)-1, *out)
	}

	if *check && (len(regs) > 0 || floorMiss) {
		return 1
	}
	return 0
}

func main() { os.Exit(run(os.Args[1:], os.Stdout)) }
