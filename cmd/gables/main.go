// Command gables evaluates Gables SoC + usecase specifications: it prints
// the attainable-performance bound, the per-component breakdown and the
// scaled-roofline operating points, and optionally renders the §III-C
// multi-roofline plot.
//
// Usage:
//
//	gables [-spec file.json] [-serialized] [-svg out.svg] [-ascii]
//
// Without -spec it evaluates the paper's built-in two-IP walk-through
// (Figures 6a–6d).
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/gables-model/gables/internal/core"
	"github.com/gables-model/gables/internal/plot"
	"github.com/gables-model/gables/internal/report"
	"github.com/gables-model/gables/internal/spec"
	"github.com/gables-model/gables/internal/units"
)

func main() {
	specPath := flag.String("spec", "", "JSON spec file (see internal/spec); empty runs the built-in paper demo")
	serialized := flag.Bool("serialized", false, "evaluate with the §V-C exclusive/serialized-work extension")
	svgPath := flag.String("svg", "", "write the multi-roofline plot of the first usecase to this SVG file")
	ascii := flag.Bool("ascii", false, "print an ASCII multi-roofline plot per usecase")
	flag.Parse()

	if err := run(*specPath, *serialized, *svgPath, *ascii); err != nil {
		fmt.Fprintln(os.Stderr, "gables:", err)
		os.Exit(1)
	}
}

func run(specPath string, serialized bool, svgPath string, ascii bool) error {
	m, usecases, err := load(specPath)
	if err != nil {
		return err
	}

	fmt.Printf("SoC %s: Ppeak=%s, Bpeak=%s, %d IPs\n",
		m.SoC.Name, m.SoC.Peak, m.SoC.MemoryBandwidth, len(m.SoC.IPs))
	hw := report.NewTable("", "IP", "Ai", "peak", "Bi")
	for _, ip := range m.SoC.IPs {
		hw.AddRow(ip.Name, ip.Acceleration, ip.Peak(m.SoC.Peak), ip.Bandwidth)
	}
	if err := hw.WriteText(os.Stdout); err != nil {
		return err
	}
	fmt.Println()

	for i, u := range usecases {
		var res *core.Result
		// The spec CLI renders user-authored models and usecases verbatim
		// (arbitrary fractions, TotalOps, SRAM) — shapes the eval query
		// does not express.
		if serialized {
			//lint:ignore evalboundary spec-driven CLI evaluates user-authored models the eval query cannot express
			res, err = m.EvaluateSerialized(u)
		} else {
			//lint:ignore evalboundary spec-driven CLI evaluates user-authored models the eval query cannot express
			res, err = m.Evaluate(u)
		}
		if err != nil {
			return err
		}
		fmt.Printf("usecase %q: Pattainable = %s (bottleneck: %s)\n",
			u.Name, res.Attainable, res.Bottleneck)
		tbl := report.NewTable("", "component", "f", "I (ops/B)", "bound (ops/s)")
		terms, _, err := m.PerformanceForm(u)
		if err == nil {
			for _, t := range terms {
				f, in := "-", "-"
				if t.Component.Kind == "IP" {
					w := u.Work[t.Component.Index]
					f = fmt.Sprintf("%.4g", w.Fraction)
					in = fmt.Sprintf("%.4g", float64(w.Intensity))
				}
				tbl.AddRow(t.Component.String(), f, in, t.Perf)
			}
			if err := tbl.WriteText(os.Stdout); err != nil {
				return err
			}
		}
		fmt.Println()

		if ascii || (svgPath != "" && i == 0) {
			lo, hi := chartRange(u)
			ch, err := plot.GablesChart(m, u, lo, hi, 65)
			if err != nil {
				return fmt.Errorf("chart for %q: %w", u.Name, err)
			}
			if ascii {
				out, err := ch.ASCII(72, 20)
				if err != nil {
					return err
				}
				fmt.Println(out)
			}
			if svgPath != "" && i == 0 {
				svg, err := ch.SVG(900, 560)
				if err != nil {
					return err
				}
				if err := os.WriteFile(svgPath, []byte(svg), 0o644); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", svgPath)
			}
		}
	}
	return nil
}

// chartRange picks a log-spanning intensity range around the usecase's
// operating intensities.
func chartRange(u *core.Usecase) (units.Intensity, units.Intensity) {
	lo, hi := units.Intensity(1e30), units.Intensity(0)
	for _, w := range u.Work {
		if w.Fraction == 0 || w.Intensity <= 0 {
			continue
		}
		if w.Intensity < lo {
			lo = w.Intensity
		}
		if w.Intensity > hi {
			hi = w.Intensity
		}
	}
	if hi == 0 {
		return 0.01, 100
	}
	return lo / 16, hi * 16
}

func load(specPath string) (*core.Model, []*core.Usecase, error) {
	if specPath == "" {
		s, err := core.TwoIP("paper-two-ip (built-in demo)",
			units.GopsPerSec(40), units.GBPerSec(10), 5,
			units.GBPerSec(6), units.GBPerSec(15))
		if err != nil {
			return nil, nil, err
		}
		m, err := core.New(s)
		if err != nil {
			return nil, nil, err
		}
		a, _ := core.TwoIPUsecase("fig6a (f=0)", 0, 8, 0.1)
		b, _ := core.TwoIPUsecase("fig6b (f=0.75)", 0.75, 8, 0.1)
		return m, []*core.Usecase{a, b}, nil
	}
	data, err := os.ReadFile(specPath)
	if err != nil {
		return nil, nil, err
	}
	doc, err := spec.Parse(data)
	if err != nil {
		return nil, nil, err
	}
	m, err := doc.Model()
	if err != nil {
		return nil, nil, err
	}
	us, err := doc.CoreUsecases()
	if err != nil {
		return nil, nil, err
	}
	return m, us, nil
}
