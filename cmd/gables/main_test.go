package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunBuiltinDemo(t *testing.T) {
	if err := run("", false, "", false); err != nil {
		t.Fatalf("built-in demo failed: %v", err)
	}
	if err := run("", true, "", true); err != nil {
		t.Fatalf("serialized + ascii failed: %v", err)
	}
}

func TestRunWithSpecAndSVG(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "soc.json")
	svgPath := filepath.Join(dir, "out.svg")
	doc := `{
  "soc": {
    "name": "t", "ppeak_gops": 40, "bpeak_gbs": 10,
    "ips": [
      {"name": "CPU", "acceleration": 1, "bandwidth_gbs": 6},
      {"name": "GPU", "acceleration": 5, "bandwidth_gbs": 15}
    ]
  },
  "usecases": [
    {"name": "u", "work": [
      {"fraction": 0.25, "intensity": 8},
      {"fraction": 0.75, "intensity": 0.1}
    ]}
  ]
}`
	if err := os.WriteFile(specPath, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(specPath, false, svgPath, false); err != nil {
		t.Fatalf("spec run failed: %v", err)
	}
	data, err := os.ReadFile(svgPath)
	if err != nil {
		t.Fatalf("SVG not written: %v", err)
	}
	if len(data) == 0 {
		t.Error("empty SVG")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("/nonexistent/path.json", false, "", false); err == nil {
		t.Error("missing spec file must fail")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(bad, false, "", false); err == nil {
		t.Error("malformed spec must fail")
	}
}

func TestChartRange(t *testing.T) {
	m, us, err := load("")
	if err != nil {
		t.Fatal(err)
	}
	_ = m
	lo, hi := chartRange(us[1])
	if lo <= 0 || hi <= lo {
		t.Errorf("range [%v, %v] invalid", float64(lo), float64(hi))
	}
}
