// Command gables-trace validates Chrome trace-event JSON files produced by
// the -trace flags of gables-repro and gables-erb (or by anything else that
// writes the format): it checks the structural invariants Perfetto and
// chrome://tracing rely on — a non-empty traceEvents array, name/ph/pid/tid
// on every event, finite non-negative timestamps, durations on complete
// events, arguments on counters, balanced begin/end nesting per track —
// and prints a one-line summary per file. CI runs it over the traced
// perf-smoke artifact so a malformed exporter fails the build rather than
// the first person to open a trace.
//
// Usage:
//
//	gables-trace file.json [file2.json ...]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/gables-model/gables/internal/sim/trace"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: gables-trace file.json [file2.json ...]")
		flag.PrintDefaults()
	}
	quiet := flag.Bool("q", false, "suppress per-file summaries; exit status only")
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	os.Exit(run(flag.Args(), *quiet, os.Stdout, os.Stderr))
}

// run validates each file and returns the process exit code: 0 when every
// file passes, 1 otherwise.
func run(paths []string, quiet bool, stdout, stderr io.Writer) int {
	failed := 0
	for _, path := range paths {
		stats, err := trace.ValidateFile(path)
		if err != nil {
			fmt.Fprintf(stderr, "gables-trace: %s: %v\n", path, err)
			failed++
			continue
		}
		if !quiet {
			fmt.Fprintf(stdout, "%s: ok — %d events (%d samples) across %d processes, %d tracks\n",
				path, stats.Events, stats.Samples, stats.Processes, stats.Tracks)
		}
	}
	if failed > 0 {
		return 1
	}
	return 0
}
