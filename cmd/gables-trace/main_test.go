package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/gables-model/gables/internal/kernel"
	"github.com/gables-model/gables/internal/sim"
	"github.com/gables-model/gables/internal/sim/trace"
)

// traceFromRealRun produces a trace file from an actual simulated run, so
// the validator test exercises the same artifact the -trace flags emit.
func traceFromRealRun(t *testing.T) string {
	t.Helper()
	sys, err := sim.New(sim.Snapdragon835())
	if err != nil {
		t.Fatal(err)
	}
	session := trace.NewSession()
	k := kernel.Kernel{Name: "smoke", WorkingSet: 1 << 20, Trials: 2,
		FlopsPerWord: 16, Pattern: kernel.ReadWrite}
	opt := sim.RunOptions{Probe: session.NewRun("smoke")}
	if _, err := sys.Run([]sim.Assignment{{IP: "CPU", Kernel: k}}, opt); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := session.WriteChromeFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunValidFile(t *testing.T) {
	path := traceFromRealRun(t)
	var out, errBuf bytes.Buffer
	if code := run([]string{path}, false, &out, &errBuf); code != 0 {
		t.Fatalf("valid trace rejected (exit %d): %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "ok") {
		t.Errorf("summary missing: %q", out.String())
	}
	if errBuf.Len() != 0 {
		t.Errorf("unexpected stderr: %q", errBuf.String())
	}
}

func TestRunQuiet(t *testing.T) {
	path := traceFromRealRun(t)
	var out, errBuf bytes.Buffer
	if code := run([]string{path}, true, &out, &errBuf); code != 0 {
		t.Fatalf("valid trace rejected (exit %d): %s", code, errBuf.String())
	}
	if out.Len() != 0 {
		t.Errorf("-q must suppress the summary, got %q", out.String())
	}
}

func TestRunInvalidFiles(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"empty.json":   `{"traceEvents":[]}`,
		"missing.json": `{"traceEvents":[{"ph":"X","ts":0}]}`,
		"garbage.json": `not json`,
	}
	for name, content := range cases {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		var out, errBuf bytes.Buffer
		if code := run([]string{path}, false, &out, &errBuf); code != 1 {
			t.Errorf("%s: want exit 1, got %d", name, code)
		}
		if errBuf.Len() == 0 {
			t.Errorf("%s: expected a diagnostic on stderr", name)
		}
	}
}

func TestRunMixedFilesStillFails(t *testing.T) {
	good := traceFromRealRun(t)
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"traceEvents":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errBuf bytes.Buffer
	if code := run([]string{good, bad}, false, &out, &errBuf); code != 1 {
		t.Errorf("one bad file of two must fail: got exit %d", code)
	}
	if !strings.Contains(out.String(), "ok") {
		t.Errorf("good file should still be summarized: %q", out.String())
	}
}
