package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/gables-model/gables/internal/eval"
	"github.com/gables-model/gables/internal/gridplan"
)

func TestRunDSPOnly(t *testing.T) {
	if err := run("835", "DSP", false, false, "", nil); err != nil {
		t.Fatalf("DSP roofline failed: %v", err)
	}
}

func TestRunWithDirAndMixing(t *testing.T) {
	dir := t.TempDir()
	if err := run("821", "CPU", false, false, dir, nil); err != nil {
		t.Fatalf("821 CPU with dir failed: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "cpu_roofline.svg")); err != nil {
		t.Errorf("roofline SVG not written: %v", err)
	}
}

func TestRunNative(t *testing.T) {
	// Only the native Algorithm 1 pass: measure the host briefly.
	if err := run("835", "", false, true, "", nil); err != nil {
		t.Fatalf("native run failed: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("999", "CPU", false, false, "", nil); err == nil {
		t.Error("unknown chip must fail")
	}
	if err := run("835", "GhostIP", false, false, "", nil); err == nil {
		t.Error("unknown IP must fail")
	}
}

func TestParseRefine(t *testing.T) {
	if opts, err := parseRefine("off", 0); err != nil || opts != nil {
		t.Errorf("off: opts=%v err=%v, want nil, nil", opts, err)
	}
	opts, err := parseRefine("exact", 0.1)
	if err != nil || opts == nil || opts.Mode != gridplan.ModeExact || opts.Tolerance != 0.1 {
		t.Errorf("exact: opts=%+v err=%v", opts, err)
	}
	opts, err = parseRefine("fast", 0.25)
	if err != nil || opts == nil || opts.Mode != gridplan.ModeFast || opts.Tolerance != 0.25 {
		t.Errorf("fast: opts=%+v err=%v", opts, err)
	}
	if _, err := parseRefine("bogus", 0); err == nil {
		t.Error("unknown mode accepted")
	}
	if _, err := parseRefine("fast", -1); err == nil {
		t.Error("negative tolerance accepted")
	}
}

func TestRunValidation(t *testing.T) {
	if err := runValidation("835", nil); err != nil {
		t.Fatalf("validation failed: %v", err)
	}
}

func TestRunValidationRefined(t *testing.T) {
	if err := runValidation("835", &gridplan.Options{}); err != nil {
		t.Fatalf("refined (exact-mode) validation failed: %v", err)
	}
	if err := runValidation("999", nil); err == nil {
		t.Error("unknown chip must fail")
	}
}

// TestSelectBackend is the flag-parse-time gate: every registered backend
// name (surrogate included) is accepted, anything else fails immediately
// with the allowed set.
func TestSelectBackend(t *testing.T) {
	defer func() {
		if err := eval.SetDefault("sim"); err != nil {
			t.Fatal(err)
		}
	}()
	valid := append([]string{""}, eval.Names()...)
	for _, name := range valid {
		if err := selectBackend(name); err != nil {
			t.Errorf("selectBackend(%q) = %v, want nil", name, err)
		}
	}
	for _, name := range []string{"bogus", "SIM", "simulator"} {
		err := selectBackend(name)
		if err == nil {
			t.Errorf("selectBackend(%q) accepted", name)
			continue
		}
		if !strings.Contains(err.Error(), "allowed:") || !strings.Contains(err.Error(), "surrogate") {
			t.Errorf("selectBackend(%q) error %q does not list the allowed set", name, err)
		}
	}
}

// TestRunCalibrate drives the -calibrate entry point end to end: fit,
// print, persist, and re-load from the persisted artifact.
func TestRunCalibrate(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := runCalibrate(&out, "835", dir); err != nil {
		t.Fatalf("calibrate failed: %v", err)
	}
	for _, want := range []string{"surrogate calibration for", "Bpeak", "CPU", "efficiency table", "artifact: "} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("calibrate output missing %q:\n%s", want, out.String())
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("artifact dir entries = %v, err %v, want exactly one artifact", entries, err)
	}
	// Second run loads the artifact instead of re-fitting and prints the
	// same parameters.
	var again bytes.Buffer
	if err := runCalibrate(&again, "835", dir); err != nil {
		t.Fatalf("re-calibrate failed: %v", err)
	}
	if out.String() != again.String() {
		t.Errorf("loaded calibration prints differently:\nfit:  %s\nload: %s", out.String(), again.String())
	}
	if err := runCalibrate(io.Discard, "999", dir); err == nil {
		t.Error("unknown chip must fail")
	}
}
