package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/gables-model/gables/internal/gridplan"
)

func TestRunDSPOnly(t *testing.T) {
	if err := run("835", "DSP", false, false, "", nil); err != nil {
		t.Fatalf("DSP roofline failed: %v", err)
	}
}

func TestRunWithDirAndMixing(t *testing.T) {
	dir := t.TempDir()
	if err := run("821", "CPU", false, false, dir, nil); err != nil {
		t.Fatalf("821 CPU with dir failed: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "cpu_roofline.svg")); err != nil {
		t.Errorf("roofline SVG not written: %v", err)
	}
}

func TestRunNative(t *testing.T) {
	// Only the native Algorithm 1 pass: measure the host briefly.
	if err := run("835", "", false, true, "", nil); err != nil {
		t.Fatalf("native run failed: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("999", "CPU", false, false, "", nil); err == nil {
		t.Error("unknown chip must fail")
	}
	if err := run("835", "GhostIP", false, false, "", nil); err == nil {
		t.Error("unknown IP must fail")
	}
}

func TestParseRefine(t *testing.T) {
	if opts, err := parseRefine("off", 0); err != nil || opts != nil {
		t.Errorf("off: opts=%v err=%v, want nil, nil", opts, err)
	}
	opts, err := parseRefine("exact", 0.1)
	if err != nil || opts == nil || opts.Mode != gridplan.ModeExact || opts.Tolerance != 0.1 {
		t.Errorf("exact: opts=%+v err=%v", opts, err)
	}
	opts, err = parseRefine("fast", 0.25)
	if err != nil || opts == nil || opts.Mode != gridplan.ModeFast || opts.Tolerance != 0.25 {
		t.Errorf("fast: opts=%+v err=%v", opts, err)
	}
	if _, err := parseRefine("bogus", 0); err == nil {
		t.Error("unknown mode accepted")
	}
	if _, err := parseRefine("fast", -1); err == nil {
		t.Error("negative tolerance accepted")
	}
}

func TestRunValidation(t *testing.T) {
	if err := runValidation("835"); err != nil {
		t.Fatalf("validation failed: %v", err)
	}
}
