package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunDSPOnly(t *testing.T) {
	if err := run("835", "DSP", false, false, ""); err != nil {
		t.Fatalf("DSP roofline failed: %v", err)
	}
}

func TestRunWithDirAndMixing(t *testing.T) {
	dir := t.TempDir()
	if err := run("821", "CPU", false, false, dir); err != nil {
		t.Fatalf("821 CPU with dir failed: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "cpu_roofline.svg")); err != nil {
		t.Errorf("roofline SVG not written: %v", err)
	}
}

func TestRunNative(t *testing.T) {
	// Only the native Algorithm 1 pass: measure the host briefly.
	if err := run("835", "", false, true, ""); err != nil {
		t.Fatalf("native run failed: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("999", "CPU", false, false, ""); err == nil {
		t.Error("unknown chip must fail")
	}
	if err := run("835", "GhostIP", false, false, ""); err == nil {
		t.Error("unknown IP must fail")
	}
}

func TestRunValidation(t *testing.T) {
	if err := runValidation("835"); err != nil {
		t.Fatalf("validation failed: %v", err)
	}
}
