// Command gables-erb runs the empirical-roofline harness on the simulated
// SoC (the repository's stand-in for the paper's Snapdragon silicon): it
// sweeps the Algorithm 1 micro-benchmark over operational intensities,
// fits and prints each IP's pessimistic roofline, and optionally runs the
// §IV-C mixing analysis or the host-native kernel.
//
// Sweep cells are memoized through internal/simcache; -cache (or
// GABLES_CACHE_DIR) persists them on disk across invocations, and -v
// prints the cache counters to stderr.
//
// -trace FILE records every sweep cell's simulation as a Chrome
// trace-event JSON file (Perfetto-loadable) and -metrics prints a
// plain-text utilization summary to stderr; both are observe-only but
// bypass the simulation cache.
//
// -refine routes the mixing grid — and, when -validate is set, the
// validation grid's measured column — through the coarse-to-fine planner:
// "exact" still simulates every cell but byte-verifies the plan (the CI
// posture), "fast" interpolates tile interiors whose probes land within
// -refine-tol and prints the planner's savings to stderr.
//
// -calibrate fits (or loads, when -calibration-dir or
// $GABLES_CALIBRATION_DIR holds a matching artifact) the surrogate
// backend's calibration for the selected chip and prints the fitted
// roofline parameters, the efficiency-table residuals, and the artifact's
// content address.
//
// Usage:
//
//	gables-erb [-chip 835|821] [-ip CPU,GPU,DSP] [-mixing] [-refine off|exact|fast] [-calibrate] [-native] [-cache dir] [-trace file] [-metrics] [-v] [-dir out]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/gables-model/gables/internal/erb"
	"github.com/gables-model/gables/internal/eval"
	"github.com/gables-model/gables/internal/gridplan"
	"github.com/gables-model/gables/internal/kernel"
	"github.com/gables-model/gables/internal/plot"
	"github.com/gables-model/gables/internal/report"
	"github.com/gables-model/gables/internal/sim"
	"github.com/gables-model/gables/internal/sim/trace"
	"github.com/gables-model/gables/internal/simcache"
	"github.com/gables-model/gables/internal/surrogate"
)

func main() {
	chip := flag.String("chip", "835", "simulated chip: 835 or 821")
	ips := flag.String("ip", "CPU,GPU,DSP", "comma-separated IPs to measure")
	mixing := flag.Bool("mixing", false, "also run the §IV-C CPU+GPU mixing analysis")
	refine := flag.String("refine", "off", "coarse-to-fine planner for the mixing grid: off, exact (verify against dense), or fast (interpolate trusted tiles)")
	refineTol := flag.Float64("refine-tol", 0, "probe tolerance for -refine (relative error; 0 uses the planner default)")
	native := flag.Bool("native", false, "also run Algorithm 1 natively on this host")
	validate := flag.Bool("validate", false, "also cross-validate the analytic model against the simulator")
	dir := flag.String("dir", "", "write roofline SVGs into this directory")
	cacheDir := flag.String("cache", "", "persist simulation results in this directory (default $"+simcache.EnvDir+")")
	traceFile := flag.String("trace", "", "write a Chrome trace-event/Perfetto JSON trace of every simulation run to this file")
	metrics := flag.Bool("metrics", false, "print a metrics summary of the traced simulation runs to stderr")
	verbose := flag.Bool("v", false, "print cache statistics to stderr after the run")
	backend := flag.String("backend", "", "evaluation backend for the mixing analysis: "+
		strings.Join(eval.Names(), "|")+" (default sim; auto routes to analytic inside the calibrated envelope)")
	calibrate := flag.Bool("calibrate", false, "fit (or load) the surrogate calibration for -chip and print the fitted parameters")
	calibDir := flag.String("calibration-dir", "", "persist surrogate calibration artifacts in this directory (default $"+surrogate.EnvDir+")")
	flag.Parse()

	if err := selectBackend(*backend); err != nil {
		fmt.Fprintln(os.Stderr, "gables-erb:", err)
		os.Exit(1)
	}
	if *cacheDir != "" {
		simcache.EnableDisk(*cacheDir)
	} else {
		simcache.EnableDiskFromEnv()
	}
	var session *trace.Session
	if *traceFile != "" || *metrics {
		session = trace.NewSession()
		simcache.SetProbeFactory(session.NewRun)
	}
	refineOpts, err := parseRefine(*refine, *refineTol)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gables-erb:", err)
		os.Exit(1)
	}
	if *calibrate {
		err = runCalibrate(os.Stdout, *chip, *calibDir)
	} else {
		err = run(*chip, *ips, *mixing, *native, *dir, refineOpts)
		if err == nil && *validate {
			err = runValidation(*chip, refineOpts)
		}
	}
	if session != nil && err == nil {
		err = writeTraceArtifacts(session, *traceFile, *metrics)
	}
	if *verbose {
		fmt.Fprintln(os.Stderr, simcache.FormatStats("sim-cache", simcache.DefaultStats()))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gables-erb:", err)
		os.Exit(1)
	}
}

// writeTraceArtifacts exports the session's trace file and/or metrics
// summary. The summary goes to stderr so traced and untraced stdout stay
// byte-identical.
func writeTraceArtifacts(session *trace.Session, traceFile string, metrics bool) error {
	if traceFile != "" {
		if err := session.WriteChromeFile(traceFile); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote trace of %d simulation runs to %s\n", session.Runs(), traceFile)
	}
	if metrics {
		return session.WriteSummary(os.Stderr)
	}
	return nil
}

// selectBackend validates -backend at flag-parse time — a typo'd name
// fails immediately with the allowed set, before any sweep has run — and
// installs the valid, non-empty name as the process-default evaluator.
func selectBackend(name string) error {
	if err := eval.CheckBackend(name); err != nil {
		return err
	}
	if name == "" {
		return nil
	}
	return eval.SetDefault(name)
}

// chipConfig resolves the -chip flag to a simulated chip preset.
func chipConfig(chip string) (sim.Config, error) {
	switch chip {
	case "835":
		return sim.Snapdragon835(), nil
	case "821":
		return sim.Snapdragon821(), nil
	default:
		return sim.Config{}, fmt.Errorf("unknown chip %q (want 835 or 821)", chip)
	}
}

// runCalibrate fits (or loads) the surrogate calibration for the chip and
// prints the fitted roofline parameters and residual summary — the
// human-readable face of the artifact the surrogate backend answers from.
func runCalibrate(w io.Writer, chip, dir string) error {
	cfg, err := chipConfig(chip)
	if err != nil {
		return err
	}
	if dir == "" {
		dir = os.Getenv(surrogate.EnvDir)
	}
	backend := surrogate.New(surrogate.Options{Dir: dir})
	cal, err := backend.Calibration(context.Background(), cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "surrogate calibration for %s (fingerprint %s):\n", cal.Chip, cal.Fingerprint)
	fmt.Fprintf(w, "  Bpeak: %.4g GB/s\n", cal.Bpeak/1e9)
	tbl := report.NewTable("fitted rooflines", "IP", "peak GFLOPS/s", "link GB/s", "fit residual")
	for _, ip := range cal.IPs {
		tbl.AddRow(ip.Name, ip.Peak/1e9, ip.Bandwidth/1e9, fmt.Sprintf("%.1f%%", 100*ip.Residual))
	}
	if err := tbl.WriteText(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "efficiency table: %d buckets, residual mean %.1f%%, max %.1f%%\n",
		len(cal.Table), 100*cal.ResidualMean, 100*cal.ResidualMax)
	if dir != "" {
		fmt.Fprintf(w, "artifact: %s\n", surrogate.NewStore(dir).Path(cal.Fingerprint))
	}
	return nil
}

// runValidation prints the model-vs-simulator grid (the paper's "correct
// shape and reasonable relative error" bar). A non-nil refine routes the
// measured column through the coarse-to-fine planner.
func runValidation(chip string, refine *gridplan.Options) error {
	cfg, err := chipConfig(chip)
	if err != nil {
		return err
	}
	sys, err := sim.New(cfg)
	if err != nil {
		return err
	}
	res, err := erb.ValidateModel(sys, erb.ValidationOptions{CPU: "CPU", Accel: "GPU", Refine: refine})
	if err != nil {
		return err
	}
	if res.Plan != nil {
		fmt.Fprintf(os.Stderr, "validation plan: %d simulated, %d interpolated, %d/%d tiles refined, max probe err %.3f\n",
			res.Plan.Evaluated, res.Plan.Interpolated, res.Plan.RefinedTiles, res.Plan.Tiles, res.Plan.MaxInterpErr)
	}
	tbl := report.NewTable("model vs simulator (GFLOPS/s)", "f", "I (ops/B)", "predicted", "measured", "rel err")
	for _, c := range res.Cells {
		tbl.AddRow(c.F, float64(c.FlopsPerWord)/8, c.Predicted/1e9, c.Measured/1e9,
			fmt.Sprintf("%.1f%%", 100*c.RelError))
	}
	if err := tbl.WriteText(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("shape consistent: %v; mean error %.1f%%, max %.1f%%\n",
		res.ShapeConsistent, 100*res.MeanRelError, 100*res.MaxRelError)
	return nil
}

// parseRefine maps the -refine/-refine-tol flags onto gridplan options:
// nil for "off", the zero value (exact mode) for "exact", and fast mode
// with the chosen tolerance for "fast".
func parseRefine(mode string, tol float64) (*gridplan.Options, error) {
	if tol < 0 {
		return nil, fmt.Errorf("-refine-tol must be non-negative, got %v", tol)
	}
	switch mode {
	case "off", "":
		return nil, nil
	case "exact":
		return &gridplan.Options{Tolerance: tol}, nil
	case "fast":
		return &gridplan.Options{Tolerance: tol, Mode: gridplan.ModeFast}, nil
	default:
		return nil, fmt.Errorf("unknown -refine mode %q (want off, exact, or fast)", mode)
	}
}

func run(chip, ips string, mixing, native bool, dir string, refine *gridplan.Options) error {
	cfg, err := chipConfig(chip)
	if err != nil {
		return err
	}
	sys, err := sim.New(cfg)
	if err != nil {
		return err
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}

	patterns := map[string]kernel.Pattern{"GPU": kernel.StreamCopy}
	for _, name := range strings.Split(ips, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		p := kernel.ReadWrite
		if pp, ok := patterns[name]; ok {
			p = pp
		}
		pts, fit, err := erb.MeasureRoofline(sys, name, erb.SweepOptions{Pattern: p})
		if err != nil {
			return err
		}
		fmt.Printf("%s roofline (%s kernel): peak %s, bandwidth %s, ridge %.3g ops/B\n",
			name, p, fit.Peak, fit.Bandwidth, float64(fit.RidgePoint()))
		tbl := report.NewTable("", "intensity (flops/B)", "GFLOPS/s", "GB/s")
		for _, pt := range pts {
			tbl.AddRow(float64(pt.Intensity), pt.Attainable.Gops(),
				float64(pt.Attainable)/float64(pt.Intensity)/1e9)
		}
		if err := tbl.WriteText(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		if dir != "" {
			ch, err := plot.RooflineChart(fit, 0.01, 1000, 65)
			if err != nil {
				return err
			}
			ch.Series = append(ch.Series, plot.FitPointsSeries("measured", pts))
			svg, err := ch.SVG(900, 560)
			if err != nil {
				return err
			}
			path := filepath.Join(dir, strings.ToLower(name)+"_roofline.svg")
			if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", path)
		}
	}

	if mixing {
		res, err := erb.Mixing(sys, erb.MixingOptions{CPU: "CPU", Accel: "GPU", Refine: refine})
		if err != nil {
			return err
		}
		if res.Plan != nil {
			fmt.Fprintf(os.Stderr, "refinement plan: %d simulated (%d lattice+probe, %d refined), %d interpolated, %d/%d tiles refined, max probe err %.3f\n",
				res.Plan.Evaluated, res.Plan.Evaluated-res.Plan.Refined, res.Plan.Refined,
				res.Plan.Interpolated, res.Plan.RefinedTiles, res.Plan.Tiles, res.Plan.MaxInterpErr)
		}
		fmt.Printf("mixing analysis (baseline %.4g GFLOPS/s):\n", res.BaselineRate/1e9)
		tbl := report.NewTable("", "f", "I=1", "I=4", "I=16", "I=64", "I=256", "I=1024")
		fpws := []int{8, 32, 128, 512, 2048, 8192}
		base := res.Line(8)
		for i := range base {
			row := []any{base[i].F}
			for _, fpw := range fpws {
				row = append(row, res.Line(fpw)[i].Normalized)
			}
			tbl.AddRow(row...)
		}
		if err := tbl.WriteText(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}

	if native {
		fmt.Println("Algorithm 1 on this host (read+write, 16 MiB, 3 trials):")
		tbl := report.NewTable("", "flops/word", "GFLOPS/s")
		for _, fpw := range kernel.PowersOfTwo(8) {
			res, err := kernel.RunNative(kernel.Kernel{
				Name: "host", WorkingSet: 16 << 20, Trials: 3,
				FlopsPerWord: fpw, Pattern: kernel.ReadWrite,
			})
			if err != nil {
				return err
			}
			tbl.AddRow(fpw, res.Rate.Gops())
		}
		if err := tbl.WriteText(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}
