// Command gables-load drives synthetic traffic against a gables-web
// instance and records the serving trajectory. It issues an open-loop
// request stream (arrivals fire on schedule whether or not earlier
// requests have completed — the honest overload model; a closed loop
// self-throttles and can never exhibit the shed path) with a seeded,
// reproducible query mix over /eval and /eval/batch, in two phases:
//
//   - cold: the first pass over the mix, paying real evaluations;
//   - warm: the identical seeded sequence again, so the delta between
//     the phases is the server's cache trajectory.
//
// Each phase records request counts (ok / shed / failed), p50 and p99
// latency, the shed rate, and the server-side cache hit/miss deltas read
// from /stats. A Record tagged with the git SHA and Go version is
// appended to BENCH_serve.json — the serving counterpart of
// gables-bench's BENCH_sim.json; DESIGN.md §13 describes how to read it.
//
// Usage:
//
//	gables-load [-target http://host:8337 | -inprocess] [-rate 200] [-n 400]
//	            [-backend analytic] [-batch-frac 0.1] [-seed 1]
//	            [-out BENCH_serve.json] [-check] [-dry]
//
// With -inprocess the tool serves web.Handler on a loopback listener and
// drives itself — the CI load-smoke shape, no external process needed.
// With -check the process exits 1 when the produced record is
// structurally invalid (counts that do not add up, out-of-range rates,
// inverted percentiles).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/gables-model/gables/internal/web"
)

// request is one synthetic query: a GET when Body is empty, a POST to
// /eval/batch otherwise.
type request struct {
	Path string `json:"path"`
	Body string `json:"body,omitempty"`
}

// GenRequests builds the seeded query mix: n requests over the chip
// presets with fractions and intensities drawn from small grids (so a
// repeat pass re-asks mostly-seen questions and exercises the server's
// caches), batchFrac of them as 4-item /eval/batch posts. The same seed
// always yields the identical sequence — the warm phase replays it.
func GenRequests(seed int64, n int, backend string, batchFrac float64) []request {
	rng := rand.New(rand.NewSource(seed))
	chips := []string{"", "snapdragon821", "snapdragon835x"}
	fpws := []int{32, 128, 512}
	reqs := make([]request, n)
	for i := range reqs {
		if rng.Float64() < batchFrac {
			var items []string
			for k := 0; k < 4; k++ {
				items = append(items, fmt.Sprintf(`{"chip":%q,"f":0.%d,"fpw":%d}`,
					chips[rng.Intn(len(chips))], rng.Intn(9)+1, fpws[rng.Intn(len(fpws))]))
			}
			reqs[i] = request{
				Path: "/eval/batch",
				Body: fmt.Sprintf(`{"backend":%q,"items":[%s]}`, backend, strings.Join(items, ",")),
			}
			continue
		}
		reqs[i] = request{Path: fmt.Sprintf("/eval?backend=%s&chip=%s&f=0.%d&fpw=%d",
			backend, chips[rng.Intn(len(chips))], rng.Intn(9)+1, fpws[rng.Intn(len(fpws))])}
	}
	return reqs
}

// PhaseStats is one phase's measurement.
type PhaseStats struct {
	Phase    string `json:"phase"`
	Requests int    `json:"requests"`
	// OK / Shed / Failed partition Requests: 200s, 429s, everything else
	// (including transport errors).
	OK     int `json:"ok"`
	Shed   int `json:"shed"`
	Failed int `json:"failed"`
	// P50Ms and P99Ms summarize completed-request latency.
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
	// ShedRate is Shed/Requests.
	ShedRate float64 `json:"shed_rate"`
	// CacheHits/CacheMisses are the server-side /stats deltas over the
	// phase (summed across the web, sim, and eval caches); the warm
	// phase's hit rate rising toward 1 is the cache trajectory working.
	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// Record is one gables-load run.
type Record struct {
	GitSHA     string       `json:"git_sha"`
	GoVersion  string       `json:"go_version"`
	Target     string       `json:"target"`
	Backend    string       `json:"backend"`
	RatePerSec float64      `json:"rate_per_sec"`
	Seed       int64        `json:"seed"`
	Phases     []PhaseStats `json:"phases"`
}

// File is the serving trajectory: records in run order, newest last.
type File struct {
	Records []Record `json:"records"`
}

// Load reads a trajectory file; a missing file is an empty trajectory.
func Load(path string) (File, error) {
	var f File
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return f, nil
	}
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("gables-load: %s: %v", path, err)
	}
	return f, nil
}

// Save writes the trajectory with stable, diff-friendly formatting.
func Save(path string, f File) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ValidateRecord checks a record's internal consistency — the CI
// load-smoke job runs with -check so a half-written or nonsensical
// trajectory fails loudly instead of being uploaded as an artifact.
func ValidateRecord(r Record) error {
	if r.GitSHA == "" || r.GoVersion == "" {
		return fmt.Errorf("record missing git_sha/go_version")
	}
	if r.Target == "" {
		return fmt.Errorf("record missing target")
	}
	if r.RatePerSec <= 0 {
		return fmt.Errorf("rate_per_sec = %v, want positive", r.RatePerSec)
	}
	if len(r.Phases) == 0 {
		return fmt.Errorf("record has no phases")
	}
	for _, p := range r.Phases {
		if p.Phase == "" {
			return fmt.Errorf("unnamed phase")
		}
		if p.Requests <= 0 {
			return fmt.Errorf("phase %s: no requests", p.Phase)
		}
		if p.OK+p.Shed+p.Failed != p.Requests {
			return fmt.Errorf("phase %s: ok+shed+failed = %d, want %d",
				p.Phase, p.OK+p.Shed+p.Failed, p.Requests)
		}
		if p.OK > 0 && (p.P50Ms < 0 || p.P99Ms < p.P50Ms) {
			return fmt.Errorf("phase %s: percentiles p50=%v p99=%v", p.Phase, p.P50Ms, p.P99Ms)
		}
		if p.ShedRate < 0 || p.ShedRate > 1 {
			return fmt.Errorf("phase %s: shed_rate = %v", p.Phase, p.ShedRate)
		}
		if p.CacheHitRate < 0 || p.CacheHitRate > 1 {
			return fmt.Errorf("phase %s: cache_hit_rate = %v", p.Phase, p.CacheHitRate)
		}
	}
	return nil
}

// Percentile returns the q-quantile (0..1) of the values by
// nearest-rank on a sorted copy; 0 when empty.
func Percentile(values []float64, q float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// cacheCounters is the slice of /stats this tool reads: the three
// simcache sections' hit/miss counters.
type cacheCounters struct {
	Hits, Misses int64
}

// fetchCacheCounters sums the hit and miss counters across the server's
// cache sections; errors degrade to zeros (the load numbers still stand
// when /stats is unreachable).
func fetchCacheCounters(client *http.Client, base string) cacheCounters {
	resp, err := client.Get(base + "/stats")
	if err != nil {
		return cacheCounters{}
	}
	defer resp.Body.Close()
	var snap map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return cacheCounters{}
	}
	var total cacheCounters
	for _, section := range []string{"web_eval", "sim_runs", "eval_outcomes"} {
		raw, ok := snap[section]
		if !ok {
			continue
		}
		var s struct {
			Hits      int64 `json:"hits"`
			DiskHits  int64 `json:"disk_hits"`
			PeerHits  int64 `json:"peer_hits"`
			Coalesced int64 `json:"coalesced"`
			Misses    int64 `json:"misses"`
		}
		if err := json.Unmarshal(raw, &s); err != nil {
			continue
		}
		total.Hits += s.Hits + s.DiskHits + s.PeerHits + s.Coalesced
		total.Misses += s.Misses
	}
	return total
}

// runPhase fires the requests open-loop at rate req/s and collects the
// phase's statistics. Arrivals are scheduled from the phase start, so a
// slow server accumulates in-flight requests instead of slowing the
// stream down — exactly the regime admission control exists for.
func runPhase(client *http.Client, base, phase string, reqs []request, rate float64) PhaseStats {
	interval := time.Duration(float64(time.Second) / rate)
	start := time.Now()
	var (
		mu        sync.Mutex
		latencies []float64
		ps        = PhaseStats{Phase: phase, Requests: len(reqs)}
		wg        sync.WaitGroup
	)
	before := fetchCacheCounters(client, base)
	for i, rq := range reqs {
		if d := time.Until(start.Add(time.Duration(i) * interval)); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(rq request) {
			defer wg.Done()
			t0 := time.Now()
			var resp *http.Response
			var err error
			if rq.Body != "" {
				resp, err = client.Post(base+rq.Path, "application/json", strings.NewReader(rq.Body))
			} else {
				resp, err = client.Get(base + rq.Path)
			}
			elapsed := time.Since(t0)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				ps.Failed++
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			switch {
			case resp.StatusCode == http.StatusOK:
				ps.OK++
				latencies = append(latencies, float64(elapsed)/float64(time.Millisecond))
			case resp.StatusCode == http.StatusTooManyRequests:
				ps.Shed++
			default:
				ps.Failed++
			}
		}(rq)
	}
	wg.Wait()
	after := fetchCacheCounters(client, base)

	ps.P50Ms = Percentile(latencies, 0.50)
	ps.P99Ms = Percentile(latencies, 0.99)
	ps.ShedRate = float64(ps.Shed) / float64(ps.Requests)
	ps.CacheHits = after.Hits - before.Hits
	ps.CacheMisses = after.Misses - before.Misses
	if total := ps.CacheHits + ps.CacheMisses; total > 0 {
		ps.CacheHitRate = float64(ps.CacheHits) / float64(total)
	}
	return ps
}

// gitSHA resolves HEAD (suffixed -dirty on a modified worktree), or
// "unknown" outside a git checkout — the gables-bench convention.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	sha := strings.TrimSpace(string(out))
	if status, err := exec.Command("git", "status", "--porcelain").Output(); err == nil && len(status) > 0 {
		sha += "-dirty"
	}
	return sha
}

// startInProcess serves web.Handler on a loopback listener and returns
// the base URL and a shutdown func.
func startInProcess() (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: web.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return "http://" + ln.Addr().String(), func() { srv.Close() }, nil
}

func run(args []string, stdout io.Writer) int {
	fs := flag.NewFlagSet("gables-load", flag.ContinueOnError)
	target := fs.String("target", "", "base URL of a running gables-web (e.g. http://localhost:8337)")
	inprocess := fs.Bool("inprocess", false, "serve web.Handler in-process on loopback and drive that")
	rate := fs.Float64("rate", 200, "open-loop arrival rate, requests/second")
	n := fs.Int("n", 400, "requests per phase")
	backend := fs.String("backend", "analytic", "backend the query mix names")
	batchFrac := fs.Float64("batch-frac", 0.1, "fraction of requests issued as 4-item /eval/batch posts")
	seed := fs.Int64("seed", 1, "query-mix seed (the warm phase replays the same sequence)")
	out := fs.String("out", "BENCH_serve.json", "trajectory file to append to")
	check := fs.Bool("check", false, "exit 1 when the produced record is structurally invalid")
	dry := fs.Bool("dry", false, "measure and report without rewriting the trajectory file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if (*target == "") == !*inprocess {
		fmt.Fprintln(os.Stderr, "gables-load: need exactly one of -target or -inprocess")
		return 2
	}
	if *rate <= 0 || *n <= 0 {
		fmt.Fprintln(os.Stderr, "gables-load: -rate and -n must be positive")
		return 2
	}

	base := *target
	if *inprocess {
		var shutdown func()
		var err error
		base, shutdown, err = startInProcess()
		if err != nil {
			fmt.Fprintln(os.Stderr, "gables-load:", err)
			return 1
		}
		defer shutdown()
	}
	base = strings.TrimRight(base, "/")

	client := &http.Client{Timeout: 30 * time.Second}
	reqs := GenRequests(*seed, *n, *backend, *batchFrac)
	rec := Record{
		GitSHA:     gitSHA(),
		GoVersion:  runtime.Version(),
		Target:     base,
		Backend:    *backend,
		RatePerSec: *rate,
		Seed:       *seed,
	}
	for _, phase := range []string{"cold", "warm"} {
		ps := runPhase(client, base, phase, reqs, *rate)
		rec.Phases = append(rec.Phases, ps)
		fmt.Fprintf(stdout, "%-5s %5d req  ok %-5d shed %-4d failed %-4d p50 %7.2fms  p99 %7.2fms  cache hit %5.1f%%\n",
			ps.Phase, ps.Requests, ps.OK, ps.Shed, ps.Failed, ps.P50Ms, ps.P99Ms, 100*ps.CacheHitRate)
	}

	if err := ValidateRecord(rec); err != nil {
		fmt.Fprintln(os.Stderr, "gables-load: invalid record:", err)
		if *check {
			return 1
		}
	}

	if !*dry {
		traj, err := Load(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		traj.Records = append(traj.Records, rec)
		if err := Save(*out, traj); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "appended record %d to %s\n", len(traj.Records)-1, *out)
	}
	return 0
}

func main() { os.Exit(run(os.Args[1:], os.Stdout)) }
