package main

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestGenRequestsDeterministic(t *testing.T) {
	a := GenRequests(7, 50, "analytic", 0.2)
	b := GenRequests(7, 50, "analytic", 0.2)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different mixes")
	}
	c := GenRequests(8, 50, "analytic", 0.2)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced the identical mix")
	}
	batches := 0
	for _, r := range a {
		if r.Body != "" {
			if r.Path != "/eval/batch" {
				t.Errorf("batch body on %s", r.Path)
			}
			batches++
			continue
		}
		if !strings.HasPrefix(r.Path, "/eval?") {
			t.Errorf("unexpected path %s", r.Path)
		}
	}
	if batches == 0 {
		t.Error("batch-frac 0.2 over 50 requests produced no batch posts")
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{5, 1, 4, 2, 3}
	if got := Percentile(vals, 0.5); got != 3 {
		t.Errorf("p50 = %v, want 3", got)
	}
	if got := Percentile(vals, 0.99); got != 5 {
		t.Errorf("p99 = %v, want 5", got)
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Errorf("empty p50 = %v", got)
	}
	// Percentile must not reorder the caller's slice.
	if vals[0] != 5 {
		t.Error("input slice mutated")
	}
}

func TestValidateRecord(t *testing.T) {
	good := Record{
		GitSHA: "abc", GoVersion: "go1.22", Target: "http://x", Backend: "analytic",
		RatePerSec: 100, Phases: []PhaseStats{
			{Phase: "cold", Requests: 10, OK: 8, Shed: 1, Failed: 1, P50Ms: 1, P99Ms: 2, ShedRate: 0.1},
			{Phase: "warm", Requests: 10, OK: 10, P50Ms: 0.5, P99Ms: 1, CacheHitRate: 0.9},
		},
	}
	if err := ValidateRecord(good); err != nil {
		t.Fatalf("good record rejected: %v", err)
	}
	for name, mutate := range map[string]func(*Record){
		"no-sha":        func(r *Record) { r.GitSHA = "" },
		"no-target":     func(r *Record) { r.Target = "" },
		"zero-rate":     func(r *Record) { r.RatePerSec = 0 },
		"no-phases":     func(r *Record) { r.Phases = nil },
		"bad-sum":       func(r *Record) { r.Phases[0].OK = 5 },
		"inverted-p":    func(r *Record) { r.Phases[1].P99Ms = 0.1 },
		"bad-shed-rate": func(r *Record) { r.Phases[0].ShedRate = 1.5 },
	} {
		r := good
		r.Phases = append([]PhaseStats(nil), good.Phases...)
		mutate(&r)
		if err := ValidateRecord(r); err == nil {
			t.Errorf("%s: invalid record accepted", name)
		}
	}
}

// TestLoadSmoke is the CI load-smoke shape in miniature: an in-process
// run, a structurally valid record appended, and a second run appending
// rather than overwriting.
func TestLoadSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_serve.json")
	args := []string{"-inprocess", "-rate", "500", "-n", "40", "-batch-frac", "0.2", "-check", "-out", out}

	var buf bytes.Buffer
	if code := run(args, &buf); code != 0 {
		t.Fatalf("run exited %d:\n%s", code, buf.String())
	}
	traj, err := Load(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(traj.Records) != 1 {
		t.Fatalf("got %d records, want 1", len(traj.Records))
	}
	rec := traj.Records[0]
	if err := ValidateRecord(rec); err != nil {
		t.Fatal(err)
	}
	if len(rec.Phases) != 2 || rec.Phases[0].Phase != "cold" || rec.Phases[1].Phase != "warm" {
		t.Fatalf("phases = %+v", rec.Phases)
	}
	for _, p := range rec.Phases {
		if p.OK == 0 {
			t.Errorf("phase %s: no successful requests:\n%s", p.Phase, buf.String())
		}
	}
	// The warm phase replays the cold phase's seeded sequence, so the
	// server answers it mostly from cache.
	if cold, warm := rec.Phases[0], rec.Phases[1]; warm.CacheHitRate < cold.CacheHitRate {
		t.Errorf("warm hit rate %.2f below cold %.2f", warm.CacheHitRate, cold.CacheHitRate)
	}

	if code := run(args, &buf); code != 0 {
		t.Fatalf("second run exited %d:\n%s", code, buf.String())
	}
	traj, err = Load(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(traj.Records) != 2 {
		t.Fatalf("got %d records after second run, want 2 (append-only)", len(traj.Records))
	}
}

func TestRunFlagErrors(t *testing.T) {
	var buf bytes.Buffer
	if code := run([]string{}, &buf); code != 2 {
		t.Errorf("no target: exit %d, want 2", code)
	}
	if code := run([]string{"-inprocess", "-target", "http://x"}, &buf); code != 2 {
		t.Errorf("both targets: exit %d, want 2", code)
	}
	if code := run([]string{"-inprocess", "-rate", "0"}, &buf); code != 2 {
		t.Errorf("zero rate: exit %d, want 2", code)
	}
}
