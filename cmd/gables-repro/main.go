// Command gables-repro regenerates every table and figure of the Gables
// paper's evaluation: it runs the experiment registry, prints the same
// rows/series the paper reports, writes each figure as an SVG, and emits a
// paper-vs-measured summary (the source of EXPERIMENTS.md).
//
// Artifacts are computed and rendered concurrently on a bounded worker pool
// (-j, else GABLES_PARALLEL, else GOMAXPROCS) and then printed in registry
// order, so the output is byte-identical whatever the pool size.
//
// Simulation runs are memoized through internal/simcache; -cache (or
// GABLES_CACHE_DIR) adds a persistent on-disk layer so repeated harness
// runs replay from disk, and -v prints the cache counters to stderr
// (stderr, so cold and warm stdout stay byte-identical).
//
// -trace FILE records every simulation run as a Chrome trace-event JSON
// file (load it in Perfetto or chrome://tracing), and -metrics prints a
// plain-text utilization summary to stderr. Both attach observe-only
// probes: results are bitwise identical, but traced runs bypass the
// simulation cache, so expect cold-run timings.
//
// Usage:
//
//	gables-repro [-only id] [-dir out] [-j n] [-cache dir] [-trace file] [-metrics] [-v] [-list]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/gables-model/gables/internal/eval"
	"github.com/gables-model/gables/internal/experiments"
	"github.com/gables-model/gables/internal/parallel"
	"github.com/gables-model/gables/internal/sim/trace"
	"github.com/gables-model/gables/internal/simcache"
	_ "github.com/gables-model/gables/internal/surrogate" // registers -backend=surrogate
)

func main() {
	only := flag.String("only", "", "run a single experiment id (see -list)")
	dir := flag.String("dir", "", "write figure SVGs into this directory")
	csv := flag.Bool("csv", false, "also write each table as CSV into -dir")
	list := flag.Bool("list", false, "list experiment ids and exit")
	jobs := flag.Int("j", 0, "worker pool size (0 = $"+parallel.EnvVar+" or GOMAXPROCS)")
	cacheDir := flag.String("cache", "", "persist simulation results in this directory (default $"+simcache.EnvDir+")")
	traceFile := flag.String("trace", "", "write a Chrome trace-event/Perfetto JSON trace of every simulation run to this file")
	metrics := flag.Bool("metrics", false, "print a metrics summary of the traced simulation runs to stderr")
	verbose := flag.Bool("v", false, "print cache statistics to stderr after the run")
	backend := flag.String("backend", "", "evaluation backend for evaluator-threaded experiments: "+
		strings.Join(eval.Names(), "|")+" (default sim; auto routes to analytic inside the calibrated envelope)")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if err := selectBackend(*backend); err != nil {
		fmt.Fprintln(os.Stderr, "gables-repro:", err)
		os.Exit(1)
	}
	if *cacheDir != "" {
		simcache.EnableDisk(*cacheDir)
	} else {
		simcache.EnableDiskFromEnv()
	}
	var session *trace.Session
	if *traceFile != "" || *metrics {
		session = trace.NewSession()
		simcache.SetProbeFactory(session.NewRun)
	}
	err := run(os.Stdout, options{only: *only, dir: *dir, csv: *csv, jobs: *jobs})
	if session != nil && err == nil {
		err = writeTraceArtifacts(session, *traceFile, *metrics)
	}
	if *verbose {
		fmt.Fprintln(os.Stderr, simcache.FormatStats("sim-cache", simcache.DefaultStats()))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gables-repro:", err)
		os.Exit(1)
	}
}

// selectBackend validates -backend at flag-parse time — a typo'd name
// fails immediately with the allowed set, before any experiment has run —
// and installs the valid, non-empty name as the process-default evaluator.
func selectBackend(name string) error {
	if err := eval.CheckBackend(name); err != nil {
		return err
	}
	if name == "" {
		return nil
	}
	return eval.SetDefault(name)
}

// writeTraceArtifacts exports the session's trace file and/or metrics
// summary. The summary goes to stderr so traced and untraced stdout stay
// byte-identical.
func writeTraceArtifacts(session *trace.Session, traceFile string, metrics bool) error {
	if traceFile != "" {
		if err := session.WriteChromeFile(traceFile); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote trace of %d simulation runs to %s\n", session.Runs(), traceFile)
	}
	if metrics {
		return session.WriteSummary(os.Stderr)
	}
	return nil
}

// options collects run's knobs (the flag set minus -list and the
// process-wide cache/stats flags, which main applies itself).
type options struct {
	only string
	dir  string
	csv  bool
	jobs int
}

// renderedFile is one artifact output file, rendered in memory during the
// parallel phase and written to disk during the ordered print phase.
type renderedFile struct {
	name string
	data string
}

// artifactOutput bundles an artifact with its pre-rendered files.
type artifactOutput struct {
	art  *experiments.Artifact
	csvs []renderedFile
	svgs []renderedFile
}

func run(w io.Writer, o options) error {
	ids := experiments.IDs()
	if o.only != "" {
		ids = []string{o.only}
	}
	if o.dir != "" {
		if err := os.MkdirAll(o.dir, 0o755); err != nil {
			return err
		}
	}

	// Phase 1: run every experiment and render its files concurrently.
	// Results come back in ids order regardless of completion order.
	outs, err := parallel.Map(context.Background(), o.jobs, ids,
		func(_ context.Context, _ int, id string) (*artifactOutput, error) {
			art, err := experiments.Run(id)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", id, err)
			}
			out := &artifactOutput{art: art}
			if o.dir != "" && o.csv {
				for ti, tbl := range art.Tables {
					out.csvs = append(out.csvs, renderedFile{
						name: fmt.Sprintf("%s_table%d.csv", art.ID, ti),
						data: tbl.CSV(),
					})
				}
			}
			if o.dir != "" {
				for _, name := range sortedKeys(art.Charts) {
					svg, err := art.Charts[name].SVG(900, 560)
					if err != nil {
						return nil, fmt.Errorf("%s: chart %s: %w", id, name, err)
					}
					out.svgs = append(out.svgs, renderedFile{name: name + ".svg", data: svg})
				}
				for _, name := range sortedKeys(art.Heatmaps) {
					svg, err := art.Heatmaps[name].SVG(900, 420)
					if err != nil {
						return nil, fmt.Errorf("%s: heatmap %s: %w", id, name, err)
					}
					out.svgs = append(out.svgs, renderedFile{name: name + ".svg", data: svg})
				}
			}
			return out, nil
		})
	if err != nil {
		return err
	}

	// Phase 2: print reports and write files sequentially, in ids order.
	failures := 0
	var summary []string
	for _, out := range outs {
		art := out.art
		fmt.Fprintf(w, "==== %s: %s ====\n\n", art.ID, art.Title)
		for _, tbl := range art.Tables {
			if err := tbl.WriteText(w); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
		for _, n := range art.Notes {
			fmt.Fprintf(w, "note: %s\n", n)
		}
		for _, c := range art.Checks {
			status := "OK "
			if !c.Match {
				status = "FAIL"
				failures++
			}
			line := fmt.Sprintf("[%s] %s — paper: %s; measured: %s", status, c.Metric, c.Paper, c.Measured)
			fmt.Fprintln(w, line)
			summary = append(summary, fmt.Sprintf("%-8s %s", art.ID, line))
		}
		for _, f := range append(out.csvs, out.svgs...) {
			path := filepath.Join(o.dir, f.name)
			if err := os.WriteFile(path, []byte(f.data), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(w, "wrote %s\n", path)
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintln(w, "==== paper-vs-measured summary ====")
	fmt.Fprintln(w, strings.Join(summary, "\n"))
	if failures > 0 {
		return fmt.Errorf("%d checks failed", failures)
	}
	fmt.Fprintf(w, "\nall %d checks passed across %d experiments\n", len(summary), len(ids))
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
