// Command gables-repro regenerates every table and figure of the Gables
// paper's evaluation: it runs the experiment registry, prints the same
// rows/series the paper reports, writes each figure as an SVG, and emits a
// paper-vs-measured summary (the source of EXPERIMENTS.md).
//
// Usage:
//
//	gables-repro [-only id] [-dir out] [-list]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/gables-model/gables/internal/experiments"
)

func main() {
	only := flag.String("only", "", "run a single experiment id (see -list)")
	dir := flag.String("dir", "", "write figure SVGs into this directory")
	csv := flag.Bool("csv", false, "also write each table as CSV into -dir")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if err := run(*only, *dir, *csv); err != nil {
		fmt.Fprintln(os.Stderr, "gables-repro:", err)
		os.Exit(1)
	}
}

func run(only, dir string, csv bool) error {
	ids := experiments.IDs()
	if only != "" {
		ids = []string{only}
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}

	failures := 0
	var summary []string
	for _, id := range ids {
		art, err := experiments.Run(id)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Printf("==== %s: %s ====\n\n", art.ID, art.Title)
		for _, tbl := range art.Tables {
			if err := tbl.WriteText(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		}
		for _, n := range art.Notes {
			fmt.Printf("note: %s\n", n)
		}
		for _, c := range art.Checks {
			status := "OK "
			if !c.Match {
				status = "FAIL"
				failures++
			}
			line := fmt.Sprintf("[%s] %s — paper: %s; measured: %s", status, c.Metric, c.Paper, c.Measured)
			fmt.Println(line)
			summary = append(summary, fmt.Sprintf("%-8s %s", art.ID, line))
		}
		if dir != "" && csv {
			for ti, tbl := range art.Tables {
				path := filepath.Join(dir, fmt.Sprintf("%s_table%d.csv", art.ID, ti))
				if err := os.WriteFile(path, []byte(tbl.CSV()), 0o644); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", path)
			}
		}
		if dir != "" {
			for name, ch := range art.Charts {
				svg, err := ch.SVG(900, 560)
				if err != nil {
					return fmt.Errorf("%s: chart %s: %w", id, name, err)
				}
				path := filepath.Join(dir, name+".svg")
				if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", path)
			}
			for name, hm := range art.Heatmaps {
				svg, err := hm.SVG(900, 420)
				if err != nil {
					return fmt.Errorf("%s: heatmap %s: %w", id, name, err)
				}
				path := filepath.Join(dir, name+".svg")
				if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", path)
			}
		}
		fmt.Println()
	}

	fmt.Println("==== paper-vs-measured summary ====")
	fmt.Println(strings.Join(summary, "\n"))
	if failures > 0 {
		return fmt.Errorf("%d checks failed", failures)
	}
	fmt.Printf("\nall %d checks passed across %d experiments\n", len(summary), len(ids))
	return nil
}
