// Command gables-repro regenerates every table and figure of the Gables
// paper's evaluation: it runs the experiment registry, prints the same
// rows/series the paper reports, writes each figure as an SVG, and emits a
// paper-vs-measured summary (the source of EXPERIMENTS.md).
//
// Artifacts are computed and rendered concurrently on a bounded worker pool
// (-j, else GABLES_PARALLEL, else GOMAXPROCS) and then printed in registry
// order, so the output is byte-identical whatever the pool size.
//
// Usage:
//
//	gables-repro [-only id] [-dir out] [-j n] [-list]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/gables-model/gables/internal/experiments"
	"github.com/gables-model/gables/internal/parallel"
)

func main() {
	only := flag.String("only", "", "run a single experiment id (see -list)")
	dir := flag.String("dir", "", "write figure SVGs into this directory")
	csv := flag.Bool("csv", false, "also write each table as CSV into -dir")
	list := flag.Bool("list", false, "list experiment ids and exit")
	jobs := flag.Int("j", 0, "worker pool size (0 = $"+parallel.EnvVar+" or GOMAXPROCS)")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if err := run(os.Stdout, *only, *dir, *csv, *jobs); err != nil {
		fmt.Fprintln(os.Stderr, "gables-repro:", err)
		os.Exit(1)
	}
}

// renderedFile is one artifact output file, rendered in memory during the
// parallel phase and written to disk during the ordered print phase.
type renderedFile struct {
	name string
	data string
}

// artifactOutput bundles an artifact with its pre-rendered files.
type artifactOutput struct {
	art  *experiments.Artifact
	csvs []renderedFile
	svgs []renderedFile
}

func run(w io.Writer, only, dir string, csv bool, jobs int) error {
	ids := experiments.IDs()
	if only != "" {
		ids = []string{only}
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}

	// Phase 1: run every experiment and render its files concurrently.
	// Results come back in ids order regardless of completion order.
	outs, err := parallel.Map(context.Background(), jobs, ids,
		func(_ context.Context, _ int, id string) (*artifactOutput, error) {
			art, err := experiments.Run(id)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", id, err)
			}
			o := &artifactOutput{art: art}
			if dir != "" && csv {
				for ti, tbl := range art.Tables {
					o.csvs = append(o.csvs, renderedFile{
						name: fmt.Sprintf("%s_table%d.csv", art.ID, ti),
						data: tbl.CSV(),
					})
				}
			}
			if dir != "" {
				for _, name := range sortedKeys(art.Charts) {
					svg, err := art.Charts[name].SVG(900, 560)
					if err != nil {
						return nil, fmt.Errorf("%s: chart %s: %w", id, name, err)
					}
					o.svgs = append(o.svgs, renderedFile{name: name + ".svg", data: svg})
				}
				for _, name := range sortedKeys(art.Heatmaps) {
					svg, err := art.Heatmaps[name].SVG(900, 420)
					if err != nil {
						return nil, fmt.Errorf("%s: heatmap %s: %w", id, name, err)
					}
					o.svgs = append(o.svgs, renderedFile{name: name + ".svg", data: svg})
				}
			}
			return o, nil
		})
	if err != nil {
		return err
	}

	// Phase 2: print reports and write files sequentially, in ids order.
	failures := 0
	var summary []string
	for _, o := range outs {
		art := o.art
		fmt.Fprintf(w, "==== %s: %s ====\n\n", art.ID, art.Title)
		for _, tbl := range art.Tables {
			if err := tbl.WriteText(w); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
		for _, n := range art.Notes {
			fmt.Fprintf(w, "note: %s\n", n)
		}
		for _, c := range art.Checks {
			status := "OK "
			if !c.Match {
				status = "FAIL"
				failures++
			}
			line := fmt.Sprintf("[%s] %s — paper: %s; measured: %s", status, c.Metric, c.Paper, c.Measured)
			fmt.Fprintln(w, line)
			summary = append(summary, fmt.Sprintf("%-8s %s", art.ID, line))
		}
		for _, f := range append(o.csvs, o.svgs...) {
			path := filepath.Join(dir, f.name)
			if err := os.WriteFile(path, []byte(f.data), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(w, "wrote %s\n", path)
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintln(w, "==== paper-vs-measured summary ====")
	fmt.Fprintln(w, strings.Join(summary, "\n"))
	if failures > 0 {
		return fmt.Errorf("%d checks failed", failures)
	}
	fmt.Fprintf(w, "\nall %d checks passed across %d experiments\n", len(summary), len(ids))
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
