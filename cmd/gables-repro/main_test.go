package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/gables-model/gables/internal/eval"
	"github.com/gables-model/gables/internal/simcache"
)

func TestRunSingleExperiment(t *testing.T) {
	dir := t.TempDir()
	if err := run(io.Discard, options{only: "fig6", dir: dir, csv: true}); err != nil {
		t.Fatalf("fig6 repro failed: %v", err)
	}
	// Four multi-roofline SVGs plus the table CSV.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	svgs, csvs := 0, 0
	for _, e := range entries {
		switch filepath.Ext(e.Name()) {
		case ".svg":
			svgs++
		case ".csv":
			csvs++
		}
	}
	if svgs != 4 {
		t.Errorf("svgs = %d, want 4 (Fig 6a–6d)", svgs)
	}
	if csvs != 1 {
		t.Errorf("csvs = %d, want 1", csvs)
	}
}

func TestRunUnknownID(t *testing.T) {
	if err := run(io.Discard, options{only: "nope"}); err == nil {
		t.Error("unknown experiment must fail")
	}
}

func TestRunNoDir(t *testing.T) {
	if err := run(io.Discard, options{only: "table2"}); err != nil {
		t.Fatalf("dir-less run failed: %v", err)
	}
}

// TestRunDeterministicAcrossPoolSizes is the acceptance criterion: the full
// harness output must be byte-identical between a single worker and a wide
// pool, including every rendered artifact file.
func TestRunDeterministicAcrossPoolSizes(t *testing.T) {
	var seq, par bytes.Buffer
	seqDir, parDir := t.TempDir(), t.TempDir()
	if err := run(&seq, options{dir: seqDir, csv: true, jobs: 1}); err != nil {
		t.Fatalf("sequential run failed: %v", err)
	}
	if err := run(&par, options{dir: parDir, csv: true, jobs: 8}); err != nil {
		t.Fatalf("parallel run failed: %v", err)
	}
	// The temp dir name is the only legitimate difference in the "wrote"
	// lines; normalize it away before comparing.
	seqOut := strings.ReplaceAll(seq.String(), seqDir, "DIR")
	parOut := strings.ReplaceAll(par.String(), parDir, "DIR")
	if seqOut != parOut {
		t.Error("stdout differs between -j1 and -j8")
	}
	seqFiles, parFiles := readAll(t, seqDir), readAll(t, parDir)
	if len(seqFiles) == 0 {
		t.Fatal("sequential run wrote no artifact files")
	}
	if len(seqFiles) != len(parFiles) {
		t.Fatalf("file count differs: %d sequential vs %d parallel", len(seqFiles), len(parFiles))
	}
	for name, data := range seqFiles {
		if !bytes.Equal(data, parFiles[name]) {
			t.Errorf("artifact %s differs between -j1 and -j8", name)
		}
	}
}

func readAll(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = data
	}
	return out
}

// TestRunDeterministicColdVsWarmCache extends the determinism criterion to
// the simulation cache: a run that populates an on-disk cache and a run
// that replays entirely from it must produce byte-identical stdout and
// artifact files.
func TestRunDeterministicColdVsWarmCache(t *testing.T) {
	simcache.EnableDisk(t.TempDir())
	defer simcache.DisableDisk()
	simcache.ResetDefault()
	defer simcache.ResetDefault()

	var cold, warm bytes.Buffer
	coldDir, warmDir := t.TempDir(), t.TempDir()
	if err := run(&cold, options{dir: coldDir, csv: true, jobs: 4}); err != nil {
		t.Fatalf("cold-cache run failed: %v", err)
	}
	// Drop the memory layer so the warm run must replay from disk.
	simcache.ResetDefault()
	if err := run(&warm, options{dir: warmDir, csv: true, jobs: 4}); err != nil {
		t.Fatalf("warm-cache run failed: %v", err)
	}
	if s := simcache.DefaultStats(); s.DiskHits == 0 {
		t.Errorf("warm run had no disk hits (stats %+v) — cache not exercised", s)
	}
	coldOut := strings.ReplaceAll(cold.String(), coldDir, "DIR")
	warmOut := strings.ReplaceAll(warm.String(), warmDir, "DIR")
	if coldOut != warmOut {
		t.Error("stdout differs between cold and warm cache runs")
	}
	coldFiles, warmFiles := readAll(t, coldDir), readAll(t, warmDir)
	if len(coldFiles) == 0 || len(coldFiles) != len(warmFiles) {
		t.Fatalf("file count differs: %d cold vs %d warm", len(coldFiles), len(warmFiles))
	}
	for name, data := range coldFiles {
		if !bytes.Equal(data, warmFiles[name]) {
			t.Errorf("artifact %s differs between cold and warm cache runs", name)
		}
	}
}

// TestSelectBackend is the flag-parse-time gate: every registered backend
// name (surrogate included) is accepted, anything else fails immediately
// with the allowed set.
func TestSelectBackend(t *testing.T) {
	defer func() {
		if err := eval.SetDefault("sim"); err != nil {
			t.Fatal(err)
		}
	}()
	valid := append([]string{""}, eval.Names()...)
	for _, name := range valid {
		if err := selectBackend(name); err != nil {
			t.Errorf("selectBackend(%q) = %v, want nil", name, err)
		}
	}
	for _, name := range []string{"bogus", "SIM", "simulator"} {
		err := selectBackend(name)
		if err == nil {
			t.Errorf("selectBackend(%q) accepted", name)
			continue
		}
		if !strings.Contains(err.Error(), "allowed:") || !strings.Contains(err.Error(), "surrogate") {
			t.Errorf("selectBackend(%q) error %q does not list the allowed set", name, err)
		}
	}
}
