package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	dir := t.TempDir()
	if err := run("fig6", dir, true); err != nil {
		t.Fatalf("fig6 repro failed: %v", err)
	}
	// Four multi-roofline SVGs plus the table CSV.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	svgs, csvs := 0, 0
	for _, e := range entries {
		switch filepath.Ext(e.Name()) {
		case ".svg":
			svgs++
		case ".csv":
			csvs++
		}
	}
	if svgs != 4 {
		t.Errorf("svgs = %d, want 4 (Fig 6a–6d)", svgs)
	}
	if csvs != 1 {
		t.Errorf("csvs = %d, want 1", csvs)
	}
}

func TestRunUnknownID(t *testing.T) {
	if err := run("nope", "", false); err == nil {
		t.Error("unknown experiment must fail")
	}
}

func TestRunNoDir(t *testing.T) {
	if err := run("table2", "", false); err != nil {
		t.Fatalf("dir-less run failed: %v", err)
	}
}
