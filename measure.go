package gables

import (
	"github.com/gables-model/gables/internal/erb"
	"github.com/gables-model/gables/internal/kernel"
	"github.com/gables-model/gables/internal/sim"
)

// Simulated-SoC measurement (see internal/sim and internal/erb): the
// repository's substitute for the paper's Snapdragon silicon. A SimSystem
// executes the Algorithm 1 micro-benchmark on simulated IPs; the harness
// functions apply the §IV methodology to it.
type (
	// SimConfig describes a simulated SoC.
	SimConfig = sim.Config
	// SimSystem is a validated simulated SoC.
	SimSystem = sim.System
	// SimAssignment gives one simulated IP a kernel.
	SimAssignment = sim.Assignment
	// SimRunOptions control coordination and thermal modeling.
	SimRunOptions = sim.RunOptions
	// SimResult is a measurement run's outcome.
	SimResult = sim.RunResult

	// Kernel is an Algorithm 1 micro-benchmark descriptor.
	Kernel = kernel.Kernel
	// KernelPattern selects the access variant.
	KernelPattern = kernel.Pattern

	// SweepOptions configure an empirical roofline measurement.
	SweepOptions = erb.SweepOptions
	// MixingOptions configure the §IV-C mixing experiment.
	MixingOptions = erb.MixingOptions
	// MixingResult is the Figure 8 grid.
	MixingResult = erb.MixingResult
)

// Kernel access patterns.
const (
	// ReadWrite is the CPU/DSP kernel variant.
	ReadWrite = kernel.ReadWrite
	// ReadOnly is the bandwidth sanity-check variant.
	ReadOnly = kernel.ReadOnly
	// StreamCopy is the GPU variant.
	StreamCopy = kernel.StreamCopy
)

// Simulated chip presets and harness entry points.
var (
	// SimSnapdragon835 is the calibrated simulated chip whose measured
	// ceilings match the paper's Figures 7a, 7b and 9.
	SimSnapdragon835 = sim.Snapdragon835
	// SimSnapdragon821 is the older measured chipset.
	SimSnapdragon821 = sim.Snapdragon821

	// NewSimSystem validates a configuration.
	NewSimSystem = sim.New
	// MeasureRoofline sweeps the kernel on one simulated IP and fits
	// its pessimistic roofline (§IV-B).
	MeasureRoofline = erb.MeasureRoofline
	// Mixing runs the §IV-C CPU+accelerator work-split experiment.
	Mixing = erb.Mixing
	// DeriveGables assembles a core SoC description from measured
	// rooflines — the §IV → §III bridge.
	DeriveGables = erb.DeriveGables

	// RunNativeKernel executes Algorithm 1 on the host CPU, the code
	// path a real Gables evaluation runs on silicon.
	RunNativeKernel = kernel.RunNative
)
