// Package parallel is the harness's worker pool: it fans independent work
// items out over a bounded number of goroutines while keeping results
// deterministic. Every layer of the repository that sweeps an embarrassingly
// parallel grid — the figure/table artifacts of cmd/gables-repro, the
// (fraction × intensity) validation and mixing grids of internal/erb, the
// usecase suite of internal/usecase — funnels through Map, so "run as fast
// as the hardware allows" is one implementation, not N ad-hoc loops.
//
// Determinism contract: results are collected by item index, never by
// completion order, so for a pure fn the output of Map is byte-for-byte
// identical whatever the worker count. CI pins GABLES_PARALLEL=1 against
// GABLES_PARALLEL=8 and diffs the harness output to enforce exactly that.
package parallel

import (
	"context"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// EnvVar is the environment variable that overrides the default worker
// count; cmd/gables-repro's -j flag takes precedence over it.
const EnvVar = "GABLES_PARALLEL"

// envWarn makes the malformed-GABLES_PARALLEL warning fire once per
// process rather than once per Map call (a full harness run resolves the
// pool size hundreds of times).
var envWarn sync.Once

// envWarnOut is where the warning goes; a variable so tests can capture it.
var envWarnOut io.Writer = os.Stderr

// chunksPerWorker sets the claim granularity of Map: each worker makes on
// the order of this many range claims over a run. High enough that one
// slow chunk can't idle the pool (the other workers split the rest), low
// enough that claim traffic stays negligible.
const chunksPerWorker = 128

// Workers resolves a worker count: an explicit positive override wins, then
// a positive integer in the GABLES_PARALLEL environment variable, then
// GOMAXPROCS. The result is always at least 1.
//
// A set-but-malformed GABLES_PARALLEL (unparseable, zero, or negative) is
// rejected with a one-time warning on stderr instead of being silently
// ignored: a typo'd override that quietly falls back to GOMAXPROCS is
// indistinguishable from one that worked.
func Workers(explicit int) int {
	if explicit > 0 {
		return explicit
	}
	if s := os.Getenv(EnvVar); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
		envWarn.Do(func() {
			fmt.Fprintf(envWarnOut, "parallel: ignoring %s=%q: want a positive integer\n", EnvVar, s)
		})
	}
	if n := runtime.GOMAXPROCS(0); n > 0 {
		return n
	}
	return 1
}

// Map applies fn to every item with at most workers goroutines in flight
// and returns the results indexed like items. workers <= 0 means
// Workers(0), i.e. the GABLES_PARALLEL/GOMAXPROCS default.
//
// The first error cancels the context passed to every in-flight and
// pending fn call; Map drains its workers and returns that error wrapped
// with the item index. Items never started because of the cancellation are
// simply skipped. A nil error means every item completed and out[i] is
// fn's result for items[i].
//
// fn must be safe to call concurrently with distinct items; state shared
// across items must be read-only (the simulator convention: each grid cell
// owns its own sim.System).
func Map[T, R any](ctx context.Context, workers int, items []T, fn func(ctx context.Context, index int, item T) (R, error)) ([]R, error) {
	if fn == nil {
		return nil, fmt.Errorf("parallel: nil work function")
	}
	out := make([]R, len(items))
	if len(items) == 0 {
		return out, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers = Workers(workers)
	if workers > len(items) {
		workers = len(items)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Workers claim contiguous index ranges instead of single items so the
	// shared counter is touched ~chunksPerWorker times per worker, not once
	// per item — on grid-sized inputs the per-item atomic RMW (a contended
	// cache line bounce) is the pool's dominant overhead. The chunk size
	// still leaves every worker many claims, so load stays balanced when
	// item costs are uneven, and small inputs degrade to chunk == 1, which
	// is exactly the historical per-item protocol.
	chunk := len(items) / (workers * chunksPerWorker)
	if chunk < 1 {
		chunk = 1
	}

	var (
		next     atomic.Int64 // next unclaimed item index
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= len(items) {
					return
				}
				hi := lo + chunk
				if hi > len(items) {
					hi = len(items)
				}
				for i := lo; i < hi; i++ {
					if err := ctx.Err(); err != nil {
						fail(err)
						return
					}
					r, err := fn(ctx, i, items[i])
					if err != nil {
						fail(fmt.Errorf("parallel: item %d: %w", i, err))
						return
					}
					out[i] = r
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// ForEach is Map for work that produces no result value.
func ForEach[T any](ctx context.Context, workers int, items []T, fn func(ctx context.Context, index int, item T) error) error {
	if fn == nil {
		return fmt.Errorf("parallel: nil work function")
	}
	_, err := Map(ctx, workers, items, func(ctx context.Context, i int, item T) (struct{}, error) {
		return struct{}{}, fn(ctx, i, item)
	})
	return err
}
