package parallel

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersPrecedence(t *testing.T) {
	t.Setenv(EnvVar, "3")
	if got := Workers(7); got != 7 {
		t.Errorf("explicit override: Workers(7) = %d, want 7", got)
	}
	if got := Workers(0); got != 3 {
		t.Errorf("env override: Workers(0) = %d, want 3", got)
	}
	t.Setenv(EnvVar, "not-a-number")
	if got := Workers(0); got < 1 {
		t.Errorf("garbage env: Workers(0) = %d, want >= 1", got)
	}
	t.Setenv(EnvVar, "-2")
	if got := Workers(0); got < 1 {
		t.Errorf("negative env: Workers(0) = %d, want >= 1", got)
	}
}

// TestMapDeterministicOrder makes completion order adversarial (later items
// finish first) and checks results still come back index-ordered.
func TestMapDeterministicOrder(t *testing.T) {
	items := make([]int, 64)
	for i := range items {
		items[i] = i
	}
	out, err := Map(context.Background(), 8, items, func(_ context.Context, i int, v int) (string, error) {
		// Later indices sleep less, so they complete first.
		time.Sleep(time.Duration(len(items)-i) * 10 * time.Microsecond)
		return fmt.Sprintf("item-%d", v), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range out {
		if want := fmt.Sprintf("item-%d", i); s != want {
			t.Fatalf("out[%d] = %q, want %q", i, s, want)
		}
	}
}

// TestMapPoolSizeOneMatchesSequential checks workers=1 reproduces a plain
// loop byte-for-byte, including a stateful fn (legal at pool size 1 since
// execution is strictly index order).
func TestMapPoolSizeOneMatchesSequential(t *testing.T) {
	items := []float64{0.1, 0.9, 0.25, 1.0 / 3.0, 7e-17}
	var seqBuf, parBuf strings.Builder
	running := 0.0
	for i, v := range items {
		running += v
		fmt.Fprintf(&seqBuf, "%d %.17g %.17g\n", i, v, running)
	}
	running = 0.0
	_, err := Map(context.Background(), 1, items, func(_ context.Context, i int, v float64) (struct{}, error) {
		running += v
		fmt.Fprintf(&parBuf, "%d %.17g %.17g\n", i, v, running)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seqBuf.String() != parBuf.String() {
		t.Fatalf("workers=1 output differs from sequential loop:\nseq:\n%spar:\n%s", seqBuf.String(), parBuf.String())
	}
}

func TestMapErrorPropagationAndCancellation(t *testing.T) {
	boom := errors.New("boom")
	items := make([]int, 100)
	var started atomic.Int64
	_, err := Map(context.Background(), 4, items, func(ctx context.Context, i int, _ int) (int, error) {
		started.Add(1)
		if i == 3 {
			return 0, boom
		}
		// Everyone else waits on the cancellation the failure triggers.
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-time.After(5 * time.Second):
			return 0, fmt.Errorf("item %d never saw cancellation", i)
		}
	})
	if !errors.Is(err, boom) && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want the injected error or the cancellation it caused", err)
	}
	if n := started.Load(); n >= 100 {
		t.Errorf("all %d items ran despite early failure; cancellation did not prune the queue", n)
	}
}

func TestMapFirstErrorWrapsIndex(t *testing.T) {
	items := []int{0, 1, 2}
	_, err := Map(context.Background(), 1, items, func(_ context.Context, i int, _ int) (int, error) {
		if i == 1 {
			return 0, errors.New("bad cell")
		}
		return i, nil
	})
	if err == nil || !strings.Contains(err.Error(), "item 1") {
		t.Fatalf("err = %v, want it to identify item 1", err)
	}
}

func TestMapParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Map(ctx, 4, make([]int, 50), func(ctx context.Context, _ int, _ int) (int, error) {
		return 0, ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestMapEmptyAndNil(t *testing.T) {
	out, err := Map(context.Background(), 4, []int(nil), func(_ context.Context, _ int, v int) (int, error) {
		return v, nil
	})
	if err != nil || len(out) != 0 {
		t.Fatalf("empty input: out=%v err=%v, want empty and nil", out, err)
	}
	if _, err := Map[int, int](context.Background(), 4, []int{1}, nil); err == nil {
		t.Fatal("nil fn must error")
	}
	if err := ForEach[int](context.Background(), 4, []int{1}, nil); err == nil {
		t.Fatal("nil ForEach fn must error")
	}
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	if err := ForEach(context.Background(), 8, items, func(_ context.Context, _ int, v int) error {
		sum.Add(int64(v))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := sum.Load(); got != 4950 {
		t.Errorf("sum = %d, want 4950", got)
	}
}

// TestMapStress is the -race workhorse: many rounds of many items over a
// shared result slice with jittered completion order. CI runs this package
// with -race -count=5.
func TestMapStress(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for round := 0; round < 20; round++ {
		n := 1 + rng.Intn(200)
		workers := 1 + rng.Intn(16)
		items := make([]int, n)
		for i := range items {
			items[i] = rng.Int()
		}
		out, err := Map(context.Background(), workers, items, func(_ context.Context, i int, v int) (int, error) {
			if v%7 == 0 {
				time.Sleep(time.Duration(v%50) * time.Microsecond)
			}
			return v * 2, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		want := make([]int, n)
		for i, v := range items {
			want[i] = v * 2
		}
		if !reflect.DeepEqual(out, want) {
			t.Fatalf("round %d (n=%d workers=%d): results not index-ordered", round, n, workers)
		}
	}
}

// TestWorkersEnvValidation pins the resolution rule for every shape of
// GABLES_PARALLEL: valid values win, malformed values (unparseable, zero,
// negative) are rejected with a warning and fall back to the GOMAXPROCS
// default, and unset stays silent.
func TestWorkersEnvValidation(t *testing.T) {
	def := runtime.GOMAXPROCS(0)
	cases := []struct {
		env  string
		want int
		warn bool
	}{
		{env: "", want: def, warn: false},
		{env: "0", want: def, warn: true},
		{env: "-3", want: def, warn: true},
		{env: "abc", want: def, warn: true},
		{env: "8", want: 8, warn: false},
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("env=%q", c.env), func(t *testing.T) {
			t.Setenv(EnvVar, c.env)
			var buf strings.Builder
			envWarn = sync.Once{}
			envWarnOut = &buf
			defer func() { envWarnOut = os.Stderr }()
			if got := Workers(0); got != c.want {
				t.Errorf("Workers(0) = %d, want %d", got, c.want)
			}
			warned := buf.Len() > 0
			if warned != c.warn {
				t.Errorf("warning emitted = %v, want %v (output %q)", warned, c.warn, buf.String())
			}
			if c.warn && !strings.Contains(buf.String(), c.env) {
				t.Errorf("warning %q must quote the rejected value %q", buf.String(), c.env)
			}
		})
	}
}

// TestWorkersEnvWarnsOnce checks the malformed-env warning is per-process,
// not per-call: a harness run resolves the pool size hundreds of times.
func TestWorkersEnvWarnsOnce(t *testing.T) {
	t.Setenv(EnvVar, "banana")
	var buf strings.Builder
	envWarn = sync.Once{}
	envWarnOut = &buf
	defer func() { envWarnOut = os.Stderr }()
	for i := 0; i < 5; i++ {
		Workers(0)
	}
	if got := strings.Count(buf.String(), "\n"); got != 1 {
		t.Errorf("warning emitted %d times over 5 calls, want exactly 1:\n%s", got, buf.String())
	}
}

// TestMapCancellationSkipsRemainingItems pins the three observable effects
// of a failing item: in-flight work sees the cancelled context, items not
// yet claimed are never started (their side effects keep zero values), and
// the returned error wraps the failing index.
func TestMapCancellationSkipsRemainingItems(t *testing.T) {
	boom := errors.New("boom")
	const n = 256
	items := make([]int, n)
	ran := make([]atomic.Bool, n)
	gate := make(chan struct{})
	out, err := Map(context.Background(), 2, items, func(ctx context.Context, i int, _ int) (int, error) {
		ran[i].Store(true)
		if i == 0 {
			// Hold the failure until the other worker is blocked in-flight,
			// so cancellation provably reaches a running fn.
			<-gate
			return 0, boom
		}
		if i == 1 {
			close(gate)
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(5 * time.Second):
				return 0, fmt.Errorf("in-flight item %d never saw cancellation", i)
			}
		}
		return i, nil
	})
	if out != nil {
		t.Errorf("out = %v, want nil on error", out)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the injected error", err)
	}
	if !strings.Contains(err.Error(), "item 0") {
		t.Errorf("err = %v, want it to identify item 0", err)
	}
	started := 0
	for i := range ran {
		if ran[i].Load() {
			started++
		}
	}
	// Two workers: items 0 and 1 start, and each worker may claim at most
	// one more item before observing the cancelled context.
	if started > 4 {
		t.Errorf("%d items started after the failure; skipped items must never run", started)
	}
	if started == n {
		t.Error("every item ran; cancellation pruned nothing")
	}
}

// TestMapChunkedLargeGrid exercises the chunked-claim path (inputs large
// enough that chunk > 1): full coverage, index-ordered output, and error
// attribution from deep inside a chunk.
func TestMapChunkedLargeGrid(t *testing.T) {
	const n = 100_000
	items := make([]int, n)
	for i := range items {
		items[i] = i
	}
	out, err := Map(context.Background(), 4, items, func(_ context.Context, i, item int) (int, error) {
		return item * 3, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*3 {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*3)
		}
	}

	var calls atomic.Int64
	_, err = Map(context.Background(), 4, items, func(_ context.Context, i, item int) (int, error) {
		calls.Add(1)
		if item == 54_321 {
			return 0, fmt.Errorf("boom")
		}
		return item, nil
	})
	if err == nil || !strings.Contains(err.Error(), "item 54321") {
		t.Fatalf("error should name the failing item, got %v", err)
	}
	if c := calls.Load(); c >= n {
		t.Errorf("cancellation did not skip remaining chunked items (%d calls)", c)
	}
}
