package roofline_test

import (
	"fmt"

	"github.com/gables-model/gables/internal/roofline"
	"github.com/gables-model/gables/internal/units"
)

// ExampleModel_Attainable evaluates the classic roofline bound on both
// sides of the ridge point.
func ExampleModel_Attainable() {
	m := roofline.MustNew("chip", units.GopsPerSec(40), units.GBPerSec(10))
	for _, i := range []float64{0.5, 4, 32} {
		p, _ := m.Attainable(units.Intensity(i))
		fmt.Printf("I=%-4g -> %g Gops/s\n", i, p.Gops())
	}
	fmt.Printf("ridge at %g ops/byte\n", float64(m.RidgePoint()))
	// Output:
	// I=0.5  -> 5 Gops/s
	// I=4    -> 40 Gops/s
	// I=32   -> 40 Gops/s
	// ridge at 4 ops/byte
}

// ExampleFit estimates a black-box chip's roofline from measurements, the
// paper's §IV pessimistic-ceiling methodology.
func ExampleFit() {
	samples := []roofline.Point{
		{Intensity: 0.25, Attainable: units.GopsPerSec(2.5)},
		{Intensity: 1, Attainable: units.GopsPerSec(10)},
		{Intensity: 16, Attainable: units.GopsPerSec(40)},
		{Intensity: 256, Attainable: units.GopsPerSec(40)},
	}
	fit, _ := roofline.Fit("measured", samples)
	fmt.Printf("peak %g Gops/s, bandwidth %g GB/s\n", fit.Peak.Gops(), fit.Bandwidth.GB())
	// Output: peak 40 Gops/s, bandwidth 10 GB/s
}

// ExampleModel_AttainableUnder shows a ceiling: the no-SIMD bound of the
// paper's §IV-B CPU discussion.
func ExampleModel_AttainableUnder() {
	m := roofline.MustNew("cpu", units.GopsPerSec(42), units.GBPerSec(20))
	m.AddCeiling(roofline.Ceiling{Name: "no-simd", Compute: units.GopsPerSec(7.5)})

	full, _ := m.Attainable(100)
	scalar, _ := m.AttainableUnder(100, "no-simd")
	fmt.Printf("vectorized %g, scalar %g Gops/s\n", full.Gops(), scalar.Gops())
	// Output: vectorized 42, scalar 7.5 Gops/s
}
