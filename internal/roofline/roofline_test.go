package roofline

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/gables-model/gables/internal/units"
)

func mustModel(t *testing.T, name string, peak, bw float64) *Model {
	t.Helper()
	m, err := New(name, units.GopsPerSec(peak), units.GBPerSec(bw))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New("bad", 0, units.GBPerSec(10)); err == nil {
		t.Error("zero peak must be rejected")
	}
	if _, err := New("bad", units.GopsPerSec(1), 0); err == nil {
		t.Error("zero bandwidth must be rejected")
	}
	if _, err := New("bad", units.GopsPerSec(-1), units.GBPerSec(10)); err == nil {
		t.Error("negative peak must be rejected")
	}
	if _, err := New("ok", units.GopsPerSec(40), units.GBPerSec(10)); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew with invalid inputs must panic")
		}
	}()
	MustNew("bad", 0, 0)
}

func TestAttainable(t *testing.T) {
	// The paper's Figure 1 machine shape: Ppeak=40 Gops/s, Bpeak=10 GB/s.
	m := mustModel(t, "fig1", 40, 10)

	cases := []struct {
		i    float64
		want float64 // Gops/s
	}{
		{0.1, 1},  // memory bound: 10 * 0.1
		{1, 10},   // memory bound
		{4, 40},   // exactly the ridge point
		{8, 40},   // compute bound
		{100, 40}, // deep compute bound
	}
	for _, c := range cases {
		got, err := m.Attainable(units.Intensity(c.i))
		if err != nil {
			t.Fatalf("Attainable(%v): %v", c.i, err)
		}
		if !units.ApproxEqual(got.Gops(), c.want, 1e-12) {
			t.Errorf("Attainable(%v) = %v Gops/s, want %v", c.i, got.Gops(), c.want)
		}
	}
}

func TestAttainableRejectsBadIntensity(t *testing.T) {
	m := mustModel(t, "m", 40, 10)
	if _, err := m.Attainable(0); err == nil {
		t.Error("zero intensity must be rejected")
	}
	if _, err := m.Attainable(-1); err == nil {
		t.Error("negative intensity must be rejected")
	}
}

func TestRidgePoint(t *testing.T) {
	m := mustModel(t, "m", 40, 10)
	if got := m.RidgePoint(); got != 4 {
		t.Errorf("RidgePoint = %v, want 4", float64(got))
	}
	if !m.MemoryBound(3.9) {
		t.Error("intensity below ridge must be memory bound")
	}
	if m.MemoryBound(4) {
		t.Error("intensity at ridge is compute bound by convention")
	}
	if m.MemoryBound(100) {
		t.Error("intensity above ridge must be compute bound")
	}
}

func TestCeilings(t *testing.T) {
	// CPU from Fig 7a: 7.5 GFLOPS/s scalar but >40 GFLOPS/s with SIMD;
	// 15.1 GB/s read+write but ~20 GB/s read-only. Model the full roof as
	// the SIMD/read-only machine with ceilings for the restricted modes.
	m := mustModel(t, "cpu", 40, 20)
	m.AddCeiling(Ceiling{Name: "no-simd", Compute: units.GopsPerSec(7.5)})
	m.AddCeiling(Ceiling{Name: "read+write", Bandwidth: units.GBPerSec(15.1)})

	got, err := m.AttainableUnder(100, "no-simd")
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEqual(got.Gops(), 7.5, 1e-12) {
		t.Errorf("under no-simd at I=100: %v Gops/s, want 7.5", got.Gops())
	}

	got, err = m.AttainableUnder(0.5, "read+write")
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEqual(got.Gops(), 15.1*0.5, 1e-12) {
		t.Errorf("under read+write at I=0.5: %v Gops/s, want %v", got.Gops(), 15.1*0.5)
	}

	// Both ceilings at once.
	got, err = m.AttainableUnder(1, "no-simd", "read+write")
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEqual(got.Gops(), 7.5, 1e-12) {
		t.Errorf("both ceilings at I=1: %v Gops/s, want 7.5", got.Gops())
	}

	if _, err := m.AttainableUnder(1, "nonexistent"); err == nil {
		t.Error("unknown ceiling name must be an error")
	}
	if _, err := m.AttainableUnder(0, "no-simd"); err == nil {
		t.Error("bad intensity must be an error even with ceilings")
	}
}

func TestAddCeilingReplaces(t *testing.T) {
	m := mustModel(t, "m", 40, 10)
	m.AddCeiling(Ceiling{Name: "x", Compute: units.GopsPerSec(10)})
	m.AddCeiling(Ceiling{Name: "x", Compute: units.GopsPerSec(5)})
	if len(m.Ceilings) != 1 {
		t.Fatalf("expected 1 ceiling after replacement, got %d", len(m.Ceilings))
	}
	got, err := m.AttainableUnder(100, "x")
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEqual(got.Gops(), 5, 1e-12) {
		t.Errorf("replaced ceiling not in force: got %v Gops/s", got.Gops())
	}
}

func TestCeilingNeverExceedsRoof(t *testing.T) {
	// A "ceiling" above the roof must not raise the bound.
	m := mustModel(t, "m", 40, 10)
	m.AddCeiling(Ceiling{Name: "above", Compute: units.GopsPerSec(100), Bandwidth: units.GBPerSec(50)})
	got, err := m.AttainableUnder(100, "above")
	if err != nil {
		t.Fatal(err)
	}
	plain, _ := m.Attainable(100)
	if got != plain {
		t.Errorf("ceiling above the roof changed the bound: %v vs %v", float64(got), float64(plain))
	}
}

func TestCurve(t *testing.T) {
	m := mustModel(t, "m", 40, 10)
	pts, err := m.Curve(0.01, 100, 33)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 33 {
		t.Fatalf("len = %d, want 33", len(pts))
	}
	if !units.ApproxEqual(float64(pts[0].Intensity), 0.01, 1e-9) {
		t.Errorf("first intensity = %v, want 0.01", float64(pts[0].Intensity))
	}
	if !units.ApproxEqual(float64(pts[len(pts)-1].Intensity), 100, 1e-9) {
		t.Errorf("last intensity = %v, want 100", float64(pts[len(pts)-1].Intensity))
	}
	// Monotone nondecreasing performance with intensity.
	for k := 1; k < len(pts); k++ {
		if pts[k].Attainable < pts[k-1].Attainable {
			t.Fatalf("curve not monotone at sample %d", k)
		}
	}
}

func TestCurveValidation(t *testing.T) {
	m := mustModel(t, "m", 40, 10)
	if _, err := m.Curve(1, 1, 10); err == nil {
		t.Error("lo == hi must be rejected")
	}
	if _, err := m.Curve(-1, 1, 10); err == nil {
		t.Error("negative lo must be rejected")
	}
	if _, err := m.Curve(0.1, 10, 1); err == nil {
		t.Error("n < 2 must be rejected")
	}
}

func TestFitRecoversKnownRoofline(t *testing.T) {
	truth := mustModel(t, "truth", 40, 10)
	pts, err := truth.Curve(0.01, 1000, 64)
	if err != nil {
		t.Fatal(err)
	}
	fit, err := Fit("fit", pts)
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEqual(fit.Peak.Gops(), 40, 1e-6) {
		t.Errorf("fitted peak = %v Gops/s, want 40", fit.Peak.Gops())
	}
	if !units.ApproxEqual(fit.Bandwidth.GB(), 10, 0.05) {
		t.Errorf("fitted bandwidth = %v GB/s, want ~10", fit.Bandwidth.GB())
	}
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit("x", nil); err == nil {
		t.Error("empty sample set must be rejected")
	}
	bad := []Point{{Intensity: 1, Attainable: 0}, {Intensity: 2, Attainable: 1}}
	if _, err := Fit("x", bad); err == nil {
		t.Error("non-positive samples must be rejected")
	}
}

func TestFitAllPlateau(t *testing.T) {
	// All samples at peak: bandwidth is inferred from the lowest-intensity one.
	pts := []Point{
		{Intensity: 10, Attainable: units.GopsPerSec(40)},
		{Intensity: 100, Attainable: units.GopsPerSec(40)},
	}
	fit, err := Fit("plateau", pts)
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEqual(fit.Peak.Gops(), 40, 1e-12) {
		t.Errorf("peak = %v, want 40", fit.Peak.Gops())
	}
	if !units.ApproxEqual(fit.Bandwidth.GB(), 4, 1e-12) {
		t.Errorf("bandwidth = %v, want 4 (40/10)", fit.Bandwidth.GB())
	}
}

// Property: attainable performance never exceeds either bound, and always
// equals one of them.
func TestAttainableBoundsProperty(t *testing.T) {
	f := func(peakSeed, bwSeed, iSeed uint16) bool {
		peak := units.OpsPerSec(1 + float64(peakSeed))
		bw := units.BytesPerSec(1 + float64(bwSeed))
		i := units.Intensity(0.001 + float64(iSeed)/100)
		m, err := New("p", peak, bw)
		if err != nil {
			return false
		}
		p, err := m.Attainable(i)
		if err != nil {
			return false
		}
		memBound := units.OpsPerSec(float64(bw) * float64(i))
		if p > peak || p > memBound {
			return false
		}
		return p == peak || p == memBound
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the curve is continuous at the ridge point — the two bounds meet.
func TestRidgeContinuityProperty(t *testing.T) {
	f := func(peakSeed, bwSeed uint16) bool {
		peak := units.OpsPerSec(1 + float64(peakSeed))
		bw := units.BytesPerSec(1 + float64(bwSeed))
		m, err := New("p", peak, bw)
		if err != nil {
			return false
		}
		r := m.RidgePoint()
		p, err := m.Attainable(r)
		if err != nil {
			return false
		}
		return units.ApproxEqual(float64(p), float64(peak), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: fitted rooflines are conservative — they never exceed the truth
// at sampled intensities by more than numerical tolerance.
func TestFitConservativeProperty(t *testing.T) {
	f := func(peakSeed, bwSeed uint8) bool {
		peak := units.GopsPerSec(1 + float64(peakSeed))
		bw := units.GBPerSec(1 + float64(bwSeed))
		truth, err := New("t", peak, bw)
		if err != nil {
			return false
		}
		pts, err := truth.Curve(0.001, 10000, 48)
		if err != nil {
			return false
		}
		fit, err := Fit("f", pts)
		if err != nil {
			return false
		}
		for _, s := range pts {
			fp, err := fit.Attainable(s.Intensity)
			if err != nil {
				return false
			}
			tp, _ := truth.Attainable(s.Intensity)
			if float64(fp) > float64(tp)*(1+1e-9) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestCurveLogSpacing(t *testing.T) {
	m := mustModel(t, "m", 40, 10)
	pts, err := m.Curve(0.01, 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Log-spaced: ratios between consecutive intensities must be equal.
	r := float64(pts[1].Intensity) / float64(pts[0].Intensity)
	for k := 2; k < len(pts); k++ {
		rk := float64(pts[k].Intensity) / float64(pts[k-1].Intensity)
		if math.Abs(rk-r) > 1e-9*r {
			t.Fatalf("log spacing violated at sample %d: %v vs %v", k, rk, r)
		}
	}
}
