// Package roofline implements the classic Roofline performance model of
// Williams, Waterman and Patterson (CACM 2009), which Gables refines and
// retargets. A roofline bounds the attainable performance of a kernel on a
// chip by the lesser of the chip's peak computation rate and the product of
// the kernel's operational intensity with the chip's peak memory bandwidth:
//
//	P_attainable(I) = min(Ppeak, Bpeak · I)
//
// The model also supports ceilings — lesser bounds that apply when some
// architectural feature is not exploited (no SIMD, no instruction-level
// parallelism, non-streaming access patterns, ...) — and the derived
// ridge-point diagnostics used throughout the Gables paper's evaluation.
package roofline

import (
	"errors"
	"fmt"
	"sort"

	"github.com/gables-model/gables/internal/units"
)

// Ceiling is a lesser bound below the roofline's peak. Compute ceilings
// lower the horizontal (performance) part of the roof; bandwidth ceilings
// lower the slanted (memory) part.
type Ceiling struct {
	// Name identifies the restriction, e.g. "no SIMD" or "read+write".
	Name string
	// Compute is the reduced computation bound; zero means the ceiling
	// does not restrict compute.
	Compute units.OpsPerSec
	// Bandwidth is the reduced bandwidth bound; zero means the ceiling
	// does not restrict bandwidth.
	Bandwidth units.BytesPerSec
}

// Model is a classic single-chip roofline.
type Model struct {
	// Name labels the chip or IP the roofline describes.
	Name string
	// Peak is the chip's peak computation performance (the paper's Ppeak).
	Peak units.OpsPerSec
	// Bandwidth is the chip's peak off-chip memory bandwidth (Bpeak).
	Bandwidth units.BytesPerSec
	// Ceilings holds optional lesser bounds, ordered arbitrarily.
	Ceilings []Ceiling
}

// New constructs a roofline model, validating that both peaks are positive.
func New(name string, peak units.OpsPerSec, bandwidth units.BytesPerSec) (*Model, error) {
	if peak <= 0 {
		return nil, fmt.Errorf("roofline: peak performance must be positive, got %v", float64(peak))
	}
	if bandwidth <= 0 {
		return nil, fmt.Errorf("roofline: peak bandwidth must be positive, got %v", float64(bandwidth))
	}
	return &Model{Name: name, Peak: peak, Bandwidth: bandwidth}, nil
}

// MustNew is New, panicking on invalid inputs. It is intended for package
// initialization of static catalogs where the inputs are compile-time
// constants.
func MustNew(name string, peak units.OpsPerSec, bandwidth units.BytesPerSec) *Model {
	m, err := New(name, peak, bandwidth)
	if err != nil {
		panic(err)
	}
	return m
}

// ErrNonPositiveIntensity is returned when a kernel's operational intensity
// is zero or negative; the model's bandwidth bound Bpeak·I would be
// meaningless there.
var ErrNonPositiveIntensity = errors.New("roofline: operational intensity must be positive")

// Attainable returns the maximum attainable performance at operational
// intensity i: min(Ppeak, Bpeak·I).
func (m *Model) Attainable(i units.Intensity) (units.OpsPerSec, error) {
	if i <= 0 {
		return 0, ErrNonPositiveIntensity
	}
	bw := units.OpsPerSec(float64(m.Bandwidth) * float64(i))
	return min(m.Peak, bw), nil
}

// AttainableUnder returns the attainable performance at intensity i when the
// named ceilings are in force in addition to the roof itself. Unknown names
// are reported as an error so that typos do not silently yield the full roof.
func (m *Model) AttainableUnder(i units.Intensity, names ...string) (units.OpsPerSec, error) {
	if i <= 0 {
		return 0, ErrNonPositiveIntensity
	}
	peak := m.Peak
	bw := m.Bandwidth
	for _, name := range names {
		c, ok := m.ceiling(name)
		if !ok {
			return 0, fmt.Errorf("roofline: unknown ceiling %q on %q", name, m.Name)
		}
		if c.Compute > 0 && c.Compute < peak {
			peak = c.Compute
		}
		if c.Bandwidth > 0 && c.Bandwidth < bw {
			bw = c.Bandwidth
		}
	}
	return min(peak, units.OpsPerSec(float64(bw)*float64(i))), nil
}

func (m *Model) ceiling(name string) (Ceiling, bool) {
	for _, c := range m.Ceilings {
		if c.Name == name {
			return c, true
		}
	}
	return Ceiling{}, false
}

// AddCeiling appends a ceiling. Adding a ceiling whose name already exists
// replaces the previous definition.
func (m *Model) AddCeiling(c Ceiling) {
	for idx := range m.Ceilings {
		if m.Ceilings[idx].Name == c.Name {
			m.Ceilings[idx] = c
			return
		}
	}
	m.Ceilings = append(m.Ceilings, c)
}

// RidgePoint returns the operational intensity at which the memory bound
// meets the compute bound, Ppeak/Bpeak. Kernels with intensity below the
// ridge point are memory-bound; above it they are compute-bound.
func (m *Model) RidgePoint() units.Intensity {
	return units.Intensity(float64(m.Peak) / float64(m.Bandwidth))
}

// MemoryBound reports whether a kernel of intensity i is limited by memory
// bandwidth rather than compute. Exactly at the ridge point both bounds are
// equal and the kernel is reported as compute-bound (the roof is flat there).
func (m *Model) MemoryBound(i units.Intensity) bool {
	return i < m.RidgePoint()
}

// Point is one sample of a roofline curve: the attainable performance at a
// given operational intensity.
type Point struct {
	Intensity  units.Intensity
	Attainable units.OpsPerSec
}

// Curve samples the roofline at n log-spaced intensities in [lo, hi],
// suitable for plotting on log-log axes exactly as the paper's Figures 1, 7
// and 9 do. lo and hi must be positive with lo < hi, and n must be at least 2.
func (m *Model) Curve(lo, hi units.Intensity, n int) ([]Point, error) {
	if lo <= 0 || hi <= 0 || lo >= hi {
		return nil, fmt.Errorf("roofline: invalid intensity range [%v, %v]", float64(lo), float64(hi))
	}
	if n < 2 {
		return nil, fmt.Errorf("roofline: need at least 2 samples, got %d", n)
	}
	xs, err := units.Logspace(float64(lo), float64(hi), n)
	if err != nil {
		return nil, fmt.Errorf("roofline: %w", err)
	}
	pts := make([]Point, n)
	for k, x := range xs {
		i := units.Intensity(x)
		p, err := m.Attainable(i)
		if err != nil {
			return nil, err
		}
		pts[k] = Point{Intensity: i, Attainable: p}
	}
	return pts, nil
}

// Fit estimates a roofline from empirical measurements, mirroring the
// paper's §IV methodology: the pessimistic ("ceiling") estimate of a
// black-box chip's roofline is the best achieved performance at high
// intensity (the plateau) and the best achieved bandwidth at low intensity
// (the slope). Measurements at or above the fitted ridge point contribute to
// the peak estimate; measurements below contribute to the bandwidth
// estimate. Fit requires at least one point on each side.
func Fit(name string, samples []Point) (*Model, error) {
	if len(samples) < 2 {
		return nil, fmt.Errorf("roofline: need at least 2 samples to fit, got %d", len(samples))
	}
	sorted := make([]Point, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].Intensity < sorted[b].Intensity })
	for _, s := range sorted {
		if s.Intensity <= 0 || s.Attainable <= 0 {
			return nil, fmt.Errorf("roofline: fit sample must be positive, got (I=%v, P=%v)",
				float64(s.Intensity), float64(s.Attainable))
		}
	}
	// Peak estimate: the best performance observed anywhere (the plateau
	// dominates once intensity passes the ridge).
	var peak units.OpsPerSec
	for _, s := range sorted {
		if s.Attainable > peak {
			peak = s.Attainable
		}
	}
	// Bandwidth estimate: the best implied bandwidth P/I among samples
	// that have not yet reached the plateau. Samples already at (within
	// 2% of) the peak are plateau points; implied bandwidth there is an
	// underestimate, so they are excluded unless nothing else exists.
	var bw units.BytesPerSec
	for _, s := range sorted {
		if float64(s.Attainable) >= 0.98*float64(peak) {
			continue
		}
		implied := units.BytesPerSec(float64(s.Attainable) / float64(s.Intensity))
		if implied > bw {
			bw = implied
		}
	}
	if bw == 0 {
		// All samples sit on the plateau: the bandwidth bound was never
		// observed; the best we can report is the bound implied by the
		// lowest-intensity sample.
		s := sorted[0]
		bw = units.BytesPerSec(float64(s.Attainable) / float64(s.Intensity))
	}
	return New(name, peak, bw)
}
