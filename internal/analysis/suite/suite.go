// Package suite registers the repository's analyzers in one place.
// cmd/gables-lint runs exactly this list; adding a rule means adding it
// here (and documenting it in DESIGN.md §5).
package suite

import (
	"github.com/gables-model/gables/internal/analysis"
	"github.com/gables-model/gables/internal/analysis/evalboundary"
	"github.com/gables-model/gables/internal/analysis/floatcmp"
	"github.com/gables-model/gables/internal/analysis/fractioncheck"
	"github.com/gables-model/gables/internal/analysis/logguard"
	"github.com/gables-model/gables/internal/analysis/maporder"
)

// All is the full analyzer suite, in the order findings are attributed.
var All = []*analysis.Analyzer{
	evalboundary.Analyzer,
	floatcmp.Analyzer,
	fractioncheck.Analyzer,
	logguard.Analyzer,
	maporder.Analyzer,
}

// ByName returns the subset of All matching the given names; unknown
// names return false.
func ByName(names ...string) ([]*analysis.Analyzer, bool) {
	var out []*analysis.Analyzer
	for _, n := range names {
		found := false
		for _, a := range All {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, false
		}
	}
	return out, true
}
