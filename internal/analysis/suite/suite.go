// Package suite registers the repository's analyzers in one place.
// cmd/gables-lint runs exactly this list; adding a rule means adding it
// here (and documenting it in DESIGN.md §5).
package suite

import (
	"strings"

	"github.com/gables-model/gables/internal/analysis"
	"github.com/gables-model/gables/internal/analysis/allocfree"
	"github.com/gables-model/gables/internal/analysis/detsource"
	"github.com/gables-model/gables/internal/analysis/evalboundary"
	"github.com/gables-model/gables/internal/analysis/floatcmp"
	"github.com/gables-model/gables/internal/analysis/fpfields"
	"github.com/gables-model/gables/internal/analysis/fractioncheck"
	"github.com/gables-model/gables/internal/analysis/logguard"
	"github.com/gables-model/gables/internal/analysis/maporder"
)

// All is the full analyzer suite, in the order findings are attributed.
var All = []*analysis.Analyzer{
	allocfree.Analyzer,
	detsource.Analyzer,
	evalboundary.Analyzer,
	floatcmp.Analyzer,
	fpfields.Analyzer,
	fractioncheck.Analyzer,
	logguard.Analyzer,
	maporder.Analyzer,
}

// Rules is the SARIF rule catalog for the suite: every analyzer plus the
// driver's own "lint" meta-analyzer (malformed/stale directives).
func Rules() []analysis.SARIFRule {
	rules := make([]analysis.SARIFRule, 0, len(All)+1)
	for _, a := range All {
		summary, _, _ := strings.Cut(a.Doc, ";")
		rules = append(rules, analysis.SARIFRule{ID: a.Name, Summary: summary})
	}
	rules = append(rules, analysis.SARIFRule{
		ID:      "lint",
		Summary: "directive hygiene: malformed //lint: directives and stale suppressions that no longer fire",
	})
	return rules
}

// ByName returns the subset of All matching the given names; unknown
// names return false.
func ByName(names ...string) ([]*analysis.Analyzer, bool) {
	var out []*analysis.Analyzer
	for _, n := range names {
		found := false
		for _, a := range All {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, false
		}
	}
	return out, true
}
