// Package maporder flags iteration over Go maps inside functions that
// produce user-visible output (CSV rows, plot series, report tables, web
// responses, formatted strings). Go randomizes map iteration order, so
// such a loop makes output differ run to run — which the CI determinism
// diff (GABLES_PARALLEL=1 vs =8 must be byte-identical) turns into a hard
// failure. The fix is the sorted-keys pattern: collect keys, sort, then
// iterate the slice; the analyzer recognizes that pattern and stays quiet.
package maporder

import (
	"go/ast"
	"go/types"
	"regexp"

	"github.com/gables-model/gables/internal/analysis"
)

// Analyzer is the maporder rule.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flags ranging over a map in output-producing code; map order is randomized and " +
		"breaks byte-identical repro output — collect and sort the keys first",
	Run: run,
}

// sinkNames are callee names that emit user-visible output (or build the
// strings that will become it).
var sinkNames = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
	"Sprint": true, "Sprintf": true, "Sprintln": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"WriteAll": true, "AddRow": true, "Render": true,
}

// collectCallees are the only calls allowed inside a key-collecting loop
// body for it to count as order-insensitive.
var collectCallees = map[string]bool{
	"append": true, "len": true, "cap": true, "copy": true,
	"delete": true, "min": true, "max": true,
}

var sortName = regexp.MustCompile(`(?i)sort`)

func run(pass *analysis.Pass) error {
	analysis.WalkFuncs(pass.Files, func(_ string, body *ast.BlockStmt) {
		funcHasSink := containsSink(pass, body)
		funcHasSort := containsSort(pass, body)
		analysis.InspectShallow(body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if _, isMap := pass.TypeOf(rs.X).Underlying().(*types.Map); !isMap {
				return true
			}
			switch {
			case containsSink(pass, rs.Body):
				pass.Reportf(rs.For,
					"writing output while ranging over map %s; iteration order is randomized and the output is not reproducible — collect and sort the keys, then emit",
					types.ExprString(rs.X))
			case funcHasSink && !(funcHasSort && collectOnly(pass, rs.Body)):
				pass.Reportf(rs.For,
					"ranging over map %s in a function that writes output; iteration order is randomized — use the sorted-keys pattern (collect, sort, range the slice)",
					types.ExprString(rs.X))
			}
			return true
		})
	})
	return nil
}

func containsSink(pass *analysis.Pass, n ast.Node) bool {
	found := false
	analysis.InspectShallow(n, func(c ast.Node) bool {
		if call, ok := c.(*ast.CallExpr); ok {
			if name, _, ok := analysis.CalleeName(pass.TypesInfo, call); ok && sinkNames[name] {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}

func containsSort(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	analysis.InspectShallow(body, func(c ast.Node) bool {
		if call, ok := c.(*ast.CallExpr); ok {
			if name, pkg, ok := analysis.CalleeName(pass.TypesInfo, call); ok {
				if pkg == "sort" || pkg == "slices" || sortName.MatchString(name) {
					found = true
					return false
				}
			}
		}
		return !found
	})
	return found
}

// collectOnly reports whether the loop body only gathers elements
// (appends, map writes, counters, deletes) — the first half of the
// sorted-keys pattern — rather than doing order-sensitive work directly.
func collectOnly(pass *analysis.Pass, body *ast.BlockStmt) bool {
	ok := true
	analysis.InspectShallow(body, func(c ast.Node) bool {
		call, isCall := c.(*ast.CallExpr)
		if !isCall {
			return ok
		}
		if tv, isType := pass.TypesInfo.Types[call.Fun]; isType && tv.IsType() {
			return ok // type conversion
		}
		if name, _, named := analysis.CalleeName(pass.TypesInfo, call); !named || !collectCallees[name] {
			ok = false
		}
		return ok
	})
	return ok
}
