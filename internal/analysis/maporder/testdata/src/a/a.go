// Package a exercises maporder with local stand-ins for the output sinks
// (fmt.Fprintf, report.Table.AddRow, ...) so the fixture type-checks
// without imports; the analyzer matches sinks by callee name.
package a

// Builder stands in for strings.Builder / io.Writer sinks.
type Builder struct{}

func (b *Builder) WriteString(s string) {}

// Fprintf stands in for fmt.Fprintf.
func Fprintf(b *Builder, format string, args ...any) {}

// sortStrings stands in for sort.Strings.
func sortStrings(s []string) {}

// emitDirect writes rows straight out of a map: the order is randomized
// run to run, which breaks the byte-identical repro diff.
func emitDirect(w *Builder, cells map[string]float64) {
	for k, v := range cells { // want `writing output while ranging over map cells`
		Fprintf(w, "%s,%g\n", k, v)
	}
}

// collectUnsorted gathers rows from a map but never sorts them before the
// function prints, so the order still leaks.
func collectUnsorted(w *Builder, cells map[string]float64) {
	var rows []string
	for k := range cells { // want `ranging over map cells in a function that writes output`
		rows = append(rows, k)
	}
	for _, r := range rows {
		w.WriteString(r)
	}
}

// sortedKeys is the approved pattern: collect, sort, then emit.
func sortedKeys(w *Builder, cells map[string]float64) {
	keys := make([]string, 0, len(cells))
	for k := range cells {
		keys = append(keys, k)
	}
	sortStrings(keys)
	for _, k := range keys {
		Fprintf(w, "%s,%g\n", k, cells[k])
	}
}

// pureAccumulation produces no output; iteration order is not maporder's
// business here.
func pureAccumulation(cells map[string]float64) int {
	n := 0
	for range cells {
		n++
	}
	return n
}

// suppressedTotal justifies an order-insensitive reduction inline.
func suppressedTotal(w *Builder, counts map[string]int) {
	total := 0
	//lint:ignore maporder integer summation is order-independent
	for _, c := range counts {
		total += c
	}
	Fprintf(w, "%d\n", total)
}
