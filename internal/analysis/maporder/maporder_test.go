package maporder_test

import (
	"testing"

	"github.com/gables-model/gables/internal/analysis/analysistest"
	"github.com/gables-model/gables/internal/analysis/maporder"
)

func TestMaporder(t *testing.T) {
	analysistest.Run(t, "testdata", maporder.Analyzer, "a")
}
