package analysis

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// parseFixture writes src to a temp file and parses it into fset so tests
// can mint real token.Pos values for edits.
func parseFixture(t *testing.T, fset *token.FileSet, src string) (string, *token.File) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fix.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return path, fset.File(f.Pos())
}

func TestApplyFixesDeletesWholeDirectiveLine(t *testing.T) {
	src := "package p\n\nfunc f() int {\n\t//lint:ignore floatcmp stale reason\n\treturn 1\n}\n"
	fset := token.NewFileSet()
	path, tf := parseFixture(t, fset, src)
	start := strings.Index(src, "//lint:")
	end := strings.Index(src, "reason") + len("reason")
	d := Diagnostic{
		Pos:      tf.Pos(start),
		Analyzer: "lint",
		Message:  "unused directive",
		Fixes: []SuggestedFix{{
			Message:   "delete",
			TextEdits: []TextEdit{{Pos: tf.Pos(start), End: tf.Pos(end)}},
		}},
	}
	fixed, n, err := ApplyFixes(fset, []Diagnostic{d})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || !fixed[0] {
		t.Fatalf("applied %d fixes (fixed=%v), want 1", n, fixed)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := "package p\n\nfunc f() int {\n\treturn 1\n}\n"
	if string(got) != want {
		t.Errorf("after fix:\n%q\nwant (whole line gone, no blank residue):\n%q", got, want)
	}
}

func TestApplyFixesKeepsSharedLineIntact(t *testing.T) {
	// A deletion sharing its line with code must not swallow the code.
	src := "package p\n\nvar x = 1 // trailing note\n"
	fset := token.NewFileSet()
	path, tf := parseFixture(t, fset, src)
	start := strings.Index(src, "// trailing")
	end := strings.Index(src, "note") + len("note")
	d := Diagnostic{
		Pos:   tf.Pos(start),
		Fixes: []SuggestedFix{{TextEdits: []TextEdit{{Pos: tf.Pos(start), End: tf.Pos(end)}}}},
	}
	if _, _, err := ApplyFixes(fset, []Diagnostic{d}); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if !strings.Contains(string(got), "var x = 1") {
		t.Errorf("fix deleted code sharing the comment's line:\n%q", got)
	}
	if strings.Contains(string(got), "trailing") {
		t.Errorf("fix did not delete the comment:\n%q", got)
	}
}

func TestApplyFixesReplacement(t *testing.T) {
	src := "package p\n\n//fp:lock v1 deadbeefdeadbeef\nconst V = 1\n"
	fset := token.NewFileSet()
	path, tf := parseFixture(t, fset, src)
	start := strings.Index(src, "//fp:lock")
	end := strings.Index(src, "deadbeefdeadbeef") + 16
	d := Diagnostic{
		Pos: tf.Pos(start),
		Fixes: []SuggestedFix{{
			TextEdits: []TextEdit{{Pos: tf.Pos(start), End: tf.Pos(end), NewText: []byte("//fp:lock v2 0123456789abcdef")}},
		}},
	}
	_, n, err := ApplyFixes(fset, []Diagnostic{d})
	if err != nil || n != 1 {
		t.Fatalf("ApplyFixes = %d, %v; want 1, nil", n, err)
	}
	got, _ := os.ReadFile(path)
	want := "package p\n\n//fp:lock v2 0123456789abcdef\nconst V = 1\n"
	if string(got) != want {
		t.Errorf("after fix:\n%q\nwant:\n%q", got, want)
	}
}

func TestApplyFixesSkipsOverlapping(t *testing.T) {
	src := "package p\n\n//lint:ignore a,b overlapping fixes target me\nvar x = 1\n"
	fset := token.NewFileSet()
	path, tf := parseFixture(t, fset, src)
	start := strings.Index(src, "//lint:")
	end := strings.Index(src, "me") + 2
	edit := []TextEdit{{Pos: tf.Pos(start), End: tf.Pos(end)}}
	diags := []Diagnostic{
		{Pos: tf.Pos(start), Fixes: []SuggestedFix{{TextEdits: edit}}},
		{Pos: tf.Pos(start), Fixes: []SuggestedFix{{TextEdits: edit}}},
	}
	fixed, n, err := ApplyFixes(fset, diags)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || !fixed[0] || fixed[1] {
		t.Fatalf("applied %d fixes (fixed=%v), want only the first (second overlaps)", n, fixed)
	}
	got, _ := os.ReadFile(path)
	if strings.Contains(string(got), "lint:ignore") {
		t.Errorf("first fix not applied:\n%q", got)
	}
}

func TestApplyFixesNothingToDo(t *testing.T) {
	fixed, n, err := ApplyFixes(token.NewFileSet(), []Diagnostic{{Message: "no fix attached"}})
	if err != nil || n != 0 || fixed[0] {
		t.Fatalf("ApplyFixes = %d, %v (fixed=%v); want 0, nil", n, err, fixed)
	}
}
