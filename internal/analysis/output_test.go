package analysis

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestWriteJSONStableFieldOrder(t *testing.T) {
	findings := []Finding{
		{File: "a/a.go", Line: 3, Column: 7, Analyzer: "floatcmp", Severity: "error", Message: "exact == on float"},
		{File: "b/b.go", Line: 1, Column: 1, Analyzer: "lint", Severity: "warning", Message: "unused directive", Fixed: true},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, findings); err != nil {
		t.Fatal(err)
	}
	want := `[
  {
    "file": "a/a.go",
    "line": 3,
    "column": 7,
    "analyzer": "floatcmp",
    "severity": "error",
    "message": "exact == on float"
  },
  {
    "file": "b/b.go",
    "line": 1,
    "column": 1,
    "analyzer": "lint",
    "severity": "warning",
    "message": "unused directive",
    "fixed": true
  }
]
`
	if buf.String() != want {
		t.Errorf("JSON output not byte-stable:\n got: %s\nwant: %s", buf.String(), want)
	}
}

func TestWriteJSONEmptyIsArray(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Errorf("zero findings = %q, want []", buf.String())
	}
}

func TestWriteSARIFShape(t *testing.T) {
	findings := []Finding{
		{File: "internal/sim/sim.go", Line: 10, Column: 2, Analyzer: "detsource", Severity: "error", Message: "time.Now in deterministic package"},
		{File: "cmd/x/main.go", Line: 4, Column: 1, Analyzer: "lint", Severity: "warning", Message: "unused //lint: directive"},
	}
	rules := []SARIFRule{
		{ID: "detsource", Summary: "forbids nondeterminism sources"},
		{ID: "lint", Summary: "directive hygiene"},
	}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, "gables-lint", "https://example.invalid/gables", rules, findings); err != nil {
		t.Fatal(err)
	}

	var log map[string]any
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if v := log["version"]; v != "2.1.0" {
		t.Errorf("version = %v, want 2.1.0", v)
	}
	runs := log["runs"].([]any)
	if len(runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(runs))
	}
	run := runs[0].(map[string]any)
	driver := run["tool"].(map[string]any)["driver"].(map[string]any)
	if driver["name"] != "gables-lint" {
		t.Errorf("driver.name = %v", driver["name"])
	}
	if n := len(driver["rules"].([]any)); n != 2 {
		t.Errorf("rules = %d, want 2", n)
	}
	results := run["results"].([]any)
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2", len(results))
	}
	first := results[0].(map[string]any)
	if first["ruleId"] != "detsource" || first["level"] != "error" {
		t.Errorf("first result = %v", first)
	}
	loc := first["locations"].([]any)[0].(map[string]any)["physicalLocation"].(map[string]any)
	art := loc["artifactLocation"].(map[string]any)
	if art["uri"] != "internal/sim/sim.go" || art["uriBaseId"] != "%SRCROOT%" {
		t.Errorf("artifactLocation = %v", art)
	}
	region := loc["region"].(map[string]any)
	if region["startLine"].(float64) != 10 || region["startColumn"].(float64) != 2 {
		t.Errorf("region = %v", region)
	}
	second := results[1].(map[string]any)
	if second["level"] != "warning" {
		t.Errorf("warning severity mapped to %v", second["level"])
	}
}

func TestWriteSARIFEmptyResults(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, "gables-lint", "", nil, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"results": []`) {
		t.Errorf("zero findings must serialize as an empty results array:\n%s", buf.String())
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{File: "x.go", Line: 2, Column: 5, Analyzer: "floatcmp", Severity: "error", Message: "m"}
	if got := f.String(); got != "x.go:2:5: floatcmp: m" {
		t.Errorf("String() = %q", got)
	}
	f.Severity = "warning"
	f.Fixed = true
	if got := f.String(); got != "x.go:2:5: floatcmp: warning: m [fixed]" {
		t.Errorf("String() = %q", got)
	}
}
