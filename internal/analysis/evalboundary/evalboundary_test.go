package evalboundary_test

import (
	"testing"

	"github.com/gables-model/gables/internal/analysis/analysistest"
	"github.com/gables-model/gables/internal/analysis/evalboundary"
)

func TestEvalBoundary(t *testing.T) {
	analysistest.Run(t, "testdata", evalboundary.Analyzer,
		"a",               // violations, decoys, suppression
		"x/internal/eval", // the evaluation layer itself is exempt
		"b_test",          // external test units are exempt
	)
}

func TestExemptPackage(t *testing.T) {
	cases := []struct {
		path   string
		exempt bool
	}{
		{"github.com/gables-model/gables/internal/eval", true},
		{"github.com/gables-model/gables/internal/core", true},
		{"github.com/gables-model/gables/internal/simcache", true},
		{"github.com/gables-model/gables/internal/sim", true},
		{"github.com/gables-model/gables/internal/sim/trace", true},
		{"github.com/gables-model/gables/internal/web_test", true},
		{"internal/eval", true},
		{"github.com/gables-model/gables/examples/quickstart", true},
		{"github.com/gables-model/gables/internal/web", false},
		{"github.com/gables-model/gables/internal/erb", false},
		{"github.com/gables-model/gables/cmd/gables-repro", false},
		{"github.com/gables-model/gables/internal/simulate", false},
		{"github.com/gables-model/gables/internal/evaluate", false},
	}
	for _, c := range cases {
		if got := evalboundary.ExemptPackage(c.path); got != c.exempt {
			t.Errorf("ExemptPackage(%q) = %v, want %v", c.path, got, c.exempt)
		}
	}
}
