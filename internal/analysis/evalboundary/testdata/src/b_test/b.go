// Package b loads under the import path "b_test": external test packages
// pin byte-identity against the raw backends on purpose, so the whole unit
// is exempt.
package b

import "simcache"

// pinBaseline would be flagged anywhere else.
func pinBaseline() float64 {
	res, _ := simcache.Run(4096)
	return res.Rate
}
