// Package core is a minimal stand-in for internal/core: a Model with the
// Evaluate/EvaluateSerialized methods evalboundary guards, plus decoys
// (PeerModel methods, a package-level Evaluate function) that must stay
// clean.
package core

// Model mirrors core.Model.
type Model struct{}

// Evaluate mirrors (*core.Model).Evaluate.
func (m *Model) Evaluate() (float64, error) { return 0, nil }

// EvaluateSerialized mirrors (*core.Model).EvaluateSerialized.
func (m *Model) EvaluateSerialized() (float64, error) { return 0, nil }

// PeerModel is a decoy: its Evaluate is a different entry point and is not
// guarded.
type PeerModel struct{}

// Evaluate is not the guarded method.
func (p *PeerModel) Evaluate() float64 { return 0 }

// Evaluate (package-level) is a decoy: no receiver, so not the guarded
// method.
func Evaluate() float64 { return 0 }
