// Package sim is a minimal stand-in for internal/sim: a System with a Run
// method, which evalboundary guards, plus a decoy type whose Run method
// must stay clean.
package sim

// System mirrors sim.System.
type System struct{}

// Run mirrors (*sim.System).Run.
func (s *System) Run(words int) (float64, error) {
	return float64(words), nil
}

// Sampler is a decoy: a Run method on a non-System type in the sim
// package is not an evaluation entry point.
type Sampler struct{}

// Run is not the guarded method.
func (s *Sampler) Run() int { return 0 }
