// Package a exercises evalboundary on direct backend calls, decoys, and
// suppression.
package a

import (
	"core"
	"sim"
	"simcache"
)

// directSimcache calls the cached simulation entry point directly.
func directSimcache() float64 {
	res, _ := simcache.Run(4096) // want `simcache\.Run bypasses the eval boundary`
	return res.Rate
}

// directSystemRun calls the simulator directly.
func directSystemRun(sys *sim.System) float64 {
	rate, _ := sys.Run(4096) // want `\(\*sim\.System\)\.Run bypasses the eval boundary`
	return rate
}

// directModelEvaluate calls the analytic model directly, both forms.
func directModelEvaluate(m *core.Model) float64 {
	a, _ := m.Evaluate()           // want `\(\*core\.Model\)\.Evaluate bypasses the eval boundary`
	b, _ := m.EvaluateSerialized() // want `\(\*core\.Model\)\.EvaluateSerialized bypasses the eval boundary`
	return a + b
}

// decoys: same method names on other types, or no receiver — all clean.
func decoys(p *core.PeerModel, s *sim.Sampler) float64 {
	return p.Evaluate() + core.Evaluate() + float64(s.Run()) + float64(localRun())
}

// localRun shares the guarded name but lives in this package.
func localRun() int { return 0 }

// suppressed: raw-measurement substrate crosses the boundary on purpose.
func suppressed(sys *sim.System) float64 {
	//lint:ignore evalboundary raw measurement substrate: characterizes the machine, not a usecase query
	rate, _ := sys.Run(8192)
	return rate
}
