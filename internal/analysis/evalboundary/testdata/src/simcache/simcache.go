// Package simcache is a minimal stand-in for internal/simcache: just the
// Run entry point evalboundary guards. The analyzer matches any package
// whose path ends in "simcache", so fixtures need not import the real
// module.
package simcache

// RunResult mirrors simcache.RunResult.
type RunResult struct {
	Rate float64
}

// Run mirrors simcache.Run.
func Run(words int) (RunResult, error) {
	return RunResult{Rate: float64(words)}, nil
}
