// Package eval stands in for the evaluation layer itself: any package
// whose path ends in internal/eval is inside the boundary, so its direct
// backend calls are clean.
package eval

import "simcache"

// Evaluate is the boundary's own implementation: calling the backend here
// is the whole point.
func Evaluate(words int) float64 {
	res, _ := simcache.Run(words)
	return res.Rate
}
