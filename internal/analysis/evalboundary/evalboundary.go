// Package evalboundary enforces the Evaluator contract's boundary: outside
// the evaluation layer itself, code must answer "how fast can this SoC run
// this usecase?" through internal/eval (an Evaluator from the registry),
// not by calling the execution backends directly. Direct calls to
// simcache.Run, (*sim.System).Run, or (*core.Model).Evaluate /
// EvaluateSerialized skip the canonical query fingerprint, the shared
// outcome cache, the probe attachment point, and — most importantly — the
// differential oracle's agreement bands, so analytic/sim divergence at such
// a call site is invisible to CI.
//
// The boundary has legitimate crossings: the eval package and the backends
// themselves (internal/eval, internal/core, internal/simcache, the
// internal/sim subtree), test files (which pin byte-identity against the
// raw backends on purpose), the examples/ tree (pedagogical walkthroughs
// of the public analytic API), and raw-measurement substrate like the §IV
// sweep harnesses, which characterize the machine rather than answer a
// usecase query. The first three are exempted structurally; measurement
// substrate carries a reasoned //lint:ignore or //lint:file-ignore
// directive, keeping every crossing deliberate and documented.
package evalboundary

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/gables-model/gables/internal/analysis"
)

// Analyzer is the evalboundary rule.
var Analyzer = &analysis.Analyzer{
	Name: "evalboundary",
	Doc: "flags direct simcache.Run/(*sim.System).Run/(*core.Model).Evaluate calls outside " +
		"internal/eval and tests; route evaluation through the eval.Evaluator registry",
	Run: run,
}

// exemptPkgs are the path suffixes (module-relative) of packages on the
// inside of the boundary: the evaluation layer and the backends it wraps.
var exemptPkgs = []string{
	"internal/eval",
	"internal/core",
	"internal/simcache",
	"internal/sim",       // the substrate subtree: sim, sim/ip, sim/cpu, sim/trace...
	"internal/surrogate", // a backend implementation: its fast path IS a (fitted) core.Model
	"examples",           // pedagogical walkthroughs of the public analytic API
}

func run(pass *analysis.Pass) error {
	if exemptPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if what := boundaryCall(pass, call); what != "" {
				pass.Reportf(call.Pos(),
					"%s bypasses the eval boundary: evaluate through an eval.Evaluator (registry backend) "+
						"so the query is fingerprinted, cached, and covered by the differential oracle",
					what)
			}
			return true
		})
	}
	return nil
}

// exemptPackage reports whether pkgPath lies inside the boundary. Matching
// is by module-relative suffix so the rule works both on the real module
// path and on short fixture paths; external test packages ("..._test") are
// exempt like test files.
func exemptPackage(pkgPath string) bool {
	if strings.HasSuffix(pkgPath, "_test") {
		return true
	}
	for _, exempt := range exemptPkgs {
		if pkgPath == exempt || strings.HasSuffix(pkgPath, "/"+exempt) {
			return true
		}
		// Subtree exemption: internal/sim covers internal/sim/trace etc.
		if strings.Contains(pkgPath+"/", "/"+exempt+"/") || strings.HasPrefix(pkgPath+"/", exempt+"/") {
			return true
		}
	}
	return false
}

// boundaryCall classifies a call as a boundary violation, returning a
// human-readable name for the offending callee ("" when the call is fine).
func boundaryCall(pass *analysis.Pass, call *ast.CallExpr) string {
	name, pkgPath, ok := analysis.CalleeName(pass.TypesInfo, call)
	if !ok {
		return ""
	}
	recv := receiverTypeName(pass.TypesInfo, call)
	switch {
	case name == "Run" && isBackendPkg(pkgPath, "simcache") && recv == "":
		return "simcache.Run"
	case name == "Run" && isBackendPkg(pkgPath, "sim") && recv == "System":
		return "(*sim.System).Run"
	case (name == "Evaluate" || name == "EvaluateSerialized") &&
		isBackendPkg(pkgPath, "core") && recv == "Model":
		return "(*core.Model)." + name
	}
	return ""
}

// isBackendPkg reports whether pkgPath's last segment names the backend
// package (matching the real module path and short fixture paths alike).
func isBackendPkg(pkgPath, last string) bool {
	return pkgPath == last || strings.HasSuffix(pkgPath, "/"+last)
}

// receiverTypeName returns the named type of a method call's receiver
// (pointers stripped), or "" for plain function calls.
func receiverTypeName(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}
