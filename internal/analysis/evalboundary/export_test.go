package evalboundary

// ExemptPackage exposes the boundary predicate to the external test.
var ExemptPackage = exemptPackage
