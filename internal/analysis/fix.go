package analysis

import (
	"bytes"
	"fmt"
	"go/token"
	"os"
	"sort"
)

// ApplyFixes applies the first suggested fix of every diagnostic that has
// one, rewriting the affected files in place. The returned slice is
// index-aligned with diags and marks which diagnostics had their fix
// applied; n is the count of trues. Diagnostics whose edits would overlap
// an already-accepted edit are skipped (left outstanding) rather than
// half-applied, so repeated -fix runs converge.
//
// A deletion edit whose removal leaves its source line all-whitespace is
// widened to swallow the whole line, so deleting a directive comment that
// stood alone on a line does not leave trailing-whitespace debris behind
// (the tree must stay `gofmt -l`-clean after a fix run).
func ApplyFixes(fset *token.FileSet, diags []Diagnostic) (fixed []bool, n int, err error) {
	type edit struct {
		start, end int // byte offsets within file
		newText    []byte
	}
	perFile := map[string][]edit{}
	fixed = make([]bool, len(diags))
	applied := 0
	for i, d := range diags {
		if len(d.Fixes) == 0 {
			continue
		}
		fix := d.Fixes[0]
		file := ""
		var edits []edit
		ok := true
		for _, te := range fix.TextEdits {
			p, e := fset.Position(te.Pos), fset.Position(te.End)
			if file == "" {
				file = p.Filename
			}
			if p.Filename != file || e.Filename != file || e.Offset < p.Offset {
				ok = false
				break
			}
			edits = append(edits, edit{start: p.Offset, end: e.Offset, newText: te.NewText})
		}
		if !ok || file == "" {
			continue
		}
		// Reject edits overlapping anything already accepted for the file.
		for _, ne := range edits {
			for _, pe := range perFile[file] {
				if ne.start < pe.end && pe.start < ne.end {
					ok = false
				}
			}
		}
		if !ok {
			continue
		}
		perFile[file] = append(perFile[file], edits...)
		fixed[i] = true
		applied++
	}
	if applied == 0 {
		return fixed, 0, nil
	}

	files := make([]string, 0, len(perFile))
	for f := range perFile {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			return fixed, applied, fmt.Errorf("analysis: applying fixes: %v", err)
		}
		edits := perFile[file]
		sort.Slice(edits, func(i, j int) bool { return edits[i].start < edits[j].start })
		var out bytes.Buffer
		prev := 0
		for _, e := range edits {
			if e.start > len(src) || e.end > len(src) || e.start < prev {
				return fixed, applied, fmt.Errorf("analysis: fix edit out of range in %s", file)
			}
			start, end := e.start, e.end
			if len(e.newText) == 0 {
				start, end = widenDeletion(src, start, end)
				if start < prev {
					start = e.start // widening collided with the previous edit
					end = e.end
				}
			}
			out.Write(src[prev:start])
			out.Write(e.newText)
			prev = end
		}
		out.Write(src[prev:])
		if err := os.WriteFile(file, out.Bytes(), 0o644); err != nil {
			return fixed, applied, fmt.Errorf("analysis: applying fixes: %v", err)
		}
	}
	return fixed, applied, nil
}

// widenDeletion grows the deletion [start, end) to cover its entire source
// line — leading indentation through the trailing newline — when the rest
// of the line is whitespace only. Deletions sharing a line with code are
// left untouched.
func widenDeletion(src []byte, start, end int) (int, int) {
	ls := start
	for ls > 0 && src[ls-1] != '\n' {
		ls--
	}
	le := end
	for le < len(src) && src[le] != '\n' {
		le++
	}
	for _, b := range src[ls:start] {
		if b != ' ' && b != '\t' {
			return start, end
		}
	}
	for _, b := range src[end:le] {
		if b != ' ' && b != '\t' {
			return start, end
		}
	}
	if le < len(src) {
		le++ // swallow the newline
	}
	return ls, le
}
