package analysis

import (
	"encoding/json"
	"io"
)

// SARIF 2.1.0 output, the minimal subset GitHub code scanning ingests:
// one run, one tool driver carrying the rule catalog, one result per
// finding with a physical location relative to %SRCROOT%. The structs
// mirror the spec's property names; Go's struct-order marshaling keeps the
// byte stream deterministic for a given finding list.

const sarifSchema = "https://json.schemastore.org/sarif-2.1.0.json"

// SARIFRule describes one analyzer in the tool's rule catalog.
type SARIFRule struct {
	ID      string
	Summary string
}

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string          `json:"name"`
	InformationURI string          `json:"informationUri,omitempty"`
	Rules          []sarifRuleDesc `json:"rules"`
}

type sarifRuleDesc struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// WriteSARIF emits a SARIF 2.1.0 log for the findings. rules is the full
// analyzer catalog of the run (reported or not — code-scanning UIs use it
// to describe the tool); findings must already carry repo-relative,
// slash-separated paths.
func WriteSARIF(w io.Writer, toolName, infoURI string, rules []SARIFRule, findings []Finding) error {
	driver := sarifDriver{Name: toolName, InformationURI: infoURI, Rules: []sarifRuleDesc{}}
	for _, r := range rules {
		driver.Rules = append(driver.Rules, sarifRuleDesc{
			ID:               r.ID,
			ShortDescription: sarifMessage{Text: r.Summary},
		})
	}
	results := []sarifResult{}
	for _, f := range findings {
		level := "error"
		if f.Severity == SeverityWarning.String() {
			level = "warning"
		}
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   level,
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: f.File, URIBaseID: "%SRCROOT%"},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  sarifSchema,
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	b, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
