package analysis

import "fmt"

// RunOptions tunes a driver run.
type RunOptions struct {
	// ReportUnused adds a finding for every //lint:ignore directive that
	// silenced nothing — a staleness check. Enable only when running the
	// full analyzer suite; a filtered run would wrongly flag directives
	// aimed at analyzers that were not executed.
	ReportUnused bool
}

// Run applies the analyzers to one package, filters the findings through
// the package's //lint: directives, and returns them sorted by position.
func Run(pkg *Package, analyzers []*Analyzer, opts RunOptions) ([]Diagnostic, error) {
	sups, diags := collectSuppressions(pkg)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		pass.Report = func(d Diagnostic) {
			d.Analyzer = a.Name
			pos := pkg.Fset.Position(d.Pos)
			for _, s := range sups {
				if s.matches(a.Name) && s.covers(pos) {
					s.used = true
					return
				}
			}
			diags = append(diags, d)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %v", a.Name, pkg.Path, err)
		}
	}
	if opts.ReportUnused {
		for _, s := range sups {
			if !s.used {
				diags = append(diags, Diagnostic{
					Pos:      s.pos,
					Analyzer: "lint",
					Severity: SeverityWarning,
					Message:  "unused //lint: directive (no diagnostic on this line to suppress)",
					Fixes: []SuggestedFix{{
						Message:   "delete the stale directive",
						TextEdits: []TextEdit{{Pos: s.pos, End: s.end}},
					}},
				})
			}
		}
	}
	SortDiagnostics(pkg.Fset, diags)
	return diags, nil
}
