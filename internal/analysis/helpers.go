package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// IsFloat reports whether t is (or aliases) a floating-point type.
func IsFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// ConstFloat returns the value of a compile-time numeric constant
// expression, if e is one.
func ConstFloat(info *types.Info, e ast.Expr) (float64, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	if tv.Value.Kind() != constant.Int && tv.Value.Kind() != constant.Float {
		return 0, false
	}
	f, _ := constant.Float64Val(constant.ToFloat(tv.Value))
	return f, true
}

// IsConst reports whether e is a compile-time constant expression.
func IsConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

// Unconvert strips parentheses and type conversions (float64(x), T(x))
// from an expression, returning the innermost operand.
func Unconvert(info *types.Info, e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.CallExpr:
			if len(x.Args) != 1 {
				return e
			}
			if tv, ok := info.Types[x.Fun]; ok && tv.IsType() {
				e = x.Args[0]
				continue
			}
			return e
		default:
			return e
		}
	}
}

// CalleeName returns the name of the function being called — "Log10" for
// math.Log10(x) or a method call m.Log10(x), "clamp" for clamp(x) — and,
// when the callee resolves to a package-level function, the path of the
// package that declares it. It returns ok=false for indirect calls and
// type conversions.
func CalleeName(info *types.Info, call *ast.CallExpr) (name, pkgPath string, ok bool) {
	if tv, isType := info.Types[call.Fun]; isType && tv.IsType() {
		return "", "", false
	}
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return "", "", false
	}
	if obj := info.Uses[id]; obj != nil && obj.Pkg() != nil {
		pkgPath = obj.Pkg().Path()
	}
	return id.Name, pkgPath, true
}

// InspectShallow walks n like ast.Inspect but does not descend into
// nested function literals: a FuncLit's body belongs to the WalkFuncs
// visit of the literal itself, not to its enclosing function.
func InspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(c ast.Node) bool {
		if _, isLit := c.(*ast.FuncLit); isLit {
			return false
		}
		return fn(c)
	})
}

// WalkFuncs visits every function declaration and function literal in the
// files, handing fn the node whose Body it should inspect along with the
// best available name ("" for anonymous literals). Pair with
// InspectShallow so nested literals are not analyzed twice.
func WalkFuncs(files []*ast.File, fn func(name string, body *ast.BlockStmt)) {
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					fn(d.Name.Name, d.Body)
				}
			case *ast.FuncLit:
				fn("", d.Body)
			}
			return true
		})
	}
}
