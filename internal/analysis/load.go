package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	// Path is the import path the package was loaded under.
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages for analysis. Target packages are
// always checked from source; their imports are satisfied, in order of
// preference, by (1) Resolve — more source packages, used by analysistest
// fixtures, (2) Lookup — compiled export data from the build cache, used by
// cmd/gables-lint via `go list -export`, and (3) a source importer that
// type-checks the standard library from $GOROOT/src, which keeps the whole
// pipeline working offline with an empty build cache.
type Loader struct {
	Fset *token.FileSet
	// Resolve maps an import path to a directory whose sources should be
	// type-checked to satisfy the import. Optional.
	Resolve func(importPath string) (dir string, ok bool)
	// Lookup returns compiled export data for an import path, as the
	// lookup functions of go/importer.ForCompiler do. Optional.
	Lookup func(importPath string) (io.ReadCloser, error)
	// IncludeTests makes source loads include in-package _test.go files.
	IncludeTests bool

	pkgs   map[string]*Package
	gcImp  types.Importer
	srcImp types.Importer
}

// NewLoader returns a loader with a fresh fileset.
func NewLoader() *Loader {
	return &Loader{Fset: token.NewFileSet(), pkgs: map[string]*Package{}}
}

// inProgress marks a package currently being type-checked (cycle sentinel).
var inProgress = &Package{}

// Load type-checks the package at importPath from source, resolving the
// directory via Resolve.
func (l *Loader) Load(importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		if p == inProgress {
			return nil, fmt.Errorf("analysis: import cycle through %q", importPath)
		}
		return p, nil
	}
	if l.Resolve == nil {
		return nil, fmt.Errorf("analysis: no resolver configured for %q", importPath)
	}
	dir, ok := l.Resolve(importPath)
	if !ok {
		return nil, fmt.Errorf("analysis: cannot resolve import path %q to a directory", importPath)
	}
	files, err := l.sourceFiles(dir)
	if err != nil {
		return nil, err
	}
	return l.CheckFiles(importPath, files)
}

// sourceFiles lists the .go files of dir that belong in a source load:
// sorted for determinism, test files only when IncludeTests is set.
func (l *Loader) sourceFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %v", err)
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if !l.IncludeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	return files, nil
}

// CheckFiles parses and type-checks exactly the given files as the package
// at importPath. Files whose package clause disagrees with the first file's
// (external _test packages mixed into a directory listing) are skipped.
func (l *Loader) CheckFiles(importPath string, filenames []string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok && p != inProgress {
		return p, nil
	}
	l.pkgs[importPath] = inProgress

	var (
		astFiles []*ast.File
		pkgName  string
	)
	for _, fn := range filenames {
		f, err := parser.ParseFile(l.Fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			delete(l.pkgs, importPath)
			return nil, fmt.Errorf("analysis: parse %s: %v", fn, err)
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		}
		if f.Name.Name != pkgName {
			continue
		}
		astFiles = append(astFiles, f)
	}
	if len(astFiles) == 0 {
		delete(l.pkgs, importPath)
		return nil, fmt.Errorf("analysis: no files for package %q", importPath)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(importPath, l.Fset, astFiles, info)
	if err != nil {
		delete(l.pkgs, importPath)
		return nil, fmt.Errorf("analysis: typecheck %s: %v", importPath, err)
	}
	p := &Package{Path: importPath, Fset: l.Fset, Files: astFiles, Types: tpkg, Info: info}
	l.pkgs[importPath] = p
	return p, nil
}

// Import implements types.Importer for the dependency chain described on
// Loader.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.Resolve != nil {
		if _, ok := l.Resolve(path); ok {
			p, err := l.Load(path)
			if err != nil {
				return nil, err
			}
			return p.Types, nil
		}
	}
	if l.Lookup != nil {
		if l.gcImp == nil {
			l.gcImp = importer.ForCompiler(l.Fset, "gc", l.Lookup)
		}
		if pkg, err := l.gcImp.Import(path); err == nil {
			return pkg, nil
		}
	}
	if l.srcImp == nil {
		l.srcImp = importer.ForCompiler(l.Fset, "source", nil)
	}
	return l.srcImp.Import(path)
}
