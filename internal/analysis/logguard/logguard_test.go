package logguard_test

import (
	"testing"

	"github.com/gables-model/gables/internal/analysis/analysistest"
	"github.com/gables-model/gables/internal/analysis/logguard"
)

func TestLogguard(t *testing.T) {
	analysistest.Run(t, "testdata", logguard.Analyzer, "a")
}
