// Package a exercises logguard: unguarded log-space sampling (the
// pre-units.Logspace roofline/logca pattern), divisions by inline logs,
// and the guarded/clamped idioms that must stay clean.
package a

import "math"

// curvePrefix reproduces the log-spaced sampling that internal/roofline
// and internal/logca carried before delegating to units.Logspace: nothing
// in this function bounds lo or hi.
func curvePrefix(lo, hi float64, n int) []float64 {
	logLo, logHi := math.Log(lo), math.Log(hi) // want `math\.Log on lo without a positivity guard` `math\.Log on hi without a positivity guard`
	out := make([]float64, n)
	for k := 0; k < n; k++ {
		out[k] = math.Exp(logLo + (logHi-logLo)*float64(k)/float64(n-1))
	}
	return out
}

// guarded mirrors the accepted pattern: validate, then sample.
func guarded(lo, hi float64) (float64, float64) {
	if lo <= 0 || hi <= 0 || lo >= hi {
		return 0, 0
	}
	return math.Log(lo), math.Log(hi)
}

// guardedConversion matches through float64(...) conversions the way
// roofline.Curve guards units.Intensity values.
func guardedConversion(lo float64) float64 {
	if lo <= 0 {
		return 0
	}
	return math.Log10(float64(lo))
}

// clamped inputs are safe by construction.
func clamped(v float64) float64 { return math.Log10(math.Max(v, 1e-12)) }

// positive constants are safe.
func constant() float64 { return math.Log(10) }

// divByLog reproduces the denominator-zero hazard of plot's pre-fix
// scale(): Log10(y) is zero at y == 1 and NaN for y <= 0.
func divByLog(x, y float64) float64 {
	if x <= 0 {
		x = 1
	}
	return x / math.Log10(y) // want `math\.Log10 on y without a positivity guard` `dividing by math\.Log10\(y\)`
}

// divGuarded bounds the log argument away from the zero of the log.
func divGuarded(x, y float64) float64 {
	if y <= 1 {
		return 0
	}
	return x / math.Log10(y)
}

// suppressed documents a non-local invariant instead of restating it.
func suppressed(t float64) float64 {
	//lint:ignore logguard t is a wall-clock duration in seconds, >= 1 by construction
	return math.Log(t)
}
