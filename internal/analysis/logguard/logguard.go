// Package logguard flags math.Log / math.Log10 / math.Log2 calls whose
// argument is not visibly guarded for positivity, and divisions whose
// denominator is built from such logs (zero when the log argument is 1).
// A non-positive input turns the whole downstream pipeline into NaN with
// no error — exactly the bug internal/plot had to fix in PR 1 by clamping
// log-axis inputs to the axis floor.
//
// "Guarded" is a per-function, syntactic judgment: the function compares
// the same expression (modulo parentheses and conversions) against a
// bound somewhere, or the argument is already the result of a clamping
// call (clamp*, math.Max, the max builtin, math.Floor...). The analyzer
// does not do interprocedural range analysis; a call site that is safe for
// non-local reasons gets a //lint:ignore logguard directive with the
// reason spelled out.
package logguard

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"github.com/gables-model/gables/internal/analysis"
)

// Analyzer is the logguard rule.
var Analyzer = &analysis.Analyzer{
	Name: "logguard",
	Doc: "flags math.Log/Log10/Log2 calls (and divisions by them) whose input is not " +
		"guarded for positivity in the same function; log of a non-positive value is NaN/-Inf",
	Run: run,
}

var logNames = map[string]bool{"Log": true, "Log10": true, "Log2": true}

// clampCall matches callee names whose result is safe to take a log of.
var clampCall = regexp.MustCompile(`(?i)clamp|floor|max`)

func run(pass *analysis.Pass) error {
	analysis.WalkFuncs(pass.Files, func(_ string, body *ast.BlockStmt) {
		guards := comparisonOperands(pass, body)
		analysis.InspectShallow(body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if name, ok := mathLogCall(pass, x); ok && !argGuarded(pass, guards, x.Args[0]) {
					pass.Reportf(x.Pos(),
						"math.%s on %s without a positivity guard in this function; a non-positive input yields NaN/-Inf — guard (v <= 0) or clamp first",
						name, types.ExprString(x.Args[0]))
				}
			case *ast.BinaryExpr:
				if x.Op != token.QUO {
					return true
				}
				logs := logCallsWithin(pass, x.Y)
				if len(logs) == 0 {
					return true
				}
				if guards[types.ExprString(x.Y)] {
					return true
				}
				for _, lc := range logs {
					if !argGuarded(pass, guards, lc.Args[0]) {
						pass.Reportf(x.OpPos,
							"dividing by %s, which is zero when the log argument is 1 and NaN when it is non-positive; guard the denominator",
							types.ExprString(x.Y))
						break
					}
				}
			}
			return true
		})
	})
	return nil
}

// mathLogCall reports whether call is math.Log, math.Log10 or math.Log2.
func mathLogCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	name, pkg, ok := analysis.CalleeName(pass.TypesInfo, call)
	if !ok || pkg != "math" || !logNames[name] || len(call.Args) != 1 {
		return "", false
	}
	return name, true
}

// argGuarded decides whether a log argument is safe: a positive constant,
// a clamping call, or an expression the function compares against a bound.
func argGuarded(pass *analysis.Pass, guards map[string]bool, arg ast.Expr) bool {
	core := analysis.Unconvert(pass.TypesInfo, arg)
	if f, ok := analysis.ConstFloat(pass.TypesInfo, core); ok {
		return f > 0
	}
	if call, ok := core.(*ast.CallExpr); ok {
		if name, _, ok := analysis.CalleeName(pass.TypesInfo, call); ok && clampCall.MatchString(name) {
			return true
		}
	}
	return guards[types.ExprString(arg)] || guards[types.ExprString(core)]
}

// comparisonOperands collects the rendered operands of every comparison in
// the function body: `if lo <= 0 || lo >= hi { return err }` contributes
// "lo", "0" and "hi", which then vouch for math.Log(float64(lo)).
func comparisonOperands(pass *analysis.Pass, body *ast.BlockStmt) map[string]bool {
	guards := map[string]bool{}
	analysis.InspectShallow(body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
			for _, side := range []ast.Expr{be.X, be.Y} {
				guards[types.ExprString(side)] = true
				guards[types.ExprString(analysis.Unconvert(pass.TypesInfo, side))] = true
			}
		}
		return true
	})
	return guards
}

// logCallsWithin returns the math.Log* calls appearing anywhere in e.
func logCallsWithin(pass *analysis.Pass, e ast.Expr) []*ast.CallExpr {
	var out []*ast.CallExpr
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if _, isLog := mathLogCall(pass, call); isLog {
				out = append(out, call)
			}
		}
		return true
	})
	return out
}
