// Package suppressed exercises //lint: directives: suppressed hits need
// no want comment, and a directive that suppresses nothing is stale.
package suppressed

//lint:ignore intlit fixture exercises same-line suppression
var a = 1

var b = 2 //lint:ignore intlit fixture exercises trailing suppression

//lint:ignore intlit stale directive: the next line has no finding
var c = "nothing to suppress"

// An unsuppressed hit still needs its annotation.
var d = 3 // want `integer literal 3`
