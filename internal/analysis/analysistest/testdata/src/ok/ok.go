// Package ok annotates every intlit hit correctly.
package ok

var a = 1 // want `integer literal 1`

var b = 2 + 3 // want `integer literal 2` `integer literal 3`

var c = "strings are not flagged"
