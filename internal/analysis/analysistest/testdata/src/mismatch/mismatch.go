// Package mismatch provokes every runner failure mode.
package mismatch

var unannotated = 7 // hit with no want comment

var wrongPattern = 8 // want `this pattern matches nothing`

var missing = "no diagnostic here" // want `expected but absent`
