// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against // want comments, mirroring the x/tools package
// of the same name. Fixture sources live under
//
//	<analyzer dir>/testdata/src/<importpath>/*.go
//
// and annotate expected findings with trailing comments:
//
//	if frac == 0.8 { // want `floating-point == comparison`
//
// Each backquoted (or double-quoted) literal after "want" is a regular
// expression that must match the message of a distinct diagnostic
// reported on that line. Diagnostics with no matching expectation, and
// expectations with no matching diagnostic, fail the test. Fixture files
// may use //lint:ignore directives; a suppressed diagnostic needs no want
// comment, which is how suppression itself is tested.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"github.com/gables-model/gables/internal/analysis"
)

// expectation is one want literal: a position and a message pattern.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile("// want ((?:(?:`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")\\s*)+)")
var literalRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// Reporter is the slice of *testing.T the runner needs; tests of the
// runner itself substitute a recorder.
type Reporter interface {
	Errorf(format string, args ...any)
}

// Run loads each fixture package from testdata/src, applies the analyzer,
// and reports mismatches between diagnostics and want comments as test
// errors.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	RunWithReporter(t, testdata, a, paths...)
}

// RunWithReporter is Run with an explicit failure sink.
func RunWithReporter(t Reporter, testdata string, a *analysis.Analyzer, paths ...string) {
	loader := analysis.NewLoader()
	loader.Resolve = func(importPath string) (string, bool) {
		dir := filepath.Join(testdata, "src", filepath.FromSlash(importPath))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir, true
		}
		return "", false
	}
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Errorf("loading fixture %q: %v", path, err)
			continue
		}
		diags, err := analysis.Run(pkg, []*analysis.Analyzer{a}, analysis.RunOptions{ReportUnused: true})
		if err != nil {
			t.Errorf("running %s on %q: %v", a.Name, path, err)
			continue
		}
		expects, err := collectWants(pkg)
		if err != nil {
			t.Errorf("fixture %q: %v", path, err)
			continue
		}
		for _, d := range diags {
			pos := d.Position(pkg.Fset)
			if !claim(expects, pos.Filename, pos.Line, d.Message) {
				t.Errorf("%s: unexpected diagnostic: %s: %s", pos, d.Analyzer, d.Message)
			}
		}
		for _, e := range expects {
			if !e.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.pattern)
			}
		}
	}
}

// claim marks the first unmatched expectation at (file, line) whose
// pattern matches message.
func claim(expects []*expectation, file string, line int, message string) bool {
	for _, e := range expects {
		if !e.matched && e.file == file && e.line == line && e.pattern.MatchString(message) {
			e.matched = true
			return true
		}
	}
	return false
}

// collectWants parses // want comments out of the fixture's files.
func collectWants(pkg *analysis.Package) ([]*expectation, error) {
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.Contains(c.Text, "// want ") {
						return nil, fmt.Errorf("%s: malformed want comment %q",
							pkg.Fset.Position(c.Pos()), c.Text)
					}
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, lit := range literalRE.FindAllString(m[1], -1) {
					var pat string
					if strings.HasPrefix(lit, "`") {
						pat = strings.Trim(lit, "`")
					} else {
						var err error
						pat, err = strconv.Unquote(lit)
						if err != nil {
							return nil, fmt.Errorf("%s: bad want literal %s: %v", pos, lit, err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return out, nil
}
