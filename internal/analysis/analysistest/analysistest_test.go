package analysistest_test

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
	"testing"

	"github.com/gables-model/gables/internal/analysis"
	"github.com/gables-model/gables/internal/analysis/analysistest"
)

// recorder captures runner failures instead of failing the test.
type recorder struct{ errs []string }

func (r *recorder) Errorf(format string, args ...any) {
	r.errs = append(r.errs, fmt.Sprintf(format, args...))
}

// intlit flags every integer literal — a trivially predictable analyzer
// for exercising the runner and the suppression machinery.
var intlit = &analysis.Analyzer{
	Name: "intlit",
	Doc:  "flags integer literals (test analyzer)",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if bl, ok := n.(*ast.BasicLit); ok && bl.Kind == token.INT {
					pass.Reportf(bl.Pos(), "integer literal %s", bl.Value)
				}
				return true
			})
		}
		return nil
	},
}

func errsContaining(errs []string, substr string) int {
	n := 0
	for _, e := range errs {
		if strings.Contains(e, substr) {
			n++
		}
	}
	return n
}

// The fixtures under testdata/src drive every runner behavior:
//
//	ok         — all diagnostics annotated; runner must report nothing
//	mismatch   — a missing want, a wrong pattern, and an unannotated hit
//	suppressed — //lint:ignore'd hits need no want; stale directive flagged
func TestRunnerAcceptsCorrectFixture(t *testing.T) {
	rec := &recorder{}
	analysistest.RunWithReporter(rec, "testdata", intlit, "ok")
	if len(rec.errs) != 0 {
		t.Fatalf("clean fixture produced failures: %v", rec.errs)
	}
}

func TestRunnerFlagsMismatches(t *testing.T) {
	rec := &recorder{}
	analysistest.RunWithReporter(rec, "testdata", intlit, "mismatch")
	if got := errsContaining(rec.errs, "unexpected diagnostic"); got != 2 {
		t.Errorf("want 2 unexpected-diagnostic failures (unannotated + wrong pattern), got %d: %v", got, rec.errs)
	}
	if got := errsContaining(rec.errs, "got none"); got != 2 {
		t.Errorf("want 2 unmatched-expectation failures, got %d: %v", got, rec.errs)
	}
}

func TestRunnerHonorsSuppression(t *testing.T) {
	rec := &recorder{}
	analysistest.RunWithReporter(rec, "testdata", intlit, "suppressed")
	if got := errsContaining(rec.errs, "unused //lint: directive"); got != 1 {
		t.Errorf("want exactly 1 stale-directive finding, got %d: %v", got, rec.errs)
	}
	if len(rec.errs) != 1 {
		t.Errorf("suppressed hits must not surface: %v", rec.errs)
	}
}
