// Package af exercises the allocfree analyzer: each allocation idiom in
// annotated code, call-graph descent into helpers, the clean hot path,
// unannotated code staying out of scope, and the suppressed case.
package af

import "fmt"

type ring struct {
	buf  []float64
	head int
}

// Push is a clean annotated hot path: index writes into retained storage,
// no allocation idiom in sight.
//
//gables:allocfree
func Push(r *ring, v float64) {
	r.buf[r.head] = v
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
}

// Emit trips every rule in its own body.
//
//gables:allocfree
func Emit(r *ring, label string, vs []float64) string {
	cb := func() float64 { return r.buf[r.head] } // want `function literal in //gables:allocfree code`
	_ = cb
	msg := fmt.Sprintf("ring %s", label) // want `fmt\.Sprintf in //gables:allocfree code`
	raw := []byte(label)                 // want `\[\]byte conversion in //gables:allocfree code`
	back := string(raw)                  // want `string conversion in //gables:allocfree code`
	r.buf = append(r.buf, vs...)         // want `append in //gables:allocfree code`
	return msg + back
}

// Observe delegates to a helper; the violation is reported inside the
// helper, attributed to this root.
//
//gables:allocfree
func Observe(r *ring, v float64) {
	note(r, v)
}

func note(r *ring, v float64) {
	r.buf = append(r.buf, v) // want `append in //gables:allocfree code \(on the allocation-free path of Observe\)`
}

// Cold is unannotated: the same idioms are fine off the hot path.
func Cold(label string, vs []float64) string {
	out := append([]float64{}, vs...)
	_ = out
	return fmt.Sprintf("cold %s", label)
}

// Steady documents a justified steady-state append.
//
//gables:allocfree
func Steady(r *ring, v float64) {
	//lint:ignore allocfree fixture: capacity is pre-grown at construction and retained across calls
	r.buf = append(r.buf, v)
}
