// Package allocfree statically enforces the repository's zero-allocation
// hot-path contracts. PR 3 rewrote the discrete-event core allocation-lean
// and PR 5 pinned the probe emission layer at zero allocations — but the
// guarantees live in sampled benchmarks (allocs/op) and a handful of
// AllocsPerRun tests, which only catch a regression on the inputs they
// happen to run. This analyzer turns the contract into a static property:
// a function whose doc comment carries
//
//	//gables:allocfree
//
// promises that it, and every same-package function reachable from it,
// performs no per-call heap allocation at steady state. Inside that call
// graph the analyzer flags the four allocation idioms that have actually
// regressed these paths:
//
//   - function literals (closures capture and escape — the pre-PR 3 mem
//     transfer path allocated one closure per hop);
//   - fmt calls (variadic ...any boxes every argument);
//   - string <-> []byte conversions (each copies);
//   - append (growing the backing array allocates; steady-state appends
//     into retained, pre-grown buffers are legitimate and carry a
//     reasoned //lint:ignore allocfree explaining why capacity is stable).
//
// The analyzer is deliberately conservative: it cannot prove escape or
// capacity, so a flagged site is "justify or restructure", not "this
// allocates". The escape hatch is the ordinary reasoned directive.
package allocfree

import (
	"go/ast"
	"go/types"

	"github.com/gables-model/gables/internal/analysis"
)

// Directive marks a function whose call graph must stay allocation-free.
const Directive = "//gables:allocfree"

// Analyzer is the allocfree rule.
var Analyzer = &analysis.Analyzer{
	Name: "allocfree",
	Doc: "flags closures, fmt boxing, string<->[]byte conversions, and growing appends " +
		"inside //gables:allocfree call graphs — the static form of the zero-alloc benchmarks",
	Run: run,
}

func run(pass *analysis.Pass) error {
	decls := map[*types.Func]*ast.FuncDecl{}
	var roots []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
			if hasDirective(fd.Doc) {
				roots = append(roots, fd)
			}
		}
	}

	visited := map[*ast.FuncDecl]bool{}
	for _, root := range roots {
		checkGraph(pass, root, root, decls, visited)
	}
	return nil
}

// checkGraph checks fd's body and recurses into same-package callees.
// Each function is checked once even when reachable from several roots.
func checkGraph(pass *analysis.Pass, root, fd *ast.FuncDecl, decls map[*types.Func]*ast.FuncDecl, visited map[*ast.FuncDecl]bool) {
	if visited[fd] || fd.Body == nil {
		return
	}
	visited[fd] = true
	where := ""
	if fd != root {
		where = " (on the allocation-free path of " + root.Name.Name + ")"
	}
	// Not InspectShallow: that helper hides FuncLit nodes entirely,
	// whereas here the literal itself is the finding (and its body is not
	// descended into — the closure allocation is the diagnostic, whatever
	// it goes on to do).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(x.Pos(),
				"function literal in //gables:allocfree code%s: closures capture and escape — restructure with retained state or explicit arguments", where)
			return false
		case *ast.CallExpr:
			checkCall(pass, x, where, root, decls, visited)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, where string, root *ast.FuncDecl, decls map[*types.Func]*ast.FuncDecl, visited map[*ast.FuncDecl]bool) {
	// Conversions: string(b) / []byte(s) copy.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := pass.TypeOf(call.Fun), pass.TypeOf(call.Args[0])
		if isStringBytesPair(to, from) {
			pass.Reportf(call.Pos(),
				"%s conversion in //gables:allocfree code%s copies its operand: keep the hot path on one representation",
				types.ExprString(call.Fun), where)
		}
		return
	}
	name, pkg, ok := analysis.CalleeName(pass.TypesInfo, call)
	if !ok {
		return
	}
	if pkg == "fmt" {
		pass.Reportf(call.Pos(),
			"fmt.%s in //gables:allocfree code%s boxes its arguments into interfaces: build the message off the hot path or use a retained buffer", name, where)
		return
	}
	if name == "append" && pkg == "" {
		pass.Reportf(call.Pos(),
			"append in //gables:allocfree code%s allocates when it grows the backing array: pre-size or pool the buffer, "+
				"or justify stable capacity with //lint:ignore allocfree <why>", where)
		return
	}
	// Descend into same-package callees: the annotation covers the whole
	// reachable graph, not just the annotated body.
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	}
	if id == nil {
		return
	}
	if fn, ok := pass.TypesInfo.Uses[id].(*types.Func); ok && fn.Pkg() == pass.Pkg {
		if next, ok := decls[fn]; ok {
			checkGraph(pass, root, next, decls, visited)
		}
	}
}

// isStringBytesPair reports whether (to, from) is a string<->[]byte
// conversion in either direction.
func isStringBytesPair(to, from types.Type) bool {
	return (isString(to) && isByteSlice(from)) || (isByteSlice(to) && isString(from))
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func hasDirective(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, cm := range cg.List {
		if cm.Text == Directive {
			return true
		}
	}
	return false
}
