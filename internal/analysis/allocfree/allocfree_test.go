package allocfree_test

import (
	"testing"

	"github.com/gables-model/gables/internal/analysis/allocfree"
	"github.com/gables-model/gables/internal/analysis/analysistest"
)

func TestAllocfree(t *testing.T) {
	analysistest.Run(t, "testdata", allocfree.Analyzer, "af")
}
