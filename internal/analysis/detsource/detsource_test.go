package detsource_test

import (
	"testing"

	"github.com/gables-model/gables/internal/analysis/analysistest"
	"github.com/gables-model/gables/internal/analysis/detsource"
)

func TestDetsourceFindings(t *testing.T) {
	analysistest.Run(t, "testdata", detsource.Analyzer, "detpos")
}

func TestDetsourceAllowedPatterns(t *testing.T) {
	analysistest.Run(t, "testdata", detsource.Analyzer, "detneg")
}

func TestDetsourceOnlyCoversDeterministicPackages(t *testing.T) {
	analysistest.Run(t, "testdata", detsource.Analyzer, "detoff")
}

func TestDeterministicPath(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"github.com/gables-model/gables/internal/sim", true},
		{"github.com/gables-model/gables/internal/sim/engine", true},
		{"github.com/gables-model/gables/internal/sim/trace", true},
		{"github.com/gables-model/gables/internal/eval", true},
		{"github.com/gables-model/gables/internal/simcache", true},
		{"github.com/gables-model/gables/internal/erb", true},
		{"github.com/gables-model/gables/internal/usecase", true},
		{"github.com/gables-model/gables/internal/kernel", true},
		{"internal/sim", true},
		{"github.com/gables-model/gables/internal/web", false},
		{"github.com/gables-model/gables/internal/plot", false},
		{"github.com/gables-model/gables/cmd/gables-web", false},
		// External test packages are separate compilation units and are
		// exempt (tests may time things).
		{"github.com/gables-model/gables/internal/eval_test", false},
		{"example.com/other/internal/simulator", false},
	}
	for _, c := range cases {
		if got := detsource.DeterministicPath(c.path); got != c.want {
			t.Errorf("DeterministicPath(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}
