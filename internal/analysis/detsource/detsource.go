// Package detsource forbids nondeterminism sources inside the packages
// whose outputs are content-addressed or diffed byte-for-byte in CI: the
// simulation substrate (internal/sim and subpackages), the evaluation
// layer (internal/eval), the result cache (internal/simcache), the grid
// harnesses (internal/erb), the usecase analyzer (internal/usecase), and
// the kernel definitions (internal/kernel). A wall-clock read or a global
// rand draw in any of them silently breaks the determinism contracts the
// repository's caches and differential oracles depend on: fingerprints
// stop identifying results, the GABLES_PARALLEL=1-vs-8 diff flakes, and
// cold-vs-warm cache byte-identity fails only when the nondeterminism
// happens to land in an artifact.
//
// Three rules, in non-test files of a deterministic package:
//
//  1. wall clock: calls to time.Now, time.Since, or time.Until;
//  2. global rand: package-level math/rand (and math/rand/v2) draws —
//     the process-global source is seeded nondeterministically. Explicit
//     sources (rand.New(rand.NewSource(seed))) are fine: they are
//     deterministic in the seed, which the caller owns;
//  3. map-order into keys: ranging over a map while feeding a hash.Hash,
//     a fingerprint function, or a cache-key builder inside the loop
//     body. Go randomizes map iteration order, so the digest differs run
//     to run; collect and sort the keys first.
//
// A package outside the built-in list opts in by carrying a
// //gables:deterministic comment in any non-test file. The measurement
// substrate (internal/kernel/native.go measures real wall-clock kernel
// executions by design) and other deliberate exceptions are excused
// file-wide with the ordinary reasoned form:
//
//	//lint:file-ignore detsource <why this file may read the clock>
package detsource

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"github.com/gables-model/gables/internal/analysis"
)

// Analyzer is the detsource rule.
var Analyzer = &analysis.Analyzer{
	Name: "detsource",
	Doc: "forbids nondeterminism sources (wall clock, global math/rand, map-order-fed hashes) " +
		"in the deterministic packages whose results are content-addressed or byte-diffed",
	Run: run,
}

// roots are the module-relative package paths (subpackages included) the
// determinism contracts cover. Kept in sync with DESIGN.md §10.
var roots = []string{
	"internal/sim",
	"internal/eval",
	"internal/simcache",
	"internal/erb",
	"internal/usecase",
	"internal/kernel",
}

// DeterministicPath reports whether the import path falls under the
// built-in deterministic package set.
func DeterministicPath(path string) bool {
	for _, r := range roots {
		if path == r || strings.HasSuffix(path, "/"+r) {
			return true
		}
		if strings.HasPrefix(path, r+"/") || strings.Contains(path, "/"+r+"/") {
			return true
		}
	}
	return false
}

// forbiddenTime are the wall-clock reads: everything else in package time
// (durations, formatting) is deterministic data manipulation.
var forbiddenTime = map[string]bool{"Now": true, "Since": true, "Until": true}

// randConstructors build explicit sources and are allowed; every other
// package-level math/rand function draws from the global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// keySinkName matches callees that derive fingerprints or cache keys.
var keySinkName = regexp.MustCompile(`(?i)fingerprint|^Key$`)

func run(pass *analysis.Pass) error {
	if !DeterministicPath(pass.Pkg.Path()) && !optedIn(pass) {
		return nil
	}
	hashIface := lookupHashInterface(pass.Pkg)
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, x)
			case *ast.RangeStmt:
				checkRange(pass, x, hashIface)
			}
			return true
		})
	}
	return nil
}

// optedIn reports whether any non-test file carries //gables:deterministic.
func optedIn(pass *analysis.Pass) bool {
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if c.Text == "//gables:deterministic" {
					return true
				}
			}
		}
	}
	return false
}

// checkCall flags wall-clock reads and global-source rand draws.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	name, pkg, ok := analysis.CalleeName(pass.TypesInfo, call)
	if !ok {
		return
	}
	switch pkg {
	case "time":
		if forbiddenTime[name] && isPackageFunc(pass, call) {
			pass.Reportf(call.Pos(),
				"time.%s in a deterministic package: wall-clock reads make results irreproducible and poison content-addressed caches; "+
					"thread simulated time (engine.Now) or move the measurement behind //lint:file-ignore detsource with a reason", name)
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[name] && isPackageFunc(pass, call) {
			pass.Reportf(call.Pos(),
				"global math/rand.%s in a deterministic package: the process-global source is seeded nondeterministically; "+
					"draw from an explicit rand.New(rand.NewSource(seed)) owned by the caller", name)
		}
	}
}

// isPackageFunc reports whether the call's callee is a package-level
// function (methods on explicit sources like *rand.Rand are allowed).
func isPackageFunc(pass *analysis.Pass, call *ast.CallExpr) bool {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// checkRange flags map iteration whose body feeds a hash, fingerprint, or
// cache-key sink: the digest then depends on randomized iteration order.
func checkRange(pass *analysis.Pass, rs *ast.RangeStmt, hashIface *types.Interface) {
	t := pass.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	sink := ""
	analysis.InspectShallow(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return sink == ""
		}
		if name, _, named := analysis.CalleeName(pass.TypesInfo, call); named {
			if keySinkName.MatchString(name) {
				sink = name
				return false
			}
			if hashIface != nil {
				if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel {
					if rt := pass.TypeOf(sel.X); rt != nil && types.Implements(rt, hashIface) {
						sink = "hash." + name
						return false
					}
				}
			}
		}
		return sink == ""
	})
	if sink != "" {
		pass.Reportf(rs.For,
			"ranging over map %s feeds %s: map iteration order is randomized, so the derived key/digest differs run to run — "+
				"collect and sort the keys, then iterate the slice",
			types.ExprString(rs.X), sink)
	}
}

// lookupHashInterface finds hash.Hash through the package's transitive
// imports, so the analyzer needs no compiled-in copy of the stdlib type.
func lookupHashInterface(pkg *types.Package) *types.Interface {
	seen := map[*types.Package]bool{}
	var find func(p *types.Package) *types.Interface
	find = func(p *types.Package) *types.Interface {
		if seen[p] {
			return nil
		}
		seen[p] = true
		if p.Path() == "hash" {
			if obj, ok := p.Scope().Lookup("Hash").(*types.TypeName); ok {
				if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
					return iface
				}
			}
			return nil
		}
		for _, imp := range p.Imports() {
			if iface := find(imp); iface != nil {
				return iface
			}
		}
		return nil
	}
	return find(pkg)
}
