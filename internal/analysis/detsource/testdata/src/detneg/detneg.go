// Package detneg holds the allowed patterns: explicit seeded sources,
// the sorted-keys hashing idiom, deterministic time arithmetic, and map
// iteration that never feeds a digest.
//
//gables:deterministic
package detneg

import (
	"hash/fnv"
	"math/rand"
	"sort"
	"time"
)

// Seeded draws from an explicit source: deterministic in the seed.
func Seeded(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}

// Budget does duration arithmetic with no clock read.
func Budget(per time.Duration, n int) time.Duration {
	return per * time.Duration(n)
}

// DigestSorted hashes map entries through the sorted-keys idiom.
func DigestSorted(weights map[string]float64) uint64 {
	names := make([]string, 0, len(weights))
	for name := range weights {
		names = append(names, name)
	}
	sort.Strings(names)
	h := fnv.New64a()
	for _, name := range names {
		h.Write([]byte(name))
	}
	return h.Sum64()
}

// Total ranges over a map without feeding any digest; summation is
// order-insensitive.
func Total(weights map[string]float64) float64 {
	sum := 0.0
	for _, w := range weights {
		sum += w
	}
	return sum
}
