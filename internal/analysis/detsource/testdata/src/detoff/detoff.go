// Package detoff is neither in the built-in deterministic set nor opted
// in: wall-clock reads are its own business.
package detoff

import "time"

// Uptime may read the clock freely.
func Uptime(start time.Time) time.Duration {
	return time.Since(start)
}
