// Package detpos exercises every detsource rule: wall-clock reads, global
// rand draws, and map iteration feeding hashes and key builders, plus the
// suppressed case.
//
//gables:deterministic
package detpos

import (
	"hash/fnv"
	"math/rand"
	"time"
)

// Stamp reads the wall clock twice.
func Stamp() (time.Time, time.Duration) {
	start := time.Now()    // want `time\.Now in a deterministic package`
	d := time.Since(start) // want `time\.Since in a deterministic package`
	return start, d
}

// Jitter draws from the global source.
func Jitter() float64 {
	return rand.Float64() // want `global math/rand\.Float64 in a deterministic package`
}

// Pick draws an index from the global source.
func Pick(n int) int {
	return rand.Intn(n) // want `global math/rand\.Intn in a deterministic package`
}

// DigestWeights hashes map entries in iteration order.
func DigestWeights(weights map[string]float64) uint64 {
	h := fnv.New64a()
	for name := range weights { // want `ranging over map weights feeds hash\.Write`
		h.Write([]byte(name))
	}
	return h.Sum64()
}

// Key mimics a cache-key builder.
func Key(parts ...string) string {
	out := ""
	for _, p := range parts {
		out += "/" + p
	}
	return out
}

// KeyFromSet builds a cache key from map entries in iteration order.
func KeyFromSet(set map[string]bool) string {
	out := ""
	for name := range set { // want `ranging over map set feeds Key`
		out += Key(name)
	}
	return out
}

// Excused shows the reasoned escape hatch.
func Excused() time.Time {
	//lint:ignore detsource fixture: deliberate wall-clock read excused with a reason
	return time.Now()
}
