// Package analysis is a small, dependency-free analogue of
// golang.org/x/tools/go/analysis: a framework for writing static analyzers
// over type-checked Go syntax trees.
//
// The repository's dominant bug class is numeric-invariant violations —
// float equality where a tolerance was intended, log-scale math fed
// non-positive inputs, map iteration order leaking into repro output,
// work fractions that do not sum to 1 (see ISSUE 2 and the PR 1 bugfix
// sweep). The analyzers under internal/analysis/... encode those
// obligations as machine-checked rules; cmd/gables-lint runs them over the
// whole module and CI treats any finding as a failure.
//
// The x/tools module is deliberately not imported: the build must work
// from a bare module cache, so the framework re-implements the small slice
// of the go/analysis API the suite needs (Analyzer, Pass, Diagnostic, a
// package loader, and an analysistest-style fixture runner) on top of
// go/ast and go/types alone. Analyzers written against this package use
// the same shape as x/tools analyzers and can be ported with a one-line
// import change if the dependency ever becomes available.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static analysis rule and how to run it.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:ignore
	// directives. It must be a valid identifier.
	Name string
	// Doc is the help text: first line is a one-sentence summary.
	Doc string
	// Run applies the analyzer to one package and reports findings via
	// pass.Report. The error return is for operational failures (not
	// findings); a non-nil error aborts the whole lint run.
	Run func(*Pass) error
}

func (a *Analyzer) String() string { return a.Name }

// Pass is the interface between the driver and one analyzer applied to one
// package: the type-checked syntax trees plus a sink for diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one finding. The driver applies //lint:ignore
	// suppression after this call, so analyzers never need to know about
	// directives.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of expression e, or nil if not found.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.TypesInfo.TypeOf(e)
}

// ObjectOf returns the object denoted by the identifier, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	return p.TypesInfo.ObjectOf(id)
}

// Severity classifies how a finding gates the build. The zero value is
// SeverityError, so analyzers that never think about severity stay
// blocking — downgrading a rule is the deliberate act, not upgrading it.
type Severity int

const (
	// SeverityError findings block CI.
	SeverityError Severity = iota
	// SeverityWarning findings are surfaced (text, JSON, SARIF) and still
	// fail the lint run, but render as warnings in code-scanning UIs.
	SeverityWarning
)

func (s Severity) String() string {
	if s == SeverityWarning {
		return "warning"
	}
	return "error"
}

// TextEdit is one replacement: the half-open source range [Pos, End) is
// replaced by NewText. A deletion has empty NewText; an insertion has
// Pos == End.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}

// SuggestedFix is a self-contained mechanical resolution for a diagnostic,
// applied by `gables-lint -fix` (ApplyFixes). Fixes must be safe to apply
// blindly: they may only encode resolutions that are correct whenever the
// diagnostic itself is.
type SuggestedFix struct {
	// Message says what applying the fix does ("delete stale directive").
	Message string
	// TextEdits are the replacements, in any order; they must not overlap.
	TextEdits []TextEdit
}

// Diagnostic is one finding: a position and a human-readable message.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	// Analyzer is filled in by the driver.
	Analyzer string
	// Severity defaults to SeverityError.
	Severity Severity
	// Fixes holds mechanical resolutions, if the analyzer has one.
	Fixes []SuggestedFix
}

// Position resolves the diagnostic's file position against a fileset.
func (d Diagnostic) Position(fset *token.FileSet) token.Position {
	return fset.Position(d.Pos)
}

// SortDiagnostics orders diagnostics by file, line, column, then analyzer
// name, so lint output is deterministic regardless of analyzer scheduling.
func SortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}
