// Package core is a minimal stand-in for internal/core: just enough
// surface for fractioncheck fixtures to type-check. The analyzer matches
// any package named core, so fixtures need not import the real module.
package core

// FractionTolerance mirrors internal/core.FractionTolerance.
const FractionTolerance = 1e-9

// Intensity mirrors units.Intensity.
type Intensity float64

// Work mirrors core.Work: field order matters for positional literals.
type Work struct {
	Fraction  float64
	Intensity Intensity
}

// Usecase mirrors core.Usecase.
type Usecase struct {
	Name     string
	Work     []Work
	TotalOps float64
}

// TwoIPUsecase mirrors core.TwoIPUsecase.
func TwoIPUsecase(name string, f float64, i0, i1 Intensity) (*Usecase, error) {
	return &Usecase{
		Name: name,
		Work: []Work{
			{Fraction: 1 - f, Intensity: i0},
			{Fraction: f, Intensity: i1},
		},
	}, nil
}
