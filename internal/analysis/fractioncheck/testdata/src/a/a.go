// Package a exercises fractioncheck on usecase literals and two-IP
// constructor calls.
package a

import "core"

// badSum leaves a quarter of the work unassigned.
func badSum() *core.Usecase {
	return &core.Usecase{ // want `work fractions are constants summing to 0\.75`
		Name: "bad",
		Work: []core.Work{
			{Fraction: 0.5, Intensity: 8},
			{Fraction: 0.25, Intensity: 2},
		},
	}
}

// badSumPositional checks the positional-literal path.
func badSumPositional() core.Usecase {
	return core.Usecase{"bad", []core.Work{{0.5, 8}, {0.25, 2}}, 0} // want `work fractions are constants summing to 0\.75`
}

// oversubscribed assigns 110% of the work.
func oversubscribed() core.Usecase {
	return core.Usecase{ // want `work fractions are constants summing to 1\.1`
		Name: "over",
		Work: []core.Work{
			{Fraction: 0.6, Intensity: 8},
			{Fraction: 0.5, Intensity: 2},
		},
	}
}

// goodSum is exactly 1: clean.
func goodSum() core.Usecase {
	return core.Usecase{
		Name: "good",
		Work: []core.Work{
			{Fraction: 0.75, Intensity: 8},
			{Fraction: 0.25, Intensity: 2},
		},
	}
}

// omittedFraction: a keyed element without Fraction contributes 0.
func omittedFraction() core.Usecase {
	return core.Usecase{
		Name: "idle IP",
		Work: []core.Work{
			{Fraction: 1, Intensity: 8},
			{Intensity: 2},
		},
	}
}

// nonConstant fractions are the runtime validator's job: clean here.
func nonConstant(f float64) core.Usecase {
	return core.Usecase{
		Name: "dynamic",
		Work: []core.Work{
			{Fraction: 1 - f, Intensity: 8},
			{Fraction: f, Intensity: 2},
		},
	}
}

// dynamicWork slices (make, variables) are skipped.
func dynamicWork(n int) core.Usecase {
	return core.Usecase{Name: "make", Work: make([]core.Work, n)}
}

// twoIPOutOfRange passes a fraction above 1.
func twoIPOutOfRange() {
	core.TwoIPUsecase("bad", 1.5, 8, 2) // want `two-IP work fraction f=1\.5 outside \[0, 1\]`
}

// twoIPNegative passes a negative fraction.
func twoIPNegative() {
	core.TwoIPUsecase("bad", -0.1, 8, 2) // want `two-IP work fraction f=-0\.1 outside \[0, 1\]`
}

// twoIPGood and computed fractions are clean.
func twoIPGood(f float64) {
	core.TwoIPUsecase("good", 0.75, 8, 2)
	core.TwoIPUsecase("dynamic", f, 8, 2)
}

// suppressed: tests that exercise ValidateFor's rejection path construct
// deliberately bad configs.
func suppressed() core.Usecase {
	//lint:ignore fractioncheck deliberately invalid: exercises ValidateFor rejection
	return core.Usecase{
		Name: "invalid on purpose",
		Work: []core.Work{{Fraction: 0.5, Intensity: 8}},
	}
}
