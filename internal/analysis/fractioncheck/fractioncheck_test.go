package fractioncheck_test

import (
	"testing"

	"github.com/gables-model/gables/internal/analysis/analysistest"
	"github.com/gables-model/gables/internal/analysis/fractioncheck"
)

func TestFractioncheck(t *testing.T) {
	analysistest.Run(t, "testdata", fractioncheck.Analyzer, "a")
}
