// Package fractioncheck verifies, at compile time, the Gables model's
// central usecase invariant: work fractions must sum to 1 (§III-B's
// Σfi = 1). It evaluates core.Usecase composite literals whose Work
// fractions are all compile-time constants and flags sums that deviate by
// more than core.FractionTolerance, plus core.TwoIPUsecase calls whose
// constant f lies outside [0, 1]. Such configs are rejected at run time by
// ValidateFor anyway, but in experiment code that path may only be hit on
// a sweep's last cell; the analyzer moves the failure to lint time.
package fractioncheck

import (
	"go/ast"
	"go/types"
	"math"
	"strings"

	"github.com/gables-model/gables/internal/analysis"
	"github.com/gables-model/gables/internal/core"
)

// Analyzer is the fractioncheck rule.
var Analyzer = &analysis.Analyzer{
	Name: "fractioncheck",
	Doc: "flags core usecase literals whose constant work fractions do not sum to 1 " +
		"within core.FractionTolerance, and two-IP fractions outside [0,1]",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CompositeLit:
				checkUsecaseLit(pass, x)
			case *ast.CallExpr:
				checkTwoIPCall(pass, x)
			}
			return true
		})
	}
	return nil
}

// isCoreType reports whether t is the named type pkg.name for a package
// called "core" (the real internal/core or a fixture stand-in).
func isCoreType(t types.Type, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "core" || strings.HasSuffix(path, "/core")
}

// fieldValue extracts the expression initializing the named struct field
// from a composite literal, handling both keyed and positional forms. A
// nil return with ok=true means the field is omitted (zero value).
func fieldValue(pass *analysis.Pass, cl *ast.CompositeLit, field string) (ast.Expr, bool) {
	if len(cl.Elts) == 0 {
		return nil, true
	}
	if _, keyed := cl.Elts[0].(*ast.KeyValueExpr); keyed {
		for _, el := range cl.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				return nil, false
			}
			if id, ok := kv.Key.(*ast.Ident); ok && id.Name == field {
				return kv.Value, true
			}
		}
		return nil, true
	}
	st, ok := pass.TypeOf(cl).Underlying().(*types.Struct)
	if !ok {
		return nil, false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == field {
			if i < len(cl.Elts) {
				return cl.Elts[i], true
			}
			return nil, true
		}
	}
	return nil, false
}

func checkUsecaseLit(pass *analysis.Pass, cl *ast.CompositeLit) {
	if !isCoreType(pass.TypeOf(cl), "Usecase") {
		return
	}
	workExpr, ok := fieldValue(pass, cl, "Work")
	if !ok || workExpr == nil {
		return
	}
	slice, ok := workExpr.(*ast.CompositeLit)
	if !ok {
		return // built dynamically (make, variable); runtime validation owns it
	}
	sum := 0.0
	for _, el := range slice.Elts {
		wl, ok := el.(*ast.CompositeLit)
		if !ok {
			return
		}
		frExpr, ok := fieldValue(pass, wl, "Fraction")
		if !ok {
			return
		}
		if frExpr == nil {
			continue // omitted field: fraction 0
		}
		fr, ok := analysis.ConstFloat(pass.TypesInfo, frExpr)
		if !ok {
			return // non-constant fraction; runtime validation owns it
		}
		sum += fr
	}
	if math.Abs(sum-1) > core.FractionTolerance {
		pass.Reportf(cl.Pos(),
			"usecase work fractions are constants summing to %v, want 1 (±%v); ValidateFor will reject this at run time",
			sum, core.FractionTolerance)
	}
}

func checkTwoIPCall(pass *analysis.Pass, call *ast.CallExpr) {
	name, _, ok := analysis.CalleeName(pass.TypesInfo, call)
	if !ok || name != "TwoIPUsecase" || len(call.Args) < 2 {
		return
	}
	f, ok := analysis.ConstFloat(pass.TypesInfo, call.Args[1])
	if !ok {
		return
	}
	if f < -core.FractionTolerance || f > 1+core.FractionTolerance {
		pass.Reportf(call.Args[1].Pos(),
			"two-IP work fraction f=%v outside [0, 1]; the constructor will reject it at run time", f)
	}
}
