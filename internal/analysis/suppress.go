package analysis

import (
	"go/token"
	"strings"
)

// The suite's suppression convention, modeled on staticcheck's:
//
//	//lint:ignore analyzer1,analyzer2 reason
//
// placed on the offending line or on the line directly above it silences
// those analyzers for that line. The analyzer list may be * to silence all.
// A whole file is exempted with
//
//	//lint:file-ignore analyzer reason
//
// anywhere in the file. The reason is mandatory: a suppression with no
// justification is itself reported as a finding, and so is a suppression
// that no longer matches any diagnostic (staleness check).
type suppression struct {
	file      string
	line      int // line the directive occupies; 0 for file-ignore
	wholeFile bool
	analyzers map[string]bool // nil means * (all analyzers)
	reason    string
	pos       token.Pos
	end       token.Pos // end of the directive comment, for deletion fixes
	used      bool
}

func (s *suppression) matches(name string) bool {
	return s.analyzers == nil || s.analyzers[name]
}

// covers reports whether the suppression silences a diagnostic at p.
func (s *suppression) covers(p token.Position) bool {
	if p.Filename != s.file {
		return false
	}
	return s.wholeFile || p.Line == s.line || p.Line == s.line+1
}

// collectSuppressions scans a package's comments for //lint: directives.
// Malformed directives are returned as diagnostics (analyzer "lint").
func collectSuppressions(pkg *Package) ([]*suppression, []Diagnostic) {
	var sups []*suppression
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				verb, rest, _ := strings.Cut(text, " ")
				switch verb {
				case "ignore", "file-ignore":
				default:
					bad = append(bad, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "lint",
						Message:  "malformed //lint: directive: unknown verb " + verb + " (want ignore or file-ignore)",
					})
					continue
				}
				names, reason, _ := strings.Cut(strings.TrimSpace(rest), " ")
				reason = strings.TrimSpace(reason)
				if names == "" || reason == "" {
					bad = append(bad, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "lint",
						Message:  "malformed //lint:" + verb + " directive: want \"//lint:" + verb + " analyzer[,analyzer] reason\"",
					})
					continue
				}
				s := &suppression{
					file:      pos.Filename,
					line:      pos.Line,
					wholeFile: verb == "file-ignore",
					reason:    reason,
					pos:       c.Pos(),
					end:       c.End(),
				}
				if names != "*" {
					s.analyzers = map[string]bool{}
					for _, n := range strings.Split(names, ",") {
						s.analyzers[strings.TrimSpace(n)] = true
					}
				}
				sups = append(sups, s)
			}
		}
	}
	return sups, bad
}
