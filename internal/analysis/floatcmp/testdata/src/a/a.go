// Package a exercises floatcmp: the pre-fix PR 1 patterns that must be
// flagged, the approved idioms that must stay clean, and suppression.
package a

// peerFlowsPrefix reproduces the pre-fix selection bug from
// internal/experiments/extensions.go: frac == 0.8 on a computed sweep
// value.
func peerFlowsPrefix() float64 {
	var at80 float64
	for _, frac := range []float64{0.25, 0.5, 0.8, 1.0} {
		if frac == 0.8 { // want `floating-point == comparison`
			at80 = 2 * frac
		}
	}
	return at80
}

// validateSumPrefix reproduces the pre-fix three-IP page bug: f1+f2
// compared exactly against 1, rejecting 0.9+0.1.
func validateSumPrefix(f1, f2 float64) bool {
	return f1+f2 != 1 // want `floating-point != comparison`
}

// unset uses the exact-zero sentinel, which is bit-exact and allowed.
func unset(f float64) bool { return f == 0 }

// isNaN is the idiomatic self-comparison NaN test, allowed.
func isNaN(f float64) bool { return f != f }

// consts compare exactly by construction, allowed.
func consts() bool {
	const a, b = 0.5, 0.25
	return a == 2*b
}

// approxEqual is a tolerance helper; the boundary comparison is its job.
func approxEqual(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	if d <= eps {
		return true
	}
	return a == b
}

// suppressed mirrors core.SoC.Validate's intentional exact identity test.
func suppressed(accel float64) bool {
	//lint:ignore floatcmp A0 is set literally in specs; exact identity is intended
	return accel != 1
}
