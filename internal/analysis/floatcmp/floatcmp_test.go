package floatcmp_test

import (
	"testing"

	"github.com/gables-model/gables/internal/analysis/analysistest"
	"github.com/gables-model/gables/internal/analysis/floatcmp"
)

func TestFloatcmp(t *testing.T) {
	analysistest.Run(t, "testdata", floatcmp.Analyzer, "a")
}
