// Package floatcmp flags == and != comparisons between floating-point
// expressions. PR 1's regression sweep traced three field bugs to exact
// float equality where a tolerance was intended (f1+f2 == 1 rejecting
// 0.9+0.1, frac == 0.8 silently never matching a computed sweep value), so
// the rule is: float equality is only legitimate inside a tolerance
// helper, against the exact-zero sentinel, or with an explicit
// //lint:ignore floatcmp justification.
//
// The analyzer skips _test.go files. Test assertions against exact golden
// values are the repository's established idiom — the determinism
// contract (byte-identical repro output at any parallelism) is *about*
// exact float reproducibility — and unlike production code, an exact test
// comparison that stops holding fails loudly instead of corrupting
// results silently.
package floatcmp

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"github.com/gables-model/gables/internal/analysis"
)

// Analyzer is the floatcmp rule.
var Analyzer = &analysis.Analyzer{
	Name: "floatcmp",
	Doc: "flags ==/!= on floating-point expressions outside tolerance helpers (non-test files); " +
		"exact float equality silently fails on computed values (use math.Abs(a-b) <= eps)",
	Run: run,
}

// toleranceHelper matches function names that exist to implement an
// approximate comparison; exact comparison against the tolerance boundary
// is their job.
var toleranceHelper = regexp.MustCompile(`(?i)approx|almost|near|close|within|toler|ulp`)

func run(pass *analysis.Pass) error {
	var files []*ast.File
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		files = append(files, f)
	}
	analysis.WalkFuncs(files, func(name string, body *ast.BlockStmt) {
		if toleranceHelper.MatchString(name) {
			return
		}
		analysis.InspectShallow(body, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !analysis.IsFloat(pass.TypeOf(be.X)) && !analysis.IsFloat(pass.TypeOf(be.Y)) {
				return true
			}
			// Two constants compare exactly by construction.
			if analysis.IsConst(pass.TypesInfo, be.X) && analysis.IsConst(pass.TypesInfo, be.Y) {
				return true
			}
			// Comparison against the exact zero value is the conventional
			// "field is unset" sentinel and is bit-exact.
			if isZero(pass.TypesInfo, be.X) || isZero(pass.TypesInfo, be.Y) {
				return true
			}
			// x != x is the idiomatic NaN test.
			if types.ExprString(be.X) == types.ExprString(be.Y) {
				return true
			}
			pass.Reportf(be.OpPos,
				"floating-point %s comparison on %s; computed values rarely compare exactly — use a tolerance (math.Abs(a-b) <= eps) or a tolerance helper",
				be.Op, types.ExprString(be.X))
			return true
		})
	})
	return nil
}

func isZero(info *types.Info, e ast.Expr) bool {
	f, ok := analysis.ConstFloat(info, e)
	return ok && f == 0
}
