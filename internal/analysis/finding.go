package analysis

import (
	"encoding/json"
	"fmt"
	"io"
)

// Finding is one diagnostic resolved against the fileset and (usually) the
// repository root: the machine-readable record behind every gables-lint
// output format. Field order is the JSON contract — `gables-lint -json`
// emits these structs verbatim and external tooling keys on the order
// being stable, so fields must not be reordered.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Severity string `json:"severity"`
	Message  string `json:"message"`
	// Fixed reports that a -fix run applied this finding's suggested fix.
	Fixed bool `json:"fixed,omitempty"`
}

// String renders the canonical single-line text form.
func (f Finding) String() string {
	sev := ""
	if f.Severity != SeverityError.String() {
		sev = f.Severity + ": "
	}
	fixed := ""
	if f.Fixed {
		fixed = " [fixed]"
	}
	return fmt.Sprintf("%s:%d:%d: %s: %s%s%s", f.File, f.Line, f.Column, f.Analyzer, sev, f.Message, fixed)
}

// WriteJSON emits findings as an indented JSON array (never null: zero
// findings is []), terminated by a newline.
func WriteJSON(w io.Writer, findings []Finding) error {
	if findings == nil {
		findings = []Finding{}
	}
	b, err := json.MarshalIndent(findings, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
