package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
)

// ListedPackage is the slice of `go list -json` output the lint driver
// consumes. With -test, the go tool also reports test variants: an entry
// with ForTest set is the package rebuilt for its test binary (its export
// data additionally contains symbols declared in in-package _test.go
// files), and an entry whose Name ends in _test is an external test
// package.
type ListedPackage struct {
	ImportPath   string
	Dir          string
	Export       string
	ForTest      string
	Name         string
	Standard     bool
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Module       *struct{ Path, Dir string }
}

// IsTestBinary reports whether this entry is a synthesized test main
// package ("foo.test"), which has no source of its own worth analyzing.
func (p *ListedPackage) IsTestBinary() bool {
	return strings.HasSuffix(p.ImportPath, ".test") && p.Name == "main"
}

// GoList runs `go list -export -deps -test -json patterns...` in dir and
// decodes the package stream. Export data files land in the build cache,
// so the call doubles as the compile step that makes Lookup-based
// importing possible without network access.
func GoList(dir string, patterns ...string) ([]*ListedPackage, error) {
	args := append([]string{"list", "-export", "-deps", "-test", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("analysis: go list: %v", err)
	}
	var pkgs []*ListedPackage
	dec := json.NewDecoder(out)
	for {
		p := new(ListedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			cmd.Wait()
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("analysis: go list: %v\n%s", err, stderr.String())
	}
	return pkgs, nil
}

// ExportIndex maps import paths to compiled export data files.
type ExportIndex struct {
	// plain holds the ordinary build of each package.
	plain map[string]string
	// forTest holds the test variant (in-package _test.go symbols
	// included), keyed by the path of the package under test.
	forTest map[string]string
}

// NewExportIndex builds an index over a go list result.
func NewExportIndex(pkgs []*ListedPackage) *ExportIndex {
	idx := &ExportIndex{plain: map[string]string{}, forTest: map[string]string{}}
	for _, p := range pkgs {
		if p.Export == "" {
			continue
		}
		if p.ForTest != "" {
			if !strings.HasSuffix(p.Name, "_test") { // variant of the package itself
				idx.forTest[p.ForTest] = p.Export
			}
			continue
		}
		if !strings.Contains(p.ImportPath, " ") {
			idx.plain[p.ImportPath] = p.Export
		}
	}
	return idx
}

// Lookup returns a go/importer lookup function. When preferTestVariant is
// non-empty, imports of exactly that path are served the test-variant
// export data, which an external _test package needs to see helpers its
// in-package half declares.
func (idx *ExportIndex) Lookup(preferTestVariant string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		if path == preferTestVariant {
			if f, ok := idx.forTest[path]; ok {
				return os.Open(f)
			}
		}
		if f, ok := idx.plain[path]; ok {
			return os.Open(f)
		}
		return nil, fmt.Errorf("analysis: no export data for %q", path)
	}
}
