// Package okdep is an imported dependency of the ok fixture: its structs
// are reachable from the encoder, so its exported fields are covered by
// the cross-package (remote) directive forms.
package okdep

// Leaf is encoded field by field; Label carries a remote //fp:skip in ok.
type Leaf struct {
	ID     string
	Weight float64
	Label  string
}

// Opaque is consumed wholesale (//fp:delegate in ok), so its own exported
// fields are not part of ok's encoded surface.
type Opaque struct {
	Blob  string
	Extra int
}
