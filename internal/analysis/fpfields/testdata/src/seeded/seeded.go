// Package seeded is the acceptance-criteria mutation: a field was added
// to an encoded struct without touching the encoder, the lock, or the
// version. Every layer of the analyzer must notice.
package seeded

import (
	"fmt"

	"seededdep"
)

// FingerprintVersion was NOT bumped when Added appeared, and the lock
// digest below records the pre-mutation shape.
//
//fp:lock v1 0000000000000000
const FingerprintVersion = 1 // want `encoded struct shape changed \(digest [0-9a-f]{16}, lock has 0000000000000000\) without a FingerprintVersion bump`

// Cfg is the encoded struct after the seeded mutation.
type Cfg struct {
	Rate  float64
	Added float64 // want `fingerprint does not encode seeded\.Cfg\.Added`
	//lint:ignore fpfields deliberately unencoded: the suppressed-case fixture
	Quiet float64
	Dep   seededdep.Leaf
	Del   seededdep.Leaf //fp:delegate hashed elsewhere, allegedly // want `marked //fp:delegate but the fingerprint encoder never consumes it`
}

//fp:skip seededdep.Leaf.Nothing typo in the target name // want `//fp:skip seededdep\.Leaf\.Nothing names no field of an encoded struct`

// Fingerprint forgets Added, Del, and the imported Leaf.Weight.
//
//fp:encoder
func Fingerprint(c Cfg) string { // want `fingerprint does not encode seededdep\.Leaf\.Weight`
	return num(c.Rate) + c.Dep.ID
}

func num(f float64) string { return fmt.Sprint(f) }
