// Package ok exercises the clean path: a complete encoder, field-attached
// and remote skip/delegate annotations, and an in-sync shape lock.
package ok

import (
	"fmt"

	"okdep"
)

// FingerprintVersion versions the encoding.
//
//fp:lock v3 a256765344cf5961
const FingerprintVersion = 3

// Inner is a nested encoded struct.
type Inner struct {
	Rate float64
	Note string //fp:skip display label only; physically identical parts share a key
}

// Spec is the encoder's root struct.
type Spec struct {
	Name  string
	Parts []Inner
	Dep   okdep.Leaf
	Meta  okdep.Opaque //fp:delegate consumed wholesale by okdep's own fingerprint scheme
}

//fp:skip okdep.Leaf.Label display-only label on an imported struct

// Fingerprint canonicalizes a Spec.
//
//fp:encoder
func Fingerprint(s Spec, trials int) string {
	out := s.Name
	for _, p := range s.Parts {
		out += num(p.Rate)
	}
	out += s.Dep.ID + num(s.Dep.Weight)
	out += consume(s.Meta)
	out += fmt.Sprint(trials)
	return out
}

func num(f float64) string { return fmt.Sprint(f) }

func consume(o okdep.Opaque) string { return fmt.Sprint(o) }
