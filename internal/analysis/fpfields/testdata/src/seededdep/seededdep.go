// Package seededdep is the imported dependency of the seeded fixture.
package seededdep

// Leaf has one field the seeded encoder forgets (Weight) — a
// cross-package coverage hole reported at the encoder.
type Leaf struct {
	ID     string
	Weight float64
}
