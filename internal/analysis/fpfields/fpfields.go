// Package fpfields cross-checks fingerprint encoders against the struct
// definitions they encode. The repository's caches (internal/simcache, the
// eval outcome caches, the web page cache) are content-addressed by
// sim.Fingerprint / eval.Fingerprint; a Config or Query field the encoder
// silently skips means two semantically different runs share one cache key
// — stale hits that no test catches until results diverge. This analyzer
// makes fingerprint completeness a compile-time property.
//
// # Annotation contract
//
// A function whose doc comment carries the directive
//
//	//fp:encoder
//
// is a fingerprint encoder root. Its parameter types, and every struct
// reachable from them through exported fields (across packages, through
// pointers, slices, arrays, maps, and embedded fields), form the encoded
// set. Every exported field of every encoded struct must be consumed
// somewhere in the encoder's call graph (same-package helpers included),
// unless annotated:
//
//	//fp:skip <why>               (on the field, same package)
//	//fp:skip pkg.Type.Field <why> (package-level, for imported structs)
//
// marks a field deliberately excluded (display labels, observe-only
// probes), and
//
//	//fp:delegate <why>            (same two forms)
//
// marks a field consumed wholesale by another package's own encoder — the
// field must still be referenced, but its struct type is not descended
// into (e.g. eval.Query.Chip delegates to sim.Fingerprint).
//
// # The shape lock
//
// The encoder's package must carry
//
//	//fp:lock v<version> <digest>
//
// (conventionally above its FingerprintVersion constant). The analyzer
// recomputes the digest over the encoded structs' shapes — qualified
// names, exported non-skipped fields, field types, in declaration order —
// and compares. Adding, removing, retyping, or renaming an encoded field
// changes the digest, and the finding clears only once FingerprintVersion
// has been bumped past the locked version and the lock refreshed
// (`gables-lint -fix` rewrites it once the bump is in place). That turns
// "added a Config field but forgot the cache key" from a latent stale-hit
// bug into a blocking diagnostic.
package fpfields

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"hash/fnv"
	"regexp"
	"sort"
	"strings"

	"github.com/gables-model/gables/internal/analysis"
)

// Analyzer is the fpfields rule.
var Analyzer = &analysis.Analyzer{
	Name: "fpfields",
	Doc: "cross-checks //fp:encoder fingerprint functions against the structs they encode: " +
		"every exported reachable field must be encoded or //fp:skip'd, and shape changes " +
		"must bump FingerprintVersion and refresh the //fp:lock",
	Run: run,
}

var (
	lockRE   = regexp.MustCompile(`^//fp:lock v(\d+) ([0-9a-f]{16})$`)
	remoteRE = regexp.MustCompile(`^[A-Za-z_]\w*(?:\.[A-Za-z_]\w*){1,2}$`)
)

// remoteDirective is a package-level //fp:skip or //fp:delegate naming a
// field by qualified name ("Type.Field" or "pkg.Type.Field").
type remoteDirective struct {
	kind   string // "skip" or "delegate"
	target string
	reason string
	pos    token.Pos
	used   bool
}

// lockDirective is a parsed //fp:lock comment.
type lockDirective struct {
	version int64
	digest  string
	pos     token.Pos
	end     token.Pos
}

type checker struct {
	pass     *analysis.Pass
	encoders []*ast.FuncDecl
	lock     *lockDirective
	remote   []*remoteDirective
	// attached maps a field object declared in this package to its
	// attached directive kind ("skip" or "delegate").
	attached map[*types.Var]string
	// decls indexes this package's function declarations for the
	// call-graph walk.
	decls map[*types.Func]*ast.FuncDecl
	// refs is the set of fields consumed in the encoders' call graphs.
	refs map[*types.Var]bool
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:     pass,
		attached: map[*types.Var]string{},
		decls:    map[*types.Func]*ast.FuncDecl{},
		refs:     map[*types.Var]bool{},
	}
	c.collect()
	if len(c.encoders) == 0 {
		return nil
	}
	c.buildRefs()

	structs := c.encodedStructs()
	for _, named := range structs {
		c.checkStruct(named)
	}
	c.checkLock(structs)
	for _, r := range c.remote {
		if !r.used {
			pass.Report(analysis.Diagnostic{
				Pos:      r.pos,
				Severity: analysis.SeverityWarning,
				Message: fmt.Sprintf("//fp:%s %s names no field of an encoded struct (stale directive?)",
					r.kind, r.target),
			})
		}
	}
	return nil
}

// collect scans the package for //fp: directives: encoder roots,
// field-attached skip/delegate annotations, package-level remote forms,
// and the shape lock.
func (c *checker) collect() {
	pass := c.pass
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				c.decls[fn] = fd
			}
			if hasDirective(fd.Doc, "//fp:encoder") {
				c.encoders = append(c.encoders, fd)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				kind, reason := fieldDirective(field)
				if kind == "" {
					continue
				}
				if reason == "" {
					pass.Reportf(field.Pos(), "//fp:%s needs a reason", kind)
					continue
				}
				for _, name := range field.Names {
					if fv, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						c.attached[fv] = kind
					}
				}
				if len(field.Names) == 0 {
					pass.Reportf(field.Pos(), "//fp:%s cannot annotate an embedded field; name the field explicitly", kind)
				}
			}
			return true
		})
		for _, cg := range f.Comments {
			for _, cm := range cg.List {
				c.collectComment(cm)
			}
		}
	}
}

// collectComment parses one comment for the package-level directive forms.
func (c *checker) collectComment(cm *ast.Comment) {
	text := cm.Text
	switch {
	case strings.HasPrefix(text, "//fp:lock"):
		m := lockRE.FindStringSubmatch(text)
		if m == nil {
			c.pass.Reportf(cm.Pos(), "malformed //fp:lock directive %q: want \"//fp:lock v<version> <16-hex digest>\"", text)
			return
		}
		if c.lock != nil {
			c.pass.Reportf(cm.Pos(), "duplicate //fp:lock directive (first at %s)", c.pass.Fset.Position(c.lock.pos))
			return
		}
		var ver int64
		fmt.Sscanf(m[1], "%d", &ver)
		c.lock = &lockDirective{version: ver, digest: m[2], pos: cm.Pos(), end: cm.End()}
	case strings.HasPrefix(text, "//fp:skip "), strings.HasPrefix(text, "//fp:delegate "):
		kind := "skip"
		rest := strings.TrimPrefix(text, "//fp:skip ")
		if strings.HasPrefix(text, "//fp:delegate ") {
			kind = "delegate"
			rest = strings.TrimPrefix(text, "//fp:delegate ")
		}
		target, reason, _ := strings.Cut(strings.TrimSpace(rest), " ")
		if !remoteRE.MatchString(target) || !strings.Contains(target, ".") {
			// Field-attached form ("//fp:skip <why>"): handled by the
			// struct walk in collect; nothing to record here.
			return
		}
		if strings.TrimSpace(reason) == "" {
			c.pass.Reportf(cm.Pos(), "//fp:%s %s needs a reason", kind, target)
			return
		}
		c.remote = append(c.remote, &remoteDirective{
			kind: kind, target: target, reason: strings.TrimSpace(reason), pos: cm.Pos(),
		})
	}
}

// fieldDirective returns the attached //fp:skip or //fp:delegate kind and
// reason from a field's doc or line comment, or "" if none. The
// field-attached form carries only a reason: a dotted first token means
// the comment is the package-level remote form and belongs elsewhere.
func fieldDirective(field *ast.Field) (kind, reason string) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, cm := range cg.List {
			for _, k := range []string{"skip", "delegate"} {
				prefix := "//fp:" + k
				if cm.Text == prefix {
					return k, ""
				}
				if rest, ok := strings.CutPrefix(cm.Text, prefix+" "); ok {
					first, _, _ := strings.Cut(strings.TrimSpace(rest), " ")
					if remoteRE.MatchString(first) && strings.Contains(first, ".") {
						continue // remote form, not attached to this field
					}
					return k, strings.TrimSpace(rest)
				}
			}
		}
	}
	return "", ""
}

// buildRefs walks the encoders' transitive same-package call graphs and
// records every struct field the code consumes.
func (c *checker) buildRefs() {
	visited := map[*ast.FuncDecl]bool{}
	queue := append([]*ast.FuncDecl{}, c.encoders...)
	for len(queue) > 0 {
		fd := queue[0]
		queue = queue[1:]
		if visited[fd] || fd.Body == nil {
			continue
		}
		visited[fd] = true
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.SelectorExpr:
				if sel, ok := c.pass.TypesInfo.Selections[x]; ok && sel.Kind() == types.FieldVal {
					c.refs[sel.Obj().(*types.Var)] = true
					// Promoted fields traverse embedded structs the
					// selection index records; mark those hops too.
					recordIndexPath(c.pass, sel, c.refs)
				}
			case *ast.CallExpr:
				var id *ast.Ident
				switch fun := ast.Unparen(x.Fun).(type) {
				case *ast.Ident:
					id = fun
				case *ast.SelectorExpr:
					id = fun.Sel
				}
				if id != nil {
					if fn, ok := c.pass.TypesInfo.Uses[id].(*types.Func); ok && fn.Pkg() == c.pass.Pkg {
						if next, ok := c.decls[fn]; ok && !visited[next] {
							queue = append(queue, next)
						}
					}
				}
			}
			return true
		})
	}
}

// recordIndexPath marks the intermediate fields a promoted-field selection
// passes through (x.Promoted traverses the embedded field too).
func recordIndexPath(pass *analysis.Pass, sel *types.Selection, refs map[*types.Var]bool) {
	t := sel.Recv()
	for _, idx := range sel.Index() {
		t = derefType(t)
		st, ok := t.Underlying().(*types.Struct)
		if !ok || idx >= st.NumFields() {
			return
		}
		fv := st.Field(idx)
		refs[fv] = true
		t = fv.Type()
	}
}

func derefType(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// encodedStructs computes the reachable struct set from the encoders'
// parameters, honoring skip (no descent, excluded) and delegate (no
// descent) annotations, sorted by qualified name for determinism.
func (c *checker) encodedStructs() []*types.Named {
	seen := map[types.Type]bool{}
	found := map[*types.Named]bool{}
	var walk func(t types.Type)
	walk = func(t types.Type) {
		if t == nil || seen[t] {
			return
		}
		seen[t] = true
		switch x := t.(type) {
		case *types.Pointer:
			walk(x.Elem())
		case *types.Slice:
			walk(x.Elem())
		case *types.Array:
			walk(x.Elem())
		case *types.Map:
			walk(x.Key())
			walk(x.Elem())
		case *types.Named:
			st, ok := x.Underlying().(*types.Struct)
			if !ok {
				walk(x.Underlying())
				return
			}
			found[x] = true
			for i := 0; i < st.NumFields(); i++ {
				fv := st.Field(i)
				if fv.Embedded() {
					walk(fv.Type())
					continue
				}
				switch c.fieldAnnotation(x, fv) {
				case "skip", "delegate":
					continue
				}
				walk(fv.Type())
			}
		}
	}
	for _, enc := range c.encoders {
		sig, ok := c.pass.TypesInfo.Defs[enc.Name].Type().(*types.Signature)
		if !ok {
			continue
		}
		for i := 0; i < sig.Params().Len(); i++ {
			walk(sig.Params().At(i).Type())
		}
	}
	out := make([]*types.Named, 0, len(found))
	for n := range found {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return qualifiedName(out[i]) < qualifiedName(out[j]) })
	return out
}

// fieldAnnotation resolves a field's skip/delegate annotation: attached
// (same-package declaration) or remote (package-level qualified form).
// Matching remote directives are marked used.
func (c *checker) fieldAnnotation(owner *types.Named, fv *types.Var) string {
	if kind, ok := c.attached[fv]; ok {
		return kind
	}
	keys := []string{qualifiedName(owner) + "." + fv.Name()}
	if owner.Obj().Pkg() == c.pass.Pkg {
		keys = append(keys, owner.Obj().Name()+"."+fv.Name())
	}
	for _, r := range c.remote {
		for _, k := range keys {
			if r.target == k {
				r.used = true
				return r.kind
			}
		}
	}
	return ""
}

// checkStruct verifies every exported field of one encoded struct is
// consumed by the encoders or annotated away.
func (c *checker) checkStruct(named *types.Named) {
	st := named.Underlying().(*types.Struct)
	local := named.Obj().Pkg() == c.pass.Pkg
	for i := 0; i < st.NumFields(); i++ {
		fv := st.Field(i)
		if !fv.Exported() || fv.Embedded() {
			continue
		}
		ann := c.fieldAnnotation(named, fv)
		if ann == "skip" {
			continue
		}
		if c.refs[fv] {
			continue
		}
		pos := c.encoders[0].Pos()
		if local && fv.Pos().IsValid() {
			pos = fv.Pos()
		}
		if ann == "delegate" {
			c.pass.Reportf(pos,
				"field %s.%s is marked //fp:delegate but the fingerprint encoder never consumes it",
				qualifiedName(named), fv.Name())
			continue
		}
		c.pass.Reportf(pos,
			"fingerprint does not encode %s.%s: a semantic field missing from the cache key means stale hits; "+
				"encode it (and bump FingerprintVersion) or annotate //fp:skip with a reason",
			qualifiedName(named), fv.Name())
	}
}

// checkLock verifies the //fp:lock digest/version pair against the
// current encoded shape and the package's FingerprintVersion constant.
// Mismatches are reported at the constant — the thing a shape change
// obliges the author to bump — while the suggested fix rewrites the lock
// comment itself.
func (c *checker) checkLock(structs []*types.Named) {
	digest := c.shapeDigest(structs)
	encPos := c.encoders[0].Pos()

	version, verPos, ok := c.fingerprintVersion()
	if !ok {
		c.pass.Reportf(encPos, "package has an //fp:encoder but no FingerprintVersion constant to version the encoding")
		return
	}
	if c.lock == nil {
		c.pass.Reportf(verPos,
			"missing //fp:lock directive: add \"//fp:lock v%d %s\" above the FingerprintVersion constant",
			version, digest)
		return
	}
	canonical := fmt.Sprintf("//fp:lock v%d %s", version, digest)
	fix := []analysis.SuggestedFix{{
		Message:   "refresh the fingerprint shape lock",
		TextEdits: []analysis.TextEdit{{Pos: c.lock.pos, End: c.lock.end, NewText: []byte(canonical)}},
	}}
	switch {
	case c.lock.digest == digest && c.lock.version == version:
		// In sync.
	case c.lock.digest == digest:
		c.pass.Report(analysis.Diagnostic{
			Pos: c.lock.pos,
			Message: fmt.Sprintf("//fp:lock records v%d but FingerprintVersion is %d; refresh the lock (gables-lint -fix)",
				c.lock.version, version),
			Fixes: fix,
		})
	case version > c.lock.version:
		// Shape changed and the version was bumped: only the bookkeeping
		// is left.
		c.pass.Report(analysis.Diagnostic{
			Pos: c.lock.pos,
			Message: fmt.Sprintf("encoded struct shape changed (digest %s, lock has %s) and FingerprintVersion was bumped; "+
				"refresh the lock (gables-lint -fix)", digest, c.lock.digest),
			Fixes: fix,
		})
	default:
		// Shape changed with no version bump: the dangerous case. No fix
		// is offered — bumping FingerprintVersion is the human's call.
		c.pass.Reportf(verPos,
			"encoded struct shape changed (digest %s, lock has %s) without a FingerprintVersion bump: "+
				"stale cache entries would keep matching the old semantics; bump FingerprintVersion above %d, "+
				"then refresh the lock (gables-lint -fix)",
			digest, c.lock.digest, c.lock.version)
	}
}

// fingerprintVersion returns the package's FingerprintVersion constant
// and its declaration position.
func (c *checker) fingerprintVersion() (int64, token.Pos, bool) {
	obj := c.pass.Pkg.Scope().Lookup("FingerprintVersion")
	cst, ok := obj.(*types.Const)
	if !ok {
		return 0, token.NoPos, false
	}
	v, ok := constant.Int64Val(constant.ToInt(cst.Val()))
	return v, cst.Pos(), ok
}

// shapeDigest hashes the encoded structs' semantic shape: qualified struct
// names in sorted order, then each struct's exported non-skipped fields in
// declaration order as name:type pairs (embedded fields as ~type markers —
// their own fields hash under their defining struct). The digest is
// deliberately insensitive to skipped fields, comments, and method sets:
// it changes exactly when the byte stream an encoder must produce changes.
func (c *checker) shapeDigest(structs []*types.Named) string {
	qual := func(p *types.Package) string { return p.Name() }
	var b strings.Builder
	for _, named := range structs {
		st := named.Underlying().(*types.Struct)
		b.WriteString(qualifiedName(named))
		b.WriteString("{")
		for i := 0; i < st.NumFields(); i++ {
			fv := st.Field(i)
			if !fv.Exported() {
				continue
			}
			if fv.Embedded() {
				b.WriteString("~" + types.TypeString(fv.Type(), qual) + ";")
				continue
			}
			if c.fieldAnnotation(named, fv) == "skip" {
				continue
			}
			b.WriteString(fv.Name() + ":" + types.TypeString(fv.Type(), qual) + ";")
		}
		b.WriteString("}\n")
	}
	h := fnv.New64a()
	h.Write([]byte(b.String()))
	return fmt.Sprintf("%016x", h.Sum64())
}

func qualifiedName(n *types.Named) string {
	if p := n.Obj().Pkg(); p != nil {
		return p.Name() + "." + n.Obj().Name()
	}
	return n.Obj().Name()
}

// hasDirective reports whether the comment group contains the exact
// directive line.
func hasDirective(cg *ast.CommentGroup, directive string) bool {
	if cg == nil {
		return false
	}
	for _, cm := range cg.List {
		if cm.Text == directive {
			return true
		}
	}
	return false
}
