package fpfields_test

import (
	"testing"

	"github.com/gables-model/gables/internal/analysis/analysistest"
	"github.com/gables-model/gables/internal/analysis/fpfields"
)

// TestFpfieldsClean covers the negative path: a complete encoder with
// field-attached and remote skip/delegate annotations and an in-sync
// shape lock produces no findings.
func TestFpfieldsClean(t *testing.T) {
	analysistest.Run(t, "testdata", fpfields.Analyzer, "ok")
}

// TestFpfieldsSeededMutation is the acceptance-criteria fixture: a field
// added to an encoded struct without touching the encoder, the lock, or
// the version must produce findings at every layer (unencoded field,
// cross-package coverage hole, unconsumed delegate, stale remote
// directive, and the missing version bump) — while the //lint:ignore'd
// field stays silent.
func TestFpfieldsSeededMutation(t *testing.T) {
	analysistest.Run(t, "testdata", fpfields.Analyzer, "seeded")
}
