// Package power extends Gables with the constraint the paper's
// introduction leads with but the base model leaves implicit: mobile SoCs
// deliver their performance "under a tight 3 Watt thermal design point"
// (§I). The extension assigns each IP an idle power and energy costs per
// operation and per DRAM byte, evaluates a usecase's power draw at the
// Gables-attainable operating point, and — when that draw exceeds the
// TDP — computes the sustainable (power-capped) performance by uniform
// DVFS-style scaling.
//
// This is an extension beyond the paper (clearly marked as such in
// DESIGN.md); its honest cross-check is the simulated thermal governor in
// internal/sim/thermal, which produces the same qualitative sag by
// mechanism rather than by formula.
package power

import (
	"fmt"
	"math"

	"github.com/gables-model/gables/internal/core"
	"github.com/gables-model/gables/internal/units"
)

// IPPower is one IP's energy characterization.
type IPPower struct {
	// Idle is static power in watts, drawn whenever the usecase runs.
	Idle float64
	// EnergyPerOp is dynamic energy per operation in joules.
	EnergyPerOp float64
	// EnergyPerByte is dynamic energy per byte the IP moves in joules
	// (its share of interconnect and I/O energy).
	EnergyPerByte float64
}

// Budget characterizes the platform.
type Budget struct {
	// TDP is the sustainable power in watts (§I's ~3 W for phones).
	TDP float64
	// DRAMEnergyPerByte is the memory system's energy per off-chip byte.
	DRAMEnergyPerByte float64
	// IPs is per-IP energy data, index-aligned with the SoC.
	IPs []IPPower
}

// Validate checks the budget against a SoC.
func (b *Budget) Validate(s *core.SoC) error {
	if b.TDP <= 0 || math.IsNaN(b.TDP) {
		return fmt.Errorf("power: TDP must be positive, got %v", b.TDP)
	}
	if b.DRAMEnergyPerByte < 0 {
		return fmt.Errorf("power: DRAM energy must be non-negative")
	}
	if len(b.IPs) != len(s.IPs) {
		return fmt.Errorf("power: budget has %d IP entries for SoC with %d IPs", len(b.IPs), len(s.IPs))
	}
	for i, p := range b.IPs {
		if p.Idle < 0 || p.EnergyPerOp < 0 || p.EnergyPerByte < 0 {
			return fmt.Errorf("power: IP %d has negative energy terms", i)
		}
	}
	return nil
}

// Result is a power-aware evaluation.
type Result struct {
	// Unconstrained is the base Gables bound.
	Unconstrained units.OpsPerSec
	// PowerAtBound is the draw at the unconstrained operating point, in
	// watts.
	PowerAtBound float64
	// Sustainable is the bound after power capping: equal to
	// Unconstrained when the draw fits the TDP, scaled down otherwise.
	Sustainable units.OpsPerSec
	// Throttled reports whether the TDP binds.
	Throttled bool
	// Scale is Sustainable/Unconstrained.
	Scale float64
	// EnergyPerOpTotal is system energy per operation at the operating
	// point (J/op), the efficiency figure accelerator offload improves.
	EnergyPerOpTotal float64
}

// Evaluate computes the power-aware bound for the usecase. Dynamic power
// scales linearly with the operating rate (each op and byte carries fixed
// energy), idle power does not, so the sustainable rate solves
//
//	idle + dynPerOp·P = TDP  →  P = (TDP − idle)/dynPerOp.
func Evaluate(m *core.Model, b *Budget, u *core.Usecase) (*Result, error) {
	if err := b.Validate(m.SoC); err != nil {
		return nil, err
	}
	//lint:ignore evalboundary analytic substrate: the power bound scales the injected model's own result, so both must come from the same backend
	base, err := m.Evaluate(u)
	if err != nil {
		return nil, err
	}
	if base.Attainable <= 0 {
		return nil, fmt.Errorf("power: degenerate base bound")
	}

	// Energy per unit of work (1 op of usecase progress): each IP does
	// fi ops and moves fi/Ii bytes; DRAM moves the (possibly
	// SRAM-filtered) off-chip bytes.
	var idle, dynPerOp float64
	for i, w := range u.Work {
		p := b.IPs[i]
		if w.Fraction == 0 {
			continue // idle blocks are power- or clock-gated
		}
		idle += p.Idle
		bytesPerOp := w.Fraction / float64(w.Intensity)
		dynPerOp += p.EnergyPerOp*w.Fraction + p.EnergyPerByte*bytesPerOp
	}
	// Off-chip bytes per op of work come from the evaluation itself so
	// the SRAM extension is honored.
	offChipPerOp := float64(base.MemoryTraffic) / u.TotalOpsOrUnit()
	dynPerOp += b.DRAMEnergyPerByte * offChipPerOp

	res := &Result{
		Unconstrained:    base.Attainable,
		PowerAtBound:     idle + dynPerOp*float64(base.Attainable),
		EnergyPerOpTotal: dynPerOp,
		Scale:            1,
		Sustainable:      base.Attainable,
	}
	if res.PowerAtBound > b.TDP {
		if idle >= b.TDP {
			return nil, fmt.Errorf("power: idle power %v W alone exceeds the %v W TDP", idle, b.TDP)
		}
		sustainable := (b.TDP - idle) / dynPerOp
		res.Sustainable = units.OpsPerSec(sustainable)
		res.Scale = sustainable / float64(base.Attainable)
		res.Throttled = true
	}
	return res, nil
}

// MobileBudget returns a 3 W phone-class parameterization for a SoC: the
// CPU-class reference pays ~0.4 nJ per scalar op, accelerators an order of
// magnitude less per op (the §II-A efficiency claim: IPs deliver their
// speedups at a fraction of CPU energy), and DRAM ~60 pJ/byte
// (LPDDR4-class).
func MobileBudget(s *core.SoC) *Budget {
	b := &Budget{TDP: 3, DRAMEnergyPerByte: 60e-12, IPs: make([]IPPower, len(s.IPs))}
	for i := range s.IPs {
		p := IPPower{Idle: 0.05, EnergyPerByte: 20e-12}
		if i == 0 {
			p.EnergyPerOp = 0.4e-9 // the general-purpose CPU
		} else {
			p.EnergyPerOp = 0.04e-9 // specialized engines: ~10× more efficient
		}
		b.IPs[i] = p
	}
	return b
}
