package power

import (
	"math"
	"testing"

	"github.com/gables-model/gables/internal/core"
	"github.com/gables-model/gables/internal/units"
)

func paperModel(t *testing.T, bpeakGB float64) *core.Model {
	t.Helper()
	s, err := core.TwoIP("paper", units.GopsPerSec(40), units.GBPerSec(bpeakGB), 5,
		units.GBPerSec(6), units.GBPerSec(15))
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(s)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBudgetValidation(t *testing.T) {
	m := paperModel(t, 10)
	good := MobileBudget(m.SoC)
	if err := good.Validate(m.SoC); err != nil {
		t.Fatalf("mobile budget invalid: %v", err)
	}
	cases := []func(*Budget){
		func(b *Budget) { b.TDP = 0 },
		func(b *Budget) { b.DRAMEnergyPerByte = -1 },
		func(b *Budget) { b.IPs = b.IPs[:1] },
		func(b *Budget) { b.IPs[0].EnergyPerOp = -1 },
	}
	for i, mutate := range cases {
		b := MobileBudget(m.SoC)
		mutate(b)
		if err := b.Validate(m.SoC); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestPowerAtFig6dOperatingPoint(t *testing.T) {
	// Fig 6d: 160 Gops/s with f=0.75 at I=8 everywhere. Hand-compute
	// the draw under the mobile budget:
	//  idle: 0.05 + 0.05 = 0.1 W
	//  dyn/op: CPU 0.4n·0.25 + 20p·(0.25/8)
	//        + GPU 0.04n·0.75 + 20p·(0.75/8)
	//        + DRAM 60p·(1/8)
	//  = 0.1e-9 + 0.625e-12 + 0.03e-9 + 1.875e-12 + 7.5e-12 = 0.14e-9 J/op
	//  at 160e9 ops/s → 22.4 W + idle ≫ 3 W TDP.
	m := paperModel(t, 20)
	u, _ := core.TwoIPUsecase("6d", 0.75, 8, 8)
	res, err := Evaluate(m, MobileBudget(m.SoC), u)
	if err != nil {
		t.Fatal(err)
	}
	wantDyn := 0.4e-9*0.25 + 20e-12*(0.25/8) + 0.04e-9*0.75 + 20e-12*(0.75/8) + 60e-12/8
	if math.Abs(res.EnergyPerOpTotal-wantDyn)/wantDyn > 1e-9 {
		t.Errorf("energy/op = %v, want %v", res.EnergyPerOpTotal, wantDyn)
	}
	wantPower := 0.1 + wantDyn*160e9
	if math.Abs(res.PowerAtBound-wantPower)/wantPower > 1e-9 {
		t.Errorf("power = %v, want %v", res.PowerAtBound, wantPower)
	}
	if !res.Throttled {
		t.Error("a 22 W draw must throttle under a 3 W TDP")
	}
	wantSustainable := (3 - 0.1) / wantDyn
	if math.Abs(float64(res.Sustainable)-wantSustainable)/wantSustainable > 1e-9 {
		t.Errorf("sustainable = %v, want %v", float64(res.Sustainable), wantSustainable)
	}
	if res.Scale >= 1 || res.Scale <= 0 {
		t.Errorf("scale = %v", res.Scale)
	}
	// Sanity: the sustainable point actually fits the TDP.
	draw := 0.1 + res.EnergyPerOpTotal*float64(res.Sustainable)
	if math.Abs(draw-3) > 1e-9 {
		t.Errorf("sustainable draw = %v, want exactly the TDP", draw)
	}
}

func TestLowRateUsecaseUnthrottled(t *testing.T) {
	// Fig 6b's memory-starved 1.33 Gops/s point draws well under 3 W.
	m := paperModel(t, 10)
	u, _ := core.TwoIPUsecase("6b", 0.75, 8, 0.1)
	res, err := Evaluate(m, MobileBudget(m.SoC), u)
	if err != nil {
		t.Fatal(err)
	}
	if res.Throttled {
		t.Errorf("1.33 Gops/s must fit 3 W, drew %v W", res.PowerAtBound)
	}
	if res.Sustainable != res.Unconstrained || res.Scale != 1 {
		t.Error("unthrottled result must pass the base bound through")
	}
}

func TestOffloadImprovesEnergyEfficiency(t *testing.T) {
	// §II-A: specialized engines deliver an order of magnitude better
	// efficiency. Moving work from the CPU (0.4 nJ/op) to the
	// accelerator (0.04 nJ/op) must cut system energy per op.
	m := paperModel(t, 20)
	b := MobileBudget(m.SoC)
	cpuOnly, _ := core.TwoIPUsecase("cpu", 0, 8, 8)
	offloaded, _ := core.TwoIPUsecase("acc", 0.75, 8, 8)
	rc, err := Evaluate(m, b, cpuOnly)
	if err != nil {
		t.Fatal(err)
	}
	ro, err := Evaluate(m, b, offloaded)
	if err != nil {
		t.Fatal(err)
	}
	if ro.EnergyPerOpTotal >= rc.EnergyPerOpTotal {
		t.Errorf("offload must improve J/op: %v vs %v",
			ro.EnergyPerOpTotal, rc.EnergyPerOpTotal)
	}
	// And under the TDP, the offloaded point therefore sustains more
	// throughput.
	if ro.Sustainable <= rc.Sustainable {
		t.Errorf("offload must sustain more under the TDP: %v vs %v",
			float64(ro.Sustainable), float64(rc.Sustainable))
	}
}

func TestSRAMReducesPower(t *testing.T) {
	// Filtering off-chip traffic saves DRAM energy.
	m := paperModel(t, 20)
	u, _ := core.TwoIPUsecase("u", 0.75, 8, 8)
	b := MobileBudget(m.SoC)
	base, err := Evaluate(m, b, u)
	if err != nil {
		t.Fatal(err)
	}
	cached := &core.Model{SoC: m.SoC, SRAM: &core.SRAM{MissRatio: []float64{0.2, 0.2}}}
	withSRAM, err := Evaluate(cached, b, u)
	if err != nil {
		t.Fatal(err)
	}
	if withSRAM.EnergyPerOpTotal >= base.EnergyPerOpTotal {
		t.Errorf("SRAM must cut J/op: %v vs %v",
			withSRAM.EnergyPerOpTotal, base.EnergyPerOpTotal)
	}
}

func TestIdleExceedsTDP(t *testing.T) {
	m := paperModel(t, 10)
	b := MobileBudget(m.SoC)
	b.IPs[0].Idle = 5
	u, _ := core.TwoIPUsecase("u", 0.5, 8, 8)
	if _, err := Evaluate(m, b, u); err == nil {
		t.Error("idle power above the TDP must be an error")
	}
}

func TestIdleIPsAreGated(t *testing.T) {
	// An IP with no work contributes no idle power (power gating).
	m := paperModel(t, 10)
	b := MobileBudget(m.SoC)
	b.IPs[1].Idle = 100 // absurd, but gated off at f=0
	u, _ := core.TwoIPUsecase("cpu-only", 0, 8, 8)
	res, err := Evaluate(m, b, u)
	if err != nil {
		t.Fatal(err)
	}
	// The CPU at 40 Gops/s legitimately draws ~16.45 W under this
	// budget; the test is that the idle IP's absurd 100 W is absent.
	want := 0.05 + (0.4e-9+20e-12/8+60e-12/8)*40e9
	if math.Abs(res.PowerAtBound-want)/want > 1e-9 {
		t.Errorf("gated IP leaked power: %v W, want %v", res.PowerAtBound, want)
	}
}
