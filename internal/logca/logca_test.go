package logca

import (
	"math"
	"testing"
	"testing/quick"
)

// example returns a GPU-flavored characterization: host at C = 0.133 ns/B
// (≈ 7.5 GB/s of 1-op-per-byte work), A = 47, per-byte transfer at
// L = 0.167 ns/B (≈ 6 GB/s staging) and 100 µs dispatch overhead.
func example() Model {
	return Model{
		Latency:      0.167e-9,
		Overhead:     100e-6,
		ComputeIndex: 0.133e-9,
		Beta:         1,
		Acceleration: 47,
	}
}

func TestValidate(t *testing.T) {
	if err := example().Validate(); err != nil {
		t.Fatalf("example invalid: %v", err)
	}
	cases := []func(*Model){
		func(m *Model) { m.Latency = -1 },
		func(m *Model) { m.Overhead = math.NaN() },
		func(m *Model) { m.ComputeIndex = 0 },
		func(m *Model) { m.Beta = 0.5 },
		func(m *Model) { m.Acceleration = 0 },
	}
	for i, mutate := range cases {
		m := example()
		mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestTimes(t *testing.T) {
	m := example()
	g := 1e6 // 1 MB offload
	th, err := m.TimeHost(g)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.133e-9 * 1e6
	if math.Abs(th-want) > 1e-15 {
		t.Errorf("TimeHost = %v, want %v", th, want)
	}
	ta, err := m.TimeAccel(g)
	if err != nil {
		t.Fatal(err)
	}
	wantA := 100e-6 + 0.167e-9*1e6 + want/47
	if math.Abs(ta-wantA) > 1e-15 {
		t.Errorf("TimeAccel = %v, want %v", ta, wantA)
	}
	if _, err := m.TimeHost(0); err == nil {
		t.Error("zero granularity must be rejected")
	}
}

func TestPeakSpeedupLinear(t *testing.T) {
	m := example()
	peak, err := m.PeakSpeedup()
	if err != nil {
		t.Fatal(err)
	}
	// β = 1: C/(L + C/A) = 0.133/(0.167 + 0.133/47) ≈ 0.783 — for this
	// streaming workload, offload NEVER pays: the transfer costs more
	// than the host compute. LogCA's version of the paper's Fig 8
	// low-intensity lesson.
	want := 0.133e-9 / (0.167e-9 + 0.133e-9/47)
	if math.Abs(peak-want) > 1e-12 {
		t.Errorf("peak = %v, want %v", peak, want)
	}
	if peak >= 1 {
		t.Errorf("this characterization must never break even, peak %v", peak)
	}
	if _, ok, err := m.BreakEven(); err != nil || ok {
		t.Errorf("break-even must not exist (ok=%v, err=%v)", ok, err)
	}
}

func TestPeakSpeedupSuperLinear(t *testing.T) {
	m := example()
	m.Beta = 2 // O(g²) work: compute swamps transfer eventually
	peak, err := m.PeakSpeedup()
	if err != nil {
		t.Fatal(err)
	}
	if peak != 47 {
		t.Errorf("β>1 peak = %v, want the full A = 47", peak)
	}
	g1, ok, err := m.BreakEven()
	if err != nil || !ok {
		t.Fatalf("break-even must exist: %v, %v", ok, err)
	}
	s, _ := m.Speedup(g1)
	if math.Abs(s-1) > 1e-6 {
		t.Errorf("speedup at g1 = %v, want 1", s)
	}
	// Just below g1 the offload still loses.
	below, _ := m.Speedup(g1 * 0.99)
	if below >= 1 {
		t.Errorf("speedup just below g1 = %v, want < 1", below)
	}

	gHalf, ok, err := m.GHalf()
	if err != nil || !ok {
		t.Fatalf("g_{A/2} must exist: %v, %v", ok, err)
	}
	sHalf, _ := m.Speedup(gHalf)
	if math.Abs(sHalf-23.5) > 1e-3 {
		t.Errorf("speedup at g_{A/2} = %v, want 23.5", sHalf)
	}
	if gHalf <= g1 {
		t.Error("g_{A/2} must exceed g1")
	}
}

func TestComputeBoundOffloadBreaksEven(t *testing.T) {
	// A high-intensity workload: 1024 ops per byte means the effective
	// compute index per byte is 1024× larger, dwarfing transfer.
	m := example()
	m.ComputeIndex *= 1024
	peak, err := m.PeakSpeedup()
	if err != nil {
		t.Fatal(err)
	}
	if peak < 40 {
		t.Errorf("high-intensity peak = %v, want near A", peak)
	}
	g1, ok, err := m.BreakEven()
	if err != nil || !ok {
		t.Fatalf("break-even must exist: %v %v", ok, err)
	}
	if g1 <= 0 {
		t.Errorf("g1 = %v", g1)
	}
}

func TestGranularityForValidation(t *testing.T) {
	m := example()
	if _, _, err := m.GranularityFor(0); err == nil {
		t.Error("zero target must be rejected")
	}
	if _, ok, err := m.GranularityFor(100); err != nil || ok {
		t.Error("target above peak must report not-ok")
	}
}

func TestZeroOverheadDegenerate(t *testing.T) {
	m := Model{ComputeIndex: 1e-9, Beta: 1, Acceleration: 10}
	peak, err := m.PeakSpeedup()
	if err != nil {
		t.Fatal(err)
	}
	if peak != 10 {
		t.Errorf("free interface peak = %v, want A", peak)
	}
	g, ok, err := m.GranularityFor(10)
	if err != nil || !ok || g != 1 {
		t.Errorf("free interface attains A everywhere: g=%v ok=%v err=%v", g, ok, err)
	}
}

func TestCurve(t *testing.T) {
	m := example()
	m.Beta = 2
	pts, err := m.Curve(1e3, 1e9, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 25 {
		t.Fatalf("points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Speedup < pts[i-1].Speedup-1e-12 {
			t.Fatalf("speedup not monotone at %d", i)
		}
	}
	if _, err := m.Curve(10, 1, 5); err == nil {
		t.Error("inverted range must be rejected")
	}
	if _, err := m.Curve(1, 10, 1); err == nil {
		t.Error("too few samples must be rejected")
	}
}

// Property: speedup is monotone nondecreasing in granularity and bounded
// by the analytic peak.
func TestSpeedupMonotoneBoundedProperty(t *testing.T) {
	f := func(oSeed, lSeed, cSeed, aSeed uint8, g1Seed, g2Seed uint16) bool {
		m := Model{
			Overhead:     float64(oSeed) * 1e-6,
			Latency:      float64(lSeed) * 1e-12,
			ComputeIndex: (1 + float64(cSeed)) * 1e-12,
			Beta:         1,
			Acceleration: 1 + float64(aSeed),
		}
		ga := 1 + float64(g1Seed)
		gb := 1 + float64(g2Seed)
		if ga > gb {
			ga, gb = gb, ga
		}
		sa, err := m.Speedup(ga)
		if err != nil {
			return false
		}
		sb, err := m.Speedup(gb)
		if err != nil {
			return false
		}
		peak, err := m.PeakSpeedup()
		if err != nil {
			return false
		}
		return sb >= sa-1e-12 && sa <= peak*(1+1e-9) && sb <= peak*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCurveRejectsDegenerateRanges(t *testing.T) {
	m := Model{Latency: 1e-9, Overhead: 1e-6, ComputeIndex: 1e-8, Beta: 1, Acceleration: 10}
	if _, err := m.Curve(0, 10, 5); err == nil {
		t.Error("lo = 0 must be rejected before math.Log sees it")
	}
	if _, err := m.Curve(-1, 10, 5); err == nil {
		t.Error("lo < 0 must be rejected before math.Log sees it")
	}
	if _, err := m.Curve(7, 7, 5); err == nil {
		t.Error("degenerate lo == hi must be rejected")
	}
}
