package logca_test

import (
	"fmt"

	"github.com/gables-model/gables/internal/logca"
)

// Example characterizes a GPU-class accelerator interface and asks the
// LogCA questions: does offload ever pay, and how big must offloads be?
func Example() {
	m := logca.Model{
		Latency:      0.167e-9,       // per-byte transfer (≈6 GB/s staging)
		Overhead:     100e-6,         // dispatch cost
		ComputeIndex: 0.133e-9 * 256, // host time per byte at I = 256
		Beta:         1,
		Acceleration: 46.6,
	}
	peak, _ := m.PeakSpeedup()
	g1, _, _ := m.BreakEven()
	fmt.Printf("peak speedup %.1f, break-even at %.0f KB\n", peak, g1/1e3)
	// Output: peak speedup 37.9, break-even at 3 KB
}
