// Package logca implements the LogCA model of Altaf and Wood ("LogCA: A
// High-Level Performance Model for Hardware Accelerators", ISCA 2017),
// which the Gables paper's §VI names as a candidate sub-model for IP
// interaction overheads. LogCA predicts the speedup of offloading a
// computation of granularity g (bytes of offloaded data) to an accelerator
// characterized by five parameters:
//
//	L — Latency: per-byte data-movement time to/from the accelerator
//	o — overhead: fixed host-side setup/dispatch cost per offload
//	g — granularity: the offloaded data size (the model's variable)
//	C — Computational index: host time per byte of work, with the
//	    workload's complexity exponent β (time grows as C·g^β)
//	A — peak Acceleration of the device
//
// giving
//
//	T_host(g)  = C·g^β
//	T_accel(g) = o + L·g + C·g^β / A
//	Speedup(g) = T_host(g) / T_accel(g)
//
// LogCA complements Gables: Gables bounds *concurrent* steady-state
// throughput of the whole SoC, while LogCA explains when a single offload
// is worth its interaction overhead — the same coordination effect the
// simulated mixing experiment (§IV-C) charges per byte.
package logca

import (
	"fmt"
	"math"

	"github.com/gables-model/gables/internal/units"
)

// Model is one accelerator interface characterization.
type Model struct {
	// Latency is the per-byte transfer time in seconds (the aggregate
	// of link traversal as seen by one offload).
	Latency float64
	// Overhead is the fixed per-offload setup cost in seconds.
	Overhead float64
	// ComputeIndex is the host's time per byte of work (C).
	ComputeIndex float64
	// Beta is the workload complexity exponent (work grows as g^β);
	// the model requires β ≥ 1.
	Beta float64
	// Acceleration is the device's peak speedup on the computation (A).
	Acceleration float64
}

// Validate checks the parameters.
func (m Model) Validate() error {
	if m.Latency < 0 || math.IsNaN(m.Latency) {
		return fmt.Errorf("logca: latency must be non-negative, got %v", m.Latency)
	}
	if m.Overhead < 0 || math.IsNaN(m.Overhead) {
		return fmt.Errorf("logca: overhead must be non-negative, got %v", m.Overhead)
	}
	if m.ComputeIndex <= 0 {
		return fmt.Errorf("logca: computational index must be positive, got %v", m.ComputeIndex)
	}
	if m.Beta < 1 {
		return fmt.Errorf("logca: complexity exponent must be at least 1, got %v", m.Beta)
	}
	if m.Acceleration <= 0 {
		return fmt.Errorf("logca: acceleration must be positive, got %v", m.Acceleration)
	}
	return nil
}

// TimeHost returns the unaccelerated execution time at granularity g.
func (m Model) TimeHost(g float64) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if g <= 0 {
		return 0, fmt.Errorf("logca: granularity must be positive, got %v", g)
	}
	return m.ComputeIndex * math.Pow(g, m.Beta), nil
}

// TimeAccel returns the offloaded execution time at granularity g.
func (m Model) TimeAccel(g float64) (float64, error) {
	th, err := m.TimeHost(g)
	if err != nil {
		return 0, err
	}
	return m.Overhead + m.Latency*g + th/m.Acceleration, nil
}

// Speedup returns T_host/T_accel at granularity g. For β ≥ 1 it is
// nondecreasing in g: overheads amortize as offloads grow.
func (m Model) Speedup(g float64) (float64, error) {
	th, err := m.TimeHost(g)
	if err != nil {
		return 0, err
	}
	ta, err := m.TimeAccel(g)
	if err != nil {
		return 0, err
	}
	return th / ta, nil
}

// PeakSpeedup returns the asymptotic speedup as g → ∞: the full A when
// work grows super-linearly (β > 1, compute swamps transfer), and
// C/(L + C/A) for linear workloads (β = 1), where data movement caps the
// benefit — LogCA's central warning and Gables' Bi in another guise.
func (m Model) PeakSpeedup() (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if m.Beta > 1 {
		return m.Acceleration, nil
	}
	return m.ComputeIndex / (m.Latency + m.ComputeIndex/m.Acceleration), nil
}

// BreakEven returns g₁, the smallest granularity at which offloading is
// not a loss (speedup ≥ 1). ok is false when no granularity ever breaks
// even (the peak speedup is below 1).
func (m Model) BreakEven() (g float64, ok bool, err error) {
	return m.GranularityFor(1)
}

// GHalf returns g_{A/2}, the granularity achieving half the peak speedup —
// LogCA's headline "how big must offloads be" metric.
func (m Model) GHalf() (float64, bool, error) {
	peak, err := m.PeakSpeedup()
	if err != nil {
		return 0, false, err
	}
	return m.GranularityFor(peak / 2)
}

// GranularityFor returns the smallest granularity achieving the target
// speedup, by bisection on the monotone speedup curve. ok is false when
// the target exceeds the asymptotic peak.
func (m Model) GranularityFor(target float64) (float64, bool, error) {
	peak, err := m.PeakSpeedup()
	if err != nil {
		return 0, false, err
	}
	if target <= 0 {
		return 0, false, fmt.Errorf("logca: target speedup must be positive, got %v", target)
	}
	if target >= peak {
		// β > 1 approaches A but never attains it; treat ≥ peak as
		// unattainable except in degenerate zero-overhead cases.
		if m.Overhead == 0 && m.Latency == 0 {
			return 1, true, nil // speedup is A everywhere
		}
		return 0, false, nil
	}
	lo, hi := 1e-12, 1.0
	for {
		s, err := m.Speedup(hi)
		if err != nil {
			return 0, false, err
		}
		if s >= target {
			break
		}
		hi *= 2
		if hi > 1e30 {
			return 0, false, nil
		}
	}
	for iter := 0; iter < 200; iter++ {
		mid := math.Sqrt(lo * hi)
		s, err := m.Speedup(mid)
		if err != nil {
			return 0, false, err
		}
		if s >= target {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, true, nil
}

// Curve samples the speedup at n log-spaced granularities in [lo, hi].
type Point struct {
	Granularity float64
	Speedup     float64
}

// Curve samples speedup over a granularity range for plotting.
func (m Model) Curve(lo, hi float64, n int) ([]Point, error) {
	if lo <= 0 || hi <= lo {
		return nil, fmt.Errorf("logca: invalid range [%v, %v]", lo, hi)
	}
	if n < 2 {
		return nil, fmt.Errorf("logca: need at least 2 samples, got %d", n)
	}
	gs, err := units.Logspace(lo, hi, n)
	if err != nil {
		return nil, fmt.Errorf("logca: %w", err)
	}
	out := make([]Point, n)
	for k, gk := range gs {
		s, err := m.Speedup(gk)
		if err != nil {
			return nil, err
		}
		out[k] = Point{Granularity: gk, Speedup: s}
	}
	return out, nil
}
