// Package amdahl implements the family of Amdahl's-Law models the Gables
// paper positions itself against (§VI): Amdahl's original law (1967),
// Gustafson's reevaluation (1988), and the Hill–Marty multicore corollaries
// (Computer 2008). Gables generalizes these by apportioning *concurrent*
// work among IPs and adding data-movement bounds; these baselines cover the
// serialized, compute-only view.
package amdahl

import (
	"fmt"
	"math"
)

// Speedup returns Amdahl's Law: the overall speedup when a fraction f of a
// computation is sped up by factor s (the rest is unimproved),
//
//	Speedup(f, s) = 1 / ((1−f) + f/s)
//
// f must lie in [0,1] and s must be positive.
func Speedup(f, s float64) (float64, error) {
	if f < 0 || f > 1 || math.IsNaN(f) {
		return 0, fmt.Errorf("amdahl: fraction must be in [0,1], got %v", f)
	}
	if s <= 0 || math.IsNaN(s) {
		return 0, fmt.Errorf("amdahl: speedup factor must be positive, got %v", s)
	}
	return 1 / ((1 - f) + f/s), nil
}

// Limit returns the asymptotic speedup 1/(1−f) as s → ∞, or +Inf for f = 1.
func Limit(f float64) (float64, error) {
	if f < 0 || f > 1 || math.IsNaN(f) {
		return 0, fmt.Errorf("amdahl: fraction must be in [0,1], got %v", f)
	}
	//lint:ignore floatcmp f is a caller-supplied parameter, not a computed value; f == 1 is the documented +Inf asymptote
	if f == 1 {
		return math.Inf(1), nil
	}
	return 1 / (1 - f), nil
}

// Gustafson returns the scaled speedup of Gustafson's reevaluation: with n
// processors and a serial fraction (1−f) measured on the parallel system,
//
//	Scaled(f, n) = (1−f) + f·n
func Gustafson(f float64, n int) (float64, error) {
	if f < 0 || f > 1 || math.IsNaN(f) {
		return 0, fmt.Errorf("amdahl: fraction must be in [0,1], got %v", f)
	}
	if n < 1 {
		return 0, fmt.Errorf("amdahl: processor count must be at least 1, got %d", n)
	}
	return (1 - f) + f*float64(n), nil
}

// Perf is the Hill–Marty single-core performance function: a core built
// from r base-core-equivalent (BCE) resources performs at sqrt(r) — the
// "Pollack's rule" assumption of the paper.
func Perf(r float64) float64 {
	if r <= 0 {
		return 0
	}
	return math.Sqrt(r)
}

// Symmetric returns the Hill–Marty speedup of a symmetric multicore with n
// BCEs total, organized as n/r cores of r BCEs each, on software with
// parallel fraction f:
//
//	Speedup = 1 / ( (1−f)/perf(r) + f·r/(perf(r)·n) )
func Symmetric(f float64, n, r int) (float64, error) {
	if err := checkChip(f, n, r); err != nil {
		return 0, err
	}
	p := Perf(float64(r))
	return 1 / ((1-f)/p + f*float64(r)/(p*float64(n))), nil
}

// Asymmetric returns the Hill–Marty speedup of an asymmetric multicore: one
// big core of r BCEs plus n−r base cores. Sequential work runs on the big
// core; parallel work uses everything:
//
//	Speedup = 1 / ( (1−f)/perf(r) + f/(perf(r) + n − r) )
func Asymmetric(f float64, n, r int) (float64, error) {
	if err := checkChip(f, n, r); err != nil {
		return 0, err
	}
	p := Perf(float64(r))
	return 1 / ((1-f)/p + f/(p+float64(n-r))), nil
}

// Dynamic returns the Hill–Marty speedup of a dynamic multicore that can
// fuse r BCEs into one powerful sequential core and also use all n BCEs in
// parallel:
//
//	Speedup = 1 / ( (1−f)/perf(r) + f/n )
func Dynamic(f float64, n, r int) (float64, error) {
	if err := checkChip(f, n, r); err != nil {
		return 0, err
	}
	return 1 / ((1-f)/Perf(float64(r)) + f/float64(n)), nil
}

func checkChip(f float64, n, r int) error {
	if f < 0 || f > 1 || math.IsNaN(f) {
		return fmt.Errorf("amdahl: fraction must be in [0,1], got %v", f)
	}
	if n < 1 {
		return fmt.Errorf("amdahl: chip must have at least 1 BCE, got %d", n)
	}
	if r < 1 || r > n {
		return fmt.Errorf("amdahl: core size r must be in [1,%d], got %d", n, r)
	}
	return nil
}

// BestSymmetricR searches all core sizes r that divide n and returns the r
// maximizing the symmetric speedup, with the speedup. It mirrors the
// design-space sweeps of Hill–Marty Figure 2.
func BestSymmetricR(f float64, n int) (bestR int, bestSpeedup float64, err error) {
	if n < 1 {
		return 0, 0, fmt.Errorf("amdahl: chip must have at least 1 BCE, got %d", n)
	}
	for r := 1; r <= n; r++ {
		if n%r != 0 {
			continue
		}
		s, serr := Symmetric(f, n, r)
		if serr != nil {
			return 0, 0, serr
		}
		if s > bestSpeedup {
			bestR, bestSpeedup = r, s
		}
	}
	return bestR, bestSpeedup, nil
}
