package amdahl_test

import (
	"fmt"

	"github.com/gables-model/gables/internal/amdahl"
)

// ExampleSpeedup is the classic law: speeding 90% of the work up 10×
// yields far less than 10×.
func ExampleSpeedup() {
	s, _ := amdahl.Speedup(0.9, 10)
	limit, _ := amdahl.Limit(0.9)
	fmt.Printf("speedup %.2f (limit %.0f as s grows)\n", s, limit)
	// Output: speedup 5.26 (limit 10 as s grows)
}

// ExampleBestSymmetricR reproduces the Hill–Marty design lesson: highly
// parallel software wants many small cores; mostly serial software wants
// one big core.
func ExampleBestSymmetricR() {
	rParallel, _, _ := amdahl.BestSymmetricR(0.999, 256)
	rSerial, _, _ := amdahl.BestSymmetricR(0.1, 256)
	fmt.Printf("f=0.999 -> r=%d; f=0.1 -> r=%d\n", rParallel, rSerial)
	// Output: f=0.999 -> r=1; f=0.1 -> r=256
}
