package amdahl

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSpeedup(t *testing.T) {
	cases := []struct {
		f, s, want float64
	}{
		{0, 10, 1},        // nothing sped up
		{1, 10, 10},       // everything sped up
		{0.5, 2, 4.0 / 3}, // 1/(0.5+0.25)
		{0.9, 10, 1 / (0.1 + 0.09)},
		{0.5, 1, 1}, // speedup factor 1 changes nothing
	}
	for _, c := range cases {
		got, err := Speedup(c.f, c.s)
		if err != nil {
			t.Fatalf("Speedup(%v,%v): %v", c.f, c.s, err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Speedup(%v,%v) = %v, want %v", c.f, c.s, got, c.want)
		}
	}
}

func TestSpeedupValidation(t *testing.T) {
	if _, err := Speedup(-0.1, 2); err == nil {
		t.Error("negative fraction must be rejected")
	}
	if _, err := Speedup(1.1, 2); err == nil {
		t.Error("fraction > 1 must be rejected")
	}
	if _, err := Speedup(0.5, 0); err == nil {
		t.Error("zero speedup factor must be rejected")
	}
	if _, err := Speedup(math.NaN(), 2); err == nil {
		t.Error("NaN fraction must be rejected")
	}
}

func TestLimit(t *testing.T) {
	got, err := Limit(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-10) > 1e-12 {
		t.Errorf("Limit(0.9) = %v, want 10", got)
	}
	inf, err := Limit(1)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(inf, 1) {
		t.Errorf("Limit(1) = %v, want +Inf", inf)
	}
	if _, err := Limit(2); err == nil {
		t.Error("fraction > 1 must be rejected")
	}
}

func TestGustafson(t *testing.T) {
	got, err := Gustafson(0.99, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.01 + 0.99*100
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Gustafson(0.99,100) = %v, want %v", got, want)
	}
	if _, err := Gustafson(0.5, 0); err == nil {
		t.Error("n < 1 must be rejected")
	}
}

func TestHillMartySymmetric(t *testing.T) {
	// Known values from Hill–Marty: n=256, f=0.999. r=1 gives
	// 1/(0.001 + 0.999/256) ≈ 204.0.
	got, err := Symmetric(0.999, 256, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / (0.001 + 0.999/256)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Symmetric = %v, want %v", got, want)
	}

	// f=0.5 strongly favors bigger cores: r=256 (one huge core) gives
	// 1/((0.5+0.5)/16) = 16.
	got, err = Symmetric(0.5, 256, 256)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-16) > 1e-9 {
		t.Errorf("Symmetric(0.5,256,256) = %v, want 16", got)
	}
}

func TestHillMartyAsymmetric(t *testing.T) {
	// One 4-BCE core + 12 BCEs, f = 0.5:
	// 1/(0.5/2 + 0.5/(2+12)) = 1/(0.25 + 0.035714...) ≈ 3.5.
	got, err := Asymmetric(0.5, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / (0.5/2 + 0.5/14)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Asymmetric = %v, want %v", got, want)
	}
}

func TestHillMartyDynamic(t *testing.T) {
	// Dynamic dominates both other organizations for equal n, r.
	f, n, r := 0.9, 64, 16
	sym, _ := Symmetric(f, n, r)
	asym, _ := Asymmetric(f, n, r)
	dyn, err := Dynamic(f, n, r)
	if err != nil {
		t.Fatal(err)
	}
	if dyn < sym || dyn < asym {
		t.Errorf("dynamic (%v) must dominate symmetric (%v) and asymmetric (%v)", dyn, sym, asym)
	}
}

func TestChipValidation(t *testing.T) {
	if _, err := Symmetric(0.5, 16, 0); err == nil {
		t.Error("r < 1 must be rejected")
	}
	if _, err := Symmetric(0.5, 16, 17); err == nil {
		t.Error("r > n must be rejected")
	}
	if _, err := Asymmetric(1.5, 16, 4); err == nil {
		t.Error("bad fraction must be rejected")
	}
	if _, err := Dynamic(0.5, 0, 1); err == nil {
		t.Error("n < 1 must be rejected")
	}
}

func TestPerf(t *testing.T) {
	if Perf(16) != 4 {
		t.Errorf("Perf(16) = %v, want 4", Perf(16))
	}
	if Perf(0) != 0 || Perf(-1) != 0 {
		t.Error("non-positive resources must give zero performance")
	}
}

func TestBestSymmetricR(t *testing.T) {
	// With highly parallel software, many small cores win.
	r, s, err := BestSymmetricR(0.999, 256)
	if err != nil {
		t.Fatal(err)
	}
	if r != 1 {
		t.Errorf("best r for f=0.999 = %d, want 1", r)
	}
	if s <= 1 {
		t.Errorf("speedup = %v, want > 1", s)
	}

	// With mostly serial software, one big core wins.
	r, _, err = BestSymmetricR(0.1, 256)
	if err != nil {
		t.Fatal(err)
	}
	if r != 256 {
		t.Errorf("best r for f=0.1 = %d, want 256", r)
	}

	if _, _, err := BestSymmetricR(0.5, 0); err == nil {
		t.Error("n < 1 must be rejected")
	}
}

// Property: Amdahl speedup is monotone in both f and s and bounded by
// Limit(f).
func TestSpeedupMonotonicityProperty(t *testing.T) {
	f := func(fa, fb, sa, sb uint8) bool {
		f1, f2 := float64(fa)/255, float64(fb)/255
		if f1 > f2 {
			f1, f2 = f2, f1
		}
		s1, s2 := 1+float64(sa), 1+float64(sb)
		if s1 > s2 {
			s1, s2 = s2, s1
		}
		lo, err := Speedup(f1, s1)
		if err != nil {
			return false
		}
		hiF, err := Speedup(f2, s1)
		if err != nil {
			return false
		}
		hiS, err := Speedup(f1, s2)
		if err != nil {
			return false
		}
		lim, err := Limit(f1)
		if err != nil {
			return false
		}
		return hiF >= lo-1e-12 && hiS >= lo-1e-12 && lo <= lim+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: with r = 1 the symmetric chip reduces to classic Amdahl with
// speedup factor n.
func TestSymmetricReducesToAmdahlProperty(t *testing.T) {
	f := func(fr uint8, nSeed uint8) bool {
		fv := float64(fr) / 255
		n := 1 + int(nSeed)
		sym, err := Symmetric(fv, n, 1)
		if err != nil {
			return false
		}
		amd, err := Speedup(fv, float64(n))
		if err != nil {
			return false
		}
		return math.Abs(sym-amd) <= 1e-9*math.Max(sym, amd)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
