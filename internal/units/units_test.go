package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGigaConstructors(t *testing.T) {
	if got := GopsPerSec(40); got != 40e9 {
		t.Errorf("GopsPerSec(40) = %v, want 4e10", float64(got))
	}
	if got := GBPerSec(10); got != 10e9 {
		t.Errorf("GBPerSec(10) = %v, want 1e10", float64(got))
	}
	if got := GopsPerSec(40).Gops(); got != 40 {
		t.Errorf("round trip Gops = %v, want 40", got)
	}
	if got := GBPerSec(24.4).GB(); math.Abs(got-24.4) > 1e-12 {
		t.Errorf("round trip GB = %v, want 24.4", got)
	}
}

func TestStringFormatting(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{GopsPerSec(40).String(), "40 Gops/s"},
		{GopsPerSec(1.3).String(), "1.3 Gops/s"},
		{GopsPerSec(0.0075).String(), "7.5 Mops/s"},
		{OpsPerSec(0).String(), "0 ops/s"},
		{OpsPerSec(999).String(), "999 ops/s"},
		{OpsPerSec(2.5e12).String(), "2.5 Tops/s"},
		{GBPerSec(15.1).String(), "15.1 GB/s"},
		{Bytes(12 * Mega).String(), "12 MB"},
		{Bytes(2048).String(), "2.048 KB"},
		{Intensity(8).String(), "8 ops/B"},
		{Intensity(0.1).String(), "0.1 ops/B"},
		{Seconds(0).String(), "0 s"},
		{Seconds(2.5e-3).String(), "2.5 ms"},
		{Seconds(3.2e-6).String(), "3.2 µs"},
		{Seconds(15e-9).String(), "15 ns"},
		{Seconds(1.5).String(), "1.5 s"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("got %q, want %q", c.got, c.want)
		}
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		40:     "40",
		1.3:    "1.3",
		0.125:  "0.125",
		-2.5:   "-2.5",
		0:      "0",
		3.1416: "3.142",
	}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Errorf("trimFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(1.0, 1.0, 0) {
		t.Error("identical values must compare equal")
	}
	if !ApproxEqual(100, 100.0001, 1e-5) {
		t.Error("values within relative tolerance must compare equal")
	}
	if ApproxEqual(100, 101, 1e-5) {
		t.Error("values outside relative tolerance must compare unequal")
	}
	if !ApproxEqual(0, 1e-13, 1e-9) {
		t.Error("near-zero absolute floor must apply")
	}
}

func TestApproxEqualSymmetricProperty(t *testing.T) {
	f := func(a, b float64, tol uint8) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		rel := float64(tol) / 255 // tolerance in [0,1]
		return ApproxEqual(a, b, rel) == ApproxEqual(b, a, rel)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestApproxEqualReflexiveProperty(t *testing.T) {
	f := func(a float64) bool {
		if math.IsNaN(a) {
			return true
		}
		return ApproxEqual(a, a, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSIFormatBoundaries(t *testing.T) {
	cases := map[float64]string{
		1e3:  "1 Kops/s",
		1e6:  "1 Mops/s",
		1e9:  "1 Gops/s",
		1e12: "1 Tops/s",
		-2e9: "-2 Gops/s",
	}
	for in, want := range cases {
		if got := OpsPerSec(in).String(); got != want {
			t.Errorf("OpsPerSec(%v).String() = %q, want %q", in, got, want)
		}
	}
}

func TestLogspace(t *testing.T) {
	xs, err := Logspace(0.01, 100, 33)
	if err != nil {
		t.Fatal(err)
	}
	if len(xs) != 33 {
		t.Fatalf("len = %d, want 33", len(xs))
	}
	// Endpoints are pinned bit-exactly, not round-tripped through exp(log).
	if xs[0] != 0.01 || xs[32] != 100 {
		t.Errorf("endpoints = %v, %v; want exactly 0.01, 100", xs[0], xs[32])
	}
	for i := 1; i < len(xs); i++ {
		if !(xs[i] > xs[i-1]) {
			t.Fatalf("not strictly increasing at %d: %v, %v", i, xs[i-1], xs[i])
		}
	}
	// Log-spaced: adjacent ratios are constant.
	ratio := xs[1] / xs[0]
	for i := 2; i < len(xs); i++ {
		if !ApproxEqual(xs[i]/xs[i-1], ratio, 1e-9) {
			t.Errorf("ratio at %d = %v, want %v", i, xs[i]/xs[i-1], ratio)
		}
	}
}

func TestLogspaceRejectsDegenerateRanges(t *testing.T) {
	cases := []struct {
		name   string
		lo, hi float64
		n      int
	}{
		{"lo zero", 0, 10, 5},
		{"lo negative", -1, 10, 5},
		{"lo == hi", 3, 3, 5},
		{"hi < lo", 10, 1, 5},
		{"lo NaN", math.NaN(), 10, 5},
		{"hi NaN", 1, math.NaN(), 5},
		{"hi +Inf", 1, math.Inf(1), 5},
		{"n too small", 1, 10, 1},
	}
	for _, c := range cases {
		if _, err := Logspace(c.lo, c.hi, c.n); err == nil {
			t.Errorf("%s: Logspace(%v, %v, %d) did not error", c.name, c.lo, c.hi, c.n)
		}
	}
}
