// Package units defines the physical quantities that appear throughout the
// Gables model — operation rates, byte rates, operational intensities, data
// capacities, and times — together with SI-prefixed formatting that matches
// the conventions of the paper (Gops/s, GB/s, ops/byte).
//
// All quantities are thin wrappers over float64. They exist to make API
// signatures self-documenting and to prevent the classic roofline mistake of
// mixing up ops/s with bytes/s: the compiler rejects such confusions.
package units

import (
	"fmt"
	"math"
)

// OpsPerSec is a computation rate in operations per second. The paper's
// micro-benchmark counts single-precision floating-point operations, but the
// model is agnostic to the operation type as long as all inputs use the same
// one (Ppeak, Ai·Ppeak and the Ii all count the same "op").
type OpsPerSec float64

// BytesPerSec is a data-transfer rate (IP link bandwidth Bi or off-chip
// memory bandwidth Bpeak).
type BytesPerSec float64

// Intensity is operational intensity in operations per byte transferred
// to/from memory (the paper's I, Ii and Iavg).
type Intensity float64

// Bytes is a data capacity (the paper's Di, data transferred for IP[i]).
type Bytes float64

// Seconds is a duration in seconds (the paper's Ci, T_IP[i], Tmemory).
type Seconds float64

// Ops is an operation count. The Gables equations normalize total usecase
// work to 1 op, so fractions fi are also of type Ops when scaled.
type Ops float64

// Common scale factors. These are decimal (SI) prefixes, matching the
// paper's use of Gops/s = 1e9 ops/s and GB/s = 1e9 bytes/s.
const (
	Kilo = 1e3
	Mega = 1e6
	Giga = 1e9
	Tera = 1e12
)

// Giga-scale constructors, mirroring how the paper states its inputs
// ("Ppeak = 40 Gops/s, Bpeak = 10 Gbytes/s").

// GopsPerSec converts a value in Gops/s to OpsPerSec.
func GopsPerSec(v float64) OpsPerSec { return OpsPerSec(v * Giga) }

// GBPerSec converts a value in GB/s to BytesPerSec.
func GBPerSec(v float64) BytesPerSec { return BytesPerSec(v * Giga) }

// Gops returns the rate expressed in Gops/s.
func (p OpsPerSec) Gops() float64 { return float64(p) / Giga }

// GB returns the rate expressed in GB/s.
func (b BytesPerSec) GB() float64 { return float64(b) / Giga }

// String formats the rate with an SI prefix, e.g. "40 Gops/s".
func (p OpsPerSec) String() string { return siFormat(float64(p), "ops/s") }

// String formats the rate with an SI prefix, e.g. "10 GB/s".
func (b BytesPerSec) String() string { return siFormat(float64(b), "B/s") }

// String formats the intensity, e.g. "8 ops/B".
func (i Intensity) String() string { return trimFloat(float64(i)) + " ops/B" }

// String formats the capacity with an SI prefix, e.g. "12 MB".
func (d Bytes) String() string { return siFormat(float64(d), "B") }

// String formats the duration with an SI prefix, e.g. "2.5 ms".
func (s Seconds) String() string {
	v := float64(s)
	switch {
	case v == 0:
		return "0 s"
	case math.Abs(v) < 1e-6:
		return trimFloat(v*1e9) + " ns"
	case math.Abs(v) < 1e-3:
		return trimFloat(v*1e6) + " µs"
	case math.Abs(v) < 1:
		return trimFloat(v*1e3) + " ms"
	default:
		return trimFloat(v) + " s"
	}
}

// siFormat renders v with the largest decimal prefix that keeps the mantissa
// at least 1, using up to three significant decimals.
func siFormat(v float64, unit string) string {
	if v == 0 {
		return "0 " + unit
	}
	abs := math.Abs(v)
	switch {
	case abs >= Tera:
		return trimFloat(v/Tera) + " T" + unit
	case abs >= Giga:
		return trimFloat(v/Giga) + " G" + unit
	case abs >= Mega:
		return trimFloat(v/Mega) + " M" + unit
	case abs >= Kilo:
		return trimFloat(v/Kilo) + " K" + unit
	default:
		return trimFloat(v) + " " + unit
	}
}

// trimFloat formats with three decimals and strips trailing zeros, so
// 40.000 prints as "40" and 1.300 as "1.3".
func trimFloat(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	if s == "-0" {
		s = "0"
	}
	return s
}

// ApproxEqual reports whether a and b agree within relative tolerance rel
// (and an absolute floor of 1e-12 to handle values near zero). It is the
// comparison used by tests that check model identities.
func ApproxEqual(a, b, rel float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	if diff < 1e-12 {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= rel*scale
}

// Logspace returns n logarithmically spaced samples spanning [lo, hi],
// with both endpoints pinned to exactly lo and hi: round-tripping the
// bounds through exp(log(·)) would land one ulp off, and downstream
// consumers (curve sampling, plots) want the stated range hit bit-exactly.
// It is the shared guard in front of math.Log for curve generators: lo and
// hi must be finite and positive with lo < hi, and n must be at least 2.
func Logspace(lo, hi float64, n int) ([]float64, error) {
	if !(lo > 0) || !(hi > lo) || math.IsInf(hi, 1) {
		return nil, fmt.Errorf("units: logspace needs 0 < lo < hi (finite), got [%v, %v]", lo, hi)
	}
	if n < 2 {
		return nil, fmt.Errorf("units: logspace needs at least 2 samples, got %d", n)
	}
	out := make([]float64, n)
	logLo, logHi := math.Log(lo), math.Log(hi)
	for k := range out {
		out[k] = math.Exp(logLo + (logHi-logLo)*float64(k)/float64(n-1))
	}
	out[0], out[n-1] = lo, hi
	return out, nil
}
