// Package dataset embeds the market-context series behind the Gables
// paper's Figure 2: (a) the number of new mobile SoC chipsets introduced
// per year, mined from GSMArena across 9165 phone models and 109 brands,
// and (b) the estimated number of IP blocks in a state-of-the-art SoC per
// generation, based on Shao et al.
//
// The paper prints the charts, not the raw tables, so the values here are
// digitized to match the narrative: chipset introductions rise steeply
// from 2007, peak around 2015, then decline as vendors consolidate (TI and
// Intel exit; Qualcomm trims 49 chipsets in 2014 to 27 in 2017); the IP
// count climbs steadily past 30.
package dataset

// YearCount is one bar of a per-year series.
type YearCount struct {
	Year  int
	Count int
}

// ChipsetsPerYear returns the Figure 2a series: new SoC chipsets observed
// "in the wild" per year.
func ChipsetsPerYear() []YearCount {
	return []YearCount{
		{2007, 14}, {2008, 22}, {2009, 34}, {2010, 58},
		{2011, 94}, {2012, 126}, {2013, 158}, {2014, 182},
		{2015, 192}, {2016, 164}, {2017, 130},
	}
}

// IPBlocksPerGeneration returns the Figure 2b series: estimated IP blocks
// in a flagship SoC by generation (Shao et al.'s Aladdin analysis of Apple
// SoC die photos).
func IPBlocksPerGeneration() []YearCount {
	return []YearCount{
		{2010, 11}, {2011, 14}, {2012, 18}, {2013, 22},
		{2014, 26}, {2015, 29}, {2016, 32},
	}
}

// Facts summarizes the dataset's headline numbers as the paper states them.
type Facts struct {
	PhoneModels  int // GSMArena models mined
	DeviceBrands int // distinct brands
	PeakYear     int // year chipset introductions peak
	MaxIPBlocks  int // IP count the trend surpasses
}

// Headline returns the paper's quoted figures.
func Headline() Facts {
	return Facts{PhoneModels: 9165, DeviceBrands: 109, PeakYear: 2015, MaxIPBlocks: 30}
}

// PeakYear returns the year with the largest count in a series; ok is
// false for an empty series.
func PeakYear(series []YearCount) (int, bool) {
	if len(series) == 0 {
		return 0, false
	}
	best := series[0]
	for _, yc := range series[1:] {
		if yc.Count > best.Count {
			best = yc
		}
	}
	return best.Year, true
}

// Monotone reports whether a series never decreases year over year.
func Monotone(series []YearCount) bool {
	for i := 1; i < len(series); i++ {
		if series[i].Count < series[i-1].Count {
			return false
		}
	}
	return true
}
