package dataset

import "testing"

func TestChipsetsPerYearShape(t *testing.T) {
	s := ChipsetsPerYear()
	if len(s) != 11 {
		t.Fatalf("series length = %d, want 11 (2007–2017)", len(s))
	}
	if s[0].Year != 2007 || s[len(s)-1].Year != 2017 {
		t.Errorf("year range = %d..%d, want 2007..2017", s[0].Year, s[len(s)-1].Year)
	}
	// The paper's narrative: growth until a peak around 2015, then a
	// decline from consolidation.
	peak, ok := PeakYear(s)
	if !ok || peak != 2015 {
		t.Errorf("peak year = %d, want 2015", peak)
	}
	for i := 1; i < len(s); i++ {
		if s[i].Year != s[i-1].Year+1 {
			t.Errorf("years not consecutive at %d", i)
		}
		if s[i].Year <= 2015 && s[i].Count <= s[i-1].Count {
			t.Errorf("series must grow through 2015, broke at %d", s[i].Year)
		}
		if s[i].Year > 2015 && s[i].Count >= s[i-1].Count {
			t.Errorf("series must decline after 2015, broke at %d", s[i].Year)
		}
	}
}

func TestIPBlocksShape(t *testing.T) {
	s := IPBlocksPerGeneration()
	if !Monotone(s) {
		t.Error("IP count must climb steadily")
	}
	if last := s[len(s)-1].Count; last <= 30 {
		t.Errorf("IP count must surpass 30, got %d", last)
	}
	if first := s[0].Count; first >= 20 {
		t.Errorf("early generations had few IPs, got %d", first)
	}
}

func TestHeadline(t *testing.T) {
	f := Headline()
	if f.PhoneModels != 9165 || f.DeviceBrands != 109 {
		t.Errorf("headline = %+v, paper says 9165 models across 109 brands", f)
	}
	if f.PeakYear != 2015 || f.MaxIPBlocks != 30 {
		t.Errorf("headline = %+v", f)
	}
}

func TestPeakYearEmpty(t *testing.T) {
	if _, ok := PeakYear(nil); ok {
		t.Error("empty series has no peak")
	}
}

func TestMonotone(t *testing.T) {
	if !Monotone([]YearCount{{2010, 1}, {2011, 1}, {2012, 5}}) {
		t.Error("nondecreasing series must be monotone")
	}
	if Monotone([]YearCount{{2010, 5}, {2011, 4}}) {
		t.Error("decreasing series must not be monotone")
	}
	if !Monotone(nil) {
		t.Error("empty series is trivially monotone")
	}
}
