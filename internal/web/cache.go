package web

import (
	"encoding/json"
	"net/http"

	"github.com/gables-model/gables/internal/eval"
	"github.com/gables-model/gables/internal/sim/trace"
	"github.com/gables-model/gables/internal/simcache"
	"github.com/gables-model/gables/internal/surrogate"
)

// Whole-page memoization: the interactive pages are pure functions of
// their form parameters, and real traffic repeats them heavily (the
// default form, the back button, many users poking the same example), so
// identical submissions are served from a bounded content-addressed cache.
// Concurrent identical requests coalesce onto one model evaluation + SVG
// render via the cache's singleflight. Errors (invalid parameters) are
// never cached.
//
// The "/v1" in the key scopes are the page schema versions: bump one
// whenever its Params struct or rendering changes meaning. Keys derive
// through eval.Key, the evaluation layer's shared key scheme.
var evalCache = simcache.New[*Evaluation](simcache.Options{Capacity: 512})

// EvaluateCached is Evaluate through the page cache.
func EvaluateCached(p Params) (*Evaluation, error) {
	key, err := eval.Key("web-eval2/v1", p)
	if err != nil {
		return Evaluate(p) // unkeyable (non-finite) params bypass the cache
	}
	ev, err := evalCache.Get(key, func() (*Evaluation, error) { return Evaluate(p) })
	if err != nil {
		return nil, err
	}
	return cloneEvaluation(ev), nil
}

// EvaluateThreeCached is EvaluateThree through the page cache.
func EvaluateThreeCached(p ThreeParams) (*Evaluation, error) {
	key, err := eval.Key("web-eval3/v1", p)
	if err != nil {
		return EvaluateThree(p)
	}
	ev, err := evalCache.Get(key, func() (*Evaluation, error) { return EvaluateThree(p) })
	if err != nil {
		return nil, err
	}
	return cloneEvaluation(ev), nil
}

// cloneEvaluation hands each request a private copy so cache-resident
// pages stay immutable.
func cloneEvaluation(ev *Evaluation) *Evaluation {
	cp := *ev
	cp.Terms = append([]termView(nil), ev.Terms...)
	return &cp
}

// CacheStats reports the page cache's counters (the /stats payload also
// includes the simulation-run cache for completeness: gables-web itself
// is analytic, but the snapshot shape is shared with the harness cmds).
func CacheStats() simcache.Stats { return evalCache.Stats() }

// ResetCache clears the page cache; tests use it for isolation.
func ResetCache() { evalCache.Reset() }

// statsHandler serves the cache, tracing, surrogate-backend, and admission
// counters as JSON at /stats. The surrogate section reports the default
// backend's calibrations (fit parameters, residual summary) and its
// fast-answer vs sim-fallback routing counts; the admission section is the
// overload picture (in-flight and queue-depth gauges, admitted/queued/
// shed/canceled counters — exactly one per evaluation request).
func (s *server) statsHandler(w http.ResponseWriter, r *http.Request) {
	snapshot := struct {
		Web       simcache.Stats    `json:"web_eval"`
		Sim       simcache.Stats    `json:"sim_runs"`
		Eval      simcache.Stats    `json:"eval_outcomes"`
		Trace     trace.GlobalStats `json:"trace"`
		Surrogate surrogate.Stats   `json:"surrogate"`
		Admission AdmissionStats    `json:"admission"`
	}{Web: evalCache.Stats(), Sim: simcache.DefaultStats(), Eval: eval.CacheStats(), Trace: trace.Stats(), Surrogate: surrogate.DefaultStats(), Admission: s.adm.Stats()}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snapshot); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
