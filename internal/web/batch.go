package web

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"github.com/gables-model/gables/internal/eval"
	"github.com/gables-model/gables/internal/parallel"
)

// POST /eval/batch: the fleet-scale face of the /eval question. A client
// submits an array of SoC+work queries and gets per-item outcomes — or
// per-item errors; a malformed or unanswerable item never fails the
// request (the transport succeeds, the item reports). Items naming the
// same backend are evaluated together: through the backend's
// EvaluateBatch fast path when it implements eval.BatchEvaluator (the
// analytic backend answers a whole slab allocation-free), and through a
// bounded parallel fan-out otherwise (sim items run concurrently up
// to the worker bound, deduplicated by the simcache singleflight). The
// fan-out is charged against the admission limiter: the request's own
// slot covers one evaluation at a time, and each additional worker runs
// only if it wins a free slot (admission.tryAcquire), so MaxInFlight
// bounds real concurrency whatever the batch mix.
//
// With ?stream=1 or Accept: application/x-ndjson the response is NDJSON —
// one result object per line, in item order, written and flushed as
// results complete — so a large batch delivers its early answers while
// later items are still evaluating.

// DefaultBatchLimit bounds the item count of one batch request.
const DefaultBatchLimit = 1024

// maxBatchBody bounds the request body; 8 MiB comfortably holds a
// DefaultBatchLimit-item request with every field spelled out.
const maxBatchBody = 8 << 20

// ndjsonContentType is the streaming response content type.
const ndjsonContentType = "application/x-ndjson"

// batchItem is one query in the request array. Pointer fields distinguish
// "absent" (use the /eval default) from an explicit zero (rejected by
// validation, exactly like the GET surface).
type batchItem struct {
	// Chip names the preset chip ("" = snapdragon835).
	Chip string `json:"chip"`
	// Backend overrides the request-level backend for this item.
	Backend string `json:"backend"`
	// F and DSP are the GPU and DSP work fractions.
	F   *float64 `json:"f"`
	DSP *float64 `json:"dsp"`
	// FPW, Words, Trials are the sizing counts; must be positive.
	FPW    *int `json:"fpw"`
	Words  *int `json:"words"`
	Trials *int `json:"trials"`
	// Serialized selects the §V-C exclusive-work form.
	Serialized bool `json:"serialized"`
}

// spec resolves the item against the shared defaults.
func (it batchItem) spec() evalQuerySpec {
	s := defaultEvalSpec()
	s.Chip = it.Chip
	s.Serialized = it.Serialized
	if it.F != nil {
		s.F = *it.F
	}
	if it.DSP != nil {
		s.DSP = *it.DSP
	}
	if it.FPW != nil {
		s.FPW = *it.FPW
	}
	if it.Words != nil {
		s.Words = *it.Words
	}
	if it.Trials != nil {
		s.Trials = *it.Trials
	}
	return s
}

// batchRequest is the POST body.
type batchRequest struct {
	// Backend selects the evaluator for items that do not name their
	// own ("" = the process default).
	Backend string `json:"backend"`
	// Items are the queries, answered in order.
	Items []batchItem `json:"items"`
}

// batchItemResult is one item's answer: exactly one of Outcome or Error is
// set — including for items the request's cancellation kept from ever
// starting, which report the context error.
type batchItemResult struct {
	Chip        string        `json:"chip,omitempty"`
	Backend     string        `json:"backend,omitempty"`
	Fingerprint string        `json:"fingerprint,omitempty"`
	Outcome     *eval.Outcome `json:"outcome,omitempty"`
	Error       string        `json:"error,omitempty"`
}

// batchResponse is the non-streaming response envelope.
type batchResponse struct {
	Items []batchItemResult `json:"items"`
}

// batchHandler answers POST /eval/batch.
func (s *server) batchHandler(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		evalError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed on /eval/batch (POST a JSON body)", r.Method))
		return
	}
	limit := s.opts.BatchLimit
	if limit <= 0 {
		limit = DefaultBatchLimit
	}
	var req batchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBody))
	if err := dec.Decode(&req); err != nil {
		evalError(w, http.StatusBadRequest, fmt.Errorf("undecodable batch body: %w", err))
		return
	}
	if len(req.Items) == 0 {
		evalError(w, http.StatusBadRequest, fmt.Errorf("batch has no items"))
		return
	}
	if len(req.Items) > limit {
		evalError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("batch has %d items, limit %d", len(req.Items), limit))
		return
	}

	if wantsNDJSON(r) {
		s.streamBatch(w, r, req)
		return
	}
	results := make([]batchItemResult, len(req.Items))
	s.evaluateBatch(r.Context(), req, results, nil)
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(batchResponse{Items: results}); err != nil {
		evalError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(buf.Bytes())
}

// streamBatch answers the NDJSON shape: evaluation runs concurrently with
// the response writer, which emits each line — in item order — as soon as
// that item's result is final, so early answers reach the client while
// later items are still evaluating. A write failure (client gone) cancels
// the evaluation context; the handler still waits for the evaluation
// goroutine so the admission slot is never released with work in flight.
func (s *server) streamBatch(w http.ResponseWriter, r *http.Request, req batchRequest) {
	n := len(req.Items)
	results := make([]batchItemResult, n)
	ready := make([]chan struct{}, n)
	for i := range ready {
		ready[i] = make(chan struct{})
	}

	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.evaluateBatch(ctx, req, results, func(i int) { close(ready[i]) })
	}()

	w.Header().Set("Content-Type", ndjsonContentType)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for i := 0; i < n; i++ {
		<-ready[i] // evaluateBatch finalizes every item, canceled or not
		if err := enc.Encode(&results[i]); err != nil {
			cancel() // mid-stream failure: the line boundary marks the cut
			break
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	<-done
}

// wantsNDJSON reports whether the client asked for the streaming shape.
func wantsNDJSON(r *http.Request) bool {
	return r.URL.Query().Get("stream") == "1" ||
		strings.Contains(r.Header.Get("Accept"), ndjsonContentType)
}

// evaluateBatch answers every item into results, grouping by backend so
// batch-capable evaluators see whole slabs. note, when non-nil, is called
// exactly once per item the moment results[i] is final (the streaming
// writer's signal); every item is finalized — and noted — before return,
// with items that never ran (cancellation) reporting the context error so
// the exactly-one-of-Outcome-or-Error contract holds unconditionally.
func (s *server) evaluateBatch(ctx context.Context, req batchRequest, results []batchItemResult, note func(i int)) {
	if note == nil {
		note = func(int) {}
	}
	n := len(req.Items)
	queries := make([]eval.Query, n)

	// Parse every item and bucket the parseable ones by backend name, in
	// first-appearance order (deterministic grouping; results go back to
	// their item index, so grouping never reorders the response).
	groups := make(map[string][]int)
	var names []string
	for i, it := range req.Items {
		q, err := it.spec().buildQuery()
		if err != nil {
			results[i] = batchItemResult{Chip: it.Chip, Error: err.Error()}
			note(i)
			continue
		}
		queries[i] = q
		name := it.Backend
		if name == "" {
			name = req.Backend
		}
		if _, seen := groups[name]; !seen {
			names = append(names, name)
		}
		groups[name] = append(groups[name], i)
	}

	for _, name := range names {
		idxs := groups[name]
		ev, err := resolveBackend(name)
		if err != nil {
			for _, i := range idxs {
				results[i] = batchItemResult{Chip: req.Items[i].Chip, Error: err.Error()}
				note(i)
			}
			continue
		}
		s.evaluateGroup(ctx, ev, idxs, queries, results, note)
	}
}

// evaluateGroup answers one backend's items: slab-wise through the batch
// fast path when every query is supported and the backend implements it,
// point-wise under a bounded fan-out otherwise (including as the fallback
// that attributes a slab failure to its item).
func (s *server) evaluateGroup(ctx context.Context, ev eval.Evaluator, idxs []int, queries []eval.Query, results []batchItemResult, note func(i int)) {
	if be, ok := ev.(eval.BatchEvaluator); ok && allSupported(be, idxs, queries) {
		qs := make([]eval.Query, len(idxs))
		for k, i := range idxs {
			qs[k] = queries[i]
		}
		out := make([]eval.Outcome, len(qs))
		if err := be.EvaluateBatch(ctx, qs, out); err == nil {
			for k, i := range idxs {
				o := out[k]
				results[i] = finishItem(queries[i], &o)
				note(i)
			}
			return
		}
		// A slab error names one query but poisons the whole slab's
		// outcomes; replay point-wise so each item reports its own.
	}

	// The request's admission slot covers one worker; each one beyond it
	// must win a free slot or it doesn't run, so the whole fleet of point
	// requests, batches, and batch workers stays under MaxInFlight. With
	// nothing free the group degrades to sequential on the slot it holds.
	workers := parallel.Workers(s.opts.BatchWorkers)
	if workers > len(idxs) {
		workers = len(idxs)
	}
	var extra []func()
	for len(extra) < workers-1 {
		release, ok := s.adm.tryAcquire()
		if !ok {
			break
		}
		extra = append(extra, release)
	}
	parallel.ForEach(ctx, 1+len(extra), idxs, func(ctx context.Context, _ int, i int) error {
		o, err := ev.Evaluate(ctx, queries[i])
		switch {
		case err != nil:
			results[i] = batchItemResult{Chip: queries[i].Chip.Name, Error: err.Error()}
		case o == nil:
			results[i] = batchItemResult{Chip: queries[i].Chip.Name, Error: "backend returned no outcome"}
		default:
			results[i] = finishItem(queries[i], o)
		}
		note(i)
		return nil // item errors stay with the item
	})
	for _, release := range extra {
		release()
	}

	// Cancellation can keep items from ever starting; finalize them with
	// the context error rather than leaving zero-value results behind.
	for _, i := range idxs {
		if results[i].Outcome == nil && results[i].Error == "" {
			err := ctx.Err()
			if err == nil {
				err = context.Canceled
			}
			results[i] = batchItemResult{Chip: queries[i].Chip.Name, Error: err.Error()}
			note(i)
		}
	}
}

// allSupported reports whether the backend can answer every query in the
// group (the batch contract has no per-item error channel, so one
// unsupported query sends the whole group down the point-wise path).
func allSupported(ev eval.Evaluator, idxs []int, queries []eval.Query) bool {
	for _, i := range idxs {
		if ev.Supports(queries[i]) != nil {
			return false
		}
	}
	return true
}

// finishItem builds one successful item result, attaching the canonical
// fingerprint.
func finishItem(q eval.Query, o *eval.Outcome) batchItemResult {
	res := batchItemResult{Chip: q.Chip.Name, Backend: o.Backend, Outcome: o}
	if fp, err := eval.Fingerprint(q); err == nil {
		res.Fingerprint = fp
	}
	return res
}
