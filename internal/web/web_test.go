package web

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestEvaluateDefaults(t *testing.T) {
	ev, err := Evaluate(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// The defaults are the paper's Figure 6b: 1.328 Gops/s, memory bound.
	if !strings.Contains(ev.Attainable, "1.328") {
		t.Errorf("attainable = %q, want 1.328 Gops/s", ev.Attainable)
	}
	if !strings.Contains(ev.Bottleneck, "memory") {
		t.Errorf("bottleneck = %q, want memory", ev.Bottleneck)
	}
	if len(ev.Terms) != 3 {
		t.Errorf("terms = %d, want 3", len(ev.Terms))
	}
	if !strings.Contains(string(ev.SVG), "</svg>") {
		t.Error("SVG missing")
	}
}

func TestEvaluateValidation(t *testing.T) {
	bad := DefaultParams()
	bad.F = 2
	if _, err := Evaluate(bad); err == nil {
		t.Error("f > 1 must be rejected")
	}
	bad = DefaultParams()
	bad.PpeakGops = 0
	if _, err := Evaluate(bad); err == nil {
		t.Error("zero Ppeak must be rejected")
	}
	bad = DefaultParams()
	bad.I1 = -1
	if _, err := Evaluate(bad); err == nil {
		t.Error("negative intensity must be rejected")
	}
}

func TestHandlerServesPage(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	html := string(body)
	for _, want := range []string{"Gables", "1.328 Gops/s", "</svg>", "memory interface"} {
		if !strings.Contains(html, want) {
			t.Errorf("page missing %q", want)
		}
	}
}

func TestHandlerQueryParameters(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	// Figure 6d: balanced 160 Gops/s.
	resp, err := http.Get(srv.URL + "/?bpeak=20&i1=8")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "160 Gops/s") {
		t.Errorf("Fig 6d parameters must show 160 Gops/s")
	}
}

func TestHandlerBadParamsShowError(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/?f=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (page should render with an error message)", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "must be in [0,1]") {
		t.Error("error message missing")
	}
}

func TestHandlerNotFound(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d, want 404", resp.StatusCode)
	}
}

func TestParseParamsIgnoresGarbage(t *testing.T) {
	req := httptest.NewRequest("GET", "/?ppeak=banana&f=0.5", nil)
	p, ferrs := parseParams(req)
	if p.PpeakGops != DefaultParams().PpeakGops {
		t.Error("unparseable values must keep defaults")
	}
	if p.F != 0.5 {
		t.Error("valid values must apply")
	}
	if len(ferrs) != 1 || ferrs[0].Field != "ppeak" {
		t.Errorf("want one form error for ppeak, got %+v", ferrs)
	}
}
