package web

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/gables-model/gables/internal/eval"
)

func postBatch(t *testing.T, srv *httptest.Server, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestBatchEndpoint(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	resp, body := postBatch(t, srv, "/eval/batch", `{
		"backend": "analytic",
		"items": [
			{"f": 0.5, "fpw": 512},
			{"f": 0.375, "dsp": 0.125, "fpw": 512, "words": 16777216},
			{"serialized": true}
		]
	}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var out batchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Items) != 3 {
		t.Fatalf("got %d items, want 3", len(out.Items))
	}
	for i, it := range out.Items {
		if it.Error != "" || it.Outcome == nil {
			t.Fatalf("item %d: error=%q outcome=%v", i, it.Error, it.Outcome)
		}
		if it.Backend != "analytic" {
			t.Errorf("item %d backend = %q", i, it.Backend)
		}
		if it.Fingerprint == "" {
			t.Errorf("item %d has no fingerprint", i)
		}
		if it.Outcome.Attainable <= 0 {
			t.Errorf("item %d attainable = %v", i, it.Outcome.Attainable)
		}
	}
	if len(out.Items[1].Outcome.IPs) != 3 {
		t.Errorf("three-IP item activated %d IPs", len(out.Items[1].Outcome.IPs))
	}

	// Batch answers must match the point endpoint bitwise: same query,
	// same fingerprint, same attainable.
	point, status := getEval(t, srv, "?backend=analytic&f=0.5&fpw=512")
	if status != http.StatusOK {
		t.Fatalf("point status = %d", status)
	}
	if out.Items[0].Fingerprint != point.Fingerprint {
		t.Error("batch item fingerprints differently than the point query")
	}
	if out.Items[0].Outcome.Attainable != point.Outcome.Attainable {
		t.Errorf("batch attainable %v != point %v", out.Items[0].Outcome.Attainable, point.Outcome.Attainable)
	}
}

// TestBatchPartialFailure pins the per-item error contract: bad items
// report their own errors, good items still answer, and the request as a
// whole succeeds.
func TestBatchPartialFailure(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	resp, body := postBatch(t, srv, "/eval/batch", `{
		"backend": "analytic",
		"items": [
			{"f": 0.5},
			{"f": 2.0},
			{"chip": "nope"},
			{"backend": "nope"},
			{"trials": -1},
			{"words": 0}
		]
	}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 despite bad items: %s", resp.StatusCode, body)
	}
	var out batchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Items) != 6 {
		t.Fatalf("got %d items, want 6", len(out.Items))
	}
	if out.Items[0].Error != "" || out.Items[0].Outcome == nil {
		t.Errorf("good item: error=%q outcome=%v", out.Items[0].Error, out.Items[0].Outcome)
	}
	for i, frag := range map[int]string{
		1: "fraction", 2: "unknown chip", 3: "unknown backend", 4: "trials", 5: "words",
	} {
		it := out.Items[i]
		if it.Outcome != nil {
			t.Errorf("bad item %d produced an outcome", i)
		}
		if !strings.Contains(it.Error, frag) {
			t.Errorf("item %d error %q does not mention %q", i, it.Error, frag)
		}
	}
}

// TestBatchStream pins the NDJSON shape: one result object per line, in
// item order.
func TestBatchStream(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	resp, body := postBatch(t, srv, "/eval/batch?stream=1", `{
		"backend": "analytic",
		"items": [{"f": 0.25}, {"f": 2.0}, {"f": 0.75}]
	}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ndjsonContentType {
		t.Errorf("Content-Type = %q, want %q", ct, ndjsonContentType)
	}
	var items []batchItemResult
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var it batchItemResult
		if err := json.Unmarshal(sc.Bytes(), &it); err != nil {
			t.Fatalf("line %d: %v", len(items), err)
		}
		items = append(items, it)
	}
	if len(items) != 3 {
		t.Fatalf("got %d lines, want 3", len(items))
	}
	if items[0].Outcome == nil || items[2].Outcome == nil {
		t.Error("good items missing outcomes")
	}
	if items[1].Error == "" {
		t.Error("bad middle item reported no error")
	}
	if items[0].Outcome.Attainable == items[2].Outcome.Attainable {
		t.Error("distinct queries answered identically: order lost?")
	}

	// The Accept header selects the same shape.
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/eval/batch",
		strings.NewReader(`{"backend":"analytic","items":[{"f":0.5}]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", ndjsonContentType)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if ct := resp2.Header.Get("Content-Type"); ct != ndjsonContentType {
		t.Errorf("Accept negotiation: Content-Type = %q", ct)
	}
}

// slowItemBackend answers immediately except for trials == block, which
// waits on gate; batch streaming tests use it to hold one item open while
// others complete.
type slowItemBackend struct {
	block int
	gate  chan struct{}
}

func (s *slowItemBackend) Meta() eval.Meta {
	return eval.Meta{Name: "slow-item", Fidelity: eval.FidelityAnalytic, Description: "per-item gated test stub"}
}
func (s *slowItemBackend) Supports(eval.Query) error { return nil }
func (s *slowItemBackend) Evaluate(ctx context.Context, q eval.Query) (*eval.Outcome, error) {
	if q.Trials == s.block {
		select {
		case <-s.gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return &eval.Outcome{Backend: "slow-item", Attainable: float64(q.Trials), TotalFlops: 1}, nil
}

// TestBatchStreamIncremental pins the streaming contract the review found
// hollow: with ?stream=1, an early item's line must reach the client
// while a later item is still evaluating — not after the whole batch.
func TestBatchStreamIncremental(t *testing.T) {
	stub := &slowItemBackend{block: 2, gate: make(chan struct{})}
	eval.Register("stub-stream", func() (eval.Evaluator, error) { return stub, nil })
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/eval/batch?stream=1", "application/json",
		strings.NewReader(`{"backend":"stub-stream","items":[{"trials":1},{"trials":2}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}

	br := bufio.NewReader(resp.Body)
	lines := make(chan []byte, 2)
	readErr := make(chan error, 2)
	go func() {
		for i := 0; i < 2; i++ {
			line, err := br.ReadBytes('\n')
			if err != nil {
				readErr <- err
				return
			}
			lines <- line
		}
	}()

	// The first line must arrive while item 2 is still gated.
	var first batchItemResult
	select {
	case line := <-lines:
		if err := json.Unmarshal(line, &first); err != nil {
			t.Fatalf("first line: %v", err)
		}
	case err := <-readErr:
		t.Fatalf("read: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("no line delivered while a later item was still evaluating: streaming is not incremental")
	}
	if first.Outcome == nil || first.Outcome.Attainable != 1 {
		t.Fatalf("first line = %+v, want item 0's outcome", first)
	}

	close(stub.gate)
	select {
	case line := <-lines:
		var second batchItemResult
		if err := json.Unmarshal(line, &second); err != nil {
			t.Fatalf("second line: %v", err)
		}
		if second.Outcome == nil || second.Outcome.Attainable != 2 {
			t.Fatalf("second line = %+v, want item 1's outcome", second)
		}
	case err := <-readErr:
		t.Fatalf("read: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("second line never arrived after the gate opened")
	}
}

// TestBatchCanceledItems pins the exactly-one-of-Outcome-or-Error
// contract under cancellation: items the canceled context kept from ever
// starting still report an explicit error (and are finalized exactly
// once), never a zero-value result.
func TestBatchCanceledItems(t *testing.T) {
	stub := &slowItemBackend{block: -1, gate: make(chan struct{})}
	eval.Register("stub-cancel", func() (eval.Evaluator, error) { return stub, nil })
	s := &server{opts: Options{}, adm: newAdmission(4, 4)}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before any item can start
	req := batchRequest{Backend: "stub-cancel", Items: []batchItem{{}, {}, {}}}
	results := make([]batchItemResult, len(req.Items))
	var mu sync.Mutex
	noted := make(map[int]int)
	s.evaluateBatch(ctx, req, results, func(i int) {
		mu.Lock()
		noted[i]++
		mu.Unlock()
	})

	for i, res := range results {
		if res.Outcome != nil {
			t.Errorf("item %d produced an outcome under a canceled context", i)
		}
		if !strings.Contains(res.Error, context.Canceled.Error()) {
			t.Errorf("item %d error = %q, want the context error", i, res.Error)
		}
		if noted[i] != 1 {
			t.Errorf("item %d finalized %d times, want exactly once", i, noted[i])
		}
	}
}

func TestBatchRequestErrors(t *testing.T) {
	srv := httptest.NewServer(NewHandler(Options{BatchLimit: 2}))
	defer srv.Close()

	for _, tc := range []struct {
		name, body string
		want       int
	}{
		{"garbage", `{"items": [`, http.StatusBadRequest},
		{"empty", `{"items": []}`, http.StatusBadRequest},
		{"no-items", `{}`, http.StatusBadRequest},
		{"over-limit", `{"items": [{}, {}, {}]}`, http.StatusRequestEntityTooLarge},
	} {
		resp, body := postBatch(t, srv, "/eval/batch", tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d: %s", tc.name, resp.StatusCode, tc.want, body)
		}
	}
}
