package web

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func postBatch(t *testing.T, srv *httptest.Server, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestBatchEndpoint(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	resp, body := postBatch(t, srv, "/eval/batch", `{
		"backend": "analytic",
		"items": [
			{"f": 0.5, "fpw": 512},
			{"f": 0.375, "dsp": 0.125, "fpw": 512, "words": 16777216},
			{"serialized": true}
		]
	}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var out batchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Items) != 3 {
		t.Fatalf("got %d items, want 3", len(out.Items))
	}
	for i, it := range out.Items {
		if it.Error != "" || it.Outcome == nil {
			t.Fatalf("item %d: error=%q outcome=%v", i, it.Error, it.Outcome)
		}
		if it.Backend != "analytic" {
			t.Errorf("item %d backend = %q", i, it.Backend)
		}
		if it.Fingerprint == "" {
			t.Errorf("item %d has no fingerprint", i)
		}
		if it.Outcome.Attainable <= 0 {
			t.Errorf("item %d attainable = %v", i, it.Outcome.Attainable)
		}
	}
	if len(out.Items[1].Outcome.IPs) != 3 {
		t.Errorf("three-IP item activated %d IPs", len(out.Items[1].Outcome.IPs))
	}

	// Batch answers must match the point endpoint bitwise: same query,
	// same fingerprint, same attainable.
	point, status := getEval(t, srv, "?backend=analytic&f=0.5&fpw=512")
	if status != http.StatusOK {
		t.Fatalf("point status = %d", status)
	}
	if out.Items[0].Fingerprint != point.Fingerprint {
		t.Error("batch item fingerprints differently than the point query")
	}
	if out.Items[0].Outcome.Attainable != point.Outcome.Attainable {
		t.Errorf("batch attainable %v != point %v", out.Items[0].Outcome.Attainable, point.Outcome.Attainable)
	}
}

// TestBatchPartialFailure pins the per-item error contract: bad items
// report their own errors, good items still answer, and the request as a
// whole succeeds.
func TestBatchPartialFailure(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	resp, body := postBatch(t, srv, "/eval/batch", `{
		"backend": "analytic",
		"items": [
			{"f": 0.5},
			{"f": 2.0},
			{"chip": "nope"},
			{"backend": "nope"},
			{"trials": -1},
			{"words": 0}
		]
	}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 despite bad items: %s", resp.StatusCode, body)
	}
	var out batchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Items) != 6 {
		t.Fatalf("got %d items, want 6", len(out.Items))
	}
	if out.Items[0].Error != "" || out.Items[0].Outcome == nil {
		t.Errorf("good item: error=%q outcome=%v", out.Items[0].Error, out.Items[0].Outcome)
	}
	for i, frag := range map[int]string{
		1: "fraction", 2: "unknown chip", 3: "unknown backend", 4: "trials", 5: "words",
	} {
		it := out.Items[i]
		if it.Outcome != nil {
			t.Errorf("bad item %d produced an outcome", i)
		}
		if !strings.Contains(it.Error, frag) {
			t.Errorf("item %d error %q does not mention %q", i, it.Error, frag)
		}
	}
}

// TestBatchStream pins the NDJSON shape: one result object per line, in
// item order.
func TestBatchStream(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	resp, body := postBatch(t, srv, "/eval/batch?stream=1", `{
		"backend": "analytic",
		"items": [{"f": 0.25}, {"f": 2.0}, {"f": 0.75}]
	}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ndjsonContentType {
		t.Errorf("Content-Type = %q, want %q", ct, ndjsonContentType)
	}
	var items []batchItemResult
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var it batchItemResult
		if err := json.Unmarshal(sc.Bytes(), &it); err != nil {
			t.Fatalf("line %d: %v", len(items), err)
		}
		items = append(items, it)
	}
	if len(items) != 3 {
		t.Fatalf("got %d lines, want 3", len(items))
	}
	if items[0].Outcome == nil || items[2].Outcome == nil {
		t.Error("good items missing outcomes")
	}
	if items[1].Error == "" {
		t.Error("bad middle item reported no error")
	}
	if items[0].Outcome.Attainable == items[2].Outcome.Attainable {
		t.Error("distinct queries answered identically: order lost?")
	}

	// The Accept header selects the same shape.
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/eval/batch",
		strings.NewReader(`{"backend":"analytic","items":[{"f":0.5}]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", ndjsonContentType)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if ct := resp2.Header.Get("Content-Type"); ct != ndjsonContentType {
		t.Errorf("Accept negotiation: Content-Type = %q", ct)
	}
}

func TestBatchRequestErrors(t *testing.T) {
	srv := httptest.NewServer(NewHandler(Options{BatchLimit: 2}))
	defer srv.Close()

	for _, tc := range []struct {
		name, body string
		want       int
	}{
		{"garbage", `{"items": [`, http.StatusBadRequest},
		{"empty", `{"items": []}`, http.StatusBadRequest},
		{"no-items", `{}`, http.StatusBadRequest},
		{"over-limit", `{"items": [{}, {}, {}]}`, http.StatusRequestEntityTooLarge},
	} {
		resp, body := postBatch(t, srv, "/eval/batch", tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d: %s", tc.name, resp.StatusCode, tc.want, body)
		}
	}
}
