package web

import (
	"fmt"
	"html/template"
	"net/http"

	"github.com/gables-model/gables/internal/core"
	"github.com/gables-model/gables/internal/plot"
	"github.com/gables-model/gables/internal/units"
)

// The paper's home page offers interactive visualizations "for both two-IP
// and three-IP SoCs"; this file is the three-IP page, served at /three.

// ThreeParams are the three-IP model inputs, in paper units. IP[0]'s work
// fraction is 1−F1−F2.
type ThreeParams struct {
	PpeakGops  float64
	BpeakGB    float64
	A1, A2     float64
	B0, B1, B2 float64 // GB/s
	F1, F2     float64
	I0, I1, I2 float64 // ops/byte
}

// DefaultThreeParams returns a CPU+GPU+DSP-flavored starting point
// (accelerations and bandwidths shaped like the §IV measurements).
func DefaultThreeParams() ThreeParams {
	return ThreeParams{
		PpeakGops: 7.5, BpeakGB: 30,
		A1: 46.6, A2: 0.4,
		B0: 15.1, B1: 24.4, B2: 5.4,
		F1: 0.6, F2: 0.1,
		I0: 8, I1: 8, I2: 2,
	}
}

// Validate checks ranges. The f1+f2 bound is checked within the model's
// FractionTolerance: a legitimate split like f1=0.9, f2=0.1 sums to
// 1.0000000000000002 in float64 and must not be rejected.
func (p ThreeParams) Validate() error {
	if p.PpeakGops <= 0 || p.BpeakGB <= 0 || p.A1 <= 0 || p.A2 <= 0 ||
		p.B0 <= 0 || p.B1 <= 0 || p.B2 <= 0 {
		return fmt.Errorf("web: hardware parameters must be positive")
	}
	if p.F1 < 0 || p.F2 < 0 || p.F1+p.F2 > 1+core.FractionTolerance {
		return fmt.Errorf("web: fractions must be non-negative with f1+f2 <= 1, got %v + %v", p.F1, p.F2)
	}
	if p.I0 <= 0 || p.I1 <= 0 || p.I2 <= 0 {
		return fmt.Errorf("web: intensities must be positive")
	}
	return nil
}

// EvaluateThree runs the three-IP model.
func EvaluateThree(p ThreeParams) (*Evaluation, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s := &core.SoC{
		Name:            "interactive-3ip",
		Peak:            units.GopsPerSec(p.PpeakGops),
		MemoryBandwidth: units.GBPerSec(p.BpeakGB),
		IPs: []core.IP{
			{Name: "IP[0]", Acceleration: 1, Bandwidth: units.GBPerSec(p.B0)},
			{Name: "IP[1]", Acceleration: p.A1, Bandwidth: units.GBPerSec(p.B1)},
			{Name: "IP[2]", Acceleration: p.A2, Bandwidth: units.GBPerSec(p.B2)},
		},
	}
	m, err := core.New(s)
	if err != nil {
		return nil, err
	}
	// The residual fraction 1-f1-f2 can reconstruct to a tiny negative
	// number (e.g. -2.8e-17 for f1=0.9, f2=0.1), which the model's
	// non-negativity check would reject; clamp drift within tolerance.
	f0 := 1 - p.F1 - p.F2
	if f0 < 0 && f0 >= -core.FractionTolerance {
		f0 = 0
	}
	u := &core.Usecase{
		Name: "interactive",
		Work: []core.Work{
			{Fraction: f0, Intensity: units.Intensity(p.I0)},
			{Fraction: p.F1, Intensity: units.Intensity(p.I1)},
			{Fraction: p.F2, Intensity: units.Intensity(p.I2)},
		},
	}
	//lint:ignore evalboundary the interactive form renders the user's ad-hoc model verbatim (memoized upstream via eval.Key); /eval is the registry-backed endpoint
	res, err := m.Evaluate(u)
	if err != nil {
		return nil, err
	}
	ev := &Evaluation{
		Attainable: res.Attainable.String(),
		Bottleneck: res.Bottleneck.String(),
	}
	terms, _, err := m.PerformanceForm(u)
	if err != nil {
		return nil, err
	}
	for _, t := range terms {
		ev.Terms = append(ev.Terms, termView{Component: t.Component.String(), Bound: t.Perf.String()})
	}
	lo := units.Intensity(minOf(p.I0, p.I1, p.I2) / 16)
	hi := units.Intensity(maxOf(p.I0, p.I1, p.I2) * 16)
	ch, err := plot.GablesChart(m, u, lo, hi, 65)
	if err != nil {
		return nil, err
	}
	svg, err := ch.SVG(860, 480)
	if err != nil {
		return nil, err
	}
	ev.SVG = template.HTML(svg)
	return ev, nil
}

func minOf(vs ...float64) float64 {
	out := vs[0]
	for _, v := range vs[1:] {
		if v < out {
			out = v
		}
	}
	return out
}

func maxOf(vs ...float64) float64 {
	out := vs[0]
	for _, v := range vs[1:] {
		if v > out {
			out = v
		}
	}
	return out
}

type threePage struct {
	Params ThreeParams
	*Evaluation
}

var threeTemplate = template.Must(template.New("three").Parse(`<!DOCTYPE html>
<html><head><title>Gables interactive (three IPs)</title>
<style>
 body { font-family: sans-serif; margin: 2em; max-width: 1000px; }
 fieldset { display: inline-block; vertical-align: top; margin-right: 1em; }
 label { display: block; margin: 0.3em 0; }
 input[type=number] { width: 6em; }
 .result { font-size: 1.2em; margin: 1em 0; }
 table { border-collapse: collapse; } td, th { border: 1px solid #ccc; padding: 0.3em 0.7em; }
 .err { color: #b00; }
</style></head><body>
<h1>Gables: three-IP SoC</h1>
<p>IP[0]'s work fraction is 1 &minus; f1 &minus; f2. <a href="/">two-IP page</a></p>
<form method="GET" action="/three">
 <fieldset><legend>Hardware</legend>
  <label>Ppeak (Gops/s) <input type="number" step="any" name="ppeak" value="{{.Params.PpeakGops}}"></label>
  <label>Bpeak (GB/s) <input type="number" step="any" name="bpeak" value="{{.Params.BpeakGB}}"></label>
  <label>A1 <input type="number" step="any" name="a1" value="{{.Params.A1}}"></label>
  <label>A2 <input type="number" step="any" name="a2" value="{{.Params.A2}}"></label>
  <label>B0 (GB/s) <input type="number" step="any" name="b0" value="{{.Params.B0}}"></label>
  <label>B1 (GB/s) <input type="number" step="any" name="b1" value="{{.Params.B1}}"></label>
  <label>B2 (GB/s) <input type="number" step="any" name="b2" value="{{.Params.B2}}"></label>
 </fieldset>
 <fieldset><legend>Usecase</legend>
  <label>f1 <input type="number" step="any" min="0" max="1" name="f1" value="{{.Params.F1}}"></label>
  <label>f2 <input type="number" step="any" min="0" max="1" name="f2" value="{{.Params.F2}}"></label>
  <label>I0 (ops/B) <input type="number" step="any" name="i0" value="{{.Params.I0}}"></label>
  <label>I1 (ops/B) <input type="number" step="any" name="i1" value="{{.Params.I1}}"></label>
  <label>I2 (ops/B) <input type="number" step="any" name="i2" value="{{.Params.I2}}"></label>
 </fieldset>
 <p><input type="submit" value="Evaluate"></p>
</form>
{{range .FormErrors}}<p class="err">input {{.Field}}={{.Value}} rejected ({{.Reason}}); using the default instead</p>{{end}}
{{if .Err}}<p class="err">{{.Err}}</p>{{else}}
<div class="result">P<sub>attainable</sub> = <b>{{.Attainable}}</b> &mdash; limited by {{.Bottleneck}}</div>
<table><tr><th>component</th><th>scaled-roofline bound</th></tr>
{{range .Terms}}<tr><td>{{.Component}}</td><td>{{.Bound}}</td></tr>{{end}}
</table>
{{.SVG}}
{{end}}
</body></html>`))

// threeHandler serves the three-IP page.
func threeHandler(w http.ResponseWriter, r *http.Request) {
	p, ferrs := parseThreeParams(r)
	ev, err := EvaluateThreeCached(p)
	if err != nil {
		ev = &Evaluation{Err: err.Error()}
	}
	ev.FormErrors = ferrs // after the cache clone: never cached
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := threeTemplate.Execute(w, threePage{Params: p, Evaluation: ev}); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// parseThreeParams reads the three-IP form, reporting each malformed field
// rather than silently keeping its default.
func parseThreeParams(r *http.Request) (ThreeParams, []FormError) {
	p := DefaultThreeParams()
	var errs []FormError
	q := r.URL.Query()
	parseFloatField(q, "ppeak", &p.PpeakGops, &errs)
	parseFloatField(q, "bpeak", &p.BpeakGB, &errs)
	parseFloatField(q, "a1", &p.A1, &errs)
	parseFloatField(q, "a2", &p.A2, &errs)
	parseFloatField(q, "b0", &p.B0, &errs)
	parseFloatField(q, "b1", &p.B1, &errs)
	parseFloatField(q, "b2", &p.B2, &errs)
	parseFloatField(q, "f1", &p.F1, &errs)
	parseFloatField(q, "f2", &p.F2, &errs)
	parseFloatField(q, "i0", &p.I0, &errs)
	parseFloatField(q, "i1", &p.I1, &errs)
	parseFloatField(q, "i2", &p.I2, &errs)
	return p, errs
}
