package web

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// getPage fetches one page off a fresh Handler and returns status + body.
func getPage(t *testing.T, path string) (int, string) {
	t.Helper()
	srv := httptest.NewServer(Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// Malformed numeric inputs used to be silently swallowed (the field kept
// its default and the page gave no hint); both pages must now name the
// rejected field while still rendering a working page from the defaults.
func TestFormErrorsSurfaced(t *testing.T) {
	cases := []struct {
		name, path string
		wantErrs   []string // substrings the page must show
		wantResult bool     // the result block must still render
	}{
		{"two-ip garbage", "/?ppeak=banana", []string{"ppeak=banana", "not a number"}, true},
		{"two-ip inf", "/?bpeak=Inf", []string{"bpeak=Inf", "finite"}, true},
		{"two-ip negative inf", "/?i0=-Inf", []string{"i0=-Inf", "finite"}, true},
		{"two-ip nan", "/?f=NaN", []string{"f=NaN", "finite"}, true},
		{"two-ip multiple", "/?a=x&b0=y", []string{"a=x", "b0=y"}, true},
		{"two-ip empty is fine", "/?ppeak=", nil, true},
		{"two-ip clean", "/?ppeak=50", nil, true},
		{"three-ip garbage", "/three?b2=garbage", []string{"b2=garbage", "not a number"}, true},
		{"three-ip nan", "/three?f1=nan", []string{"f1=nan", "finite"}, true},
		{"three-ip inf", "/three?i2=%2BInf", []string{"finite"}, true},
		{"three-ip empty is fine", "/three?i2=", nil, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := getPage(t, tc.path)
			if status != http.StatusOK {
				t.Fatalf("status = %d, want 200", status)
			}
			for _, want := range tc.wantErrs {
				if !strings.Contains(body, want) {
					t.Errorf("page must report %q; body lacks it", want)
				}
			}
			if tc.wantErrs == nil && strings.Contains(body, "rejected") {
				t.Error("clean submission must not show form errors")
			}
			if tc.wantResult && !strings.Contains(body, "attainable") {
				t.Error("page must still render a result from the defaults")
			}
		})
	}
}

// NaN used to slip through validation entirely: ParseFloat accepts "NaN"
// and NaN fails every `<= 0` comparison, so the model ran on garbage.
// Rejecting non-finite values at the form boundary keeps the defaults.
func TestNonFiniteKeepsDefaults(t *testing.T) {
	req := httptest.NewRequest("GET", "/?ppeak=NaN&bpeak=Inf&f=-Inf", nil)
	p, ferrs := parseParams(req)
	if p != DefaultParams() {
		t.Errorf("non-finite inputs must keep defaults, got %+v", p)
	}
	if len(ferrs) != 3 {
		t.Errorf("want 3 form errors, got %+v", ferrs)
	}

	req = httptest.NewRequest("GET", "/three?a1=NaN&f2=Inf", nil)
	p3, ferrs3 := parseThreeParams(req)
	if p3 != DefaultThreeParams() {
		t.Errorf("non-finite inputs must keep defaults, got %+v", p3)
	}
	if len(ferrs3) != 2 {
		t.Errorf("want 2 form errors, got %+v", ferrs3)
	}
}

// Form errors are presentation state: the cached evaluation for the same
// parameters must not replay a previous request's errors.
func TestFormErrorsNotCached(t *testing.T) {
	ResetCache()
	// First request: garbage field → default params evaluation + error.
	status, body := getPage(t, "/?ppeak=banana")
	if status != http.StatusOK || !strings.Contains(body, "ppeak=banana") {
		t.Fatalf("first request must surface the error (status %d)", status)
	}
	// Second request: same effective params (all defaults), clean form.
	// A poisoned cache entry would replay "ppeak=banana" here.
	status, body = getPage(t, "/")
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if strings.Contains(body, "rejected") {
		t.Error("cache replayed a previous request's form errors")
	}
}
