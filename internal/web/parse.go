package web

import (
	"fmt"
	"math"
	"strconv"

	"github.com/gables-model/gables/internal/eval"
	"github.com/gables-model/gables/internal/kernel"
)

// The one validated numeric parser. PR 5 guarded the HTML form pages
// against non-finite input (strconv.ParseFloat happily accepts "NaN" and
// "Inf", and NaN then slips through every range check because NaN
// comparisons are false); the /eval JSON API grew its own local parser
// without the guard, so ?f=NaN bypassed the fGPU+fDSP > 1 check and
// reached SplitWork. Both surfaces now route through parseFinite /
// parsePositiveInt here: the HTML pages fall back to defaults and report a
// FormError, the JSON endpoints return a 400 naming the field — but the
// acceptance rules are one implementation.

// fieldError rejects one named input; both surfaces render it their way.
type fieldError struct {
	Field  string // input name ("f", "words", ...)
	Value  string // what was submitted
	Reason string // why it was rejected
}

func (e *fieldError) Error() string {
	return fmt.Sprintf("%s=%q %s", e.Field, e.Value, e.Reason)
}

// parseFinite parses a finite float64, rejecting NaN and ±Inf at the
// boundary so no downstream range check has to reason about them.
func parseFinite(name, v string) (float64, error) {
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, &fieldError{Field: name, Value: v, Reason: "not a number"}
	}
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0, &fieldError{Field: name, Value: v, Reason: "must be a finite number"}
	}
	return f, nil
}

// parsePositiveInt parses a strictly positive integer: the /eval sizing
// fields (words, fpw, trials) are counts where zero and negative values
// are never meaningful — words=0 would ask an empty question and
// trials=-1 would underflow the per-kernel loop.
func parsePositiveInt(name, v string) (int, error) {
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, &fieldError{Field: name, Value: v, Reason: "not an integer"}
	}
	if n <= 0 {
		return 0, &fieldError{Field: name, Value: v, Reason: "must be positive"}
	}
	return n, nil
}

// evalQuerySpec is the surface-independent /eval question: the GET query
// string and the batch JSON items both decode into it, so validation and
// query construction live in exactly one place.
type evalQuerySpec struct {
	Chip       string
	F          float64 // GPU work fraction, the Figure 6 x-axis
	DSP        float64 // DSP work fraction (0 = two-IP shape)
	FPW        int     // flops per word (operational intensity knob)
	Words      int     // total array words split across the IPs
	Trials     int     // per-kernel trial count
	Serialized bool    // §V-C exclusive-work form
}

// defaultEvalSpec returns the defaults shared by every /eval surface,
// mirroring the §IV-C harness shape.
func defaultEvalSpec() evalQuerySpec {
	return evalQuerySpec{F: 0.5, FPW: 32, Words: 4 << 20, Trials: eval.DefaultTrials}
}

// buildQuery validates the spec and realizes it as the canonical
// eval.Query: a CPU/GPU(/DSP) work split on a preset chip.
func (s evalQuerySpec) buildQuery() (eval.Query, error) {
	cfg, err := evalChip(s.Chip)
	if err != nil {
		return eval.Query{}, err
	}
	if s.FPW <= 0 {
		return eval.Query{}, fmt.Errorf("fpw must be positive, got %d", s.FPW)
	}
	if s.Words <= 0 {
		return eval.Query{}, fmt.Errorf("words must be positive, got %d", s.Words)
	}
	if s.Trials <= 0 {
		return eval.Query{}, fmt.Errorf("trials must be positive, got %d", s.Trials)
	}
	if s.F < 0 || s.DSP < 0 || s.F+s.DSP > 1 {
		return eval.Query{}, fmt.Errorf("fractions f=%v dsp=%v must be non-negative and sum to at most 1", s.F, s.DSP)
	}

	shares := []eval.Share{{IP: "GPU", Fraction: s.F}}
	if s.DSP > 0 {
		shares = append(shares, eval.Share{IP: "DSP", Fraction: s.DSP})
	}
	// The CPU is last: it absorbs the integer remainder, like the
	// harnesses' historical arithmetic.
	shares = append(shares, eval.Share{IP: "CPU", Fraction: 1 - s.F - s.DSP})
	work, err := eval.SplitWork(cfg, s.Words, s.FPW, kernel.ReadWrite, shares)
	if err != nil {
		return eval.Query{}, err
	}
	return eval.Query{
		Chip:       cfg,
		Work:       work,
		Trials:     s.Trials,
		Serialized: s.Serialized,
	}, nil
}
