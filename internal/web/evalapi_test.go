package web

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func getEval(t *testing.T, srv *httptest.Server, query string) (*evalResponse, int) {
	t.Helper()
	resp, err := http.Get(srv.URL + "/eval" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, resp.StatusCode
	}
	var out evalResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return &out, resp.StatusCode
}

func TestEvalEndpoint(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	// Default query answers with the process-default backend.
	def, status := getEval(t, srv, "")
	if status != http.StatusOK {
		t.Fatalf("default query status = %d", status)
	}
	if def.Backend == "" || def.Fingerprint == "" || def.Outcome == nil {
		t.Fatalf("incomplete response %+v", def)
	}
	if def.Outcome.Attainable <= 0 {
		t.Errorf("attainable = %v, want positive", def.Outcome.Attainable)
	}
	if def.Chip != "snapdragon-835-sim" {
		t.Errorf("chip = %q", def.Chip)
	}

	// Both explicit backends answer the same fingerprint and agree within
	// the differential oracle's per-fixture band.
	an, status := getEval(t, srv, "?backend=analytic&f=0.5&fpw=512")
	if status != http.StatusOK {
		t.Fatalf("analytic status = %d", status)
	}
	sm, status := getEval(t, srv, "?backend=sim&f=0.5&fpw=512")
	if status != http.StatusOK {
		t.Fatalf("sim status = %d", status)
	}
	if an.Fingerprint != sm.Fingerprint {
		t.Error("backends answered different fingerprints for the same query")
	}
	if an.Backend != "analytic" || sm.Backend != "sim" {
		t.Errorf("backends = %q/%q", an.Backend, sm.Backend)
	}
	rel := math.Abs(sm.Outcome.Attainable-an.Outcome.Attainable) / sm.Outcome.Attainable
	if rel > 0.30 {
		t.Errorf("backends disagree by %.1f%% on the web-path query", 100*rel)
	}

	// The three-IP web-path shape (DSP active) keeps bottleneck identity
	// across backends (the corpus asserts this wholesale; this pins the
	// HTTP path).
	an3, status := getEval(t, srv, "?backend=analytic&f=0.375&dsp=0.125&fpw=512&words=16777216")
	if status != http.StatusOK {
		t.Fatalf("three-IP analytic status = %d", status)
	}
	sm3, status := getEval(t, srv, "?backend=sim&f=0.375&dsp=0.125&fpw=512&words=16777216")
	if status != http.StatusOK {
		t.Fatalf("three-IP sim status = %d", status)
	}
	if len(an3.Outcome.IPs) != 3 || len(sm3.Outcome.IPs) != 3 {
		t.Fatalf("three-IP query activated %d/%d IPs, want 3", len(an3.Outcome.IPs), len(sm3.Outcome.IPs))
	}
	if an3.Outcome.Bottleneck != sm3.Outcome.Bottleneck && an3.Outcome.TieRatio < 0.9 {
		t.Errorf("three-IP bottleneck identity disagrees: analytic %v (tie %.2f) vs sim %v",
			an3.Outcome.Bottleneck, an3.Outcome.TieRatio, sm3.Outcome.Bottleneck)
	}

	// Serialized form works through the endpoint.
	ser, status := getEval(t, srv, "?serialized=1&backend=sim")
	if status != http.StatusOK {
		t.Fatalf("serialized status = %d", status)
	}
	if ser.Fingerprint == sm.Fingerprint {
		t.Error("serialized query must fingerprint differently")
	}
}

// TestEvalEndpointSurrogate pins the surrogate backend's HTTP face: an
// in-envelope query is answered by the fitted fast path (Backend
// "surrogate") with a confidence envelope containing sim's answer, and an
// out-of-envelope query routes to sim (Backend "sim", no confidence).
func TestEvalEndpointSurrogate(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	sur, status := getEval(t, srv, "?backend=surrogate&f=0.5&fpw=512")
	if status != http.StatusOK {
		t.Fatalf("surrogate status = %d", status)
	}
	if sur.Backend != "surrogate" {
		t.Fatalf("backend = %q, want the fitted fast path", sur.Backend)
	}
	c := sur.Outcome.Confidence
	if c == nil {
		t.Fatal("in-envelope surrogate answer carries no confidence")
	}
	sm, status := getEval(t, srv, "?backend=sim&f=0.5&fpw=512")
	if status != http.StatusOK {
		t.Fatalf("sim status = %d", status)
	}
	if sur.Fingerprint != sm.Fingerprint {
		t.Error("surrogate answered a different fingerprint than sim")
	}
	if sm.Outcome.Attainable < c.Lo || sm.Outcome.Attainable > c.Hi {
		t.Errorf("sim's %.4g outside the surrogate confidence envelope [%.4g, %.4g]",
			sm.Outcome.Attainable, c.Lo, c.Hi)
	}

	ser, status := getEval(t, srv, "?backend=surrogate&serialized=1")
	if status != http.StatusOK {
		t.Fatalf("serialized surrogate status = %d", status)
	}
	if ser.Backend != "sim" {
		t.Errorf("serialized query answered by %q, want the sim fallback", ser.Backend)
	}
	if ser.Outcome.Confidence != nil {
		t.Error("fallback answer must carry no confidence")
	}
}

func TestEvalEndpointErrors(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	for _, tc := range []struct {
		query string
		want  int
	}{
		{"?backend=nope", http.StatusBadRequest},
		{"?chip=nope", http.StatusBadRequest},
		{"?f=1.5", http.StatusBadRequest},
		{"?f=0.5&dsp=0.75", http.StatusBadRequest},
		{"?fpw=x", http.StatusBadRequest},
		{"?words=-4", http.StatusBadRequest},
		// Non-finite floats must be rejected at the boundary: NaN slips
		// through the fGPU+fDSP range check (NaN comparisons are false)
		// and used to reach SplitWork through /eval's old local parser.
		{"?f=NaN", http.StatusBadRequest},
		{"?f=Inf", http.StatusBadRequest},
		{"?f=-Inf", http.StatusBadRequest},
		{"?dsp=NaN", http.StatusBadRequest},
		// Counts must be strictly positive, rejected at parse time with
		// 400 (not surfaced later as a 422 from the evaluator).
		{"?words=0", http.StatusBadRequest},
		{"?fpw=0", http.StatusBadRequest},
		{"?fpw=-32", http.StatusBadRequest},
		{"?trials=0", http.StatusBadRequest},
		{"?trials=-1", http.StatusBadRequest},
		{"?trials=1.5", http.StatusBadRequest},
	} {
		if _, status := getEval(t, srv, tc.query); status != tc.want {
			t.Errorf("GET /eval%s status = %d, want %d", tc.query, status, tc.want)
		}
	}

	// Field errors name the offending field so clients can fix the query.
	resp, err := http.Get(srv.URL + "/eval?trials=-1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body["error"], "trials") {
		t.Errorf("error %q does not name the field", body["error"])
	}
}

// TestEvalMethodNotAllowed pins the method contract: /eval is GET-only and
// /eval/batch is POST-only, each advertising the allowed method.
func TestEvalMethodNotAllowed(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/eval", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /eval status = %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != http.MethodGet {
		t.Errorf("POST /eval Allow = %q, want %q", allow, http.MethodGet)
	}

	resp, err = http.Get(srv.URL + "/eval/batch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /eval/batch status = %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != http.MethodPost {
		t.Errorf("GET /eval/batch Allow = %q, want %q", allow, http.MethodPost)
	}
}
