package web

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"sync"
)

// Admission control: the evaluation endpoints do real work (a cold sim
// query is milliseconds of discrete-event execution), so under overload the
// server must degrade by policy, not by accident. The admission struct is
// a concurrency limiter with a bounded two-class priority queue in front:
//
//   - at most MaxInFlight evaluations run at once — counting batch
//     fan-out: a /eval/batch request's admission slot covers one
//     evaluation at a time, and every additional parallel worker it runs
//     must win its own slot non-blockingly (tryAcquire), so a batch can
//     never multiply real concurrency past the limit;
//   - excess requests wait in a per-class FIFO queue, and releases grant
//     interactive (point /eval) waiters strictly before batch
//     (/eval/batch) waiters — a human poking the form outranks a sweep;
//   - when a class's queue is full the request is shed immediately with
//     429 and a Retry-After hint, which is the load-shedding contract:
//     bounded queueing delay, never an unbounded backlog.
//
// Counter invariant, pinned by tests: every acquire increments exactly one
// of Admitted (ran immediately), Queued (waited, then ran), Shed (429), or
// Canceled (client gave up while queued).

// Request classes, in grant-priority order.
const (
	classInteractive = iota
	classBatch
	numClasses
)

// Admission limits; Options holds the per-handler configuration.
const (
	// DefaultMaxInFlight bounds concurrent evaluations. Evaluations are
	// CPU-bound, so well past GOMAXPROCS extra concurrency only adds
	// queueing inside the scheduler; 64 leaves headroom for cache-hit
	// requests that finish in microseconds.
	DefaultMaxInFlight = 64
	// DefaultQueueDepth bounds each class's wait queue.
	DefaultQueueDepth = 128
)

// Environment overrides read by Handler(); the gables-web flags take
// precedence by constructing NewHandler explicitly.
const (
	EnvMaxInFlight = "GABLES_MAX_INFLIGHT"
	EnvQueueDepth  = "GABLES_QUEUE_DEPTH"
)

// errShed reports a queue-full rejection.
var errShed = errors.New("web: overloaded: admission queue full")

// AdmissionStats snapshots the limiter's counters for /stats.
type AdmissionStats struct {
	// Admitted counts requests that acquired a slot without waiting.
	Admitted int64 `json:"admitted"`
	// Queued counts requests that waited in a queue and then ran.
	Queued int64 `json:"queued"`
	// Shed counts requests rejected with 429 because their class's
	// queue was full.
	Shed int64 `json:"shed"`
	// Canceled counts requests whose client gave up while queued.
	Canceled int64 `json:"canceled"`
	// InFlight is the current number of running evaluations (gauge).
	InFlight int `json:"in_flight"`
	// QueueDepth is the current total queued waiter count (gauge).
	QueueDepth int `json:"queue_depth"`
}

// waiter is one queued request; grant closes ready with the slot already
// transferred.
type waiter struct {
	ready   chan struct{}
	granted bool
}

// admission is the limiter. The zero value is not usable; construct with
// newAdmission. All methods are safe for concurrent use.
type admission struct {
	max, depth int

	mu       sync.Mutex
	inflight int
	queues   [numClasses][]*waiter
	admitted int64
	queued   int64
	shed     int64
	canceled int64
}

// newAdmission builds a limiter; non-positive limits use the defaults.
func newAdmission(maxInFlight, queueDepth int) *admission {
	if maxInFlight <= 0 {
		maxInFlight = DefaultMaxInFlight
	}
	if queueDepth <= 0 {
		queueDepth = DefaultQueueDepth
	}
	return &admission{max: maxInFlight, depth: queueDepth}
}

// acquire claims an evaluation slot for the class, waiting in its bounded
// queue when the limiter is saturated. It returns a release func that must
// be called exactly once, or an error: errShed when the queue was full,
// the context error when the client gave up first.
func (a *admission) acquire(ctx context.Context, class int) (func(), error) {
	a.mu.Lock()
	if a.inflight < a.max {
		a.inflight++
		a.admitted++
		a.mu.Unlock()
		return a.release, nil
	}
	if len(a.queues[class]) >= a.depth {
		a.shed++
		a.mu.Unlock()
		return nil, errShed
	}
	w := &waiter{ready: make(chan struct{})}
	a.queues[class] = append(a.queues[class], w)
	a.mu.Unlock()

	select {
	case <-w.ready:
		// The granting release counted us as Queued and transferred its
		// slot; we own it now.
		return a.release, nil
	case <-ctx.Done():
		a.mu.Lock()
		if w.granted {
			// Lost the race: a release granted us between ctx firing and
			// the lock. We own a slot nobody will use — hand it on.
			a.mu.Unlock()
			a.release()
			return nil, ctx.Err()
		}
		// Still queued: withdraw so release never sees a dead waiter and
		// the queue-depth gauge stays honest.
		q := a.queues[class]
		for i, other := range q {
			if other == w {
				a.queues[class] = append(q[:i], q[i+1:]...)
				break
			}
		}
		a.canceled++
		a.mu.Unlock()
		return nil, ctx.Err()
	}
}

// tryAcquire claims a slot only when one is immediately free: no
// queueing, no shedding, and no outcome counter — the per-request
// Admitted/Queued/Shed/Canceled invariant counts requests, and an extra
// slot belongs to a request already counted. The batch fan-out charges
// each worker beyond a request's own slot through here, so MaxInFlight
// bounds real evaluation concurrency across point requests, batch
// requests, and their workers together; when nothing is free the batch
// degrades toward sequential on the slot it already holds, which always
// makes progress — holding-while-trying cannot deadlock. The returned
// release behaves exactly like acquire's (it hands the slot to the
// longest-waiting interactive-then-batch waiter before freeing it) and
// must be called exactly once.
func (a *admission) tryAcquire() (func(), bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.inflight >= a.max {
		return nil, false
	}
	a.inflight++
	return a.release, true
}

// release returns a slot: the longest-waiting interactive request is
// granted first, then the longest-waiting batch request, and only when
// both queues are empty does the in-flight count drop.
func (a *admission) release() {
	a.mu.Lock()
	for class := 0; class < numClasses; class++ {
		if q := a.queues[class]; len(q) > 0 {
			w := q[0]
			a.queues[class] = q[1:]
			w.granted = true
			a.queued++
			close(w.ready) // slot transfers to the waiter
			a.mu.Unlock()
			return
		}
	}
	a.inflight--
	a.mu.Unlock()
}

// Stats snapshots the counters.
func (a *admission) Stats() AdmissionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	depth := 0
	for class := 0; class < numClasses; class++ {
		depth += len(a.queues[class])
	}
	return AdmissionStats{
		Admitted:   a.admitted,
		Queued:     a.queued,
		Shed:       a.shed,
		Canceled:   a.canceled,
		InFlight:   a.inflight,
		QueueDepth: depth,
	}
}

// admit wraps an evaluation handler with the limiter. Shed requests get
// 429 with a Retry-After hint; a client that disconnects while queued gets
// nothing (the connection is gone).
func (s *server) admit(class int, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		release, err := s.adm.acquire(r.Context(), class)
		if err != nil {
			if errors.Is(err, errShed) {
				w.Header().Set("Retry-After", "1")
				evalError(w, http.StatusTooManyRequests, errShed)
			}
			return
		}
		defer release()
		h(w, r)
	}
}

// envLimit reads a positive-integer limit from the environment; unset,
// malformed, or non-positive values fall back to def with a warning on
// stderr (a typo'd override that silently reverts is indistinguishable
// from one that worked).
func envLimit(name string, def int) int {
	v := os.Getenv(name)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil || n <= 0 {
		fmt.Fprintf(os.Stderr, "web: ignoring %s=%q: want a positive integer\n", name, v)
		return def
	}
	return n
}
