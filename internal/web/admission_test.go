package web

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/gables-model/gables/internal/eval"
)

// Unit tests drive the limiter directly; the HTTP tests below pin the
// same behavior through the mux with a blocking stub backend.

func TestAdmissionImmediate(t *testing.T) {
	a := newAdmission(2, 4)
	r1, err := a.acquire(context.Background(), classInteractive)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.acquire(context.Background(), classBatch)
	if err != nil {
		t.Fatal(err)
	}
	if s := a.Stats(); s.Admitted != 2 || s.InFlight != 2 || s.QueueDepth != 0 {
		t.Fatalf("stats = %+v", s)
	}
	r1()
	r2()
	if s := a.Stats(); s.InFlight != 0 {
		t.Fatalf("in-flight %d after release", s.InFlight)
	}
}

func TestAdmissionQueueGrant(t *testing.T) {
	a := newAdmission(1, 4)
	release, err := a.acquire(context.Background(), classInteractive)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		r, err := a.acquire(context.Background(), classInteractive)
		if err == nil {
			defer r()
		}
		got <- err
	}()
	waitDepth(t, a, 1)
	release()
	if err := <-got; err != nil {
		t.Fatal(err)
	}
	s := a.Stats()
	if s.Admitted != 1 || s.Queued != 1 || s.Shed != 0 || s.Canceled != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Admitted+s.Queued+s.Shed+s.Canceled != 2 {
		t.Fatalf("counter invariant broken: %+v", s)
	}
}

func TestAdmissionShed(t *testing.T) {
	a := newAdmission(1, 1)
	release, err := a.acquire(context.Background(), classBatch)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	done := make(chan struct{})
	defer close(done)
	go func() {
		r, err := a.acquire(context.Background(), classBatch)
		if err == nil {
			<-done
			r()
		}
	}()
	waitDepth(t, a, 1)
	if _, err := a.acquire(context.Background(), classBatch); !errors.Is(err, errShed) {
		t.Fatalf("err = %v, want errShed", err)
	}
	// The other class's queue has its own bound: an interactive request
	// still queues when only the batch queue is full.
	cancelCtx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := a.acquire(cancelCtx, classInteractive); !errors.Is(err, context.Canceled) {
		t.Fatalf("interactive err = %v, want context.Canceled (queued, not shed)", err)
	}
	s := a.Stats()
	if s.Shed != 1 || s.Canceled != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestAdmissionCancelWhileQueued(t *testing.T) {
	a := newAdmission(1, 4)
	release, err := a.acquire(context.Background(), classInteractive)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() {
		_, err := a.acquire(ctx, classInteractive)
		got <- err
	}()
	waitDepth(t, a, 1)
	cancel()
	if err := <-got; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	s := a.Stats()
	if s.Canceled != 1 || s.QueueDepth != 0 {
		t.Fatalf("stats = %+v (withdrawn waiter must leave the queue)", s)
	}
	release()
	if s := a.Stats(); s.InFlight != 0 {
		t.Fatalf("in-flight %d: release granted a dead waiter?", s.InFlight)
	}
}

// TestAdmissionPriority pins the class order at the limiter level: a
// release grants the interactive queue head even when a batch waiter has
// been waiting longer.
func TestAdmissionPriority(t *testing.T) {
	a := newAdmission(1, 4)
	release, err := a.acquire(context.Background(), classInteractive)
	if err != nil {
		t.Fatal(err)
	}
	order := make(chan string, 2)
	var wg sync.WaitGroup
	start := func(class int, tag string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := a.acquire(context.Background(), class)
			if err != nil {
				t.Errorf("%s: %v", tag, err)
				return
			}
			order <- tag
			r()
		}()
	}
	start(classBatch, "batch") // batch enqueues first...
	waitDepth(t, a, 1)
	start(classInteractive, "interactive")
	waitDepth(t, a, 2)
	release() // ...but interactive is granted first
	wg.Wait()
	if first := <-order; first != "interactive" {
		t.Errorf("first grant went to %q, want interactive", first)
	}
}

func waitDepth(t *testing.T, a *admission, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for a.Stats().QueueDepth != want {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth never reached %d (stats %+v)", want, a.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

// stubBackend blocks every Evaluate on gate and reports each call's
// trials value on started, so HTTP tests can hold the limiter saturated
// and observe the order evaluations are let through.
type stubBackend struct {
	started chan int
	gate    chan struct{}
}

func (s *stubBackend) Meta() eval.Meta {
	return eval.Meta{Name: "stub", Fidelity: eval.FidelityAnalytic, Description: "blocking test stub"}
}
func (s *stubBackend) Supports(eval.Query) error { return nil }
func (s *stubBackend) Evaluate(ctx context.Context, q eval.Query) (*eval.Outcome, error) {
	s.started <- q.Trials
	select {
	case <-s.gate:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return &eval.Outcome{Backend: "stub", Attainable: 1, TotalFlops: 1}, nil
}

// serveStats fetches /stats and returns the admission section.
func serveStats(t *testing.T, srv *httptest.Server) AdmissionStats {
	t.Helper()
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Admission AdmissionStats `json:"admission"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap.Admission
}

func waitHTTPDepth(t *testing.T, srv *httptest.Server, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for serveStats(t, srv).QueueDepth != want {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth never reached %d (stats %+v)", want, serveStats(t, srv))
		}
		time.Sleep(time.Millisecond)
	}
}

// TestOverloadSheds pins the HTTP load-shedding contract end to end:
// with the one slot held and the queue full, the next request gets 429
// with a Retry-After hint, and the counters account for every request
// exactly once.
func TestOverloadSheds(t *testing.T) {
	stub := &stubBackend{started: make(chan int, 8), gate: make(chan struct{})}
	eval.Register("stub-shed", func() (eval.Evaluator, error) { return stub, nil })
	srv := httptest.NewServer(NewHandler(Options{MaxInFlight: 1, QueueDepth: 1}))
	defer srv.Close()

	var wg sync.WaitGroup
	slowGet := func(q string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(srv.URL + "/eval" + q)
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	slowGet("?backend=stub-shed&trials=5") // occupies the slot
	<-stub.started
	slowGet("?backend=stub-shed&trials=6") // queues
	waitHTTPDepth(t, srv, 1)

	resp, err := http.Get(srv.URL + "/eval?backend=stub-shed&trials=7") // shed
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 carries no Retry-After hint")
	}

	close(stub.gate) // let the occupant and the queued request finish
	<-stub.started
	wg.Wait()

	s := serveStats(t, srv)
	if s.Admitted != 1 || s.Queued != 1 || s.Shed != 1 || s.Canceled != 0 {
		t.Fatalf("stats = %+v, want exactly one of each outcome per request", s)
	}
	if s.InFlight != 0 || s.QueueDepth != 0 {
		t.Fatalf("gauges not drained: %+v", s)
	}
}

// TestBatchFanoutBounded pins the fix for the review's concurrency-bound
// finding: a /eval/batch request's point-wise fan-out must charge every
// worker beyond its own admission slot against MaxInFlight, so real
// evaluation concurrency never reaches MaxInFlight × BatchWorkers.
func TestBatchFanoutBounded(t *testing.T) {
	stub := &stubBackend{started: make(chan int, 16), gate: make(chan struct{})}
	eval.Register("stub-fanout", func() (eval.Evaluator, error) { return stub, nil })
	srv := httptest.NewServer(NewHandler(Options{MaxInFlight: 2, QueueDepth: 4, BatchWorkers: 4}))
	defer srv.Close()

	respc := make(chan *http.Response, 1)
	go func() {
		resp, err := http.Post(srv.URL+"/eval/batch", "application/json",
			strings.NewReader(`{"backend":"stub-fanout","items":[{"trials":1},{"trials":2},{"trials":3},{"trials":4}]}`))
		if err != nil {
			respc <- nil
			return
		}
		respc <- resp
	}()

	// The request's own slot plus one free slot: exactly two evaluations
	// may run, despite BatchWorkers = 4 and four pending items.
	<-stub.started
	<-stub.started
	select {
	case trials := <-stub.started:
		t.Fatalf("a third evaluation (trials=%d) started with MaxInFlight=2: fan-out is not charged", trials)
	case <-time.After(100 * time.Millisecond):
	}

	close(stub.gate) // let the two workers drain all four items
	resp := <-respc
	if resp == nil {
		t.Fatal("batch request failed")
	}
	var out batchResponse
	err := json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Items) != 4 {
		t.Fatalf("got %d items, want 4", len(out.Items))
	}
	for i, it := range out.Items {
		if it.Error != "" || it.Outcome == nil {
			t.Errorf("item %d: error=%q outcome=%v", i, it.Error, it.Outcome)
		}
	}
	if s := serveStats(t, srv); s.InFlight != 0 {
		t.Fatalf("in-flight %d after the batch drained: extra slots leaked", s.InFlight)
	}
}

// TestOverloadPriorityHTTP pins the class priority through the mux: with
// the slot held, a queued interactive /eval is evaluated before a batch
// request that has been queued longer.
func TestOverloadPriorityHTTP(t *testing.T) {
	stub := &stubBackend{started: make(chan int, 8), gate: make(chan struct{})}
	eval.Register("stub-prio", func() (eval.Evaluator, error) { return stub, nil })
	srv := httptest.NewServer(NewHandler(Options{MaxInFlight: 1, QueueDepth: 4}))
	defer srv.Close()

	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // occupant
		defer wg.Done()
		resp, err := http.Get(srv.URL + "/eval?backend=stub-prio&trials=5")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-stub.started

	go func() { // batch queues first
		defer wg.Done()
		resp, err := http.Post(srv.URL+"/eval/batch", "application/json",
			strings.NewReader(`{"backend":"stub-prio","items":[{"trials":9}]}`))
		if err == nil {
			resp.Body.Close()
		}
	}()
	waitHTTPDepth(t, srv, 1)

	go func() { // interactive queues second
		defer wg.Done()
		resp, err := http.Get(srv.URL + "/eval?backend=stub-prio&trials=7")
		if err == nil {
			resp.Body.Close()
		}
	}()
	waitHTTPDepth(t, srv, 2)

	stub.gate <- struct{}{} // finish the occupant; a slot frees up
	next := <-stub.started  // whoever was granted evaluates next
	if next != 7 {
		t.Errorf("next evaluation was trials=%d, want 7 (interactive before batch)", next)
	}
	stub.gate <- struct{}{}
	last := <-stub.started
	if last != 9 {
		t.Errorf("last evaluation was trials=%d, want 9 (the batch item)", last)
	}
	stub.gate <- struct{}{}
	wg.Wait()

	s := serveStats(t, srv)
	if got := s.Admitted + s.Queued + s.Shed + s.Canceled; got != 3 {
		t.Fatalf("outcome counters sum to %d for 3 requests: %+v", got, s)
	}
}
