package web

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/gables-model/gables/internal/simcache"
)

// The /simcache/ peer surface accepts cache pushes (PUT), so exposing it
// is an operator decision, not a default: unmounted unless
// Options.ServePeer, and bearer-token-guarded when Options.PeerToken is
// set. These tests pin that gating through the real mux.

func peerDo(t *testing.T, srv *httptest.Server, method, key, body, token string) int {
	t.Helper()
	req, err := http.NewRequest(method, srv.URL+simcache.PeerPathPrefix+key, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestPeerSurfaceNotMountedByDefault pins the high-severity review fix:
// a handler that never opted into peer serving must not expose the
// sim-run cache's PUT surface to arbitrary clients.
func TestPeerSurfaceNotMountedByDefault(t *testing.T) {
	srv := httptest.NewServer(NewHandler(Options{}))
	defer srv.Close()

	if got := peerDo(t, srv, http.MethodPut, "webpeeroptout", "{}", ""); got != http.StatusNotFound {
		t.Errorf("PUT on unmounted surface: status = %d, want 404", got)
	}
	if got := peerDo(t, srv, http.MethodGet, "webpeeroptout", "", ""); got != http.StatusNotFound {
		t.Errorf("GET on unmounted surface: status = %d, want 404", got)
	}
}

// TestPeerSurfaceOptIn pins the enabled shape: with ServePeer the surface
// serves peers, and with PeerToken only authenticated peers.
func TestPeerSurfaceOptIn(t *testing.T) {
	srv := httptest.NewServer(NewHandler(Options{ServePeer: true}))
	defer srv.Close()

	if got := peerDo(t, srv, http.MethodPut, "webpeeroptin", "{}", ""); got != http.StatusNoContent {
		t.Fatalf("PUT on mounted surface: status = %d, want 204", got)
	}
	if got := peerDo(t, srv, http.MethodGet, "webpeeroptin", "", ""); got != http.StatusOK {
		t.Errorf("GET of pushed entry: status = %d, want 200", got)
	}

	guarded := httptest.NewServer(NewHandler(Options{ServePeer: true, PeerToken: "tok"}))
	defer guarded.Close()
	if got := peerDo(t, guarded, http.MethodPut, "webpeerauth", "{}", ""); got != http.StatusUnauthorized {
		t.Errorf("unauthenticated PUT on guarded surface: status = %d, want 401", got)
	}
	if got := peerDo(t, guarded, http.MethodPut, "webpeerauth", "{}", "tok"); got != http.StatusNoContent {
		t.Errorf("authenticated PUT on guarded surface: status = %d, want 204", got)
	}
}
