package web

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"github.com/gables-model/gables/internal/simcache"
)

func TestEvaluateCachedMatchesDirect(t *testing.T) {
	ResetCache()
	defer ResetCache()

	p := DefaultParams()
	direct, err := Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := EvaluateCached(p)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := EvaluateCached(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, cold) {
		t.Error("cold cached evaluation differs from direct")
	}
	if !reflect.DeepEqual(direct, warm) {
		t.Error("warm cached evaluation differs from direct")
	}
	s := CacheStats()
	if s.Misses != 1 || s.Hits != 1 {
		t.Errorf("stats = %+v, want 1 miss then 1 hit", s)
	}

	// Returned pages are private copies: mutating one must not poison
	// later hits.
	warm.Attainable = "poisoned"
	if len(warm.Terms) > 0 {
		warm.Terms[0].Component = "poisoned"
	}
	again, err := EvaluateCached(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, again) {
		t.Error("cache entry was mutated through a returned page")
	}
}

func TestEvaluateCachedDistinguishesPages(t *testing.T) {
	ResetCache()
	defer ResetCache()

	if _, err := EvaluateCached(DefaultParams()); err != nil {
		t.Fatal(err)
	}
	if _, err := EvaluateThreeCached(DefaultThreeParams()); err != nil {
		t.Fatal(err)
	}
	s := CacheStats()
	if s.Misses != 2 || s.Hits != 0 || s.Entries != 2 {
		t.Errorf("stats = %+v, want two distinct misses (scoped keys)", s)
	}
}

func TestEvaluateCachedErrorsNotCached(t *testing.T) {
	ResetCache()
	defer ResetCache()

	bad := DefaultParams()
	bad.F = 5
	for i := 0; i < 2; i++ {
		if _, err := EvaluateCached(bad); err == nil {
			t.Fatal("invalid params must error")
		}
	}
	s := CacheStats()
	if s.Entries != 0 || s.Misses != 2 {
		t.Errorf("stats = %+v, want errors recomputed and never stored", s)
	}
}

func TestStatsEndpoint(t *testing.T) {
	ResetCache()
	defer ResetCache()

	srv := httptest.NewServer(Handler())
	defer srv.Close()

	// Two identical submissions: one miss, one hit.
	for i := 0; i < 2; i++ {
		resp, err := http.Get(srv.URL + "/")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var snapshot struct {
		Web       simcache.Stats   `json:"web_eval"`
		Sim       simcache.Stats   `json:"sim_runs"`
		Surrogate *json.RawMessage `json:"surrogate"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snapshot); err != nil {
		t.Fatal(err)
	}
	if snapshot.Web.Misses != 1 || snapshot.Web.Hits != 1 || snapshot.Web.Entries != 1 {
		t.Errorf("web stats = %+v, want 1 miss + 1 hit", snapshot.Web)
	}
	if snapshot.Surrogate == nil {
		t.Error("stats payload carries no surrogate section")
	}
}
