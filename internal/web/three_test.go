package web

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestEvaluateThreeDefaults(t *testing.T) {
	ev, err := EvaluateThree(DefaultThreeParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Terms) != 4 { // three IPs + memory
		t.Errorf("terms = %d, want 4", len(ev.Terms))
	}
	if !strings.Contains(string(ev.SVG), "</svg>") {
		t.Error("SVG missing")
	}
	if ev.Attainable == "" || ev.Bottleneck == "" {
		t.Error("result fields missing")
	}
}

func TestEvaluateThreeValidation(t *testing.T) {
	bad := DefaultThreeParams()
	bad.F1, bad.F2 = 0.7, 0.7
	if _, err := EvaluateThree(bad); err == nil {
		t.Error("f1+f2 > 1 must be rejected")
	}
	bad = DefaultThreeParams()
	bad.A2 = 0
	if _, err := EvaluateThree(bad); err == nil {
		t.Error("zero acceleration must be rejected")
	}
	bad = DefaultThreeParams()
	bad.I2 = -1
	if _, err := EvaluateThree(bad); err == nil {
		t.Error("negative intensity must be rejected")
	}
}

// TestEvaluateThreeFullSplit is the float-edge regression: f1=0.9, f2=0.1
// sums to 1.0000000000000002 in float64 and makes the residual fraction
// 1-f1-f2 = -2.8e-17. Both must be accepted as the legitimate "no work on
// IP[0]" split, not rejected by strict comparisons.
func TestEvaluateThreeFullSplit(t *testing.T) {
	p := DefaultThreeParams()
	p.F1, p.F2 = 0.9, 0.1
	ev, err := EvaluateThree(p)
	if err != nil {
		t.Fatalf("f1=0.9 f2=0.1 rejected: %v", err)
	}
	if len(ev.Terms) != 3 {
		t.Errorf("terms = %d, want 3 (IP[0] idle, two active IPs + memory)", len(ev.Terms))
	}
	// The same split must survive the HTTP path.
	srv := httptest.NewServer(Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/three?f1=0.9&f2=0.1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if strings.Contains(string(body), "fractions must be non-negative") {
		t.Error("handler rejected the f1=0.9, f2=0.1 split")
	}
	if !strings.Contains(string(body), "</svg>") {
		t.Error("handler did not render a result chart for the split")
	}
}

func TestEvaluateThreeIdleIP(t *testing.T) {
	// f2 = 0 leaves the DSP idle: only 3 terms.
	p := DefaultThreeParams()
	p.F2 = 0
	ev, err := EvaluateThree(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Terms) != 3 {
		t.Errorf("terms = %d, want 3 with an idle IP", len(ev.Terms))
	}
}

func TestThreeHandler(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/three")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	html := string(body)
	for _, want := range []string{"three-IP", "IP[2]", "</svg>"} {
		if !strings.Contains(html, want) {
			t.Errorf("page missing %q", want)
		}
	}

	// Bad parameters render an error, not a 500.
	resp2, err := http.Get(srv.URL + "/three?f1=0.9&f2=0.9")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body2, _ := io.ReadAll(resp2.Body)
	// Note: "+" is HTML-escaped in the rendered message.
	if !strings.Contains(string(body2), "fractions must be non-negative") {
		t.Error("error message missing")
	}
}

func TestTwoPageLinksToThree(t *testing.T) {
	// Cross-navigation: the three-IP page links back to "/".
	srv := httptest.NewServer(Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/three")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), `href="/"`) {
		t.Error("three-IP page must link to the two-IP page")
	}
}
