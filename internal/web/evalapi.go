package web

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"

	"github.com/gables-model/gables/internal/eval"
	"github.com/gables-model/gables/internal/sim"
)

// /eval exposes the unified evaluator as a JSON API: one SoC+work query,
// answered by a registry-selected backend. Unlike the HTML pages — which
// render the closed-form model over free-form hardware parameters — this
// endpoint works on the simulated chip presets, so the same question can
// be answered at either fidelity (?backend=analytic|sim|auto) and the
// response records which backend produced the number. /eval/batch
// (batch.go) answers arrays of the same question shape.

// evalResponse is the /eval payload.
type evalResponse struct {
	// Chip and Backend echo the resolved query.
	Chip    string `json:"chip"`
	Backend string `json:"backend"`
	// Fingerprint is the canonical query identity (eval.Fingerprint).
	Fingerprint string `json:"fingerprint"`
	// Outcome is the evaluator's answer.
	Outcome *eval.Outcome `json:"outcome"`
}

// evalChip resolves a preset name; the default is the calibrated 835.
func evalChip(name string) (sim.Config, error) {
	switch name {
	case "", "snapdragon835":
		return sim.Snapdragon835(), nil
	case "snapdragon821":
		return sim.Snapdragon821(), nil
	case "snapdragon835x":
		return sim.Snapdragon835Extended(), nil
	}
	return sim.Config{}, fmt.Errorf("unknown chip %q (have snapdragon835, snapdragon821, snapdragon835x)", name)
}

// evalHandler answers GET /eval.
func (s *server) evalHandler(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		evalError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed on /eval (use GET; POST /eval/batch for arrays)", r.Method))
		return
	}
	q, err := parseEvalQuery(r)
	if err != nil {
		evalError(w, http.StatusBadRequest, err)
		return
	}
	ev, err := resolveBackend(r.URL.Query().Get("backend"))
	if err != nil {
		evalError(w, http.StatusBadRequest, err)
		return
	}
	o, err := ev.Evaluate(r.Context(), q)
	if err != nil {
		evalError(w, http.StatusUnprocessableEntity, err)
		return
	}
	fp, err := eval.Fingerprint(q)
	if err != nil {
		evalError(w, http.StatusInternalServerError, err)
		return
	}
	// Encode into a buffer first: an encoding failure after the first
	// body byte would otherwise truncate a committed 200 response.
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(evalResponse{
		Chip: q.Chip.Name, Backend: o.Backend, Fingerprint: fp, Outcome: o,
	}); err != nil {
		evalError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(buf.Bytes())
}

// resolveBackend maps a request's backend name to an evaluator: the
// process default when empty, the registry otherwise.
func resolveBackend(name string) (eval.Evaluator, error) {
	if name == "" {
		return eval.Default(), nil
	}
	return eval.Resolve(name)
}

// parseEvalQuery builds the eval.Query from the request's query string;
// all numeric fields go through the shared validated parsers (parse.go),
// so NaN/Inf and non-positive counts are rejected with the field named.
func parseEvalQuery(r *http.Request) (eval.Query, error) {
	form := r.URL.Query()
	spec := defaultEvalSpec()
	spec.Chip = form.Get("chip")
	spec.Serialized = form.Get("serialized") == "1"

	var err error
	for _, f := range []struct {
		name string
		dst  *float64
	}{{"f", &spec.F}, {"dsp", &spec.DSP}} {
		if v := form.Get(f.name); v != "" {
			if *f.dst, err = parseFinite(f.name, v); err != nil {
				return eval.Query{}, err
			}
		}
	}
	for _, f := range []struct {
		name string
		dst  *int
	}{{"fpw", &spec.FPW}, {"words", &spec.Words}, {"trials", &spec.Trials}} {
		if v := form.Get(f.name); v != "" {
			if *f.dst, err = parsePositiveInt(f.name, v); err != nil {
				return eval.Query{}, err
			}
		}
	}
	return spec.buildQuery()
}

// evalError reports an /eval failure as JSON.
func evalError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
