package web

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"github.com/gables-model/gables/internal/eval"
	"github.com/gables-model/gables/internal/kernel"
	"github.com/gables-model/gables/internal/sim"
)

// /eval exposes the unified evaluator as a JSON API: one SoC+work query,
// answered by a registry-selected backend. Unlike the HTML pages — which
// render the closed-form model over free-form hardware parameters — this
// endpoint works on the simulated chip presets, so the same question can
// be answered at either fidelity (?backend=analytic|sim|auto) and the
// response records which backend produced the number.

// evalResponse is the /eval payload.
type evalResponse struct {
	// Chip and Backend echo the resolved query.
	Chip    string `json:"chip"`
	Backend string `json:"backend"`
	// Fingerprint is the canonical query identity (eval.Fingerprint).
	Fingerprint string `json:"fingerprint"`
	// Outcome is the evaluator's answer.
	Outcome *eval.Outcome `json:"outcome"`
}

// evalChip resolves a preset name; the default is the calibrated 835.
func evalChip(name string) (sim.Config, error) {
	switch name {
	case "", "snapdragon835":
		return sim.Snapdragon835(), nil
	case "snapdragon821":
		return sim.Snapdragon821(), nil
	case "snapdragon835x":
		return sim.Snapdragon835Extended(), nil
	}
	return sim.Config{}, fmt.Errorf("unknown chip %q (have snapdragon835, snapdragon821, snapdragon835x)", name)
}

// evalHandler answers GET /eval.
func evalHandler(w http.ResponseWriter, r *http.Request) {
	q, err := parseEvalQuery(r)
	if err != nil {
		evalError(w, http.StatusBadRequest, err)
		return
	}
	name := r.URL.Query().Get("backend")
	var ev eval.Evaluator
	if name == "" {
		ev = eval.Default()
	} else if ev, err = eval.Resolve(name); err != nil {
		evalError(w, http.StatusBadRequest, err)
		return
	}
	o, err := ev.Evaluate(r.Context(), q)
	if err != nil {
		evalError(w, http.StatusUnprocessableEntity, err)
		return
	}
	fp, err := eval.Fingerprint(q)
	if err != nil {
		evalError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(evalResponse{
		Chip: q.Chip.Name, Backend: o.Backend, Fingerprint: fp, Outcome: o,
	}); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// parseEvalQuery builds the eval.Query from the request: a CPU/GPU(/DSP)
// work split on a preset chip, mirroring the §IV-C harness shape.
func parseEvalQuery(r *http.Request) (eval.Query, error) {
	form := r.URL.Query()
	cfg, err := evalChip(form.Get("chip"))
	if err != nil {
		return eval.Query{}, err
	}

	parseF := func(name string, def float64) (float64, error) {
		v := form.Get(name)
		if v == "" {
			return def, nil
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return 0, fmt.Errorf("%s=%q is not a number", name, v)
		}
		return f, nil
	}
	parseI := func(name string, def int) (int, error) {
		v := form.Get(name)
		if v == "" {
			return def, nil
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return 0, fmt.Errorf("%s=%q is not an integer", name, v)
		}
		return n, nil
	}

	fGPU, err := parseF("f", 0.5) // GPU work fraction, the Figure 6 x-axis
	if err != nil {
		return eval.Query{}, err
	}
	fDSP, err := parseF("dsp", 0)
	if err != nil {
		return eval.Query{}, err
	}
	fpw, err := parseI("fpw", 32)
	if err != nil {
		return eval.Query{}, err
	}
	words, err := parseI("words", 4<<20)
	if err != nil {
		return eval.Query{}, err
	}
	trials, err := parseI("trials", eval.DefaultTrials)
	if err != nil {
		return eval.Query{}, err
	}
	if fGPU < 0 || fDSP < 0 || fGPU+fDSP > 1 {
		return eval.Query{}, fmt.Errorf("fractions f=%v dsp=%v must be non-negative and sum to at most 1", fGPU, fDSP)
	}

	shares := []eval.Share{{IP: "GPU", Fraction: fGPU}}
	if fDSP > 0 {
		shares = append(shares, eval.Share{IP: "DSP", Fraction: fDSP})
	}
	// The CPU is last: it absorbs the integer remainder, like the
	// harnesses' historical arithmetic.
	shares = append(shares, eval.Share{IP: "CPU", Fraction: 1 - fGPU - fDSP})
	work, err := eval.SplitWork(cfg, words, fpw, kernel.ReadWrite, shares)
	if err != nil {
		return eval.Query{}, err
	}
	return eval.Query{
		Chip:       cfg,
		Work:       work,
		Trials:     trials,
		Serialized: form.Get("serialized") == "1",
	}, nil
}

// evalError reports an /eval failure as JSON.
func evalError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
