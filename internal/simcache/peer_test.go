package simcache

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// peerServer serves one cache's entries the way gables-web does: the peer
// handler mounted at PeerPathPrefix.
func peerServer(t *testing.T, c *Cache[int]) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.Handle(PeerPathPrefix, PeerHTTPHandler(c))
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// TestPeerTierHit pins the tier order and counter semantics: a key resident
// on the peer is served as exactly one PeerHit — the local computation
// never runs — and lands in local memory for subsequent plain Hits.
func TestPeerTierHit(t *testing.T) {
	a := New[int](Options{Capacity: 8})
	mustGet(t, a, "shared-key", func() (int, error) { return 77, nil })

	b := New[int](Options{Capacity: 8})
	b.SetPeer(peerServer(t, a).URL)

	v, err := b.Get("shared-key", func() (int, error) {
		return 0, fmt.Errorf("computed locally despite a peer entry")
	})
	if err != nil || v != 77 {
		t.Fatalf("Get via peer = %d, %v; want 77", v, err)
	}
	wantStats(t, b, Stats{PeerHits: 1, Entries: 1})

	// Now resident: a repeat is a plain memory hit, not another fetch.
	mustGet(t, b, "shared-key", func() (int, error) { return 0, fmt.Errorf("recomputed") })
	wantStats(t, b, Stats{Hits: 1, PeerHits: 1, Entries: 1})
}

// TestPeerTierSoftFail pins the degradation contract: an unreachable peer
// costs nothing but the failed lookup — the Get computes and counts a miss.
func TestPeerTierSoftFail(t *testing.T) {
	c := New[int](Options{Capacity: 8})
	c.SetPeer("http://127.0.0.1:1") // reserved port: connection refused

	v := mustGet(t, c, "k", func() (int, error) { return 5, nil })
	if v != 5 {
		t.Fatalf("Get = %d, want 5", v)
	}
	wantStats(t, c, Stats{Misses: 1, Entries: 1})
}

// TestPeerStorePropagates pins the write-back half: a fresh computation is
// pushed to the peer, so the peer can later serve it from memory.
func TestPeerStorePropagates(t *testing.T) {
	a := New[int](Options{Capacity: 8})
	b := New[int](Options{Capacity: 8})
	b.SetPeer(peerServer(t, a).URL)

	mustGet(t, b, "pushed", func() (int, error) { return 9, nil })
	b.FlushPeerStores() // push-backs are asynchronous; wait before observing
	if v, ok := a.Lookup("pushed"); !ok || v != 9 {
		t.Fatalf("peer Lookup = %d, %v; want the pushed entry", v, ok)
	}
	// The push must not touch the peer's per-Get counters.
	if s := a.Stats(); s.Hits != 0 || s.Misses != 0 || s.PeerHits != 0 || s.Entries != 1 {
		t.Fatalf("peer stats = %+v, want only the entry", s)
	}
}

// TestPeerFleetDedup is the fleet-wide contract the tier exists for: two
// mutually-peered replicas running an overlapping query mix converge on one
// computation per key — the second replica's miss count stays zero.
func TestPeerFleetDedup(t *testing.T) {
	a := New[int](Options{Capacity: 64})
	b := New[int](Options{Capacity: 64})
	a.SetPeer(peerServer(t, b).URL)
	b.SetPeer(peerServer(t, a).URL)

	const n = 16
	for i := 0; i < n; i++ {
		i := i
		mustGet(t, a, fmt.Sprintf("grid-%d", i), func() (int, error) { return i * i, nil })
	}
	a.FlushPeerStores() // push-backs are asynchronous; let B's memory warm
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("grid-%d", i)
		v, err := b.Get(key, func() (int, error) {
			return 0, fmt.Errorf("replica B recomputed %s", key)
		})
		if err != nil || v != i*i {
			t.Fatalf("replica B Get(%s) = %d, %v; want %d", key, v, err, i*i)
		}
	}
	sa, sb := a.Stats(), b.Stats()
	if sa.Misses != n {
		t.Errorf("replica A misses = %d, want %d (it computed the mix)", sa.Misses, n)
	}
	// B never simulates: every lookup is served from memory (warmed by
	// A's write-backs) or from the peer fetch path.
	if sb.Misses != 0 || sb.Hits+sb.PeerHits != n {
		t.Errorf("replica B stats = %+v, want 0 misses and %d hits+peer hits (fleet dedup)", sb, n)
	}
}

// TestPeerHandler pins the serving surface: resident keys are served as
// JSON, absent keys 404, unsafe keys 400, other methods 405 with Allow.
func TestPeerHandler(t *testing.T) {
	c := New[int](Options{Capacity: 8})
	mustGet(t, c, "present", func() (int, error) { return 3, nil })
	srv := peerServer(t, c)

	for _, tc := range []struct {
		method, path string
		body         string
		want         int
	}{
		{http.MethodGet, PeerPathPrefix + "present", "", http.StatusOK},
		{http.MethodGet, PeerPathPrefix + "absent", "", http.StatusNotFound},
		{http.MethodGet, PeerPathPrefix + "not%2Fsafe", "", http.StatusBadRequest},
		{http.MethodPut, PeerPathPrefix + "pushed", "11", http.StatusNoContent},
		{http.MethodPut, PeerPathPrefix + "garbage", "{", http.StatusBadRequest},
		{http.MethodPost, PeerPathPrefix + "present", "", http.StatusMethodNotAllowed},
	} {
		req, err := http.NewRequest(tc.method, srv.URL+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s %s status = %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
		}
	}
	if v, ok := c.Lookup("pushed"); !ok || v != 11 {
		t.Errorf("PUT entry Lookup = %d, %v; want 11", v, ok)
	}
}

// TestPeerAuth pins the bearer-token contract in both directions: a
// token-protected surface rejects unauthenticated and wrong-token
// requests with 401, and a client configured with the matching token is
// served normally (lookups and push-backs both carry it).
func TestPeerAuth(t *testing.T) {
	const token = "fleet-secret"
	a := New[int](Options{Capacity: 8})
	mustGet(t, a, "guarded", func() (int, error) { return 21, nil })
	mux := http.NewServeMux()
	mux.Handle(PeerPathPrefix, PeerAuthHTTPHandler(a, token))
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	for name, hdr := range map[string]string{"none": "", "wrong": "Bearer nope"} {
		req, err := http.NewRequest(http.MethodGet, srv.URL+PeerPathPrefix+"guarded", nil)
		if err != nil {
			t.Fatal(err)
		}
		if hdr != "" {
			req.Header.Set("Authorization", hdr)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnauthorized {
			t.Errorf("%s token: status = %d, want 401", name, resp.StatusCode)
		}
	}

	// Without the token the requesting side soft-fails to computing...
	noAuth := New[int](Options{Capacity: 8})
	noAuth.SetPeer(srv.URL)
	mustGet(t, noAuth, "guarded", func() (int, error) { return -1, nil })
	wantStats(t, noAuth, Stats{Misses: 1, Entries: 1})

	// ...and with it, lookups and push-backs work end to end.
	b := New[int](Options{Capacity: 8})
	b.SetPeer(srv.URL)
	b.SetPeerToken(token)
	v, err := b.Get("guarded", func() (int, error) {
		return 0, fmt.Errorf("computed locally despite an authorized peer entry")
	})
	if err != nil || v != 21 {
		t.Fatalf("authorized Get = %d, %v; want 21", v, err)
	}
	wantStats(t, b, Stats{PeerHits: 1, Entries: 1})
	mustGet(t, b, "pushed-auth", func() (int, error) { return 34, nil })
	b.FlushPeerStores()
	if v, ok := a.Lookup("pushed-auth"); !ok || v != 34 {
		t.Fatalf("authorized push-back Lookup = %d, %v; want 34", v, ok)
	}
}

// TestPeerBreaker pins the outage behavior: consecutive transport
// failures open the circuit breaker, so subsequent lookups skip the peer
// without touching the network until the cooldown expires.
func TestPeerBreaker(t *testing.T) {
	c := New[int](Options{Capacity: 64})
	c.SetPeer("http://127.0.0.1:1") // reserved port: connection refused

	for i := 0; i < peerBreakerThreshold; i++ {
		mustGet(t, c, fmt.Sprintf("fail-%d", i), func() (int, error) { return i, nil })
		c.FlushPeerStores()
	}
	if c.peerOpen() {
		t.Fatalf("breaker still closed after %d consecutive failures", peerBreakerThreshold)
	}
	// Breaker open: the next request never hits the network.
	if _, err := c.peerRequest(http.MethodGet, "whatever", nil); err == nil {
		t.Fatal("peerRequest succeeded with the breaker open")
	}
	mustGet(t, c, "during-outage", func() (int, error) { return 7, nil })

	// A reachable peer closes it again (any response counts, hit or miss).
	c.SetPeer(peerServer(t, New[int](Options{Capacity: 8})).URL)
	mustGet(t, c, "probe", func() (int, error) { return 8, nil })
	c.FlushPeerStores()
	if !c.peerOpen() {
		t.Fatal("breaker still open after a reachable peer answered")
	}
}

// TestLookupPutSemantics pins that the peer-serving primitives are
// counter-free and non-mutating: Lookup does not promote LRU order, Put
// does not count as a miss or hit.
func TestLookupPutSemantics(t *testing.T) {
	c := New[int](Options{Capacity: 2, Shards: 1})
	mustGet(t, c, "old", func() (int, error) { return 1, nil })
	mustGet(t, c, "new", func() (int, error) { return 2, nil })

	// Lookup must not promote: "old" stays oldest and is evicted next.
	if _, ok := c.Lookup("old"); !ok {
		t.Fatal("Lookup(old) missed")
	}
	c.Put("third", 3)
	if _, ok := c.Lookup("old"); ok {
		t.Error("Lookup promoted the oldest entry; eviction order changed")
	}
	s := c.Stats()
	if s.Misses != 2 || s.Hits != 0 || s.PeerHits != 0 || s.Evictions != 1 || s.Entries != 2 {
		t.Errorf("stats = %+v, want Lookup/Put to leave per-Get counters alone", s)
	}
}
