package simcache

import (
	"fmt"
	"sync/atomic"
	"testing"

	"github.com/gables-model/gables/internal/kernel"
	"github.com/gables-model/gables/internal/sim"
	"github.com/gables-model/gables/internal/units"
)

// The grid benchmarks measure the cache's headline effect on the harness's
// dominant workload shape: a repeated (intensity x working-set) sweep over
// a simulated chip, like the erb roofline and mixing grids. ColdGrid
// recomputes every cell each iteration (cache reset per iteration);
// WarmGrid replays the identical grid from the memory layer. The
// acceptance bar is warm >= 5x faster than cold.

// benchCells builds a 24-cell sweep on the Snapdragon 835 rig.
func benchCells() (sim.Config, [][]sim.Assignment) {
	cfg := sim.Snapdragon835()
	var cells [][]sim.Assignment
	for _, ws := range []units.Bytes{1 << 20, 4 << 20, 16 << 20} {
		for _, fpw := range []int{1, 4, 16, 64, 256, 1024} {
			k := kernel.Kernel{Name: "bench", WorkingSet: ws, Trials: 2,
				FlopsPerWord: fpw, Pattern: kernel.ReadWrite}
			cells = append(cells, []sim.Assignment{{IP: "CPU", Kernel: k}})
		}
	}
	for _, fpw := range []int{1, 16, 256} {
		k := kernel.Kernel{Name: "bench", WorkingSet: 4 << 20, Trials: 2,
			FlopsPerWord: fpw, Pattern: kernel.StreamCopy}
		cells = append(cells, []sim.Assignment{{IP: "GPU", Kernel: k}})
		cells = append(cells, []sim.Assignment{{IP: "DSP", Kernel: k}})
	}
	return cfg, cells
}

func runGrid(b *testing.B, cfg sim.Config, cells [][]sim.Assignment) {
	b.Helper()
	for _, cell := range cells {
		res, err := Run(cfg, cell, sim.RunOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Makespan <= 0 {
			b.Fatal("degenerate cell result")
		}
	}
}

func BenchmarkCacheColdGrid(b *testing.B) {
	cfg, cells := benchCells()
	ResetDefault()
	defer ResetDefault()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ResetDefault()
		runGrid(b, cfg, cells)
	}
}

func BenchmarkCacheWarmGrid(b *testing.B) {
	cfg, cells := benchCells()
	ResetDefault()
	defer ResetDefault()
	runGrid(b, cfg, cells) // populate
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runGrid(b, cfg, cells)
	}
	b.StopTimer()
	if s := DefaultStats(); s.Hits == 0 || s.Evictions > 0 {
		b.Fatalf("warm grid must run entirely from the memory layer (stats %+v)", s)
	}
}

// BenchmarkCacheContention measures warm-hit throughput under parallel
// load at 1 vs 16 shards: every Get takes a shard lock, so the sharded
// layout should scale with workers where the single lock serializes.
// Keys are picked deterministically (per-goroutine counters, no rand).
func BenchmarkCacheContention(b *testing.B) {
	const keys = 1024
	keyset := make([]string, keys)
	for i := range keyset {
		k, err := Key("contention", i)
		if err != nil {
			b.Fatal(err)
		}
		keyset[i] = k
	}
	for _, shards := range []int{1, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			c := New[int](Options{Capacity: 4 * keys, Shards: shards})
			for i, k := range keyset {
				if _, err := c.Get(k, func() (int, error) { return i, nil }); err != nil {
					b.Fatal(err)
				}
			}
			var next atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := int(next.Add(1)) * 7919 // offset goroutines into the keyset
				for pb.Next() {
					k := keyset[i%keys]
					i++
					if _, err := c.Get(k, func() (int, error) { return 0, nil }); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.StopTimer()
			if s := c.Stats(); s.Misses != keys || s.Evictions != 0 {
				b.Fatalf("contention run must be all warm hits (stats %+v)", s)
			}
		})
	}
}
