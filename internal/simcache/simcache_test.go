package simcache

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/gables-model/gables/internal/kernel"
	"github.com/gables-model/gables/internal/sim"
)

func mustGet[V any](t *testing.T, c *Cache[V], key string, compute func() (V, error)) V {
	t.Helper()
	v, err := c.Get(key, compute)
	if err != nil {
		t.Fatalf("Get(%q): %v", key, err)
	}
	return v
}

func wantStats(t *testing.T, c *Cache[int], want Stats) {
	t.Helper()
	if got := c.Stats(); got != want {
		t.Fatalf("stats = %+v, want %+v", got, want)
	}
}

// TestCounterSemantics pins the contract: every lookup increments exactly
// one counter — Hits, DiskHits, Coalesced, or Misses per Get, and Bypassed
// per Bypass (which must not touch any Get counter or store an entry).
func TestCounterSemantics(t *testing.T) {
	c := New[int](Options{Capacity: 8})
	calls := 0
	compute := func() (int, error) { calls++; return 42, nil }

	if v := mustGet(t, c, "k1", compute); v != 42 {
		t.Fatalf("got %d, want 42", v)
	}
	wantStats(t, c, Stats{Misses: 1, Entries: 1})

	if v := mustGet(t, c, "k1", compute); v != 42 {
		t.Fatalf("got %d, want 42", v)
	}
	wantStats(t, c, Stats{Hits: 1, Misses: 1, Entries: 1})
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}

	mustGet(t, c, "k2", compute)
	wantStats(t, c, Stats{Hits: 1, Misses: 2, Entries: 2})

	// A bypassed lookup is its own class: not a miss, no entry stored.
	c.Bypass()
	wantStats(t, c, Stats{Hits: 1, Misses: 2, Bypassed: 1, Entries: 2})

	// Bypassing never perturbs subsequent Get semantics.
	mustGet(t, c, "k1", compute)
	wantStats(t, c, Stats{Hits: 2, Misses: 2, Bypassed: 1, Entries: 2})
}

func TestLRUEviction(t *testing.T) {
	c := New[int](Options{Capacity: 2})
	compute := func(v int) func() (int, error) {
		return func() (int, error) { return v, nil }
	}
	mustGet(t, c, "a", compute(1))
	mustGet(t, c, "b", compute(2))
	mustGet(t, c, "a", compute(1)) // refresh a: b is now the LRU victim
	mustGet(t, c, "c", compute(3)) // evicts b
	wantStats(t, c, Stats{Hits: 1, Misses: 3, Evictions: 1, Entries: 2})

	if !c.Peek("a") || !c.Peek("c") || c.Peek("b") {
		t.Fatalf("want {a,c} resident and b evicted; got a=%v b=%v c=%v",
			c.Peek("a"), c.Peek("b"), c.Peek("c"))
	}
	// Re-requesting the victim recomputes.
	calls := 0
	if v := mustGet(t, c, "b", func() (int, error) { calls++; return 2, nil }); v != 2 || calls != 1 {
		t.Fatalf("evicted key: v=%d calls=%d, want recompute", v, calls)
	}
}

// TestSingleflightCoalescing gates one slow computation while N waiters
// pile onto the same key: compute must run once, and the waiters must be
// counted as coalesced, not as hits or misses.
func TestSingleflightCoalescing(t *testing.T) {
	c := New[int](Options{})
	const waiters = 8

	var calls atomic.Int64
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	compute := func() (int, error) {
		calls.Add(1)
		close(leaderIn)
		<-release
		return 7, nil
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		mustGet(t, c, "k", compute)
	}()
	<-leaderIn // the leader is mid-compute; everyone below must coalesce

	results := make(chan int, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := c.Get("k", func() (int, error) {
				t.Error("coalesced waiter ran compute")
				return 0, nil
			})
			if err != nil {
				t.Error(err)
			}
			results <- v
		}()
	}
	// Wait until every waiter is registered before releasing the leader.
	for c.Stats().Coalesced < waiters {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	close(results)

	for v := range results {
		if v != 7 {
			t.Fatalf("waiter got %d, want 7", v)
		}
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	wantStats(t, c, Stats{Misses: 1, Coalesced: waiters, Entries: 1})
}

// TestErrorsNotCached: a failed computation propagates to the leader and
// all coalesced waiters, and the next Get recomputes.
func TestErrorsNotCached(t *testing.T) {
	c := New[int](Options{})
	boom := errors.New("boom")
	calls := 0
	if _, err := c.Get("k", func() (int, error) { calls++; return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if c.Peek("k") {
		t.Fatal("errored entry must not be cached")
	}
	if v, err := c.Get("k", func() (int, error) { calls++; return 5, nil }); err != nil || v != 5 {
		t.Fatalf("retry: v=%d err=%v", v, err)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2", calls)
	}
	wantStats(t, c, Stats{Misses: 2, Entries: 1})
}

func TestDiskLayerRoundTrip(t *testing.T) {
	dir := t.TempDir()
	type point struct{ X, Y float64 }

	hot := New[point](Options{Dir: dir})
	want := point{X: 1.5, Y: -2.25}
	mustGetP := func(c *Cache[point], compute func() (point, error)) point {
		t.Helper()
		v, err := c.Get("deadbeef", compute)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if got := mustGetP(hot, func() (point, error) { return want, nil }); got != want {
		t.Fatalf("got %+v", got)
	}

	// A second cache sharing the directory — a later process — must be
	// served from disk without computing.
	cold := New[point](Options{Dir: dir})
	got := mustGetP(cold, func() (point, error) {
		t.Error("disk hit must not compute")
		return point{}, nil
	})
	if got != want {
		t.Fatalf("disk round-trip: got %+v, want %+v", got, want)
	}
	s := cold.Stats()
	if s.DiskHits != 1 || s.Misses != 0 {
		t.Fatalf("stats = %+v, want exactly one disk hit", s)
	}
	// And the entry is now memory-resident: a third Get is a plain hit.
	mustGetP(cold, nil)
	if s := cold.Stats(); s.Hits != 1 {
		t.Fatalf("stats = %+v, want a memory hit after promotion", s)
	}
}

// TestDiskCorruptEntryFallsBack: an undecodable file is treated as a miss
// and overwritten by the recomputed value.
func TestDiskCorruptEntryFallsBack(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "deadbeef.json")
	if err := os.WriteFile(path, []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := New[int](Options{Dir: dir})
	if v := mustGet(t, c, "deadbeef", func() (int, error) { return 9, nil }); v != 9 {
		t.Fatalf("got %d, want recomputed 9", v)
	}
	if s := c.Stats(); s.Misses != 1 || s.DiskHits != 0 {
		t.Fatalf("stats = %+v, want a miss", s)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "9" {
		t.Fatalf("corrupt entry not repaired: data=%q err=%v", data, err)
	}
}

// TestDiskRejectsUnsafeKeys: only path-safe keys touch the filesystem;
// others still work through memory.
func TestDiskRejectsUnsafeKeys(t *testing.T) {
	dir := t.TempDir()
	c := New[int](Options{Dir: dir})
	for _, key := range []string{"../escape", "a/b", "", "dot.dot", "sp ace"} {
		if key == "" {
			continue // Get with empty key is fine in memory; skip disk shape check
		}
		mustGet(t, c, key, func() (int, error) { return 1, nil })
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("unsafe keys leaked onto disk: %v", entries)
	}
}

func TestReset(t *testing.T) {
	c := New[int](Options{})
	mustGet(t, c, "k", func() (int, error) { return 1, nil })
	c.Reset()
	wantStats(t, c, Stats{})
	calls := 0
	mustGet(t, c, "k", func() (int, error) { calls++; return 1, nil })
	if calls != 1 {
		t.Fatal("Reset must drop entries")
	}
}

func TestKeyDeterministicAndSensitive(t *testing.T) {
	type params struct{ A, B float64 }
	k1, err := Key("scope/v1", params{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	k2, err := Key("scope/v1", params{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatal("Key not deterministic")
	}
	k3, _ := Key("scope/v1", params{1, 3})
	k4, _ := Key("scope/v2", params{1, 2})
	k5, _ := Key("scope/v1", params{1, 2}, 0)
	for i, other := range []string{k3, k4, k5} {
		if other == k1 {
			t.Errorf("variant %d collides with base", i)
		}
	}
	// Length-prefixing: "ab"+"c" must differ from "a"+"bc".
	ka, _ := Key("ab", "c")
	kb, _ := Key("a", "bc")
	if ka == kb {
		t.Error("part boundaries must be encoded")
	}
	if !pathSafe(k1) {
		t.Error("Key output must be path-safe")
	}
	if _, err := Key(func() {}); err == nil {
		t.Error("unmarshalable part must error")
	}
}

// TestRunCachedMatchesDirect is the tentpole's correctness bar in unit
// form: a cached run, a coalesced run, and a direct sim.Run must agree
// bit for bit.
func TestRunCachedMatchesDirect(t *testing.T) {
	ResetDefault()
	cfg := sim.Snapdragon835()
	as := []sim.Assignment{{IP: "CPU", Kernel: kernel.Kernel{
		Name: "t", WorkingSet: 1 << 20, Trials: 2, FlopsPerWord: 8, Pattern: kernel.ReadWrite,
	}}}
	opt := sim.RunOptions{}

	sys, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := sys.Run(as, opt)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Run(cfg, as, opt)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Run(cfg, as, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		name string
		got  *sim.RunResult
	}{{"cold", cold}, {"warm", warm}} {
		if fmt.Sprintf("%#v", *c.got) != fmt.Sprintf("%#v", *direct) {
			t.Errorf("%s cached result differs from direct run:\n got %#v\nwant %#v", c.name, *c.got, *direct)
		}
	}
	s := DefaultStats()
	if s.Misses != 1 || s.Hits != 1 {
		t.Fatalf("stats = %+v, want one miss then one hit", s)
	}
	// The warm copy is private: mutating it must not poison the cache.
	warm.Makespan = -1
	again, err := Run(cfg, as, opt)
	if err != nil {
		t.Fatal(err)
	}
	if again.Makespan != direct.Makespan {
		t.Fatal("cache entry was mutated through a returned result")
	}
	ResetDefault()
}
