package simcache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"

	"github.com/gables-model/gables/internal/sim"
	"github.com/gables-model/gables/internal/sim/trace"
)

// This file binds the generic cache to the simulated SoC: a process-wide
// default Cache[*sim.RunResult] keyed by sim.Fingerprint, which every
// harness layer (internal/erb grids, internal/experiments suites, the
// cmds) routes runs through via Run. The in-memory layer is always on —
// it can only deduplicate work, never change results — while the on-disk
// layer is opt-in through EnableDisk (the -cache flags / GABLES_CACHE_DIR).

// EnvDir is the environment variable naming the on-disk cache directory;
// the cmds' -cache flags take precedence over it.
const EnvDir = "GABLES_CACHE_DIR"

var defaultCache = New[*sim.RunResult](Options{})

// probeFactory, when set, hands every Run a fresh observe-only probe. It
// is the chokepoint that lets the cmds trace whole harness invocations
// (experiment registries, ERB sweeps) without threading a probe through
// the intermediate layers. Guarded by probeMu: harnesses run in parallel.
var (
	probeMu      sync.Mutex
	probeFactory func(label string) trace.Probe
)

// SetProbeFactory installs (or, with nil, removes) a factory that supplies
// a per-run trace probe for every subsequent Run call that does not carry
// its own. The factory must be safe for concurrent use (trace.Session's
// NewRun is); the label passed to it names the config and assignments.
// Traced runs bypass the result cache — a cache hit cannot replay the
// event stream — so expect tracing to cost the deduplicated work back.
func SetProbeFactory(f func(label string) trace.Probe) {
	probeMu.Lock()
	probeFactory = f
	probeMu.Unlock()
}

// runProbe resolves the probe for one Run call: an explicit one wins,
// otherwise the installed factory (if any) supplies one.
func runProbe(opt sim.RunOptions, label string) trace.Probe {
	if opt.Probe != nil {
		return opt.Probe
	}
	probeMu.Lock()
	f := probeFactory
	probeMu.Unlock()
	if f == nil {
		return nil
	}
	return f(label)
}

// runLabel names one run for trace artifacts: the chip, then each
// assignment as ip/kernel.
func runLabel(cfg sim.Config, assignments []sim.Assignment) string {
	var b strings.Builder
	b.WriteString(cfg.Name)
	for i, a := range assignments {
		if i == 0 {
			b.WriteString(": ")
		} else {
			b.WriteString(", ")
		}
		b.WriteString(a.IP)
		if a.Kernel.Name != "" {
			b.WriteString("/")
			b.WriteString(a.Kernel.Name)
		}
	}
	return b.String()
}

// Run executes assignments on a system described by cfg through the
// default cache: memory hit, in-flight coalesce, disk hit, or a fresh
// sim.New + Run. The result is a private copy — callers may mutate it
// freely without poisoning the cache.
//
// Runs observed by a probe (explicit in opt, or supplied by the installed
// factory) bypass the cache in both directions: a hit could not replay the
// event stream, and storing the result would be redundant with the
// untraced entry's key (Fingerprint excludes the probe). Such runs are
// reported in the Bypassed counter — never as misses.
func Run(cfg sim.Config, assignments []sim.Assignment, opt sim.RunOptions) (*sim.RunResult, error) {
	if p := runProbe(opt, runLabel(cfg, assignments)); p != nil {
		defaultCache.Bypass()
		opt.Probe = p
		sys, err := sim.New(cfg)
		if err != nil {
			return nil, err
		}
		return sys.Run(assignments, opt)
	}
	key := sim.Fingerprint(cfg, assignments, opt)
	res, err := defaultCache.Get(key, func() (*sim.RunResult, error) {
		sys, err := sim.New(cfg)
		if err != nil {
			return nil, err
		}
		return sys.Run(assignments, opt)
	})
	if err != nil {
		return nil, err
	}
	return cloneResult(res), nil
}

// cloneResult deep-copies a run result (the struct plus its one slice) so
// cache-resident values stay immutable.
func cloneResult(r *sim.RunResult) *sim.RunResult {
	cp := *r
	cp.IPs = append([]sim.IPResult(nil), r.IPs...)
	return &cp
}

// EnableDisk turns on the default cache's on-disk layer in dir, preserving
// the current in-memory contents and counters. An empty dir is a no-op.
func EnableDisk(dir string) {
	if dir == "" {
		return
	}
	defaultCache.SetDir(dir)
}

// EnableDiskFromEnv enables the disk layer from GABLES_CACHE_DIR and
// returns the directory used (empty when the variable is unset).
func EnableDiskFromEnv() string {
	dir := os.Getenv(EnvDir)
	EnableDisk(dir)
	return dir
}

// DisableDisk turns the default cache's on-disk layer back off; tests use
// it to undo EnableDisk.
func DisableDisk() { defaultCache.SetDir("") }

// DefaultStats snapshots the default sim-run cache's counters.
func DefaultStats() Stats { return defaultCache.Stats() }

// ResetDefault clears the default cache's memory layer and counters —
// benchmarks use it to measure cold in-process runs, and tests use it for
// isolation. The disk layer setting is preserved.
func ResetDefault() { defaultCache.Reset() }

// FormatStats renders a stats snapshot as the one-line summary the cmds
// print under -v.
func FormatStats(name string, s Stats) string {
	return fmt.Sprintf("%s: hits=%d disk_hits=%d misses=%d coalesced=%d bypassed=%d evictions=%d entries=%d",
		name, s.Hits, s.DiskHits, s.Misses, s.Coalesced, s.Bypassed, s.Evictions, s.Entries)
}

// Key builds a content-addressed cache key from arbitrary JSON-encodable
// parts: each part is marshaled with encoding/json (struct fields in
// declaration order, map keys sorted — deterministic by construction) and
// length-prefixed into a sha-256. Use it for caches over value types that
// do not have a hand-written fingerprint; the first part should be a
// versioned scope label (e.g. "web-eval/v1") so unrelated caches and
// schema revisions never share keys. Parts that cannot be marshaled
// (NaN/Inf floats, channels...) return an error — callers should then
// bypass their cache.
func Key(parts ...any) (string, error) {
	h := sha256.New()
	var buf [8]byte
	for i, p := range parts {
		data, err := json.Marshal(p)
		if err != nil {
			return "", fmt.Errorf("simcache: key part %d: %w", i, err)
		}
		n := uint64(len(data))
		for b := 0; b < 8; b++ {
			buf[b] = byte(n >> (8 * b))
		}
		h.Write(buf[:])
		h.Write(data)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
