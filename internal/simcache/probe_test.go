package simcache

import (
	"fmt"
	"strings"
	"testing"

	"github.com/gables-model/gables/internal/kernel"
	"github.com/gables-model/gables/internal/sim"
	"github.com/gables-model/gables/internal/sim/trace"
)

// TestProbeFactoryBypassesCache pins the trace/cache interaction: while a
// probe factory is installed, Run must execute every call fresh (no hits,
// no misses, no stored entries — a hit could not replay the event stream),
// yet still return results identical to cached ones; once the factory is
// removed, normal miss/hit caching resumes.
func TestProbeFactoryBypassesCache(t *testing.T) {
	ResetDefault()
	t.Cleanup(func() {
		SetProbeFactory(nil)
		ResetDefault()
	})

	cfg := sim.Snapdragon835()
	as := []sim.Assignment{{IP: "GPU", Kernel: kernel.Kernel{
		Name: "t", WorkingSet: 1 << 20, Trials: 2, FlopsPerWord: 32, Pattern: kernel.ReadWrite,
	}}}
	opt := sim.RunOptions{}

	session := trace.NewSession()
	SetProbeFactory(session.NewRun)

	first, err := Run(cfg, as, opt)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(cfg, as, opt)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%#v", *first) != fmt.Sprintf("%#v", *second) {
		t.Errorf("traced reruns disagree:\n%#v\n%#v", *first, *second)
	}
	if s := DefaultStats(); s.Hits != 0 || s.Misses != 0 || s.Entries != 0 {
		t.Errorf("traced runs touched the cache: %+v", s)
	}
	if s := DefaultStats(); s.Bypassed != 2 {
		t.Errorf("traced runs must be reported as bypassed: got %+v, want Bypassed=2", s)
	}
	if session.Runs() != 2 {
		t.Errorf("factory handed out %d run probes, want 2", session.Runs())
	}

	// The factory's label names the chip and each ip/kernel assignment.
	label := runLabel(cfg, as)
	for _, want := range []string{cfg.Name, "GPU/t"} {
		if !strings.Contains(label, want) {
			t.Errorf("run label %q must mention %q", label, want)
		}
	}

	// With the factory removed, caching resumes: one miss, then a hit, and
	// results still agree with the traced ones.
	SetProbeFactory(nil)
	cold, err := Run(cfg, as, opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(cfg, as, opt); err != nil {
		t.Fatal(err)
	}
	if s := DefaultStats(); s.Misses != 1 || s.Hits != 1 || s.Bypassed != 2 {
		t.Errorf("stats after factory removal = %+v, want one miss, one hit, two bypassed", s)
	}
	if fmt.Sprintf("%#v", *cold) != fmt.Sprintf("%#v", *first) {
		t.Errorf("cached result differs from traced run:\n%#v\n%#v", *cold, *first)
	}
}

// TestExplicitProbeBypassesCache covers the other entry: an explicit
// opt.Probe (no factory installed) also bypasses the cache.
func TestExplicitProbeBypassesCache(t *testing.T) {
	ResetDefault()
	t.Cleanup(ResetDefault)

	cfg := sim.Snapdragon835()
	as := []sim.Assignment{{IP: "CPU", Kernel: kernel.Kernel{
		Name: "t", WorkingSet: 1 << 20, Trials: 2, FlopsPerWord: 8, Pattern: kernel.ReadWrite,
	}}}

	m := trace.NewMetrics("explicit")
	if _, err := Run(cfg, as, sim.RunOptions{Probe: m}); err != nil {
		t.Fatal(err)
	}
	if m.Dispatched == 0 {
		t.Error("explicit probe observed nothing")
	}
	if s := DefaultStats(); s.Misses != 0 || s.Entries != 0 {
		t.Errorf("explicit-probe run touched the cache: %+v", s)
	}
	if s := DefaultStats(); s.Bypassed != 1 {
		t.Errorf("explicit-probe run must be reported as bypassed: got %+v, want Bypassed=1", s)
	}
}
