//lint:file-ignore detsource the peer circuit breaker times real network health (failure cooldowns); wall-clock here gates availability only — cached values stay a pure function of their content-addressed keys

package simcache

import (
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"time"
)

// The peer tier: an optional shared HTTP cache behind the memory and disk
// layers, so a fleet of replicas deduplicates simulation work fleet-wide.
// Each replica serves its own in-memory entries over PeerHTTPHandler
// (gables-web mounts the default cache's handler at /simcache/ only when
// peer serving is explicitly enabled) and, when GABLES_PEER_CACHE names a
// peer base URL, consults that peer on a local miss before computing — and
// pushes freshly computed entries back, so a central cache or a mesh of
// mutually-peered replicas converges on one computation per fingerprint.
//
// The tier inherits the correctness contract of the disk layer: keys are
// content-addressed and computations deterministic, so a peer-served value
// is byte-identical to a recomputed one, and every failure (peer down,
// slow, serving garbage) degrades soft — the replica just computes. Peer
// serving never recurses: the handler answers from resident memory only,
// so two replicas pointing at each other cannot loop.
//
// Trust model: the protocol cannot verify that a pushed value matches its
// content-addressed key (the key is a fingerprint of the *inputs*; only
// re-running the simulation would check the value), so anyone who can PUT
// to the serving surface can poison the fleet's results. The mesh
// therefore assumes a trusted network: peer serving is opt-in on the
// serving side, and GABLES_PEER_TOKEN / SetPeerToken adds a shared bearer
// token both directions so an exposed replica still only accepts traffic
// from its own fleet. Do not mount the surface on an untrusted network
// without the token.
//
// Availability: a peer lookup sits inside the singleflight, so it is
// bounded tightly (peerLookupTimeout, tens of milliseconds — a stalled
// peer must cost a cold query little next to the simulation it might
// save), push-backs run on a background goroutine off the Get path
// entirely, and a circuit breaker skips the tier for peerBreakerCooldown
// after peerBreakerThreshold consecutive transport failures, so a peer
// outage costs a few bounded probes rather than a stall per cold query.

// EnvPeer is the environment variable naming the peer cache base URL
// (e.g. http://replica-a:8337); the cmds' -peer-cache flags take
// precedence over it.
const EnvPeer = "GABLES_PEER_CACHE"

// EnvPeerToken is the environment variable holding the fleet's shared
// peer-auth bearer token; the cmds' -peer-token flags take precedence.
const EnvPeerToken = "GABLES_PEER_TOKEN"

// PeerPathPrefix is the URL path prefix peer entries are served under.
const PeerPathPrefix = "/simcache/"

// peerLookupTimeout bounds one peer GET. Lookups run inside the
// singleflight — every coalesced waiter blocks on them — so a stalled
// peer must cost far less than the simulation it might save; on a healthy
// fleet network a resident-memory answer takes single-digit milliseconds.
const peerLookupTimeout = 100 * time.Millisecond

// peerDialTimeout bounds connection establishment for lookups, so a
// blackholed peer (no RST, just silence) fails fast instead of eating the
// whole lookup budget per attempt.
const peerDialTimeout = 50 * time.Millisecond

// peerStoreTimeout bounds one push-back PUT. Stores run on a background
// goroutine off the Get path, so they can afford a generous bound.
const peerStoreTimeout = 2 * time.Second

// Circuit breaker: after peerBreakerThreshold consecutive transport
// failures the tier is skipped for peerBreakerCooldown, then probed again.
// Any response from the peer — including a 404 miss — closes the breaker.
const (
	peerBreakerThreshold = 3
	peerBreakerCooldown  = 3 * time.Second
)

// peerMaxBody bounds a peer entry's encoded size on both the serving and
// storing side; run results are a few hundred bytes.
const peerMaxBody = 8 << 20

// The clients are shared by every cache: connection pooling across
// lookups matters more than per-cache isolation. Lookup and store split
// because their budgets differ by an order of magnitude (see the timeout
// constants), but they pool connections through one transport.
var (
	peerTransport = &http.Transport{
		DialContext:         (&net.Dialer{Timeout: peerDialTimeout}).DialContext,
		MaxIdleConnsPerHost: 4,
	}
	peerLookupClient = &http.Client{Timeout: peerLookupTimeout, Transport: peerTransport}
	peerStoreClient  = &http.Client{Timeout: peerStoreTimeout, Transport: peerTransport}
)

// SetPeer enables (or, with "", disables) the peer tier against the given
// base URL on a live cache; in-memory contents and counters are preserved.
func (c *Cache[V]) SetPeer(base string) {
	c.peerMu.Lock()
	c.peer = strings.TrimSuffix(base, "/")
	c.peerFails = 0
	c.peerDownUntil = time.Time{}
	c.peerMu.Unlock()
}

// SetPeerToken sets the shared bearer token attached to outgoing peer
// requests ("" sends none). The serving side enforces the same token via
// PeerAuthHTTPHandler.
func (c *Cache[V]) SetPeerToken(token string) {
	c.peerMu.Lock()
	c.peerToken = token
	c.peerMu.Unlock()
}

// peerConfig reads the peer base URL and token under the lock: SetPeer
// and SetPeerToken can flip them on a live cache while flights read them.
func (c *Cache[V]) peerConfig() (base, token string) {
	c.peerMu.Lock()
	defer c.peerMu.Unlock()
	return c.peer, c.peerToken
}

// peerOpen reports whether the circuit breaker currently admits peer
// traffic.
func (c *Cache[V]) peerOpen() bool {
	c.peerMu.Lock()
	defer c.peerMu.Unlock()
	return c.peerDownUntil.IsZero() || time.Now().After(c.peerDownUntil)
}

// peerFailure records one transport-level failure; at the threshold the
// breaker opens for the cooldown.
func (c *Cache[V]) peerFailure() {
	c.peerMu.Lock()
	defer c.peerMu.Unlock()
	c.peerFails++
	if c.peerFails >= peerBreakerThreshold {
		c.peerDownUntil = time.Now().Add(peerBreakerCooldown)
		c.peerFails = 0
	}
}

// peerSuccess records a reachable peer (any HTTP response, hit or miss)
// and closes the breaker.
func (c *Cache[V]) peerSuccess() {
	c.peerMu.Lock()
	defer c.peerMu.Unlock()
	c.peerFails = 0
	c.peerDownUntil = time.Time{}
}

var errPeerDisabled = fmt.Errorf("simcache: peer tier disabled")

// peerRequest builds one authenticated peer request for key.
func (c *Cache[V]) peerRequest(method, key string, body io.Reader) (*http.Request, error) {
	base, token := c.peerConfig()
	if base == "" {
		return nil, errPeerDisabled
	}
	if !c.peerOpen() {
		return nil, fmt.Errorf("simcache: peer breaker open")
	}
	if !pathSafe(key) {
		return nil, fmt.Errorf("simcache: key %q is not path-safe", key)
	}
	req, err := http.NewRequest(method, base+PeerPathPrefix+key, body)
	if err != nil {
		return nil, err
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	return req, nil
}

// loadPeer fetches an entry from the peer. Any failure — tier disabled,
// breaker open, peer unreachable, entry absent, or undecodable — reports
// an error and the caller falls back to computing.
func (c *Cache[V]) loadPeer(key string) (V, error) {
	var v V
	req, err := c.peerRequest(http.MethodGet, key, nil)
	if err != nil {
		return v, err
	}
	resp, err := peerLookupClient.Do(req)
	if err != nil {
		c.peerFailure()
		return v, err
	}
	c.peerSuccess()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return v, fmt.Errorf("simcache: peer miss for %s: status %d", key, resp.StatusCode)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, peerMaxBody))
	if err != nil {
		return v, err
	}
	if err := json.Unmarshal(data, &v); err != nil {
		return v, fmt.Errorf("simcache: corrupt peer entry %s: %w", key, err)
	}
	return v, nil
}

// storePeer pushes a freshly computed entry to the peer with a bounded
// PUT. Get runs it on a background goroutine (see pushPeer): the caller
// that just paid for a simulation never also waits on the network. Peer
// trouble is deliberately soft — the tier degrades to local-only rather
// than failing the computation that just succeeded.
func (c *Cache[V]) storePeer(key string, v V) {
	data, err := json.Marshal(v)
	if err != nil || len(data) > peerMaxBody {
		return
	}
	req, err := c.peerRequest(http.MethodPut, key, strings.NewReader(string(data)))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := peerStoreClient.Do(req)
	if err != nil {
		c.peerFailure()
		return
	}
	c.peerSuccess()
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// pushPeer queues an asynchronous push-back; peerWG lets tests and
// shutdown paths wait for in-flight pushes.
func (c *Cache[V]) pushPeer(key string, v V) {
	if base, _ := c.peerConfig(); base == "" {
		return
	}
	c.peerWG.Add(1)
	go func() {
		defer c.peerWG.Done()
		c.storePeer(key, v)
	}()
}

// FlushPeerStores blocks until every queued push-back has completed (or
// soft-failed); tests and graceful shutdowns use it to avoid abandoning
// in-flight pushes.
func (c *Cache[V]) FlushPeerStores() { c.peerWG.Wait() }

// PeerHTTPHandler serves one cache's entries to peer replicas under
// PeerPathPrefix with no authentication: the trusted-network shape (see
// the trust-model note above; use PeerAuthHTTPHandler anywhere exposure
// is in doubt). GET answers from resident memory only (a miss is a 404,
// never a recursive fetch or a computation), PUT accepts a pushed entry
// into the memory (and, when enabled, disk) layers. Neither direction
// touches the per-Get counters — peer traffic is accounted on the
// requesting side.
func PeerHTTPHandler[V any](c *Cache[V]) http.Handler { return PeerAuthHTTPHandler(c, "") }

// PeerAuthHTTPHandler is PeerHTTPHandler behind a shared bearer token:
// when token is non-empty, every request must carry
// "Authorization: Bearer <token>" or is rejected with 401. The requesting
// side attaches the token via SetPeerToken / GABLES_PEER_TOKEN.
func PeerAuthHTTPHandler[V any](c *Cache[V], token string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if token != "" && !peerAuthorized(r, token) {
			w.Header().Set("WWW-Authenticate", "Bearer")
			http.Error(w, "simcache: missing or wrong peer token", http.StatusUnauthorized)
			return
		}
		key := strings.TrimPrefix(r.URL.Path, PeerPathPrefix)
		if key == r.URL.Path { // prefix absent: mounted somewhere unexpected
			http.NotFound(w, r)
			return
		}
		if !pathSafe(key) {
			http.Error(w, "simcache: key is not path-safe", http.StatusBadRequest)
			return
		}
		switch r.Method {
		case http.MethodGet:
			v, ok := c.Lookup(key)
			if !ok {
				http.NotFound(w, r)
				return
			}
			data, err := json.Marshal(v)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write(data)
		case http.MethodPut:
			data, err := io.ReadAll(io.LimitReader(r.Body, peerMaxBody+1))
			if err != nil || len(data) > peerMaxBody {
				http.Error(w, "simcache: entry too large or unreadable", http.StatusBadRequest)
				return
			}
			var v V
			if err := json.Unmarshal(data, &v); err != nil {
				http.Error(w, "simcache: undecodable entry", http.StatusBadRequest)
				return
			}
			c.Put(key, v)
			w.WriteHeader(http.StatusNoContent)
		default:
			w.Header().Set("Allow", "GET, PUT")
			http.Error(w, "simcache: method not allowed", http.StatusMethodNotAllowed)
		}
	})
}

// peerAuthorized checks the bearer token in constant time.
func peerAuthorized(r *http.Request, token string) bool {
	got, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
	return ok && subtle.ConstantTimeCompare([]byte(got), []byte(token)) == 1
}

// DefaultPeerHandler serves the default sim-run cache to peer replicas
// with token auth when token is non-empty; gables-web mounts it at
// PeerPathPrefix only when peer serving is enabled (web.Options.ServePeer).
func DefaultPeerHandler(token string) http.Handler {
	return PeerAuthHTTPHandler(defaultCache, token)
}

// EnablePeer points the default cache's peer tier at base (empty is a
// no-op), so local sim misses consult the peer before computing.
func EnablePeer(base string) {
	if base == "" {
		return
	}
	defaultCache.SetPeer(base)
}

// EnablePeerToken sets the default cache's outgoing peer bearer token.
func EnablePeerToken(token string) { defaultCache.SetPeerToken(token) }

// EnablePeerFromEnv enables the peer tier from GABLES_PEER_CACHE (and the
// bearer token from GABLES_PEER_TOKEN) and returns the base URL used
// (empty when the variable is unset).
func EnablePeerFromEnv() string {
	base := os.Getenv(EnvPeer)
	EnablePeer(base)
	if token := os.Getenv(EnvPeerToken); token != "" {
		EnablePeerToken(token)
	}
	return base
}

// DisablePeer turns the default cache's peer tier back off; tests use it
// to undo EnablePeer.
func DisablePeer() {
	defaultCache.SetPeer("")
	defaultCache.SetPeerToken("")
}
