package simcache

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"
)

// The peer tier: an optional shared HTTP cache behind the memory and disk
// layers, so a fleet of replicas deduplicates simulation work fleet-wide.
// Each replica serves its own in-memory entries over PeerHTTPHandler
// (gables-web mounts the default cache's handler at /simcache/) and, when
// GABLES_PEER_CACHE names a peer base URL, consults that peer on a local
// miss before computing — and pushes freshly computed entries back, so a
// central cache or a mesh of mutually-peered replicas converges on one
// computation per fingerprint.
//
// The tier inherits the correctness contract of the disk layer: keys are
// content-addressed and computations deterministic, so a peer-served value
// is byte-identical to a recomputed one, and every failure (peer down,
// slow, serving garbage) degrades soft — the replica just computes. Peer
// serving never recurses: the handler answers from resident memory only,
// so two replicas pointing at each other cannot loop.

// EnvPeer is the environment variable naming the peer cache base URL
// (e.g. http://replica-a:8337); the cmds' -peer-cache flags take
// precedence over it.
const EnvPeer = "GABLES_PEER_CACHE"

// PeerPathPrefix is the URL path prefix peer entries are served under.
const PeerPathPrefix = "/simcache/"

// peerTimeout bounds one peer lookup or store: a slow peer must cost less
// than the simulation it would save, and far less than a request deadline.
const peerTimeout = 2 * time.Second

// peerMaxBody bounds a peer entry's encoded size on both the serving and
// storing side; run results are a few hundred bytes.
const peerMaxBody = 8 << 20

// peerHTTPClient is shared by every cache: connection pooling across
// lookups matters more than per-cache isolation.
var peerHTTPClient = &http.Client{Timeout: peerTimeout}

// SetPeer enables (or, with "", disables) the peer tier against the given
// base URL on a live cache; in-memory contents and counters are preserved.
func (c *Cache[V]) SetPeer(base string) {
	c.peerMu.Lock()
	c.peer = strings.TrimSuffix(base, "/")
	c.peerMu.Unlock()
}

// getPeer reads the peer base URL under its lock: SetPeer can flip it on a
// live cache while flights are reading it.
func (c *Cache[V]) getPeer() string {
	c.peerMu.Lock()
	defer c.peerMu.Unlock()
	return c.peer
}

var errPeerDisabled = fmt.Errorf("simcache: peer tier disabled")

// peerURL maps a key to its peer entry URL.
func (c *Cache[V]) peerURL(key string) (string, error) {
	base := c.getPeer()
	if base == "" {
		return "", errPeerDisabled
	}
	if !pathSafe(key) {
		return "", fmt.Errorf("simcache: key %q is not path-safe", key)
	}
	return base + PeerPathPrefix + key, nil
}

// loadPeer fetches an entry from the peer. Any failure — tier disabled,
// peer unreachable, entry absent, or undecodable — reports an error and
// the caller falls back to computing.
func (c *Cache[V]) loadPeer(key string) (V, error) {
	var v V
	url, err := c.peerURL(key)
	if err != nil {
		return v, err
	}
	resp, err := peerHTTPClient.Get(url)
	if err != nil {
		return v, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return v, fmt.Errorf("simcache: peer miss for %s: status %d", key, resp.StatusCode)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, peerMaxBody))
	if err != nil {
		return v, err
	}
	if err := json.Unmarshal(data, &v); err != nil {
		return v, fmt.Errorf("simcache: corrupt peer entry %s: %w", key, err)
	}
	return v, nil
}

// storePeer pushes a freshly computed entry to the peer with a bounded
// PUT. Peer trouble is deliberately soft — the tier degrades to local-only
// rather than failing the computation that just succeeded.
func (c *Cache[V]) storePeer(key string, v V) {
	url, err := c.peerURL(key)
	if err != nil {
		return
	}
	data, err := json.Marshal(v)
	if err != nil || len(data) > peerMaxBody {
		return
	}
	req, err := http.NewRequest(http.MethodPut, url, strings.NewReader(string(data)))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := peerHTTPClient.Do(req)
	if err != nil {
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// PeerHTTPHandler serves one cache's entries to peer replicas under
// PeerPathPrefix: GET answers from resident memory only (a miss is a 404,
// never a recursive fetch or a computation), PUT accepts a pushed entry
// into the memory (and, when enabled, disk) layers. Neither direction
// touches the per-Get counters — peer traffic is accounted on the
// requesting side.
func PeerHTTPHandler[V any](c *Cache[V]) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		key := strings.TrimPrefix(r.URL.Path, PeerPathPrefix)
		if key == r.URL.Path { // prefix absent: mounted somewhere unexpected
			http.NotFound(w, r)
			return
		}
		if !pathSafe(key) {
			http.Error(w, "simcache: key is not path-safe", http.StatusBadRequest)
			return
		}
		switch r.Method {
		case http.MethodGet:
			v, ok := c.Lookup(key)
			if !ok {
				http.NotFound(w, r)
				return
			}
			data, err := json.Marshal(v)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write(data)
		case http.MethodPut:
			data, err := io.ReadAll(io.LimitReader(r.Body, peerMaxBody+1))
			if err != nil || len(data) > peerMaxBody {
				http.Error(w, "simcache: entry too large or unreadable", http.StatusBadRequest)
				return
			}
			var v V
			if err := json.Unmarshal(data, &v); err != nil {
				http.Error(w, "simcache: undecodable entry", http.StatusBadRequest)
				return
			}
			c.Put(key, v)
			w.WriteHeader(http.StatusNoContent)
		default:
			w.Header().Set("Allow", "GET, PUT")
			http.Error(w, "simcache: method not allowed", http.StatusMethodNotAllowed)
		}
	})
}

// DefaultPeerHandler serves the default sim-run cache to peer replicas;
// gables-web mounts it at PeerPathPrefix.
func DefaultPeerHandler() http.Handler { return PeerHTTPHandler(defaultCache) }

// EnablePeer points the default cache's peer tier at base (empty is a
// no-op), so local sim misses consult the peer before computing.
func EnablePeer(base string) {
	if base == "" {
		return
	}
	defaultCache.SetPeer(base)
}

// EnablePeerFromEnv enables the peer tier from GABLES_PEER_CACHE and
// returns the base URL used (empty when the variable is unset).
func EnablePeerFromEnv() string {
	base := os.Getenv(EnvPeer)
	EnablePeer(base)
	return base
}

// DisablePeer turns the default cache's peer tier back off; tests use it
// to undo EnablePeer.
func DisablePeer() { defaultCache.SetPeer("") }
