package simcache

import (
	"fmt"
	"sync"
	"testing"
)

// TestShardCount pins the shard heuristic: small caches stay on one lock
// (their tests pin exact LRU order), explicit counts round up to powers
// of two, and nothing exceeds the capacity.
func TestShardCount(t *testing.T) {
	cases := []struct {
		requested, capacity, want int
	}{
		{0, 2, 1},   // tiny: single shard
		{0, 127, 1}, // below one shard per 64 entries
		{0, 128, 2}, // auto scales with capacity
		{0, DefaultCapacity, 16},
		{0, 1 << 20, 16}, // auto is capped
		{3, 4096, 4},     // explicit rounds up to a power of two
		{16, 4096, 16},   // explicit power of two kept
		{64, 32, 32},     // explicit capped at capacity
		{-5, 256, 4},     // negative behaves like auto
	}
	for _, tc := range cases {
		if got := shardCount(tc.requested, tc.capacity); got != tc.want {
			t.Errorf("shardCount(%d, %d) = %d, want %d", tc.requested, tc.capacity, got, tc.want)
		}
	}
}

// TestShardedKeysSpread checks real cache keys land on more than one
// shard (the hash reads the high-entropy key prefix).
func TestShardedKeysSpread(t *testing.T) {
	c := New[int](Options{Capacity: 4096, Shards: 16})
	seen := make(map[*shard[int]]bool)
	for i := 0; i < 64; i++ {
		k, err := Key("spread", i)
		if err != nil {
			t.Fatal(err)
		}
		seen[c.shardFor(k)] = true
	}
	if len(seen) < 8 {
		t.Errorf("64 keys landed on only %d of 16 shards", len(seen))
	}
}

// TestShardedCounterInvariant runs concurrent Gets over a sharded cache
// and checks the merged stats preserve the exactly-one-per-Get
// invariant: Hits + DiskHits + Coalesced + Misses equals the number of
// Get calls, with one miss per distinct key.
func TestShardedCounterInvariant(t *testing.T) {
	const (
		workers = 8
		keys    = 100
		rounds  = 5
	)
	c := New[int](Options{Capacity: 4096, Shards: 8})
	keyset := make([]string, keys)
	for i := range keyset {
		k, err := Key("invariant", i)
		if err != nil {
			t.Fatal(err)
		}
		keyset[i] = k
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for i, k := range keyset {
					v, err := c.Get(k, func() (int, error) { return i, nil })
					if err != nil || v != i {
						panic(fmt.Sprintf("Get(%d) = %d, %v", i, v, err))
					}
				}
			}
		}(w)
	}
	wg.Wait()
	s := c.Stats()
	total := s.Hits + s.DiskHits + s.Coalesced + s.Misses
	if want := int64(workers * rounds * keys); total != want {
		t.Errorf("counters account for %d Gets, want %d (stats %+v)", total, want, s)
	}
	if s.Misses != keys {
		t.Errorf("%d misses for %d distinct keys (coalesced %d)", s.Misses, keys, s.Coalesced)
	}
	if s.Entries != keys || s.Evictions != 0 {
		t.Errorf("unexpected occupancy: %+v", s)
	}
}

// TestShardedEvictionBound checks the total resident count respects the
// configured capacity even when keys skew across shards.
func TestShardedEvictionBound(t *testing.T) {
	const capacity = 64
	c := New[int](Options{Capacity: capacity, Shards: 4})
	for i := 0; i < 10*capacity; i++ {
		k, err := Key("evict", i)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Get(k, func() (int, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Stats()
	// Per-shard capacity is ceil(capacity/shards); a worst-case skew can
	// not exceed shards × per-shard.
	if s.Entries > capacity || s.Evictions == 0 {
		t.Errorf("sharded LRU failed to bound occupancy: %+v", s)
	}
}
