// Package simcache is the harness's content-addressed result cache. The
// discrete-event substrate is deterministic — a run is a pure function of
// its fingerprint (see sim.Fingerprint) — so every layer that re-executes a
// (config, kernel) pair another grid cell, experiment suite, or web request
// already computed is pure waste. The cache closes that gap three ways:
//
//   - a bounded in-memory LRU serves repeats within a process;
//   - singleflight deduplication makes concurrent requests for the same
//     key — parallel.Map workers on overlapping grids, simultaneous web
//     form submissions — block on one computation instead of N;
//   - an optional on-disk layer (Options.Dir, wired to the -cache flag and
//     GABLES_CACHE_DIR) lets reruns and CI determinism diffs skip
//     already-simulated points across processes;
//   - an optional HTTP peer tier (SetPeer, wired to GABLES_PEER_CACHE; see
//     peer.go) lets a fleet of replicas deduplicate simulation work
//     fleet-wide: a local miss consults the peer before computing, and
//     fresh computations are pushed back.
//
// The LRU is sharded (power-of-two shard count, per-shard mutex, shard
// chosen by a hash of the key prefix) so parallel grid workers don't
// serialize on one lock; a key always maps to one shard, which preserves
// the singleflight guarantee. Stats are merged across shards on read.
//
// Correctness contract: a key must be content-addressed — it encodes every
// input that can influence the value — and the computation must be
// deterministic, so a cached value is byte-identical to a recomputed one.
// The CI determinism job enforces this for the harness: cold-cache and
// warm-cache runs of cmd/gables-repro must produce identical artifacts.
//
// Errors are never cached: a failed computation is reported to the caller
// (and to every coalesced waiter) and the next request recomputes.
package simcache

import (
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Stats is a point-in-time snapshot of a cache's counters. Semantics,
// pinned by tests: every lookup increments exactly one of Hits, DiskHits,
// PeerHits, Coalesced, or Misses (per Get), or Bypassed (per Bypass — a
// lookup the caller deliberately routed around the cache, e.g. a traced
// run).
type Stats struct {
	// Hits counts Gets served from the in-memory LRU.
	Hits int64 `json:"hits"`
	// DiskHits counts Gets served by decoding an on-disk entry.
	DiskHits int64 `json:"disk_hits"`
	// PeerHits counts Gets served by fetching a peer replica's entry
	// (the tier behind disk; see peer.go).
	PeerHits int64 `json:"peer_hits"`
	// Misses counts Gets that ran the computation (including ones whose
	// computation failed).
	Misses int64 `json:"misses"`
	// Coalesced counts Gets that blocked on another caller's in-flight
	// computation of the same key instead of starting their own.
	Coalesced int64 `json:"coalesced"`
	// Bypassed counts lookups that skipped the cache in both directions
	// by design (reported via Bypass); they are not misses — the cache
	// was never consulted and the result was never stored.
	Bypassed int64 `json:"bypassed"`
	// Evictions counts entries dropped from the LRU to respect Capacity.
	Evictions int64 `json:"evictions"`
	// Entries is the current in-memory entry count.
	Entries int `json:"entries"`
}

// add merges another snapshot into s (Stats is a sum across shards).
func (s *Stats) add(o Stats) {
	s.Hits += o.Hits
	s.DiskHits += o.DiskHits
	s.PeerHits += o.PeerHits
	s.Misses += o.Misses
	s.Coalesced += o.Coalesced
	s.Bypassed += o.Bypassed
	s.Evictions += o.Evictions
	s.Entries += o.Entries
}

// Options configure a Cache.
type Options struct {
	// Capacity bounds the total in-memory entry count; <= 0 uses
	// DefaultCapacity.
	Capacity int
	// Dir enables the on-disk layer in this directory (created on first
	// write). Entries are JSON files named <key>.json. Empty disables
	// the layer.
	Dir string
	// Shards sets the LRU shard count, rounded up to a power of two and
	// capped at Capacity. 0 picks automatically: one shard per 64
	// entries of capacity, at most 16 — small caches (the kind tests pin
	// exact eviction order on) stay single-sharded, grid-sized caches
	// spread contention.
	Shards int
}

// DefaultCapacity is the in-memory bound when Options.Capacity is unset:
// generous next to the harness's grids (a full gables-repro run computes
// on the order of 10³ distinct points) while keeping worst-case footprint
// in the tens of megabytes.
const DefaultCapacity = 4096

// maxAutoShards bounds the automatic shard count; contention wins flatten
// out well before lock count reaches typical grid worker counts.
const maxAutoShards = 16

// Cache is a bounded, content-addressed result cache with singleflight
// deduplication. The zero value is not usable; construct with New. All
// methods are safe for concurrent use.
type Cache[V any] struct {
	shards []*shard[V]
	mask   uint32

	dirMu sync.Mutex
	dir   string

	// Peer tier state (see peer.go): base URL and bearer token ("" each
	// disables), plus the circuit breaker and the in-flight push-back
	// tracker.
	peerMu        sync.Mutex
	peer          string
	peerToken     string
	peerFails     int       // consecutive transport failures
	peerDownUntil time.Time // breaker open until this instant (zero = closed)
	peerWG        sync.WaitGroup
}

// shard is one lock domain: a slice of the key space with its own LRU,
// flight table and counters.
type shard[V any] struct {
	capacity int

	mu      sync.Mutex
	entries map[string]*list.Element // key → lru element holding *entry[V]
	lru     *list.List               // front = most recently used
	flights map[string]*flight[V]
	stats   Stats
}

type entry[V any] struct {
	key string
	val V
}

// flight is one in-progress computation; waiters block on done.
type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// shardCount resolves Options.Shards against the capacity.
func shardCount(requested, capacity int) int {
	n := requested
	if n <= 0 {
		n = capacity / 64
		if n > maxAutoShards {
			n = maxAutoShards
		}
	}
	if n > capacity {
		n = capacity
	}
	if n < 1 {
		n = 1
	}
	// Round up to a power of two so shard selection is a mask.
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// New constructs a cache.
func New[V any](opts Options) *Cache[V] {
	capacity := opts.Capacity
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	n := shardCount(opts.Shards, capacity)
	// Ceil-divide so the shards together hold at least Capacity.
	per := (capacity + n - 1) / n
	c := &Cache[V]{
		shards: make([]*shard[V], n),
		mask:   uint32(n - 1),
		dir:    opts.Dir,
	}
	for i := range c.shards {
		c.shards[i] = &shard[V]{
			capacity: per,
			entries:  make(map[string]*list.Element),
			lru:      list.New(),
			flights:  make(map[string]*flight[V]),
		}
	}
	return c
}

// shardFor hashes the key prefix (run fingerprints and sha-256 keys front-
// load their entropy) onto a shard with FNV-1a.
func (c *Cache[V]) shardFor(key string) *shard[V] {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	n := len(key)
	if n > 16 {
		n = 16
	}
	for i := 0; i < n; i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return c.shards[h&c.mask]
}

// Get returns the value for key, computing it with compute on a miss.
// Concurrent Gets for the same key coalesce onto one compute call; the
// others block until it finishes and share its result. A compute error is
// returned to the leader and every coalesced waiter, and nothing is
// cached. The returned value is shared with the cache: callers must treat
// it as immutable (wrap Get if a defensive copy is needed).
func (c *Cache[V]) Get(key string, compute func() (V, error)) (V, error) {
	s := c.shardFor(key)
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		s.lru.MoveToFront(el)
		s.stats.Hits++
		v := el.Value.(*entry[V]).val
		s.mu.Unlock()
		return v, nil
	}
	if f, ok := s.flights[key]; ok {
		s.stats.Coalesced++
		s.mu.Unlock()
		<-f.done
		return f.val, f.err
	}
	f := &flight[V]{done: make(chan struct{})}
	s.flights[key] = f
	s.mu.Unlock()

	// Tier order behind memory: disk, then peer, then compute. A peer
	// hit warms the local disk layer (when enabled); a fresh computation
	// propagates to both, so the fleet converges on one computation per
	// content-addressed key. The peer push-back is asynchronous (pushPeer):
	// the Get that just paid for the computation — and every coalesced
	// waiter behind it — never also waits on the network.
	fromDisk, fromPeer := false, false
	v, err := c.loadDisk(key)
	if err == nil {
		fromDisk = true
	} else if v, err = c.loadPeer(key); err == nil {
		fromPeer = true
		c.storeDisk(key, v)
	} else {
		v, err = compute()
		if err == nil {
			c.storeDisk(key, v)
			c.pushPeer(key, v)
		}
	}

	s.mu.Lock()
	switch {
	case fromDisk:
		s.stats.DiskHits++
	case fromPeer:
		s.stats.PeerHits++
	default:
		s.stats.Misses++
	}
	if err == nil {
		s.insertLocked(key, v)
	}
	delete(s.flights, key)
	s.mu.Unlock()

	f.val, f.err = v, err
	close(f.done)
	return v, err
}

// Peek reports whether key is resident in memory, without touching LRU
// order or counters.
func (c *Cache[V]) Peek(key string) bool {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[key]
	return ok
}

// Lookup returns the in-memory value for key without computing, touching
// LRU order, or incrementing any counter. It is the peer-serving read: a
// replica answering another replica's lookup must account nothing locally
// (the requesting side records the peer hit) and must never trigger
// recursive work.
func (c *Cache[V]) Lookup(key string) (V, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		return el.Value.(*entry[V]).val, true
	}
	var zero V
	return zero, false
}

// Put inserts a value into the memory layer (and, when enabled, the disk
// layer) without touching the per-Get counters. It is the peer-serving
// write: an entry pushed by another replica is already accounted there.
// The value must be content-addressed by key, exactly like a computed one.
func (c *Cache[V]) Put(key string, v V) {
	s := c.shardFor(key)
	s.mu.Lock()
	s.insertLocked(key, v)
	s.mu.Unlock()
	c.storeDisk(key, v)
}

// Bypass records one lookup that deliberately skipped the cache in both
// directions. Callers that route around Get by design (internal/simcache.Run
// does for probe-observed runs: a hit could not replay the event stream)
// report here so the counters still account for every lookup — bypassed
// work must not masquerade as misses.
func (c *Cache[V]) Bypass() {
	s := c.shards[0]
	s.mu.Lock()
	s.stats.Bypassed++
	s.mu.Unlock()
}

// Stats returns a snapshot of the counters, summed across shards.
func (c *Cache[V]) Stats() Stats {
	var out Stats
	for _, s := range c.shards {
		s.mu.Lock()
		snap := s.stats
		snap.Entries = len(s.entries)
		s.mu.Unlock()
		out.add(snap)
	}
	return out
}

// Reset drops every in-memory entry and zeroes the counters. In-flight
// computations are unaffected (they complete and insert into the fresh
// table). The disk layer is not touched.
func (c *Cache[V]) Reset() {
	for _, s := range c.shards {
		s.mu.Lock()
		s.entries = make(map[string]*list.Element)
		s.lru.Init()
		s.stats = Stats{}
		s.mu.Unlock()
	}
}

func (s *shard[V]) insertLocked(key string, v V) {
	if el, ok := s.entries[key]; ok {
		// A concurrent flight (e.g. after Reset) already reinserted.
		el.Value.(*entry[V]).val = v
		s.lru.MoveToFront(el)
		return
	}
	s.entries[key] = s.lru.PushFront(&entry[V]{key: key, val: v})
	for s.lru.Len() > s.capacity {
		oldest := s.lru.Back()
		s.lru.Remove(oldest)
		delete(s.entries, oldest.Value.(*entry[V]).key)
		s.stats.Evictions++
	}
}

// SetDir enables (or, with "", disables) the on-disk layer on a live
// cache; in-memory contents and counters are preserved.
func (c *Cache[V]) SetDir(dir string) {
	c.dirMu.Lock()
	c.dir = dir
	c.dirMu.Unlock()
}

// getDir reads the disk directory under its lock: SetDir can flip it
// on a live cache while flights are reading it.
func (c *Cache[V]) getDir() string {
	c.dirMu.Lock()
	defer c.dirMu.Unlock()
	return c.dir
}

// diskPath maps a key to its file. Keys are hex fingerprints or sha-256
// hashes (see Key), so they are always path-safe; anything else is
// rejected by load/store.
func (c *Cache[V]) diskPath(key string) (string, error) {
	dir := c.getDir()
	if dir == "" {
		return "", errDiskDisabled
	}
	if !pathSafe(key) {
		return "", fmt.Errorf("simcache: key %q is not path-safe", key)
	}
	return filepath.Join(dir, key+".json"), nil
}

var errDiskDisabled = fmt.Errorf("simcache: disk layer disabled")

// loadDisk decodes an on-disk entry. Any failure — layer disabled, file
// absent, unreadable, or undecodable (e.g. a truncated write from an
// interrupted process, or a schema change without a fingerprint bump) —
// reports an error and the caller falls back to computing.
func (c *Cache[V]) loadDisk(key string) (V, error) {
	var v V
	path, err := c.diskPath(key)
	if err != nil {
		return v, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return v, err
	}
	if err := json.Unmarshal(data, &v); err != nil {
		return v, fmt.Errorf("simcache: corrupt entry %s: %w", path, err)
	}
	return v, nil
}

// storeDisk persists an entry atomically: write a unique temp file, then
// rename over the final name, so concurrent processes and interrupted runs
// never expose a partial entry. Disk trouble is deliberately soft — the
// cache degrades to memory-only rather than failing the run.
func (c *Cache[V]) storeDisk(key string, v V) {
	path, err := c.diskPath(key)
	if err != nil {
		return
	}
	dir := filepath.Dir(path)
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(dir, key+".tmp*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
	}
}

func pathSafe(key string) bool {
	if key == "" {
		return false
	}
	for _, r := range key {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
		default:
			return false
		}
	}
	return true
}
