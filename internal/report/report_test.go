package report

import (
	"strings"
	"testing"
)

func TestTableText(t *testing.T) {
	tbl := NewTable("Demo", "name", "value")
	tbl.AddRow("alpha", 1.5)
	tbl.AddRow("beta-long-name", 42)
	out := tbl.Text()

	if !strings.HasPrefix(out, "Demo\n") {
		t.Errorf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Columns must align: "value" starts at the same offset everywhere.
	idx := strings.Index(lines[1], "value")
	if idx < 0 {
		t.Fatalf("no value header: %q", lines[1])
	}
	for _, ln := range lines[3:] {
		if len(ln) < idx {
			t.Errorf("row shorter than header offset: %q", ln)
		}
	}
	if !strings.Contains(out, "1.5") || !strings.Contains(out, "42") {
		t.Errorf("missing cells:\n%s", out)
	}
}

func TestTableNoTitle(t *testing.T) {
	tbl := NewTable("", "a")
	tbl.AddRow("x")
	if strings.HasPrefix(tbl.Text(), "\n") {
		t.Error("untitled table must not start with a blank line")
	}
}

func TestFloatFormatting(t *testing.T) {
	tbl := NewTable("", "v")
	tbl.AddRow(40.0)
	tbl.AddRow(1.3278)
	tbl.AddRow(0.0)
	out := tbl.Text()
	if !strings.Contains(out, "40\n") {
		t.Errorf("40.0 must print as 40:\n%s", out)
	}
	if !strings.Contains(out, "1.3278") {
		t.Errorf("1.3278 must keep its decimals:\n%s", out)
	}
}

func TestCSV(t *testing.T) {
	tbl := NewTable("ignored", "a", "b")
	tbl.AddRow("plain", `has "quotes", and commas`)
	csv := tbl.CSV()
	lines := strings.Split(strings.TrimRight(csv, "\n"), "\n")
	if lines[0] != "a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], `"has ""quotes"", and commas"`) {
		t.Errorf("escaping wrong: %q", lines[1])
	}
}

func TestNumRows(t *testing.T) {
	tbl := NewTable("", "a")
	if tbl.NumRows() != 0 {
		t.Error("new table must have zero rows")
	}
	tbl.AddRow(1)
	tbl.AddRow(2)
	if tbl.NumRows() != 2 {
		t.Errorf("NumRows = %d, want 2", tbl.NumRows())
	}
}

func TestCheckmark(t *testing.T) {
	if Checkmark(true) != "X" || Checkmark(false) != "" {
		t.Error("Checkmark wrong")
	}
}

func TestStringerCell(t *testing.T) {
	tbl := NewTable("", "v")
	tbl.AddRow(stringer("hello"))
	if !strings.Contains(tbl.Text(), "hello") {
		t.Error("Stringer cells must use String()")
	}
}

type stringer string

func (s stringer) String() string { return string(s) }
