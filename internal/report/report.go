// Package report renders aligned text tables and CSV for the experiment
// harness, so every figure and table reproduction can print the rows the
// paper reports without pulling in external formatting dependencies.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row. Values are formatted with %v; float64 values are
// formatted compactly with up to four significant decimals.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = formatCell(c)
	}
	t.rows = append(t.rows, row)
}

func formatCell(c any) string {
	switch v := c.(type) {
	case float64:
		return trimmedFloat(v)
	case float32:
		return trimmedFloat(float64(v))
	case string:
		return v
	case fmt.Stringer:
		return v.String()
	default:
		return fmt.Sprintf("%v", c)
	}
}

func trimmedFloat(v float64) string {
	s := fmt.Sprintf("%.4f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimSuffix(s, ".")
	if s == "-0" {
		s = "0"
	}
	return s
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		var line strings.Builder
		for i, cell := range cells {
			if i > 0 {
				line.WriteString("  ")
			}
			fmt.Fprintf(&line, "%-*s", widths[i], cell)
		}
		b.WriteString(strings.TrimRight(line.String(), " "))
		b.WriteString("\n")
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Text renders the table to a string.
func (t *Table) Text() string {
	var b strings.Builder
	// strings.Builder never errors.
	_ = t.WriteText(&b)
	return b.String()
}

// WriteCSV renders the table as CSV with a header row. Cells containing
// commas, quotes or newlines are quoted per RFC 4180.
func (t *Table) WriteCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		for i, cell := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if _, err := io.WriteString(w, csvEscape(cell)); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeRow(t.headers); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// CSV renders the table to a CSV string.
func (t *Table) CSV() string {
	var b strings.Builder
	_ = t.WriteCSV(&b)
	return b.String()
}

// Checkmark renders a boolean as Table I does: "X" for active, blank
// otherwise.
func Checkmark(b bool) string {
	if b {
		return "X"
	}
	return ""
}
