package plot

import (
	"fmt"
	"strings"
)

// palette holds the series stroke colors, cycled in order.
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
	"#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
}

const (
	marginLeft   = 70.0
	marginRight  = 150.0
	marginTop    = 40.0
	marginBottom = 55.0
)

// SVG renders the chart as a standalone SVG document of the given pixel
// dimensions.
func (c *Chart) SVG(width, height int) (string, error) {
	if err := c.Validate(); err != nil {
		return "", err
	}
	if width < 200 || height < 150 {
		return "", fmt.Errorf("plot: %q: canvas %dx%d too small (min 200x150)", c.Title, width, height)
	}
	xmin, xmax, ymin, ymax := c.bounds()
	plotW := float64(width) - marginLeft - marginRight
	plotH := float64(height) - marginTop - marginBottom

	px := func(x float64) float64 { return marginLeft + scale(x, xmin, xmax, c.XLog)*plotW }
	py := func(y float64) float64 { return marginTop + (1-scale(y, ymin, ymax, c.YLog))*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")

	// Title.
	fmt.Fprintf(&b, `<text x="%g" y="22" font-family="sans-serif" font-size="15" font-weight="bold">%s</text>`+"\n",
		marginLeft, escape(c.Title))

	// Frame.
	fmt.Fprintf(&b, `<rect x="%g" y="%g" width="%g" height="%g" fill="none" stroke="#444"/>`+"\n",
		marginLeft, marginTop, plotW, plotH)

	// Ticks and grid.
	for _, t := range niceTicks(xmin, xmax, c.XLog, 6) {
		x := px(t)
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#ddd"/>`+"\n",
			x, marginTop, x, marginTop+plotH)
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
			x, marginTop+plotH+16, formatTick(t))
	}
	for _, t := range niceTicks(ymin, ymax, c.YLog, 6) {
		y := py(t)
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#ddd"/>`+"\n",
			marginLeft, y, marginLeft+plotW, y)
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginLeft-6, y+4, formatTick(t))
	}

	// Axis labels.
	fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
		marginLeft+plotW/2, float64(height)-12, escape(c.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%g" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 16 %g)">%s</text>`+"\n",
		marginTop+plotH/2, marginTop+plotH/2, escape(c.YLabel))

	// Drop lines.
	for _, v := range c.VLines {
		if c.XLog && v.X <= 0 {
			continue
		}
		x := px(v.X)
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#999" stroke-dasharray="4 3"/>`+"\n",
			x, marginTop, x, marginTop+plotH)
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="10" fill="#666" text-anchor="middle">%s</text>`+"\n",
			x, marginTop-4, escape(v.Name))
	}

	// Series.
	for i, s := range c.Series {
		color := palette[i%len(palette)]
		switch c.Kind {
		case Bar:
			bw := plotW / float64(len(s.X)) * 0.7
			for k := range s.X {
				x := px(s.X[k])
				y := py(s.Y[k])
				fmt.Fprintf(&b, `<rect x="%g" y="%g" width="%g" height="%g" fill="%s" fill-opacity="0.8"/>`+"\n",
					x-bw/2, y, bw, marginTop+plotH-y, color)
			}
		default:
			pts := make([]string, len(s.X))
			for k := range s.X {
				pts[k] = fmt.Sprintf("%g,%g", px(s.X[k]), py(s.Y[k]))
			}
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
				strings.Join(pts, " "), color)
		}
		// Legend entry.
		ly := marginTop + 14 + float64(i)*16
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s" stroke-width="3"/>`+"\n",
			marginLeft+plotW+10, ly, marginLeft+plotW+30, ly, color)
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			marginLeft+plotW+35, ly+4, escape(s.Name))
	}

	// Markers.
	for _, m := range c.Markers {
		if (c.XLog && m.X <= 0) || (c.YLog && m.Y <= 0) {
			continue
		}
		fmt.Fprintf(&b, `<circle cx="%g" cy="%g" r="4" fill="#000"/>`+"\n", px(m.X), py(m.Y))
		if m.Name != "" {
			fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="10">%s</text>`+"\n",
				px(m.X)+6, py(m.Y)-6, escape(m.Name))
		}
	}

	b.WriteString("</svg>\n")
	out := b.String()
	if strings.Contains(out, "NaN") {
		return "", fmt.Errorf("plot: %q: rendering produced NaN coordinates", c.Title)
	}
	return out, nil
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
