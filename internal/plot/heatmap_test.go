package plot

import (
	"strings"
	"testing"
)

func demoHeatmap() *Heatmap {
	return &Heatmap{
		Title:   "grid",
		XLabel:  "f",
		YLabel:  "I",
		Columns: []string{"0", "0.5", "1"},
		Rows:    []string{"1", "64"},
		Values:  [][]float64{{1, 2, 0.8}, {1, 10, 40}},
	}
}

func TestHeatmapValidate(t *testing.T) {
	if err := demoHeatmap().Validate(); err != nil {
		t.Fatalf("valid heatmap rejected: %v", err)
	}
	h := demoHeatmap()
	h.Rows = nil
	if err := h.Validate(); err == nil {
		t.Error("empty rows must be rejected")
	}
	h = demoHeatmap()
	h.Values = h.Values[:1]
	if err := h.Validate(); err == nil {
		t.Error("row count mismatch must be rejected")
	}
	h = demoHeatmap()
	h.Values[0] = h.Values[0][:2]
	if err := h.Validate(); err == nil {
		t.Error("column count mismatch must be rejected")
	}
	h = demoHeatmap()
	h.Values[1][2] = nanValue()
	if err := h.Validate(); err == nil {
		t.Error("NaN must be rejected")
	}
}

func TestHeatmapSVG(t *testing.T) {
	svg, err := demoHeatmap().SVG(640, 400)
	if err != nil {
		t.Fatal(err)
	}
	// One background + 6 cells.
	if n := strings.Count(svg, "<rect"); n != 7 {
		t.Errorf("rects = %d, want 7", n)
	}
	for _, want := range []string{"grid", "0.5", "64", "</svg>"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if _, err := demoHeatmap().SVG(50, 50); err == nil {
		t.Error("tiny canvas must be rejected")
	}
}

func TestHeatmapSVGUniformValues(t *testing.T) {
	h := demoHeatmap()
	h.Values = [][]float64{{5, 5, 5}, {5, 5, 5}}
	if _, err := h.SVG(640, 400); err != nil {
		t.Fatalf("uniform values must render: %v", err)
	}
}

func TestHeatmapASCII(t *testing.T) {
	out, err := demoHeatmap().ASCII()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title + header + two rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "40") || !strings.Contains(out, "0.8") {
		t.Errorf("values missing:\n%s", out)
	}
	// The largest value carries the densest shade.
	if !strings.Contains(out, "@40") {
		t.Errorf("max cell must use the densest shade:\n%s", out)
	}
}

func TestHeatmapCustomFormat(t *testing.T) {
	h := demoHeatmap()
	h.Format = "%.1f"
	out, err := h.ASCII()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "40.0") {
		t.Errorf("custom format ignored:\n%s", out)
	}
}
