package plot

import (
	"fmt"

	"github.com/gables-model/gables/internal/core"
	"github.com/gables-model/gables/internal/roofline"
	"github.com/gables-model/gables/internal/units"
)

// RooflineChart builds the classic single-chip roofline figure (the
// paper's Figure 1 / 7 / 9 shape): log-log axes, the roofline curve, and
// one extra curve per named ceiling combination.
func RooflineChart(m *roofline.Model, lo, hi units.Intensity, samples int) (*Chart, error) {
	pts, err := m.Curve(lo, hi, samples)
	if err != nil {
		return nil, err
	}
	main := Series{Name: fmt.Sprintf("%s (%s peak)", m.Name, m.Peak)}
	for _, p := range pts {
		main.X = append(main.X, float64(p.Intensity))
		main.Y = append(main.Y, float64(p.Attainable))
	}
	ch := &Chart{
		Title:  fmt.Sprintf("Roofline: %s", m.Name),
		XLabel: "operational intensity (ops/byte)",
		YLabel: "attainable performance (ops/s)",
		XLog:   true,
		YLog:   true,
		Series: []Series{main},
		VLines: []VLine{{Name: "ridge", X: float64(m.RidgePoint())}},
	}
	for _, c := range m.Ceilings {
		s := Series{Name: c.Name}
		for _, p := range pts {
			v, err := m.AttainableUnder(p.Intensity, c.Name)
			if err != nil {
				return nil, err
			}
			s.X = append(s.X, float64(p.Intensity))
			s.Y = append(s.Y, float64(v))
		}
		ch.Series = append(ch.Series, s)
	}
	return ch, nil
}

// GablesChart builds the §III-C multi-roofline visualization for a usecase
// on a Gables model: one scaled roofline per active component, a drop line
// per operating intensity, and a marker at each selected point. The lowest
// marker is Pattainable.
func GablesChart(m *core.Model, u *core.Usecase, lo, hi units.Intensity, samples int) (*Chart, error) {
	if lo <= 0 || hi <= lo {
		return nil, fmt.Errorf("plot: invalid intensity range [%v, %v]", float64(lo), float64(hi))
	}
	if samples < 2 {
		return nil, fmt.Errorf("plot: need at least 2 samples, got %d", samples)
	}
	curves, err := m.ScaledRooflines(u)
	if err != nil {
		return nil, err
	}
	ch := &Chart{
		Title:  fmt.Sprintf("Gables: %s on %s", u.Name, m.SoC.Name),
		XLabel: "operational intensity (ops/byte)",
		YLabel: "attainable performance (ops/s)",
		XLog:   true,
		YLog:   true,
	}
	xs, err := units.Logspace(float64(lo), float64(hi), samples)
	if err != nil {
		return nil, fmt.Errorf("plot: %w", err)
	}
	for _, c := range curves {
		s := Series{Name: c.Component.String()}
		for _, x := range xs {
			s.X = append(s.X, x)
			s.Y = append(s.Y, float64(c.Value(units.Intensity(x))))
		}
		ch.Series = append(ch.Series, s)
		ch.VLines = append(ch.VLines, VLine{Name: fmt.Sprintf("I(%s)", c.Component.Name), X: float64(c.DropAt)})
		ch.Markers = append(ch.Markers, Marker{
			Name: c.Component.Name,
			X:    float64(c.DropAt),
			Y:    float64(c.Selected),
		})
	}
	return ch, nil
}

// FitPointsSeries converts empirical roofline samples (e.g., measured on
// the simulated SoC) into a chart series, for overlaying measurements on a
// fitted roofline the way §IV's figures do.
func FitPointsSeries(name string, pts []roofline.Point) Series {
	s := Series{Name: name}
	for _, p := range pts {
		s.X = append(s.X, float64(p.Intensity))
		s.Y = append(s.Y, float64(p.Attainable))
	}
	return s
}
