package plot

import (
	"fmt"
	"strings"
)

// seriesGlyphs are the per-series plot characters for ASCII rendering.
var seriesGlyphs = []rune{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// ASCII renders the chart as terminal art on a cols×rows character grid
// (plot area; axes and legend add a few lines). It is the quick-look
// companion to SVG for CLI tools.
func (c *Chart) ASCII(cols, rows int) (string, error) {
	if err := c.Validate(); err != nil {
		return "", err
	}
	if cols < 20 || rows < 8 {
		return "", fmt.Errorf("plot: %q: ASCII grid %dx%d too small (min 20x8)", c.Title, cols, rows)
	}
	xmin, xmax, ymin, ymax := c.bounds()

	grid := make([][]rune, rows)
	for r := range grid {
		grid[r] = make([]rune, cols)
		for k := range grid[r] {
			grid[r][k] = ' '
		}
	}
	toCol := func(x float64) int {
		col := int(scale(x, xmin, xmax, c.XLog) * float64(cols-1))
		return clampInt(col, 0, cols-1)
	}
	toRow := func(y float64) int {
		row := int((1 - scale(y, ymin, ymax, c.YLog)) * float64(rows-1))
		return clampInt(row, 0, rows-1)
	}

	// Drop lines first so series overwrite them.
	for _, v := range c.VLines {
		if c.XLog && v.X <= 0 {
			continue
		}
		col := toCol(v.X)
		for r := 0; r < rows; r++ {
			grid[r][col] = '|'
		}
	}

	for i, s := range c.Series {
		glyph := seriesGlyphs[i%len(seriesGlyphs)]
		switch c.Kind {
		case Bar:
			for k := range s.X {
				col, top := toCol(s.X[k]), toRow(s.Y[k])
				for r := top; r < rows; r++ {
					grid[r][col] = glyph
				}
			}
		default:
			// Interpolate between consecutive samples column by column
			// so the curve is connected.
			for k := 1; k < len(s.X); k++ {
				c0, r0 := toCol(s.X[k-1]), toRow(s.Y[k-1])
				c1, r1 := toCol(s.X[k]), toRow(s.Y[k])
				steps := maxInt(absInt(c1-c0), absInt(r1-r0)) + 1
				for st := 0; st <= steps; st++ {
					f := float64(st) / float64(steps)
					col := c0 + int(f*float64(c1-c0))
					row := r0 + int(f*float64(r1-r0))
					grid[row][col] = glyph
				}
			}
			if len(s.X) == 1 {
				grid[toRow(s.Y[0])][toCol(s.X[0])] = glyph
			}
		}
	}

	for _, m := range c.Markers {
		if (c.XLog && m.X <= 0) || (c.YLog && m.Y <= 0) {
			continue
		}
		grid[toRow(m.Y)][toCol(m.X)] = '●'
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	yLo, yHi := formatTick(ymin), formatTick(ymax)
	labelW := maxInt(len(yLo), len(yHi))
	for r, row := range grid {
		label := strings.Repeat(" ", labelW)
		if r == 0 {
			label = fmt.Sprintf("%*s", labelW, yHi)
		} else if r == rows-1 {
			label = fmt.Sprintf("%*s", labelW, yLo)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, strings.TrimRight(string(row), " "))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", labelW), strings.Repeat("-", cols))
	fmt.Fprintf(&b, "%s  %-*s%s\n", strings.Repeat(" ", labelW), cols-len(formatTick(xmax)), formatTick(xmin), formatTick(xmax))
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "x: %s, y: %s\n", c.XLabel, c.YLabel)
	}
	for i, s := range c.Series {
		fmt.Fprintf(&b, "  %c %s\n", seriesGlyphs[i%len(seriesGlyphs)], s.Name)
	}
	return b.String(), nil
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
