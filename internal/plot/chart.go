// Package plot renders charts as SVG documents and as ASCII art using only
// the standard library. It exists because the paper's artifacts are almost
// all plots — log-log multi-roofline charts with drop lines (Figures 1, 6,
// 7, 9), line charts (Figure 8) and bar charts (Figure 2) — and the Go
// ecosystem has no standard plotting dependency to lean on.
package plot

import (
	"fmt"
	"math"
)

// Series is one plotted curve: paired X/Y samples.
type Series struct {
	// Name appears in the legend.
	Name string
	// X and Y are the samples; lengths must match.
	X, Y []float64
}

// VLine is a vertical marker ("drop line" in the paper's §III-C plots).
type VLine struct {
	Name string
	X    float64
}

// Marker is a highlighted point, used for the selected operating points.
type Marker struct {
	Name string
	X, Y float64
}

// Kind selects the chart geometry.
type Kind int

// Chart kinds.
const (
	Line Kind = iota
	Bar
)

// Chart is a renderable figure.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	// XLog/YLog select logarithmic axes (base 10), the paper's
	// convention for roofline plots.
	XLog, YLog bool
	Kind       Kind
	Series     []Series
	VLines     []VLine
	Markers    []Marker
}

// Validate checks the chart can be rendered.
func (c *Chart) Validate() error {
	if len(c.Series) == 0 {
		return fmt.Errorf("plot: %q: needs at least one series", c.Title)
	}
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("plot: %q: series %q has %d x values and %d y values",
				c.Title, s.Name, len(s.X), len(s.Y))
		}
		if len(s.X) == 0 {
			return fmt.Errorf("plot: %q: series %q is empty", c.Title, s.Name)
		}
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) ||
				math.IsInf(s.X[i], 0) || math.IsInf(s.Y[i], 0) {
				return fmt.Errorf("plot: %q: series %q has non-finite sample %d", c.Title, s.Name, i)
			}
			if c.XLog && s.X[i] <= 0 {
				return fmt.Errorf("plot: %q: series %q: x[%d]=%v on a log axis", c.Title, s.Name, i, s.X[i])
			}
			if c.YLog && s.Y[i] <= 0 {
				return fmt.Errorf("plot: %q: series %q: y[%d]=%v on a log axis", c.Title, s.Name, i, s.Y[i])
			}
		}
	}
	// Annotations participate in bounds(): a NaN or Inf would poison the
	// axis extents and turn every rendered coordinate into NaN.
	for _, v := range c.VLines {
		if math.IsNaN(v.X) || math.IsInf(v.X, 0) {
			return fmt.Errorf("plot: %q: vline %q has non-finite x %v", c.Title, v.Name, v.X)
		}
	}
	for _, m := range c.Markers {
		if math.IsNaN(m.X) || math.IsNaN(m.Y) || math.IsInf(m.X, 0) || math.IsInf(m.Y, 0) {
			return fmt.Errorf("plot: %q: marker %q has non-finite point (%v, %v)", c.Title, m.Name, m.X, m.Y)
		}
	}
	return nil
}

// bounds returns the data extent including vlines and markers.
func (c *Chart) bounds() (xmin, xmax, ymin, ymax float64) {
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			xmin, xmax = math.Min(xmin, s.X[i]), math.Max(xmax, s.X[i])
			ymin, ymax = math.Min(ymin, s.Y[i]), math.Max(ymax, s.Y[i])
		}
	}
	for _, v := range c.VLines {
		if !c.XLog || v.X > 0 {
			xmin, xmax = math.Min(xmin, v.X), math.Max(xmax, v.X)
		}
	}
	for _, m := range c.Markers {
		if !c.XLog || m.X > 0 {
			xmin, xmax = math.Min(xmin, m.X), math.Max(xmax, m.X)
		}
		if !c.YLog || m.Y > 0 {
			ymin, ymax = math.Min(ymin, m.Y), math.Max(ymax, m.Y)
		}
	}
	// Degenerate extents get a synthetic margin so scaling stays finite.
	//lint:ignore floatcmp exact degenerate-extent test: any nonzero width is renderable, so a tolerance would misclassify legitimately tiny extents
	if xmin == xmax {
		if c.XLog {
			xmin, xmax = xmin/2, xmax*2
		} else {
			xmin, xmax = xmin-1, xmax+1
		}
	}
	//lint:ignore floatcmp exact degenerate-extent test, as for xmin == xmax above
	if ymin == ymax {
		if c.YLog {
			ymin, ymax = ymin/2, ymax*2
		} else {
			ymin, ymax = ymin-1, ymax+1
		}
	}
	return
}

// scale maps a data value to [0,1] under the axis transform. On a log axis
// a nonpositive value (which Validate rejects for series, and the
// renderers skip for annotations) clamps to the axis floor rather than
// silently becoming NaN via math.Log10.
func scale(v, lo, hi float64, log bool) float64 {
	if log {
		// bounds() only emits positive, non-degenerate log extents, but
		// scale is also reachable from annotation paths; a broken extent
		// pins everything to the axis origin instead of producing NaN.
		if lo <= 0 || hi <= lo {
			return 0
		}
		if v <= 0 {
			v = lo
		}
		return (math.Log10(v) - math.Log10(lo)) / (math.Log10(hi) - math.Log10(lo))
	}
	return (v - lo) / (hi - lo)
}

// niceTicks returns tick values for an axis: decade ticks for log axes and
// up to n evenly spaced ticks otherwise.
func niceTicks(lo, hi float64, log bool, n int) []float64 {
	if log {
		// A nonpositive or degenerate extent has no decade structure;
		// fall back to the endpoints rather than feeding Log10 garbage.
		if lo <= 0 || hi <= lo {
			return []float64{lo, hi}
		}
		var ticks []float64
		start := math.Floor(math.Log10(lo))
		end := math.Ceil(math.Log10(hi))
		for e := start; e <= end; e++ {
			v := math.Pow(10, e)
			if v >= lo*(1-1e-12) && v <= hi*(1+1e-12) {
				ticks = append(ticks, v)
			}
		}
		if len(ticks) == 0 {
			ticks = []float64{lo, hi}
		}
		return ticks
	}
	if n < 2 {
		n = 2
	}
	step := (hi - lo) / float64(n-1)
	ticks := make([]float64, n)
	for i := range ticks {
		ticks[i] = lo + float64(i)*step
	}
	return ticks
}

// formatTick renders a tick label compactly.
func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case v == 0:
		return "0"
	case av >= 1e12:
		return fmt.Sprintf("%gT", v/1e12)
	case av >= 1e9:
		return fmt.Sprintf("%gG", v/1e9)
	case av >= 1e6:
		return fmt.Sprintf("%gM", v/1e6)
	case av >= 1e3:
		return fmt.Sprintf("%gK", v/1e3)
	case av < 0.01:
		return fmt.Sprintf("%.0e", v)
	default:
		return fmt.Sprintf("%g", math.Round(v*1000)/1000)
	}
}
