package plot

import (
	"math"
	"strings"
	"testing"
)

// These tests pin the log-axis float-edge fix: non-finite annotation values
// must fail validation (they would poison bounds() and emit NaN
// coordinates), and nonpositive values on a log axis must clamp to the
// axis floor instead of reaching math.Log10.

func logChart() *Chart {
	return &Chart{
		Title: "log-edge", XLog: true, YLog: true,
		Series: []Series{{Name: "s", X: []float64{1, 10, 100}, Y: []float64{2, 20, 200}}},
	}
}

func TestValidateRejectsNonFiniteVLine(t *testing.T) {
	for _, x := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		c := logChart()
		c.VLines = []VLine{{Name: "bad", X: x}}
		if err := c.Validate(); err == nil {
			t.Errorf("vline x=%v must fail validation", x)
		}
		if _, err := c.SVG(400, 300); err == nil {
			t.Errorf("SVG with vline x=%v must fail", x)
		}
	}
}

func TestValidateRejectsNonFiniteMarker(t *testing.T) {
	// On a linear axis too: an Inf marker destroys the extents.
	c := &Chart{
		Title:   "linear-edge",
		Series:  []Series{{Name: "s", X: []float64{0, 1}, Y: []float64{0, 1}}},
		Markers: []Marker{{Name: "bad", X: math.Inf(1), Y: 0.5}},
	}
	if err := c.Validate(); err == nil {
		t.Error("Inf marker must fail validation")
	}
	c.Markers = []Marker{{Name: "bad", X: 0.5, Y: math.NaN()}}
	if err := c.Validate(); err == nil {
		t.Error("NaN marker must fail validation")
	}
}

func TestNonPositiveAnnotationsOnLogAxesRender(t *testing.T) {
	// Zero/negative annotation coordinates on log axes are legal inputs
	// (e.g. a drop line at f=0); renderers skip them and the output must
	// stay NaN-free.
	c := logChart()
	c.VLines = append(c.VLines, VLine{Name: "zero", X: 0})
	c.Markers = append(c.Markers, Marker{Name: "neg", X: -1, Y: 5})
	svg, err := c.SVG(400, 300)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(svg, "NaN") {
		t.Error("SVG contains NaN coordinates")
	}
	if _, err := c.ASCII(40, 10); err != nil {
		t.Fatalf("ASCII render failed: %v", err)
	}
}

func TestScaleClampsToAxisFloor(t *testing.T) {
	if got := scale(0, 1, 100, true); got != 0 {
		t.Errorf("scale(0) on log axis = %v, want 0 (axis floor)", got)
	}
	if got := scale(-5, 1, 100, true); got != 0 {
		t.Errorf("scale(-5) on log axis = %v, want 0 (axis floor)", got)
	}
	if got := scale(10, 1, 100, true); got != 0.5 {
		t.Errorf("scale(10) on log [1,100] = %v, want 0.5", got)
	}
	if got := scale(0, 1, 100, true); math.IsNaN(got) {
		t.Error("nonpositive value reached math.Log10 and produced NaN")
	}
}
