package plot

import (
	"fmt"
	"math"
	"strings"
)

// Heatmap renders a matrix of values as colored cells — the natural form
// for two-parameter studies like the model-validation (f × intensity)
// grid. Values map onto a white→blue ramp scaled to the data range; each
// cell is annotated with its value.
type Heatmap struct {
	Title  string
	XLabel string
	YLabel string
	// Columns and Rows label the axes; Values is row-major with
	// len(Values) == len(Rows) and len(Values[r]) == len(Columns).
	Columns []string
	Rows    []string
	Values  [][]float64
	// Format renders a cell value; empty means "%.2g".
	Format string
}

// Validate checks the matrix shape and values.
func (h *Heatmap) Validate() error {
	if len(h.Rows) == 0 || len(h.Columns) == 0 {
		return fmt.Errorf("plot: heatmap %q: empty axes", h.Title)
	}
	if len(h.Values) != len(h.Rows) {
		return fmt.Errorf("plot: heatmap %q: %d value rows for %d row labels", h.Title, len(h.Values), len(h.Rows))
	}
	for r, row := range h.Values {
		if len(row) != len(h.Columns) {
			return fmt.Errorf("plot: heatmap %q: row %d has %d values for %d columns", h.Title, r, len(row), len(h.Columns))
		}
		for c, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("plot: heatmap %q: non-finite value at (%d,%d)", h.Title, r, c)
			}
		}
	}
	return nil
}

func (h *Heatmap) rangeOf() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, row := range h.Values {
		for _, v := range row {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
	}
	//lint:ignore floatcmp exact degenerate-extent test: any nonzero spread is colorable, so a tolerance would flatten legitimately narrow ranges
	if lo == hi {
		hi = lo + 1
	}
	return
}

// SVG renders the heatmap as a standalone document.
func (h *Heatmap) SVG(width, height int) (string, error) {
	if err := h.Validate(); err != nil {
		return "", err
	}
	if width < 200 || height < 150 {
		return "", fmt.Errorf("plot: heatmap %q: canvas %dx%d too small", h.Title, width, height)
	}
	lo, hi := h.rangeOf()
	const left, top, right, bottom = 110.0, 50.0, 30.0, 60.0
	gw := float64(width) - left - right
	gh := float64(height) - top - bottom
	cw := gw / float64(len(h.Columns))
	ch := gh / float64(len(h.Rows))
	format := h.Format
	if format == "" {
		format = "%.2g"
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%g" y="24" font-family="sans-serif" font-size="15" font-weight="bold">%s</text>`+"\n",
		left, escape(h.Title))

	for r, row := range h.Values {
		for c, v := range row {
			frac := (v - lo) / (hi - lo)
			// White → steel blue ramp.
			red := int(255 - frac*(255-70))
			green := int(255 - frac*(255-130))
			blue := int(255 - frac*(255-180))
			x, y := left+float64(c)*cw, top+float64(r)*ch
			fmt.Fprintf(&b, `<rect x="%g" y="%g" width="%g" height="%g" fill="rgb(%d,%d,%d)" stroke="#ccc"/>`+"\n",
				x, y, cw, ch, red, green, blue)
			textColor := "#000"
			if frac > 0.6 {
				textColor = "#fff"
			}
			fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="11" text-anchor="middle" fill="%s">%s</text>`+"\n",
				x+cw/2, y+ch/2+4, textColor, escape(fmt.Sprintf(format, v)))
		}
	}
	for c, label := range h.Columns {
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
			left+(float64(c)+0.5)*cw, top+gh+16, escape(label))
	}
	for r, label := range h.Rows {
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
			left-8, top+(float64(r)+0.5)*ch+4, escape(label))
	}
	fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
		left+gw/2, float64(height)-14, escape(h.XLabel))
	fmt.Fprintf(&b, `<text x="20" y="%g" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 20 %g)">%s</text>`+"\n",
		top+gh/2, top+gh/2, escape(h.YLabel))
	b.WriteString("</svg>\n")
	return b.String(), nil
}

// ASCII renders the heatmap as an aligned text grid with shade characters.
func (h *Heatmap) ASCII() (string, error) {
	if err := h.Validate(); err != nil {
		return "", err
	}
	lo, hi := h.rangeOf()
	shades := []rune(" .:-=+*#%@")
	format := h.Format
	if format == "" {
		format = "%.2g"
	}
	cellW := 0
	cells := make([][]string, len(h.Values))
	for r, row := range h.Values {
		cells[r] = make([]string, len(row))
		for c, v := range row {
			frac := (v - lo) / (hi - lo)
			shade := shades[int(frac*float64(len(shades)-1))]
			cells[r][c] = fmt.Sprintf("%c%s", shade, fmt.Sprintf(format, v))
			if len(cells[r][c]) > cellW {
				cellW = len(cells[r][c])
			}
		}
	}
	for _, label := range h.Columns {
		if len(label) > cellW {
			cellW = len(label)
		}
	}
	rowW := 0
	for _, label := range h.Rows {
		if len(label) > rowW {
			rowW = len(label)
		}
	}
	var b strings.Builder
	if h.Title != "" {
		fmt.Fprintf(&b, "%s\n", h.Title)
	}
	fmt.Fprintf(&b, "%*s", rowW, "")
	for _, label := range h.Columns {
		fmt.Fprintf(&b, "  %*s", cellW, label)
	}
	b.WriteString("\n")
	for r, row := range cells {
		fmt.Fprintf(&b, "%*s", rowW, h.Rows[r])
		for _, cell := range row {
			fmt.Fprintf(&b, "  %*s", cellW, cell)
		}
		b.WriteString("\n")
	}
	return b.String(), nil
}
