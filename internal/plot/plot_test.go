package plot

import (
	"strings"
	"testing"

	"github.com/gables-model/gables/internal/core"
	"github.com/gables-model/gables/internal/roofline"
	"github.com/gables-model/gables/internal/units"
)

func lineChart() *Chart {
	return &Chart{
		Title:  "demo",
		XLabel: "x",
		YLabel: "y",
		Series: []Series{
			{Name: "a", X: []float64{1, 2, 3}, Y: []float64{1, 4, 9}},
			{Name: "b", X: []float64{1, 2, 3}, Y: []float64{3, 2, 1}},
		},
	}
}

func TestValidate(t *testing.T) {
	if err := lineChart().Validate(); err != nil {
		t.Fatalf("valid chart rejected: %v", err)
	}
	empty := &Chart{Title: "none"}
	if err := empty.Validate(); err == nil {
		t.Error("no-series chart must be rejected")
	}
	mismatch := &Chart{Series: []Series{{Name: "s", X: []float64{1}, Y: []float64{1, 2}}}}
	if err := mismatch.Validate(); err == nil {
		t.Error("length mismatch must be rejected")
	}
	logNeg := &Chart{XLog: true, Series: []Series{{Name: "s", X: []float64{-1}, Y: []float64{1}}}}
	if err := logNeg.Validate(); err == nil {
		t.Error("negative value on log axis must be rejected")
	}
	nan := &Chart{Series: []Series{{Name: "s", X: []float64{1}, Y: []float64{nanValue()}}}}
	if err := nan.Validate(); err == nil {
		t.Error("NaN must be rejected")
	}
}

func nanValue() float64 {
	z := 0.0
	return z / z
}

func TestSVGBasics(t *testing.T) {
	svg, err := lineChart().SVG(640, 480)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`<svg`, `width="640"`, `height="480"`, `</svg>`,
		"polyline", "demo", ">a</text>", ">b</text>",
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Count(svg, "<polyline") != 2 {
		t.Errorf("want 2 polylines, got %d", strings.Count(svg, "<polyline"))
	}
}

func TestSVGTooSmall(t *testing.T) {
	if _, err := lineChart().SVG(100, 100); err == nil {
		t.Error("tiny canvas must be rejected")
	}
}

func TestSVGBarChart(t *testing.T) {
	c := &Chart{
		Title: "bars",
		Kind:  Bar,
		Series: []Series{{
			Name: "per year",
			X:    []float64{2007, 2008, 2009},
			Y:    []float64{14, 22, 34},
		}},
	}
	svg, err := c.SVG(640, 480)
	if err != nil {
		t.Fatal(err)
	}
	// One background rect plus three bars.
	if n := strings.Count(svg, "<rect"); n < 4 {
		t.Errorf("want >= 4 rects, got %d", n)
	}
}

func TestSVGLogAxes(t *testing.T) {
	c := &Chart{
		Title: "loglog",
		XLog:  true, YLog: true,
		Series: []Series{{Name: "s", X: []float64{0.01, 1, 100}, Y: []float64{0.1, 10, 1000}}},
		VLines: []VLine{{Name: "drop", X: 1}},
	}
	svg, err := c.SVG(640, 480)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg, "stroke-dasharray") {
		t.Error("drop line missing")
	}
}

func TestSVGEscapesMarkup(t *testing.T) {
	c := lineChart()
	c.Title = `<script>"x"&y</script>`
	svg, err := c.SVG(640, 480)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(svg, "<script>") {
		t.Error("title markup not escaped")
	}
	if !strings.Contains(svg, "&lt;script&gt;") {
		t.Error("escaped title missing")
	}
}

func TestSVGDegenerateExtent(t *testing.T) {
	c := &Chart{
		Title:  "flat",
		Series: []Series{{Name: "s", X: []float64{5, 5}, Y: []float64{2, 2}}},
	}
	if _, err := c.SVG(640, 480); err != nil {
		t.Fatalf("degenerate extent must render: %v", err)
	}
}

func TestASCIIBasics(t *testing.T) {
	out, err := lineChart().ASCII(60, 15)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "demo") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("missing series glyphs")
	}
	if !strings.Contains(out, "* a") || !strings.Contains(out, "o b") {
		t.Error("missing legend")
	}
	lines := strings.Split(out, "\n")
	// title + 15 grid rows + axis + labels + legend
	if len(lines) < 18 {
		t.Errorf("got %d lines", len(lines))
	}
}

func TestASCIITooSmall(t *testing.T) {
	if _, err := lineChart().ASCII(5, 3); err == nil {
		t.Error("tiny grid must be rejected")
	}
}

func TestASCIIMarkersAndVLines(t *testing.T) {
	c := lineChart()
	c.VLines = []VLine{{Name: "v", X: 2}}
	c.Markers = []Marker{{Name: "m", X: 2, Y: 4}}
	out, err := c.ASCII(60, 15)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "|") {
		t.Error("vline missing")
	}
	if !strings.Contains(out, "●") {
		t.Error("marker missing")
	}
}

func TestASCIIBar(t *testing.T) {
	c := &Chart{
		Kind:   Bar,
		Series: []Series{{Name: "bars", X: []float64{1, 2, 3}, Y: []float64{1, 2, 3}}},
	}
	out, err := c.ASCII(30, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "*") {
		t.Error("bars missing")
	}
}

func TestRooflineChart(t *testing.T) {
	m := roofline.MustNew("cpu", units.GopsPerSec(7.5), units.GBPerSec(15.1))
	m.AddCeiling(roofline.Ceiling{Name: "no-simd", Compute: units.GopsPerSec(3)})
	ch, err := RooflineChart(m, 0.01, 100, 33)
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.Series) != 2 {
		t.Fatalf("series = %d, want main + 1 ceiling", len(ch.Series))
	}
	if !ch.XLog || !ch.YLog {
		t.Error("roofline chart must use log-log axes")
	}
	if len(ch.VLines) != 1 {
		t.Error("ridge drop line missing")
	}
	if _, err := ch.SVG(640, 480); err != nil {
		t.Fatalf("SVG render: %v", err)
	}
}

func TestRooflineChartBadRange(t *testing.T) {
	m := roofline.MustNew("cpu", units.GopsPerSec(7.5), units.GBPerSec(15.1))
	if _, err := RooflineChart(m, 10, 1, 33); err == nil {
		t.Error("inverted range must be rejected")
	}
}

func TestGablesChart(t *testing.T) {
	s, err := core.TwoIP("p", units.GopsPerSec(40), units.GBPerSec(10), 5,
		units.GBPerSec(6), units.GBPerSec(15))
	if err != nil {
		t.Fatal(err)
	}
	m, _ := core.New(s)
	u, _ := core.TwoIPUsecase("6b", 0.75, 8, 0.1)

	ch, err := GablesChart(m, u, 0.01, 100, 49)
	if err != nil {
		t.Fatal(err)
	}
	// Three curves: IP[0], IP[1], memory; three drop lines; three markers.
	if len(ch.Series) != 3 || len(ch.VLines) != 3 || len(ch.Markers) != 3 {
		t.Fatalf("series/vlines/markers = %d/%d/%d, want 3/3/3",
			len(ch.Series), len(ch.VLines), len(ch.Markers))
	}
	if _, err := ch.SVG(800, 500); err != nil {
		t.Fatalf("SVG: %v", err)
	}
	if _, err := ch.ASCII(70, 20); err != nil {
		t.Fatalf("ASCII: %v", err)
	}

	if _, err := GablesChart(m, u, 0, 100, 49); err == nil {
		t.Error("bad range must be rejected")
	}
	if _, err := GablesChart(m, u, 0.01, 100, 1); err == nil {
		t.Error("too few samples must be rejected")
	}
}

func TestFitPointsSeries(t *testing.T) {
	pts := []roofline.Point{
		{Intensity: 1, Attainable: units.GopsPerSec(10)},
		{Intensity: 8, Attainable: units.GopsPerSec(40)},
	}
	s := FitPointsSeries("measured", pts)
	if len(s.X) != 2 || s.X[1] != 8 || s.Y[0] != 10e9 {
		t.Errorf("series = %+v", s)
	}
}

func TestNiceTicksLog(t *testing.T) {
	ticks := niceTicks(0.01, 100, true, 0)
	if len(ticks) != 5 { // 0.01, 0.1, 1, 10, 100
		t.Errorf("log ticks = %v", ticks)
	}
}

func TestNiceTicksLinear(t *testing.T) {
	ticks := niceTicks(0, 10, false, 6)
	if len(ticks) != 6 || ticks[0] != 0 || ticks[5] != 10 {
		t.Errorf("linear ticks = %v", ticks)
	}
}

func TestFormatTick(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		40e9:   "40G",
		1.5e6:  "1.5M",
		2000:   "2K",
		0.001:  "1e-03",
		3:      "3",
		2.5e12: "2.5T",
	}
	for in, want := range cases {
		if got := formatTick(in); got != want {
			t.Errorf("formatTick(%v) = %q, want %q", in, got, want)
		}
	}
}
