package erb

import (
	"testing"
)

func TestValidateModelAgainstSimulator(t *testing.T) {
	sys := system(t)
	res, err := ValidateModel(sys, ValidationOptions{CPU: "CPU", Accel: "GPU"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 20 { // 4 intensities × 5 fractions
		t.Fatalf("cells = %d, want 20", len(res.Cells))
	}
	// The paper's accuracy bar: correct shape, reasonable relative error.
	if !res.ShapeConsistent {
		t.Error("model and simulator must order the grid identically")
	}
	if res.MeanRelError > 0.10 {
		t.Errorf("mean relative error = %.1f%%, want under 10%%", 100*res.MeanRelError)
	}
	if res.MaxRelError > 0.30 {
		t.Errorf("max relative error = %.1f%%, want under 30%%", 100*res.MaxRelError)
	}
	for _, c := range res.Cells {
		if c.Predicted <= 0 || c.Measured <= 0 {
			t.Fatalf("degenerate cell %+v", c)
		}
		// The model is an upper bound in spirit; the simulator adds
		// warmup and queueing, so measurements should rarely exceed
		// the bound by more than a whisker.
		if c.Measured > c.Predicted*1.10 {
			t.Errorf("cell f=%v fpw=%d: measured %.3g exceeds bound %.3g by >10%%",
				c.F, c.FlopsPerWord, c.Measured, c.Predicted)
		}
	}
}

func TestValidateModelOptions(t *testing.T) {
	sys := system(t)
	if _, err := ValidateModel(sys, ValidationOptions{CPU: "CPU", Accel: "CPU"}); err == nil {
		t.Error("identical IPs must be rejected")
	}
	if _, err := ValidateModel(sys, ValidationOptions{}); err == nil {
		t.Error("missing names must be rejected")
	}
}
