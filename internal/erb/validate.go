package erb

import (
	"context"
	"fmt"
	"math"

	"github.com/gables-model/gables/internal/core"
	"github.com/gables-model/gables/internal/eval"
	"github.com/gables-model/gables/internal/gridplan"
	"github.com/gables-model/gables/internal/kernel"
	"github.com/gables-model/gables/internal/parallel"
	"github.com/gables-model/gables/internal/sim"
)

// This file cross-validates the analytic Gables model against the
// discrete-event substrate: the paper's stated accuracy goal is that
// "Gables's performance predictions as parameters change should at the
// very least have the correct shape and reasonable relative error",
// leaving absolute accuracy to cycle-level simulation. ValidateModel
// quantifies exactly that: over a (work-split × intensity) grid it
// compares the model's Pattainable against the measured concurrent
// throughput of the simulated SoC running the same assignment with
// device-resident execution (no coordination overhead, which the base
// model does not represent).

// ValidationCell is one grid comparison.
type ValidationCell struct {
	// F is the accelerator work fraction.
	F float64
	// FlopsPerWord selects the intensity (I = FlopsPerWord/8 for the
	// read+write kernel).
	FlopsPerWord int
	// Predicted is the model's bound in flops/s.
	Predicted float64
	// Measured is the simulated throughput in flops/s.
	Measured float64
	// RelError is |Measured−Predicted|/Predicted.
	RelError float64
}

// ValidationResult summarizes a grid.
type ValidationResult struct {
	Cells []ValidationCell
	// MeanRelError and MaxRelError aggregate |error| across cells.
	MeanRelError, MaxRelError float64
	// ShapeConsistent reports whether model and simulator order every
	// pair of cells the same way (no rank inversions beyond ties
	// within 2%): the paper's "correct shape".
	ShapeConsistent bool
	// Plan summarizes the coarse-to-fine planner's work when
	// ValidationOptions.Refine was set (nil for dense grids).
	Plan *gridplan.Stats
}

// ValidationOptions configure the grid.
type ValidationOptions struct {
	// CPU and Accel name the two IPs.
	CPU, Accel string
	// Fractions defaults to {0, 0.25, 0.5, 0.75, 1}.
	Fractions []float64
	// FlopsPerWord defaults to {8, 64, 512, 4096}.
	FlopsPerWord []int
	// Words defaults to 4 Mi.
	Words int
	// Trials defaults to 2.
	Trials int
	// Workers bounds the grid's worker pool; 0 uses the
	// GABLES_PARALLEL/GOMAXPROCS default.
	Workers int
	// Refine routes the measured (sim) column through the coarse-to-fine
	// gridplan planner instead of the dense per-cell fan-out. The zero
	// Options value is gridplan's exact mode — every cell still
	// evaluated, the plan byte-verified against the dense grid — so
	// opting in is safe by default; set Mode: gridplan.ModeFast to
	// actually skip cells. Nil keeps the dense grid.
	Refine *gridplan.Options
}

func (o *ValidationOptions) applyDefaults() {
	if len(o.Fractions) == 0 {
		o.Fractions = []float64{0, 0.25, 0.5, 0.75, 1}
	}
	if len(o.FlopsPerWord) == 0 {
		o.FlopsPerWord = []int{8, 64, 512, 4096}
	}
	if o.Words == 0 {
		o.Words = 4 << 20
	}
	if o.Trials == 0 {
		o.Trials = 2
	}
}

// ValidateModel runs the grid. The analytic side uses the Gables SoC
// derived from the simulated chip's configured parameters with the
// read+write kernel's effective link bandwidths (the same pessimistic
// rooflines §IV would measure).
func ValidateModel(sys *sim.System, opts ValidationOptions) (*ValidationResult, error) {
	opts.applyDefaults()
	if opts.CPU == "" || opts.Accel == "" || opts.CPU == opts.Accel {
		return nil, fmt.Errorf("erb: validation needs two distinct IPs")
	}

	// Derive the model inputs by measurement, as §IV prescribes —
	// using the same read+write kernel the grid runs.
	derived, err := DeriveGables(sys, []string{opts.CPU, opts.Accel}, map[string]kernel.Pattern{
		opts.CPU:   kernel.ReadWrite,
		opts.Accel: kernel.ReadWrite,
	})
	if err != nil {
		return nil, err
	}
	model, err := core.New(derived)
	if err != nil {
		return nil, err
	}
	// Both sides of each cell go through the eval contract: the analytic
	// backend wraps the measurement-derived model, the sim backend measures
	// the identical Query (same fingerprint, shared result cache entries).
	analytic, err := eval.NewAnalyticModel(model, []string{opts.CPU, opts.Accel})
	if err != nil {
		return nil, err
	}
	simEv := eval.NewSim()

	// The grid cells are fully independent; fan them out. Each computed
	// cell gets its own sim.System via the result cache (runs never share
	// an engine; repeated and concurrent-identical cells are deduplicated),
	// and cells are collected in grid order so the aggregates below are
	// byte-identical at any pool size.
	type gridCell struct {
		fpw int
		f   float64
	}
	var grid []gridCell
	for _, fpw := range opts.FlopsPerWord {
		for _, f := range opts.Fractions {
			grid = append(grid, gridCell{fpw: fpw, f: f})
		}
	}
	// The analytic column is answered in one batch call up front: the
	// whole grid shares the injected model's hoisted terms and one result
	// arena, and the batch contract guarantees each Predicted value is
	// bitwise what a per-cell analytic.Evaluate would have produced.
	qs := make([]eval.Query, len(grid))
	for i, c := range grid {
		work, err := eval.SplitWork(sys.Config(), opts.Words, c.fpw, kernel.ReadWrite, []eval.Share{
			{IP: opts.CPU, Fraction: 1 - c.f}, {IP: opts.Accel, Fraction: c.f},
		})
		if err != nil {
			return nil, err
		}
		qs[i] = eval.Query{Chip: sys.Config(), Work: work, Trials: opts.Trials}
	}
	preds := make([]eval.Outcome, len(qs))
	if err := eval.EvaluateBatch(context.Background(), analytic, qs, preds); err != nil {
		return nil, err
	}

	makeCell := func(i int, measured float64) ValidationCell {
		cell := ValidationCell{
			F: grid[i].f, FlopsPerWord: grid[i].fpw,
			Predicted: preds[i].Attainable,
			Measured:  measured,
		}
		if cell.Predicted > 0 {
			cell.RelError = math.Abs(cell.Measured-cell.Predicted) / cell.Predicted
		}
		return cell
	}

	var cells []ValidationCell
	var planStats *gridplan.Stats
	if opts.Refine != nil {
		// Coarse-to-fine measured column: the planner evaluates the grid
		// corners densely and interpolates trusted interiors (exact mode
		// evaluates everything and byte-verifies the plan). The analytic
		// column above is already closed-form and stays dense.
		ro := *opts.Refine
		if ro.Workers == 0 {
			ro.Workers = opts.Workers
		}
		plan := gridplan.Plan{
			Rows:  len(opts.FlopsPerWord),
			Cols:  len(opts.Fractions),
			Build: func(r, c int) (eval.Query, error) { return qs[r*len(opts.Fractions)+c], nil },
		}
		gres, err := gridplan.Run(context.Background(), simEv, plan, ro)
		if err != nil {
			return nil, fmt.Errorf("erb: validation refinement: %w", err)
		}
		cells = make([]ValidationCell, 0, len(grid))
		for r := range opts.FlopsPerWord {
			for c := range opts.Fractions {
				i := r*len(opts.Fractions) + c
				cells = append(cells, makeCell(i, gres.At(r, c).Outcome.Attainable))
			}
		}
		planStats = &gres.Stats
	} else {
		var err error
		cells, err = parallel.Map(context.Background(), opts.Workers, grid,
			func(ctx context.Context, i int, c gridCell) (ValidationCell, error) {
				meas, err := simEv.Evaluate(ctx, qs[i])
				if err != nil {
					return ValidationCell{}, err
				}
				return makeCell(i, meas.Attainable), nil
			})
		if err != nil {
			return nil, err
		}
	}

	res := &ValidationResult{Cells: cells, ShapeConsistent: true, Plan: planStats}
	for _, cell := range cells {
		res.MeanRelError += cell.RelError
		res.MaxRelError = math.Max(res.MaxRelError, cell.RelError)
	}
	if len(res.Cells) > 0 {
		res.MeanRelError /= float64(len(res.Cells))
	}

	// Shape: check all pairs for rank inversions (ignoring near-ties).
	for i := range res.Cells {
		for j := i + 1; j < len(res.Cells); j++ {
			a, b := res.Cells[i], res.Cells[j]
			if nearlyEqual(a.Predicted, b.Predicted, 0.02) || nearlyEqual(a.Measured, b.Measured, 0.02) {
				continue
			}
			if (a.Predicted < b.Predicted) != (a.Measured < b.Measured) {
				res.ShapeConsistent = false
			}
		}
	}
	return res, nil
}

func nearlyEqual(a, b, rel float64) bool {
	return math.Abs(a-b) <= rel*math.Max(math.Abs(a), math.Abs(b))
}
