// Package erb is the empirical-roofline harness: it applies the paper's
// §IV methodology — run the Algorithm 1 micro-benchmark across operational
// intensities and array sizes, take the best achieved performance as a
// pessimistic ("ceiling") roofline estimate — to the simulated SoC, just as
// the paper's Android app applies it to Snapdragon silicon. The name nods
// to the Empirical Roofline Toolkit that inspired the kernel's structure.
package erb

import (
	"context"
	"fmt"

	"github.com/gables-model/gables/internal/core"
	"github.com/gables-model/gables/internal/eval"
	"github.com/gables-model/gables/internal/gridplan"
	"github.com/gables-model/gables/internal/kernel"
	"github.com/gables-model/gables/internal/parallel"
	"github.com/gables-model/gables/internal/roofline"
	"github.com/gables-model/gables/internal/sim"
	"github.com/gables-model/gables/internal/simcache"
	"github.com/gables-model/gables/internal/units"
)

// SweepOptions configure a roofline measurement.
type SweepOptions struct {
	// Pattern is the kernel variant: the paper uses ReadWrite on the
	// CPU and DSP and StreamCopy on the GPU.
	Pattern kernel.Pattern
	// WorkingSet is the array footprint; it should be far larger than
	// any on-chip cache so the DRAM roofline is measured. Defaults to
	// 16 MiB.
	WorkingSet units.Bytes
	// Trials repeats each kernel; defaults to 3.
	Trials int
	// MaxExp sweeps flops-per-word over powers of two up to 2^MaxExp;
	// defaults to 11 (1..2048).
	MaxExp int
	// Workers bounds the sweep's worker pool; 0 uses the
	// GABLES_PARALLEL/GOMAXPROCS default.
	Workers int
}

func (o *SweepOptions) applyDefaults() {
	if o.WorkingSet == 0 {
		o.WorkingSet = 16 << 20
	}
	if o.Trials == 0 {
		o.Trials = 3
	}
	if o.MaxExp == 0 {
		o.MaxExp = 11
	}
}

// MeasureRoofline sweeps the micro-benchmark on one IP of the simulated
// SoC (device-resident, no coordination — the §IV-B methodology) and
// returns the measured points plus the fitted pessimistic roofline.
func MeasureRoofline(sys *sim.System, ipName string, opts SweepOptions) ([]roofline.Point, *roofline.Model, error) {
	opts.applyDefaults()
	kernels, err := kernel.Sweep(ipName, opts.WorkingSet, opts.Trials,
		kernel.PowersOfTwo(opts.MaxExp), opts.Pattern)
	if err != nil {
		return nil, nil, err
	}
	// Each intensity point is an independent measurement; each goes
	// through the content-addressed result cache, which builds a fresh
	// sim.System per computed point (runs never share an engine) and
	// coalesces concurrent workers computing the same point.
	pts, err := parallel.Map(context.Background(), opts.Workers, kernels,
		func(_ context.Context, _ int, k kernel.Kernel) (roofline.Point, error) {
			//lint:ignore evalboundary raw §IV measurement substrate: sweeps characterize the machine the evaluators answer queries about
			res, err := simcache.Run(sys.Config(), []sim.Assignment{{IP: ipName, Kernel: k}}, sim.RunOptions{})
			if err != nil {
				return roofline.Point{}, fmt.Errorf("erb: sweep %s: %w", k.Name, err)
			}
			r := res.IPs[0]
			if r.Bytes <= 0 || r.Rate <= 0 {
				return roofline.Point{}, fmt.Errorf("erb: sweep %s: degenerate measurement", k.Name)
			}
			return roofline.Point{
				// Intensity as observed: flops per byte actually moved.
				Intensity:  units.Intensity(r.Flops / r.Bytes),
				Attainable: units.OpsPerSec(r.Rate),
			}, nil
		})
	if err != nil {
		return nil, nil, err
	}
	fit, err := roofline.Fit(ipName, pts)
	if err != nil {
		return nil, nil, err
	}
	return pts, fit, nil
}

// CachePoint is one sample of a footprint sweep.
type CachePoint struct {
	// WorkingSet is the array footprint.
	WorkingSet units.Bytes
	// Bandwidth is the achieved bytes/s.
	Bandwidth units.BytesPerSec
}

// MeasureCacheBandwidth sweeps array sizes at low intensity, reproducing
// the §IV-B observation that "the CPU can obtain higher bandwidth from its
// internal caches by using smaller micro-benchmark array sizes."
func MeasureCacheBandwidth(sys *sim.System, ipName string, sizes []units.Bytes, p kernel.Pattern) ([]CachePoint, error) {
	if len(sizes) == 0 {
		return nil, fmt.Errorf("erb: no sizes to sweep")
	}
	var out []CachePoint
	for _, ws := range sizes {
		k := kernel.Kernel{
			Name: fmt.Sprintf("%s/ws=%d", ipName, int(ws)), WorkingSet: ws,
			Trials: 8, FlopsPerWord: 1, Pattern: p,
		}
		//lint:ignore evalboundary raw §IV measurement substrate: the cache-size sweep characterizes the memory hierarchy itself
		res, err := simcache.Run(sys.Config(), []sim.Assignment{{IP: ipName, Kernel: k}}, sim.RunOptions{})
		if err != nil {
			return nil, err
		}
		out = append(out, CachePoint{WorkingSet: ws, Bandwidth: units.BytesPerSec(res.IPs[0].Bandwidth)})
	}
	return out, nil
}

// MixingPoint is one cell of the §IV-C mixing analysis (the paper's
// Figure 8): the performance of running fraction f of a fixed total work
// on the accelerator, concurrently with the CPU's 1−f share, normalized to
// all work on the CPU at intensity 1.
type MixingPoint struct {
	// F is the fraction of work at the accelerator.
	F float64
	// FlopsPerWord selects the line (intensity = FlopsPerWord/8 under
	// the read+write kernel).
	FlopsPerWord int
	// Rate is the absolute concurrent throughput in flops/s.
	Rate float64
	// Normalized is Rate over the baseline.
	Normalized float64
}

// MixingOptions configure the experiment.
type MixingOptions struct {
	// CPU and Accel name the two IPs; the work split is between them.
	CPU, Accel string
	// Fractions lists the f values; defaults to 0..1 in eighths, the
	// paper's x-axis.
	Fractions []float64
	// FlopsPerWord lists the intensity lines; defaults to
	// {8, 32, 128, 512, 2048, 8192} — operational intensities
	// {1, 4, 16, 64, 256, 1024} under the 8-bytes-per-word read+write
	// kernel, the paper's lines.
	FlopsPerWord []int
	// Words is the total array length; total work per line is
	// Words×FlopsPerWord×Trials regardless of the split. Defaults to
	// 4 Mi words (16 MiB).
	Words int
	// Trials defaults to 2.
	Trials int
	// Workers bounds the grid's worker pool; 0 uses the
	// GABLES_PARALLEL/GOMAXPROCS default.
	Workers int
	// Evaluator answers the grid's queries; nil uses the process default
	// (eval.Default(), "sim" unless reconfigured). The experiment charges
	// host coordination, so backends that cannot represent it (analytic)
	// reject the grid rather than silently answering a different question.
	Evaluator eval.Evaluator
	// Refine, when non-nil, routes the grid through the coarse-to-fine
	// planner instead of evaluating every cell: a sparse lattice is
	// simulated, probed tiles outside the tolerance are re-simulated,
	// and trusted interiors are interpolated. The zero Options value is
	// gridplan's exact mode — every cell still evaluated, the plan
	// byte-verified — so opting in is safe by default; set Mode:
	// gridplan.ModeFast to actually skip cells. Nil keeps the dense
	// grid.
	Refine *gridplan.Options
}

func (o *MixingOptions) applyDefaults() {
	if len(o.Fractions) == 0 {
		for i := 0; i <= 8; i++ {
			o.Fractions = append(o.Fractions, float64(i)/8)
		}
	}
	if len(o.FlopsPerWord) == 0 {
		o.FlopsPerWord = []int{8, 32, 128, 512, 2048, 8192}
	}
	if o.Words == 0 {
		o.Words = 4 << 20
	}
	if o.Trials == 0 {
		o.Trials = 2
	}
}

// MixingResult holds the full grid plus the baseline.
type MixingResult struct {
	// BaselineRate is all-CPU performance at intensity 1 (flops/s),
	// the normalization denominator.
	BaselineRate float64
	// Points holds one entry per (line, fraction), line-major.
	Points []MixingPoint
	// Plan summarizes the coarse-to-fine planner's work when
	// MixingOptions.Refine was set (nil for dense grids).
	Plan *gridplan.Stats
}

// Mixing runs the §IV-C experiment on the simulated SoC: the CPU and the
// accelerator split the array and run concurrently with host coordination
// charged (the IPs are devices the CPU shepherds), total work held constant
// within each line.
func Mixing(sys *sim.System, opts MixingOptions) (*MixingResult, error) {
	opts.applyDefaults()
	if opts.CPU == "" || opts.Accel == "" || opts.CPU == opts.Accel {
		return nil, fmt.Errorf("erb: mixing needs two distinct IPs, got %q and %q", opts.CPU, opts.Accel)
	}
	for _, f := range opts.Fractions {
		if f < 0 || f > 1 {
			return nil, fmt.Errorf("erb: mixing fraction %v outside [0,1]", f)
		}
	}

	ev := opts.Evaluator
	if ev == nil {
		ev = eval.Default()
	}

	// run answers one cell through the evaluator contract. The default sim
	// backend measures through the result cache: a computed cell gets its
	// own freshly instantiated system (runs never share an engine),
	// repeated cells — the baseline reappears in the grid as (f=0, fpw=8) —
	// are served from memory, and concurrent workers on the same cell
	// coalesce onto one computation.
	run := func(ctx context.Context, f float64, fpw int) (float64, error) {
		work, err := eval.SplitWork(sys.Config(), opts.Words, fpw, kernel.ReadWrite, []eval.Share{
			{IP: opts.CPU, Fraction: 1 - f}, {IP: opts.Accel, Fraction: f},
		})
		if err != nil {
			return 0, err
		}
		o, err := ev.Evaluate(ctx, eval.Query{
			Chip: sys.Config(), Work: work, Trials: opts.Trials, Coordination: true,
		})
		if err != nil {
			return 0, err
		}
		return o.Attainable, nil
	}

	baseline, err := run(context.Background(), 0, 8) // all CPU at intensity 1
	if err != nil {
		return nil, fmt.Errorf("erb: mixing baseline: %w", err)
	}
	if baseline <= 0 {
		return nil, fmt.Errorf("erb: mixing baseline rate is zero")
	}

	if opts.Refine != nil {
		return mixingRefined(sys, ev, opts, baseline)
	}

	type gridCell struct {
		fpw int
		f   float64
	}
	var grid []gridCell
	for _, fpw := range opts.FlopsPerWord {
		for _, f := range opts.Fractions {
			grid = append(grid, gridCell{fpw: fpw, f: f})
		}
	}
	points, err := parallel.Map(context.Background(), opts.Workers, grid,
		func(ctx context.Context, _ int, c gridCell) (MixingPoint, error) {
			rate, err := run(ctx, c.f, c.fpw)
			if err != nil {
				return MixingPoint{}, fmt.Errorf("erb: mixing f=%v fpw=%d: %w", c.f, c.fpw, err)
			}
			return MixingPoint{
				F: c.f, FlopsPerWord: c.fpw,
				Rate: rate, Normalized: rate / baseline,
			}, nil
		})
	if err != nil {
		return nil, err
	}
	return &MixingResult{BaselineRate: baseline, Points: points}, nil
}

// mixingRefined runs the mixing grid through the coarse-to-fine planner
// (rows = intensity lines, columns = fractions). Exact-mode refinement
// produces byte-identical Points to the dense grid; fast mode trades
// interpolated interiors for fewer simulations, with the stats recorded
// on the result.
func mixingRefined(sys *sim.System, ev eval.Evaluator, opts MixingOptions, baseline float64) (*MixingResult, error) {
	ro := *opts.Refine
	if ro.Workers == 0 {
		ro.Workers = opts.Workers
	}
	plan := gridplan.Plan{
		Rows: len(opts.FlopsPerWord),
		Cols: len(opts.Fractions),
		Build: func(r, c int) (eval.Query, error) {
			work, err := eval.SplitWork(sys.Config(), opts.Words, opts.FlopsPerWord[r], kernel.ReadWrite, []eval.Share{
				{IP: opts.CPU, Fraction: 1 - opts.Fractions[c]}, {IP: opts.Accel, Fraction: opts.Fractions[c]},
			})
			if err != nil {
				return eval.Query{}, err
			}
			return eval.Query{
				Chip: sys.Config(), Work: work, Trials: opts.Trials, Coordination: true,
			}, nil
		},
	}
	res, err := gridplan.Run(context.Background(), ev, plan, ro)
	if err != nil {
		return nil, fmt.Errorf("erb: mixing refinement: %w", err)
	}
	points := make([]MixingPoint, 0, plan.Rows*plan.Cols)
	for r, fpw := range opts.FlopsPerWord {
		for c, f := range opts.Fractions {
			rate := res.At(r, c).Outcome.Attainable
			points = append(points, MixingPoint{
				F: f, FlopsPerWord: fpw,
				Rate: rate, Normalized: rate / baseline,
			})
		}
	}
	return &MixingResult{BaselineRate: baseline, Points: points, Plan: &res.Stats}, nil
}

// Line extracts one intensity line of the grid, in fraction order.
func (m *MixingResult) Line(fpw int) []MixingPoint {
	var out []MixingPoint
	for _, p := range m.Points {
		if p.FlopsPerWord == fpw {
			out = append(out, p)
		}
	}
	return out
}

// DeriveGables measures rooflines for the named IPs (the first is the
// reference CPU) and assembles the core Gables SoC description from them —
// the §IV → §III bridge: acceleration Ai and bandwidth Bi per IP from
// measurement, Bpeak from the system's configured DRAM rate. patterns maps
// IP name to its kernel variant; missing entries use ReadWrite.
func DeriveGables(sys *sim.System, ipNames []string, patterns map[string]kernel.Pattern) (*core.SoC, error) {
	if len(ipNames) == 0 {
		return nil, fmt.Errorf("erb: no IPs to derive from")
	}
	fits := make([]*roofline.Model, len(ipNames))
	for i, name := range ipNames {
		p := kernel.ReadWrite
		if patterns != nil {
			if pp, ok := patterns[name]; ok {
				p = pp
			}
		}
		_, fit, err := MeasureRoofline(sys, name, SweepOptions{Pattern: p})
		if err != nil {
			return nil, err
		}
		fits[i] = fit
	}
	ref := fits[0]
	s := &core.SoC{
		Name:            sys.Config().Name + " (measured)",
		Peak:            ref.Peak,
		MemoryBandwidth: units.BytesPerSec(sys.Config().DRAMBandwidth),
	}
	for i, fit := range fits {
		s.IPs = append(s.IPs, core.IP{
			Name:         ipNames[i],
			Acceleration: float64(fit.Peak) / float64(ref.Peak),
			Bandwidth:    fit.Bandwidth,
		})
	}
	// Guard against floating-point drift on the reference's A0.
	s.IPs[0].Acceleration = 1
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}
