package erb

import (
	"testing"

	"github.com/gables-model/gables/internal/sim"
)

func benchSystem(b *testing.B) *sim.System {
	b.Helper()
	s, err := sim.New(sim.Snapdragon835())
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// The grid benchmarks compare one worker against the GOMAXPROCS pool over
// the same (fraction x intensity) cells; on one core they coincide.
func benchValidate(b *testing.B, workers int) {
	sys := benchSystem(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ValidateModel(sys, ValidationOptions{CPU: "CPU", Accel: "GPU", Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkValidateModelSequential(b *testing.B) { benchValidate(b, 1) }
func BenchmarkValidateModelParallel(b *testing.B)   { benchValidate(b, 0) }

func benchMixing(b *testing.B, workers int) {
	sys := benchSystem(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Mixing(sys, MixingOptions{CPU: "CPU", Accel: "GPU", Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMixingSequential(b *testing.B) { benchMixing(b, 1) }
func BenchmarkMixingParallel(b *testing.B)   { benchMixing(b, 0) }
