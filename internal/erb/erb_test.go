package erb

import (
	"math"
	"testing"

	"github.com/gables-model/gables/internal/kernel"
	"github.com/gables-model/gables/internal/sim"
	"github.com/gables-model/gables/internal/units"
)

func system(t *testing.T) *sim.System {
	t.Helper()
	s, err := sim.New(sim.Snapdragon835())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestFigure7aCPU fits the CPU roofline from simulated measurements and
// checks the paper's Figure 7a headline numbers.
func TestFigure7aCPU(t *testing.T) {
	sys := system(t)
	pts, fit, err := MeasureRoofline(sys, "CPU", SweepOptions{Pattern: kernel.ReadWrite})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 12 { // powers of two 1..2048
		t.Fatalf("points = %d, want 12", len(pts))
	}
	if got := fit.Peak.Gops(); math.Abs(got-7.5)/7.5 > 0.03 {
		t.Errorf("CPU peak = %v GFLOPS/s, paper: 7.5", got)
	}
	if got := fit.Bandwidth.GB(); math.Abs(got-15.1)/15.1 > 0.05 {
		t.Errorf("CPU bandwidth = %v GB/s, paper: 15.1", got)
	}
}

// TestFigure7bGPU checks Figure 7b via the stream kernel.
func TestFigure7bGPU(t *testing.T) {
	sys := system(t)
	_, fit, err := MeasureRoofline(sys, "GPU", SweepOptions{Pattern: kernel.StreamCopy})
	if err != nil {
		t.Fatal(err)
	}
	if got := fit.Peak.Gops(); math.Abs(got-349.6)/349.6 > 0.03 {
		t.Errorf("GPU peak = %v GFLOPS/s, paper: 349.6", got)
	}
	if got := fit.Bandwidth.GB(); math.Abs(got-24.4)/24.4 > 0.05 {
		t.Errorf("GPU bandwidth = %v GB/s, paper: 24.4", got)
	}
	// The §IV-B acceleration estimate: A1 ≈ 47×.
	_, cpuFit, err := MeasureRoofline(sys, "CPU", SweepOptions{Pattern: kernel.ReadWrite})
	if err != nil {
		t.Fatal(err)
	}
	a := float64(fit.Peak) / float64(cpuFit.Peak)
	if a < 44 || a > 50 {
		t.Errorf("A1 = %v, paper: 46.6 ≈ 47", a)
	}
}

// TestFigure9DSP checks the DSP scalar unit's roofline.
func TestFigure9DSP(t *testing.T) {
	sys := system(t)
	_, fit, err := MeasureRoofline(sys, "DSP", SweepOptions{
		Pattern: kernel.ReadWrite, WorkingSet: 8 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := fit.Peak.Gops(); math.Abs(got-3.0)/3.0 > 0.03 {
		t.Errorf("DSP peak = %v GFLOPS/s, paper: 3.0", got)
	}
	if got := fit.Bandwidth.GB(); math.Abs(got-5.4)/5.4 > 0.06 {
		t.Errorf("DSP bandwidth = %v GB/s, Figure 9: 5.4", got)
	}
}

func TestMeasureRooflineErrors(t *testing.T) {
	sys := system(t)
	if _, _, err := MeasureRoofline(sys, "ghost", SweepOptions{}); err == nil {
		t.Error("unknown IP must be rejected")
	}
}

func TestMeasureCacheBandwidth(t *testing.T) {
	sys := system(t)
	sizes := []units.Bytes{256 << 10, 1 << 20, 16 << 20}
	pts, err := MeasureCacheBandwidth(sys, "CPU", sizes, kernel.ReadOnly)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// Small footprints (fit the 2 MiB cache) must beat the DRAM-bound
	// large footprint — the §IV-B cache observation.
	if pts[0].Bandwidth <= pts[2].Bandwidth {
		t.Errorf("cache-resident %v must beat DRAM-bound %v",
			pts[0].Bandwidth.GB(), pts[2].Bandwidth.GB())
	}
	if _, err := MeasureCacheBandwidth(sys, "CPU", nil, kernel.ReadOnly); err == nil {
		t.Error("empty sweep must be rejected")
	}
}

// TestFigure8Mixing checks the qualitative shape the paper reports: low
// intensity offload slows down; high intensity offload approaches the
// ~39–47× acceleration.
func TestFigure8Mixing(t *testing.T) {
	sys := system(t)
	res, err := Mixing(sys, MixingOptions{
		CPU: "CPU", Accel: "GPU",
		Fractions:    []float64{0, 0.25, 0.5, 0.75, 1},
		FlopsPerWord: []int{8, 512, 8192},
		Words:        2 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BaselineRate <= 0 {
		t.Fatal("baseline rate missing")
	}

	low := res.Line(8) // intensity 1
	if len(low) != 5 {
		t.Fatalf("line length = %d", len(low))
	}
	if low[0].Normalized < 0.97 || low[0].Normalized > 1.03 {
		t.Errorf("f=0 at I=1 must be the baseline, got %v", low[0].Normalized)
	}
	if last := low[len(low)-1]; last.Normalized >= 1 {
		t.Errorf("full offload at I=1 must slow down, got %v×", last.Normalized)
	}

	high := res.Line(8192) // intensity 1024
	best := 0.0
	for _, p := range high {
		if p.Normalized > best {
			best = p.Normalized
		}
	}
	if best < 25 || best > 50 {
		t.Errorf("peak speedup at I=1024 = %v×, paper observes 39.4", best)
	}
	// Monotone trend across intensities at f=1: more reuse, more win.
	if high[len(high)-1].Normalized <= low[len(low)-1].Normalized {
		t.Error("speedup at f=1 must grow with intensity")
	}
}

func TestMixingValidation(t *testing.T) {
	sys := system(t)
	if _, err := Mixing(sys, MixingOptions{CPU: "CPU", Accel: "CPU"}); err == nil {
		t.Error("same IP twice must be rejected")
	}
	if _, err := Mixing(sys, MixingOptions{CPU: "CPU", Accel: "GPU",
		Fractions: []float64{2}}); err == nil {
		t.Error("fraction > 1 must be rejected")
	}
	if _, err := Mixing(sys, MixingOptions{}); err == nil {
		t.Error("missing IP names must be rejected")
	}
}

func TestDeriveGables(t *testing.T) {
	sys := system(t)
	s, err := DeriveGables(sys, []string{"CPU", "GPU", "DSP"},
		map[string]kernel.Pattern{"GPU": kernel.StreamCopy})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("derived SoC invalid: %v", err)
	}
	if s.IPs[0].Acceleration != 1 {
		t.Error("reference acceleration must be exactly 1")
	}
	aGPU := s.IPs[1].Acceleration
	if aGPU < 44 || aGPU > 50 {
		t.Errorf("derived A_GPU = %v, want ~46.6", aGPU)
	}
	aDSP := s.IPs[2].Acceleration
	if aDSP < 0.35 || aDSP > 0.45 {
		t.Errorf("derived A_DSP = %v, want ~0.4", aDSP)
	}
	if s.MemoryBandwidth.GB() != 30 {
		t.Errorf("Bpeak = %v, want 30", s.MemoryBandwidth.GB())
	}

	if _, err := DeriveGables(sys, nil, nil); err == nil {
		t.Error("empty IP list must be rejected")
	}
}
