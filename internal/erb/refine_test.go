package erb

import (
	"reflect"
	"testing"

	"github.com/gables-model/gables/internal/gridplan"
	"github.com/gables-model/gables/internal/simcache"
)

// TestMixingRefineExactMatchesDense pins the coarse-to-fine wiring: the
// mixing grid with Refine in exact mode (the zero Options value)
// produces byte-identical Points to the dense grid, plus plan stats.
func TestMixingRefineExactMatchesDense(t *testing.T) {
	sys := system(t)
	opts := MixingOptions{
		CPU: "CPU", Accel: "GPU",
		Fractions:    []float64{0, 0.25, 0.5, 0.75, 1},
		FlopsPerWord: []int{8, 512, 8192},
		Words:        1 << 20,
	}
	simcache.ResetDefault()
	dense, err := Mixing(sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	refOpts := opts
	refOpts.Refine = &gridplan.Options{RowStride: 2, ColStride: 2}
	refined, err := Mixing(sys, refOpts)
	if err != nil {
		t.Fatal(err)
	}
	if refined.Plan == nil {
		t.Fatal("refined run reported no plan stats")
	}
	if dense.Plan != nil {
		t.Error("dense run reported plan stats")
	}
	if refined.BaselineRate != dense.BaselineRate {
		t.Errorf("baseline %v vs dense %v", refined.BaselineRate, dense.BaselineRate)
	}
	if !reflect.DeepEqual(refined.Points, dense.Points) {
		t.Errorf("exact-mode refined grid diverged from dense grid:\nrefined %+v\ndense   %+v", refined.Points, dense.Points)
	}
	if got := refined.Plan.Evaluated + refined.Plan.Interpolated; got != len(dense.Points) {
		t.Errorf("plan stats cover %d cells, grid has %d", got, len(dense.Points))
	}
}

// TestMixingRefineFastStaysInBand runs the same grid in fast mode and
// checks interpolated cells stay within twice the tolerance of the dense
// truth (the band exact mode enforces).
func TestMixingRefineFastStaysInBand(t *testing.T) {
	sys := system(t)
	opts := MixingOptions{
		CPU: "CPU", Accel: "GPU",
		Fractions:    []float64{0, 0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1},
		FlopsPerWord: []int{8, 32, 128, 512},
		Words:        1 << 20,
	}
	simcache.ResetDefault()
	dense, err := Mixing(sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	const tol = 0.6
	fastOpts := opts
	fastOpts.Refine = &gridplan.Options{RowStride: 3, ColStride: 4, Tolerance: tol, Mode: gridplan.ModeFast}
	fast, err := Mixing(sys, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Plan.Evaluated >= len(dense.Points) {
		t.Errorf("fast mode evaluated the whole grid (%d of %d cells)", fast.Plan.Evaluated, len(dense.Points))
	}
	for i := range dense.Points {
		d, f := dense.Points[i], fast.Points[i]
		if d.F != f.F || d.FlopsPerWord != f.FlopsPerWord {
			t.Fatalf("point %d order mismatch", i)
		}
		if diff := absRel(f.Rate, d.Rate); diff > 2*tol {
			t.Errorf("f=%v fpw=%d: fast rate off by %.4f (> %.2f)", d.F, d.FlopsPerWord, diff, 2*tol)
		}
	}
}

func absRel(got, want float64) float64 {
	if want == 0 {
		return 0
	}
	d := got - want
	if d < 0 {
		d = -d
	}
	return d / want
}

// TestValidateRefineExactMatchesDense pins the same contract for the
// validation grid: ValidateModel with Refine in exact mode (the zero
// Options value) produces byte-identical Cells and aggregates to the
// dense grid, plus plan stats.
func TestValidateRefineExactMatchesDense(t *testing.T) {
	sys := system(t)
	opts := ValidationOptions{
		CPU: "CPU", Accel: "GPU",
		Fractions:    []float64{0, 0.25, 0.5, 0.75, 1},
		FlopsPerWord: []int{8, 512, 8192},
		Words:        1 << 20,
	}
	simcache.ResetDefault()
	dense, err := ValidateModel(sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	refOpts := opts
	refOpts.Refine = &gridplan.Options{RowStride: 2, ColStride: 2}
	refined, err := ValidateModel(sys, refOpts)
	if err != nil {
		t.Fatal(err)
	}
	if refined.Plan == nil {
		t.Fatal("refined run reported no plan stats")
	}
	if dense.Plan != nil {
		t.Error("dense run reported plan stats")
	}
	if !reflect.DeepEqual(refined.Cells, dense.Cells) {
		t.Errorf("exact-mode refined grid diverged from dense grid:\nrefined %+v\ndense   %+v", refined.Cells, dense.Cells)
	}
	if refined.MeanRelError != dense.MeanRelError || refined.MaxRelError != dense.MaxRelError ||
		refined.ShapeConsistent != dense.ShapeConsistent {
		t.Errorf("refined aggregates diverged: mean %v/%v max %v/%v shape %v/%v",
			refined.MeanRelError, dense.MeanRelError, refined.MaxRelError, dense.MaxRelError,
			refined.ShapeConsistent, dense.ShapeConsistent)
	}
	if got := refined.Plan.Evaluated + refined.Plan.Interpolated; got != len(dense.Cells) {
		t.Errorf("plan stats cover %d cells, grid has %d", got, len(dense.Cells))
	}
}
