package usecase

import (
	"github.com/gables-model/gables/internal/units"
)

// This file is the usecase library: dataflow graphs for the paper's
// Figure 4 streaming scenario and the Table I camera usecases, with stage
// demands sized from the §II-B frame math. Block names match the
// soc.Snapdragon835Like catalog entry. Demands are per item — per video
// frame for camera flows, per one second of stream for Figure 4.

// opsPerByte scales a byte count into an op count at a given intensity,
// keeping stage definitions readable.
func opsPerByte(b units.Bytes, i float64) units.Ops { return units.Ops(float64(b) * i) }

// StreamingWiFi builds the Figure 4 usecase: streaming Internet content
// over WiFi. Per one second of a stream at the given video resolution and
// frame rate: IP packets land in an insecure buffer, the crypto block
// decrypts into secure memory, the demuxed video stream is decoded into
// display frame buffers while audio is DMA'd to the audio DSP, and the
// display controller consumes the frames.
func StreamingWiFi(r Resolution, fps float64) *Graph {
	const (
		bitrate    = 20e6 / 8 // 20 Mb/s stream → bytes/s
		audioBytes = 48000 * 4
	)
	frame := float64(FrameBytes(r, YUV420))
	video := frame * fps
	return &Graph{
		Name: "Streaming Internet content over WiFi",
		Stages: []Stage{
			// Modem writes packet payloads to the insecure buffer.
			{Name: "WiFi ingest", Block: "Modem",
				Ops:      opsPerByte(bitrate, 0.5),
				BytesOut: bitrate},
			// CPU assembles application buffers and handles control.
			{Name: "stream buffering", Block: "CPU",
				Ops:     opsPerByte(bitrate, 2),
				BytesIn: bitrate, BytesOut: bitrate},
			// Crypto decrypts into secure memory.
			{Name: "decrypt", Block: "Crypto",
				Ops:     opsPerByte(bitrate, 4),
				BytesIn: bitrate, BytesOut: bitrate},
			// Video decoder reads the compressed stream and writes
			// full frames.
			{Name: "video decode", Block: "VDEC",
				Ops:     units.Ops(video * 0.5),
				BytesIn: units.Bytes(bitrate), BytesOut: units.Bytes(video)},
			// Audio DSP DMAs its stream into SRAM and decodes.
			{Name: "audio decode", Block: "Audio",
				Ops:     opsPerByte(audioBytes, 8),
				BytesIn: audioBytes},
			// Display controller scans out each frame.
			{Name: "display scanout", Block: "Display",
				Ops:     units.Ops(video * 0.1),
				BytesIn: units.Bytes(video)},
		},
	}
}

// cameraCommon returns the stages every camera usecase shares: sensor
// frames through the ISP, a GPU preview path, and display scanout, plus
// CPU coordination (the §II-B "third bottleneck": IP coordination routed
// through the CPU).
func cameraCommon(r Resolution, passes float64) []Stage {
	frame := FrameBytes(r, YUV420)
	raw := FrameBytes(r, RAW10)
	return []Stage{
		{Name: "ISP noise reduction", Block: "ISP",
			Ops:     opsPerByte(frame, 6),
			BytesIn: units.Bytes(float64(raw) + float64(frame)*(passes-1)), BytesOut: units.Bytes(float64(frame) * passes)},
		{Name: "GPU preview render", Block: "GPU",
			Ops:     opsPerByte(frame, 4),
			BytesIn: frame, BytesOut: FrameBytes(FHD, RGBA8888)},
		{Name: "display scanout", Block: "Display",
			Ops:     opsPerByte(FrameBytes(FHD, RGBA8888), 0.1),
			BytesIn: FrameBytes(FHD, RGBA8888)},
		{Name: "CPU coordination", Block: "CPU",
			Ops:     opsPerByte(frame, 0.3),
			BytesIn: units.Bytes(float64(frame) * 0.1), BytesOut: units.Bytes(float64(frame) * 0.1)},
	}
}

// HDRPlus builds the Table I "HDR+" usecase: a burst of frames fused by
// the IPU (the Pixel-Visual-Core-style high-dynamic-range pipeline, §II-A)
// with JPEG encoding of the result.
func HDRPlus(r Resolution) *Graph {
	frame := FrameBytes(r, YUV420)
	burst := 5.0 // frames fused per output shot
	return &Graph{
		Name: "HDR+",
		Stages: append(cameraCommon(r, 2), []Stage{
			{Name: "IPU HDR fusion", Block: "IPU",
				Ops:     opsPerByte(frame, 40),
				BytesIn: units.Bytes(float64(frame) * burst), BytesOut: frame},
			{Name: "JPEG encode", Block: "JPEG",
				Ops:     opsPerByte(frame, 8),
				BytesIn: frame, BytesOut: units.Bytes(float64(frame) * 0.1)},
		}...),
	}
}

// VideoCapture builds the Table I "Videocapture" usecase: camera frames
// encoded by the video encoder with reference-frame traffic.
func VideoCapture(r Resolution, referenceFrames int) *Graph {
	frame := FrameBytes(r, YUV420)
	refs := float64(referenceFrames)
	return &Graph{
		Name: "Videocapture",
		Stages: append(cameraCommon(r, 2), Stage{
			Name: "video encode", Block: "VENC",
			Ops:     opsPerByte(frame, 10),
			BytesIn: units.Bytes(float64(frame) * (1 + refs)), BytesOut: units.Bytes(float64(frame) * 0.1),
		}),
	}
}

// VideoCaptureHFR builds the Table I high-frame-rate capture variant: the
// same stages as VideoCapture with the §II-B noise-reduction passes (WNR +
// TNR) that track up to five reference frames through DRAM. The item rate
// (e.g., 240 FPS) is applied by the rate analysis, not the graph.
func VideoCaptureHFR(r Resolution) *Graph {
	g := VideoCapture(r, 5)
	g.Name = "Videocapture (HFR)"
	// HFR adds a second noise-reduction pass: temporal NR over the
	// wavelet-NR output.
	frame := FrameBytes(r, YUV420)
	g.Stages = append(g.Stages, Stage{
		Name: "ISP temporal NR", Block: "ISP",
		Ops:     opsPerByte(frame, 4),
		BytesIn: units.Bytes(float64(frame) * 2), BytesOut: frame,
	})
	return g
}

// VideoPlaybackUI builds the Table I "Videoplayback UI" usecase: decode,
// UI composition on the GPU with the 2D scaler, display scanout.
func VideoPlaybackUI(r Resolution) *Graph {
	frame := FrameBytes(r, YUV420)
	ui := FrameBytes(FHD, RGBA8888)
	return &Graph{
		Name: "Videoplayback UI",
		Stages: []Stage{
			{Name: "video decode", Block: "VDEC",
				Ops:     opsPerByte(frame, 5),
				BytesIn: units.Bytes(float64(frame) * 0.1), BytesOut: frame},
			{Name: "G2D scale", Block: "G2D",
				Ops:     opsPerByte(frame, 1),
				BytesIn: frame, BytesOut: ui},
			{Name: "GPU UI composition", Block: "GPU",
				Ops:     opsPerByte(ui, 4),
				BytesIn: units.Bytes(float64(ui) * 2), BytesOut: ui},
			{Name: "display scanout", Block: "Display",
				Ops:     opsPerByte(ui, 0.1),
				BytesIn: ui},
			{Name: "CPU coordination", Block: "CPU",
				Ops:     opsPerByte(frame, 0.2),
				BytesIn: units.Bytes(float64(frame) * 0.05), BytesOut: units.Bytes(float64(frame) * 0.05)},
		},
	}
}

// GoogleLens builds the Table I "Google Lens" usecase: camera frames
// analyzed by on-device vision models on the DSP.
func GoogleLens(r Resolution) *Graph {
	frame := FrameBytes(r, YUV420)
	return &Graph{
		Name: "Google Lens",
		Stages: append(cameraCommon(r, 1), Stage{
			Name: "DSP vision inference", Block: "DSP",
			Ops:     opsPerByte(frame, 30),
			BytesIn: frame, BytesOut: units.Bytes(float64(frame) * 0.01),
		}),
	}
}
