// Package usecase models SoC application "usecases" the way §II-B of the
// Gables paper describes them: application-level dataflows from sensors
// through processing engines, where multiple IPs are exercised
// concurrently and inter-IP data travels through DRAM buffers.
//
// A Graph holds per-item (typically per-frame) stages bound to SoC blocks;
// steady-state analysis computes each block's compute and bandwidth demand
// at a target item rate, finds the maximum sustainable rate and its
// bottleneck, and derives the Gables software parameters (work fractions fi
// and operational intensities Ii) that the paper's model consumes.
package usecase

import (
	"fmt"
	"math"

	"github.com/gables-model/gables/internal/core"
	"github.com/gables-model/gables/internal/soc"
	"github.com/gables-model/gables/internal/units"
)

// Stage is one processing step of a dataflow, bound to an IP block. Per
// item (frame, packet batch, audio buffer...) the stage performs Ops
// operations, reads BytesIn from DRAM and writes BytesOut back. Following
// the base Gables assumption, all inter-stage communication flows through
// DRAM, so a producer's BytesOut and its consumer's BytesIn both count.
type Stage struct {
	// Name labels the step, e.g. "wavelet noise reduction".
	Name string
	// Block names the SoC block that executes the stage.
	Block string
	// Ops is the computation per item.
	Ops units.Ops
	// BytesIn is DRAM read traffic per item.
	BytesIn units.Bytes
	// BytesOut is DRAM write traffic per item.
	BytesOut units.Bytes
}

// Bytes returns the stage's total DRAM traffic per item.
func (s Stage) Bytes() units.Bytes { return s.BytesIn + s.BytesOut }

// Graph is a usecase dataflow.
type Graph struct {
	// Name labels the usecase, e.g. "Streaming Internet content over WiFi".
	Name string
	// Stages holds the processing steps. Order documents the flow but
	// does not affect steady-state analysis (all stages run
	// concurrently on their blocks, pipelined across items).
	Stages []Stage
}

// Validate checks the graph is well formed.
func (g *Graph) Validate() error {
	if len(g.Stages) == 0 {
		return fmt.Errorf("usecase: %s: needs at least one stage", g.Name)
	}
	for i, s := range g.Stages {
		if s.Name == "" {
			return fmt.Errorf("usecase: %s: stage %d has empty name", g.Name, i)
		}
		if s.Block == "" {
			return fmt.Errorf("usecase: %s: stage %q has no block", g.Name, s.Name)
		}
		if s.Ops < 0 || s.BytesIn < 0 || s.BytesOut < 0 {
			return fmt.Errorf("usecase: %s: stage %q has negative demand", g.Name, s.Name)
		}
		if s.Ops == 0 && s.Bytes() == 0 {
			return fmt.Errorf("usecase: %s: stage %q demands nothing", g.Name, s.Name)
		}
	}
	return nil
}

// Blocks returns the distinct block names the graph exercises, in first-use
// order — the row of Table I for this usecase.
func (g *Graph) Blocks() []string {
	seen := make(map[string]bool)
	var out []string
	for _, s := range g.Stages {
		if !seen[s.Block] {
			seen[s.Block] = true
			out = append(out, s.Block)
		}
	}
	return out
}

// BlockDemand aggregates per-item demand per block.
type BlockDemand struct {
	Block string
	Ops   units.Ops
	Bytes units.Bytes
}

// Demands returns per-block aggregate demand per item, in first-use order.
func (g *Graph) Demands() []BlockDemand {
	index := make(map[string]int)
	var out []BlockDemand
	for _, s := range g.Stages {
		i, ok := index[s.Block]
		if !ok {
			i = len(out)
			index[s.Block] = i
			out = append(out, BlockDemand{Block: s.Block})
		}
		out[i].Ops += s.Ops
		out[i].Bytes += s.Bytes()
	}
	return out
}

// TotalBytes returns the graph's total DRAM traffic per item.
func (g *Graph) TotalBytes() units.Bytes {
	var total units.Bytes
	for _, s := range g.Stages {
		total += s.Bytes()
	}
	return total
}

// TotalOps returns the graph's total computation per item.
func (g *Graph) TotalOps() units.Ops {
	var total units.Ops
	for _, s := range g.Stages {
		total += s.Ops
	}
	return total
}

// RateAnalysis is the steady-state result of running the graph on a chip at
// some item rate.
type RateAnalysis struct {
	// Rate is the analyzed item rate (items/s, e.g. frames/s).
	Rate float64
	// DRAMDemand is total DRAM bandwidth demand at that rate.
	DRAMDemand units.BytesPerSec
	// DRAMUtilization is demand over the chip's DRAM bandwidth.
	DRAMUtilization float64
	// BlockUtilization maps block name to the max of its compute and
	// link utilizations at the rate.
	BlockUtilization map[string]float64
	// Feasible reports whether every utilization is at most 1.
	Feasible bool
}

// AnalyzeRate computes steady-state demands of the graph on the chip at a
// target rate.
func AnalyzeRate(g *Graph, chip *soc.Chip, rate float64) (*RateAnalysis, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := chip.Validate(); err != nil {
		return nil, err
	}
	if rate <= 0 || math.IsNaN(rate) {
		return nil, fmt.Errorf("usecase: %s: rate must be positive, got %v", g.Name, rate)
	}
	res := &RateAnalysis{
		Rate:             rate,
		BlockUtilization: make(map[string]float64),
		Feasible:         true,
	}
	for _, d := range g.Demands() {
		blk, err := chip.Block(d.Block)
		if err != nil {
			return nil, err
		}
		cu := float64(d.Ops) * rate / float64(blk.Peak)
		bu := float64(d.Bytes) * rate / float64(blk.Bandwidth)
		u := math.Max(cu, bu)
		res.BlockUtilization[d.Block] = u
		if u > 1 {
			res.Feasible = false
		}
	}
	res.DRAMDemand = units.BytesPerSec(float64(g.TotalBytes()) * rate)
	res.DRAMUtilization = float64(res.DRAMDemand) / float64(chip.DRAMBandwidth)
	if res.DRAMUtilization > 1 {
		res.Feasible = false
	}
	return res, nil
}

// Constraint kinds for MaxRate's tie-break, in attribution priority order.
const (
	limitCompute = iota
	limitLink
	limitDRAM
)

// MaxRate returns the maximum sustainable item rate of the graph on the
// chip and the component that limits it — the usecase-level analogue of
// Gables' Pattainable. The limit is the minimum over blocks of
// Peak/OpsPerItem and Bandwidth/BytesPerItem, and DRAM's Bpeak/TotalBytes.
//
// When two constraints bind at exactly the same rate, attribution is
// deterministic and independent of demand iteration order: compute beats
// link beats DRAM, and within a kind the lexicographically smaller block
// name wins.
func MaxRate(g *Graph, chip *soc.Chip) (float64, string, error) {
	if err := g.Validate(); err != nil {
		return 0, "", err
	}
	if err := chip.Validate(); err != nil {
		return 0, "", err
	}
	best := math.Inf(1)
	bestKind := limitDRAM
	bestBlock := ""
	limiter := ""
	// consider keeps the smaller rate; on an exact tie the lower kind,
	// then the smaller block name, wins. Rates are finite and positive
	// here (Validate rejects non-positive capacities and demands), so
	// "neither smaller nor larger" means exactly equal.
	consider := func(r float64, kind int, block, label string) {
		switch {
		case r > best:
			return
		case r < best:
			// New minimum.
		case kind > bestKind || (kind == bestKind && block >= bestBlock):
			return // tie, but the incumbent wins the tie-break
		}
		best, bestKind, bestBlock, limiter = r, kind, block, label
	}
	for _, d := range g.Demands() {
		blk, err := chip.Block(d.Block)
		if err != nil {
			return 0, "", err
		}
		if d.Ops > 0 {
			consider(float64(blk.Peak)/float64(d.Ops), limitCompute, d.Block, d.Block+" compute")
		}
		if d.Bytes > 0 {
			consider(float64(blk.Bandwidth)/float64(d.Bytes), limitLink, d.Block, d.Block+" link")
		}
	}
	if tb := g.TotalBytes(); tb > 0 {
		consider(float64(chip.DRAMBandwidth)/float64(tb), limitDRAM, "", "DRAM")
	}
	if math.IsInf(best, 1) {
		return 0, "", fmt.Errorf("usecase: %s: no binding constraint", g.Name)
	}
	return best, limiter, nil
}

// ToGables derives the Gables software parameters from the graph for the
// chip converted with the given reference block: per-IP work fractions fi
// (each block's share of total ops) and operational intensities Ii (each
// block's ops over its DRAM bytes). index must be the map returned by
// Chip.ToGables. Blocks with traffic but no ops cannot be represented in
// the base model (their intensity would be zero); such pure-DMA demand is
// folded in by assigning it one op so intensity stays finite but tiny.
//
// Demand is accumulated per IP index — several blocks may legally share
// one index — and fractions are normalized against the fold-adjusted op
// total, so they sum to 1 within core.FractionTolerance no matter how
// many zero-op blocks the fold touched.
func (g *Graph) ToGables(ipCount int, index map[string]int) (*core.Usecase, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if g.TotalOps() <= 0 {
		return nil, fmt.Errorf("usecase: %s: graph has no computation to apportion", g.Name)
	}
	ops := make([]float64, ipCount)
	bytes := make([]float64, ipCount)
	adjustedTotal := 0.0
	for _, d := range g.Demands() {
		i, ok := index[d.Block]
		if !ok {
			return nil, fmt.Errorf("usecase: %s: block %q not in IP index", g.Name, d.Block)
		}
		if i < 0 || i >= ipCount {
			return nil, fmt.Errorf("usecase: %s: block %q maps to IP %d outside [0,%d)", g.Name, d.Block, i, ipCount)
		}
		o := float64(d.Ops)
		if o == 0 {
			o = 1 // pure-DMA block: keep intensity finite
		}
		ops[i] += o
		bytes[i] += float64(d.Bytes)
		adjustedTotal += o
	}
	u := &core.Usecase{Name: g.Name, Work: make([]core.Work, ipCount), TotalOps: g.TotalOps()}
	for i := range u.Work {
		if ops[i] == 0 {
			continue // IP not exercised by this graph
		}
		u.Work[i].Fraction = ops[i] / adjustedTotal
		if bytes[i] > 0 {
			u.Work[i].Intensity = units.Intensity(ops[i] / bytes[i])
		} else {
			// No DRAM traffic: model as extremely high reuse.
			u.Work[i].Intensity = units.Intensity(math.Inf(1))
		}
	}
	return u, nil
}
