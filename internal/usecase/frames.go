package usecase

import (
	"fmt"

	"github.com/gables-model/gables/internal/units"
)

// PixelFormat describes a video frame encoding by its bytes per pixel.
type PixelFormat struct {
	Name string
	// BytesPerPixel is the storage density; YUV420 uses 6 bytes per 4
	// pixels = 1.5, the figure the paper's §II-B example uses.
	BytesPerPixel float64
}

// Common pixel formats.
var (
	YUV420   = PixelFormat{Name: "YUV420", BytesPerPixel: 1.5}
	YUV422   = PixelFormat{Name: "YUV422", BytesPerPixel: 2}
	RGBA8888 = PixelFormat{Name: "RGBA8888", BytesPerPixel: 4}
	RAW10    = PixelFormat{Name: "RAW10", BytesPerPixel: 1.25}
)

// Resolution is a frame geometry in pixels.
type Resolution struct {
	Width, Height int
}

// Common resolutions.
var (
	UHD4K = Resolution{3840, 2160}
	QHD   = Resolution{2560, 1440}
	FHD   = Resolution{1920, 1080}
	HD720 = Resolution{1280, 720}
)

// Pixels returns the pixel count.
func (r Resolution) Pixels() int { return r.Width * r.Height }

func (r Resolution) String() string { return fmt.Sprintf("%dx%d", r.Width, r.Height) }

// FrameBytes returns the size of one frame: the §II-B example computes a 4K
// YUV420 frame as 3840·2160·1.5 ≈ 12 MB.
func FrameBytes(r Resolution, f PixelFormat) units.Bytes {
	return units.Bytes(float64(r.Pixels()) * f.BytesPerPixel)
}

// StreamBandwidth returns the DRAM bandwidth of moving frames at the given
// rate with the given number of passes (each pass is one full read or
// write of the frame). The paper's HFR example — 4K at 240 FPS with ISP
// noise-reduction stages and up to five reference frames flowing through
// DRAM — multiplies a 12 MB frame by enough passes to approach a mobile
// SoC's ~30 GB/s.
func StreamBandwidth(r Resolution, f PixelFormat, fps float64, passes float64) units.BytesPerSec {
	return units.BytesPerSec(float64(FrameBytes(r, f)) * fps * passes)
}
