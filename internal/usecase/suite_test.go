package usecase

import (
	"testing"

	"github.com/gables-model/gables/internal/soc"
)

func TestNewLibraryGraphsValid(t *testing.T) {
	chip := soc.Snapdragon835Like()
	graphs := []*Graph{
		PhoneCall(),
		MoviePlayback(UHD4K, 30),
		Gaming(FHD),
		VoiceAssistant(),
		PhotoEdit(UHD4K),
		MusicPlayback(),
		VideoConference(HD720, 30),
	}
	for _, g := range graphs {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", g.Name, err)
			continue
		}
		for _, b := range g.Blocks() {
			if _, err := chip.Block(b); err != nil {
				t.Errorf("%s: %v", g.Name, err)
			}
		}
		if _, _, err := MaxRate(g, chip); err != nil {
			t.Errorf("%s: MaxRate: %v", g.Name, err)
		}
	}
}

func TestLightUsecasesAreEasy(t *testing.T) {
	// A phone call and music playback barely tax a flagship chip.
	chip := soc.Snapdragon835Like()
	for _, g := range []*Graph{PhoneCall(), MusicPlayback(), VoiceAssistant()} {
		rate, _, err := MaxRate(g, chip)
		if err != nil {
			t.Fatal(err)
		}
		if rate < 5 {
			t.Errorf("%s: max rate %v, expected ample headroom (>5x real time)", g.Name, rate)
		}
	}
}

func TestAnalyzeSuite(t *testing.T) {
	chip := soc.Snapdragon835Like()
	rep, err := AnalyzeSuite(chip, StandardSuite())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Entries) != 13 {
		t.Fatalf("entries = %d, want 13", len(rep.Entries))
	}
	if rep.Chip != chip.Name {
		t.Errorf("chip = %q", rep.Chip)
	}
	// Every entry must carry a limiter and a consistent margin.
	for _, e := range rep.Entries {
		if e.Limiter == "" {
			t.Errorf("%s: no limiter", e.Usecase)
		}
		if e.Met != (e.Margin >= 1) {
			t.Errorf("%s: met flag inconsistent with margin %v", e.Usecase, e.Margin)
		}
	}
	// The binding entry really is the worst margin.
	for _, e := range rep.Entries {
		if e.Margin < rep.Entries[rep.Binding].Margin {
			t.Errorf("binding entry %q not the worst margin", rep.Entries[rep.Binding].Usecase)
		}
	}
	// The paper's point on the 835-like chip: 4K HFR at 120+ FPS is the
	// requirement that breaks, so AllMet is false and the binding
	// usecase is the HFR capture.
	if rep.AllMet {
		t.Error("the 4K HFR requirement must fail on a 30 GB/s-class chip")
	}
	if rep.Entries[rep.Binding].Usecase != "Videocapture (HFR)" {
		t.Errorf("binding usecase = %q, want the HFR capture", rep.Entries[rep.Binding].Usecase)
	}
	// Everyday usecases must all pass.
	for _, e := range rep.Entries {
		switch e.Usecase {
		case "Phone call", "Music playback (screen off)", "Movie playback", "Voice assistant (always-on)":
			if !e.Met {
				t.Errorf("%s must be acceptable, margin %v (limited by %s)", e.Usecase, e.Margin, e.Limiter)
			}
		}
	}
}

func TestAnalyzeSuiteValidation(t *testing.T) {
	chip := soc.Snapdragon835Like()
	if _, err := AnalyzeSuite(chip, nil); err == nil {
		t.Error("empty suite must be rejected")
	}
	if _, err := AnalyzeSuite(chip, []Requirement{{Graph: nil, TargetRate: 1}}); err == nil {
		t.Error("nil graph must be rejected")
	}
	if _, err := AnalyzeSuite(chip, []Requirement{{Graph: PhoneCall(), TargetRate: 0}}); err == nil {
		t.Error("zero target must be rejected")
	}
}

func TestSuiteAverageIsImmaterial(t *testing.T) {
	// §I: "The average is immaterial." A suite can have a stellar
	// average margin while still failing its binding usecase.
	chip := soc.Snapdragon835Like()
	rep, err := AnalyzeSuite(chip, StandardSuite())
	if err != nil {
		t.Fatal(err)
	}
	avg := 0.0
	for _, e := range rep.Entries {
		avg += e.Margin
	}
	avg /= float64(len(rep.Entries))
	if avg <= 1 {
		t.Skip("suite average happens to be below 1; the property is vacuous here")
	}
	if rep.AllMet {
		t.Error("a passing average must not imply a passing suite")
	}
}
