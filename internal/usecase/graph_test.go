package usecase

import (
	"math"
	"testing"

	"github.com/gables-model/gables/internal/soc"
	"github.com/gables-model/gables/internal/units"
)

func TestGraphValidate(t *testing.T) {
	good := &Graph{Name: "g", Stages: []Stage{{Name: "s", Block: "CPU", Ops: 10, BytesIn: 5}}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}
	cases := []*Graph{
		{Name: "empty"},
		{Name: "noname", Stages: []Stage{{Block: "CPU", Ops: 1}}},
		{Name: "noblock", Stages: []Stage{{Name: "s", Ops: 1}}},
		{Name: "negative", Stages: []Stage{{Name: "s", Block: "CPU", Ops: -1}}},
		{Name: "nothing", Stages: []Stage{{Name: "s", Block: "CPU"}}},
	}
	for _, g := range cases {
		if err := g.Validate(); err == nil {
			t.Errorf("%s: expected error", g.Name)
		}
	}
}

func TestBlocksAndDemands(t *testing.T) {
	g := &Graph{Name: "g", Stages: []Stage{
		{Name: "a", Block: "ISP", Ops: 10, BytesIn: 4, BytesOut: 2},
		{Name: "b", Block: "GPU", Ops: 20, BytesIn: 6},
		{Name: "c", Block: "ISP", Ops: 5, BytesOut: 1},
	}}
	blocks := g.Blocks()
	if len(blocks) != 2 || blocks[0] != "ISP" || blocks[1] != "GPU" {
		t.Errorf("Blocks = %v", blocks)
	}
	d := g.Demands()
	if len(d) != 2 {
		t.Fatalf("Demands len = %d", len(d))
	}
	if d[0].Block != "ISP" || d[0].Ops != 15 || d[0].Bytes != 7 {
		t.Errorf("ISP demand = %+v", d[0])
	}
	if g.TotalOps() != 35 || g.TotalBytes() != 13 {
		t.Errorf("totals = %v ops, %v bytes", float64(g.TotalOps()), float64(g.TotalBytes()))
	}
}

func TestFrameBytes(t *testing.T) {
	// The §II-B example: a 4K YUV420 frame is ~12 MB
	// (3840·2160·1.5 = 12,441,600 bytes).
	got := FrameBytes(UHD4K, YUV420)
	if float64(got) != 3840*2160*1.5 {
		t.Errorf("FrameBytes(4K, YUV420) = %v, want 12441600", float64(got))
	}
	if float64(got)/units.Mega < 12 || float64(got)/units.Mega > 13 {
		t.Errorf("4K YUV420 frame = %v MB, paper says ~12 MB", float64(got)/units.Mega)
	}
}

func TestHFRBandwidthWall(t *testing.T) {
	// §II-B: 4K at 240 FPS with WNR + TNR and up to five reference
	// frames through DRAM approaches a mobile SoC's ~30 GB/s. With 10
	// full-frame passes: 12.4 MB × 240 × 10 ≈ 29.9 GB/s.
	bw := StreamBandwidth(UHD4K, YUV420, 240, 10)
	if bw.GB() < 25 || bw.GB() > 35 {
		t.Errorf("HFR bandwidth = %v GB/s, want ~30", bw.GB())
	}
}

func TestAnalyzeRate(t *testing.T) {
	chip := soc.Snapdragon835Like()
	g := VideoCapture(FHD, 2)
	res, err := AnalyzeRate(g, chip, 30)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Errorf("1080p30 capture must be feasible on an 835-class chip: %+v", res)
	}
	if res.DRAMUtilization <= 0 || res.DRAMUtilization > 1 {
		t.Errorf("DRAM utilization = %v", res.DRAMUtilization)
	}
	for b, u := range res.BlockUtilization {
		if u < 0 || u > 1 {
			t.Errorf("block %s utilization = %v", b, u)
		}
	}
}

func TestAnalyzeRateInfeasible(t *testing.T) {
	chip := soc.Snapdragon835Like()
	g := VideoCaptureHFR(UHD4K)
	res, err := AnalyzeRate(g, chip, 240)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's point: 4K240 HFR blows past the SoC's bandwidth.
	if res.Feasible {
		t.Errorf("4K240 HFR must be infeasible, DRAM util = %v", res.DRAMUtilization)
	}
	if res.DRAMUtilization <= 1 {
		t.Errorf("expected DRAM oversubscription, got %v", res.DRAMUtilization)
	}
}

func TestAnalyzeRateValidation(t *testing.T) {
	chip := soc.Snapdragon835Like()
	g := VideoCapture(FHD, 2)
	if _, err := AnalyzeRate(g, chip, 0); err == nil {
		t.Error("zero rate must be rejected")
	}
	if _, err := AnalyzeRate(g, chip, math.NaN()); err == nil {
		t.Error("NaN rate must be rejected")
	}
	bad := &Graph{Name: "bad", Stages: []Stage{{Name: "s", Block: "NoSuchBlock", Ops: 1}}}
	if _, err := AnalyzeRate(bad, chip, 30); err == nil {
		t.Error("unknown block must be rejected")
	}
}

func TestMaxRate(t *testing.T) {
	chip := soc.Snapdragon835Like()
	g := VideoCaptureHFR(UHD4K)
	rate, limiter, err := MaxRate(g, chip)
	if err != nil {
		t.Fatal(err)
	}
	if rate <= 0 || rate >= 240 {
		t.Errorf("max 4K HFR rate = %v FPS, expected below 240", rate)
	}
	if limiter == "" {
		t.Error("limiter must be named")
	}
	// Consistency: the graph is feasible just below the max rate and
	// infeasible just above.
	below, err := AnalyzeRate(g, chip, rate*0.999)
	if err != nil {
		t.Fatal(err)
	}
	if !below.Feasible {
		t.Error("rate just below max must be feasible")
	}
	above, err := AnalyzeRate(g, chip, rate*1.001)
	if err != nil {
		t.Fatal(err)
	}
	if above.Feasible {
		t.Error("rate just above max must be infeasible")
	}
}

func TestMaxRate1080pFeasibleAt30(t *testing.T) {
	chip := soc.Snapdragon835Like()
	g := VideoCapture(FHD, 2)
	rate, _, err := MaxRate(g, chip)
	if err != nil {
		t.Fatal(err)
	}
	if rate < 30 {
		t.Errorf("1080p capture max rate = %v FPS, expected at least 30", rate)
	}
}

func TestToGables(t *testing.T) {
	chip := soc.Snapdragon835Like()
	s, index, err := chip.ToGables("CPU")
	if err != nil {
		t.Fatal(err)
	}
	g := GoogleLens(FHD)
	u, err := g.ToGables(len(s.IPs), index)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.ValidateFor(s); err != nil {
		t.Fatalf("derived usecase invalid: %v", err)
	}
	// Fractions must sum to 1 and the DSP must carry the dominant share
	// (its inference stage has the most ops).
	var sum, dspF float64
	for i, w := range u.Work {
		sum += w.Fraction
		if i == index["DSP"] {
			dspF = w.Fraction
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("fractions sum to %v", sum)
	}
	if dspF < 0.3 {
		t.Errorf("DSP fraction = %v, expected dominant", dspF)
	}
}

func TestToGablesErrors(t *testing.T) {
	g := &Graph{Name: "g", Stages: []Stage{{Name: "s", Block: "X", Ops: 1, BytesIn: 1}}}
	if _, err := g.ToGables(2, map[string]int{}); err == nil {
		t.Error("missing index entry must be rejected")
	}
	if _, err := g.ToGables(1, map[string]int{"X": 5}); err == nil {
		t.Error("out-of-range index must be rejected")
	}
	noOps := &Graph{Name: "g", Stages: []Stage{{Name: "dma", Block: "X", BytesIn: 10}}}
	if _, err := noOps.ToGables(1, map[string]int{"X": 0}); err == nil {
		t.Error("graph with zero total ops must be rejected")
	}
}

func TestLibraryGraphsValid(t *testing.T) {
	chip := soc.Snapdragon835Like()
	graphs := []*Graph{
		StreamingWiFi(FHD, 30),
		HDRPlus(UHD4K),
		VideoCapture(UHD4K, 2),
		VideoCaptureHFR(UHD4K),
		VideoPlaybackUI(UHD4K),
		GoogleLens(FHD),
	}
	for _, g := range graphs {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", g.Name, err)
			continue
		}
		// Every block the graph names must exist on the chip.
		for _, b := range g.Blocks() {
			if _, err := chip.Block(b); err != nil {
				t.Errorf("%s: %v", g.Name, err)
			}
		}
		// Every library graph must be analyzable end to end.
		if _, _, err := MaxRate(g, chip); err != nil {
			t.Errorf("%s: MaxRate: %v", g.Name, err)
		}
	}
}

func TestTableOne(t *testing.T) {
	rows := TableOne()
	if len(rows) != 5 {
		t.Fatalf("Table I has %d rows, want 5", len(rows))
	}
	// Every row's active IPs must be Table I columns.
	cols := map[string]bool{}
	for _, c := range TableOneColumns {
		cols[c] = true
	}
	for _, r := range rows {
		for _, a := range r.Active {
			if !cols[a] {
				t.Errorf("%s: unknown IP column %q", r.Usecase, a)
			}
		}
		// §II-B: at least half of all listed IPs... the paper says at
		// least half of all IPs are concurrently active in camera
		// usecases; each row lists 5–6 of the 10 columns.
		if len(r.Active) < 5 {
			t.Errorf("%s: only %d active IPs", r.Usecase, len(r.Active))
		}
		if !r.Uses("AP") {
			t.Errorf("%s: CPU coordination means AP is always active", r.Usecase)
		}
	}
	// Spot checks against the printed table.
	if !rows[0].Uses("IPU") || rows[0].Uses("VDEC") {
		t.Error("HDR+ row mismatch")
	}
	if !rows[3].Uses("VDEC") || rows[3].Uses("ISP") {
		t.Error("Videoplayback UI row mismatch")
	}
	if !rows[4].Uses("DSP") {
		t.Error("Google Lens row must use the DSP")
	}
}

func TestAnalyzeTableOne(t *testing.T) {
	stats := AnalyzeTableOne(TableOne())
	if stats.MinActive < 5 || stats.MaxActive > 6 {
		t.Errorf("stats = %+v, want 5..6 active", stats)
	}
	// Different usecases use different IP subsets (the paper's point) —
	// Videocapture and its HFR variant share a set, so 4 distinct sets.
	if stats.DistinctSets != 4 {
		t.Errorf("distinct sets = %d, want 4", stats.DistinctSets)
	}
}

func TestTableOneRowUses(t *testing.T) {
	r := TableOneRow{Usecase: "x", Active: []string{"AP", "GPU"}}
	if !r.Uses("GPU") || r.Uses("DSP") {
		t.Error("Uses is wrong")
	}
}

func TestResolutionHelpers(t *testing.T) {
	if UHD4K.Pixels() != 3840*2160 {
		t.Error("4K pixel count wrong")
	}
	if UHD4K.String() != "3840x2160" {
		t.Errorf("String = %q", UHD4K.String())
	}
}
