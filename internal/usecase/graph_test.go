package usecase

import (
	"math"
	"testing"

	"github.com/gables-model/gables/internal/core"
	"github.com/gables-model/gables/internal/soc"
	"github.com/gables-model/gables/internal/units"
)

func TestGraphValidate(t *testing.T) {
	good := &Graph{Name: "g", Stages: []Stage{{Name: "s", Block: "CPU", Ops: 10, BytesIn: 5}}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}
	cases := []*Graph{
		{Name: "empty"},
		{Name: "noname", Stages: []Stage{{Block: "CPU", Ops: 1}}},
		{Name: "noblock", Stages: []Stage{{Name: "s", Ops: 1}}},
		{Name: "negative", Stages: []Stage{{Name: "s", Block: "CPU", Ops: -1}}},
		{Name: "nothing", Stages: []Stage{{Name: "s", Block: "CPU"}}},
	}
	for _, g := range cases {
		if err := g.Validate(); err == nil {
			t.Errorf("%s: expected error", g.Name)
		}
	}
}

func TestBlocksAndDemands(t *testing.T) {
	g := &Graph{Name: "g", Stages: []Stage{
		{Name: "a", Block: "ISP", Ops: 10, BytesIn: 4, BytesOut: 2},
		{Name: "b", Block: "GPU", Ops: 20, BytesIn: 6},
		{Name: "c", Block: "ISP", Ops: 5, BytesOut: 1},
	}}
	blocks := g.Blocks()
	if len(blocks) != 2 || blocks[0] != "ISP" || blocks[1] != "GPU" {
		t.Errorf("Blocks = %v", blocks)
	}
	d := g.Demands()
	if len(d) != 2 {
		t.Fatalf("Demands len = %d", len(d))
	}
	if d[0].Block != "ISP" || d[0].Ops != 15 || d[0].Bytes != 7 {
		t.Errorf("ISP demand = %+v", d[0])
	}
	if g.TotalOps() != 35 || g.TotalBytes() != 13 {
		t.Errorf("totals = %v ops, %v bytes", float64(g.TotalOps()), float64(g.TotalBytes()))
	}
}

func TestFrameBytes(t *testing.T) {
	// The §II-B example: a 4K YUV420 frame is ~12 MB
	// (3840·2160·1.5 = 12,441,600 bytes).
	got := FrameBytes(UHD4K, YUV420)
	if float64(got) != 3840*2160*1.5 {
		t.Errorf("FrameBytes(4K, YUV420) = %v, want 12441600", float64(got))
	}
	if float64(got)/units.Mega < 12 || float64(got)/units.Mega > 13 {
		t.Errorf("4K YUV420 frame = %v MB, paper says ~12 MB", float64(got)/units.Mega)
	}
}

func TestHFRBandwidthWall(t *testing.T) {
	// §II-B: 4K at 240 FPS with WNR + TNR and up to five reference
	// frames through DRAM approaches a mobile SoC's ~30 GB/s. With 10
	// full-frame passes: 12.4 MB × 240 × 10 ≈ 29.9 GB/s.
	bw := StreamBandwidth(UHD4K, YUV420, 240, 10)
	if bw.GB() < 25 || bw.GB() > 35 {
		t.Errorf("HFR bandwidth = %v GB/s, want ~30", bw.GB())
	}
}

func TestAnalyzeRate(t *testing.T) {
	chip := soc.Snapdragon835Like()
	g := VideoCapture(FHD, 2)
	res, err := AnalyzeRate(g, chip, 30)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Errorf("1080p30 capture must be feasible on an 835-class chip: %+v", res)
	}
	if res.DRAMUtilization <= 0 || res.DRAMUtilization > 1 {
		t.Errorf("DRAM utilization = %v", res.DRAMUtilization)
	}
	for b, u := range res.BlockUtilization {
		if u < 0 || u > 1 {
			t.Errorf("block %s utilization = %v", b, u)
		}
	}
}

func TestAnalyzeRateInfeasible(t *testing.T) {
	chip := soc.Snapdragon835Like()
	g := VideoCaptureHFR(UHD4K)
	res, err := AnalyzeRate(g, chip, 240)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's point: 4K240 HFR blows past the SoC's bandwidth.
	if res.Feasible {
		t.Errorf("4K240 HFR must be infeasible, DRAM util = %v", res.DRAMUtilization)
	}
	if res.DRAMUtilization <= 1 {
		t.Errorf("expected DRAM oversubscription, got %v", res.DRAMUtilization)
	}
}

func TestAnalyzeRateValidation(t *testing.T) {
	chip := soc.Snapdragon835Like()
	g := VideoCapture(FHD, 2)
	if _, err := AnalyzeRate(g, chip, 0); err == nil {
		t.Error("zero rate must be rejected")
	}
	if _, err := AnalyzeRate(g, chip, math.NaN()); err == nil {
		t.Error("NaN rate must be rejected")
	}
	bad := &Graph{Name: "bad", Stages: []Stage{{Name: "s", Block: "NoSuchBlock", Ops: 1}}}
	if _, err := AnalyzeRate(bad, chip, 30); err == nil {
		t.Error("unknown block must be rejected")
	}
}

func TestMaxRate(t *testing.T) {
	chip := soc.Snapdragon835Like()
	g := VideoCaptureHFR(UHD4K)
	rate, limiter, err := MaxRate(g, chip)
	if err != nil {
		t.Fatal(err)
	}
	if rate <= 0 || rate >= 240 {
		t.Errorf("max 4K HFR rate = %v FPS, expected below 240", rate)
	}
	if limiter == "" {
		t.Error("limiter must be named")
	}
	// Consistency: the graph is feasible just below the max rate and
	// infeasible just above.
	below, err := AnalyzeRate(g, chip, rate*0.999)
	if err != nil {
		t.Fatal(err)
	}
	if !below.Feasible {
		t.Error("rate just below max must be feasible")
	}
	above, err := AnalyzeRate(g, chip, rate*1.001)
	if err != nil {
		t.Fatal(err)
	}
	if above.Feasible {
		t.Error("rate just above max must be infeasible")
	}
}

func TestMaxRate1080pFeasibleAt30(t *testing.T) {
	chip := soc.Snapdragon835Like()
	g := VideoCapture(FHD, 2)
	rate, _, err := MaxRate(g, chip)
	if err != nil {
		t.Fatal(err)
	}
	if rate < 30 {
		t.Errorf("1080p capture max rate = %v FPS, expected at least 30", rate)
	}
}

func TestToGables(t *testing.T) {
	chip := soc.Snapdragon835Like()
	s, index, err := chip.ToGables("CPU")
	if err != nil {
		t.Fatal(err)
	}
	g := GoogleLens(FHD)
	u, err := g.ToGables(len(s.IPs), index)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.ValidateFor(s); err != nil {
		t.Fatalf("derived usecase invalid: %v", err)
	}
	// Fractions must sum to 1 and the DSP must carry the dominant share
	// (its inference stage has the most ops).
	var sum, dspF float64
	for i, w := range u.Work {
		sum += w.Fraction
		if i == index["DSP"] {
			dspF = w.Fraction
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("fractions sum to %v", sum)
	}
	if dspF < 0.3 {
		t.Errorf("DSP fraction = %v, expected dominant", dspF)
	}
}

func TestToGablesErrors(t *testing.T) {
	g := &Graph{Name: "g", Stages: []Stage{{Name: "s", Block: "X", Ops: 1, BytesIn: 1}}}
	if _, err := g.ToGables(2, map[string]int{}); err == nil {
		t.Error("missing index entry must be rejected")
	}
	if _, err := g.ToGables(1, map[string]int{"X": 5}); err == nil {
		t.Error("out-of-range index must be rejected")
	}
	noOps := &Graph{Name: "g", Stages: []Stage{{Name: "dma", Block: "X", BytesIn: 10}}}
	if _, err := noOps.ToGables(1, map[string]int{"X": 0}); err == nil {
		t.Error("graph with zero total ops must be rejected")
	}
}

func TestLibraryGraphsValid(t *testing.T) {
	chip := soc.Snapdragon835Like()
	graphs := []*Graph{
		StreamingWiFi(FHD, 30),
		HDRPlus(UHD4K),
		VideoCapture(UHD4K, 2),
		VideoCaptureHFR(UHD4K),
		VideoPlaybackUI(UHD4K),
		GoogleLens(FHD),
	}
	for _, g := range graphs {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", g.Name, err)
			continue
		}
		// Every block the graph names must exist on the chip.
		for _, b := range g.Blocks() {
			if _, err := chip.Block(b); err != nil {
				t.Errorf("%s: %v", g.Name, err)
			}
		}
		// Every library graph must be analyzable end to end.
		if _, _, err := MaxRate(g, chip); err != nil {
			t.Errorf("%s: MaxRate: %v", g.Name, err)
		}
	}
}

func TestTableOne(t *testing.T) {
	rows := TableOne()
	if len(rows) != 5 {
		t.Fatalf("Table I has %d rows, want 5", len(rows))
	}
	// Every row's active IPs must be Table I columns.
	cols := map[string]bool{}
	for _, c := range TableOneColumns {
		cols[c] = true
	}
	for _, r := range rows {
		for _, a := range r.Active {
			if !cols[a] {
				t.Errorf("%s: unknown IP column %q", r.Usecase, a)
			}
		}
		// §II-B: at least half of all listed IPs... the paper says at
		// least half of all IPs are concurrently active in camera
		// usecases; each row lists 5–6 of the 10 columns.
		if len(r.Active) < 5 {
			t.Errorf("%s: only %d active IPs", r.Usecase, len(r.Active))
		}
		if !r.Uses("AP") {
			t.Errorf("%s: CPU coordination means AP is always active", r.Usecase)
		}
	}
	// Spot checks against the printed table.
	if !rows[0].Uses("IPU") || rows[0].Uses("VDEC") {
		t.Error("HDR+ row mismatch")
	}
	if !rows[3].Uses("VDEC") || rows[3].Uses("ISP") {
		t.Error("Videoplayback UI row mismatch")
	}
	if !rows[4].Uses("DSP") {
		t.Error("Google Lens row must use the DSP")
	}
}

func TestAnalyzeTableOne(t *testing.T) {
	stats := AnalyzeTableOne(TableOne())
	if stats.MinActive < 5 || stats.MaxActive > 6 {
		t.Errorf("stats = %+v, want 5..6 active", stats)
	}
	// Different usecases use different IP subsets (the paper's point) —
	// Videocapture and its HFR variant share a set, so 4 distinct sets.
	if stats.DistinctSets != 4 {
		t.Errorf("distinct sets = %d, want 4", stats.DistinctSets)
	}
}

func TestTableOneRowUses(t *testing.T) {
	r := TableOneRow{Usecase: "x", Active: []string{"AP", "GPU"}}
	if !r.Uses("GPU") || r.Uses("DSP") {
		t.Error("Uses is wrong")
	}
}

func TestResolutionHelpers(t *testing.T) {
	if UHD4K.Pixels() != 3840*2160 {
		t.Error("4K pixel count wrong")
	}
	if UHD4K.String() != "3840x2160" {
		t.Errorf("String = %q", UHD4K.String())
	}
}

// TestMaxRateTieBreak pins the deterministic limiter attribution when two
// constraints bind at exactly the same rate: compute beats link beats DRAM,
// then the lexicographically smaller block name wins — never demand
// iteration order.
func TestMaxRateTieBreak(t *testing.T) {
	chip := &soc.Chip{
		Name:          "tie-chip",
		DRAMBandwidth: 1e12,
		Blocks: []soc.Block{
			{Name: "A", Peak: 100, Bandwidth: 1e12},
			{Name: "B", Peak: 100, Bandwidth: 1e12},
		},
	}

	// Both blocks compute-bound at exactly 100/10 = 10 items/s. "B" is
	// first in demand order; "A" must still win the name tie-break.
	g := &Graph{Name: "tie", Stages: []Stage{
		{Name: "s1", Block: "B", Ops: 10},
		{Name: "s2", Block: "A", Ops: 10},
	}}
	rate, limiter, err := MaxRate(g, chip)
	if err != nil {
		t.Fatal(err)
	}
	if rate != 10 {
		t.Errorf("rate = %v, want exactly 10", rate)
	}
	if limiter != "A compute" {
		t.Errorf("limiter = %q, want %q (name tie-break)", limiter, "A compute")
	}

	// Compute and link of the same block tie at 10: compute wins.
	chip2 := &soc.Chip{
		Name:          "tie-chip2",
		DRAMBandwidth: 1e12,
		Blocks:        []soc.Block{{Name: "A", Peak: 100, Bandwidth: 50}},
	}
	g2 := &Graph{Name: "tie2", Stages: []Stage{
		{Name: "s", Block: "A", Ops: 10, BytesIn: 5},
	}}
	_, limiter, err = MaxRate(g2, chip2)
	if err != nil {
		t.Fatal(err)
	}
	if limiter != "A compute" {
		t.Errorf("limiter = %q, want %q (compute before link)", limiter, "A compute")
	}

	// Link and DRAM tie at 10: the block link wins over DRAM.
	chip3 := &soc.Chip{
		Name:          "tie-chip3",
		DRAMBandwidth: 50,
		Blocks:        []soc.Block{{Name: "A", Peak: 1e12, Bandwidth: 50}},
	}
	g3 := &Graph{Name: "tie3", Stages: []Stage{
		{Name: "s", Block: "A", Ops: 1, BytesIn: 5},
	}}
	_, limiter, err = MaxRate(g3, chip3)
	if err != nil {
		t.Fatal(err)
	}
	if limiter != "A link" {
		t.Errorf("limiter = %q, want %q (link before DRAM)", limiter, "A link")
	}
}

// TestToGablesPureDMAFold is the regression test for the pure-DMA fold:
// a graph with several zero-op blocks must still produce fractions that
// sum to 1 within core.FractionTolerance and round-trip through the
// analytic model.
func TestToGablesPureDMAFold(t *testing.T) {
	g := &Graph{Name: "dma-heavy", Stages: []Stage{
		{Name: "compute", Block: "C", Ops: 1000, BytesIn: 100, BytesOut: 100},
		{Name: "dma1", Block: "D1", BytesIn: 64},
		{Name: "dma2", Block: "D2", BytesOut: 128},
		{Name: "dma3", Block: "D3", BytesIn: 256},
		{Name: "dma4", Block: "D4", BytesOut: 512},
	}}
	index := map[string]int{"C": 0, "D1": 1, "D2": 2, "D3": 3, "D4": 4}
	u, err := g.ToGables(5, index)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, w := range u.Work {
		sum += w.Fraction
	}
	if math.Abs(sum-1) > core.FractionTolerance {
		t.Fatalf("fractions sum to %v, off by %v (> tolerance %v)", sum, math.Abs(sum-1), core.FractionTolerance)
	}

	// Round-trip: the derived usecase must be evaluable on a matching SoC.
	s := &core.SoC{
		Name:            "dma-soc",
		Peak:            units.GopsPerSec(10),
		MemoryBandwidth: units.GBPerSec(30),
		IPs: []core.IP{
			{Name: "C", Acceleration: 1, Bandwidth: units.GBPerSec(15)},
			{Name: "D1", Acceleration: 0.1, Bandwidth: units.GBPerSec(5)},
			{Name: "D2", Acceleration: 0.1, Bandwidth: units.GBPerSec(5)},
			{Name: "D3", Acceleration: 0.1, Bandwidth: units.GBPerSec(5)},
			{Name: "D4", Acceleration: 0.1, Bandwidth: units.GBPerSec(5)},
		},
	}
	m, err := core.New(s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Evaluate(u)
	if err != nil {
		t.Fatalf("round-trip through core.Model.Evaluate failed: %v", err)
	}
	if res.Attainable <= 0 {
		t.Errorf("attainable = %v, want positive", float64(res.Attainable))
	}
}

// TestToGablesAggregatesSharedIndex pins per-IP accumulation: when two
// blocks map to the same IP index, their demand must aggregate (the old
// code overwrote, keeping only the last block's share and intensity).
func TestToGablesAggregatesSharedIndex(t *testing.T) {
	g := &Graph{Name: "shared", Stages: []Stage{
		{Name: "x", Block: "X", Ops: 30, BytesIn: 10},
		{Name: "y", Block: "Y", Ops: 10, BytesIn: 10},
	}}
	u, err := g.ToGables(1, map[string]int{"X": 0, "Y": 0})
	if err != nil {
		t.Fatal(err)
	}
	if got := u.Work[0].Fraction; math.Abs(got-1) > core.FractionTolerance {
		t.Errorf("fraction = %v, want 1", got)
	}
	// Combined: 40 ops over 20 bytes = 2 ops/byte, not either block's own.
	if got := float64(u.Work[0].Intensity); got != 2 {
		t.Errorf("intensity = %v, want 2 (aggregated ops/bytes)", got)
	}
}
