package usecase

import "github.com/gables-model/gables/internal/units"

// This file extends the usecase library toward the paper's §I claim that
// "a consumer SoC must enable 10-20 important usecases — like making a
// phone call or watching a movie — to all run acceptably well", beyond the
// camera flows of Table I. Block names match soc.Snapdragon835Like.

// PhoneCall builds the voice-call usecase the paper names: modem uplink
// and downlink, the audio DSP running the voice codec and echo
// cancellation, and light CPU control. Item = one second of call.
func PhoneCall() *Graph {
	const voice = 64e3 / 8 // 64 kb/s codec → bytes/s
	return &Graph{
		Name: "Phone call",
		Stages: []Stage{
			{Name: "modem downlink", Block: "Modem",
				Ops: opsPerByte(voice, 2), BytesOut: voice},
			{Name: "voice decode + echo cancel", Block: "Audio",
				Ops: units.Ops(200e6), BytesIn: voice, BytesOut: voice},
			{Name: "modem uplink", Block: "Modem",
				Ops: opsPerByte(voice, 2), BytesIn: voice},
			{Name: "CPU call control", Block: "CPU",
				Ops: units.Ops(20e6), BytesIn: 64e3, BytesOut: 64e3},
		},
	}
}

// MoviePlayback builds the "watching a movie" usecase: hardware video
// decode, audio decode, display scanout, and CPU AV-sync. Item = one
// second of a movie at the given resolution and frame rate.
func MoviePlayback(r Resolution, fps float64) *Graph {
	const bitrate = 8e6 / 8 // 8 Mb/s stream
	frame := float64(FrameBytes(r, YUV420))
	video := frame * fps
	return &Graph{
		Name: "Movie playback",
		Stages: []Stage{
			{Name: "video decode", Block: "VDEC",
				Ops:     units.Ops(video * 0.5),
				BytesIn: units.Bytes(bitrate), BytesOut: units.Bytes(video)},
			{Name: "audio decode", Block: "Audio",
				Ops: units.Ops(300e6), BytesIn: 48000 * 4},
			{Name: "display scanout", Block: "Display",
				Ops: units.Ops(video * 0.1), BytesIn: units.Bytes(video)},
			{Name: "CPU AV sync", Block: "CPU",
				Ops: units.Ops(50e6), BytesIn: units.Bytes(bitrate), BytesOut: units.Bytes(bitrate)},
		},
	}
}

// Gaming builds a 3D-game usecase: GPU rendering dominates, with CPU game
// logic, audio mixing and display scanout. Item = one rendered frame.
func Gaming(r Resolution) *Graph {
	fb := FrameBytes(r, RGBA8888)
	return &Graph{
		Name: "3D gaming",
		Stages: []Stage{
			{Name: "CPU game logic", Block: "CPU",
				Ops: opsPerByte(fb, 1), BytesIn: units.Bytes(float64(fb) * 0.2), BytesOut: units.Bytes(float64(fb) * 0.2)},
			{Name: "GPU render", Block: "GPU",
				Ops: opsPerByte(fb, 24), BytesIn: units.Bytes(float64(fb) * 3), BytesOut: fb},
			{Name: "audio mix", Block: "Audio",
				Ops: units.Ops(4e6), BytesIn: 48000 * 4 / 60},
			{Name: "display scanout", Block: "Display",
				Ops: opsPerByte(fb, 0.1), BytesIn: fb},
		},
	}
}

// VoiceAssistant builds the always-on keyword-spotting usecase that §IV-D
// motivates the DSP scalar unit with ("designed to be (almost) always
// on"). Item = one second of listening.
func VoiceAssistant() *Graph {
	const micBytes = 16000 * 2 // 16 kHz, 16-bit mono
	return &Graph{
		Name: "Voice assistant (always-on)",
		Stages: []Stage{
			{Name: "DSP keyword spotting", Block: "DSP",
				Ops: units.Ops(500e6), BytesIn: micBytes},
			{Name: "CPU wake handling", Block: "CPU",
				Ops: units.Ops(5e6), BytesIn: 4096},
		},
	}
}

// PhotoEdit builds an on-device photo-editing usecase: GPU filters over a
// full-resolution image with JPEG re-encode. Item = one edit operation.
func PhotoEdit(r Resolution) *Graph {
	img := FrameBytes(r, RGBA8888)
	return &Graph{
		Name: "Photo edit",
		Stages: []Stage{
			{Name: "JPEG decode", Block: "JPEG",
				Ops: opsPerByte(img, 4), BytesIn: units.Bytes(float64(img) * 0.1), BytesOut: img},
			{Name: "GPU filter", Block: "GPU",
				Ops: opsPerByte(img, 16), BytesIn: img, BytesOut: img},
			{Name: "CPU UI", Block: "CPU",
				Ops: opsPerByte(img, 0.5), BytesIn: units.Bytes(float64(img) * 0.1)},
			{Name: "JPEG encode", Block: "JPEG",
				Ops: opsPerByte(img, 6), BytesIn: img, BytesOut: units.Bytes(float64(img) * 0.1)},
			{Name: "display preview", Block: "Display",
				Ops: opsPerByte(FrameBytes(FHD, RGBA8888), 0.1), BytesIn: FrameBytes(FHD, RGBA8888)},
		},
	}
}

// MusicPlayback builds the screen-off audio usecase: the little cores and
// audio DSP only. Item = one second of music.
func MusicPlayback() *Graph {
	const stream = 320e3 / 8 // 320 kb/s
	return &Graph{
		Name: "Music playback (screen off)",
		Stages: []Stage{
			{Name: "audio decode", Block: "Audio",
				Ops: units.Ops(400e6), BytesIn: stream, BytesOut: 48000 * 4},
			{Name: "CPU housekeeping", Block: "CPU",
				Ops: units.Ops(10e6), BytesIn: stream},
		},
	}
}

// VideoConference builds the two-way video-call usecase: simultaneous
// capture+encode and decode+display plus network and audio — one of the
// most concurrent flows a phone runs. Item = one second of call.
func VideoConference(r Resolution, fps float64) *Graph {
	frame := float64(FrameBytes(r, YUV420))
	video := frame * fps
	const net = 4e6 / 8 // 4 Mb/s each way
	return &Graph{
		Name: "Video conference",
		Stages: []Stage{
			{Name: "ISP capture", Block: "ISP",
				Ops: units.Ops(video * 4), BytesIn: units.Bytes(video), BytesOut: units.Bytes(video)},
			{Name: "video encode", Block: "VENC",
				Ops: units.Ops(video * 8), BytesIn: units.Bytes(video * 2), BytesOut: net},
			{Name: "video decode", Block: "VDEC",
				Ops: units.Ops(video * 4), BytesIn: net, BytesOut: units.Bytes(video)},
			{Name: "modem up+down", Block: "Modem",
				Ops: opsPerByte(2*net, 1), BytesIn: net, BytesOut: net},
			{Name: "audio duplex", Block: "Audio",
				Ops: units.Ops(400e6), BytesIn: 48000 * 4, BytesOut: 48000 * 4},
			{Name: "GPU composition", Block: "GPU",
				Ops: units.Ops(video * 2), BytesIn: units.Bytes(video), BytesOut: units.Bytes(float64(FrameBytes(FHD, RGBA8888)) * fps)},
			{Name: "display scanout", Block: "Display",
				Ops: units.Ops(video * 0.1), BytesIn: units.Bytes(float64(FrameBytes(FHD, RGBA8888)) * fps)},
			{Name: "CPU orchestration", Block: "CPU",
				Ops: units.Ops(video * 0.5), BytesIn: units.Bytes(video * 0.1), BytesOut: units.Bytes(video * 0.1)},
		},
	}
}
