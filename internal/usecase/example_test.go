package usecase_test

import (
	"fmt"

	"github.com/gables-model/gables/internal/soc"
	"github.com/gables-model/gables/internal/usecase"
)

// ExampleFrameBytes reproduces the paper's §II-B arithmetic: a 4K YUV420
// frame (6 bytes per 4 pixels) is about 12 MB.
func ExampleFrameBytes() {
	b := usecase.FrameBytes(usecase.UHD4K, usecase.YUV420)
	fmt.Printf("%.1f MB\n", float64(b)/1e6)
	// Output: 12.4 MB
}

// ExampleMaxRate asks the §II-B question directly: how fast can an
// 835-class chip capture 4K video with HFR noise reduction?
func ExampleMaxRate() {
	chip := soc.Snapdragon835Like()
	flow := usecase.VideoCaptureHFR(usecase.UHD4K)
	rate, limiter, _ := usecase.MaxRate(flow, chip)
	fmt.Printf("%.0f FPS, limited by %s\n", rate, limiter)
	// Output: 105 FPS, limited by VENC link
}

// ExampleAnalyzeSuite checks the §I criterion: every important usecase
// must run acceptably; the average is immaterial.
func ExampleAnalyzeSuite() {
	chip := soc.Snapdragon835Like()
	rep, _ := usecase.AnalyzeSuite(chip, []usecase.Requirement{
		{Graph: usecase.PhoneCall(), TargetRate: 1},
		{Graph: usecase.VideoCaptureHFR(usecase.UHD4K), TargetRate: 240},
	})
	binding := rep.Entries[rep.Binding]
	fmt.Printf("all met: %v; binding: %s (margin %.2f)\n",
		rep.AllMet, binding.Usecase, binding.Margin)
	// Output: all met: false; binding: Videocapture (HFR) (margin 0.44)
}
