package usecase

import (
	"sort"
	"strings"
)

// TableOneColumns lists the IP columns of the paper's Table I, in the
// paper's order: AP (application processor / CPU complex), Display, G2DS
// (2D graphics/scaler), GPU, ISP, JPEG, IPU, VDEC, VENC, DSP.
var TableOneColumns = []string{
	"AP", "Display", "G2DS", "GPU", "ISP", "JPEG", "IPU", "VDEC", "VENC", "DSP",
}

// TableOneRow is one usecase row of Table I: which IPs run concurrently.
type TableOneRow struct {
	Usecase string
	Active  []string
}

// TableOne reproduces the paper's Table I: five camera-application
// usecases and the IPs each exercises concurrently.
func TableOne() []TableOneRow {
	return []TableOneRow{
		{Usecase: "HDR+", Active: []string{"AP", "Display", "GPU", "ISP", "JPEG", "IPU"}},
		{Usecase: "Videocapture", Active: []string{"AP", "Display", "GPU", "ISP", "VENC"}},
		{Usecase: "Videocapture (HFR)", Active: []string{"AP", "Display", "GPU", "ISP", "VENC"}},
		{Usecase: "Videoplayback UI", Active: []string{"AP", "Display", "G2DS", "GPU", "VDEC"}},
		{Usecase: "Google Lens", Active: []string{"AP", "Display", "GPU", "ISP", "DSP"}},
	}
}

// Uses reports whether the row exercises the named IP.
func (r TableOneRow) Uses(ip string) bool {
	for _, a := range r.Active {
		if a == ip {
			return true
		}
	}
	return false
}

// ConcurrencyStats summarizes Table I the way the paper's §II-B narrative
// does: in every usecase at least half of the listed IPs are concurrently
// active, and different usecases use different IP subsets.
type ConcurrencyStats struct {
	// MinActive and MaxActive are the smallest and largest counts of
	// concurrently active IPs across usecases.
	MinActive, MaxActive int
	// DistinctSets is the number of distinct IP subsets across usecases.
	DistinctSets int
}

// AnalyzeTableOne computes concurrency statistics over rows.
func AnalyzeTableOne(rows []TableOneRow) ConcurrencyStats {
	stats := ConcurrencyStats{}
	sets := make(map[string]bool)
	for i, r := range rows {
		n := len(r.Active)
		if i == 0 || n < stats.MinActive {
			stats.MinActive = n
		}
		if n > stats.MaxActive {
			stats.MaxActive = n
		}
		key := append([]string(nil), r.Active...)
		sort.Strings(key)
		sets[strings.Join(key, ",")] = true
	}
	stats.DistinctSets = len(sets)
	return stats
}
