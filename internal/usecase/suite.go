package usecase

import (
	"context"
	"fmt"
	"math"

	"github.com/gables-model/gables/internal/eval"
	"github.com/gables-model/gables/internal/parallel"
	"github.com/gables-model/gables/internal/simcache"
	"github.com/gables-model/gables/internal/soc"
)

// This file implements suite analysis for the paper's §I design criterion:
// "a consumer SoC must enable 10-20 important usecases … to all run
// acceptably well. The average is immaterial." A Requirement binds a
// usecase dataflow to the item rate it must sustain; AnalyzeSuite checks
// every requirement on a chip and reports the binding (worst-margin)
// usecase — the one an architect must fix first.

// Requirement is one usecase with its acceptability bar.
type Requirement struct {
	// Graph is the dataflow.
	Graph *Graph
	// TargetRate is the item rate the usecase must sustain (e.g., 30
	// frames per second, or 1 for one-second-granularity flows that
	// must run in real time).
	TargetRate float64
}

// SuiteEntry is one requirement's verdict.
type SuiteEntry struct {
	// Usecase names the flow.
	Usecase string
	// TargetRate is the requirement.
	TargetRate float64
	// MaxRate is the chip's sustainable rate for the flow.
	MaxRate float64
	// Limiter names the binding component at MaxRate.
	Limiter string
	// Margin is MaxRate/TargetRate: below 1 the requirement fails.
	Margin float64
	// Met reports Margin >= 1.
	Met bool
}

// SuiteReport is the whole suite's verdict.
type SuiteReport struct {
	Chip    string
	Entries []SuiteEntry
	// AllMet is the paper's criterion: every usecase acceptable.
	AllMet bool
	// Binding is the index of the smallest-margin entry — immaterial
	// averages notwithstanding, this is the usecase that defines the
	// SoC's fitness.
	Binding int
}

// AnalyzeSuite evaluates every requirement on the chip.
func AnalyzeSuite(chip *soc.Chip, reqs []Requirement) (*SuiteReport, error) {
	if len(reqs) == 0 {
		return nil, fmt.Errorf("usecase: suite needs at least one requirement")
	}
	for i, req := range reqs {
		if req.Graph == nil {
			return nil, fmt.Errorf("usecase: requirement %d has no graph", i)
		}
		if req.TargetRate <= 0 || math.IsNaN(req.TargetRate) {
			return nil, fmt.Errorf("usecase: requirement %d (%s): target rate must be positive",
				i, req.Graph.Name)
		}
	}
	// Requirements are independent of each other — fan them out. Entries
	// come back in requirement order, so the binding fold below is
	// deterministic at any pool size.
	entries, err := parallel.Map(context.Background(), 0, reqs,
		func(_ context.Context, i int, req Requirement) (SuiteEntry, error) {
			maxRate, limiter, err := maxRateCached(req.Graph, chip)
			if err != nil {
				return SuiteEntry{}, fmt.Errorf("usecase: requirement %d (%s): %w", i, req.Graph.Name, err)
			}
			e := SuiteEntry{
				Usecase:    req.Graph.Name,
				TargetRate: req.TargetRate,
				MaxRate:    maxRate,
				Limiter:    limiter,
				Margin:     maxRate / req.TargetRate,
			}
			e.Met = e.Margin >= 1
			return e, nil
		})
	if err != nil {
		return nil, err
	}
	rep := &SuiteReport{Chip: chip.Name, Entries: entries, AllMet: true}
	worst := math.Inf(1)
	for i, e := range entries {
		if !e.Met {
			rep.AllMet = false
		}
		if e.Margin < worst {
			worst = e.Margin
			rep.Binding = i
		}
	}
	return rep, nil
}

// rateCache memoizes MaxRate across suite analyses: experiment suites and
// design-space sweeps re-evaluate the same (graph, chip) pairs many times.
// Keys derive through eval.Key, the evaluation layer's shared
// content-addressing scheme (plain exported structs, so the canonical JSON
// covers every field); the "/v2" label is the schema version — bumped for
// the deterministic limiter tie-break — and must be bumped again whenever
// Graph, Stage, or the analysis semantics change.
var rateCache = simcache.New[rated](simcache.Options{Capacity: 1024})

type rated struct {
	Rate    float64
	Limiter string
}

func maxRateCached(g *Graph, chip *soc.Chip) (float64, string, error) {
	key, err := eval.Key("usecase-maxrate/v2", g, chip)
	if err != nil {
		// Unkeyable inputs (non-finite floats) bypass the cache.
		rate, limiter, err := MaxRate(g, chip)
		return rate, limiter, err
	}
	r, err := rateCache.Get(key, func() (rated, error) {
		rate, limiter, err := MaxRate(g, chip)
		return rated{Rate: rate, Limiter: limiter}, err
	})
	if err != nil {
		return 0, "", err
	}
	return r.Rate, r.Limiter, nil
}

// StandardSuite returns a representative phone workload suite at sensible
// acceptability bars, spanning the paper's examples (camera flows, a phone
// call, watching a movie) and common daily usecases.
func StandardSuite() []Requirement {
	return []Requirement{
		{Graph: PhoneCall(), TargetRate: 1},
		{Graph: MoviePlayback(UHD4K, 30), TargetRate: 1},
		{Graph: MusicPlayback(), TargetRate: 1},
		{Graph: VoiceAssistant(), TargetRate: 1},
		{Graph: StreamingWiFi(FHD, 30), TargetRate: 1},
		{Graph: VideoConference(HD720, 30), TargetRate: 1},
		{Graph: Gaming(FHD), TargetRate: 60},
		{Graph: PhotoEdit(UHD4K), TargetRate: 10},
		{Graph: HDRPlus(UHD4K), TargetRate: 3},
		{Graph: VideoCapture(UHD4K, 2), TargetRate: 30},
		{Graph: VideoCaptureHFR(UHD4K), TargetRate: 120},
		{Graph: VideoPlaybackUI(UHD4K), TargetRate: 30},
		{Graph: GoogleLens(FHD), TargetRate: 10},
	}
}
