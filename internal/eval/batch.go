package eval

import (
	"context"
	"fmt"

	"github.com/gables-model/gables/internal/core"
)

// The grid fast path: sweeps and planners ask thousands of near-identical
// queries whose loop-invariant work (model derivation, validation
// plumbing, per-outcome allocation) dwarfs the per-cell arithmetic.
// BatchEvaluator lets a backend answer a whole query slab at once;
// EvaluateBatch is the call sites' one entry point, with a point-wise
// fallback so callers never need to know which backends implement the
// fast path. The contract is strict: batch answers must be bitwise
// identical to Evaluate on each query (pinned by
// TestAnalyticBatchMatchesEvaluateBitwise), so migrating a grid onto the
// batch path cannot change any artifact byte.

// BatchEvaluator is optionally implemented by Evaluators that can answer
// many queries in one planned pass over shared loop-invariant state.
type BatchEvaluator interface {
	Evaluator
	// EvaluateBatch answers qs[i] into out[i]; len(out) must equal
	// len(qs). Outcomes must be bitwise identical to Evaluate on each
	// query; on error the contents of out are unspecified. The IPs
	// slices of the produced outcomes may share one backing arena —
	// callers own out but must not grow the per-outcome slices.
	EvaluateBatch(ctx context.Context, qs []Query, out []Outcome) error
}

// EvaluateBatch answers qs into the caller-provided result arena out
// (len(out) == len(qs)), using ev's batch fast path when it implements
// BatchEvaluator and falling back to query-at-a-time Evaluate otherwise.
func EvaluateBatch(ctx context.Context, ev Evaluator, qs []Query, out []Outcome) error {
	if len(out) != len(qs) {
		return fmt.Errorf("eval: batch has %d queries but %d result slots", len(qs), len(out))
	}
	if b, ok := ev.(BatchEvaluator); ok {
		return b.EvaluateBatch(ctx, qs, out)
	}
	for i := range qs {
		o, err := ev.Evaluate(ctx, qs[i])
		if err != nil {
			return fmt.Errorf("eval: batch query %d: %w", i, err)
		}
		out[i] = *o
	}
	return nil
}

// EvaluateBatch implements BatchEvaluator: loop-invariant terms (model
// derivation in configured mode, the core batch evaluator's hoisted
// parameters, one IPOutcome arena for the whole slab) are computed once,
// and the per-cell inner loop runs allocation-free under the
// //gables:allocfree regime. Batch answers deliberately bypass the
// point-query outcome cache: a grid would churn the bounded LRU, and
// fingerprinting a cell costs more than the closed-form evaluation it
// would deduplicate.
func (a *Analytic) EvaluateBatch(ctx context.Context, qs []Query, out []Outcome) error {
	if len(out) != len(qs) {
		return fmt.Errorf("eval: batch has %d queries but %d result slots", len(qs), len(out))
	}
	if len(qs) == 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	actives := 0
	for i := range qs {
		if err := qs[i].Validate(); err != nil {
			return fmt.Errorf("eval: batch query %d: %w", i, err)
		}
		if qs[i].Coordination {
			return fmt.Errorf("eval: batch query %d: analytic backend cannot represent coordination overhead", i)
		}
		if qs[i].Thermal {
			return fmt.Errorf("eval: batch query %d: analytic backend cannot represent thermal throttling", i)
		}
		for _, w := range qs[i].Work {
			if w.Words != 0 {
				actives++
			}
		}
	}
	arena := make([]IPOutcome, actives)
	cursor := 0

	if a.model != nil {
		return a.batchInjected(qs, out, arena)
	}

	// Configured mode derives the model from the chip, so the batch is
	// processed in maximal runs of queries whose derivation inputs are
	// identical (same chip value, same per-IP access patterns); a grid
	// built from one sim.Config is a single run. Queries that break the
	// run just re-derive — correctness never depends on the grouping.
	lo := 0
	for lo < len(qs) {
		hi := lo + 1
		for hi < len(qs) && sameDerivation(&qs[lo], &qs[hi]) {
			hi++
		}
		model, _, names, err := a.derive(qs[lo])
		if err != nil {
			return fmt.Errorf("eval: batch query %d: %w", lo, err)
		}
		be, err := model.Batch()
		if err != nil {
			return fmt.Errorf("eval: batch query %d: %w", lo, err)
		}
		nIP := be.IPs()
		cs := core.NewCells(nIP, hi-lo)
		res := core.NewCellResults(nIP, hi-lo)
		fillConfigured(qs, lo, hi, cs)
		if bad, ok := evalCells(qs, lo, hi, be, cs, res); !ok {
			return fmt.Errorf("eval: batch query %d: invalid derived work vector", bad)
		}
		cursor = emitOutcomes(qs, lo, hi, names, cs, res, arena, cursor, out)
		lo = hi
	}
	return nil
}

// batchInjected evaluates the slab on the injected calibrated model.
func (a *Analytic) batchInjected(qs []Query, out []Outcome, arena []IPOutcome) error {
	be, err := a.model.Batch()
	if err != nil {
		return err
	}
	nIP := be.IPs()
	cs := core.NewCells(nIP, len(qs))
	res := core.NewCellResults(nIP, len(qs))
	if bad, ok := a.fillInjected(qs, cs); !ok {
		return fmt.Errorf("eval: batch query %d: analytic model has no IP %q", bad, unknownModelIP(a.ipNames, qs[bad]))
	}
	if bad, ok := evalCells(qs, 0, len(qs), be, cs, res); !ok {
		return fmt.Errorf("eval: batch query %d: invalid derived work vector", bad)
	}
	emitOutcomes(qs, 0, len(qs), a.ipNames, cs, res, arena, 0, out)
	return nil
}

// unknownModelIP names the first active chip IP of q that the injected
// model does not cover (the error-path mirror of fillInjected's scan).
func unknownModelIP(ipNames []string, q Query) string {
	for i, w := range q.Work {
		if w.Words == 0 {
			continue
		}
		found := false
		for _, n := range ipNames {
			if n == q.Chip.IPs[i].Name {
				found = true
				break
			}
		}
		if !found {
			return q.Chip.IPs[i].Name
		}
	}
	return ""
}

// sameDerivation reports whether two queries share every input of
// Analytic.derive, using cheap identity checks (shared slice backing,
// equal scalars) rather than deep comparison: false negatives only cost
// a re-derivation.
func sameDerivation(a, b *Query) bool {
	if len(a.Work) != len(b.Work) || len(a.Chip.IPs) != len(b.Chip.IPs) || len(a.Chip.Fabrics) != len(b.Chip.Fabrics) {
		return false
	}
	//lint:ignore floatcmp identity grouping for an optimization, not a numeric comparison: unequal bits just re-derive the model
	if a.Chip.Name != b.Chip.Name || a.Chip.DRAMBandwidth != b.Chip.DRAMBandwidth {
		return false
	}
	if len(a.Chip.IPs) > 0 && &a.Chip.IPs[0] != &b.Chip.IPs[0] {
		return false
	}
	if len(a.Chip.Fabrics) > 0 && &a.Chip.Fabrics[0] != &b.Chip.Fabrics[0] {
		return false
	}
	for i := range a.Work {
		if a.Work[i].Pattern != b.Work[i].Pattern {
			return false
		}
	}
	return true
}

// fillConfigured fills one derivation run's work cells in chip IP order,
// replicating derive's fraction/intensity arithmetic exactly.
//
//gables:allocfree
func fillConfigured(qs []Query, lo, hi int, cs *core.Cells) {
	nIP := cs.IPs
	for qi := lo; qi < hi; qi++ {
		c := qi - lo
		total := qs[qi].TotalFlops()
		trials := float64(qs[qi].trials())
		for i := 0; i < nIP; i++ {
			w := qs[qi].Work[i]
			if w.Words == 0 {
				cs.Set(c, i, 0, 0)
				continue
			}
			flops := float64(w.Words) * float64(w.FlopsPerWord) * trials
			cs.Set(c, i, flops/total, float64(w.FlopsPerWord)/patternBytesPerWord(w.Pattern))
		}
	}
}

// fillInjected fills work cells in injected-model IP order, replicating
// modelWork's arithmetic; it returns the index of the first query naming
// a chip IP outside the model, and false.
//
//gables:allocfree
func (a *Analytic) fillInjected(qs []Query, cs *core.Cells) (int, bool) {
	nIP := cs.IPs
	for qi := range qs {
		total := qs[qi].TotalFlops()
		trials := float64(qs[qi].trials())
		for mi := 0; mi < nIP; mi++ {
			cs.Set(qi, mi, 0, 0)
		}
		for i := range qs[qi].Work {
			w := qs[qi].Work[i]
			if w.Words == 0 {
				continue
			}
			mi := -1
			for j := range a.ipNames {
				if a.ipNames[j] == qs[qi].Chip.IPs[i].Name {
					mi = j
					break
				}
			}
			if mi < 0 {
				return qi, false
			}
			flops := float64(w.Words) * float64(w.FlopsPerWord) * trials
			cs.Set(qi, mi, flops/total, float64(w.FlopsPerWord)/patternBytesPerWord(w.Pattern))
		}
	}
	return 0, true
}

// evalCells runs the core kernel over one slab, honoring each query's
// serialized flag; it returns the first invalid query index and false.
//
//gables:allocfree
func evalCells(qs []Query, lo, hi int, be *core.BatchEval, cs *core.Cells, res *core.CellResults) (int, bool) {
	for qi := lo; qi < hi; qi++ {
		if !be.EvaluateCell(cs, qi-lo, qs[qi].Serialized, res) {
			return qi, false
		}
	}
	return 0, true
}

// emitOutcomes converts one slab's cell results into Outcomes, writing
// per-IP detail into the shared arena. It replicates Analytic.evaluate's
// outcome construction term for term, so batch outcomes are bitwise
// identical to point outcomes. Returns the advanced arena cursor.
//
//gables:allocfree
func emitOutcomes(qs []Query, lo, hi int, names []string, cs *core.Cells, res *core.CellResults, arena []IPOutcome, cursor int, out []Outcome) int {
	nIP := res.IPs
	for qi := lo; qi < hi; qi++ {
		c := qi - lo
		total := qs[qi].TotalFlops()
		o := &out[qi]
		o.Backend = "analytic"
		o.Fidelity = FidelityAnalytic
		o.Attainable = res.Attainable[c]
		o.Makespan = 0
		o.TotalFlops = total
		o.Bottleneck = canonicalBottleneck(res.Bottleneck[c])
		o.TieRatio = 0
		o.DRAMUtilization = 0
		if res.Attainable[c] > 0 {
			o.Makespan = total / res.Attainable[c]
		}
		if res.SecondTime[c] > 0 && res.TopTime[c] > 0 {
			o.TieRatio = res.SecondTime[c] / res.TopTime[c]
		}
		start := cursor
		for mi := 0; mi < nIP; mi++ {
			f := cs.Fractions[c*nIP+mi]
			if f == 0 {
				continue
			}
			ip := &arena[cursor]
			cursor++
			ip.IP = names[mi]
			ip.Flops = f * total
			ip.Bytes = res.IPData[c*nIP+mi] * total
			ip.Time = res.IPTime[c*nIP+mi] * total
			ip.Rate = 0
			if ip.Time > 0 {
				ip.Rate = ip.Flops / ip.Time
			}
		}
		o.IPs = arena[start:cursor:cursor]
	}
	return cursor
}
