package eval

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"github.com/gables-model/gables/internal/sim"
	"github.com/gables-model/gables/internal/simcache"
)

// FingerprintVersion versions the query fingerprint encoding. Bump it when
// Query gains a field that affects answers or when the encoding changes;
// sim-level semantic changes are already covered by sim.FingerprintVersion,
// which the delegated inner fingerprint hashes in. The lock below is
// maintained by the fpfields analyzer (`gables-lint -fix` refreshes it
// after a deliberate shape change has bumped this constant).
//
//fp:lock v1 154adf1d61f5a6e2
const FingerprintVersion = 1

// Fingerprint returns a stable hex key identifying the query's answer:
// equal fingerprints mean both backends would be asked bitwise-identical
// questions. It extends sim.Fingerprint — the query is realized into the
// canonical (Config, assignments, RunOptions) triple and that run
// fingerprint is hashed together with the eval-level semantics the triple
// cannot express (the serialized-execution flag).
//
//fp:encoder
func Fingerprint(q Query) (string, error) {
	as, opt, err := q.realize()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], FingerprintVersion)
	h.Write(buf[:])
	if q.Serialized {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
	inner := sim.Fingerprint(q.Chip, as, opt)
	binary.LittleEndian.PutUint64(buf[:], uint64(len(inner)))
	h.Write(buf[:])
	h.Write([]byte(inner))
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Key builds a content-addressed cache key under the eval namespace: the
// one key-derivation scheme for every evaluation-layer cache (backend
// outcome caches, the usecase-analysis cache, the web page cache). scope
// must be a versioned label like "web-two-ip/v1"; bump its version when
// the keyed value's meaning changes.
func Key(scope string, parts ...any) (string, error) {
	if scope == "" {
		return "", fmt.Errorf("eval: key needs a versioned scope label")
	}
	all := append([]any{"gables-eval", scope}, parts...)
	return simcache.Key(all...)
}
