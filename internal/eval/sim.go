package eval

import (
	"context"
	"fmt"

	"github.com/gables-model/gables/internal/sim"
	"github.com/gables-model/gables/internal/simcache"
)

// DRAMBoundUtilization is the measured DRAM busy fraction above which the
// sim backend attributes a run's bottleneck to the memory interface
// rather than the slowest IP.
const DRAMBoundUtilization = 0.95

// Sim answers queries by measuring the discrete-event substrate — the
// repository's stand-in for the paper's §IV silicon runs. Every execution
// goes through simcache.Run, which is both the single result-cache
// integration (raw RunResults are shared with the erb harnesses and
// experiment suites, since the query fingerprint delegates to
// sim.Fingerprint) and the single trace.Probe attachment point (a probe
// factory installed via simcache.SetProbeFactory observes eval-driven
// runs exactly like harness-driven ones, bypassing the cache both ways).
type Sim struct{}

// NewSim returns the measurement backend.
func NewSim() *Sim { return &Sim{} }

// Meta implements Evaluator.
func (s *Sim) Meta() Meta {
	return Meta{
		Name:        "sim",
		Fidelity:    FidelitySimulation,
		Description: "discrete-event SoC measurement (§IV substrate)",
	}
}

// Supports implements Evaluator: the substrate represents every query
// semantic, so only malformed queries are rejected.
func (s *Sim) Supports(q Query) error { return q.Validate() }

// Evaluate implements Evaluator. Concurrent queries run all assignments
// together; serialized queries (§V-C) run each active IP's assignment in
// its own exclusive run and sum the makespans.
func (s *Sim) Evaluate(ctx context.Context, q Query) (*Outcome, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	as, opt, err := q.realize()
	if err != nil {
		return nil, err
	}
	if !q.Serialized {
		res, err := simcache.Run(q.Chip, as, opt)
		if err != nil {
			return nil, err
		}
		return simOutcome(res), nil
	}

	// Serialized: one exclusive run per active IP; the usecase time is
	// the sum of per-IP makespans (Equations 18–19 measured rather than
	// computed).
	o := &Outcome{Backend: "sim", Fidelity: FidelitySimulation}
	slowest := -1
	var worstUtil float64
	for _, a := range as {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res, err := simcache.Run(q.Chip, []sim.Assignment{a}, opt)
		if err != nil {
			return nil, err
		}
		if len(res.IPs) != 1 {
			return nil, fmt.Errorf("eval: serialized run on %q returned %d IP results", a.IP, len(res.IPs))
		}
		ipr := res.IPs[0]
		o.TotalFlops += res.TotalFlops
		o.Makespan += res.Makespan
		o.IPs = append(o.IPs, IPOutcome{
			IP: ipr.IP, Flops: ipr.Flops, Bytes: ipr.Bytes, Time: res.Makespan, Rate: ipr.Rate,
		})
		if slowest < 0 || res.Makespan > o.IPs[slowest].Time {
			slowest = len(o.IPs) - 1
			worstUtil = res.DRAMUtilization
		}
	}
	if o.Makespan > 0 {
		o.Attainable = o.TotalFlops / o.Makespan
	}
	o.DRAMUtilization = worstUtil
	// Attribution mirrors the analytic §V-C form: the slowest exclusive
	// phase limits the usecase.
	if slowest >= 0 {
		o.Bottleneck = Bottleneck{Kind: "IP", Name: o.IPs[slowest].IP}
	}
	return o, nil
}

// simOutcome translates a measured concurrent run into the canonical
// outcome: the bottleneck is the memory interface when the DRAM
// controller was effectively saturated (≥ DRAMBoundUtilization busy),
// otherwise the last-finishing IP.
func simOutcome(res *sim.RunResult) *Outcome {
	o := &Outcome{
		Backend:         "sim",
		Fidelity:        FidelitySimulation,
		Attainable:      res.Rate,
		Makespan:        res.Makespan,
		TotalFlops:      res.TotalFlops,
		DRAMUtilization: res.DRAMUtilization,
	}
	slowest := -1
	for i, ipr := range res.IPs {
		o.IPs = append(o.IPs, IPOutcome{
			IP: ipr.IP, Flops: ipr.Flops, Bytes: ipr.Bytes, Time: ipr.Time, Rate: ipr.Rate,
		})
		if slowest < 0 || ipr.Time > res.IPs[slowest].Time {
			slowest = i
		}
	}
	if res.DRAMUtilization >= DRAMBoundUtilization {
		o.Bottleneck = Bottleneck{Kind: "memory", Name: "DRAM"}
	} else if slowest >= 0 {
		o.Bottleneck = Bottleneck{Kind: "IP", Name: res.IPs[slowest].IP}
	}
	return o
}
