package eval

import (
	"context"
	"fmt"
	"math"

	"github.com/gables-model/gables/internal/core"
	"github.com/gables-model/gables/internal/kernel"
	"github.com/gables-model/gables/internal/sim"
	"github.com/gables-model/gables/internal/simcache"
	"github.com/gables-model/gables/internal/units"
)

// Analytic answers queries with the closed-form Gables model. Two
// construction modes:
//
//   - NewAnalytic derives a core.SoC from the chip's configured
//     parameters per query: Ppeak and Ai from the IP compute rates, Bi
//     from each link's bandwidth derated for the query's access pattern
//     (writes cost WritePenalty×), Bpeak from the DRAM controller, and
//     one §V-B bus per fabric.
//   - NewAnalyticModel wraps an injected calibrated core.Model (e.g. one
//     assembled by erb.DeriveGables from measured rooflines) whose IPs
//     are matched to chip IPs by name.
//
// Outcomes are memoized in the shared eval outcome cache, keyed by the
// canonical query fingerprint plus the model parameters.
type Analytic struct {
	model   *core.Model
	ipNames []string // model IP index → chip IP name (injected mode)
}

// NewAnalytic returns the configured-parameter analytic backend.
func NewAnalytic() *Analytic { return &Analytic{} }

// NewAnalyticModel returns an analytic backend that evaluates queries on
// the injected model. ipNames maps each model IP index to the chip IP
// name it represents; queries that put work on chip IPs outside this set
// are unsupported.
func NewAnalyticModel(m *core.Model, ipNames []string) (*Analytic, error) {
	if m == nil || m.SoC == nil {
		return nil, fmt.Errorf("eval: analytic needs a model")
	}
	if len(ipNames) != len(m.SoC.IPs) {
		return nil, fmt.Errorf("eval: model has %d IPs but %d names given", len(m.SoC.IPs), len(ipNames))
	}
	return &Analytic{model: m, ipNames: ipNames}, nil
}

// Meta implements Evaluator.
func (a *Analytic) Meta() Meta {
	return Meta{
		Name:        "analytic",
		Fidelity:    FidelityAnalytic,
		Description: "closed-form Gables roofline model (§III, §V-C)",
	}
}

// Supports implements Evaluator: the closed-form model cannot represent
// host coordination overhead or thermal throttling, and the injected-model
// mode additionally requires every active chip IP to exist in the model.
func (a *Analytic) Supports(q Query) error {
	if err := q.Validate(); err != nil {
		return err
	}
	if q.Coordination {
		return fmt.Errorf("eval: analytic backend cannot represent coordination overhead")
	}
	if q.Thermal {
		return fmt.Errorf("eval: analytic backend cannot represent thermal throttling")
	}
	if a.model != nil {
		if _, err := a.modelWork(q); err != nil {
			return err
		}
	}
	return nil
}

// patternBytesPerWord is the DRAM bytes one array word moves per trial
// under each kernel pattern — the denominator of the I = FlopsPerWord/bpw
// intensity convention shared with internal/kernel.
func patternBytesPerWord(p kernel.Pattern) float64 {
	if p == kernel.ReadOnly {
		return 4
	}
	return 8 // ReadWrite and StreamCopy: read + write every word
}

// effectiveLink derates a configured link bandwidth for a pattern's write
// share: the substrate charges written bytes WritePenalty× on the link,
// so moving r+w bytes takes (r+p·w)/B seconds.
func effectiveLink(spec sim.IPSpec, p kernel.Pattern) float64 {
	if p == kernel.ReadOnly || spec.WritePenalty <= 1 {
		return spec.LinkBandwidth
	}
	return spec.LinkBandwidth * 2 / (1 + spec.WritePenalty)
}

// modelWork maps the query's active work onto the injected model's IP
// indices, returning a usecase work vector in model order.
func (a *Analytic) modelWork(q Query) ([]core.Work, error) {
	index := make(map[string]int, len(a.ipNames))
	for i, name := range a.ipNames {
		index[name] = i
	}
	work := make([]core.Work, len(a.ipNames))
	total := q.TotalFlops()
	for i, w := range q.Work {
		if w.Words == 0 {
			continue
		}
		name := q.Chip.IPs[i].Name
		mi, ok := index[name]
		if !ok {
			return nil, fmt.Errorf("eval: analytic model has no IP %q", name)
		}
		flops := float64(w.Words) * float64(w.FlopsPerWord) * float64(q.trials())
		work[mi] = core.Work{
			Fraction:  flops / total,
			Intensity: units.Intensity(float64(w.FlopsPerWord) / patternBytesPerWord(w.Pattern)),
		}
	}
	return work, nil
}

// derive builds the per-query model from the chip's configured
// parameters, plus the work vector in chip IP order.
func (a *Analytic) derive(q Query) (*core.Model, []core.Work, []string, error) {
	ref := q.Chip.IPs[0]
	s := &core.SoC{
		Name:            q.Chip.Name + "-analytic",
		Peak:            units.OpsPerSec(ref.ComputeRate),
		MemoryBandwidth: units.BytesPerSec(q.Chip.DRAMBandwidth),
		IPs:             make([]core.IP, len(q.Chip.IPs)),
	}
	names := make([]string, len(q.Chip.IPs))
	for i, spec := range q.Chip.IPs {
		names[i] = spec.Name
		s.IPs[i] = core.IP{
			Name:         spec.Name,
			Acceleration: spec.ComputeRate / ref.ComputeRate,
			Bandwidth:    units.BytesPerSec(effectiveLink(spec, q.Work[i].Pattern)),
		}
	}
	// One §V-B bus per fabric: an IP uses every fabric on its path to
	// the memory controller.
	var buses []core.Bus
	parent := make(map[string]string, len(q.Chip.Fabrics))
	for _, f := range q.Chip.Fabrics {
		parent[f.Name] = f.Parent
	}
	for _, f := range q.Chip.Fabrics {
		bus := core.Bus{Name: f.Name, Bandwidth: units.BytesPerSec(f.Bandwidth)}
		for i, spec := range q.Chip.IPs {
			for fab := spec.Fabric; fab != ""; fab = parent[fab] {
				if fab == f.Name {
					bus.Users = append(bus.Users, i)
					break
				}
			}
		}
		if len(bus.Users) > 0 {
			buses = append(buses, bus)
		}
	}
	m := &core.Model{SoC: s, Buses: buses}
	total := q.TotalFlops()
	work := make([]core.Work, len(q.Chip.IPs))
	for i, w := range q.Work {
		if w.Words == 0 {
			continue
		}
		flops := float64(w.Words) * float64(w.FlopsPerWord) * float64(q.trials())
		work[i] = core.Work{
			Fraction:  flops / total,
			Intensity: units.Intensity(float64(w.FlopsPerWord) / patternBytesPerWord(w.Pattern)),
		}
	}
	return m, work, names, nil
}

// Evaluate implements Evaluator.
func (a *Analytic) Evaluate(ctx context.Context, q Query) (*Outcome, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := a.Supports(q); err != nil {
		return nil, err
	}
	key, keyErr := a.outcomeKey(q)
	if keyErr != nil {
		return a.evaluate(q) // unkeyable models bypass the cache
	}
	o, err := outcomes.Get(key, func() (*Outcome, error) { return a.evaluate(q) })
	if err != nil {
		return nil, err
	}
	return o.Clone(), nil
}

// outcomeKey keys the outcome cache: the canonical query fingerprint plus
// everything else that determines the analytic answer (the model
// parameters, which the chip fingerprint does not cover in injected mode).
func (a *Analytic) outcomeKey(q Query) (string, error) {
	fp, err := Fingerprint(q)
	if err != nil {
		return "", err
	}
	if a.model == nil {
		return Key("analytic-outcome/v1", fp, "configured")
	}
	return Key("analytic-outcome/v1", fp, a.model.SoC, a.model.SRAM, a.model.Buses, a.ipNames)
}

func (a *Analytic) evaluate(q Query) (*Outcome, error) {
	model, work, names := a.model, []core.Work(nil), a.ipNames
	var err error
	if model == nil {
		model, work, names, err = a.derive(q)
	} else {
		work, err = a.modelWork(q)
	}
	if err != nil {
		return nil, err
	}
	// TotalOps stays unset: Attainable is scale-invariant and the
	// unit-work normalization keeps results bitwise identical to the
	// historical direct model evaluations; Makespan is rescaled below.
	u := &core.Usecase{Name: "eval-query", Work: work}
	var res *core.Result
	if q.Serialized {
		res, err = model.EvaluateSerialized(u)
	} else {
		res, err = model.Evaluate(u)
	}
	if err != nil {
		return nil, err
	}
	total := q.TotalFlops()
	o := &Outcome{
		Backend:    "analytic",
		Fidelity:   FidelityAnalytic,
		Attainable: float64(res.Attainable),
		TotalFlops: total,
		Bottleneck: canonicalBottleneck(res.Bottleneck),
	}
	if res.Attainable > 0 {
		o.Makespan = total / float64(res.Attainable)
	}
	o.TieRatio = tieRatio(res)
	// Per-IP detail for the active model IPs, reported under chip IP
	// names, scaled from the unit-work breakdown to the query's total.
	for mi, br := range res.IPs {
		if u.Work[mi].Fraction == 0 {
			continue
		}
		ip := IPOutcome{
			IP:    names[mi],
			Flops: u.Work[mi].Fraction * total,
			Bytes: float64(br.Data) * total,
			Time:  float64(br.Time) * total,
		}
		if ip.Time > 0 {
			ip.Rate = ip.Flops / ip.Time
		}
		o.IPs = append(o.IPs, ip)
	}
	return o, nil
}

// canonicalBottleneck translates a core.Component into the cross-backend
// vocabulary.
func canonicalBottleneck(c core.Component) Bottleneck {
	switch c.Kind {
	case "memory":
		return Bottleneck{Kind: "memory", Name: "DRAM"}
	case "bus":
		return Bottleneck{Kind: "bus", Name: c.Name}
	default:
		return Bottleneck{Kind: "IP", Name: c.Name}
	}
}

// tieRatio measures how contested the analytic bottleneck is: the
// second-largest constraint time over the largest, across per-IP times,
// the memory term, and any bus terms. 1 means an exact tie; 0 means a
// single constraint.
func tieRatio(res *core.Result) float64 {
	var times []float64
	for _, br := range res.IPs {
		if br.Time > 0 {
			times = append(times, float64(br.Time))
		}
	}
	if res.MemoryTime > 0 {
		times = append(times, float64(res.MemoryTime))
	}
	for _, bt := range res.BusTimes {
		if bt > 0 {
			times = append(times, float64(bt))
		}
	}
	if len(times) < 2 {
		return 0
	}
	first, second := math.Inf(-1), math.Inf(-1)
	for _, t := range times {
		if t > first {
			first, second = t, first
		} else if t > second {
			second = t
		}
	}
	if first <= 0 {
		return 0
	}
	return second / first
}

// outcomes is the shared eval-layer outcome cache (the simcache
// integration every analytic-fidelity backend memoizes through; the sim
// backend's memoization happens one level down, in simcache.Run, where
// raw results are shared with the measurement harnesses).
var outcomes = simcache.New[*Outcome](simcache.Options{Capacity: 2048})

// CacheStats snapshots the shared outcome cache's counters.
func CacheStats() simcache.Stats { return outcomes.Stats() }

// ResetCache clears the shared outcome cache; tests use it for isolation.
func ResetCache() { outcomes.Reset() }
