package eval

import (
	"context"
	"math"
	"testing"

	"github.com/gables-model/gables/internal/core"
	"github.com/gables-model/gables/internal/kernel"
	"github.com/gables-model/gables/internal/sim"
)

// batchQueries builds a mixed grid over one chip: fractions × intensities,
// alternating serialized cells and an occasional read-only pattern, the
// shapes the sweep harnesses actually generate.
func batchQueries(t *testing.T, cfg sim.Config, cpu, accel string) []Query {
	t.Helper()
	var qs []Query
	i := 0
	for _, fpw := range []int{8, 64, 512, 4096} {
		for _, f := range []float64{0, 0.25, 0.5, 0.75, 1} {
			p := kernel.ReadWrite
			if i%7 == 3 {
				p = kernel.ReadOnly
			}
			work, err := SplitWork(cfg, 4<<20, fpw, p, []Share{
				{IP: cpu, Fraction: 1 - f}, {IP: accel, Fraction: f},
			})
			if err != nil {
				t.Fatal(err)
			}
			qs = append(qs, Query{Chip: cfg, Work: work, Trials: 2, Serialized: i%3 == 2})
			i++
		}
	}
	return qs
}

// outcomesBitEq compares two outcomes field by field with bitwise float
// equality.
func outcomesBitEq(t *testing.T, label string, got Outcome, want *Outcome) {
	t.Helper()
	feq := func(name string, g, w float64) {
		t.Helper()
		if math.Float64bits(g) != math.Float64bits(w) {
			t.Errorf("%s: %s = %v (%x), point API %v (%x)", label, name, g, math.Float64bits(g), w, math.Float64bits(w))
		}
	}
	if got.Backend != want.Backend || got.Fidelity != want.Fidelity {
		t.Errorf("%s: backend/fidelity %s/%s, want %s/%s", label, got.Backend, got.Fidelity, want.Backend, want.Fidelity)
	}
	feq("Attainable", got.Attainable, want.Attainable)
	feq("Makespan", got.Makespan, want.Makespan)
	feq("TotalFlops", got.TotalFlops, want.TotalFlops)
	feq("TieRatio", got.TieRatio, want.TieRatio)
	feq("DRAMUtilization", got.DRAMUtilization, want.DRAMUtilization)
	if got.Bottleneck != want.Bottleneck {
		t.Errorf("%s: bottleneck %+v, want %+v", label, got.Bottleneck, want.Bottleneck)
	}
	if len(got.IPs) != len(want.IPs) {
		t.Fatalf("%s: %d IP outcomes, want %d", label, len(got.IPs), len(want.IPs))
	}
	for k := range got.IPs {
		if got.IPs[k].IP != want.IPs[k].IP {
			t.Errorf("%s: IP[%d] name %q, want %q", label, k, got.IPs[k].IP, want.IPs[k].IP)
		}
		feq("IP.Flops", got.IPs[k].Flops, want.IPs[k].Flops)
		feq("IP.Bytes", got.IPs[k].Bytes, want.IPs[k].Bytes)
		feq("IP.Time", got.IPs[k].Time, want.IPs[k].Time)
		feq("IP.Rate", got.IPs[k].Rate, want.IPs[k].Rate)
	}
}

// TestAnalyticBatchMatchesEvaluateBitwise pins the BatchEvaluator
// contract for both analytic modes: every batch outcome is bitwise
// identical to the point API's answer for the same query.
func TestAnalyticBatchMatchesEvaluateBitwise(t *testing.T) {
	ctx := context.Background()

	t.Run("configured", func(t *testing.T) {
		ResetCache()
		a := NewAnalytic()
		// Interleave two chips so the derivation grouping has to split
		// and re-derive mid-slab.
		qs := batchQueries(t, sim.Snapdragon835(), "CPU", "GPU")
		qs = append(qs, batchQueries(t, sim.Snapdragon821(), "CPU", "GPU")...)
		qs = append(qs, qs[0], qs[len(qs)/2]) // repeats across group boundaries
		out := make([]Outcome, len(qs))
		if err := EvaluateBatch(ctx, a, qs, out); err != nil {
			t.Fatal(err)
		}
		for i := range qs {
			want, err := a.Evaluate(ctx, qs[i])
			if err != nil {
				t.Fatalf("query %d: %v", i, err)
			}
			outcomesBitEq(t, qs[i].Chip.Name, out[i], want)
		}
	})

	t.Run("injected", func(t *testing.T) {
		ResetCache()
		soc, err := core.TwoIP("cal", 4e9, 12e9, 6, 8e9, 30e9)
		if err != nil {
			t.Fatal(err)
		}
		model := &core.Model{
			SoC:  soc,
			SRAM: &core.SRAM{Name: "cache", MissRatio: []float64{0.4, 0.9}},
		}
		a, err := NewAnalyticModel(model, []string{"CPU", "GPU"})
		if err != nil {
			t.Fatal(err)
		}
		qs := batchQueries(t, sim.Snapdragon835(), "CPU", "GPU")
		out := make([]Outcome, len(qs))
		if err := EvaluateBatch(ctx, a, qs, out); err != nil {
			t.Fatal(err)
		}
		for i := range qs {
			want, err := a.Evaluate(ctx, qs[i])
			if err != nil {
				t.Fatalf("query %d: %v", i, err)
			}
			outcomesBitEq(t, "injected", out[i], want)
		}
	})
}

// TestEvaluateBatchFallback pins the helper's point-wise path for
// backends without a batch implementation.
func TestEvaluateBatchFallback(t *testing.T) {
	cfg := sim.Snapdragon835()
	work, err := SplitWork(cfg, 1<<20, 8, kernel.ReadWrite, []Share{
		{IP: "CPU", Fraction: 0.5}, {IP: "GPU", Fraction: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	qs := []Query{{Chip: cfg, Work: work, Trials: 1}}
	out := make([]Outcome, 1)
	simEv := NewSim()
	if err := EvaluateBatch(context.Background(), simEv, qs, out); err != nil {
		t.Fatal(err)
	}
	want, err := simEv.Evaluate(context.Background(), qs[0])
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Attainable != want.Attainable || out[0].Bottleneck != want.Bottleneck {
		t.Errorf("fallback outcome diverged: %+v vs %+v", out[0], want)
	}
	if err := EvaluateBatch(context.Background(), simEv, qs, make([]Outcome, 2)); err == nil {
		t.Error("mismatched arena length accepted")
	}
}

// TestAnalyticBatchErrors pins per-query error attribution.
func TestAnalyticBatchErrors(t *testing.T) {
	cfg := sim.Snapdragon835()
	work, err := SplitWork(cfg, 1<<20, 8, kernel.ReadWrite, []Share{
		{IP: "CPU", Fraction: 0.5}, {IP: "GPU", Fraction: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	a := NewAnalytic()
	good := Query{Chip: cfg, Work: work, Trials: 2}
	coord := good
	coord.Coordination = true
	if err := a.EvaluateBatch(context.Background(), []Query{good, coord}, make([]Outcome, 2)); err == nil {
		t.Error("coordination query accepted by analytic batch")
	}
	bad := good
	bad.Work = nil
	if err := a.EvaluateBatch(context.Background(), []Query{bad}, make([]Outcome, 1)); err == nil {
		t.Error("invalid query accepted")
	}
}

// TestAnalyticBatchAllocsConstant pins the arena discipline: the number
// of allocations per batch call is a small constant — it does not grow
// with the cell count, so the per-cell inner loop is allocation-free.
func TestAnalyticBatchAllocsConstant(t *testing.T) {
	cfg := sim.Snapdragon835()
	build := func(n int) ([]Query, []Outcome) {
		qs := make([]Query, 0, n)
		for len(qs) < n {
			f := float64(len(qs)%5) / 4
			work, err := SplitWork(cfg, 4<<20, 8+len(qs)%64, kernel.ReadWrite, []Share{
				{IP: "CPU", Fraction: 1 - f}, {IP: "GPU", Fraction: f},
			})
			if err != nil {
				t.Fatal(err)
			}
			qs = append(qs, Query{Chip: cfg, Work: work, Trials: 2})
		}
		return qs, make([]Outcome, n)
	}
	a := NewAnalytic()
	measure := func(qs []Query, out []Outcome) float64 {
		return testing.AllocsPerRun(10, func() {
			if err := a.EvaluateBatch(context.Background(), qs, out); err != nil {
				t.Fatal(err)
			}
		})
	}
	qsSmall, outSmall := build(64)
	qsBig, outBig := build(512)
	small, big := measure(qsSmall, outSmall), measure(qsBig, outBig)
	if big > small {
		t.Errorf("allocs grew with cell count: %v for 64 cells, %v for 512", small, big)
	}
	if small > 64 {
		t.Errorf("batch setup allocates %v times, want a small constant", small)
	}
}
