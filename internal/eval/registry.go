package eval

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/gables-model/gables/internal/kernel"
)

// The backend registry: cmds and harnesses select evaluators by name
// (-backend=analytic|sim|auto). Construction is lazy so importing eval
// costs nothing until a backend is used.

var (
	registryMu  sync.Mutex
	registry    = map[string]func() (Evaluator, error){}
	instances   = map[string]Evaluator{}
	defaultName = "sim"
)

// Register adds a named backend constructor. Later registrations of the
// same name win (tests use this to stub backends).
func Register(name string, make func() (Evaluator, error)) {
	registryMu.Lock()
	defer registryMu.Unlock()
	registry[name] = make
	delete(instances, name)
}

// Resolve returns the named backend, constructing it on first use.
func Resolve(name string) (Evaluator, error) {
	registryMu.Lock()
	defer registryMu.Unlock()
	return resolveLocked(name)
}

func resolveLocked(name string) (Evaluator, error) {
	if ev, ok := instances[name]; ok {
		return ev, nil
	}
	make, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("eval: unknown backend %q (have %v)", name, namesLocked())
	}
	ev, err := make()
	if err != nil {
		return nil, err
	}
	instances[name] = ev
	return ev, nil
}

// Names lists the registered backends, sorted.
func Names() []string {
	registryMu.Lock()
	defer registryMu.Unlock()
	return namesLocked()
}

func namesLocked() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// CheckBackend validates a backend name without constructing the backend:
// the CLIs call it at flag-parse time so a typo'd -backend fails
// immediately with the allowed set, instead of surfacing later as a
// registry error mid-run. The empty name is valid (it means "keep the
// process default").
func CheckBackend(name string) error {
	if name == "" {
		return nil
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, ok := registry[name]; !ok {
		return fmt.Errorf("eval: unknown backend %q (allowed: %s)", name, strings.Join(namesLocked(), ", "))
	}
	return nil
}

// SetDefault selects the process-default backend (what Default returns
// and what rethreaded harnesses use when not handed an explicit
// evaluator). The initial default is "sim": measurement semantics, the
// historical behavior of every harness path.
func SetDefault(name string) error {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, err := resolveLocked(name); err != nil {
		return err
	}
	defaultName = name
	return nil
}

// Default returns the process-default backend.
func Default() Evaluator {
	registryMu.Lock()
	defer registryMu.Unlock()
	ev, err := resolveLocked(defaultName)
	if err != nil {
		// The built-in default always resolves; a broken custom
		// registration falls back to measurement.
		ev, _ = resolveLocked("sim")
	}
	return ev
}

func init() {
	Register("analytic", func() (Evaluator, error) { return NewAnalytic(), nil })
	Register("sim", func() (Evaluator, error) { return NewSim(), nil })
	Register("auto", func() (Evaluator, error) { return NewAuto(NewAnalytic(), NewSim(), DefaultEnvelope()), nil })
}

// Envelope is the calibrated region of query space where the analytic
// backend is trusted to stand in for measurement. Its constants come from
// the differential oracle's corpus (differential.go): inside the
// envelope, the corpus holds the backends to the documented agreement
// bands; outside it, known model blind spots (coordination overhead,
// thermal throttling, cache-resident working sets) make the closed form
// unreliable and Auto routes to measurement.
type Envelope struct {
	// MinWorkingSetFactor requires each active IP's working set to be
	// at least this multiple of its private cache (an analytic DRAM
	// roofline cannot see cache-resident speedups).
	MinWorkingSetFactor float64
}

// DefaultEnvelope is the oracle-calibrated envelope.
func DefaultEnvelope() Envelope {
	return Envelope{MinWorkingSetFactor: 2}
}

// Check reports nil when the query lies inside the envelope; otherwise an
// error naming the first reason measurement is required.
func (e Envelope) Check(q Query) error {
	if err := q.Validate(); err != nil {
		return err
	}
	if q.Coordination {
		return fmt.Errorf("eval: coordination overhead is outside the analytic envelope")
	}
	if q.Thermal {
		return fmt.Errorf("eval: thermal throttling is outside the analytic envelope")
	}
	for i, w := range q.Work {
		if w.Words == 0 {
			continue
		}
		spec := q.Chip.IPs[i]
		ws := float64(w.Words * kernel.WordSize)
		if spec.CacheSize > 0 && ws < e.MinWorkingSetFactor*spec.CacheSize {
			return fmt.Errorf("eval: IP %q working set %.0f B is under %.0f× its %.0f B cache — cache effects outside the analytic envelope",
				spec.Name, ws, e.MinWorkingSetFactor, spec.CacheSize)
		}
	}
	return nil
}

// Checker gates a router's fast path: nil means the query lies inside the
// region where the fast backend is trusted. Envelope implements it with
// the oracle-calibrated constants; the surrogate backend implements it
// with its per-chip calibration residuals.
type Checker interface {
	Check(q Query) error
}

// Auto routes each query to the cheapest trustworthy backend: the fast
// evaluator inside the checker's envelope, the fallback otherwise. The
// produced Outcome's Backend field records which one answered. The
// registry's "auto" instance pairs analytic with sim under the default
// envelope; NewRouter builds the same machinery around other pairs (the
// surrogate backend routes its fitted fast path over sim with it).
type Auto struct {
	name        string
	description string
	fast        Evaluator
	fallback    Evaluator
	env         Checker
}

// NewAuto builds the analytic-over-sim router.
func NewAuto(analytic, sim Evaluator, env Envelope) *Auto {
	return NewRouter("auto", "analytic inside the calibrated envelope, sim outside", analytic, sim, env)
}

// NewRouter builds a named envelope router over an arbitrary fast/fallback
// pair.
func NewRouter(name, description string, fast, fallback Evaluator, env Checker) *Auto {
	return &Auto{name: name, description: description, fast: fast, fallback: fallback, env: env}
}

// Meta implements Evaluator. The fidelity is the fallback's: that is the
// semantics the router guarantees everywhere, the fast path merely matches
// it inside the envelope.
func (a *Auto) Meta() Meta {
	return Meta{
		Name:        a.name,
		Fidelity:    FidelitySimulation,
		Description: a.description,
	}
}

// Supports implements Evaluator: the router answers whatever its fallback
// backend can.
func (a *Auto) Supports(q Query) error { return a.fallback.Supports(q) }

// Pick returns the backend the router would use for the query.
func (a *Auto) Pick(q Query) Evaluator {
	if a.env.Check(q) == nil && a.fast.Supports(q) == nil {
		return a.fast
	}
	return a.fallback
}

// Evaluate implements Evaluator.
func (a *Auto) Evaluate(ctx context.Context, q Query) (*Outcome, error) {
	return a.Pick(q).Evaluate(ctx, q)
}
