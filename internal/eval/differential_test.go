package eval

import (
	"context"
	"testing"
)

// TestDifferentialCorpus is the oracle: every corpus fixture must hold
// its per-metric bands (attainable within Bands.MaxAttainableRelErr,
// bottleneck identity agreement modulo the near-tie escape), and the
// corpus-wide mean disagreement must stay under MaxCorpusMeanRelErr.
// This is a tier-1 test and the blocking `differential` CI job.
func TestDifferentialCorpus(t *testing.T) {
	res, err := RunCorpus(context.Background(), DefaultCorpus())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Results {
		t.Logf("%-45s analytic=%10.3g sim=%10.3g relerr=%5.1f%% a.bottleneck=%v s.bottleneck=%v tie=%.2f escaped=%v",
			d.Fixture.Name, d.Analytic.Attainable, d.Sim.Attainable, 100*d.RelErr,
			d.Analytic.Bottleneck, d.Sim.Bottleneck, d.Analytic.TieRatio, d.TieEscaped)
		if !d.Pass {
			t.Errorf("%s: %s", d.Fixture.Name, d.Reason)
		}
	}
	if res.MeanRelErr > MaxCorpusMeanRelErr {
		t.Errorf("corpus mean rel err = %.1f%%, band is %.1f%%",
			100*res.MeanRelErr, 100*MaxCorpusMeanRelErr)
	}
	t.Logf("corpus: %d fixtures, mean rel err %.1f%%, max %.1f%%, %d failures",
		len(res.Results), 100*res.MeanRelErr, 100*res.MaxRelErr, res.Failures)
}
