package eval

import (
	"context"
	"fmt"
	"math"

	"github.com/gables-model/gables/internal/kernel"
	"github.com/gables-model/gables/internal/sim"
)

// The differential oracle: a fixture corpus of SoC+usecase queries that
// both production backends must answer within documented per-metric
// agreement bands. It turns analytic-vs-sim disagreement from folklore
// into a regression-caught bug class — the corpus runs as a tier-1 test
// and as the blocking `differential` CI job.
//
// The bands follow the paper's stated accuracy goal ("the correct shape
// and reasonable relative error", §IV) and the calibration the repo
// already holds erb.ValidateModel to: attainable performance within 30%
// per query and 10% mean across the corpus, and agreement on bottleneck
// *identity* unless the analytic answer is a near-tie (two constraints
// within TieEscape of each other — attribution between two equally
// binding constraints is legitimately unstable at measurement fidelity).

// Bands are the per-metric agreement thresholds for one fixture.
type Bands struct {
	// MaxAttainableRelErr bounds |sim−analytic|/sim.
	MaxAttainableRelErr float64
	// MatchBottleneck requires both backends to name the same
	// bottleneck component, unless the analytic TieRatio exceeds
	// TieEscape.
	MatchBottleneck bool
	// TieEscape is the TieRatio above which a bottleneck mismatch is
	// excused (0 uses DefaultTieEscape).
	TieEscape float64
}

// DefaultTieEscape excuses bottleneck mismatches when the analytic
// second-tightest constraint is within 10% of the tightest.
const DefaultTieEscape = 0.9

// DefaultBands are the corpus-wide per-fixture thresholds, matching the
// erb.ValidateModel calibration.
func DefaultBands() Bands {
	return Bands{MaxAttainableRelErr: 0.30, MatchBottleneck: true}
}

// Fixture is one corpus entry.
type Fixture struct {
	// Name labels the fixture in test and CI output.
	Name string
	// Query is the question both backends answer.
	Query Query
	// Bands are the agreement thresholds.
	Bands Bands
}

// DiffResult is one fixture's comparison.
type DiffResult struct {
	Fixture Fixture
	// Analytic and Sim are the two answers.
	Analytic, Sim *Outcome
	// RelErr is |Sim−Analytic|/Sim attainable.
	RelErr float64
	// BottleneckAgree reports identity agreement (before tie escape).
	BottleneckAgree bool
	// TieEscaped reports that a mismatch was excused as a near-tie.
	TieEscaped bool
	// Pass reports whether every band held.
	Pass bool
	// Reason explains a failure.
	Reason string
}

// RunDifferential answers one fixture with both backends and applies its
// bands.
func RunDifferential(ctx context.Context, f Fixture) (*DiffResult, error) {
	analytic := NewAnalytic()
	simEv := NewSim()
	a, err := analytic.Evaluate(ctx, f.Query)
	if err != nil {
		return nil, fmt.Errorf("eval: differential %q: analytic: %w", f.Name, err)
	}
	s, err := simEv.Evaluate(ctx, f.Query)
	if err != nil {
		return nil, fmt.Errorf("eval: differential %q: sim: %w", f.Name, err)
	}
	d := &DiffResult{Fixture: f, Analytic: a, Sim: s, Pass: true}
	if s.Attainable <= 0 {
		return nil, fmt.Errorf("eval: differential %q: sim measured non-positive rate", f.Name)
	}
	d.RelErr = math.Abs(s.Attainable-a.Attainable) / s.Attainable
	if d.RelErr > f.Bands.MaxAttainableRelErr {
		d.Pass = false
		d.Reason = fmt.Sprintf("attainable disagrees by %.1f%% (band %.1f%%): analytic %.3g vs sim %.3g flops/s",
			100*d.RelErr, 100*f.Bands.MaxAttainableRelErr, a.Attainable, s.Attainable)
	}
	d.BottleneckAgree = a.Bottleneck == s.Bottleneck
	if f.Bands.MatchBottleneck && !d.BottleneckAgree {
		escape := f.Bands.TieEscape
		if escape == 0 {
			escape = DefaultTieEscape
		}
		if a.TieRatio >= escape {
			d.TieEscaped = true
		} else {
			d.Pass = false
			if d.Reason != "" {
				d.Reason += "; "
			}
			d.Reason += fmt.Sprintf("bottleneck identity disagrees: analytic %v (tie ratio %.2f) vs sim %v",
				a.Bottleneck, a.TieRatio, s.Bottleneck)
		}
	}
	return d, nil
}

// CorpusResult aggregates a corpus run.
type CorpusResult struct {
	Results []*DiffResult
	// MeanRelErr and MaxRelErr aggregate attainable disagreement.
	MeanRelErr, MaxRelErr float64
	// Failures counts fixtures whose bands did not hold.
	Failures int
}

// MaxCorpusMeanRelErr is the corpus-wide band on mean attainable
// disagreement, matching erb.ValidateModel's calibration.
const MaxCorpusMeanRelErr = 0.10

// RunCorpus runs every fixture and aggregates; the corpus-wide mean band
// is applied by the caller (the tier-1 test and CI job) against
// MaxCorpusMeanRelErr.
func RunCorpus(ctx context.Context, fixtures []Fixture) (*CorpusResult, error) {
	out := &CorpusResult{}
	for _, f := range fixtures {
		d, err := RunDifferential(ctx, f)
		if err != nil {
			return nil, err
		}
		out.Results = append(out.Results, d)
		out.MeanRelErr += d.RelErr
		out.MaxRelErr = math.Max(out.MaxRelErr, d.RelErr)
		if !d.Pass {
			out.Failures++
		}
	}
	if len(out.Results) > 0 {
		out.MeanRelErr /= float64(len(out.Results))
	}
	return out, nil
}

// DefaultCorpus is the oracle's fixture grid on the calibrated simulated
// chip: the Figure 6-style two-IP work splits and Figure 8-style
// intensity lines (device-resident, since the base model has no
// coordination term), the three-IP web-path shape, and §V-C serialized
// fixtures. Word counts keep every active working set DRAM-resident (the
// analytic envelope); fractions are exact binary so the analytic work
// fractions match the historical TwoIPUsecase values bit-for-bit.
func DefaultCorpus() []Fixture {
	cfg := sim.Snapdragon835()
	bands := DefaultBands()
	const words = 4 << 20
	var fixtures []Fixture

	twoIP := func(name string, f float64, fpw int, serialized bool) Fixture {
		work, err := SplitWork(cfg, words, fpw, kernel.ReadWrite, []Share{
			{IP: "CPU", Fraction: 1 - f}, {IP: "GPU", Fraction: f},
		})
		if err != nil {
			panic(err) // static corpus: shares are known-valid
		}
		return Fixture{
			Name:  name,
			Query: Query{Chip: cfg, Work: work, Trials: 2, Serialized: serialized},
			Bands: bands,
		}
	}

	// Figure 6/8 grid: CPU↔GPU splits across the paper's intensity
	// range (I = fpw/8 ops/byte).
	for _, f := range []float64{0, 0.25, 0.5, 0.75, 1} {
		for _, fpw := range []int{8, 512} {
			fixtures = append(fixtures,
				twoIP(fmt.Sprintf("fig6-two-ip/f=%v/fpw=%d", f, fpw), f, fpw, false))
		}
	}
	// High-intensity compute-bound corner.
	fixtures = append(fixtures, twoIP("fig6-two-ip/f=0.5/fpw=4096", 0.5, 4096, false))

	// §V-C serialized fixtures (EvaluateSerialized differential).
	for _, fpw := range []int{8, 512} {
		fixtures = append(fixtures,
			twoIP(fmt.Sprintf("serialized-two-ip/f=0.5/fpw=%d", fpw), 0.5, fpw, true))
	}

	// Three-IP web-path shape: CPU+GPU+DSP all active. The DSP's share
	// stays small (it is the paper's wimpy scalar unit) but its working
	// set must clear its 512 KiB cache, so the three-IP fixtures use a
	// larger array.
	threeIP := func(name string, fCPU, fGPU float64, fpw int, serialized bool) Fixture {
		work, err := SplitWork(cfg, 4*words, fpw, kernel.ReadWrite, []Share{
			{IP: "CPU", Fraction: fCPU}, {IP: "GPU", Fraction: fGPU}, {IP: "DSP", Fraction: 0},
		})
		if err != nil {
			panic(err)
		}
		return Fixture{
			Name:  name,
			Query: Query{Chip: cfg, Work: work, Trials: 2, Serialized: serialized},
			Bands: bands,
		}
	}
	for _, fpw := range []int{32, 512} {
		fixtures = append(fixtures,
			threeIP(fmt.Sprintf("three-ip/cpu=0.5,gpu=0.375,dsp=rest/fpw=%d", fpw), 0.5, 0.375, fpw, false))
	}
	fixtures = append(fixtures,
		threeIP("serialized-three-ip/fpw=64", 0.5, 0.375, 64, true))

	return fixtures
}
