// Package eval unifies the repository's two answers to the Gables
// question — "how fast can this SoC run this usecase?" — behind one
// Evaluator interface. The paper computes the answer at two fidelities:
// the closed-form N-IP roofline model (§III, internal/core) and
// measurement of the machine (§IV, reproduced by internal/sim +
// internal/erb), and insists the two agree in shape and within reasonable
// relative error. This package makes that agreement a contract:
//
//   - Query is the canonical SoC+usecase question, expressed in the
//     measurement substrate's terms (a sim.Config plus per-IP kernel
//     work). Both backends answer the same Query, so the differential
//     oracle (differential.go) can hold them to documented agreement
//     bands.
//   - Analytic answers from the closed-form model (Equations 1–4/9–11,
//     §V-C serialized form), either derived from the chip's configured
//     parameters or wrapping an injected calibrated core.Model.
//   - Sim answers by measuring the discrete-event substrate through
//     internal/simcache.Run — the single cache integration and, via
//     simcache.SetProbeFactory, the single trace.Probe attachment point
//     for every backend that executes simulated work.
//   - The registry (registry.go) lets harnesses and the cmds select a
//     backend by name (-backend=analytic|sim|auto), with "auto" choosing
//     analytic only inside the calibrated envelope.
//
// Queries are canonically fingerprinted (fingerprint.go) by extending
// sim.Fingerprint, so an Outcome's identity is content-addressed exactly
// like a raw simulation run's.
package eval

import (
	"context"
	"fmt"

	"github.com/gables-model/gables/internal/kernel"
	"github.com/gables-model/gables/internal/sim"
	"github.com/gables-model/gables/internal/units"
)

// IPWork is one IP's share of a Query: Words array elements processed by
// an Algorithm 1 kernel with the given FlopsPerWord and access pattern.
// Work is expressed in exact words — not float fractions — so a Query is
// bit-reproducible by both backends: the sim realizes it verbatim as
// kernel assignments, and the analytic derives work fractions
// fi = flops_i/Σflops and intensities Ii = FlopsPerWord/(bytes per word)
// from it.
type IPWork struct {
	// Words is the array length assigned to this IP; 0 means the IP is
	// idle in this query.
	Words int
	// FlopsPerWord sets the operational intensity: I = FlopsPerWord/8
	// for read+write and stream-copy kernels, /4 for read-only.
	FlopsPerWord int
	// Pattern selects the kernel access variant (default ReadWrite).
	Pattern kernel.Pattern
}

// Query is the canonical evaluation question: this chip, this per-IP
// work, these execution semantics. Work is index-aligned with Chip.IPs.
type Query struct {
	// Chip describes the SoC in the measurement substrate's terms.
	//
	//fp:delegate encoded wholesale by sim.Fingerprint, which realize() feeds the chip into; sim's own //fp:lock tracks its shape
	Chip sim.Config
	// Work assigns kernel work per IP, index-aligned with Chip.IPs.
	Work []IPWork
	// Trials is the per-kernel trial count; defaults to 2.
	Trials int
	// Serialized evaluates the §V-C exclusive-work form: IPs run one at
	// a time instead of concurrently.
	Serialized bool
	// Coordination charges host coordination overhead (§IV-C); only the
	// sim backend can represent it.
	Coordination bool
	// Thermal enables the thermal throttle governor; only the sim
	// backend can represent it.
	Thermal bool
	// MaxEvents bounds the simulated event count (0 = sim default).
	MaxEvents int
}

// Fidelity classifies how an Evaluator produces answers.
type Fidelity string

const (
	// FidelityAnalytic marks closed-form model evaluation.
	FidelityAnalytic Fidelity = "analytic"
	// FidelitySimulation marks discrete-event measurement.
	FidelitySimulation Fidelity = "simulation"
)

// Meta describes an Evaluator.
type Meta struct {
	// Name is the registry name (e.g. "analytic", "sim", "auto").
	Name string
	// Fidelity classifies the answers; "auto" reports the fidelity it
	// would pick most often, while each Outcome records the actual one.
	Fidelity Fidelity
	// Description is a one-line summary for -backend help text.
	Description string
}

// Bottleneck names the component that limits a Query, in a canonical
// cross-backend vocabulary.
type Bottleneck struct {
	// Kind is "IP", "memory", or "bus".
	Kind string `json:"kind"`
	// Name is the IP or bus name; "DRAM" for memory.
	Name string `json:"name"`
}

func (b Bottleneck) String() string {
	if b.Kind == "memory" {
		return "memory interface"
	}
	return fmt.Sprintf("%s %s", b.Kind, b.Name)
}

// IPOutcome is one active IP's share of an Outcome.
type IPOutcome struct {
	// IP names the chip IP.
	IP string `json:"ip"`
	// Flops is the operations the IP performed (or was bound to).
	Flops float64 `json:"flops"`
	// Bytes is the IP's data movement.
	Bytes float64 `json:"bytes"`
	// Time is the IP's busy (analytic: minimum) time in seconds.
	Time float64 `json:"time"`
	// Rate is Flops/Time in flops/s.
	Rate float64 `json:"rate"`
}

// Outcome is an Evaluator's answer.
type Outcome struct {
	// Backend names the evaluator that produced the answer (the
	// registry name of the concrete backend, even under "auto").
	Backend string `json:"backend"`
	// Fidelity is the producing backend's fidelity.
	Fidelity Fidelity `json:"fidelity"`
	// Attainable is the answer in flops/s: the analytic Pattainable, or
	// the measured concurrent throughput.
	Attainable float64 `json:"attainable"`
	// Makespan is the (predicted or measured) time for the query's
	// total work, in seconds.
	Makespan float64 `json:"makespan"`
	// TotalFlops is the query's total work.
	TotalFlops float64 `json:"total_flops"`
	// Bottleneck attributes the limit.
	Bottleneck Bottleneck `json:"bottleneck"`
	// TieRatio, analytic only, is the second-tightest constraint time
	// over the tightest (1 = exact tie, 0 = single constraint): the
	// differential oracle's near-tie escape for bottleneck attribution.
	TieRatio float64 `json:"tie_ratio,omitempty"`
	// DRAMUtilization, sim only, is measured DRAM busy fraction.
	DRAMUtilization float64 `json:"dram_utilization,omitempty"`
	// Confidence, surrogate only, bounds the answer with the fitted
	// model's calibration residuals. Backends that answer exactly (sim)
	// or within the differential oracle's global bands (analytic) leave
	// it nil — in particular, a surrogate fallback to sim carries no
	// Confidence, keeping the fallback byte-identical to the sim backend.
	Confidence *Confidence `json:"confidence,omitempty"`
	// IPs holds per-IP detail for the active IPs, in chip order.
	IPs []IPOutcome `json:"ips"`
}

// Confidence is a residual-derived envelope around a fitted-model answer:
// the producing backend asserts the true (measured) Attainable lies within
// RelErrBound of the reported one, based on the calibration residuals of
// the bucket that answered.
type Confidence struct {
	// RelErrBound is the asserted relative error bound on Attainable.
	RelErrBound float64 `json:"rel_err_bound"`
	// Lo and Hi are Attainable·(1∓RelErrBound), the asserted interval.
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
	// Bucket names the calibration bucket that answered (e.g.
	// "fpw=512/f=0.5"), for residual-table triage.
	Bucket string `json:"bucket"`
	// Efficiency is the calibrated sim/analytic correction applied.
	Efficiency float64 `json:"efficiency"`
}

// Clone returns a deep copy; cache-resident outcomes stay immutable.
func (o *Outcome) Clone() *Outcome {
	cp := *o
	cp.IPs = append([]IPOutcome(nil), o.IPs...)
	if o.Confidence != nil {
		conf := *o.Confidence
		cp.Confidence = &conf
	}
	return &cp
}

// Evaluator answers Queries at some fidelity. Implementations must be
// safe for concurrent use and deterministic: equal queries (by
// Fingerprint) get bitwise-equal Outcomes.
type Evaluator interface {
	// Meta describes the evaluator.
	Meta() Meta
	// Supports reports whether the evaluator can faithfully answer the
	// query; a non-nil error names the first unrepresentable aspect.
	Supports(q Query) error
	// Evaluate answers the query.
	Evaluate(ctx context.Context, q Query) (*Outcome, error)
}

// DefaultTrials is the trial count used when Query.Trials is 0, matching
// the erb harness default.
const DefaultTrials = 2

// trials returns the effective trial count.
func (q Query) trials() int {
	if q.Trials <= 0 {
		return DefaultTrials
	}
	return q.Trials
}

// Validate checks the query is well-formed and representable.
func (q Query) Validate() error {
	if len(q.Chip.IPs) == 0 {
		return fmt.Errorf("eval: query chip %q has no IPs", q.Chip.Name)
	}
	if len(q.Work) != len(q.Chip.IPs) {
		return fmt.Errorf("eval: query has %d work entries for %d chip IPs", len(q.Work), len(q.Chip.IPs))
	}
	active := 0
	for i, w := range q.Work {
		if w.Words < 0 {
			return fmt.Errorf("eval: IP %q: negative word count %d", q.Chip.IPs[i].Name, w.Words)
		}
		if w.Words == 0 {
			continue
		}
		active++
		if w.FlopsPerWord < 1 {
			return fmt.Errorf("eval: IP %q: FlopsPerWord must be at least 1, got %d", q.Chip.IPs[i].Name, w.FlopsPerWord)
		}
	}
	if active == 0 {
		return fmt.Errorf("eval: query assigns no work")
	}
	if q.Trials < 0 {
		return fmt.Errorf("eval: negative trial count %d", q.Trials)
	}
	if q.MaxEvents < 0 {
		return fmt.Errorf("eval: negative MaxEvents %d", q.MaxEvents)
	}
	return nil
}

// TotalWords sums the assigned array words.
func (q Query) TotalWords() int {
	total := 0
	for _, w := range q.Work {
		total += w.Words
	}
	return total
}

// TotalFlops is the query's total work: Σ words·FlopsPerWord·trials.
func (q Query) TotalFlops() float64 {
	total := 0.0
	for _, w := range q.Work {
		total += float64(w.Words) * float64(w.FlopsPerWord) * float64(q.trials())
	}
	return total
}

// realize converts the query into the simulation substrate's terms: one
// kernel assignment per active IP, in chip declaration order (assignment
// order is semantically meaningful — engine ties break by schedule
// order), plus the run options. Both backends and the fingerprint derive
// from this one realization.
func (q Query) realize() ([]sim.Assignment, sim.RunOptions, error) {
	if err := q.Validate(); err != nil {
		return nil, sim.RunOptions{}, err
	}
	var as []sim.Assignment
	for i, w := range q.Work {
		if w.Words == 0 {
			continue
		}
		as = append(as, sim.Assignment{
			IP: q.Chip.IPs[i].Name,
			Kernel: kernel.Kernel{
				Name:         "eval/" + q.Chip.IPs[i].Name,
				WorkingSet:   units.Bytes(w.Words * kernel.WordSize),
				Trials:       q.trials(),
				FlopsPerWord: w.FlopsPerWord,
				Pattern:      w.Pattern,
			},
		})
	}
	opt := sim.RunOptions{
		Coordination: q.Coordination,
		Thermal:      q.Thermal,
		MaxEvents:    q.MaxEvents,
	}
	return as, opt, nil
}

// Share names one IP's fraction of a split workload.
type Share struct {
	// IP names the chip IP.
	IP string
	// Fraction is the IP's share of the total words, in [0,1].
	Fraction float64
}

// SplitWork apportions totalWords across the named IPs by fraction, the
// way the §IV-C harnesses do: every share but the last gets
// int(fraction·totalWords) and the last absorbs the remainder, so the
// realized split is exactly the historical cpuWords/accWords arithmetic
// and total work is conserved. Unnamed chip IPs stay idle.
func SplitWork(cfg sim.Config, totalWords, flopsPerWord int, p kernel.Pattern, shares []Share) ([]IPWork, error) {
	if totalWords <= 0 {
		return nil, fmt.Errorf("eval: split needs positive totalWords, got %d", totalWords)
	}
	if len(shares) == 0 {
		return nil, fmt.Errorf("eval: split needs at least one share")
	}
	index := make(map[string]int, len(cfg.IPs))
	for i, ip := range cfg.IPs {
		index[ip.Name] = i
	}
	work := make([]IPWork, len(cfg.IPs))
	seen := make(map[string]bool, len(shares))
	assigned := 0
	for si, s := range shares {
		if s.Fraction < 0 || s.Fraction > 1 {
			return nil, fmt.Errorf("eval: share %q fraction %v outside [0,1]", s.IP, s.Fraction)
		}
		if seen[s.IP] {
			return nil, fmt.Errorf("eval: duplicate share for IP %q", s.IP)
		}
		seen[s.IP] = true
		i, ok := index[s.IP]
		if !ok {
			return nil, fmt.Errorf("eval: share names unknown IP %q on chip %q", s.IP, cfg.Name)
		}
		words := int(float64(totalWords) * s.Fraction)
		if si == len(shares)-1 {
			words = totalWords - assigned
		}
		if words < 0 {
			return nil, fmt.Errorf("eval: shares of %q over-assign %d words", cfg.Name, -words)
		}
		assigned += words
		work[i] = IPWork{Words: words, FlopsPerWord: flopsPerWord, Pattern: p}
	}
	return work, nil
}
