package eval

import (
	"context"
	"math"
	"testing"

	"github.com/gables-model/gables/internal/core"
	"github.com/gables-model/gables/internal/kernel"
	"github.com/gables-model/gables/internal/sim"
	"github.com/gables-model/gables/internal/simcache"
	"github.com/gables-model/gables/internal/units"
)

func twoIPQuery(t *testing.T, f float64, fpw int) Query {
	t.Helper()
	cfg := sim.Snapdragon835()
	work, err := SplitWork(cfg, 4<<20, fpw, kernel.ReadWrite, []Share{
		{IP: "CPU", Fraction: 1 - f}, {IP: "GPU", Fraction: f},
	})
	if err != nil {
		t.Fatal(err)
	}
	return Query{Chip: cfg, Work: work, Trials: 2}
}

// TestSplitWorkMatchesHistoricalArithmetic pins the apportionment to the
// exact cpuWords/accWords integer math the §IV-C harnesses have always
// used, so rethreaded callers produce fingerprint-identical runs.
func TestSplitWorkMatchesHistoricalArithmetic(t *testing.T) {
	cfg := sim.Snapdragon835()
	const words = 4 << 20
	for _, f := range []float64{0, 0.125, 0.25, 0.5, 0.625, 0.75, 1} {
		work, err := SplitWork(cfg, words, 32, kernel.ReadWrite, []Share{
			{IP: "CPU", Fraction: 1 - f}, {IP: "GPU", Fraction: f},
		})
		if err != nil {
			t.Fatal(err)
		}
		cpuWords := int(float64(words) * (1 - f))
		accWords := words - cpuWords
		if work[0].Words != cpuWords || work[1].Words != accWords {
			t.Errorf("f=%v: split = %d/%d, want %d/%d", f, work[0].Words, work[1].Words, cpuWords, accWords)
		}
		if work[0].Words+work[1].Words+work[2].Words != words {
			t.Errorf("f=%v: split loses words", f)
		}
	}
	// Errors: unknown IP, duplicate share, out-of-range fraction.
	if _, err := SplitWork(cfg, words, 8, kernel.ReadWrite, []Share{{IP: "NPU", Fraction: 1}}); err == nil {
		t.Error("unknown IP must be rejected")
	}
	if _, err := SplitWork(cfg, words, 8, kernel.ReadWrite, []Share{
		{IP: "CPU", Fraction: 0.5}, {IP: "CPU", Fraction: 0.5}}); err == nil {
		t.Error("duplicate share must be rejected")
	}
	if _, err := SplitWork(cfg, words, 8, kernel.ReadWrite, []Share{{IP: "CPU", Fraction: 1.5}}); err == nil {
		t.Error("fraction outside [0,1] must be rejected")
	}
}

func TestQueryValidate(t *testing.T) {
	q := twoIPQuery(t, 0.5, 32)
	if err := q.Validate(); err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}
	bad := q
	bad.Work = q.Work[:1]
	if err := bad.Validate(); err == nil {
		t.Error("work/IP count mismatch must be rejected")
	}
	bad = q
	bad.Work = []IPWork{{}, {}, {}}
	if err := bad.Validate(); err == nil {
		t.Error("all-idle query must be rejected")
	}
	bad = q
	bad.Work = append([]IPWork(nil), q.Work...)
	bad.Work[0] = IPWork{Words: 100, FlopsPerWord: 0}
	if err := bad.Validate(); err == nil {
		t.Error("active work with zero FlopsPerWord must be rejected")
	}
}

// TestFingerprintCanonicalization pins the fingerprint contract: equal
// realized runs agree, every semantic knob separates, and the
// sim-delegated exclusions (trial order, labels) hold.
func TestFingerprintCanonicalization(t *testing.T) {
	q := twoIPQuery(t, 0.5, 32)
	fp1, err := Fingerprint(q)
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := Fingerprint(twoIPQuery(t, 0.5, 32))
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Error("identical queries must fingerprint identically")
	}

	variants := map[string]func(Query) Query{
		"fraction":     func(q Query) Query { return twoIPQuery(t, 0.25, 32) },
		"intensity":    func(q Query) Query { return twoIPQuery(t, 0.5, 64) },
		"serialized":   func(q Query) Query { q.Serialized = true; return q },
		"coordination": func(q Query) Query { q.Coordination = true; return q },
		"thermal":      func(q Query) Query { q.Thermal = true; return q },
		"trials":       func(q Query) Query { q.Trials = 3; return q },
	}
	for name, mutate := range variants {
		fp, err := Fingerprint(mutate(q))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if fp == fp1 {
			t.Errorf("%s change must change the fingerprint", name)
		}
	}

	// MaxEvents normalization is inherited from sim.Fingerprint: 0 and
	// the explicit default are the same run.
	qa, qb := q, q
	qa.MaxEvents = 0
	qb.MaxEvents = sim.DefaultMaxEvents
	fpa, _ := Fingerprint(qa)
	fpb, _ := Fingerprint(qb)
	if fpa != fpb {
		t.Error("MaxEvents 0 and DefaultMaxEvents must fingerprint identically")
	}
}

// TestSimEvaluatorMatchesDirectRun pins byte-identity through the new
// interface: the sim backend's outcome must be exactly the simcache.Run
// result of the query's canonical realization.
func TestSimEvaluatorMatchesDirectRun(t *testing.T) {
	q := twoIPQuery(t, 0.75, 8)
	as, opt, err := q.realize()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := simcache.Run(q.Chip, as, opt)
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewSim().Evaluate(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if o.Attainable != direct.Rate || o.Makespan != direct.Makespan || o.TotalFlops != direct.TotalFlops {
		t.Errorf("sim outcome %+v disagrees with direct run rate=%v makespan=%v flops=%v",
			o, direct.Rate, direct.Makespan, direct.TotalFlops)
	}
	if len(o.IPs) != len(direct.IPs) {
		t.Fatalf("per-IP detail count %d, want %d", len(o.IPs), len(direct.IPs))
	}
	for i, ip := range o.IPs {
		if ip.Rate != direct.IPs[i].Rate || ip.IP != direct.IPs[i].IP {
			t.Errorf("IP %d outcome %+v disagrees with direct %+v", i, ip, direct.IPs[i])
		}
	}
}

// TestAnalyticInjectedModelMatchesDirectEvaluate pins the other
// byte-identity: with an injected model, the analytic backend's
// attainable must equal evaluating the historical TwoIPUsecase directly —
// the erb.ValidateModel rethreading depends on it.
func TestAnalyticInjectedModelMatchesDirectEvaluate(t *testing.T) {
	s, err := core.TwoIP("inj", units.GopsPerSec(10), units.GBPerSec(30), 20,
		units.GBPerSec(15), units.GBPerSec(25))
	if err != nil {
		t.Fatal(err)
	}
	model, err := core.New(s)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewAnalyticModel(model, []string{"CPU", "GPU"})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []float64{0, 0.25, 0.5, 0.75, 1} {
		for _, fpw := range []int{8, 512} {
			q := twoIPQuery(t, f, fpw)
			o, err := ev.Evaluate(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
			intensity := units.Intensity(float64(fpw) / 8)
			u, err := core.TwoIPUsecase("cell", f, intensity, intensity)
			if err != nil {
				t.Fatal(err)
			}
			res, err := model.Evaluate(u)
			if err != nil {
				t.Fatal(err)
			}
			if o.Attainable != float64(res.Attainable) {
				t.Errorf("f=%v fpw=%d: analytic backend %v != direct evaluate %v (must be bitwise identical)",
					f, fpw, o.Attainable, float64(res.Attainable))
			}
		}
	}

	// Work on a chip IP absent from the model is unsupported.
	q := twoIPQuery(t, 0.5, 8)
	q.Work[2] = IPWork{Words: 4 << 20, FlopsPerWord: 8}
	if err := ev.Supports(q); err == nil {
		t.Error("work on an IP missing from the injected model must be unsupported")
	}
}

// TestAnalyticSerializedMatchesDirect covers the §V-C path the same way.
func TestAnalyticSerializedMatchesDirect(t *testing.T) {
	s, err := core.TwoIP("inj", units.GopsPerSec(10), units.GBPerSec(30), 20,
		units.GBPerSec(15), units.GBPerSec(25))
	if err != nil {
		t.Fatal(err)
	}
	model, err := core.New(s)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewAnalyticModel(model, []string{"CPU", "GPU"})
	if err != nil {
		t.Fatal(err)
	}
	q := twoIPQuery(t, 0.5, 64)
	q.Serialized = true
	o, err := ev.Evaluate(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	intensity := units.Intensity(64.0 / 8)
	u, err := core.TwoIPUsecase("cell", 0.5, intensity, intensity)
	if err != nil {
		t.Fatal(err)
	}
	res, err := model.EvaluateSerialized(u)
	if err != nil {
		t.Fatal(err)
	}
	if o.Attainable != float64(res.Attainable) {
		t.Errorf("serialized: backend %v != direct %v", o.Attainable, float64(res.Attainable))
	}
	if o.Bottleneck.Kind != "IP" {
		t.Errorf("serialized bottleneck = %v, want an IP (slowest exclusive phase)", o.Bottleneck)
	}
}

func TestAnalyticSupports(t *testing.T) {
	ev := NewAnalytic()
	q := twoIPQuery(t, 0.5, 32)
	if err := ev.Supports(q); err != nil {
		t.Errorf("plain query must be supported: %v", err)
	}
	qc := q
	qc.Coordination = true
	if err := ev.Supports(qc); err == nil {
		t.Error("coordination must be unsupported")
	}
	qt := q
	qt.Thermal = true
	if err := ev.Supports(qt); err == nil {
		t.Error("thermal must be unsupported")
	}
	if _, err := ev.Evaluate(context.Background(), qc); err == nil {
		t.Error("evaluating an unsupported query must fail")
	}
}

// TestOutcomeCache pins the analytic backend's memoization through the
// shared eval outcome cache.
func TestOutcomeCache(t *testing.T) {
	ResetCache()
	t.Cleanup(ResetCache)
	ev := NewAnalytic()
	q := twoIPQuery(t, 0.625, 32)
	a, err := ev.Evaluate(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ev.Evaluate(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	s := CacheStats()
	if s.Misses != 1 || s.Hits != 1 {
		t.Errorf("outcome cache stats = %+v, want one miss then one hit", s)
	}
	if a.Attainable != b.Attainable {
		t.Error("cached outcome disagrees")
	}
	// Cached outcomes are cloned: mutating one must not poison the next.
	b.IPs[0].Rate = -1
	c, _ := ev.Evaluate(context.Background(), q)
	if c.IPs[0].Rate == -1 {
		t.Error("cache-resident outcome was mutated through a returned clone")
	}
}

func TestRegistry(t *testing.T) {
	for _, name := range []string{"analytic", "sim", "auto"} {
		ev, err := Resolve(name)
		if err != nil {
			t.Fatalf("Resolve(%q): %v", name, err)
		}
		if ev.Meta().Name != name {
			t.Errorf("Resolve(%q).Meta().Name = %q", name, ev.Meta().Name)
		}
	}
	if _, err := Resolve("nope"); err == nil {
		t.Error("unknown backend must be rejected")
	}
	if err := SetDefault("nope"); err == nil {
		t.Error("SetDefault of unknown backend must be rejected")
	}
	if got := Default().Meta().Name; got != "sim" {
		t.Errorf("initial default = %q, want sim (measurement semantics)", got)
	}
	if err := SetDefault("auto"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := SetDefault("sim"); err != nil {
			t.Fatal(err)
		}
	})
	if got := Default().Meta().Name; got != "auto" {
		t.Errorf("default after SetDefault = %q, want auto", got)
	}
	names := Names()
	if len(names) < 3 {
		t.Errorf("Names() = %v, want at least analytic/auto/sim", names)
	}
}

// TestAutoRouting pins the envelope: in-envelope queries go analytic,
// coordination/thermal/cache-resident queries go to measurement, and the
// outcome records the actual backend.
func TestAutoRouting(t *testing.T) {
	auto := NewAuto(NewAnalytic(), NewSim(), DefaultEnvelope())

	inEnv := twoIPQuery(t, 0.5, 32)
	if got := auto.Pick(inEnv).Meta().Name; got != "analytic" {
		t.Errorf("in-envelope query routed to %q, want analytic", got)
	}
	o, err := auto.Evaluate(context.Background(), inEnv)
	if err != nil {
		t.Fatal(err)
	}
	if o.Backend != "analytic" || o.Fidelity != FidelityAnalytic {
		t.Errorf("outcome backend = %q/%q, want analytic", o.Backend, o.Fidelity)
	}

	coord := inEnv
	coord.Coordination = true
	if got := auto.Pick(coord).Meta().Name; got != "sim" {
		t.Errorf("coordination query routed to %q, want sim", got)
	}

	// A CPU working set under 2× its 2 MiB cache is cache-resident
	// territory: measurement.
	small := inEnv
	small.Work = append([]IPWork(nil), inEnv.Work...)
	small.Work[0] = IPWork{Words: 64 << 10, FlopsPerWord: 32}
	if got := auto.Pick(small).Meta().Name; got != "sim" {
		t.Errorf("cache-resident query routed to %q, want sim", got)
	}
}

// TestSerializedSimDecomposition pins the §V-C measured form: the
// serialized outcome is the sum of per-IP exclusive runs.
func TestSerializedSimDecomposition(t *testing.T) {
	q := twoIPQuery(t, 0.5, 64)
	q.Serialized = true
	o, err := NewSim().Evaluate(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	as, opt, err := q.realize()
	if err != nil {
		t.Fatal(err)
	}
	var sum, flops float64
	for _, a := range as {
		res, err := simcache.Run(q.Chip, []sim.Assignment{a}, opt)
		if err != nil {
			t.Fatal(err)
		}
		sum += res.Makespan
		flops += res.TotalFlops
	}
	if o.Makespan != sum || o.TotalFlops != flops {
		t.Errorf("serialized outcome makespan=%v flops=%v, want %v/%v", o.Makespan, o.TotalFlops, sum, flops)
	}
	if math.Abs(o.Attainable-flops/sum) > 1e-9*o.Attainable {
		t.Errorf("serialized rate = %v, want %v", o.Attainable, flops/sum)
	}
}

func TestKeyScoping(t *testing.T) {
	a, err := Key("t/v1", 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Key("t/v2", 1)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("different scopes must produce different keys")
	}
	if _, err := Key("", 1); err == nil {
		t.Error("empty scope must be rejected")
	}
	if _, err := Key("t/v1", math.NaN()); err == nil {
		t.Error("unkeyable parts must error (callers bypass their cache)")
	}
}

// TestEvaluatorInterfaceCompliance keeps the production backends honest
// against the interface.
func TestEvaluatorInterfaceCompliance(t *testing.T) {
	for _, ev := range []Evaluator{NewAnalytic(), NewSim(), NewAuto(NewAnalytic(), NewSim(), DefaultEnvelope())} {
		m := ev.Meta()
		if m.Name == "" || m.Fidelity == "" || m.Description == "" {
			t.Errorf("%T: incomplete meta %+v", ev, m)
		}
		if err := ev.Supports(Query{}); err == nil {
			t.Errorf("%T: empty query must be unsupported", ev)
		}
		if _, err := ev.Evaluate(context.Background(), Query{}); err == nil {
			t.Errorf("%T: empty query must not evaluate", ev)
		}
	}
}

// TestContextCancellation: a canceled context short-circuits evaluation.
func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := twoIPQuery(t, 0.5, 32)
	for _, ev := range []Evaluator{NewAnalytic(), NewSim()} {
		if _, err := ev.Evaluate(ctx, q); err == nil {
			t.Errorf("%s: canceled context must fail", ev.Meta().Name)
		}
	}
}
