package optimize

import (
	"math"
	"testing"

	"github.com/gables-model/gables/internal/core"
	"github.com/gables-model/gables/internal/units"
)

func paperModel(t *testing.T, bpeakGB float64) *core.Model {
	t.Helper()
	s, err := core.TwoIP("paper", units.GopsPerSec(40), units.GBPerSec(bpeakGB), 5,
		units.GBPerSec(6), units.GBPerSec(15))
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(s)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestSufficientBandwidthFig6d reproduces the paper's closing move: with
// I0 = I1 = 8 and f = 0.75 the non-memory bound is 160 Gops/s at
// Iavg = 8, so 20 GB/s suffices — exactly the Bpeak Figure 6d picks.
func TestSufficientBandwidthFig6d(t *testing.T) {
	m := paperModel(t, 30) // the over-provisioned Fig 6c design
	u, _ := core.TwoIPUsecase("6d", 0.75, 8, 8)
	got, err := SufficientBandwidth(m, u)
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEqual(got.GB(), 20, 1e-9) {
		t.Errorf("sufficient Bpeak = %v GB/s, want 20 (Fig 6d)", got.GB())
	}

	// Verify: at the sufficient bandwidth the design is balanced; below
	// it memory binds.
	at := *m.SoC
	at.MemoryBandwidth = got
	bm := &core.Model{SoC: &at}
	bal, err := Analyze(bm, u)
	if err != nil {
		t.Fatal(err)
	}
	if !IsBalanced(bal, 1e-9) {
		t.Errorf("design at sufficient bandwidth must be balanced: %+v", bal)
	}
}

func TestSufficientBandwidthLowReuse(t *testing.T) {
	// Fig 6b's low-reuse usecase: non-memory bound is IP[1]'s 2 Gops/s
	// at Iavg = 0.13278 → sufficient Bpeak ≈ 15.06 GB/s. The paper's
	// move to 30 GB/s (Fig 6c) was over-provisioning.
	m := paperModel(t, 10)
	u, _ := core.TwoIPUsecase("6b", 0.75, 8, 0.1)
	got, err := SufficientBandwidth(m, u)
	if err != nil {
		t.Fatal(err)
	}
	want := 2.0 / (1 / (0.25/8 + 0.75/0.1)) // nonMemory / Iavg
	if !units.ApproxEqual(got.GB(), want, 1e-9) {
		t.Errorf("sufficient Bpeak = %v GB/s, want %v", got.GB(), want)
	}
	if got.GB() >= 30 {
		t.Error("Fig 6c's 30 GB/s must be over-provisioned for this usecase")
	}
}

func TestRequiredIntensity(t *testing.T) {
	m := paperModel(t, 20)
	u, _ := core.TwoIPUsecase("6d", 0.75, 8, 0.1)
	// For IP[1] to stop binding below 160 Gops/s: I1 ≥ 160e9·0.75/15e9 = 8
	// — exactly the I1 = 8 Figure 6d installs.
	got, err := RequiredIntensity(m, u, 1, units.GopsPerSec(160))
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEqual(float64(got), 8, 1e-9) {
		t.Errorf("required I1 = %v, want 8", float64(got))
	}

	// A target above the IP's saturating bound is impossible.
	if _, err := RequiredIntensity(m, u, 1, units.GopsPerSec(500)); err == nil {
		t.Error("unreachable target must be an error")
	}
	if _, err := RequiredIntensity(m, u, 5, units.GopsPerSec(1)); err == nil {
		t.Error("out-of-range IP must be rejected")
	}
	u0, _ := core.TwoIPUsecase("f0", 0, 8, 8)
	if _, err := RequiredIntensity(m, u0, 1, units.GopsPerSec(1)); err == nil {
		t.Error("idle IP must be rejected")
	}
	if _, err := RequiredIntensity(m, u, 1, 0); err == nil {
		t.Error("zero target must be rejected")
	}
}

func TestBestSplit(t *testing.T) {
	// With high reuse on both IPs and ample bandwidth, the optimum
	// splits work by compute capability: f* = A/(1+A) = 5/6, giving
	// each IP equal time.
	m := paperModel(t, 1000)
	// Raise link bandwidths out of the way.
	m.SoC.IPs[0].Bandwidth = units.GBPerSec(1000)
	m.SoC.IPs[1].Bandwidth = units.GBPerSec(1000)
	res, err := BestSplit(m, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.F-5.0/6) > 1e-3 {
		t.Errorf("best f = %v, want 5/6", res.F)
	}
	if !units.ApproxEqual(res.Attainable.Gops(), 240, 1e-3) {
		t.Errorf("best Pattainable = %v, want 240 (40/(1/6))", res.Attainable.Gops())
	}
}

func TestBestSplitLowReuseOffloadsOnlyASliver(t *testing.T) {
	// Fig 6b hardware: offloading low-reuse work in bulk hurts badly
	// (1.33 Gops/s at f = 0.75), but a *sliver* helps — it relieves the
	// compute-bound CPU before memory binds. The analytic optimum is
	// where IP[0]'s scaled roofline meets memory's:
	// 40/(1−f) = 10/((1−f)/8 + 10f) → f = 1/81, P = 40·81/80 = 40.5.
	m := paperModel(t, 10)
	res, err := BestSplit(m, 8, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.F-1.0/81) > 1e-4 {
		t.Errorf("best f = %v, want 1/81 ≈ 0.01235", res.F)
	}
	if !units.ApproxEqual(res.Attainable.Gops(), 40.5, 1e-6) {
		t.Errorf("best Pattainable = %v, want 40.5", res.Attainable.Gops())
	}
	// And the bulk-offload point is indeed catastrophic by comparison.
	bulk, _ := core.TwoIPUsecase("6b", 0.75, 8, 0.1)
	bulkRes, err := m.Evaluate(bulk)
	if err != nil {
		t.Fatal(err)
	}
	if bulkRes.Attainable.Gops() > 2 {
		t.Errorf("bulk offload = %v, expected the Fig 6b collapse", bulkRes.Attainable.Gops())
	}
}

func TestBestSplitValidation(t *testing.T) {
	three := &core.SoC{
		Name: "three", Peak: units.GopsPerSec(10), MemoryBandwidth: units.GBPerSec(10),
		IPs: []core.IP{
			{Name: "a", Acceleration: 1, Bandwidth: units.GBPerSec(1)},
			{Name: "b", Acceleration: 2, Bandwidth: units.GBPerSec(1)},
			{Name: "c", Acceleration: 3, Bandwidth: units.GBPerSec(1)},
		},
	}
	m, err := core.New(three)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BestSplit(m, 8, 8); err == nil {
		t.Error("three-IP SoC must be rejected")
	}
}

func TestAnalyzeHeadroom(t *testing.T) {
	// Fig 6c: bounds are {160, 2, 3.98} → headrooms {80, 1, ~2}.
	m := paperModel(t, 30)
	u, _ := core.TwoIPUsecase("6c", 0.75, 8, 0.1)
	bal, err := Analyze(m, u)
	if err != nil {
		t.Fatal(err)
	}
	if len(bal) != 3 {
		t.Fatalf("balances = %d", len(bal))
	}
	byKind := map[string]float64{}
	for _, b := range bal {
		byKind[b.Component.Kind+b.Component.Name] = b.Headroom
	}
	if !units.ApproxEqual(byKind["IPIP[0]"], 80, 1e-9) {
		t.Errorf("IP[0] headroom = %v, want 80", byKind["IPIP[0]"])
	}
	if !units.ApproxEqual(byKind["IPIP[1]"], 1, 1e-9) {
		t.Errorf("IP[1] headroom = %v, want 1 (the bottleneck)", byKind["IPIP[1]"])
	}
	if IsBalanced(bal, 0.01) {
		t.Error("Fig 6c is famously unbalanced")
	}

	// Fig 6d balances everything.
	m2 := paperModel(t, 20)
	u2, _ := core.TwoIPUsecase("6d", 0.75, 8, 8)
	bal2, err := Analyze(m2, u2)
	if err != nil {
		t.Fatal(err)
	}
	if !IsBalanced(bal2, 1e-9) {
		t.Errorf("Fig 6d must be balanced: %+v", bal2)
	}
}

func TestIsBalancedEmpty(t *testing.T) {
	if IsBalanced(nil, 0.1) {
		t.Error("empty balance list is not balanced")
	}
}
