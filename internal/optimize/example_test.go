package optimize_test

import (
	"fmt"

	"github.com/gables-model/gables/internal/core"
	"github.com/gables-model/gables/internal/optimize"
	"github.com/gables-model/gables/internal/units"
)

// ExampleSufficientBandwidth recovers the paper's Figure 6d move: the
// balanced usecase can use exactly 20 GB/s of off-chip bandwidth — the
// Fig 6c design's 30 GB/s was money spent "without benefit".
func ExampleSufficientBandwidth() {
	soc, _ := core.TwoIP("demo", units.GopsPerSec(40), units.GBPerSec(30), 5,
		units.GBPerSec(6), units.GBPerSec(15))
	m, _ := core.New(soc)
	u, _ := core.TwoIPUsecase("fig6d", 0.75, 8, 8)

	suff, _ := optimize.SufficientBandwidth(m, u)
	fmt.Printf("sufficient Bpeak: %g GB/s\n", suff.GB())
	// Output: sufficient Bpeak: 20 GB/s
}

// ExampleAnalyze inspects the Figure 6c design's imbalance: the CPU is
// 80× over-provisioned for this usecase while the accelerator binds.
func ExampleAnalyze() {
	soc, _ := core.TwoIP("demo", units.GopsPerSec(40), units.GBPerSec(30), 5,
		units.GBPerSec(6), units.GBPerSec(15))
	m, _ := core.New(soc)
	u, _ := core.TwoIPUsecase("fig6c", 0.75, 8, 0.1)

	balances, _ := optimize.Analyze(m, u)
	for _, b := range balances {
		fmt.Printf("%-16s headroom %.3g\n", b.Component, b.Headroom)
	}
	// Output:
	// IP[0] (IP[0])    headroom 80
	// IP[1] (IP[1])    headroom 1
	// memory interface headroom 1.99
}
