// Package optimize finds balanced SoC designs under the Gables model: the
// minimal off-chip bandwidth a usecase can actually use (the Figure 6d
// observation that Bpeak = 20 GB/s "suffices"), the per-IP operational
// intensities needed for balance, and the work split that maximizes
// attainable performance. These are the early-design-stage questions §VII's
// conjectures say the model exists to answer.
package optimize

import (
	"fmt"
	"math"

	"github.com/gables-model/gables/internal/core"
	"github.com/gables-model/gables/internal/units"
)

// SufficientBandwidth returns the smallest Bpeak at which memory ceases to
// be the binding constraint for the usecase: any more off-chip bandwidth is
// spend without benefit (Figure 6c's wasted 30 GB/s), any less makes DRAM
// the bottleneck. It equals the non-memory bound divided by the usecase's
// effective average intensity.
func SufficientBandwidth(m *core.Model, u *core.Usecase) (units.BytesPerSec, error) {
	terms, _, err := m.PerformanceForm(u)
	if err != nil {
		return 0, err
	}
	nonMemory := math.Inf(1)
	var memPerf units.OpsPerSec
	for _, t := range terms {
		if t.Component.Kind == "memory" {
			memPerf = t.Perf
			continue
		}
		nonMemory = math.Min(nonMemory, float64(t.Perf))
	}
	if memPerf == 0 {
		return 0, fmt.Errorf("optimize: usecase has no off-chip traffic; any Bpeak suffices")
	}
	if math.IsInf(nonMemory, 1) {
		return 0, fmt.Errorf("optimize: no non-memory bound to balance against")
	}
	// memPerf = Bpeak·Iavg, so Iavg = memPerf/Bpeak and the sufficient
	// bandwidth is nonMemory/Iavg.
	iavg := float64(memPerf) / float64(m.SoC.MemoryBandwidth)
	return units.BytesPerSec(nonMemory / iavg), nil
}

// RequiredIntensity returns the operational intensity IP i needs for its
// own roofline term to stop binding below the target performance — the
// "add registers/scratchpads/caches and reuse data" lever of Figure 6d.
// It returns an error when the IP cannot reach the target at any intensity
// (its compute term min(Bi·Ii, Ai·Ppeak)/fi saturates below the target).
func RequiredIntensity(m *core.Model, u *core.Usecase, ipIndex int, target units.OpsPerSec) (units.Intensity, error) {
	if ipIndex < 0 || ipIndex >= len(m.SoC.IPs) {
		return 0, fmt.Errorf("optimize: IP index %d out of range", ipIndex)
	}
	if target <= 0 {
		return 0, fmt.Errorf("optimize: target must be positive")
	}
	fi := u.Work[ipIndex].Fraction
	if fi == 0 {
		return 0, fmt.Errorf("optimize: IP %d has no work in this usecase", ipIndex)
	}
	ip := m.SoC.IPs[ipIndex]
	peakTerm := float64(ip.Peak(m.SoC.Peak)) / fi
	if peakTerm < float64(target)*(1-1e-12) {
		return 0, fmt.Errorf("optimize: IP %d saturates at %v ops/s below target %v",
			ipIndex, peakTerm, float64(target))
	}
	// Need Bi·Ii/fi ≥ target → Ii ≥ target·fi/Bi.
	return units.Intensity(float64(target) * fi / float64(ip.Bandwidth)), nil
}

// SplitResult reports the best two-IP work split.
type SplitResult struct {
	F          float64
	Attainable units.OpsPerSec
	Bottleneck core.Component
}

// BestSplit finds the work fraction f maximizing Pattainable on a two-IP
// model with fixed intensities, via ternary search (Pattainable(f) is the
// minimum of monotone terms, hence unimodal).
func BestSplit(m *core.Model, i0, i1 units.Intensity) (*SplitResult, error) {
	if len(m.SoC.IPs) != 2 {
		return nil, fmt.Errorf("optimize: best-split needs a two-IP SoC, got %d IPs", len(m.SoC.IPs))
	}
	eval := func(f float64) (*core.Result, error) {
		u, err := core.TwoIPUsecase("split", f, i0, i1)
		if err != nil {
			return nil, err
		}
		//lint:ignore evalboundary analytic substrate: the ternary search perturbs an injected model's work split hundreds of times per call
		return m.Evaluate(u)
	}
	lo, hi := 0.0, 1.0
	for iter := 0; iter < 200; iter++ {
		m1 := lo + (hi-lo)/3
		m2 := hi - (hi-lo)/3
		r1, err := eval(m1)
		if err != nil {
			return nil, err
		}
		r2, err := eval(m2)
		if err != nil {
			return nil, err
		}
		if r1.Attainable < r2.Attainable {
			lo = m1
		} else {
			hi = m2
		}
	}
	f := (lo + hi) / 2
	// The optimum can sit exactly on a boundary; check the endpoints too.
	best, err := eval(f)
	if err != nil {
		return nil, err
	}
	for _, cand := range []float64{0, 1} {
		r, err := eval(cand)
		if err != nil {
			return nil, err
		}
		if r.Attainable > best.Attainable {
			best, f = r, cand
		}
	}
	return &SplitResult{F: f, Attainable: best.Attainable, Bottleneck: best.Bottleneck}, nil
}

// Balance describes how far each component's bound sits above the
// attainable performance: 1.0 means the component is (one of) the
// bottleneck(s); large values mean over-provisioned hardware — Amdahl's
// reminder in §VII that acceleration beyond the assigned work is wasted.
type Balance struct {
	Component core.Component
	// Headroom is the component's bound divided by Pattainable (≥ 1).
	Headroom float64
}

// Analyze returns the per-component headroom for a usecase, sorted as the
// performance form emits terms. A perfectly balanced design (Figure 6d)
// has every headroom at 1.
func Analyze(m *core.Model, u *core.Usecase) ([]Balance, error) {
	terms, bound, err := m.PerformanceForm(u)
	if err != nil {
		return nil, err
	}
	if bound <= 0 {
		return nil, fmt.Errorf("optimize: degenerate usecase bound")
	}
	out := make([]Balance, len(terms))
	for i, t := range terms {
		out[i] = Balance{Component: t.Component, Headroom: float64(t.Perf) / float64(bound)}
	}
	return out, nil
}

// IsBalanced reports whether every component's headroom is within tol of 1
// (Figure 6d's "all three rooflines equal").
func IsBalanced(balances []Balance, tol float64) bool {
	for _, b := range balances {
		if b.Headroom > 1+tol {
			return false
		}
	}
	return len(balances) > 0
}
