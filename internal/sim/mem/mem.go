// Package mem provides the bandwidth-server building blocks of the
// simulated SoC's memory system: FIFO resources with a service rate
// (links, fabrics, the DRAM controller, and compute engines alike), chained
// transfers across multi-hop paths, and a streaming cache model.
//
// A Server is a single-queue resource: a request of n units (bytes, or ops
// for compute servers) occupies it for n/capacity seconds after any queued
// work ahead of it. Shared servers therefore produce contention naturally:
// two IPs pushing chunks through the same DRAM server each see roughly half
// its capacity, which is exactly the mechanism behind the Gables paper's
// shared-Bpeak bound and its Figure 8 mixing results.
package mem

import (
	"fmt"
	"math"

	"github.com/gables-model/gables/internal/sim/engine"
)

// Server is a FIFO bandwidth resource. Requests queue and are serviced one
// at a time; a request's service time is computed when its service
// *starts*, so capacity changes (DVFS throttling) apply to queued work, not
// only to work admitted later.
type Server struct {
	name     string
	eng      *engine.Engine
	capacity float64 // units per second
	queue    []request
	active   bool
	busy     float64 // total busy seconds
	served   float64 // total units served
}

type request struct {
	amount float64
	done   func()
}

// NewServer creates a server with the given capacity in units/second.
func NewServer(eng *engine.Engine, name string, capacity float64) (*Server, error) {
	if eng == nil {
		return nil, fmt.Errorf("mem: server %q: nil engine", name)
	}
	if capacity <= 0 || math.IsNaN(capacity) || math.IsInf(capacity, 0) {
		return nil, fmt.Errorf("mem: server %q: capacity must be positive and finite, got %v", name, capacity)
	}
	return &Server{name: name, eng: eng, capacity: capacity}, nil
}

// Name returns the server's label.
func (s *Server) Name() string { return s.name }

// Capacity returns the current service rate.
func (s *Server) Capacity() float64 { return s.capacity }

// SetCapacity changes the service rate (the DVFS governor's hook). The new
// rate applies to every service that starts afterwards, including requests
// already waiting in the queue; only the request being serviced right now
// keeps its original timing.
func (s *Server) SetCapacity(c float64) error {
	if c <= 0 || math.IsNaN(c) || math.IsInf(c, 0) {
		return fmt.Errorf("mem: server %q: capacity must be positive and finite, got %v", s.name, c)
	}
	s.capacity = c
	return nil
}

// Request enqueues amount units of service and calls done when it
// completes. Zero-amount requests complete after any queued work, with no
// service time of their own.
func (s *Server) Request(amount float64, done func()) error {
	if amount < 0 || math.IsNaN(amount) || math.IsInf(amount, 0) {
		return fmt.Errorf("mem: server %q: amount must be non-negative and finite, got %v", s.name, amount)
	}
	if done == nil {
		return fmt.Errorf("mem: server %q: nil completion", s.name)
	}
	s.queue = append(s.queue, request{amount: amount, done: done})
	if !s.active {
		s.startNext()
	}
	return nil
}

// startNext begins servicing the queue head, if any.
func (s *Server) startNext() {
	if len(s.queue) == 0 {
		s.active = false
		return
	}
	s.active = true
	r := s.queue[0]
	s.queue = s.queue[1:]
	service := engine.Time(r.amount / s.capacity)
	s.busy += float64(service)
	s.served += r.amount
	// Delay and engine state are valid by construction; a scheduling
	// failure here is a programming error.
	if err := s.eng.After(service, func() {
		r.done()
		s.startNext()
	}); err != nil {
		panic(fmt.Sprintf("mem: server %q: %v", s.name, err))
	}
}

// Served returns the total units served so far.
func (s *Server) Served() float64 { return s.served }

// BusyTime returns the total seconds the server has been busy.
func (s *Server) BusyTime() float64 { return s.busy }

// Utilization returns busy time over elapsed time at the horizon, in
// [0, ~1] (slightly above 1 is possible when admitted work extends past the
// horizon).
func (s *Server) Utilization(horizon engine.Time) float64 {
	if horizon <= 0 {
		return 0
	}
	return s.busy / float64(horizon)
}

// Reset clears accounting for back-to-back measurement runs on one system.
// It must only be called while the server is idle; resetting with queued
// work would orphan the queue's completions.
func (s *Server) Reset() {
	s.busy = 0
	s.served = 0
}

// Hop is one stage of a transfer path: a server and the amount of service
// the transfer consumes there. Amounts can differ per hop — a DRAM
// controller may charge writes more than reads, and host-staged transfers
// cross the memory twice.
type Hop struct {
	Server *Server
	Amount float64
}

// Transfer moves a request through the hops in order — each hop's service
// begins when the previous hop completes — and calls done at the end.
// Different transfers overlap across hops, so a chain of servers behaves
// like a pipeline whose throughput is set by its busiest stage.
func Transfer(hops []Hop, done func()) error {
	if done == nil {
		return fmt.Errorf("mem: transfer: nil completion")
	}
	if len(hops) == 0 {
		return fmt.Errorf("mem: transfer: no hops")
	}
	for i, h := range hops {
		if h.Server == nil {
			return fmt.Errorf("mem: transfer: hop %d has nil server", i)
		}
	}
	var step func(i int)
	step = func(i int) {
		if i == len(hops) {
			done()
			return
		}
		// Request errors are validated above (amount checked by the
		// server); a failure here is a programming error surfaced by
		// the panic below rather than silently dropping the chunk.
		if err := hops[i].Server.Request(hops[i].Amount, func() { step(i + 1) }); err != nil {
			panic(fmt.Sprintf("mem: transfer hop %d: %v", i, err))
		}
	}
	// Validate all amounts before starting so no partial transfer runs.
	for i, h := range hops {
		if h.Amount < 0 || math.IsNaN(h.Amount) || math.IsInf(h.Amount, 0) {
			return fmt.Errorf("mem: transfer: hop %d amount %v invalid", i, h.Amount)
		}
	}
	step(0)
	return nil
}

// Cache is a streaming cache model for the Algorithm 1 micro-benchmark
// pattern: a sequential scan over a working set of W bytes, repeated for
// several trials. Under LRU, a scan larger than the cache thrashes — every
// access misses on every trial — while a scan that fits is all hits after
// the first (warmup) trial. This cliff is the mechanism that lets the
// §IV method find an IP's DRAM bandwidth (large W) and cache bandwidth
// (small W) with the same kernel.
type Cache struct {
	// Size is the capacity in bytes.
	Size float64
	// Server models hit bandwidth: a private resource, uncontended by
	// other IPs.
	Server *Server
}

// NewCache builds a cache with the given size and hit bandwidth.
func NewCache(eng *engine.Engine, name string, size, hitBandwidth float64) (*Cache, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mem: cache %q: size must be positive, got %v", name, size)
	}
	srv, err := NewServer(eng, name, hitBandwidth)
	if err != nil {
		return nil, err
	}
	return &Cache{Size: size, Server: srv}, nil
}

// Hits reports whether a streaming working set of w bytes is served from
// the cache on trial number `trial` (0-based): only when it fits and the
// warmup trial has passed.
func (c *Cache) Hits(w float64, trial int) bool {
	return w <= c.Size && trial > 0
}
