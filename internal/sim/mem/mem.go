// Package mem provides the bandwidth-server building blocks of the
// simulated SoC's memory system: FIFO resources with a service rate
// (links, fabrics, the DRAM controller, and compute engines alike), chained
// transfers across multi-hop paths, and a streaming cache model.
//
// A Server is a single-queue resource: a request of n units (bytes, or ops
// for compute servers) occupies it for n/capacity seconds after any queued
// work ahead of it. Shared servers therefore produce contention naturally:
// two IPs pushing chunks through the same DRAM server each see roughly half
// its capacity, which is exactly the mechanism behind the Gables paper's
// shared-Bpeak bound and its Figure 8 mixing results.
//
// The hot path is allocation-lean: the server's queue is an index-based
// ring buffer (no per-request boxing, no head-retaining reslicing), each
// service completion reuses one pre-bound callback per server, and Transfer
// threads a chunk through its hops with a single pooled state object
// instead of a closure per hop.
package mem

import (
	"fmt"
	"math"
	"sync"

	"github.com/gables-model/gables/internal/sim/engine"
	"github.com/gables-model/gables/internal/sim/trace"
)

// Server is a FIFO bandwidth resource. Requests queue and are serviced one
// at a time; a request's service time is computed when its service
// *starts*, so capacity changes (DVFS throttling) apply to queued work, not
// only to work admitted later.
type Server struct {
	name     string
	eng      *engine.Engine
	capacity float64 // units per second

	// buf is an index-based ring buffer: head is the next request to
	// service, count the number queued. Growing copies into a larger
	// ring; steady state allocates nothing.
	buf   []request
	head  int
	count int

	active     bool
	onServiced func() // pre-bound completion callback, one per server
	batch      []func()
	coalesce   bool

	// probe, when non-nil, observes enqueues and service windows. The
	// nil fast path is a single branch per site (the zero-overhead
	// tracing contract); probes are observe-only and cannot perturb the
	// schedule.
	probe trace.Probe

	busy   float64 // total busy seconds
	served float64 // total units served
}

type request struct {
	amount float64
	done   func()
}

// NewServer creates a server with the given capacity in units/second.
func NewServer(eng *engine.Engine, name string, capacity float64) (*Server, error) {
	if eng == nil {
		return nil, fmt.Errorf("mem: server %q: nil engine", name)
	}
	if capacity <= 0 || math.IsNaN(capacity) || math.IsInf(capacity, 0) {
		return nil, fmt.Errorf("mem: server %q: capacity must be positive and finite, got %v", name, capacity)
	}
	s := &Server{name: name, eng: eng, capacity: capacity}
	s.onServiced = s.serviced
	return s, nil
}

// Name returns the server's label.
func (s *Server) Name() string { return s.name }

// Now returns the engine's current simulated time (for observers that hold
// a server but not its engine, like an in-flight transfer).
func (s *Server) Now() engine.Time { return s.eng.Now() }

// SetProbe attaches (or, with nil, detaches) a trace probe observing this
// server's queue and service windows.
func (s *Server) SetProbe(p trace.Probe) { s.probe = p }

// Capacity returns the current service rate.
func (s *Server) Capacity() float64 { return s.capacity }

// SetCapacity changes the service rate (the DVFS governor's hook). The new
// rate applies to every service that starts afterwards, including requests
// already waiting in the queue; only the request being serviced right now
// keeps its original timing.
func (s *Server) SetCapacity(c float64) error {
	if c <= 0 || math.IsNaN(c) || math.IsInf(c, 0) {
		return fmt.Errorf("mem: server %q: capacity must be positive and finite, got %v", s.name, c)
	}
	s.capacity = c
	return nil
}

// SetCoalescing toggles completion coalescing. A coalescing server starts
// every request queued at service start as one batch and fires their
// completions together — in FIFO order, at the exact instant the last
// batched request would have completed on its own — scheduling one engine
// event per batch instead of one per request.
//
// Coalescing is only sound for *sink* servers: completions that do nothing
// but account (an IP's private compute server outside coordination runs).
// A completion that forwards work to another server must fire at its own
// instant, and a batch locks in the capacity at batch start, so coalescing
// must stay off wherever DVFS can retime queued work (thermal runs).
func (s *Server) SetCoalescing(on bool) { s.coalesce = on }

// Request enqueues amount units of service and calls done when it
// completes. Zero-amount requests complete after any queued work, with no
// service time of their own.
func (s *Server) Request(amount float64, done func()) error {
	if amount < 0 || math.IsNaN(amount) || math.IsInf(amount, 0) {
		//lint:ignore allocfree cold validation branch; chained transfers pre-validate every hop, so the steady state never takes it
		return fmt.Errorf("mem: server %q: amount must be non-negative and finite, got %v", s.name, amount)
	}
	if done == nil {
		//lint:ignore allocfree cold validation branch; chained transfers pre-validate every hop, so the steady state never takes it
		return fmt.Errorf("mem: server %q: nil completion", s.name)
	}
	s.push(request{amount: amount, done: done})
	if s.probe != nil {
		s.probe.Enqueued(s.name, float64(s.eng.Now()), amount, s.count)
	}
	if !s.active {
		s.startNext()
	}
	return nil
}

// push appends to the ring buffer, growing it when full.
func (s *Server) push(r request) {
	if s.count == len(s.buf) {
		s.grow()
	}
	i := s.head + s.count
	if i >= len(s.buf) {
		i -= len(s.buf)
	}
	s.buf[i] = r
	s.count++
}

// popFront removes and returns the queue head, clearing the vacated slot
// so completed closures do not linger in the ring.
func (s *Server) popFront() request {
	r := s.buf[s.head]
	s.buf[s.head] = request{}
	s.head++
	if s.head == len(s.buf) {
		s.head = 0
	}
	s.count--
	return r
}

// grow doubles the ring, unwrapping it so head returns to zero.
func (s *Server) grow() {
	n := len(s.buf) * 2
	if n == 0 {
		n = 8
	}
	next := make([]request, n)
	copied := copy(next, s.buf[s.head:])
	copy(next[copied:], s.buf[:s.head])
	s.buf = next
	s.head = 0
}

// startNext begins servicing the queue head, if any. A coalescing server
// drains the whole queue into one batch; the batch's single event fires at
// the same instant — computed by the same sequence of time additions, so
// bitwise identical — as the last request's individual completion would
// have.
func (s *Server) startNext() {
	if s.count == 0 {
		s.active = false
		return
	}
	s.active = true
	n := 1
	if s.coalesce {
		n = s.count
	}
	at := s.eng.Now()
	for i := 0; i < n; i++ {
		r := s.popFront()
		service := engine.Time(r.amount / s.capacity)
		if s.probe != nil {
			// Per-request windows, with or without coalescing: the
			// window arithmetic below is unchanged either way, so the
			// observed busy windows are identical too.
			s.probe.ServiceStart(s.name, float64(at), float64(service), r.amount, s.count)
		}
		at += service
		s.busy += float64(service)
		s.served += r.amount
		//lint:ignore allocfree batch is retained across batches and reset via [:0]; capacity stops growing once it has seen the largest batch the run coalesces
		s.batch = append(s.batch, r.done)
	}
	// Time and engine state are valid by construction; a scheduling
	// failure here is a programming error.
	if err := s.eng.Schedule(at, s.onServiced); err != nil {
		//lint:ignore allocfree unreachable programming-error path; boxing on the way to a panic does not touch the steady state
		panic(fmt.Sprintf("mem: server %q: %v", s.name, err))
	}
}

// serviced fires the completed batch's callbacks in FIFO order, then
// services whatever queued up in the meantime. The server stays active
// while callbacks run, so re-entrant Requests (a cache completion launching
// the next cached chunk) enqueue instead of recursing into startNext.
//
//gables:allocfree
func (s *Server) serviced() {
	for i := 0; i < len(s.batch); i++ {
		done := s.batch[i]
		s.batch[i] = nil
		done()
	}
	s.batch = s.batch[:0]
	s.startNext()
}

// Served returns the total units served so far.
func (s *Server) Served() float64 { return s.served }

// BusyTime returns the total seconds the server has been busy.
func (s *Server) BusyTime() float64 { return s.busy }

// Utilization returns busy time over elapsed time at the horizon, in
// [0, ~1] (slightly above 1 is possible when admitted work extends past the
// horizon).
func (s *Server) Utilization(horizon engine.Time) float64 {
	if horizon <= 0 {
		return 0
	}
	return s.busy / float64(horizon)
}

// Reset clears accounting for back-to-back measurement runs on one system.
// It must only be called while the server is idle; resetting with queued
// work would orphan the queue's completions.
func (s *Server) Reset() {
	s.busy = 0
	s.served = 0
}

// Hop is one stage of a transfer path: a server and the amount of service
// the transfer consumes there. Amounts can differ per hop — a DRAM
// controller may charge writes more than reads, and host-staged transfers
// cross the memory twice.
type Hop struct {
	Server *Server
	Amount float64
}

// transfer is the reusable state of one in-flight Transfer: the hop cursor
// plus a single pre-bound step callback shared by every hop, so an N-hop
// chunk costs O(1) allocations (amortized zero via the pool) instead of a
// closure per hop.
type transfer struct {
	hops []Hop
	i    int
	done func()
	step func() // pre-bound t.advance, created once per pooled object

	// probe, when non-nil, observes the chunk's per-hop lifecycle on
	// behalf of the owning IP's pipeline slot (ip/slot label the track).
	probe trace.Probe
	ip    string
	slot  int
}

// transferPool recycles transfer states. step is bound on first use (not
// in New: a method value referring back to the pool would be an
// initialization cycle) and survives round-trips through the pool.
var transferPool = sync.Pool{New: func() any { return new(transfer) }}

// start requests the current hop's service with the shared step callback.
// Request errors are validated by Transfer before the chain starts; a
// failure here is a programming error surfaced by the panic rather than a
// silently dropped chunk.
func (t *transfer) start() {
	h := t.hops[t.i]
	if t.probe != nil {
		t.probe.HopStart(t.ip, t.slot, t.i, h.Server.Name(), float64(h.Server.Now()), h.Amount)
	}
	if err := h.Server.Request(h.Amount, t.step); err != nil {
		//lint:ignore allocfree unreachable programming-error path; boxing on the way to a panic does not touch the steady state
		panic(fmt.Sprintf("mem: transfer hop %d: %v", t.i, err))
	}
}

// advance moves to the next hop, or finishes. The state object is returned
// to the pool *before* done runs so a completion that immediately starts
// another transfer can reuse it.
//
//gables:allocfree
func (t *transfer) advance() {
	if t.probe != nil {
		h := t.hops[t.i]
		t.probe.HopDone(t.ip, t.slot, t.i, h.Server.Name(), float64(h.Server.Now()))
	}
	t.i++
	if t.i < len(t.hops) {
		t.start()
		return
	}
	done := t.done
	t.hops, t.done = nil, nil
	t.probe, t.ip, t.slot = nil, "", 0
	transferPool.Put(t)
	done()
}

// Transfer moves a request through the hops in order — each hop's service
// begins when the previous hop completes — and calls done at the end.
// Different transfers overlap across hops, so a chain of servers behaves
// like a pipeline whose throughput is set by its busiest stage.
//
// The hops slice is borrowed until done fires; callers reusing a backing
// array (the IP pipeline's per-slot scratch) must not overwrite it before
// then.
func Transfer(hops []Hop, done func()) error {
	return TransferTraced(hops, done, nil, "", 0)
}

// TransferTraced is Transfer with an optional observe-only probe: each
// hop's start (request issued) and finish (service complete) is emitted on
// the (ip, slot) track. A nil probe is exactly Transfer — the hot path
// pays one branch per hop transition and nothing else.
func TransferTraced(hops []Hop, done func(), p trace.Probe, ip string, slot int) error {
	if done == nil {
		return fmt.Errorf("mem: transfer: nil completion")
	}
	if len(hops) == 0 {
		return fmt.Errorf("mem: transfer: no hops")
	}
	for i, h := range hops {
		if h.Server == nil {
			return fmt.Errorf("mem: transfer: hop %d has nil server", i)
		}
		// Validate every amount before starting so no partial transfer
		// runs.
		if h.Amount < 0 || math.IsNaN(h.Amount) || math.IsInf(h.Amount, 0) {
			return fmt.Errorf("mem: transfer: hop %d amount %v invalid", i, h.Amount)
		}
	}
	t := transferPool.Get().(*transfer)
	if t.step == nil {
		t.step = t.advance
	}
	t.hops, t.i, t.done = hops, 0, done
	t.probe, t.ip, t.slot = p, ip, slot
	t.start()
	return nil
}

// Cache is a streaming cache model for the Algorithm 1 micro-benchmark
// pattern: a sequential scan over a working set of W bytes, repeated for
// several trials. Under LRU, a scan larger than the cache thrashes — every
// access misses on every trial — while a scan that fits is all hits after
// the first (warmup) trial. This cliff is the mechanism that lets the
// §IV method find an IP's DRAM bandwidth (large W) and cache bandwidth
// (small W) with the same kernel.
type Cache struct {
	// Size is the capacity in bytes.
	Size float64
	// Server models hit bandwidth: a private resource, uncontended by
	// other IPs.
	Server *Server
}

// NewCache builds a cache with the given size and hit bandwidth.
func NewCache(eng *engine.Engine, name string, size, hitBandwidth float64) (*Cache, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mem: cache %q: size must be positive, got %v", name, size)
	}
	srv, err := NewServer(eng, name, hitBandwidth)
	if err != nil {
		return nil, err
	}
	return &Cache{Size: size, Server: srv}, nil
}

// Hits reports whether a streaming working set of w bytes is served from
// the cache on trial number `trial` (0-based): only when it fits and the
// warmup trial has passed.
func (c *Cache) Hits(w float64, trial int) bool {
	return w <= c.Size && trial > 0
}
