package mem

import (
	"math"
	"testing"

	"github.com/gables-model/gables/internal/sim/engine"
)

func server(t *testing.T, eng *engine.Engine, name string, cap float64) *Server {
	t.Helper()
	s, err := NewServer(eng, name, cap)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestServerValidation(t *testing.T) {
	eng := engine.New()
	if _, err := NewServer(nil, "x", 1); err == nil {
		t.Error("nil engine must be rejected")
	}
	if _, err := NewServer(eng, "x", 0); err == nil {
		t.Error("zero capacity must be rejected")
	}
	if _, err := NewServer(eng, "x", math.Inf(1)); err == nil {
		t.Error("infinite capacity must be rejected")
	}
	s := server(t, eng, "x", 10)
	if err := s.Request(-1, func() {}); err == nil {
		t.Error("negative amount must be rejected")
	}
	if err := s.Request(1, nil); err == nil {
		t.Error("nil completion must be rejected")
	}
	if err := s.SetCapacity(-1); err == nil {
		t.Error("negative capacity must be rejected")
	}
}

func TestServerServiceTime(t *testing.T) {
	eng := engine.New()
	s := server(t, eng, "dram", 10e9) // 10 GB/s
	var doneAt engine.Time
	if err := s.Request(1e6, func() { doneAt = eng.Now() }); err != nil { // 1 MB
		t.Fatal(err)
	}
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	want := engine.Time(1e6 / 10e9)
	if math.Abs(float64(doneAt-want)) > 1e-15 {
		t.Errorf("done at %v, want %v", doneAt, want)
	}
	if s.Served() != 1e6 {
		t.Errorf("served = %v", s.Served())
	}
}

func TestServerFIFOQueueing(t *testing.T) {
	eng := engine.New()
	s := server(t, eng, "link", 1e9)
	var first, second engine.Time
	if err := s.Request(1e6, func() { first = eng.Now() }); err != nil {
		t.Fatal(err)
	}
	if err := s.Request(1e6, func() { second = eng.Now() }); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(first)-1e-3) > 1e-12 {
		t.Errorf("first done at %v, want 1ms", first)
	}
	if math.Abs(float64(second)-2e-3) > 1e-12 {
		t.Errorf("second done at %v, want 2ms (queued)", second)
	}
	if u := s.Utilization(second); math.Abs(u-1) > 1e-9 {
		t.Errorf("utilization = %v, want 1", u)
	}
}

func TestContentionHalvesThroughput(t *testing.T) {
	// Two producers interleaving chunks through one server each get
	// half its capacity: after both push 10 MB, 20 MB total has moved
	// at 10 GB/s → 2 ms, i.e., each saw 5 GB/s.
	eng := engine.New()
	s := server(t, eng, "dram", 10e9)
	const chunk = 1e6
	var finishA, finishB engine.Time
	var pushed [2]int
	var push func(id int, finish *engine.Time)
	push = func(id int, finish *engine.Time) {
		if pushed[id] == 10 {
			*finish = eng.Now()
			return
		}
		pushed[id]++
		if err := s.Request(chunk, func() { push(id, finish) }); err != nil {
			t.Error(err)
		}
	}
	push(0, &finishA)
	push(1, &finishB)
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	elapsed := float64(max(finishA, finishB))
	if math.Abs(elapsed-2e-3) > 1e-9 {
		t.Errorf("elapsed = %v, want 2ms", elapsed)
	}
	perProducer := 10 * chunk / elapsed
	if math.Abs(perProducer-5e9) > 1e6 {
		t.Errorf("per-producer rate = %v, want 5 GB/s", perProducer)
	}
}

func TestSetCapacity(t *testing.T) {
	eng := engine.New()
	s := server(t, eng, "cpu", 10)
	if err := s.SetCapacity(5); err != nil {
		t.Fatal(err)
	}
	var doneAt engine.Time
	if err := s.Request(10, func() { doneAt = eng.Now() }); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(doneAt)-2) > 1e-12 {
		t.Errorf("done at %v, want 2 (10 units at capacity 5)", doneAt)
	}
}

func TestZeroAmountRequest(t *testing.T) {
	eng := engine.New()
	s := server(t, eng, "x", 10)
	called := false
	if err := s.Request(0, func() { called = true }); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Error("zero-amount request must still complete")
	}
	if eng.Now() != 0 {
		t.Errorf("zero request must take no time, now = %v", eng.Now())
	}
}

func TestReset(t *testing.T) {
	eng := engine.New()
	s := server(t, eng, "x", 10)
	if err := s.Request(100, func() {}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	s.Reset()
	if s.Served() != 0 || s.BusyTime() != 0 {
		t.Error("reset must clear accounting")
	}
	// After reset the server is immediately available.
	var doneAt engine.Time
	start := eng.Now()
	if err := s.Request(10, func() { doneAt = eng.Now() }); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(doneAt-start)-1) > 1e-12 {
		t.Errorf("post-reset service took %v, want 1", doneAt-start)
	}
}

// TestRingWraparound cycles far more requests through the server than the
// ring's initial capacity, refilling from completions so head and tail
// wrap repeatedly, and asserts strict FIFO completion order and exact
// service timing throughout.
func TestRingWraparound(t *testing.T) {
	eng := engine.New()
	s := server(t, eng, "x", 10)
	const total = 100
	var order []int
	issued := 0
	var issue func()
	issue = func() {
		id := issued
		issued++
		if err := s.Request(1, func() {
			order = append(order, id)
			// Keep 3 in flight so the queue stays partially full while
			// the head advances — the wraparound regime.
			if issued < total {
				issue()
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		issue()
	}
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(order) != total {
		t.Fatalf("completed %d requests, want %d", len(order), total)
	}
	for i, id := range order {
		if id != i {
			t.Fatalf("completion order[%d] = %d, want FIFO", i, id)
		}
	}
	// 100 requests of 1 unit at 10 units/s, serviced back to back.
	if math.Abs(float64(eng.Now())-10) > 1e-9 {
		t.Errorf("drained at t=%v, want 10", eng.Now())
	}
	if s.Served() != total {
		t.Errorf("served = %v, want %d", s.Served(), total)
	}
}

// TestRingGrowWithWrappedHead floods a server whose ring head has already
// advanced (so growing must unwrap the buffer) and checks nothing is lost
// or reordered.
func TestRingGrowWithWrappedHead(t *testing.T) {
	eng := engine.New()
	s := server(t, eng, "x", 1)
	var order []int
	record := func(id int) func() { return func() { order = append(order, id) } }
	// Advance the head a few slots.
	for i := 0; i < 5; i++ {
		if err := s.Request(1, record(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.RunUntil(3.5); err != nil { // 3 of 5 completed, head=4-ish
		t.Fatal(err)
	}
	// Flood past any initial capacity while requests are still queued:
	// the ring must grow with head > 0 and stay FIFO.
	for i := 5; i < 40; i++ {
		if err := s.Request(1, record(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(order) != 40 {
		t.Fatalf("completed %d, want 40", len(order))
	}
	for i, id := range order {
		if id != i {
			t.Fatalf("order[%d] = %d, want FIFO across the grow", i, id)
		}
	}
}

// TestInterleavedRequestSetCapacityReset drives the documented contract
// through the ring buffer: capacity changes apply to every service that
// starts afterwards (queued work included, the in-flight request keeps its
// timing), and an idle Reset clears accounting without corrupting the
// queue state for the next run.
func TestInterleavedRequestSetCapacityReset(t *testing.T) {
	eng := engine.New()
	s := server(t, eng, "dvfs", 10)
	var times []engine.Time
	mark := func() { times = append(times, eng.Now()) }
	// Three 10-unit requests at capacity 10: services would end at 1, 2, 3.
	for i := 0; i < 3; i++ {
		if err := s.Request(10, mark); err != nil {
			t.Fatal(err)
		}
	}
	// Halve the rate while the first request is being serviced: it keeps
	// its timing (ends at 1), the queued two take 2s each (end at 3, 5).
	if _, err := eng.RunUntil(0.5); err != nil {
		t.Fatal(err)
	}
	if err := s.SetCapacity(5); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 3, 5}
	if len(times) != len(want) {
		t.Fatalf("completions = %v, want %v", times, want)
	}
	for i := range want {
		if math.Abs(float64(times[i])-want[i]) > 1e-12 {
			t.Fatalf("completions = %v, want %v", times, want)
		}
	}
	if math.Abs(s.BusyTime()-5) > 1e-12 {
		t.Errorf("busy = %v, want 5", s.BusyTime())
	}

	// Idle now: Reset and immediately reuse through the same ring.
	s.Reset()
	if s.Served() != 0 || s.BusyTime() != 0 {
		t.Fatal("reset must clear accounting")
	}
	var doneAt engine.Time
	start := eng.Now()
	if err := s.Request(5, func() { doneAt = eng.Now() }); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(doneAt-start)-1) > 1e-12 {
		t.Errorf("post-reset service took %v, want 1 (5 units at capacity 5)", doneAt-start)
	}
}

// TestCoalescingMatchesUncoalesced runs the same queued workload through a
// coalescing and a plain server and asserts identical completion order,
// identical final completion instants (bitwise, by construction), and
// identical accounting.
func TestCoalescingMatchesUncoalesced(t *testing.T) {
	run := func(coalesce bool) (order []int, last engine.Time, busy, served float64, events int) {
		eng := engine.New()
		s := server(t, eng, "sink", 7)
		s.SetCoalescing(coalesce)
		issued := 0
		var issue func()
		issue = func() {
			id := issued
			issued++
			if err := s.Request(float64(1+id%3), func() {
				order = append(order, id)
				last = eng.Now()
				if issued < 50 {
					issue()
				}
			}); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 4; i++ {
			issue()
		}
		n, err := eng.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		return order, last, s.BusyTime(), s.Served(), n
	}
	po, pl, pb, ps, pe := run(false)
	co, cl, cb, cs, ce := run(true)
	if len(po) != len(co) {
		t.Fatalf("completions: %d plain vs %d coalesced", len(po), len(co))
	}
	for i := range po {
		if po[i] != co[i] {
			t.Fatalf("order diverges at %d: %d vs %d", i, po[i], co[i])
		}
	}
	if pl != cl {
		t.Errorf("final completion instant %v (plain) vs %v (coalesced): must be bitwise equal", pl, cl)
	}
	if pb != cb || ps != cs {
		t.Errorf("accounting differs: busy %v/%v served %v/%v", pb, cb, ps, cs)
	}
	if ce >= pe {
		t.Errorf("coalescing processed %d events, plain %d: batching must schedule fewer", ce, pe)
	}
}

func TestTransferPipeline(t *testing.T) {
	// Chain of two servers: a 2 GB/s link then a 10 GB/s DRAM. One
	// 2 MB transfer takes 1 ms + 0.2 ms.
	eng := engine.New()
	link := server(t, eng, "link", 2e9)
	dram := server(t, eng, "dram", 10e9)
	var doneAt engine.Time
	err := Transfer([]Hop{{link, 2e6}, {dram, 2e6}}, func() { doneAt = eng.Now() })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	want := 2e6/2e9 + 2e6/10e9
	if math.Abs(float64(doneAt)-want) > 1e-12 {
		t.Errorf("done at %v, want %v", doneAt, want)
	}
}

func TestTransferPipelinesOverlap(t *testing.T) {
	// Many chunks through link→dram: steady-state throughput equals the
	// slower stage (the link), not the sum of stage times.
	eng := engine.New()
	link := server(t, eng, "link", 2e9)
	dram := server(t, eng, "dram", 10e9)
	const chunk, n = 1e6, 20
	var finished int
	var finish engine.Time
	for i := 0; i < n; i++ {
		err := Transfer([]Hop{{link, chunk}, {dram, chunk}}, func() {
			finished++
			if finished == n {
				finish = eng.Now()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	throughput := n * chunk / float64(finish)
	// Expect ≈ 2 GB/s (link bound), certainly well above the serial
	// 1/(1/2+1/10) = 1.67 GB/s.
	if throughput < 1.9e9 {
		t.Errorf("pipelined throughput = %v, want ~2 GB/s", throughput)
	}
}

func TestTransferValidation(t *testing.T) {
	eng := engine.New()
	s := server(t, eng, "x", 1)
	if err := Transfer(nil, func() {}); err == nil {
		t.Error("empty hops must be rejected")
	}
	if err := Transfer([]Hop{{s, 1}}, nil); err == nil {
		t.Error("nil done must be rejected")
	}
	if err := Transfer([]Hop{{nil, 1}}, func() {}); err == nil {
		t.Error("nil server must be rejected")
	}
	if err := Transfer([]Hop{{s, math.NaN()}}, func() {}); err == nil {
		t.Error("NaN amount must be rejected")
	}
}

func TestCache(t *testing.T) {
	eng := engine.New()
	c, err := NewCache(eng, "l2", 1e6, 100e9)
	if err != nil {
		t.Fatal(err)
	}
	if c.Hits(2e6, 5) {
		t.Error("working set larger than cache must always miss")
	}
	if c.Hits(0.5e6, 0) {
		t.Error("first trial is warmup: must miss")
	}
	if !c.Hits(0.5e6, 1) {
		t.Error("fitting working set must hit after warmup")
	}
	if _, err := NewCache(eng, "bad", 0, 1); err == nil {
		t.Error("zero size must be rejected")
	}
	if _, err := NewCache(eng, "bad", 1, 0); err == nil {
		t.Error("zero bandwidth must be rejected")
	}
}
