package mem

import (
	"testing"

	"github.com/gables-model/gables/internal/sim/engine"
)

// BenchmarkServerThroughput measures the cost of one serviced request on a
// busy server: the self-refilling pattern keeps the ring buffer occupied.
func BenchmarkServerThroughput(b *testing.B) {
	eng := engine.New()
	s, err := NewServer(eng, "dram", 1e12)
	if err != nil {
		b.Fatal(err)
	}
	remaining := b.N
	var refill func()
	refill = func() {
		remaining--
		if remaining > 0 {
			if err := s.Request(1e6, refill); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := s.Request(1e6, refill); err != nil {
		b.Fatal(err)
	}
	if _, err := eng.Run(0); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTransferPipeline measures a three-hop chunk transfer
// (link → fabric → dram), the simulator's hot path, end to end.
func BenchmarkTransferPipeline(b *testing.B) {
	eng := engine.New()
	link, err := NewServer(eng, "link", 20e9)
	if err != nil {
		b.Fatal(err)
	}
	fabric, err := NewServer(eng, "fabric", 28e9)
	if err != nil {
		b.Fatal(err)
	}
	dram, err := NewServer(eng, "dram", 30e9)
	if err != nil {
		b.Fatal(err)
	}
	hops := []Hop{{link, 256 << 10}, {fabric, 256 << 10}, {dram, 256 << 10}}
	remaining := b.N
	var refill func()
	refill = func() {
		remaining--
		if remaining > 0 {
			if err := Transfer(hops, refill); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := Transfer(hops, refill); err != nil {
		b.Fatal(err)
	}
	if _, err := eng.Run(0); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkServerCoalesced measures the batched completion path a sink
// compute server takes: many requests queued at once complete as one
// engine event per busy period.
func BenchmarkServerCoalesced(b *testing.B) {
	eng := engine.New()
	s, err := NewServer(eng, "compute", 1e12)
	if err != nil {
		b.Fatal(err)
	}
	s.SetCoalescing(true)
	done := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	const batch = 64
	for i := 0; i < b.N; i += batch {
		n := batch
		if b.N-i < n {
			n = b.N - i
		}
		for j := 0; j < n; j++ {
			if err := s.Request(1e3, done); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := eng.Run(0); err != nil {
			b.Fatal(err)
		}
	}
}
