package engine

import (
	"math"
	"testing"
)

func TestOrdering(t *testing.T) {
	e := New()
	var order []int
	for i, at := range []Time{3e-9, 1e-9, 2e-9} {
		i := i
		if err := e.Schedule(at, func() { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	n, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("processed %d events, want 3", n)
	}
	want := []int{1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 3e-9 {
		t.Errorf("final time = %v, want 3e-9", e.Now())
	}
}

func TestFIFOTies(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		if err := e.Schedule(1e-9, func() { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("tie order = %v, want FIFO", order)
		}
	}
}

func TestScheduleValidation(t *testing.T) {
	e := New()
	if err := e.Schedule(1, func() {}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if err := e.Schedule(0.5, func() {}); err == nil {
		t.Error("scheduling in the past must be rejected")
	}
	if err := e.Schedule(2, nil); err == nil {
		t.Error("nil fn must be rejected")
	}
	if err := e.Schedule(Time(math.NaN()), func() {}); err == nil {
		t.Error("NaN time must be rejected")
	}
	if err := e.After(-1, func() {}); err == nil {
		t.Error("negative delay must be rejected")
	}
}

func TestCascadingEvents(t *testing.T) {
	e := New()
	count := 0
	var step func()
	step = func() {
		count++
		if count < 5 {
			if err := e.After(1e-9, step); err != nil {
				t.Error(err)
			}
		}
	}
	if err := e.Schedule(0, step); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	if e.Now() != 4e-9 {
		t.Errorf("now = %v, want 4e-9", e.Now())
	}
}

func TestRunLimit(t *testing.T) {
	e := New()
	var loop func()
	loop = func() {
		if err := e.After(1e-9, loop); err != nil {
			t.Error(err)
		}
	}
	if err := e.Schedule(0, loop); err != nil {
		t.Fatal(err)
	}
	n, err := e.Run(100)
	if err == nil {
		t.Error("livelock must exceed the limit")
	}
	if n != 100 {
		t.Errorf("processed = %d, want 100", n)
	}
}

// TestSameInstantFastPathOrdering pins the interaction between the heap
// and the same-instant FIFO: events pre-scheduled for an instant run
// before events scheduled *at* that instant, which run before anything
// later, all in scheduling order.
func TestSameInstantFastPathOrdering(t *testing.T) {
	e := New()
	var order []string
	note := func(s string) func() { return func() { order = append(order, s) } }
	// Pre-scheduled heap events at t=1 and t=2.
	if err := e.Schedule(1, func() {
		order = append(order, "a")
		// Scheduled while now == 1: FIFO fast path, must run after the
		// pre-scheduled "b" at the same instant but before t=2.
		if err := e.Schedule(1, func() {
			order = append(order, "c")
			if err := e.Schedule(1, note("d")); err != nil { // nested same-instant
				t.Error(err)
			}
		}); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Schedule(1, note("b")); err != nil {
		t.Fatal(err)
	}
	if err := e.Schedule(2, note("e")); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	want := "abcde"
	got := ""
	for _, s := range order {
		got += s
	}
	if got != want {
		t.Errorf("order = %q, want %q", got, want)
	}
}

// TestRunUntilDrainsSameInstant: RunUntil must also process fast-path
// events at the deadline instant itself.
func TestRunUntilDrainsSameInstant(t *testing.T) {
	e := New()
	fired := 0
	if err := e.Schedule(1, func() {
		fired++
		if err := e.Schedule(1, func() { fired++ }); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Schedule(3, func() { fired++ }); err != nil {
		t.Fatal(err)
	}
	n, err := e.RunUntil(1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || fired != 2 {
		t.Errorf("processed %d (fired %d), want 2: same-instant follow-up must run", n, fired)
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1", e.Pending())
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	fired := 0
	for _, at := range []Time{1, 2, 3, 4} {
		if err := e.Schedule(at, func() { fired++ }); err != nil {
			t.Fatal(err)
		}
	}
	n, err := e.RunUntil(2.5)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || fired != 2 {
		t.Errorf("processed %d (fired %d), want 2", n, fired)
	}
	if e.Now() != 2.5 {
		t.Errorf("now = %v, want 2.5", e.Now())
	}
	if e.Pending() != 2 {
		t.Errorf("pending = %d, want 2", e.Pending())
	}
	if _, err := e.RunUntil(1); err == nil {
		t.Error("deadline in the past must be rejected")
	}
	// Drain the rest.
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if fired != 4 {
		t.Errorf("fired = %d, want 4", fired)
	}
}
