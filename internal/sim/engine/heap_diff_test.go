package engine

import (
	"container/heap"
	"math/rand"
	"testing"
)

// This file drives the engine's inlined 4-ary heap and a reference
// container/heap implementation (the pre-optimization event queue,
// preserved here verbatim) through identical randomized schedules and
// asserts identical pop order — including same-timestamp ties, which is
// where the determinism contract actually bites.

// refEvent / refQueue are the reference binary-heap event queue.
type refEvent struct {
	at  Time
	seq uint64
	fn  func()
}

type refQueue []*refEvent

func (q refQueue) Len() int { return len(q) }
func (q refQueue) Less(i, j int) bool {
	// Bitwise comparison on purpose: the reference queue must use the
	// same exact tie-break as the engine under test.
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q refQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *refQueue) Push(x any)   { *q = append(*q, x.(*refEvent)) }
func (q *refQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// refEngine reimplements Schedule/Run on the reference queue.
type refEngine struct {
	now   Time
	seq   uint64
	queue refQueue
}

func (e *refEngine) Now() Time { return e.now }

func (e *refEngine) Schedule(at Time, fn func()) error {
	e.seq++
	heap.Push(&e.queue, &refEvent{at: at, seq: e.seq, fn: fn})
	return nil
}

func (e *refEngine) run() int {
	processed := 0
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*refEvent)
		e.now = ev.at
		ev.fn()
		processed++
	}
	return processed
}

// scheduler abstracts the two implementations for the shared driver.
type scheduler interface {
	Now() Time
	Schedule(at Time, fn func()) error
}

// scriptEvent is one node of a pre-generated schedule: roots carry an
// absolute time, children a delay relative to their parent's execution.
// Delays are drawn from a tiny discrete set so timestamps collide
// constantly and the (at, seq) tie-break decides most of the order.
type scriptEvent struct {
	at       Time // roots only
	delay    Time // children only
	children []int
}

// genScript builds a deterministic random schedule of n events.
func genScript(seed int64, n, roots int) []scriptEvent {
	rng := rand.New(rand.NewSource(seed))
	delays := []Time{0, 0, 1e-9, 2e-9, 5e-9} // zero twice: bias toward ties
	script := make([]scriptEvent, n)
	for i := 0; i < roots; i++ {
		script[i].at = delays[rng.Intn(len(delays))]
	}
	for i := roots; i < n; i++ {
		parent := rng.Intn(i) // any earlier event; roots reachable from id 0
		script[i].delay = delays[rng.Intn(len(delays))]
		script[parent].children = append(script[parent].children, i)
	}
	return script
}

// play schedules the script's roots on s and returns the execution order.
func play(t *testing.T, s scheduler, script []scriptEvent, roots int) []int {
	t.Helper()
	var order []int
	var fire func(id int) func()
	fire = func(id int) func() {
		return func() {
			order = append(order, id)
			for _, child := range script[id].children {
				if err := s.Schedule(s.Now()+script[child].delay, fire(child)); err != nil {
					t.Errorf("schedule child %d: %v", child, err)
				}
			}
		}
	}
	for i := 0; i < roots; i++ {
		if err := s.Schedule(script[i].at, fire(i)); err != nil {
			t.Fatalf("schedule root %d: %v", i, err)
		}
	}
	return order
}

func TestHeapMatchesReferenceDifferential(t *testing.T) {
	const n, roots = 600, 25
	for seed := int64(1); seed <= 20; seed++ {
		script := genScript(seed, n, roots)

		eng := New()
		gotOrder := play(t, eng, script, roots)
		processed, err := eng.Run(0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		gotOrder = gotOrder[:len(gotOrder):len(gotOrder)]

		ref := &refEngine{}
		wantOrder := play(t, ref, script, roots)
		ref.run()

		if processed != n {
			t.Fatalf("seed %d: engine processed %d events, want %d", seed, processed, n)
		}
		if len(gotOrder) != len(wantOrder) {
			t.Fatalf("seed %d: engine ran %d events, reference %d", seed, len(gotOrder), len(wantOrder))
		}
		for i := range wantOrder {
			if gotOrder[i] != wantOrder[i] {
				t.Fatalf("seed %d: pop order diverges at position %d: engine %d, reference %d",
					seed, i, gotOrder[i], wantOrder[i])
			}
		}
		if eng.Now() != ref.Now() {
			t.Errorf("seed %d: final time %v vs reference %v", seed, eng.Now(), ref.Now())
		}
		if eng.Pending() != 0 {
			t.Errorf("seed %d: %d events left pending", seed, eng.Pending())
		}
	}
}

// TestHeapReusesBacking pins the allocation contract: after a first run
// has sized the heap, subsequent identically-shaped runs on the same
// engine allocate nothing in the scheduler itself.
func TestHeapReusesBacking(t *testing.T) {
	eng := New()
	fn := func() {}
	load := func() {
		for i := 0; i < 256; i++ {
			if err := eng.Schedule(eng.Now()+Time(1+i%7)*1e-9, fn); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := eng.Run(0); err != nil {
			t.Fatal(err)
		}
	}
	load() // size the backing arrays
	allocs := testing.AllocsPerRun(10, load)
	if allocs > 0 {
		t.Errorf("steady-state run allocated %.1f times per run, want 0", allocs)
	}
}
