package engine

import "testing"

// BenchmarkScheduleRun is the engine's core cost: schedule a batch of
// future events and drain them. ns/op and allocs/op are per event.
func BenchmarkScheduleRun(b *testing.B) {
	e := New()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Interleave two time streams so pushes exercise real sifting
		// rather than append-only heap order.
		var at Time
		if i%2 == 0 {
			at = e.Now() + 1e-9
		} else {
			at = e.Now() + 2e-9
		}
		if err := e.Schedule(at, fn); err != nil {
			b.Fatal(err)
		}
		if i%64 == 63 {
			if _, err := e.Run(0); err != nil {
				b.Fatal(err)
			}
		}
	}
	if _, err := e.Run(0); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkCascade measures the self-rescheduling pattern every bandwidth
// server uses: each event schedules the next one.
func BenchmarkCascade(b *testing.B) {
	e := New()
	remaining := b.N
	var step func()
	step = func() {
		remaining--
		if remaining > 0 {
			if err := e.After(1e-9, step); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Schedule(0, step); err != nil {
		b.Fatal(err)
	}
	if _, err := e.Run(0); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSameInstantFIFO measures the same-timestamp fast path: each
// event schedules a follow-up at the exact current instant.
func BenchmarkSameInstantFIFO(b *testing.B) {
	e := New()
	remaining := b.N
	var step func()
	step = func() {
		remaining--
		if remaining > 0 {
			if err := e.Schedule(e.Now(), step); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Schedule(0, step); err != nil {
		b.Fatal(err)
	}
	if _, err := e.Run(0); err != nil {
		b.Fatal(err)
	}
}
