package engine

import (
	"errors"
	"testing"

	"github.com/gables-model/gables/internal/sim/trace"
)

// countProbe records engine dispatches; the other Probe methods are
// no-ops (the engine only emits EventDispatched).
type countProbe struct {
	dispatched int
	times      []float64
}

func (p *countProbe) EventDispatched(at float64, pending int) {
	p.dispatched++
	p.times = append(p.times, at)
}
func (p *countProbe) Enqueued(string, float64, float64, int)                          {}
func (p *countProbe) ServiceStart(string, float64, float64, float64, int)             {}
func (p *countProbe) HopStart(string, int, int, string, float64, float64)             {}
func (p *countProbe) HopDone(string, int, int, string, float64)                       {}
func (p *countProbe) ChunkStart(string, int, int, float64, float64, float64, float64) {}
func (p *countProbe) ChunkArrived(string, int, int, float64)                          {}
func (p *countProbe) ChunkDone(string, float64, float64)                              {}
func (p *countProbe) ThrottleTrip(string, float64, float64)                           {}
func (p *countProbe) ThrottleClear(string, float64, float64)                          {}
func (p *countProbe) ThermalSample(string, float64, float64)                          {}

var _ trace.Probe = (*countProbe)(nil)

// noopProbe is the cheapest possible probe, for the allocation assertion.
type noopProbe struct{}

func (noopProbe) EventDispatched(float64, int)                                    {}
func (noopProbe) Enqueued(string, float64, float64, int)                          {}
func (noopProbe) ServiceStart(string, float64, float64, float64, int)             {}
func (noopProbe) HopStart(string, int, int, string, float64, float64)             {}
func (noopProbe) HopDone(string, int, int, string, float64)                       {}
func (noopProbe) ChunkStart(string, int, int, float64, float64, float64, float64) {}
func (noopProbe) ChunkArrived(string, int, int, float64)                          {}
func (noopProbe) ChunkDone(string, float64, float64)                              {}
func (noopProbe) ThrottleTrip(string, float64, float64)                           {}
func (noopProbe) ThrottleClear(string, float64, float64)                          {}
func (noopProbe) ThermalSample(string, float64, float64)                          {}

// TestProbeObservesWithoutPerturbing replays the tie-heavy differential
// schedules with and without a probe attached and asserts identical
// execution order — the zero-overhead contract at the engine level — and
// that the probe saw every dispatch in time order.
func TestProbeObservesWithoutPerturbing(t *testing.T) {
	const n, roots = 600, 25
	for seed := int64(1); seed <= 10; seed++ {
		script := genScript(seed, n, roots)

		plain := New()
		wantOrder := play(t, plain, script, roots)
		if _, err := plain.Run(0); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		probed := New()
		p := &countProbe{}
		probed.SetProbe(p)
		gotOrder := play(t, probed, script, roots)
		if _, err := probed.Run(0); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		if len(gotOrder) != len(wantOrder) {
			t.Fatalf("seed %d: probed engine ran %d events, plain %d", seed, len(gotOrder), len(wantOrder))
		}
		for i := range wantOrder {
			if gotOrder[i] != wantOrder[i] {
				t.Fatalf("seed %d: order diverges at %d with a probe attached", seed, i)
			}
		}
		if p.dispatched != n {
			t.Errorf("seed %d: probe saw %d dispatches, want %d", seed, p.dispatched, n)
		}
		for i := 1; i < len(p.times); i++ {
			if p.times[i] < p.times[i-1] {
				t.Fatalf("seed %d: probe timestamps went backwards at %d", seed, i)
			}
		}
		if probed.Now() != plain.Now() {
			t.Errorf("seed %d: final time differs with a probe attached", seed)
		}
	}
}

// TestProbeBranchStaysZeroAlloc pins the hot-path cost of the tracing
// layer: the steady-state scheduler allocates nothing with a nil probe
// (the shipped configuration) and nothing extra with a stateless one.
func TestProbeBranchStaysZeroAlloc(t *testing.T) {
	for _, tc := range []struct {
		name  string
		probe trace.Probe
	}{
		{"nil probe", nil},
		{"noop probe", noopProbe{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			eng := New()
			eng.SetProbe(tc.probe)
			fn := func() {}
			load := func() {
				for i := 0; i < 256; i++ {
					if err := eng.Schedule(eng.Now()+Time(1+i%7)*1e-9, fn); err != nil {
						t.Fatal(err)
					}
				}
				if _, err := eng.Run(0); err != nil {
					t.Fatal(err)
				}
			}
			load() // size the backing arrays
			if allocs := testing.AllocsPerRun(10, load); allocs > 0 {
				t.Errorf("steady-state run allocated %.1f times per run, want 0", allocs)
			}
		})
	}
}

// TestRunLimitTyped pins the livelock guard's typed error: callers must be
// able to extract the limit, the processed count, and the simulated time.
func TestRunLimitTyped(t *testing.T) {
	eng := New()
	var reschedule func()
	reschedule = func() {
		if err := eng.After(1e-9, reschedule); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Schedule(0, reschedule); err != nil {
		t.Fatal(err)
	}
	n, err := eng.Run(100)
	if err == nil {
		t.Fatal("livelock must trip the limit")
	}
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("error %T must be a *LimitError", err)
	}
	if le.Limit != 100 || le.Processed != n || float64(le.Now) <= 0 {
		t.Errorf("LimitError fields = %+v (processed %d)", le, n)
	}
}
