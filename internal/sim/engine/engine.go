// Package engine is the discrete-event core of the simulated SoC: a
// priority queue of timestamped events with deterministic FIFO ordering for
// ties. Every other sim package (bandwidth servers, IP pipelines, thermal
// governors) schedules closures on an Engine.
//
// The queue is allocation-lean: events are value structs in an inlined
// 4-ary min-heap whose backing slice grows in place and is reused across
// Run calls, and events scheduled for the *current* instant bypass the heap
// entirely through a FIFO fast path. Ordering is the strict total order
// (at, seq) — bitwise time comparison first, scheduling sequence as the
// tie-break — so a given schedule always replays identically.
package engine

import (
	"fmt"
	"math"

	"github.com/gables-model/gables/internal/sim/trace"
)

// Time is simulated time in seconds.
type Time float64

// event is a scheduled closure. Events are stored by value: scheduling
// allocates nothing beyond amortized slice growth.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// less orders events by (at, seq). The comparison on at is intentionally
// bitwise: the engine's determinism contract is that two events at the
// same float64 instant run in scheduling order, and a tolerance would make
// that order depend on insertion history.
func less(a, b event) bool {
	//lint:ignore floatcmp deterministic event ordering requires bitwise time equality before the seq tie-break; a tolerance would make the order depend on insertion history
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Engine drives a simulation.
type Engine struct {
	now Time
	seq uint64

	// heap is an inlined 4-ary min-heap ordered by less. Its backing
	// array is retained when the queue drains, so repeated Run calls on
	// one engine stop allocating once the first run has sized it.
	heap []event

	// fifo holds events scheduled for exactly the current instant
	// (at == now). They are popped in insertion order after every heap
	// event at the same instant — see popNext for why that is exactly
	// (at, seq) order — turning same-timestamp cascades into O(1)
	// queue operations instead of heap sifts.
	fifo     []event
	fifoHead int

	// probe, when non-nil, observes every event dispatch. The nil fast
	// path is a single branch: no allocation, no call, and — because
	// probes are observe-only — identical schedules either way.
	probe trace.Probe
}

// New returns an engine at time zero.
func New() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// SetProbe attaches (or, with nil, detaches) a trace probe. The probe must
// be observe-only: it must not schedule events or mutate any component on
// this engine. Attach it before running; swapping probes mid-run is legal
// but splits the observed stream.
func (e *Engine) SetProbe(p trace.Probe) { e.probe = p }

// Schedule runs fn at the given absolute time, which must not be in the
// past. Events scheduled for the same instant run in scheduling order.
func (e *Engine) Schedule(at Time, fn func()) error {
	if at < e.now {
		return fmt.Errorf("engine: cannot schedule at %v before now %v", at, e.now)
	}
	if math.IsNaN(float64(at)) || math.IsInf(float64(at), 0) {
		return fmt.Errorf("engine: non-finite event time %v", at)
	}
	if fn == nil {
		return fmt.Errorf("engine: nil event function")
	}
	e.seq++
	ev := event{at: at, seq: e.seq, fn: fn}
	//lint:ignore floatcmp the fast path keys on bitwise equality with the current instant; anything merely close must still order through the heap
	if at == e.now {
		// Same-instant fast path. Every event already in the heap with
		// this timestamp was scheduled before the clock reached it and
		// therefore carries a smaller seq than anything appended here,
		// so heap-then-fifo draining preserves (at, seq) order.
		e.fifo = append(e.fifo, ev)
		return nil
	}
	e.heapPush(ev)
	return nil
}

// After schedules fn delay seconds from now.
func (e *Engine) After(delay Time, fn func()) error {
	if delay < 0 {
		return fmt.Errorf("engine: negative delay %v", delay)
	}
	return e.Schedule(e.now+delay, fn)
}

// peek returns the next event's timestamp without popping it.
func (e *Engine) peek() (Time, bool) {
	if len(e.heap) > 0 {
		//lint:ignore floatcmp bitwise comparison against the current instant mirrors the fast-path test in Schedule
		if e.heap[0].at == e.now {
			return e.now, true
		}
	}
	if e.fifoHead < len(e.fifo) {
		return e.now, true
	}
	if len(e.heap) > 0 {
		return e.heap[0].at, true
	}
	return 0, false
}

// popNext removes and returns the globally next event in (at, seq) order.
//
// Heap events at the current instant always precede fifo events: the fifo
// only receives events scheduled *while* now == at (strictly larger seq),
// whereas same-instant heap events were scheduled before the clock
// advanced. Events at later instants come after both, and the fifo is
// empty whenever the clock advances (rule three only fires once rules one
// and two are exhausted).
func (e *Engine) popNext() event {
	if len(e.heap) > 0 {
		//lint:ignore floatcmp see popNext doc comment: bitwise same-instant test against now
		if e.heap[0].at == e.now {
			return e.heapPop()
		}
	}
	if e.fifoHead < len(e.fifo) {
		ev := e.fifo[e.fifoHead]
		e.fifo[e.fifoHead] = event{} // release the closure
		e.fifoHead++
		if e.fifoHead == len(e.fifo) {
			e.fifo = e.fifo[:0] // reuse the backing array
			e.fifoHead = 0
		}
		return ev
	}
	return e.heapPop()
}

// LimitError reports the Run livelock guard tripping: the event limit was
// reached with work still queued. It carries the limit, the number of
// events processed, and the simulated time reached, so callers can tell a
// genuine livelock from a legitimately long schedule at a glance.
type LimitError struct {
	Limit     int
	Processed int
	Now       Time
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("engine: event limit %d exceeded after %d events at t=%v (livelock?)",
		e.Limit, e.Processed, e.Now)
}

// Run processes events until the queue drains or the optional limit is
// exceeded (returning a *LimitError), with the number of events processed.
// limit <= 0 means no limit (bounded only by the queue draining).
//
//gables:allocfree
func (e *Engine) Run(limit int) (int, error) {
	processed := 0
	for e.Pending() > 0 {
		if limit > 0 && processed >= limit {
			return processed, &LimitError{Limit: limit, Processed: processed, Now: e.now}
		}
		ev := e.popNext()
		e.now = ev.at
		if e.probe != nil {
			e.probe.EventDispatched(float64(ev.at), e.Pending())
		}
		ev.fn()
		processed++
	}
	return processed, nil
}

// RunUntil processes events with timestamps at or before deadline, leaving
// later events queued and advancing the clock to the deadline.
func (e *Engine) RunUntil(deadline Time) (int, error) {
	if deadline < e.now {
		return 0, fmt.Errorf("engine: deadline %v before now %v", deadline, e.now)
	}
	processed := 0
	for {
		at, ok := e.peek()
		if !ok || at > deadline {
			break
		}
		ev := e.popNext()
		e.now = ev.at
		if e.probe != nil {
			e.probe.EventDispatched(float64(ev.at), e.Pending())
		}
		ev.fn()
		processed++
	}
	e.now = deadline
	return processed, nil
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.heap) + len(e.fifo) - e.fifoHead }

// heapPush inserts ev into the 4-ary min-heap.
func (e *Engine) heapPush(ev event) {
	h := append(e.heap, ev)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !less(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	e.heap = h
}

// heapPop removes and returns the minimum event. The vacated tail slot is
// zeroed so popped closures do not outlive their execution.
func (e *Engine) heapPop() event {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{}
	h = h[:n]
	e.heap = h
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := i
		last := first + 4
		if last > n {
			last = n
		}
		for c := first; c < last; c++ {
			if less(h[c], h[min]) {
				min = c
			}
		}
		if min == i {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return top
}
