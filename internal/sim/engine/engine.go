// Package engine is the discrete-event core of the simulated SoC: a
// priority queue of timestamped events with deterministic FIFO ordering for
// ties. Every other sim package (bandwidth servers, IP pipelines, thermal
// governors) schedules closures on an Engine.
package engine

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is simulated time in seconds.
type Time float64

// Event is a scheduled closure.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	//lint:ignore floatcmp deterministic event ordering requires bitwise time equality before the seq tie-break; a tolerance would make the order depend on insertion history
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine drives a simulation.
type Engine struct {
	now   Time
	seq   uint64
	queue eventQueue
}

// New returns an engine at time zero.
func New() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Schedule runs fn at the given absolute time, which must not be in the
// past. Events scheduled for the same instant run in scheduling order.
func (e *Engine) Schedule(at Time, fn func()) error {
	if at < e.now {
		return fmt.Errorf("engine: cannot schedule at %v before now %v", at, e.now)
	}
	if math.IsNaN(float64(at)) || math.IsInf(float64(at), 0) {
		return fmt.Errorf("engine: non-finite event time %v", at)
	}
	if fn == nil {
		return fmt.Errorf("engine: nil event function")
	}
	e.seq++
	heap.Push(&e.queue, &event{at: at, seq: e.seq, fn: fn})
	return nil
}

// After schedules fn delay seconds from now.
func (e *Engine) After(delay Time, fn func()) error {
	if delay < 0 {
		return fmt.Errorf("engine: negative delay %v", delay)
	}
	return e.Schedule(e.now+delay, fn)
}

// Run processes events until the queue drains or the optional limit is
// exceeded, returning the number of events processed. limit <= 0 means no
// limit (bounded only by the queue draining).
func (e *Engine) Run(limit int) (int, error) {
	processed := 0
	for e.queue.Len() > 0 {
		if limit > 0 && processed >= limit {
			return processed, fmt.Errorf("engine: event limit %d exceeded at t=%v (livelock?)", limit, e.now)
		}
		ev := heap.Pop(&e.queue).(*event)
		e.now = ev.at
		ev.fn()
		processed++
	}
	return processed, nil
}

// RunUntil processes events with timestamps at or before deadline, leaving
// later events queued and advancing the clock to the deadline.
func (e *Engine) RunUntil(deadline Time) (int, error) {
	if deadline < e.now {
		return 0, fmt.Errorf("engine: deadline %v before now %v", deadline, e.now)
	}
	processed := 0
	for e.queue.Len() > 0 && e.queue[0].at <= deadline {
		ev := heap.Pop(&e.queue).(*event)
		e.now = ev.at
		ev.fn()
		processed++
	}
	e.now = deadline
	return processed, nil
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.queue.Len() }
