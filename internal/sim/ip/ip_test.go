package ip

import (
	"math"
	"testing"

	"github.com/gables-model/gables/internal/kernel"
	"github.com/gables-model/gables/internal/sim/engine"
	"github.com/gables-model/gables/internal/sim/mem"
)

// rig instantiates an IP with a private engine and DRAM server.
type rig struct {
	eng  *engine.Engine
	dram *mem.Server
	blk  *IP
}

func newRig(t *testing.T, cfg Config, dramBW float64) *rig {
	t.Helper()
	eng := engine.New()
	dram, err := mem.NewServer(eng, "dram", dramBW)
	if err != nil {
		t.Fatal(err)
	}
	blk, err := New(eng, cfg, nil, dram)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{eng: eng, dram: dram, blk: blk}
}

// run executes a kernel to completion and returns achieved flops/s and
// bytes/s.
func (r *rig) run(t *testing.T, k kernel.Kernel, host *mem.Server) (rate, bw float64) {
	t.Helper()
	var finish engine.Time
	if err := r.blk.RunKernel(k, host, func() { finish = r.eng.Now() }); err != nil {
		t.Fatal(err)
	}
	if _, err := r.eng.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if finish == 0 {
		t.Fatal("kernel never finished")
	}
	return r.blk.OpsDone() / float64(finish), r.blk.BytesMoved() / float64(finish)
}

func baseConfig() Config {
	return Config{
		Name:          "cpu",
		ComputeRate:   8e9,
		LinkBandwidth: 16e9,
	}
}

func TestConfigValidation(t *testing.T) {
	eng := engine.New()
	dram, _ := mem.NewServer(eng, "dram", 30e9)

	cases := []func(*Config){
		func(c *Config) { c.Name = "" },
		func(c *Config) { c.ComputeRate = 0 },
		func(c *Config) { c.LinkBandwidth = -1 },
		func(c *Config) { c.WritePenalty = 0.5 },
		func(c *Config) { c.CacheSize = 1024; c.CacheBandwidth = 0 },
		func(c *Config) { c.ChunkBytes = -1 },
		func(c *Config) { c.MaxInflight = -1 },
		func(c *Config) { c.CoordinationOpsPerByte = -1 },
	}
	for i, mutate := range cases {
		cfg := baseConfig()
		mutate(&cfg)
		if _, err := New(eng, cfg, nil, dram); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	if _, err := New(nil, baseConfig(), nil, dram); err == nil {
		t.Error("nil engine must be rejected")
	}
	if _, err := New(eng, baseConfig(), nil, nil); err == nil {
		t.Error("nil DRAM must be rejected")
	}
}

func TestComputeBoundAtHighIntensity(t *testing.T) {
	r := newRig(t, baseConfig(), 30e9)
	k := kernel.Kernel{Name: "hot", WorkingSet: 8 << 20, Trials: 2,
		FlopsPerWord: 512, Pattern: kernel.ReadWrite}
	rate, _ := r.run(t, k, nil)
	// At 64 flops/byte the 8 Gops/s engine is the bound.
	if math.Abs(rate-8e9)/8e9 > 0.02 {
		t.Errorf("rate = %v, want ~8e9 (compute bound)", rate)
	}
}

func TestBandwidthBoundAtLowIntensity(t *testing.T) {
	r := newRig(t, baseConfig(), 30e9)
	k := kernel.Kernel{Name: "cold", WorkingSet: 8 << 20, Trials: 2,
		FlopsPerWord: 1, Pattern: kernel.ReadOnly}
	rate, bw := r.run(t, k, nil)
	// Read-only at 16 GB/s link: 0.25 flops/byte → 4 Gflops/s.
	if math.Abs(bw-16e9)/16e9 > 0.02 {
		t.Errorf("bandwidth = %v, want ~16e9 (link bound)", bw)
	}
	if math.Abs(rate-4e9)/4e9 > 0.02 {
		t.Errorf("rate = %v, want ~4e9", rate)
	}
}

func TestWritePenaltyLowersRWBandwidth(t *testing.T) {
	cfg := baseConfig()
	cfg.WritePenalty = 1.649
	r := newRig(t, cfg, 100e9)
	k := kernel.Kernel{Name: "rw", WorkingSet: 8 << 20, Trials: 2,
		FlopsPerWord: 1, Pattern: kernel.ReadWrite}
	_, bw := r.run(t, k, nil)
	// Effective RW bandwidth: 8 bytes moved per (4 + 4·1.649)/16e9 s
	// ≈ 12.08 GB/s.
	want := 8.0 / (4 + 4*1.649) * 16e9
	if math.Abs(bw-want)/want > 0.02 {
		t.Errorf("RW bandwidth = %v, want ~%v", bw, want)
	}
}

func TestDRAMSlowerThanLinkBinds(t *testing.T) {
	r := newRig(t, baseConfig(), 8e9) // DRAM slower than the 16 GB/s link
	k := kernel.Kernel{Name: "k", WorkingSet: 8 << 20, Trials: 2,
		FlopsPerWord: 1, Pattern: kernel.ReadOnly}
	_, bw := r.run(t, k, nil)
	if math.Abs(bw-8e9)/8e9 > 0.02 {
		t.Errorf("bandwidth = %v, want ~8e9 (DRAM bound)", bw)
	}
}

func TestCacheResidentBandwidthLift(t *testing.T) {
	cfg := baseConfig()
	cfg.ComputeRate = 1000e9 // keep compute out of the way
	cfg.CacheSize = 2 << 20
	cfg.CacheBandwidth = 80e9
	r := newRig(t, cfg, 30e9)

	// Working set fits: after the warmup trial, traffic is served at
	// cache bandwidth, so many trials approach 80 GB/s.
	k := kernel.Kernel{Name: "small", WorkingSet: 1 << 20, Trials: 20,
		FlopsPerWord: 1, Pattern: kernel.ReadOnly}
	_, bw := r.run(t, k, nil)
	if bw < 40e9 {
		t.Errorf("cache-resident bandwidth = %v, want well above the 16e9 link", bw)
	}

	// Working set too large: every trial streams from DRAM.
	r2 := newRig(t, cfg, 30e9)
	big := kernel.Kernel{Name: "big", WorkingSet: 16 << 20, Trials: 4,
		FlopsPerWord: 1, Pattern: kernel.ReadOnly}
	_, bw2 := r2.run(t, big, nil)
	if bw2 > 17e9 {
		t.Errorf("thrashing bandwidth = %v, must be link/DRAM bound", bw2)
	}
}

func TestCoordinationThrottlesOffload(t *testing.T) {
	eng := engine.New()
	dram, _ := mem.NewServer(eng, "dram", 30e9)
	host, _ := mem.NewServer(eng, "host:compute", 7.5e9)
	cfg := Config{
		Name:                   "gpu",
		ComputeRate:            350e9,
		LinkBandwidth:          24e9,
		CoordinationOpsPerByte: 1.25,
		MaxInflight:            16,
	}
	blk, err := New(eng, cfg, nil, dram)
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.Kernel{Name: "k", WorkingSet: 8 << 20, Trials: 2,
		FlopsPerWord: 1, Pattern: kernel.StreamCopy}
	var finish engine.Time
	if err := blk.RunKernel(k, host, func() { finish = eng.Now() }); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	bw := blk.BytesMoved() / float64(finish)
	// Coordination at 1.25 ops/byte on a 7.5 Gops host limits offloaded
	// traffic to ~6 GB/s, far below the 24 GB/s link.
	want := 7.5e9 / 1.25
	if math.Abs(bw-want)/want > 0.05 {
		t.Errorf("coordinated bandwidth = %v, want ~%v", bw, want)
	}
}

func TestRunKernelValidation(t *testing.T) {
	r := newRig(t, baseConfig(), 30e9)
	if err := r.blk.RunKernel(kernel.Kernel{}, nil, func() {}); err == nil {
		t.Error("invalid kernel must be rejected")
	}
	k := kernel.Kernel{Name: "k", WorkingSet: 1024, Trials: 1, FlopsPerWord: 1}
	if err := r.blk.RunKernel(k, nil, nil); err == nil {
		t.Error("nil completion must be rejected")
	}
}

func TestAccountingAndReset(t *testing.T) {
	r := newRig(t, baseConfig(), 30e9)
	k := kernel.Kernel{Name: "k", WorkingSet: 1 << 20, Trials: 2,
		FlopsPerWord: 4, Pattern: kernel.ReadWrite}
	r.run(t, k, nil)
	if r.blk.OpsDone() != float64(k.TotalFlops()) {
		t.Errorf("ops done = %v, want %v", r.blk.OpsDone(), float64(k.TotalFlops()))
	}
	if r.blk.BytesMoved() != float64(k.TotalTraffic()) {
		t.Errorf("bytes = %v, want %v", r.blk.BytesMoved(), float64(k.TotalTraffic()))
	}
	r.blk.Reset()
	if r.blk.OpsDone() != 0 || r.blk.BytesMoved() != 0 {
		t.Error("reset must clear counters")
	}
}

func TestFrequencyScale(t *testing.T) {
	r := newRig(t, baseConfig(), 30e9)
	if err := r.blk.SetFrequencyScale(0.5); err != nil {
		t.Fatal(err)
	}
	k := kernel.Kernel{Name: "hot", WorkingSet: 4 << 20, Trials: 2,
		FlopsPerWord: 512, Pattern: kernel.ReadWrite}
	rate, _ := r.run(t, k, nil)
	if math.Abs(rate-4e9)/4e9 > 0.02 {
		t.Errorf("halved clock rate = %v, want ~4e9", rate)
	}
	if err := r.blk.SetFrequencyScale(0); err == nil {
		t.Error("zero scale must be rejected")
	}
	if err := r.blk.SetFrequencyScale(1.5); err == nil {
		t.Error("overclock must be rejected")
	}
}

func TestDefaultsApplied(t *testing.T) {
	r := newRig(t, baseConfig(), 30e9)
	cfg := r.blk.Config()
	if cfg.WritePenalty != 1 || cfg.ChunkBytes != 256*1024 || cfg.MaxInflight != 4 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
}

func TestMemoryLatencyWindowInteraction(t *testing.T) {
	// With a fixed per-chunk latency, throughput is capped near
	// window·chunk/(latency + service). A shallow window starves the
	// link; a deep window hides the latency — the §III-C latency
	// reduction vs latency tolerance contrast.
	run := func(window int) float64 {
		cfg := Config{
			Name:          "lat",
			ComputeRate:   1000e9,
			LinkBandwidth: 20e9,
			ChunkBytes:    4096,
			MaxInflight:   window,
			MemoryLatency: 1e-6,
		}
		r := newRig(t, cfg, 30e9)
		k := kernel.Kernel{Name: "k", WorkingSet: 4 << 20, Trials: 2,
			FlopsPerWord: 1, Pattern: kernel.ReadOnly}
		_, bw := r.run(t, k, nil)
		return bw
	}
	shallow := run(2)
	deep := run(32)
	// The shallow window is latency-bound: between the naive per-slot
	// cap 2·4096/(1e-6 + 2·4096/20e9) ≈ 5.8 GB/s and the optimistic
	// 2·4096/(1e-6 + 4096/20e9) ≈ 6.8 GB/s, and far below the link.
	if shallow < 5.5e9 || shallow > 7e9 {
		t.Errorf("shallow-window bandwidth = %v, want latency-bound ~6 GB/s", shallow)
	}
	if deep < 19e9 {
		t.Errorf("deep window must hide the latency: %v, want ~20e9", deep)
	}
	if deep < 2*shallow {
		t.Errorf("latency tolerance must dominate: deep %v vs shallow %v", deep, shallow)
	}
}

func TestMemoryLatencySkipsCacheHits(t *testing.T) {
	// Cache-resident trials pay no DRAM latency.
	cfg := Config{
		Name:           "lat",
		ComputeRate:    1000e9,
		LinkBandwidth:  20e9,
		CacheSize:      2 << 20,
		CacheBandwidth: 80e9,
		ChunkBytes:     4096,
		MaxInflight:    1,
		MemoryLatency:  1e-6,
	}
	r := newRig(t, cfg, 30e9)
	k := kernel.Kernel{Name: "k", WorkingSet: 1 << 20, Trials: 16,
		FlopsPerWord: 1, Pattern: kernel.ReadOnly}
	_, bw := r.run(t, k, nil)
	// With 15 of 16 trials hitting, the latency-starved miss pass is
	// amortized away: overall bandwidth stays well above the ~3.4 GB/s
	// a latency-bound window-1 stream would manage.
	if bw < 20e9 {
		t.Errorf("cache hits must dodge the latency: %v", bw)
	}
}

func TestMemoryLatencyValidation(t *testing.T) {
	cfg := baseConfig()
	cfg.MemoryLatency = -1
	eng := engine.New()
	dram, _ := mem.NewServer(eng, "dram", 30e9)
	if _, err := New(eng, cfg, nil, dram); err == nil {
		t.Error("negative latency must be rejected")
	}
}

// TestComputeCoalescingExactEquivalence runs the same kernel with and
// without completion coalescing on the private compute server (the sink
// sim.Run batches outside thermal runs) and requires bitwise-identical
// finish time and accounting, with strictly fewer engine events.
func TestComputeCoalescingExactEquivalence(t *testing.T) {
	cfg := baseConfig()
	cfg.CacheSize = 1 << 20
	cfg.CacheBandwidth = 64e9
	cfg.ChunkBytes = 64 << 10
	k := kernel.Kernel{Name: "coal", WorkingSet: 1 << 20, Trials: 3,
		FlopsPerWord: 16, Pattern: kernel.ReadWrite}
	run := func(coalesce bool) (finish engine.Time, flops, bytes float64, events int) {
		r := newRig(t, cfg, 30e9)
		r.blk.ComputeServer().SetCoalescing(coalesce)
		if err := r.blk.RunKernel(k, nil, func() { finish = r.eng.Now() }); err != nil {
			t.Fatal(err)
		}
		n, err := r.eng.Run(10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return finish, r.blk.OpsDone(), r.blk.BytesMoved(), n
	}
	pf, pflops, pbytes, pe := run(false)
	cf, cflops, cbytes, ce := run(true)
	if pf != cf {
		t.Errorf("finish time %v (plain) vs %v (coalesced): must be bitwise equal", pf, cf)
	}
	if pflops != cflops || pbytes != cbytes {
		t.Errorf("accounting differs: flops %v/%v bytes %v/%v", pflops, cflops, pbytes, cbytes)
	}
	if ce >= pe {
		t.Errorf("coalesced run processed %d events, plain %d: batching must schedule fewer", ce, pe)
	}
}
