// Package ip models one IP block of the simulated SoC executing the
// Algorithm 1 micro-benchmark: a compute engine (a FIFO server in ops/s), a
// link to the interconnect (bytes/s, with an optional write penalty that
// models read-modify-write turnaround at the block's memory interface), a
// private streaming cache, and a chunked transfer pipeline with a bounded
// number of outstanding chunks.
//
// A kernel is split into chunks; each chunk's data traverses
// link → fabric(s) → DRAM (or the private cache when the working set fits),
// then its computation queues on the compute server. Transfers of later
// chunks overlap the computation of earlier ones — the double-buffering
// every real streaming engine uses — so an IP's achieved rate converges to
// min(compute, bandwidth·intensity): its roofline emerges from the
// mechanism rather than being asserted.
//
// When offload coordination is enabled (the mixing experiments of §IV-C),
// each chunk is first serviced by the *host CPU's* compute server at a
// configurable ops-per-byte cost, modeling the paper's §II-B third
// bottleneck: IPs are exposed as devices whose buffers and completions the
// CPU must shepherd.
package ip

import (
	"fmt"
	"math"

	"github.com/gables-model/gables/internal/kernel"
	"github.com/gables-model/gables/internal/sim/engine"
	"github.com/gables-model/gables/internal/sim/mem"
	"github.com/gables-model/gables/internal/sim/trace"
)

// Config parameterizes an IP block.
type Config struct {
	// Name labels the block.
	Name string
	// ComputeRate is peak computation in ops/s.
	ComputeRate float64
	// LinkBandwidth is the block's interconnect link in bytes/s.
	LinkBandwidth float64
	// WritePenalty multiplies the link service cost of written bytes;
	// 1 means writes cost the same as reads. The paper's CPU measures
	// 15.1 GB/s read+write against ~20 GB/s read-only, which a penalty
	// of ~1.65 reproduces.
	WritePenalty float64
	// CacheSize is the private cache capacity in bytes; 0 disables it.
	CacheSize float64
	// CacheBandwidth is hit bandwidth in bytes/s; required if CacheSize
	// is set.
	CacheBandwidth float64
	// ChunkBytes is the pipeline granularity; defaults to 256 KiB.
	ChunkBytes float64
	// MaxInflight bounds outstanding chunk transfers; defaults to 4.
	MaxInflight int
	// CoordinationOpsPerByte is the host-CPU cost of shepherding each
	// byte this block moves when coordination is enabled: driver calls,
	// buffer management, completion interrupts. Zero for the host
	// itself.
	CoordinationOpsPerByte float64
	// MemoryLatency is the fixed round-trip latency a miss chunk pays
	// on top of its bandwidth service time, in seconds. With latency,
	// achievable bandwidth is capped near
	// MaxInflight·ChunkBytes/(latency + service): a shallow outstanding
	// window (latency *reduction* designs, like cached CPUs) starves,
	// while a deep window (latency *tolerance* designs, like GPUs)
	// sustains the link — the §III-C contrast. Zero disables it.
	MemoryLatency float64
}

func (c *Config) applyDefaults() {
	if c.WritePenalty == 0 {
		c.WritePenalty = 1
	}
	if c.ChunkBytes == 0 {
		c.ChunkBytes = 256 * 1024
	}
	if c.MaxInflight == 0 {
		c.MaxInflight = 4
	}
}

// Validate checks the configuration, applying defaults to a local copy
// first so zero-valued optional fields are legal.
func (c Config) Validate() error {
	c.applyDefaults()
	if c.Name == "" {
		return fmt.Errorf("ip: config with empty name")
	}
	if c.ComputeRate <= 0 {
		return fmt.Errorf("ip: %s: compute rate must be positive", c.Name)
	}
	if c.LinkBandwidth <= 0 {
		return fmt.Errorf("ip: %s: link bandwidth must be positive", c.Name)
	}
	if c.WritePenalty < 1 {
		return fmt.Errorf("ip: %s: write penalty must be at least 1, got %v", c.Name, c.WritePenalty)
	}
	if c.CacheSize < 0 || (c.CacheSize > 0 && c.CacheBandwidth <= 0) {
		return fmt.Errorf("ip: %s: cache needs positive size and bandwidth", c.Name)
	}
	if c.ChunkBytes <= 0 {
		return fmt.Errorf("ip: %s: chunk size must be positive", c.Name)
	}
	if c.MaxInflight < 1 {
		return fmt.Errorf("ip: %s: need at least one outstanding chunk", c.Name)
	}
	if c.CoordinationOpsPerByte < 0 {
		return fmt.Errorf("ip: %s: coordination cost must be non-negative", c.Name)
	}
	if c.MemoryLatency < 0 {
		return fmt.Errorf("ip: %s: memory latency must be non-negative", c.Name)
	}
	return nil
}

// IP is an instantiated block.
type IP struct {
	cfg        Config
	eng        *engine.Engine
	compute    *mem.Server
	link       *mem.Server
	cache      *mem.Cache
	fabricPath []*mem.Server
	dram       *mem.Server

	// probe, when non-nil, observes the block's chunk pipeline and its
	// private servers. Observe-only; nil costs one branch per emission
	// site.
	probe trace.Probe

	flopsDone  float64
	bytesMoved float64
}

// New instantiates the block on the engine. fabricPath lists the fabric
// servers between the block's link and the DRAM controller (may be empty);
// dram is the shared memory controller server.
func New(eng *engine.Engine, cfg Config, fabricPath []*mem.Server, dram *mem.Server) (*IP, error) {
	cfg.applyDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if eng == nil {
		return nil, fmt.Errorf("ip: %s: nil engine", cfg.Name)
	}
	if dram == nil {
		return nil, fmt.Errorf("ip: %s: nil DRAM server", cfg.Name)
	}
	compute, err := mem.NewServer(eng, cfg.Name+":compute", cfg.ComputeRate)
	if err != nil {
		return nil, err
	}
	link, err := mem.NewServer(eng, cfg.Name+":link", cfg.LinkBandwidth)
	if err != nil {
		return nil, err
	}
	b := &IP{cfg: cfg, eng: eng, compute: compute, link: link, fabricPath: fabricPath, dram: dram}
	if cfg.CacheSize > 0 {
		b.cache, err = mem.NewCache(eng, cfg.Name+":cache", cfg.CacheSize, cfg.CacheBandwidth)
		if err != nil {
			return nil, err
		}
	}
	return b, nil
}

// Name returns the block's label.
func (b *IP) Name() string { return b.cfg.Name }

// Config returns the block's configuration (post-defaults).
func (b *IP) Config() Config { return b.cfg }

// OpsDone returns cumulative operations completed (thermal.Target).
func (b *IP) OpsDone() float64 { return b.flopsDone }

// BytesMoved returns cumulative data moved, counting actual bytes (the
// write penalty inflates service time, not this count).
func (b *IP) BytesMoved() float64 { return b.bytesMoved }

// ComputeServer exposes the compute resource, e.g. as the host server for
// other IPs' coordination costs.
func (b *IP) ComputeServer() *mem.Server { return b.compute }

// SetProbe attaches (or, with nil, detaches) a trace probe to the block's
// pipeline and to its private servers (compute, link, cache). The shared
// servers on the transfer path — fabrics and DRAM — belong to the system
// and get their probe there, so each service window is observed exactly
// once.
func (b *IP) SetProbe(p trace.Probe) {
	b.probe = p
	b.compute.SetProbe(p)
	b.link.SetProbe(p)
	if b.cache != nil {
		b.cache.Server.SetProbe(p)
	}
}

// SetFrequencyScale scales the compute clock (thermal.Target).
func (b *IP) SetFrequencyScale(s float64) error {
	if s <= 0 || s > 1 || math.IsNaN(s) {
		return fmt.Errorf("ip: %s: frequency scale must be in (0,1], got %v", b.cfg.Name, s)
	}
	return b.compute.SetCapacity(b.cfg.ComputeRate * s)
}

// Reset clears progress counters and server accounting for a fresh
// measurement on the same instantiated system.
func (b *IP) Reset() {
	b.flopsDone = 0
	b.bytesMoved = 0
	b.compute.Reset()
	b.link.Reset()
	if b.cache != nil {
		b.cache.Server.Reset()
	}
}

// chunk describes one pipelined unit of kernel work.
type chunk struct {
	read, write float64 // bytes
	flops       float64
	cached      bool
}

// runState is the per-RunKernel bookkeeping: the chunk cursor, the
// completion count, and a FIFO of per-chunk flops mirroring the compute
// server's queue. The compute server services requests in issue order, so
// one shared pre-bound completion callback pops the matching flops from
// the front instead of carrying a closure per chunk.
type runState struct {
	b      *IP
	host   *mem.Server
	chunks []chunk

	next      int
	completed int
	done      func()

	flopsQ     []float64
	flopsHead  int
	onComputed func() // pre-bound rs.computed

	slots []slot
}

// slot is one of the MaxInflight pipeline positions. Each slot owns a
// reusable hops backing array and two pre-bound callbacks, so launching a
// chunk in the steady state allocates nothing: the slot is recycled the
// moment its previous chunk's data arrives.
type slot struct {
	rs   *runState
	c    chunk
	hops []mem.Hop

	idx int // pipeline position, labels this slot's trace track
	ci  int // index (within the run) of the chunk currently in flight

	onTransferDone func() // pre-bound sl.transferDone
	onArrived      func() // pre-bound sl.arrived
}

// RunKernel executes the kernel on the block and calls done when every
// chunk's computation has completed. host, when non-nil, is the host CPU
// compute server that coordination costs are charged to (enable it for
// offloaded mixing runs; leave nil for device-resident roofline runs and
// for the host itself).
func (b *IP) RunKernel(k kernel.Kernel, host *mem.Server, done func()) error {
	if err := k.Validate(); err != nil {
		return err
	}
	if done == nil {
		return fmt.Errorf("ip: %s: nil completion", b.cfg.Name)
	}
	chunks := b.buildChunks(k)
	if len(chunks) == 0 {
		return fmt.Errorf("ip: %s: kernel %s produced no work", b.cfg.Name, k.Name)
	}

	rs := &runState{b: b, host: host, chunks: chunks, done: done}
	rs.onComputed = rs.computed
	inflight := b.cfg.MaxInflight
	if inflight > len(chunks) {
		inflight = len(chunks)
	}
	rs.slots = make([]slot, inflight)
	for i := range rs.slots {
		sl := &rs.slots[i]
		sl.rs = rs
		sl.idx = i
		sl.onTransferDone = sl.transferDone
		sl.onArrived = sl.arrived
	}
	for i := range rs.slots {
		rs.launch(&rs.slots[i])
	}
	return nil
}

// launch starts the next pending chunk on the given slot, reusing the
// slot's hops array and callbacks.
func (rs *runState) launch(sl *slot) {
	if rs.next >= len(rs.chunks) {
		return
	}
	b := rs.b
	sl.c = rs.chunks[rs.next]
	sl.ci = rs.next
	rs.next++
	if b.probe != nil {
		b.probe.ChunkStart(b.cfg.Name, sl.idx, sl.ci, float64(b.eng.Now()), sl.c.read, sl.c.write, sl.c.flops)
	}
	sl.hops = b.appendHops(sl.hops[:0], sl.c, rs.host)
	// Transfer arguments are validated by construction; a failure here is
	// a programming error surfaced by the panic rather than a silently
	// dropped chunk.
	if err := mem.TransferTraced(sl.hops, sl.onTransferDone, b.probe, b.cfg.Name, sl.idx); err != nil {
		panic(fmt.Sprintf("ip: %s: transfer: %v", b.cfg.Name, err))
	}
}

// transferDone runs when the slot's chunk finishes its last hop. Miss
// chunks pay the fixed round-trip latency on top of their bandwidth
// service; it occupies no server, so deeper outstanding windows hide it.
func (sl *slot) transferDone() {
	b := sl.rs.b
	if b.cfg.MemoryLatency > 0 && !sl.c.cached {
		if err := b.eng.After(engine.Time(b.cfg.MemoryLatency), sl.onArrived); err != nil {
			panic(fmt.Sprintf("ip: %s: latency: %v", b.cfg.Name, err))
		}
		return
	}
	sl.arrived()
}

// arrived accounts the chunk's traffic, queues its computation, and frees
// the pipeline slot for the next chunk.
func (sl *slot) arrived() {
	rs := sl.rs
	b := rs.b
	if b.probe != nil {
		b.probe.ChunkArrived(b.cfg.Name, sl.idx, sl.ci, float64(b.eng.Now()))
	}
	b.bytesMoved += sl.c.read + sl.c.write
	rs.pushFlops(sl.c.flops)
	if err := b.compute.Request(sl.c.flops, rs.onComputed); err != nil {
		panic(fmt.Sprintf("ip: %s: compute request: %v", b.cfg.Name, err))
	}
	rs.launch(sl)
}

// computed runs once per chunk computation, in compute-server FIFO order —
// the same order arrived queued them — so the front of flopsQ is always
// the completing chunk's contribution.
//
//gables:allocfree
func (rs *runState) computed() {
	b := rs.b
	f := rs.popFlops()
	b.flopsDone += f
	if b.probe != nil {
		b.probe.ChunkDone(b.cfg.Name, float64(b.eng.Now()), f)
	}
	rs.completed++
	if rs.completed == len(rs.chunks) {
		rs.done()
	}
}

// pushFlops appends to the pending-computation FIFO, compacting the
// consumed prefix in place of growing when it can.
//
//gables:allocfree
func (rs *runState) pushFlops(f float64) {
	if rs.flopsHead > 0 && len(rs.flopsQ) == cap(rs.flopsQ) {
		n := copy(rs.flopsQ, rs.flopsQ[rs.flopsHead:])
		rs.flopsQ = rs.flopsQ[:n]
		rs.flopsHead = 0
	}
	//lint:ignore allocfree the compaction above reuses the backing array; capacity stops growing once it matches the pipeline depth (MaxInflight)
	rs.flopsQ = append(rs.flopsQ, f)
}

func (rs *runState) popFlops() float64 {
	f := rs.flopsQ[rs.flopsHead]
	rs.flopsHead++
	if rs.flopsHead == len(rs.flopsQ) {
		rs.flopsQ = rs.flopsQ[:0]
		rs.flopsHead = 0
	}
	return f
}

// buildChunks splits the kernel into pipeline chunks, trial by trial.
func (b *IP) buildChunks(k kernel.Kernel) []chunk {
	readPer, writePer := k.TrafficPerTrial()
	ws := float64(k.WorkingSet)
	flopsPerTrial := float64(k.Words()) * float64(k.FlopsPerWord)
	perTrial := int(math.Ceil(ws / b.cfg.ChunkBytes))
	out := make([]chunk, 0, perTrial*k.Trials)
	for trial := 0; trial < k.Trials; trial++ {
		cached := b.cache != nil && b.cache.Hits(ws, trial)
		remaining := ws
		for remaining > 0 {
			sz := math.Min(b.cfg.ChunkBytes, remaining)
			frac := sz / ws
			out = append(out, chunk{
				read:   float64(readPer) * frac,
				write:  float64(writePer) * frac,
				flops:  flopsPerTrial * frac,
				cached: cached,
			})
			remaining -= sz
		}
	}
	return out
}

// appendHops builds the transfer path for a chunk into dst (typically a
// slot's reset scratch slice, so the steady state allocates nothing).
func (b *IP) appendHops(dst []mem.Hop, c chunk, host *mem.Server) []mem.Hop {
	if c.cached {
		return append(dst, mem.Hop{Server: b.cache.Server, Amount: c.read + c.write})
	}
	if host != nil && b.cfg.CoordinationOpsPerByte > 0 {
		dst = append(dst, mem.Hop{
			Server: host,
			Amount: (c.read + c.write) * b.cfg.CoordinationOpsPerByte,
		})
	}
	dst = append(dst, mem.Hop{
		Server: b.link,
		Amount: c.read + c.write*b.cfg.WritePenalty,
	})
	for _, f := range b.fabricPath {
		dst = append(dst, mem.Hop{Server: f, Amount: c.read + c.write})
	}
	return append(dst, mem.Hop{Server: b.dram, Amount: c.read + c.write})
}
