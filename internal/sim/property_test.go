package sim

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/gables-model/gables/internal/kernel"
	"github.com/gables-model/gables/internal/units"
)

// These property tests pin the simulator's physical invariants: measured
// rates never exceed the analytic rooflines the configuration implies,
// accounting is conserved, and runs are deterministic.

// randKernel maps seeds to a valid kernel on a modest footprint (kept
// small so property runs stay fast).
func randKernel(fpwSeed, wsSeed, trialSeed uint8, p kernel.Pattern) kernel.Kernel {
	return kernel.Kernel{
		Name:         "prop",
		WorkingSet:   units.Bytes(int64(1) << (18 + uint(wsSeed%5))), // 256 KiB .. 4 MiB
		Trials:       1 + int(trialSeed%3),
		FlopsPerWord: 1 << (fpwSeed % 11),
		Pattern:      p,
	}
}

// TestRatesBoundedByRooflineProperty: for any kernel, the CPU's achieved
// compute rate never exceeds its configured peak, and its achieved
// bandwidth never exceeds its link or the DRAM controller.
func TestRatesBoundedByRooflineProperty(t *testing.T) {
	sys := mustSystem(t, Snapdragon835())
	cfgByName := map[string]IPSpec{}
	for _, spec := range sys.Config().IPs {
		cfgByName[spec.Name] = spec
	}
	f := func(fpwSeed, wsSeed, trialSeed, ipSeed, patSeed uint8) bool {
		names := []string{"CPU", "GPU", "DSP"}
		name := names[int(ipSeed)%len(names)]
		pattern := kernel.Pattern(int(patSeed) % 3)
		k := randKernel(fpwSeed, wsSeed, trialSeed, pattern)
		res, err := sys.Run([]Assignment{{IP: name, Kernel: k}}, RunOptions{})
		if err != nil {
			return false
		}
		r := res.IPs[0]
		cfg := cfgByName[name]
		if r.Rate > cfg.ComputeRate*(1+1e-9) {
			return false
		}
		// When the working set fits the private cache, bandwidth can
		// exceed the link; otherwise link and DRAM bound it.
		if float64(k.WorkingSet) > cfg.CacheSize {
			if r.Bandwidth > cfg.LinkBandwidth*(1+1e-9) {
				return false
			}
			if r.Bandwidth > sys.Config().DRAMBandwidth*(1+1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestAccountingConservationProperty: flops and bytes reported equal the
// kernel's totals exactly.
func TestAccountingConservationProperty(t *testing.T) {
	sys := mustSystem(t, Snapdragon835())
	f := func(fpwSeed, wsSeed, trialSeed uint8) bool {
		k := randKernel(fpwSeed, wsSeed, trialSeed, kernel.ReadWrite)
		res, err := sys.Run([]Assignment{{IP: "CPU", Kernel: k}}, RunOptions{})
		if err != nil {
			return false
		}
		r := res.IPs[0]
		return r.Flops == float64(k.TotalFlops()) && r.Bytes == float64(k.TotalTraffic())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestDeterminismProperty: identical runs produce identical results.
func TestDeterminismProperty(t *testing.T) {
	sys := mustSystem(t, Snapdragon835())
	f := func(fpwSeed, wsSeed uint8) bool {
		k := randKernel(fpwSeed, wsSeed, 1, kernel.StreamCopy)
		assignments := []Assignment{
			{IP: "CPU", Kernel: k},
			{IP: "GPU", Kernel: k},
		}
		a, err := sys.Run(assignments, RunOptions{Coordination: true})
		if err != nil {
			return false
		}
		b, err := sys.Run(assignments, RunOptions{Coordination: true})
		if err != nil {
			return false
		}
		return a.Makespan == b.Makespan && a.Rate == b.Rate &&
			a.IPs[0].Time == b.IPs[0].Time && a.IPs[1].Time == b.IPs[1].Time
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestContentionNeverHelpsProperty: adding a second concurrent IP never
// makes the first one faster.
func TestContentionNeverHelpsProperty(t *testing.T) {
	sys := mustSystem(t, Snapdragon835())
	f := func(fpwSeed, wsSeed uint8) bool {
		k := randKernel(fpwSeed, wsSeed, 1, kernel.ReadWrite)
		solo, err := sys.Run([]Assignment{{IP: "CPU", Kernel: k}}, RunOptions{})
		if err != nil {
			return false
		}
		both, err := sys.Run([]Assignment{
			{IP: "CPU", Kernel: k},
			{IP: "GPU", Kernel: k},
		}, RunOptions{})
		if err != nil {
			return false
		}
		return both.IPs[0].Time >= solo.IPs[0].Time*(1-1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestMakespanIsMaxProperty: the makespan equals the slowest assignment's
// finish time, and system rate is total flops over makespan.
func TestMakespanIsMaxProperty(t *testing.T) {
	sys := mustSystem(t, Snapdragon835())
	f := func(fpwSeed, wsSeed uint8) bool {
		k := randKernel(fpwSeed, wsSeed, 1, kernel.ReadWrite)
		res, err := sys.Run([]Assignment{
			{IP: "CPU", Kernel: k},
			{IP: "DSP", Kernel: k},
		}, RunOptions{})
		if err != nil {
			return false
		}
		maxT := math.Max(res.IPs[0].Time, res.IPs[1].Time)
		if res.Makespan != maxT {
			return false
		}
		wantRate := (res.IPs[0].Flops + res.IPs[1].Flops) / res.Makespan
		return math.Abs(res.Rate-wantRate) <= 1e-9*wantRate
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
