package sim

import (
	"testing"

	"github.com/gables-model/gables/internal/kernel"
	"github.com/gables-model/gables/internal/sim/noc"
	"github.com/gables-model/gables/internal/sim/thermal"
)

func fpKernel() kernel.Kernel {
	return kernel.Kernel{Name: "k", WorkingSet: 1 << 20, Trials: 2, FlopsPerWord: 8, Pattern: kernel.ReadWrite}
}

func fpBase() (Config, []Assignment, RunOptions) {
	return Snapdragon835(), []Assignment{{IP: "CPU", Kernel: fpKernel()}}, RunOptions{}
}

func TestFingerprintDeterministic(t *testing.T) {
	cfg, as, opt := fpBase()
	a := Fingerprint(cfg, as, opt)
	for i := 0; i < 100; i++ {
		if b := Fingerprint(cfg, as, opt); b != a {
			t.Fatalf("fingerprint not deterministic: %s vs %s", a, b)
		}
	}
	if len(a) != 64 {
		t.Fatalf("fingerprint length %d, want 64 hex chars", len(a))
	}
}

// TestFingerprintSensitivity mutates every semantically meaningful input
// one at a time and requires each mutation to move the key.
func TestFingerprintSensitivity(t *testing.T) {
	base, as, opt := fpBase()
	baseKey := Fingerprint(base, as, opt)

	mutations := map[string]func() string{
		"config name": func() string {
			c := base
			c.Name = "other"
			return Fingerprint(c, as, opt)
		},
		"dram bandwidth": func() string {
			c := base
			c.DRAMBandwidth *= 2
			return Fingerprint(c, as, opt)
		},
		"fabric bandwidth": func() string {
			c := base
			c.Fabrics = append([]noc.FabricSpec(nil), base.Fabrics...)
			c.Fabrics[0].Bandwidth *= 2
			return Fingerprint(c, as, opt)
		},
		"ip compute rate": func() string {
			c := base
			c.IPs = append([]IPSpec(nil), base.IPs...)
			c.IPs[0].ComputeRate *= 2
			return Fingerprint(c, as, opt)
		},
		"ip order": func() string {
			c := base
			c.IPs = append([]IPSpec(nil), base.IPs...)
			c.IPs[0], c.IPs[1] = c.IPs[1], c.IPs[0]
			return Fingerprint(c, as, opt)
		},
		"host": func() string {
			c := base
			c.Host = ""
			return Fingerprint(c, as, opt)
		},
		"thermal override": func() string {
			c := base
			tc := thermal.DefaultConfig()
			tc.ThrottleAt += 5
			c.Thermal = &tc
			return Fingerprint(c, as, opt)
		},
		"assignment ip": func() string {
			a2 := []Assignment{{IP: "GPU", Kernel: fpKernel()}}
			return Fingerprint(base, a2, opt)
		},
		"kernel working set": func() string {
			k := fpKernel()
			k.WorkingSet *= 2
			return Fingerprint(base, []Assignment{{IP: "CPU", Kernel: k}}, opt)
		},
		"kernel trials": func() string {
			k := fpKernel()
			k.Trials++
			return Fingerprint(base, []Assignment{{IP: "CPU", Kernel: k}}, opt)
		},
		"kernel flops per word": func() string {
			k := fpKernel()
			k.FlopsPerWord *= 2
			return Fingerprint(base, []Assignment{{IP: "CPU", Kernel: k}}, opt)
		},
		"kernel pattern": func() string {
			k := fpKernel()
			k.Pattern = kernel.ReadOnly
			return Fingerprint(base, []Assignment{{IP: "CPU", Kernel: k}}, opt)
		},
		"assignment count": func() string {
			a2 := append([]Assignment{}, as...)
			a2 = append(a2, Assignment{IP: "GPU", Kernel: fpKernel()})
			return Fingerprint(base, a2, opt)
		},
		"coordination": func() string {
			return Fingerprint(base, as, RunOptions{Coordination: true})
		},
		"thermal option": func() string {
			return Fingerprint(base, as, RunOptions{Thermal: true})
		},
		"max events": func() string {
			return Fingerprint(base, as, RunOptions{MaxEvents: 1000})
		},
	}
	seen := map[string]string{baseKey: "base"}
	for name, mutate := range mutations {
		key := mutate()
		if prev, dup := seen[key]; dup {
			t.Errorf("mutation %q collides with %q", name, prev)
			continue
		}
		seen[key] = name
	}
}

// TestFingerprintLabelInsensitive pins the documented exclusions: the
// kernel's display name never splits cache entries, and string boundaries
// cannot be shifted to forge a collision.
func TestFingerprintLabelInsensitive(t *testing.T) {
	base, _, opt := fpBase()
	k1, k2 := fpKernel(), fpKernel()
	k2.Name = "a completely different label"
	a := Fingerprint(base, []Assignment{{IP: "CPU", Kernel: k1}}, opt)
	b := Fingerprint(base, []Assignment{{IP: "CPU", Kernel: k2}}, opt)
	if a != b {
		t.Error("kernel display name must not affect the fingerprint")
	}

	// Length-prefixing: moving a byte across a string boundary must not
	// collide ("CPUx" host vs "CPU" host with trailing data elsewhere).
	c1, c2 := base, base
	c1.Name, c1.Host = "chipA", "CPU"
	c2.Name, c2.Host = "chip", "ACPU"
	if Fingerprint(c1, nil, opt) == Fingerprint(c2, nil, opt) {
		t.Error("shifting bytes across string boundaries must change the key")
	}
}

// TestFingerprintMaxEventsNormalized pins the 0 → DefaultMaxEvents
// normalization: both spellings run the same schedule, so they share a key.
func TestFingerprintMaxEventsNormalized(t *testing.T) {
	base, as, _ := fpBase()
	implicit := Fingerprint(base, as, RunOptions{})
	explicit := Fingerprint(base, as, RunOptions{MaxEvents: DefaultMaxEvents})
	if implicit != explicit {
		t.Error("MaxEvents 0 and DefaultMaxEvents must share a fingerprint")
	}
}
