package sim

import (
	"github.com/gables-model/gables/internal/sim/cpu"
	"github.com/gables-model/gables/internal/sim/dsp"
	"github.com/gables-model/gables/internal/sim/gpu"
	"github.com/gables-model/gables/internal/sim/noc"
	"github.com/gables-model/gables/internal/sim/thermal"
)

// Snapdragon835 returns the calibrated simulated SoC the experiment
// harness measures in place of the paper's silicon: the Kryo CPU complex
// and Adreno 540 on a high-bandwidth fabric, the Hexagon DSP scalar unit
// on a slower system fabric, and a 30 GB/s (stated theoretical peak) DRAM
// controller shared by everything.
func Snapdragon835() Config {
	return Config{
		Name:          "snapdragon-835-sim",
		DRAMBandwidth: 30e9,
		Fabrics: []noc.FabricSpec{
			{Name: "high-bandwidth", Bandwidth: 28e9},
			{Name: "system", Bandwidth: 12e9, Parent: "high-bandwidth"},
		},
		IPs: []IPSpec{
			{Config: cpu.Kryo835(), Fabric: "high-bandwidth"},
			{Config: gpu.Adreno540(), Fabric: "high-bandwidth"},
			{Config: dsp.Hexagon682Scalar(), Fabric: "system"},
		},
		Host:    "CPU",
		Thermal: &mobileThermal,
	}
}

// mobileThermal parameterizes the preset's throttle governor for the
// GPU-class heat the paper's benchmark generates: at ~25 pJ per
// single-precision op the Adreno at full rate dissipates ~8.7 W — far past
// a phone's ~3 W envelope — and trips the governor within tens of
// milliseconds of simulated time, while the scalar CPU and DSP stay cool.
var mobileThermal = thermal.Config{
	Ambient:       30,
	Resistance:    15,
	Capacitance:   0.02,
	IdlePower:     0.3,
	EnergyPerOp:   25e-12,
	ThrottleAt:    75,
	ResumeAt:      65,
	ThrottleScale: 0.6,
	Interval:      5e-3,
}

// Snapdragon835Extended augments the calibrated chip with the variants the
// paper discusses but does not fully measure: the NEON-vectorized CPU
// (">40 GFLOPS/s" per §IV-B) and the Hexagon HVX integer vector unit that
// §IV-D defers to future work because it "operates only on integer
// vectors" — on the simulated substrate the method change is simply that
// the kernel's ops count integer lane operations.
func Snapdragon835Extended() Config {
	c := Snapdragon835()
	c.Name = "snapdragon-835-sim-extended"
	simd := cpu.Kryo835SIMD()
	hvx := dsp.Hexagon682Vector()
	c.IPs = append(c.IPs,
		IPSpec{Config: simd, Fabric: "high-bandwidth"},
		IPSpec{Config: hvx, Fabric: "system"},
	)
	return c
}

// Snapdragon821 returns the older measured chipset, scaled the same way
// the soc catalog scales it: the paper reports its findings hold on both.
func Snapdragon821() Config {
	c := Snapdragon835()
	c.Name = "snapdragon-821-sim"
	c.DRAMBandwidth = 25.6e9
	for i := range c.IPs {
		switch c.IPs[i].Name {
		case "CPU":
			c.IPs[i].ComputeRate = 6.8e9
			c.IPs[i].LinkBandwidth = 18e9
		case "GPU":
			c.IPs[i].ComputeRate = 250e9
			c.IPs[i].LinkBandwidth = 20e9
		case "DSP":
			c.IPs[i].ComputeRate = 2.4e9
			c.IPs[i].LinkBandwidth = 4.5e9
		}
	}
	return c
}
