// Package trace is the simulated SoC's observability layer: a pluggable
// Probe interface that the discrete-event engine, the bandwidth servers,
// the IP pipelines, and the thermal governors emit structured events into,
// plus consumers that aggregate those events (Metrics) or export them as
// Chrome trace-event / Perfetto JSON (ChromeTracer, Session).
//
// The paper's evaluation (§IV) rests on measuring where time goes inside
// the SoC — per-IP busy windows, DRAM utilization, throttle trips — and
// this package makes the simulator's runs explainable the same way: every
// service window, queue-depth change, transfer hop, and governor decision
// is observable.
//
// # The zero-overhead contract
//
// Instrumentation must not perturb simulator semantics. Two hard rules,
// both enforced by tests:
//
//   - With no probe attached (the default), the hot path is a single nil
//     check per emission site: zero allocations, and event schedules that
//     are byte-identical to an uninstrumented build.
//   - With a probe attached, the simulation's RunResult is still bitwise
//     identical: probes observe, they never schedule, mutate capacities,
//     or otherwise feed back into the run. Probe implementations MUST NOT
//     call back into the engine or servers they observe.
//
// Probes are engine-scoped, not global: every run attaches its own probe
// (or none), so concurrent runs on the parallel harness never share
// mutable probe state unless the probe itself is thread-safe.
//
// # Event vocabulary
//
// Times are simulated seconds as float64 (the engine's Time flattened, so
// this package stays a leaf the whole sim tree can import). A chunk's
// per-hop transfer lifecycle surfaces twice: as HopStart/HopDone on the
// owning IP's pipeline slot, and as Enqueued/ServiceStart windows on the
// hop's server — the first gives the chunk's view, the second the
// resource's (queue depths and busy windows, including per-request windows
// inside a coalesced batch).
package trace

// Probe observes simulation internals. Implementations must be observe-only
// (see the package comment); any method may be called many millions of
// times per run, so implementations should avoid per-call allocation where
// practical (the nil-probe fast path in the emitters is what the
// zero-overhead contract actually guarantees).
type Probe interface {
	// EventDispatched fires once per engine event, just before the event's
	// closure runs. pending is the queue depth after the pop.
	EventDispatched(at float64, pending int)

	// Enqueued fires when a request joins a server's queue. depth is the
	// queue depth including the new request (a transfer hop's "start").
	Enqueued(server string, at, amount float64, depth int)

	// ServiceStart fires when a request's service window is fixed: the
	// window is [start, start+duration]. Coalescing servers fire it once
	// per request in the batch with each request's own window, so busy
	// accounting is identical with coalescing on or off. depth is the
	// queue depth after the dequeue.
	ServiceStart(server string, start, duration, amount float64, depth int)

	// HopStart / HopDone bracket one hop of a chunk's transfer path from
	// the owning IP's perspective: HopStart when the hop's server request
	// is issued, HopDone when that hop's service completes (a transfer
	// hop's "finish"). slot is the pipeline slot index, hop the position
	// on the path.
	HopStart(ip string, slot, hop int, server string, at, amount float64)
	HopDone(ip string, slot, hop int, server string, at float64)

	// ChunkStart / ChunkArrived bracket a chunk's occupancy of a pipeline
	// slot: launch of the transfer through arrival of the data (after any
	// memory latency), at which point its computation is queued and the
	// slot is recycled. index is the chunk's position in the kernel.
	ChunkStart(ip string, slot, index int, at, read, write, flops float64)
	ChunkArrived(ip string, slot, index int, at float64)

	// ChunkDone fires when a chunk's computation retires on the IP's
	// compute server, in issue order.
	ChunkDone(ip string, at, flops float64)

	// ThrottleTrip / ThrottleClear fire on thermal governor transitions;
	// ThermalSample fires once per governor sampling interval.
	ThrottleTrip(target string, at, temp float64)
	ThrottleClear(target string, at, temp float64)
	ThermalSample(target string, at, temp float64)
}

// Multi fans every probe event out to several consumers, in order — e.g.
// one Metrics aggregator plus one ChromeTracer over the same run.
type Multi []Probe

var _ Probe = Multi(nil)

// EventDispatched implements Probe.
func (m Multi) EventDispatched(at float64, pending int) {
	for _, p := range m {
		p.EventDispatched(at, pending)
	}
}

// Enqueued implements Probe.
func (m Multi) Enqueued(server string, at, amount float64, depth int) {
	for _, p := range m {
		p.Enqueued(server, at, amount, depth)
	}
}

// ServiceStart implements Probe.
func (m Multi) ServiceStart(server string, start, duration, amount float64, depth int) {
	for _, p := range m {
		p.ServiceStart(server, start, duration, amount, depth)
	}
}

// HopStart implements Probe.
func (m Multi) HopStart(ip string, slot, hop int, server string, at, amount float64) {
	for _, p := range m {
		p.HopStart(ip, slot, hop, server, at, amount)
	}
}

// HopDone implements Probe.
func (m Multi) HopDone(ip string, slot, hop int, server string, at float64) {
	for _, p := range m {
		p.HopDone(ip, slot, hop, server, at)
	}
}

// ChunkStart implements Probe.
func (m Multi) ChunkStart(ip string, slot, index int, at, read, write, flops float64) {
	for _, p := range m {
		p.ChunkStart(ip, slot, index, at, read, write, flops)
	}
}

// ChunkArrived implements Probe.
func (m Multi) ChunkArrived(ip string, slot, index int, at float64) {
	for _, p := range m {
		p.ChunkArrived(ip, slot, index, at)
	}
}

// ChunkDone implements Probe.
func (m Multi) ChunkDone(ip string, at, flops float64) {
	for _, p := range m {
		p.ChunkDone(ip, at, flops)
	}
}

// ThrottleTrip implements Probe.
func (m Multi) ThrottleTrip(target string, at, temp float64) {
	for _, p := range m {
		p.ThrottleTrip(target, at, temp)
	}
}

// ThrottleClear implements Probe.
func (m Multi) ThrottleClear(target string, at, temp float64) {
	for _, p := range m {
		p.ThrottleClear(target, at, temp)
	}
}

// ThermalSample implements Probe.
func (m Multi) ThermalSample(target string, at, temp float64) {
	for _, p := range m {
		p.ThermalSample(target, at, temp)
	}
}
