package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// ChromeTracer records probe events in the Chrome trace-event format
// ("JSON Object Format"), which Perfetto and chrome://tracing load
// directly. One tracer observes one run: the run becomes one "process"
// (pid) whose "threads" (tids) are tracks — one per server, one per IP
// pipeline slot, one per governor — so a multi-run Session renders each
// simulation as its own process lane.
//
// Event mapping:
//
//   - server service windows → complete ("X") slices on the server's track;
//   - queue depths → counter ("C") samples on the server's track, updated
//     at every enqueue and dequeue;
//   - chunk slot occupancy and per-hop transfers → nested begin/end
//     ("B"/"E") slices on the owning IP's per-slot track;
//   - throttle trips/clears → instant ("i") events, and junction
//     temperature → counter samples, on the governor's track;
//   - engine event dispatch → a cumulative counter sampled every
//     dispatchSampleEvery dispatches (per-event slices would dwarf the
//     trace without adding signal).
//
// Timestamps are simulated microseconds (the format's ts unit).
type ChromeTracer struct {
	label string
	pid   int

	events []chromeEvent
	tids   map[string]int
	order  []string // tid names in first-use order

	dispatched uint64
}

// dispatchSampleEvery is the engine-event counter sampling stride.
const dispatchSampleEvery = 1024

// chromeEvent is one trace-event record. Dur is a pointer so complete
// events keep an explicit dur of 0 while other phases omit the field.
type chromeEvent struct {
	Name string             `json:"name"`
	Ph   string             `json:"ph"`
	Ts   float64            `json:"ts"`
	Pid  int                `json:"pid"`
	Tid  int                `json:"tid"`
	Cat  string             `json:"cat,omitempty"`
	Dur  *float64           `json:"dur,omitempty"`
	S    string             `json:"s,omitempty"`
	Args map[string]float64 `json:"args,omitempty"`
}

// NewChromeTracer returns a tracer labeling its run's process `label`,
// emitting under the given pid.
func NewChromeTracer(label string, pid int) *ChromeTracer {
	return &ChromeTracer{label: label, pid: pid, tids: make(map[string]int)}
}

var _ Probe = (*ChromeTracer)(nil)

// Label returns the run label.
func (c *ChromeTracer) Label() string { return c.label }

// Events returns the number of recorded events so far.
func (c *ChromeTracer) Events() int { return len(c.events) }

func (c *ChromeTracer) tid(track string) int {
	id, ok := c.tids[track]
	if !ok {
		id = len(c.order)
		c.tids[track] = id
		c.order = append(c.order, track)
	}
	return id
}

// us converts simulated seconds to trace microseconds.
func us(at float64) float64 { return at * 1e6 }

// EventDispatched implements Probe.
func (c *ChromeTracer) EventDispatched(at float64, pending int) {
	c.dispatched++
	if c.dispatched%dispatchSampleEvery != 0 {
		return
	}
	c.events = append(c.events, chromeEvent{
		Name: "engine events", Ph: "C", Ts: us(at), Pid: c.pid, Tid: c.tid("engine"),
		Args: map[string]float64{"dispatched": float64(c.dispatched), "pending": float64(pending)},
	})
}

func (c *ChromeTracer) depthSample(server string, at float64, depth int) {
	c.events = append(c.events, chromeEvent{
		Name: "queue " + server, Ph: "C", Ts: us(at), Pid: c.pid, Tid: c.tid(server),
		Args: map[string]float64{"depth": float64(depth)},
	})
}

// Enqueued implements Probe.
func (c *ChromeTracer) Enqueued(server string, at, amount float64, depth int) {
	c.depthSample(server, at, depth)
}

// ServiceStart implements Probe.
func (c *ChromeTracer) ServiceStart(server string, start, duration, amount float64, depth int) {
	dur := us(duration)
	c.events = append(c.events, chromeEvent{
		Name: "service", Cat: "server", Ph: "X", Ts: us(start), Dur: &dur,
		Pid: c.pid, Tid: c.tid(server),
		Args: map[string]float64{"amount": amount},
	})
	c.depthSample(server, start, depth)
}

func slotTrack(ip string, slot int) string { return fmt.Sprintf("%s/slot%d", ip, slot) }

// HopStart implements Probe.
func (c *ChromeTracer) HopStart(ip string, slot, hop int, server string, at, amount float64) {
	c.events = append(c.events, chromeEvent{
		Name: fmt.Sprintf("hop%d %s", hop, server), Cat: "transfer", Ph: "B", Ts: us(at),
		Pid: c.pid, Tid: c.tid(slotTrack(ip, slot)),
		Args: map[string]float64{"amount": amount},
	})
}

// HopDone implements Probe.
func (c *ChromeTracer) HopDone(ip string, slot, hop int, server string, at float64) {
	c.events = append(c.events, chromeEvent{
		Name: fmt.Sprintf("hop%d %s", hop, server), Cat: "transfer", Ph: "E", Ts: us(at),
		Pid: c.pid, Tid: c.tid(slotTrack(ip, slot)),
	})
}

// ChunkStart implements Probe.
func (c *ChromeTracer) ChunkStart(ip string, slot, index int, at, read, write, flops float64) {
	c.events = append(c.events, chromeEvent{
		Name: fmt.Sprintf("chunk %d", index), Cat: "chunk", Ph: "B", Ts: us(at),
		Pid: c.pid, Tid: c.tid(slotTrack(ip, slot)),
		Args: map[string]float64{"read": read, "write": write, "flops": flops},
	})
}

// ChunkArrived implements Probe.
func (c *ChromeTracer) ChunkArrived(ip string, slot, index int, at float64) {
	c.events = append(c.events, chromeEvent{
		Name: fmt.Sprintf("chunk %d", index), Cat: "chunk", Ph: "E", Ts: us(at),
		Pid: c.pid, Tid: c.tid(slotTrack(ip, slot)),
	})
}

// ChunkDone implements Probe.
func (c *ChromeTracer) ChunkDone(ip string, at, flops float64) {
	c.events = append(c.events, chromeEvent{
		Name: "retire", Cat: "chunk", Ph: "i", S: "t", Ts: us(at),
		Pid: c.pid, Tid: c.tid(ip + "/retire"),
		Args: map[string]float64{"flops": flops},
	})
}

// ThrottleTrip implements Probe.
func (c *ChromeTracer) ThrottleTrip(target string, at, temp float64) {
	c.events = append(c.events, chromeEvent{
		Name: "throttle", Cat: "thermal", Ph: "i", S: "t", Ts: us(at),
		Pid: c.pid, Tid: c.tid(target + "/thermal"),
		Args: map[string]float64{"temp": temp},
	})
}

// ThrottleClear implements Probe.
func (c *ChromeTracer) ThrottleClear(target string, at, temp float64) {
	c.events = append(c.events, chromeEvent{
		Name: "resume", Cat: "thermal", Ph: "i", S: "t", Ts: us(at),
		Pid: c.pid, Tid: c.tid(target + "/thermal"),
		Args: map[string]float64{"temp": temp},
	})
}

// ThermalSample implements Probe.
func (c *ChromeTracer) ThermalSample(target string, at, temp float64) {
	c.events = append(c.events, chromeEvent{
		Name: "temp " + target, Ph: "C", Ts: us(at), Pid: c.pid, Tid: c.tid(target + "/thermal"),
		Args: map[string]float64{"celsius": temp},
	})
}

// chromeFile is the on-disk trace container.
type chromeFile struct {
	TraceEvents     []json.RawMessage `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
}

// metaEvent is a metadata record (string args, unlike the sample events).
type metaEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args"`
}

// appendJSON marshals the run's metadata and sample events into dst.
func (c *ChromeTracer) appendJSON(dst []json.RawMessage) ([]json.RawMessage, error) {
	name := c.label
	if name == "" {
		name = fmt.Sprintf("run %d", c.pid)
	}
	metas := []metaEvent{{Name: "process_name", Ph: "M", Pid: c.pid, Args: map[string]string{"name": name}}}
	for tid, track := range c.order {
		metas = append(metas, metaEvent{
			Name: "thread_name", Ph: "M", Pid: c.pid, Tid: tid,
			Args: map[string]string{"name": track},
		})
	}
	for _, m := range metas {
		raw, err := json.Marshal(m)
		if err != nil {
			return nil, err
		}
		dst = append(dst, raw)
	}
	for i := range c.events {
		raw, err := json.Marshal(&c.events[i])
		if err != nil {
			return nil, err
		}
		dst = append(dst, raw)
	}
	return dst, nil
}

// WriteJSON writes this single run as a complete trace file.
func (c *ChromeTracer) WriteJSON(w io.Writer) error {
	return writeChromeFile(w, []*ChromeTracer{c})
}

func writeChromeFile(w io.Writer, runs []*ChromeTracer) error {
	f := chromeFile{DisplayTimeUnit: "ns", TraceEvents: []json.RawMessage{}}
	for _, r := range runs {
		var err error
		f.TraceEvents, err = r.appendJSON(f.TraceEvents)
		if err != nil {
			return err
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

// ValidateStats summarizes a validated trace file.
type ValidateStats struct {
	Events    int // total records, metadata included
	Samples   int // non-metadata records
	Processes int
	Tracks    int
}

// Validate checks that data is a well-formed Chrome trace-event JSON file
// of the shape this package emits: a traceEvents array whose records all
// carry name/ph/pid/tid, complete events carry dur, counters carry args,
// and begin/end pairs balance per track. It is the schema check CI runs
// over emitted artifacts.
func Validate(data []byte) (ValidateStats, error) {
	var stats ValidateStats
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return stats, fmt.Errorf("trace: not valid JSON: %w", err)
	}
	if f.TraceEvents == nil {
		return stats, fmt.Errorf("trace: missing traceEvents array")
	}
	if len(f.TraceEvents) == 0 {
		return stats, fmt.Errorf("trace: empty traceEvents array")
	}
	procs := make(map[float64]bool)
	tracks := make(map[string]bool)
	depth := make(map[string]int) // B/E nesting per pid/tid
	for i, ev := range f.TraceEvents {
		ph, _ := ev["ph"].(string)
		name, nameOK := ev["name"].(string)
		pid, pidOK := ev["pid"].(float64)
		tid, tidOK := ev["tid"].(float64)
		if ph == "" || !nameOK || name == "" || !pidOK || !tidOK {
			return stats, fmt.Errorf("trace: event %d: missing name/ph/pid/tid", i)
		}
		procs[pid] = true
		key := fmt.Sprintf("%v/%v", pid, tid)
		tracks[key] = true
		if ph != "M" {
			stats.Samples++
			ts, ok := ev["ts"].(float64)
			if !ok || math.IsNaN(ts) || math.IsInf(ts, 0) || ts < 0 {
				return stats, fmt.Errorf("trace: event %d (%s): bad ts %v", i, name, ev["ts"])
			}
		}
		switch ph {
		case "X":
			dur, ok := ev["dur"].(float64)
			if !ok || dur < 0 || math.IsNaN(dur) || math.IsInf(dur, 0) {
				return stats, fmt.Errorf("trace: event %d (%s): complete event without valid dur", i, name)
			}
		case "C":
			if _, ok := ev["args"].(map[string]any); !ok {
				return stats, fmt.Errorf("trace: event %d (%s): counter without args", i, name)
			}
		case "B":
			depth[key]++
		case "E":
			depth[key]--
			if depth[key] < 0 {
				return stats, fmt.Errorf("trace: event %d (%s): end without begin on track %s", i, name, key)
			}
		case "M", "i":
			// metadata and instants need no extra fields
		default:
			return stats, fmt.Errorf("trace: event %d (%s): unknown phase %q", i, name, ph)
		}
	}
	trackKeys := make([]string, 0, len(depth))
	for key := range depth {
		trackKeys = append(trackKeys, key)
	}
	sort.Strings(trackKeys)
	for _, key := range trackKeys {
		if d := depth[key]; d != 0 {
			return stats, fmt.Errorf("trace: track %s: %d unbalanced begin events", key, d)
		}
	}
	stats.Events = len(f.TraceEvents)
	stats.Processes = len(procs)
	stats.Tracks = len(tracks)
	return stats, nil
}

// ValidateFile runs Validate over a file on disk.
func ValidateFile(path string) (ValidateStats, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return ValidateStats{}, err
	}
	return Validate(data)
}
