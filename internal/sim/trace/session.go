package trace

import (
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
)

// Session collects traces and metrics across the many simulation runs of
// one harness invocation (gables-repro's experiment registry, gables-erb's
// sweeps). Each run gets its own probe — runs on the parallel harness
// execute concurrently, and per-run probes keep the hot path lock-free —
// and the session merges them at reporting time. NewRun is safe for
// concurrent use; the per-run probes it returns are not (each belongs to
// exactly one run, like the engine it observes).
type Session struct {
	mu   sync.Mutex
	runs []*sessionRun
}

// sessionRun couples one run's two consumers.
type sessionRun struct {
	Multi
	chrome  *ChromeTracer
	metrics *Metrics
}

// NewSession returns an empty session.
func NewSession() *Session { return &Session{} }

// NewRun returns a fresh probe observing one simulation run under the
// given label. The label becomes the run's process name in the exported
// trace and its heading in summaries.
func (s *Session) NewRun(label string) Probe {
	s.mu.Lock()
	defer s.mu.Unlock()
	run := &sessionRun{
		chrome:  NewChromeTracer(label, len(s.runs)+1),
		metrics: NewMetrics(label),
	}
	run.Multi = Multi{run.metrics, run.chrome}
	s.runs = append(s.runs, run)
	globalRuns.Add(1)
	return run
}

// Runs returns how many run probes the session has handed out.
func (s *Session) Runs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.runs)
}

// sorted snapshots the runs ordered by (label, pid): parallel harnesses
// create runs in completion-dependent order, and sorting makes the
// exported artifacts deterministic for a deterministic workload.
func (s *Session) sorted() []*sessionRun {
	s.mu.Lock()
	defer s.mu.Unlock()
	runs := append([]*sessionRun(nil), s.runs...)
	sort.SliceStable(runs, func(i, j int) bool {
		if runs[i].chrome.label != runs[j].chrome.label {
			return runs[i].chrome.label < runs[j].chrome.label
		}
		return runs[i].chrome.pid < runs[j].chrome.pid
	})
	return runs
}

// WriteChrome writes every run as one Chrome trace-event JSON file, one
// process per run.
func (s *Session) WriteChrome(w io.Writer) error {
	runs := s.sorted()
	if len(runs) == 0 {
		return fmt.Errorf("trace: session observed no runs")
	}
	tracers := make([]*ChromeTracer, len(runs))
	for i, r := range runs {
		tracers[i] = r.chrome
	}
	n := 0
	for _, t := range tracers {
		n += t.Events()
	}
	globalEvents.Add(int64(n))
	return writeChromeFile(w, tracers)
}

// WriteChromeFile writes the merged trace to path.
func (s *Session) WriteChromeFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Summary merges every run's metrics. With exactly one run the result
// retains its window-level views (timelines, histograms); with several it
// is the aggregate counters.
func (s *Session) Summary() *Metrics {
	runs := s.sorted()
	if len(runs) == 1 {
		return runs[0].metrics
	}
	agg := NewMetrics(fmt.Sprintf("trace session (%d runs)", len(runs)))
	agg.Merged = 0
	for _, r := range runs {
		agg.Merge(r.metrics)
	}
	return agg
}

// WriteSummary writes the session's plain-text metrics summary.
func (s *Session) WriteSummary(w io.Writer) error {
	if s.Runs() == 0 {
		_, err := fmt.Fprintln(w, "trace session: no simulation runs observed")
		return err
	}
	return s.Summary().WriteSummary(w)
}

// Process-wide tracing counters, exposed through GlobalStats so the web
// /stats endpoint (and anything else sharing the snapshot shape) can report
// observability activity alongside the cache counters.
var (
	globalRuns   atomic.Int64
	globalEvents atomic.Int64
)

// GlobalStats is the process-wide tracing activity snapshot.
type GlobalStats struct {
	// RunsTraced counts run probes handed out by sessions in this
	// process.
	RunsTraced int64 `json:"runs_traced"`
	// EventsExported counts trace events written out by sessions.
	EventsExported int64 `json:"events_exported"`
}

// Stats snapshots the process-wide tracing counters.
func Stats() GlobalStats {
	return GlobalStats{RunsTraced: globalRuns.Load(), EventsExported: globalEvents.Load()}
}
