package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// feed pushes a small deterministic run through a probe: two servers, one
// IP with two chunks over a two-hop path, and a thermal excursion.
func feed(p Probe) {
	p.EventDispatched(0, 3)
	p.ChunkStart("CPU", 0, 0, 0, 1024, 512, 4096)
	p.HopStart("CPU", 0, 0, "CPU:link", 0, 1536)
	p.Enqueued("CPU:link", 0, 1536, 1)
	p.ServiceStart("CPU:link", 0, 0.25, 1536, 0)
	p.EventDispatched(0.25, 2)
	p.HopDone("CPU", 0, 0, "CPU:link", 0.25)
	p.HopStart("CPU", 0, 1, "dram", 0.25, 1536)
	p.Enqueued("dram", 0.25, 1536, 1)
	p.ServiceStart("dram", 0.25, 0.25, 1536, 0)
	p.EventDispatched(0.5, 1)
	p.HopDone("CPU", 0, 1, "dram", 0.5)
	p.ChunkArrived("CPU", 0, 0, 0.5)
	p.ChunkStart("CPU", 0, 1, 0.5, 1024, 512, 4096)
	p.HopStart("CPU", 0, 0, "CPU:link", 0.5, 1536)
	p.Enqueued("CPU:link", 0.5, 1536, 2)
	p.ServiceStart("CPU:link", 0.5, 0.5, 1536, 1)
	p.HopDone("CPU", 0, 0, "CPU:link", 1)
	p.ChunkArrived("CPU", 0, 1, 1)
	p.ChunkDone("CPU", 1, 4096)
	p.ThermalSample("CPU", 0.5, 55)
	p.ThrottleTrip("CPU", 0.75, 76)
	p.ThrottleClear("CPU", 1, 64)
	p.ChunkDone("CPU", 1, 4096)
	p.EventDispatched(1, 0)
}

func TestMetricsAggregation(t *testing.T) {
	m := NewMetrics("unit")
	feed(m)

	if m.Dispatched != 4 || m.MaxPending != 3 {
		t.Errorf("dispatch counters: %d/%d", m.Dispatched, m.MaxPending)
	}
	if m.Chunks != 2 || m.Hops != 3 {
		t.Errorf("pipeline counters: chunks %d hops %d", m.Chunks, m.Hops)
	}
	if m.ThrottleTrips != 1 || m.ThrottleClears != 1 || m.ThermalSamples != 1 {
		t.Errorf("thermal counters: %d/%d/%d", m.ThrottleTrips, m.ThrottleClears, m.ThermalSamples)
	}
	if m.MaxTemp != 76 {
		t.Errorf("MaxTemp = %v, want 76", m.MaxTemp)
	}
	if m.End != 1 {
		t.Errorf("End = %v, want 1", m.End)
	}
	link := m.Server("CPU:link")
	if link == nil || link.Requests != 2 || link.Enqueued != 2 || link.MaxDepth != 2 {
		t.Fatalf("link metrics = %+v", link)
	}
	if link.Busy != 0.75 {
		t.Errorf("link busy = %v, want 0.75", link.Busy)
	}
	if got := m.ServerNames(); len(got) != 2 || got[0] != "CPU:link" || got[1] != "dram" {
		t.Errorf("ServerNames = %v", got)
	}
}

func TestMetricsTimeline(t *testing.T) {
	m := NewMetrics("unit")
	feed(m)
	tl := m.Timeline("CPU:link", 4) // buckets of 0.25s over [0,1]
	if tl == nil {
		t.Fatal("timeline unavailable")
	}
	want := []float64{1, 0, 1, 1} // busy [0,0.25] and [0.5,1]
	for i := range want {
		if math.Abs(tl[i]-want[i]) > 1e-9 {
			t.Errorf("timeline[%d] = %v, want %v (full %v)", i, tl[i], want[i], tl)
		}
	}
	if m.Timeline("ghost", 4) != nil {
		t.Error("unknown server must yield nil")
	}
}

func TestMetricsHistogram(t *testing.T) {
	m := NewMetrics("unit")
	m.ServiceStart("dram", 0, 0.5, 1, 0)  // decade -1
	m.ServiceStart("dram", 1, 0.02, 1, 0) // decade -2
	m.ServiceStart("dram", 2, 0.05, 1, 0) // decade -2
	m.ServiceStart("dram", 3, 0, 1, 0)    // zero-duration bin
	hist := m.DurationHistogram("dram")
	if len(hist) != 3 {
		t.Fatalf("histogram = %+v", hist)
	}
	if hist[0].Decade != math.MinInt || hist[0].Count != 1 {
		t.Errorf("zero bin first: %+v", hist[0])
	}
	if hist[1].Decade != -2 || hist[1].Count != 2 || hist[2].Decade != -1 || hist[2].Count != 1 {
		t.Errorf("decades wrong: %+v", hist)
	}
}

func TestMetricsMerge(t *testing.T) {
	a, b := NewMetrics("a"), NewMetrics("b")
	feed(a)
	feed(b)
	b.ThermalSample("CPU", 2, 90) // push b's extremes past a's
	a.Merge(b)
	if a.Merged != 2 {
		t.Errorf("Merged = %d", a.Merged)
	}
	if a.Dispatched != 8 || a.Chunks != 4 {
		t.Errorf("summed counters: %d/%d", a.Dispatched, a.Chunks)
	}
	if a.MaxTemp != 90 || a.End != 2 {
		t.Errorf("maxes: temp %v end %v", a.MaxTemp, a.End)
	}
	if a.Timeline("CPU:link", 4) != nil || a.DurationHistogram("CPU:link") != nil {
		t.Error("window views must be unavailable after merging")
	}
	if link := a.Server("CPU:link"); link.Requests != 4 {
		t.Errorf("merged server requests = %d", link.Requests)
	}
}

func TestSummaryDeterministic(t *testing.T) {
	render := func() string {
		m := NewMetrics("unit")
		feed(m)
		var buf bytes.Buffer
		if err := m.WriteSummary(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	first := render()
	for i := 0; i < 10; i++ {
		if got := render(); got != first {
			t.Fatalf("summary not deterministic:\n%s\nvs\n%s", first, got)
		}
	}
	for _, want := range []string{"CPU:link", "dram", "throttle trips 1", "max temp 76.0"} {
		if !strings.Contains(first, want) {
			t.Errorf("summary missing %q:\n%s", want, first)
		}
	}
}

func TestMultiFansOut(t *testing.T) {
	a, b := NewMetrics("a"), NewMetrics("b")
	feed(Multi{a, b})
	if a.Dispatched != b.Dispatched || a.Chunks != b.Chunks || a.Hops != b.Hops {
		t.Errorf("fan-out diverged: %+v vs %+v", a, b)
	}
	if a.Dispatched == 0 {
		t.Error("fan-out delivered nothing")
	}
}

func TestChromeExportValidates(t *testing.T) {
	tracer := NewChromeTracer("unit", 1)
	feed(tracer)
	var buf bytes.Buffer
	if err := writeChromeFile(&buf, []*ChromeTracer{tracer}); err != nil {
		t.Fatal(err)
	}
	stats, err := Validate(buf.Bytes())
	if err != nil {
		t.Fatalf("exporter emitted an invalid trace: %v\n%s", err, buf.String())
	}
	if stats.Processes != 1 {
		t.Errorf("processes = %d, want 1", stats.Processes)
	}
	if stats.Tracks < 3 { // servers, slot track, governor
		t.Errorf("tracks = %d, want >= 3", stats.Tracks)
	}
}

func TestChromeExportDeterministic(t *testing.T) {
	render := func() string {
		tracer := NewChromeTracer("unit", 1)
		feed(tracer)
		var buf bytes.Buffer
		if err := writeChromeFile(&buf, []*ChromeTracer{tracer}); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	first := render()
	for i := 0; i < 5; i++ {
		if got := render(); got != first {
			t.Fatal("chrome export not deterministic")
		}
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":       `]`,
		"no events":      `{"traceEvents":[]}`,
		"missing fields": `{"traceEvents":[{"ph":"X","ts":0}]}`,
		"negative ts":    `{"traceEvents":[{"name":"a","ph":"i","ts":-1,"pid":1,"tid":1}]}`,
		"X without dur":  `{"traceEvents":[{"name":"a","ph":"X","ts":0,"pid":1,"tid":1}]}`,
		"C without args": `{"traceEvents":[{"name":"a","ph":"C","ts":0,"pid":1,"tid":1}]}`,
		"unbalanced B":   `{"traceEvents":[{"name":"a","ph":"B","ts":0,"pid":1,"tid":1}]}`,
		"E before B":     `{"traceEvents":[{"name":"a","ph":"E","ts":0,"pid":1,"tid":1}]}`,
		"unknown phase":  `{"traceEvents":[{"name":"a","ph":"Q","ts":0,"pid":1,"tid":1}]}`,
	}
	for name, doc := range cases {
		if _, err := Validate([]byte(doc)); err == nil {
			t.Errorf("%s: must be rejected", name)
		}
	}
}

func TestSessionSortsRunsDeterministically(t *testing.T) {
	render := func(order []string) string {
		s := NewSession()
		for _, label := range order {
			feed(s.NewRun(label))
		}
		var buf bytes.Buffer
		if err := s.WriteChrome(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	// Same labels created in different orders produce different pids, so
	// only the label ordering (not creation order) shapes the artifact's
	// section order; assert label-section ordering is sorted.
	out := render([]string{"beta", "alpha"})
	ia, ib := strings.Index(out, "alpha"), strings.Index(out, "beta")
	if ia < 0 || ib < 0 || ia > ib {
		t.Errorf("runs not emitted in label order (alpha@%d beta@%d)", ia, ib)
	}
}

func TestSessionSummaryAggregates(t *testing.T) {
	s := NewSession()
	feed(s.NewRun("a"))
	feed(s.NewRun("b"))
	m := s.Summary()
	if m.Merged != 2 || m.Dispatched != 8 {
		t.Errorf("aggregate = merged %d dispatched %d", m.Merged, m.Dispatched)
	}
	var buf bytes.Buffer
	if err := s.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "2 runs") {
		t.Errorf("summary: %s", buf.String())
	}

	empty := NewSession()
	if err := empty.WriteChrome(&buf); err == nil {
		t.Error("empty session must refuse to write a trace")
	}
}

func TestGlobalStatsCount(t *testing.T) {
	before := Stats()
	s := NewSession()
	feed(s.NewRun("stats"))
	var buf bytes.Buffer
	if err := s.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	after := Stats()
	if after.RunsTraced != before.RunsTraced+1 {
		t.Errorf("RunsTraced %d -> %d, want +1", before.RunsTraced, after.RunsTraced)
	}
	if after.EventsExported <= before.EventsExported {
		t.Errorf("EventsExported %d -> %d, want growth", before.EventsExported, after.EventsExported)
	}
}
