package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// Metrics aggregates probe events into the numbers the paper's evaluation
// reads off its instrumented runs: per-server (and therefore per-IP)
// utilization timelines, DRAM busy-window histograms, queue-depth extremes,
// and event-rate counters. One Metrics observes one run; it is not safe for
// concurrent use (attach one per run, merge afterwards — see Merge).
type Metrics struct {
	// Label names the run in summaries.
	Label string

	// Dispatched counts engine events; MaxPending is the deepest the
	// event queue got; End is the largest timestamp observed.
	Dispatched uint64
	MaxPending int
	End        float64

	// Hops, Chunks, ThrottleTrips, ThermalSamples count pipeline and
	// governor events across all IPs.
	Hops           uint64
	Chunks         uint64
	ThrottleTrips  uint64
	ThrottleClears uint64
	ThermalSamples uint64
	MaxTemp        float64

	// Merged counts how many runs were folded into this Metrics (1 for a
	// live collector). Window-derived views (timelines, histograms) are
	// only available when Merged == 1.
	Merged int

	servers map[string]*ServerMetrics
}

// ServerMetrics is one server's aggregate view.
type ServerMetrics struct {
	Requests int     // service windows observed
	Enqueued int     // requests queued
	Units    float64 // total units serviced
	Busy     float64 // total busy seconds
	MaxDepth int     // deepest queue observed (at enqueue)

	// windows are the per-request service windows (start, duration), in
	// service order; they back Timeline and DurationHistogram.
	windows []window
}

type window struct{ start, dur float64 }

// NewMetrics returns an empty collector.
func NewMetrics(label string) *Metrics {
	return &Metrics{Label: label, Merged: 1, servers: make(map[string]*ServerMetrics)}
}

var _ Probe = (*Metrics)(nil)

func (m *Metrics) server(name string) *ServerMetrics {
	s := m.servers[name]
	if s == nil {
		s = &ServerMetrics{}
		m.servers[name] = s
	}
	return s
}

func (m *Metrics) stamp(at float64) {
	if at > m.End {
		m.End = at
	}
}

// EventDispatched implements Probe.
func (m *Metrics) EventDispatched(at float64, pending int) {
	m.Dispatched++
	if pending > m.MaxPending {
		m.MaxPending = pending
	}
	m.stamp(at)
}

// Enqueued implements Probe.
func (m *Metrics) Enqueued(server string, at, amount float64, depth int) {
	s := m.server(server)
	s.Enqueued++
	if depth > s.MaxDepth {
		s.MaxDepth = depth
	}
	m.stamp(at)
}

// ServiceStart implements Probe.
func (m *Metrics) ServiceStart(server string, start, duration, amount float64, depth int) {
	s := m.server(server)
	s.Requests++
	s.Units += amount
	s.Busy += duration
	s.windows = append(s.windows, window{start: start, dur: duration})
	m.stamp(start + duration)
}

// HopStart implements Probe.
func (m *Metrics) HopStart(ip string, slot, hop int, server string, at, amount float64) {
	m.Hops++
	m.stamp(at)
}

// HopDone implements Probe.
func (m *Metrics) HopDone(ip string, slot, hop int, server string, at float64) { m.stamp(at) }

// ChunkStart implements Probe.
func (m *Metrics) ChunkStart(ip string, slot, index int, at, read, write, flops float64) {
	m.Chunks++
	m.stamp(at)
}

// ChunkArrived implements Probe.
func (m *Metrics) ChunkArrived(ip string, slot, index int, at float64) { m.stamp(at) }

// ChunkDone implements Probe.
func (m *Metrics) ChunkDone(ip string, at, flops float64) { m.stamp(at) }

// ThrottleTrip implements Probe.
func (m *Metrics) ThrottleTrip(target string, at, temp float64) {
	m.ThrottleTrips++
	m.noteTemp(at, temp)
}

// ThrottleClear implements Probe.
func (m *Metrics) ThrottleClear(target string, at, temp float64) {
	m.ThrottleClears++
	m.noteTemp(at, temp)
}

// ThermalSample implements Probe.
func (m *Metrics) ThermalSample(target string, at, temp float64) {
	m.ThermalSamples++
	m.noteTemp(at, temp)
}

func (m *Metrics) noteTemp(at, temp float64) {
	if temp > m.MaxTemp {
		m.MaxTemp = temp
	}
	m.stamp(at)
}

// ServerNames returns the observed server names, sorted.
func (m *Metrics) ServerNames() []string {
	names := make([]string, 0, len(m.servers))
	for n := range m.servers {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Server returns one server's metrics, or nil if it was never observed.
func (m *Metrics) Server(name string) *ServerMetrics { return m.servers[name] }

// Timeline buckets a server's busy time over [0, End] into `buckets`
// equal-width bins and returns each bin's busy fraction in [0, ~1].
// Available only on un-merged metrics (nil otherwise).
func (m *Metrics) Timeline(server string, buckets int) []float64 {
	s := m.servers[server]
	if s == nil || m.Merged != 1 || buckets <= 0 || m.End <= 0 {
		return nil
	}
	out := make([]float64, buckets)
	width := m.End / float64(buckets)
	for _, w := range s.windows {
		lo, hi := w.start, w.start+w.dur
		for b := 0; b < buckets; b++ {
			bLo, bHi := float64(b)*width, float64(b+1)*width
			overlap := math.Min(hi, bHi) - math.Max(lo, bLo)
			if overlap > 0 {
				out[b] += overlap
			}
		}
	}
	for b := range out {
		out[b] /= width
	}
	return out
}

// HistBin is one bin of a log10 service-duration histogram: durations in
// [10^Decade, 10^(Decade+1)) seconds.
type HistBin struct {
	Decade int
	Count  int
}

// DurationHistogram returns the server's service-window durations bucketed
// by decade (the "DRAM busy histogram" when applied to the dram server).
// Zero-duration windows are counted in a dedicated Decade = math.MinInt
// bin, reported first. Available only on un-merged metrics (nil otherwise).
func (m *Metrics) DurationHistogram(server string) []HistBin {
	s := m.servers[server]
	if s == nil || m.Merged != 1 {
		return nil
	}
	counts := make(map[int]int)
	for _, w := range s.windows {
		bin := math.MinInt
		if w.dur > 0 {
			bin = int(math.Floor(math.Log10(w.dur)))
		}
		counts[bin]++
	}
	decades := make([]int, 0, len(counts))
	for d := range counts {
		decades = append(decades, d)
	}
	sort.Ints(decades)
	out := make([]HistBin, 0, len(decades))
	for _, d := range decades {
		out = append(out, HistBin{Decade: d, Count: counts[d]})
	}
	return out
}

// Merge folds other into m: counters add, extremes take the max, and
// window-derived views become unavailable (Merged > 1). Sessions use it to
// aggregate a whole harness invocation.
func (m *Metrics) Merge(other *Metrics) {
	m.Dispatched += other.Dispatched
	m.Hops += other.Hops
	m.Chunks += other.Chunks
	m.ThrottleTrips += other.ThrottleTrips
	m.ThrottleClears += other.ThrottleClears
	m.ThermalSamples += other.ThermalSamples
	if other.MaxPending > m.MaxPending {
		m.MaxPending = other.MaxPending
	}
	if other.MaxTemp > m.MaxTemp {
		m.MaxTemp = other.MaxTemp
	}
	if other.End > m.End {
		m.End = other.End
	}
	m.Merged += other.Merged
	for name, os := range other.servers {
		s := m.server(name)
		s.Requests += os.Requests
		s.Enqueued += os.Enqueued
		s.Units += os.Units
		s.Busy += os.Busy
		if os.MaxDepth > s.MaxDepth {
			s.MaxDepth = os.MaxDepth
		}
	}
}

// summaryBuckets is the timeline resolution WriteSummary prints.
const summaryBuckets = 20

// WriteSummary renders the plain-text metrics summary: run-level counters,
// then one block per server (sorted by name) with busy accounting, queue
// depth, and — for single runs — a utilization timeline and, for the DRAM
// controller, a busy-window histogram. Output is deterministic.
func (m *Metrics) WriteSummary(w io.Writer) error {
	label := m.Label
	if label == "" {
		label = "run"
	}
	rate := 0.0
	if m.End > 0 {
		rate = float64(m.Dispatched) / m.End
	}
	if _, err := fmt.Fprintf(w, "%s: %d runs, %d events over %.6gs simulated (%.3g events/simulated-s), max queue %d\n",
		label, m.Merged, m.Dispatched, m.End, rate, m.MaxPending); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  chunks %d, transfer hops %d, throttle trips %d (clears %d), thermal samples %d",
		m.Chunks, m.Hops, m.ThrottleTrips, m.ThrottleClears, m.ThermalSamples); err != nil {
		return err
	}
	if m.ThermalSamples > 0 {
		if _, err := fmt.Fprintf(w, ", max temp %.1f°C", m.MaxTemp); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, name := range m.ServerNames() {
		s := m.servers[name]
		util := 0.0
		if m.End > 0 && m.Merged == 1 {
			util = s.Busy / m.End
		}
		if _, err := fmt.Fprintf(w, "  %-24s %8d served  %12.4g units  busy %.6gs", name, s.Requests, s.Units, s.Busy); err != nil {
			return err
		}
		if m.Merged == 1 {
			if _, err := fmt.Fprintf(w, "  util %5.1f%%", 100*util); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "  max depth %d\n", s.MaxDepth); err != nil {
			return err
		}
		if tl := m.Timeline(name, summaryBuckets); tl != nil {
			if _, err := fmt.Fprintf(w, "    timeline%% "); err != nil {
				return err
			}
			for _, f := range tl {
				if _, err := fmt.Fprintf(w, " %3.0f", 100*f); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
	}
	// The DRAM controller is the shared bottleneck the paper's model is
	// built around; give its busy windows a histogram.
	if hist := m.DurationHistogram("dram"); len(hist) > 0 {
		if _, err := fmt.Fprintf(w, "  dram busy-window histogram (count per decade of seconds):\n"); err != nil {
			return err
		}
		for _, b := range hist {
			lbl := "=0"
			if b.Decade != math.MinInt {
				lbl = fmt.Sprintf("1e%d", b.Decade)
			}
			if _, err := fmt.Fprintf(w, "    %-6s %d\n", lbl, b.Count); err != nil {
				return err
			}
		}
	}
	return nil
}
