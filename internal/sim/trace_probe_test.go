package sim

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"github.com/gables-model/gables/internal/kernel"
	"github.com/gables-model/gables/internal/sim/engine"
	"github.com/gables-model/gables/internal/sim/trace"
)

// requireBitwiseEqual asserts two run results are bitwise identical —
// float comparison via IEEE-754 bits, not tolerance, because the tracing
// layer's contract is "observes, never perturbs".
func requireBitwiseEqual(t *testing.T, label string, a, b *RunResult) {
	t.Helper()
	feq := func(field string, x, y float64) {
		if math.Float64bits(x) != math.Float64bits(y) {
			t.Errorf("%s: %s differs: %v (%#x) vs %v (%#x)",
				label, field, x, math.Float64bits(x), y, math.Float64bits(y))
		}
	}
	feq("Makespan", a.Makespan, b.Makespan)
	feq("TotalFlops", a.TotalFlops, b.TotalFlops)
	feq("Rate", a.Rate, b.Rate)
	feq("DRAMUtilization", a.DRAMUtilization, b.DRAMUtilization)
	if len(a.IPs) != len(b.IPs) {
		t.Fatalf("%s: IP result count differs: %d vs %d", label, len(a.IPs), len(b.IPs))
	}
	for i := range a.IPs {
		x, y := a.IPs[i], b.IPs[i]
		if x.IP != y.IP || x.Throttled != y.Throttled {
			t.Errorf("%s: IPs[%d] identity/throttle differs: %+v vs %+v", label, i, x, y)
		}
		feq("IPs.Flops", x.Flops, y.Flops)
		feq("IPs.Bytes", x.Bytes, y.Bytes)
		feq("IPs.Time", x.Time, y.Time)
		feq("IPs.Rate", x.Rate, y.Rate)
		feq("IPs.Bandwidth", x.Bandwidth, y.Bandwidth)
		feq("IPs.MaxTemp", x.MaxTemp, y.MaxTemp)
	}
}

// TestProbeDoesNotPerturbResults is the tracing layer's acceptance test:
// for every run shape (concurrent IPs, coordination, thermal throttling),
// the RunResult with a full session probe attached is bitwise identical to
// the untraced run, and the exported trace is structurally valid.
func TestProbeDoesNotPerturbResults(t *testing.T) {
	rw := func(fpw int) kernel.Kernel {
		return kernel.Kernel{Name: "rw", WorkingSet: 4 << 20, Trials: 2,
			FlopsPerWord: fpw, Pattern: kernel.ReadWrite}
	}
	cases := []struct {
		name        string
		assignments []Assignment
		opt         RunOptions
	}{
		{"single-ip", []Assignment{{IP: "CPU", Kernel: rw(8)}}, RunOptions{}},
		{"concurrent", []Assignment{{IP: "CPU", Kernel: rw(8)}, {IP: "GPU", Kernel: rw(64)}}, RunOptions{}},
		{"coordination", []Assignment{{IP: "CPU", Kernel: rw(8)}, {IP: "GPU", Kernel: rw(64)}}, RunOptions{Coordination: true}},
		{"thermal", []Assignment{{IP: "CPU", Kernel: rw(512)}}, RunOptions{Thermal: true}},
		{"thermal-coordination", []Assignment{{IP: "CPU", Kernel: rw(512)}, {IP: "DSP", Kernel: rw(64)}}, RunOptions{Thermal: true, Coordination: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sys := mustSystem(t, Snapdragon835())
			plain, err := sys.Run(tc.assignments, tc.opt)
			if err != nil {
				t.Fatal(err)
			}

			session := trace.NewSession()
			opt := tc.opt
			opt.Probe = session.NewRun(tc.name)
			traced, err := sys.Run(tc.assignments, opt)
			if err != nil {
				t.Fatal(err)
			}

			requireBitwiseEqual(t, tc.name, plain, traced)

			var buf bytes.Buffer
			if err := session.WriteChrome(&buf); err != nil {
				t.Fatal(err)
			}
			stats, err := trace.Validate(buf.Bytes())
			if err != nil {
				t.Fatalf("exported trace invalid: %v", err)
			}
			if stats.Events == 0 || stats.Tracks < 2 {
				t.Errorf("trace suspiciously empty: %+v", stats)
			}

			// The metrics view must agree with the simulated outcome.
			m := session.Summary()
			if m.Dispatched == 0 {
				t.Error("metrics saw no dispatches")
			}
			if m.End <= 0 || m.End < plain.Makespan-1e-12 {
				t.Errorf("metrics End %v vs makespan %v", m.End, plain.Makespan)
			}
			if dram := m.Server("dram"); dram == nil || dram.Requests == 0 {
				t.Error("metrics missed the DRAM server")
			}
			if tc.opt.Thermal && m.ThermalSamples == 0 {
				t.Error("thermal run produced no thermal samples")
			}
		})
	}
}

// TestProbeRerunIdentical guards against probe state leaking between runs:
// tracing the same system twice gives the same results both times.
func TestProbeRerunIdentical(t *testing.T) {
	sys := mustSystem(t, Snapdragon835())
	k := kernel.Kernel{Name: "rw", WorkingSet: 2 << 20, Trials: 2,
		FlopsPerWord: 16, Pattern: kernel.ReadWrite}
	session := trace.NewSession()
	first, err := sys.Run([]Assignment{{IP: "GPU", Kernel: k}}, RunOptions{Probe: session.NewRun("a")})
	if err != nil {
		t.Fatal(err)
	}
	second, err := sys.Run([]Assignment{{IP: "GPU", Kernel: k}}, RunOptions{Probe: session.NewRun("b")})
	if err != nil {
		t.Fatal(err)
	}
	requireBitwiseEqual(t, "rerun", first, second)
	if session.Runs() != 2 {
		t.Errorf("session recorded %d runs, want 2", session.Runs())
	}
}

// TestMaxEventsGuardNamed pins the livelock guard's diagnosability: the
// error from Run must name the guard, the event count it allowed, and the
// simulated time reached, and unwrap to engine.LimitError.
func TestMaxEventsGuardNamed(t *testing.T) {
	sys := mustSystem(t, Snapdragon835())
	_, err := sys.Run([]Assignment{{IP: "CPU", Kernel: bigRW(8)}}, RunOptions{MaxEvents: 50})
	if err == nil {
		t.Fatal("a 50-event cap must trip on a real kernel")
	}
	msg := err.Error()
	for _, want := range []string{"MaxEvents guard (50)", "50 events", "simulated"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q must contain %q", msg, want)
		}
	}
	var le *engine.LimitError
	if !errors.As(err, &le) {
		t.Fatalf("error %T must unwrap to *engine.LimitError", err)
	}
	if le.Limit != 50 || le.Processed != 50 {
		t.Errorf("LimitError = %+v, want limit=processed=50", le)
	}
}
