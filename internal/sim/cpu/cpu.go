// Package cpu provides calibrated CPU-complex configurations for the
// simulated SoC. The Kryo835 preset is tuned so the §IV methodology —
// running Algorithm 1 and fitting the achieved ceiling — reproduces the
// paper's Figure 7a measurements.
package cpu

import "github.com/gables-model/gables/internal/sim/ip"

// Kryo835 models the Snapdragon 835's Kryo CPU complex (8 cores up to
// 1.9 GHz) as measured by the paper's non-NEON micro-benchmark:
//
//   - 7.5 GFLOPS/s scalar single-precision peak (the paper notes >40 with
//     SIMD vectorization enabled; see Kryo835SIMD);
//   - ~20 GB/s best-case (read-only) DRAM bandwidth, consistent with the
//     §IV-B footnote's read-only run, STREAM and lmbench;
//   - a write penalty of ~1.649 at the memory interface, so the paper's
//     read+write kernel observes 8/(4+4·1.649)·20 ≈ 15.1 GB/s;
//   - 2 MiB of last-level cache at much higher hit bandwidth, giving the
//     small-footprint bandwidth lift §IV-B mentions.
func Kryo835() ip.Config {
	return ip.Config{
		Name:           "CPU",
		ComputeRate:    7.5e9,
		LinkBandwidth:  20e9,
		WritePenalty:   1.649,
		CacheSize:      2 << 20,
		CacheBandwidth: 80e9,
		MaxInflight:    4,
	}
}

// Kryo835SIMD is the vectorized variant: the paper reports that compiler
// NEON vectorization pushes the same benchmark past 40 GFLOPS/s. Memory
// parameters are unchanged — SIMD raises the roof, not the slope.
func Kryo835SIMD() ip.Config {
	c := Kryo835()
	c.Name = "CPU-SIMD"
	c.ComputeRate = 42e9
	return c
}
