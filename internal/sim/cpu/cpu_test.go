package cpu

import "testing"

func TestPresetsValid(t *testing.T) {
	for _, cfg := range []struct {
		name string
		c    interface{ Validate() error }
	}{} {
		_ = cfg
	}
	k := Kryo835()
	if err := k.Validate(); err != nil {
		t.Errorf("Kryo835: %v", err)
	}
	if k.ComputeRate != 7.5e9 {
		t.Errorf("Kryo835 peak = %v, paper measures 7.5 GFLOPS/s", k.ComputeRate)
	}
	// The calibration identity behind the 15.1 GB/s read+write figure:
	// 8 bytes moved per (4 + 4·penalty) serviced at the 20 GB/s link.
	eff := 8.0 / (4 + 4*k.WritePenalty) * k.LinkBandwidth
	if eff < 15.0e9 || eff > 15.2e9 {
		t.Errorf("effective RW bandwidth = %v, want ~15.1e9", eff)
	}
	s := Kryo835SIMD()
	if err := s.Validate(); err != nil {
		t.Errorf("Kryo835SIMD: %v", err)
	}
	if s.ComputeRate <= 40e9 {
		t.Errorf("SIMD peak = %v, paper reports >40 GFLOPS/s", s.ComputeRate)
	}
	if s.LinkBandwidth != k.LinkBandwidth {
		t.Error("SIMD must not change the memory side")
	}
}
