package sim

import (
	"math"
	"testing"

	"github.com/gables-model/gables/internal/kernel"
	"github.com/gables-model/gables/internal/sim/ip"
	"github.com/gables-model/gables/internal/sim/noc"
)

func mustSystem(t *testing.T, cfg Config) *System {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// bigRW returns a large-footprint read+write kernel at the given flops per
// word — the §IV-A CPU methodology.
func bigRW(fpw int) kernel.Kernel {
	return kernel.Kernel{Name: "rw", WorkingSet: 16 << 20, Trials: 3,
		FlopsPerWord: fpw, Pattern: kernel.ReadWrite}
}

func TestConfigValidation(t *testing.T) {
	good := Snapdragon835()
	if err := good.Validate(); err != nil {
		t.Fatalf("preset invalid: %v", err)
	}

	bad := Snapdragon835()
	bad.DRAMBandwidth = 0
	if _, err := New(bad); err == nil {
		t.Error("zero DRAM must be rejected")
	}

	bad = Snapdragon835()
	bad.IPs = nil
	if _, err := New(bad); err == nil {
		t.Error("no IPs must be rejected")
	}

	bad = Snapdragon835()
	bad.IPs = append(bad.IPs, bad.IPs[0])
	if _, err := New(bad); err == nil {
		t.Error("duplicate IP must be rejected")
	}

	bad = Snapdragon835()
	bad.IPs[0].Fabric = "ghost"
	if _, err := New(bad); err == nil {
		t.Error("unknown fabric must be rejected")
	}

	bad = Snapdragon835()
	bad.Host = "ghost"
	if _, err := New(bad); err == nil {
		t.Error("unknown host must be rejected")
	}

	bad = Snapdragon835()
	bad.Host = ""
	if _, err := New(bad); err == nil {
		t.Error("coordination costs without a host must be rejected")
	}
}

func TestRunValidation(t *testing.T) {
	s := mustSystem(t, Snapdragon835())
	if _, err := s.Run(nil, RunOptions{}); err == nil {
		t.Error("empty assignments must be rejected")
	}
	if _, err := s.Run([]Assignment{{IP: "ghost", Kernel: bigRW(4)}}, RunOptions{}); err == nil {
		t.Error("unknown IP must be rejected")
	}
	dup := []Assignment{{IP: "CPU", Kernel: bigRW(4)}, {IP: "CPU", Kernel: bigRW(4)}}
	if _, err := s.Run(dup, RunOptions{}); err == nil {
		t.Error("double assignment must be rejected")
	}
	if _, err := s.Run([]Assignment{{IP: "CPU", Kernel: bigRW(4)}},
		RunOptions{MaxEvents: -1}); err == nil {
		t.Error("negative MaxEvents must be rejected, not silently disable the livelock guard")
	}
}

// TestCalibrationCPU checks the simulated CPU reproduces the paper's
// Figure 7a ceilings: 7.5 GFLOPS/s peak and 15.1 GB/s read+write DRAM
// bandwidth (~20 GB/s read-only).
func TestCalibrationCPU(t *testing.T) {
	s := mustSystem(t, Snapdragon835())

	// High intensity → compute plateau.
	res, err := s.Run([]Assignment{{IP: "CPU", Kernel: bigRW(512)}}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.IPs[0].Rate; math.Abs(got-7.5e9)/7.5e9 > 0.02 {
		t.Errorf("CPU peak = %v, want ~7.5e9", got)
	}

	// Low intensity, read+write → 15.1 GB/s.
	res, err = s.Run([]Assignment{{IP: "CPU", Kernel: bigRW(1)}}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.IPs[0].Bandwidth; math.Abs(got-15.1e9)/15.1e9 > 0.03 {
		t.Errorf("CPU RW bandwidth = %v, want ~15.1e9", got)
	}

	// Read-only sanity check from the §IV-B footnote: ~20 GB/s.
	ro := kernel.Kernel{Name: "ro", WorkingSet: 16 << 20, Trials: 3,
		FlopsPerWord: 1, Pattern: kernel.ReadOnly}
	res, err = s.Run([]Assignment{{IP: "CPU", Kernel: ro}}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.IPs[0].Bandwidth; math.Abs(got-20e9)/20e9 > 0.03 {
		t.Errorf("CPU RO bandwidth = %v, want ~20e9", got)
	}
}

// TestCalibrationGPU checks Figure 7b: 349.6 GFLOPS/s and 24.4 GB/s on the
// stream kernel, device-resident (no coordination).
func TestCalibrationGPU(t *testing.T) {
	s := mustSystem(t, Snapdragon835())
	hot := kernel.Kernel{Name: "hot", WorkingSet: 16 << 20, Trials: 3,
		FlopsPerWord: 2048, Pattern: kernel.StreamCopy}
	res, err := s.Run([]Assignment{{IP: "GPU", Kernel: hot}}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.IPs[0].Rate; math.Abs(got-349.6e9)/349.6e9 > 0.03 {
		t.Errorf("GPU peak = %v, want ~349.6e9", got)
	}

	cold := kernel.Kernel{Name: "cold", WorkingSet: 16 << 20, Trials: 3,
		FlopsPerWord: 1, Pattern: kernel.StreamCopy}
	res, err = s.Run([]Assignment{{IP: "GPU", Kernel: cold}}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.IPs[0].Bandwidth; math.Abs(got-24.4e9)/24.4e9 > 0.03 {
		t.Errorf("GPU bandwidth = %v, want ~24.4e9", got)
	}
}

// TestCalibrationDSP checks Figure 9: 3.0 GFLOPS/s and the slower-fabric
// 5.4 GB/s.
func TestCalibrationDSP(t *testing.T) {
	s := mustSystem(t, Snapdragon835())
	hot := kernel.Kernel{Name: "hot", WorkingSet: 8 << 20, Trials: 3,
		FlopsPerWord: 512, Pattern: kernel.ReadWrite}
	res, err := s.Run([]Assignment{{IP: "DSP", Kernel: hot}}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.IPs[0].Rate; math.Abs(got-3.0e9)/3.0e9 > 0.03 {
		t.Errorf("DSP peak = %v, want ~3.0e9", got)
	}

	cold := kernel.Kernel{Name: "cold", WorkingSet: 8 << 20, Trials: 3,
		FlopsPerWord: 1, Pattern: kernel.ReadWrite}
	res, err = s.Run([]Assignment{{IP: "DSP", Kernel: cold}}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.IPs[0].Bandwidth; math.Abs(got-5.4e9)/5.4e9 > 0.03 {
		t.Errorf("DSP bandwidth = %v, want ~5.4e9", got)
	}
}

// TestDRAMContention runs CPU and GPU bandwidth-hungry kernels together:
// combined demand (20 + 24.4 GB/s at the interfaces) exceeds the shared
// 30 GB/s DRAM and both slow down relative to solo runs.
func TestDRAMContention(t *testing.T) {
	s := mustSystem(t, Snapdragon835())
	cpuK := kernel.Kernel{Name: "c", WorkingSet: 16 << 20, Trials: 3,
		FlopsPerWord: 1, Pattern: kernel.ReadOnly}
	gpuK := kernel.Kernel{Name: "g", WorkingSet: 16 << 20, Trials: 3,
		FlopsPerWord: 1, Pattern: kernel.StreamCopy}

	soloCPU, err := s.Run([]Assignment{{IP: "CPU", Kernel: cpuK}}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	soloGPU, err := s.Run([]Assignment{{IP: "GPU", Kernel: gpuK}}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	both, err := s.Run([]Assignment{
		{IP: "CPU", Kernel: cpuK}, {IP: "GPU", Kernel: gpuK},
	}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cpuBW, gpuBW := both.IPs[0].Bandwidth, both.IPs[1].Bandwidth
	if cpuBW >= soloCPU.IPs[0].Bandwidth*0.98 && gpuBW >= soloGPU.IPs[0].Bandwidth*0.98 {
		t.Errorf("no contention observed: CPU %v vs %v, GPU %v vs %v",
			cpuBW, soloCPU.IPs[0].Bandwidth, gpuBW, soloGPU.IPs[0].Bandwidth)
	}
	// Combined bandwidth cannot exceed the DRAM controller.
	combined := (both.IPs[0].Bytes + both.IPs[1].Bytes) / both.Makespan
	if combined > 30e9*1.01 {
		t.Errorf("combined bandwidth %v exceeds DRAM 30e9", combined)
	}
	if both.DRAMUtilization < 0.8 {
		t.Errorf("DRAM utilization = %v, want near saturation", both.DRAMUtilization)
	}
}

// TestCoordinationSlowdown reproduces the Figure 8 low-intensity shape:
// offloading everything to the GPU at one flop per byte is *slower* than
// the CPU-only baseline once the host coordination cost is charged.
func TestCoordinationSlowdown(t *testing.T) {
	s := mustSystem(t, Snapdragon835())
	base, err := s.Run([]Assignment{{IP: "CPU", Kernel: bigRW(8)}}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gpuK := kernel.Kernel{Name: "g", WorkingSet: 16 << 20, Trials: 3,
		FlopsPerWord: 8, Pattern: kernel.ReadWrite}
	offload, err := s.Run([]Assignment{{IP: "GPU", Kernel: gpuK}},
		RunOptions{Coordination: true})
	if err != nil {
		t.Fatal(err)
	}
	if offload.Rate >= base.Rate {
		t.Errorf("low-I offload rate %v must fall below CPU baseline %v",
			offload.Rate, base.Rate)
	}

	// And at very high intensity, offload wins big (the 39.4× region).
	hot := kernel.Kernel{Name: "hot", WorkingSet: 16 << 20, Trials: 3,
		FlopsPerWord: 8192, Pattern: kernel.ReadWrite}
	baseHot, err := s.Run([]Assignment{{IP: "CPU", Kernel: hot}}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	offloadHot, err := s.Run([]Assignment{{IP: "GPU", Kernel: hot}},
		RunOptions{Coordination: true})
	if err != nil {
		t.Fatal(err)
	}
	speedup := offloadHot.Rate / baseHot.Rate
	if speedup < 20 {
		t.Errorf("high-I offload speedup = %v, want the tens", speedup)
	}
}

func TestThermalRun(t *testing.T) {
	s := mustSystem(t, Snapdragon835())
	// A long compute-heavy GPU run: 349.6 Gops/s at 0.4 nJ/op is ~140 W
	// in the default thermal model — instant throttle. Use a long-enough
	// kernel that the governor engages.
	k := kernel.Kernel{Name: "hot", WorkingSet: 32 << 20, Trials: 8,
		FlopsPerWord: 2048, Pattern: kernel.StreamCopy}
	controlled, err := s.Run([]Assignment{{IP: "GPU", Kernel: k}}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	throttled, err := s.Run([]Assignment{{IP: "GPU", Kernel: k}}, RunOptions{Thermal: true})
	if err != nil {
		t.Fatal(err)
	}
	if !throttled.IPs[0].Throttled {
		t.Errorf("sustained FP load must throttle (peak temp %v)", throttled.IPs[0].MaxTemp)
	}
	if throttled.Rate >= controlled.Rate*0.99 {
		t.Errorf("throttled rate %v must sag below controlled %v",
			throttled.Rate, controlled.Rate)
	}
	if controlled.IPs[0].Throttled {
		t.Error("thermally controlled run must not report throttling")
	}
}

func TestSnapdragon821Preset(t *testing.T) {
	s := mustSystem(t, Snapdragon821())
	res, err := s.Run([]Assignment{{IP: "CPU", Kernel: bigRW(512)}}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.IPs[0].Rate; math.Abs(got-6.8e9)/6.8e9 > 0.02 {
		t.Errorf("821 CPU peak = %v, want ~6.8e9", got)
	}
}

func TestFabricBottleneck(t *testing.T) {
	// An IP behind a deliberately narrow fabric is limited by it even
	// though its own link and DRAM are fast.
	cfg := Config{
		Name:          "narrow",
		DRAMBandwidth: 30e9,
		Fabrics: []noc.FabricSpec{
			{Name: "wide", Bandwidth: 28e9},
			{Name: "narrow", Bandwidth: 3e9, Parent: "wide"},
		},
		IPs: []IPSpec{{
			Config: ip.Config{Name: "X", ComputeRate: 100e9, LinkBandwidth: 20e9},
			Fabric: "narrow",
		}},
	}
	s := mustSystem(t, cfg)
	k := kernel.Kernel{Name: "k", WorkingSet: 8 << 20, Trials: 3,
		FlopsPerWord: 1, Pattern: kernel.ReadOnly}
	res, err := s.Run([]Assignment{{IP: "X", Kernel: k}}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.IPs[0].Bandwidth; math.Abs(got-3e9)/3e9 > 0.03 {
		t.Errorf("bandwidth = %v, want ~3e9 (fabric bound)", got)
	}
}
