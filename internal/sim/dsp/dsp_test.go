package dsp

import "testing"

func TestPresetsValid(t *testing.T) {
	d := Hexagon682Scalar()
	if err := d.Validate(); err != nil {
		t.Fatalf("Hexagon682Scalar: %v", err)
	}
	if d.ComputeRate != 3.0e9 {
		t.Errorf("peak = %v, paper measures 3.0 GFLOPS/s (spec 3.6)", d.ComputeRate)
	}
	if d.LinkBandwidth != 5.4e9 {
		t.Errorf("link = %v, Figure 9 reports 5.4 GB/s", d.LinkBandwidth)
	}
	v := Hexagon682Vector()
	if err := v.Validate(); err != nil {
		t.Fatalf("Hexagon682Vector: %v", err)
	}
	if v.ComputeRate <= d.ComputeRate {
		t.Error("HVX vector unit must dwarf the scalar unit")
	}
	if v.LinkBandwidth != 12.5e9 {
		t.Errorf("HVX link = %v, §IV-D prose says 12.5 GB/s", v.LinkBandwidth)
	}
}
