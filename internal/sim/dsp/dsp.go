// Package dsp provides calibrated DSP configurations for the simulated
// SoC, tuned so the §IV methodology reproduces the paper's Figure 9.
package dsp

import "github.com/gables-model/gables/internal/sim/ip"

// Hexagon682Scalar models the Snapdragon 835's Hexagon 682 DSP scalar
// unit — the low-power, (almost) always-on component the paper measures,
// since it executes IEEE single-precision floating point:
//
//   - 3.0 GFLOPS/s achieved (the spec predicts 3.6 for four scalar
//     threads at 920 MHz);
//   - 5.4 GB/s DRAM bandwidth as Figure 9's axis label reports — much
//     less than the CPU and GPU, "likely due to using a different
//     interconnect fabric" (§IV-D); the DSP preset is meant to hang off
//     the slower system fabric. (§IV-D's prose says 12.5 GB/s; the
//     discrepancy with the figure is recorded in EXPERIMENTS.md and the
//     figure's value is used.)
//   - a small always-on scratchpad;
//   - modest DMA-driven host coordination (0.25 CPU-ops per byte): the
//     DSP initiates its own DMA transfers, needing less CPU shepherding
//     than GPU offload.
func Hexagon682Scalar() ip.Config {
	return ip.Config{
		Name:                   "DSP",
		ComputeRate:            3.0e9,
		LinkBandwidth:          5.4e9,
		WritePenalty:           1,
		CacheSize:              512 << 10,
		CacheBandwidth:         20e9,
		MaxInflight:            4,
		CoordinationOpsPerByte: 0.25,
	}
}

// Hexagon682Vector sketches the high-performance integer vector unit
// (1024-bit HVX, 4096 bits per cycle) the paper leaves to future work
// because it is integer-only. It is provided for the extension benchmarks;
// its "ops" are integer ops.
func Hexagon682Vector() ip.Config {
	return ip.Config{
		Name:                   "DSP-HVX",
		ComputeRate:            120e9,
		LinkBandwidth:          12.5e9, // §IV-D's prose bandwidth
		WritePenalty:           1,
		CacheSize:              1 << 20,
		CacheBandwidth:         60e9,
		MaxInflight:            8,
		CoordinationOpsPerByte: 0.25,
	}
}
