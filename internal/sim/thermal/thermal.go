// Package thermal models processor heating and DVFS throttling with a
// lumped thermal-RC circuit. The paper's §IV-A notes that its
// floating-point-intensive micro-benchmark overheats and throttles mobile
// silicon, so measurements were taken "in a thermally controlled unit" with
// vendor governors disabled; this package reproduces both regimes — the
// controlled one (governor off) used for roofline measurement, and the
// throttling one for the ablation that shows why control matters.
package thermal

import (
	"fmt"
	"math"

	"github.com/gables-model/gables/internal/sim/engine"
	"github.com/gables-model/gables/internal/sim/trace"
)

// Config parameterizes the RC model and the throttle governor.
type Config struct {
	// Ambient is the environment temperature in °C.
	Ambient float64
	// Resistance is the junction-to-ambient thermal resistance in °C/W.
	Resistance float64
	// Capacitance is the lumped thermal capacitance in J/°C.
	Capacitance float64
	// IdlePower is static power in W.
	IdlePower float64
	// EnergyPerOp is dynamic energy in J per operation executed.
	EnergyPerOp float64
	// ThrottleAt is the junction temperature (°C) that trips throttling.
	ThrottleAt float64
	// ResumeAt is the temperature below which full speed resumes; it
	// must be below ThrottleAt (hysteresis).
	ResumeAt float64
	// ThrottleScale is the frequency multiplier while throttled, in
	// (0, 1).
	ThrottleScale float64
	// Interval is the governor's sampling period in seconds.
	Interval float64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Resistance <= 0 || c.Capacitance <= 0 {
		return fmt.Errorf("thermal: resistance and capacitance must be positive")
	}
	if c.IdlePower < 0 || c.EnergyPerOp < 0 {
		return fmt.Errorf("thermal: power terms must be non-negative")
	}
	if c.ThrottleAt <= c.Ambient {
		return fmt.Errorf("thermal: throttle point %v must exceed ambient %v", c.ThrottleAt, c.Ambient)
	}
	if c.ResumeAt >= c.ThrottleAt {
		return fmt.Errorf("thermal: resume point %v must be below throttle point %v", c.ResumeAt, c.ThrottleAt)
	}
	if c.ThrottleScale <= 0 || c.ThrottleScale >= 1 {
		return fmt.Errorf("thermal: throttle scale must be in (0,1), got %v", c.ThrottleScale)
	}
	if c.Interval <= 0 {
		return fmt.Errorf("thermal: interval must be positive")
	}
	return nil
}

// Target is the component a governor controls: it reports work done and
// accepts a frequency scale.
type Target interface {
	// OpsDone returns cumulative operations executed.
	OpsDone() float64
	// SetFrequencyScale sets the clock multiplier in (0, 1].
	SetFrequencyScale(s float64) error
}

// Governor integrates temperature and throttles a target.
type Governor struct {
	cfg       Config
	eng       *engine.Engine
	target    Target
	temp      float64
	lastOps   float64
	lastTime  engine.Time
	throttled bool
	running   bool

	// probe, when non-nil, observes every temperature sample and the
	// throttle transitions; probeName labels the governed target.
	probe     trace.Probe
	probeName string

	// MaxTemp records the peak temperature observed.
	MaxTemp float64
	// ThrottleEvents counts throttle activations.
	ThrottleEvents int
}

// NewGovernor builds a governor at ambient temperature.
func NewGovernor(eng *engine.Engine, target Target, cfg Config) (*Governor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if eng == nil || target == nil {
		return nil, fmt.Errorf("thermal: nil engine or target")
	}
	return &Governor{
		cfg:     cfg,
		eng:     eng,
		target:  target,
		temp:    cfg.Ambient,
		MaxTemp: cfg.Ambient,
	}, nil
}

// SetProbe attaches (or, with nil, detaches) an observe-only trace probe;
// name labels the governed target in the emitted thermal events.
func (g *Governor) SetProbe(p trace.Probe, name string) {
	g.probe = p
	g.probeName = name
}

// Temperature returns the current junction temperature.
func (g *Governor) Temperature() float64 { return g.temp }

// Throttled reports whether the governor is currently limiting frequency.
func (g *Governor) Throttled() bool { return g.throttled }

// Start schedules the periodic sampling loop. The loop reschedules itself
// as long as Stop has not been called; an idle simulation therefore should
// Stop the governor so the event queue can drain.
func (g *Governor) Start() error {
	if g.running {
		return fmt.Errorf("thermal: governor already running")
	}
	g.running = true
	g.lastOps = g.target.OpsDone()
	g.lastTime = g.eng.Now()
	return g.eng.After(engine.Time(g.cfg.Interval), g.step)
}

// Stop halts the sampling loop after the next sample.
func (g *Governor) Stop() { g.running = false }

func (g *Governor) step() {
	now := g.eng.Now()
	dt := float64(now - g.lastTime)
	if dt > 0 {
		ops := g.target.OpsDone()
		power := g.cfg.IdlePower + g.cfg.EnergyPerOp*(ops-g.lastOps)/dt
		// Forward-Euler on the RC circuit:
		// C dT/dt = P − (T − Tamb)/R.
		dT := (power - (g.temp-g.cfg.Ambient)/g.cfg.Resistance) / g.cfg.Capacitance * dt
		g.temp += dT
		g.MaxTemp = math.Max(g.MaxTemp, g.temp)
		g.lastOps = ops
		g.lastTime = now
		if g.probe != nil {
			g.probe.ThermalSample(g.probeName, float64(now), g.temp)
		}

		if !g.throttled && g.temp >= g.cfg.ThrottleAt {
			g.throttled = true
			g.ThrottleEvents++
			if g.probe != nil {
				g.probe.ThrottleTrip(g.probeName, float64(now), g.temp)
			}
			// The target validated ThrottleScale ∈ (0,1).
			_ = g.target.SetFrequencyScale(g.cfg.ThrottleScale)
		} else if g.throttled && g.temp <= g.cfg.ResumeAt {
			g.throttled = false
			if g.probe != nil {
				g.probe.ThrottleClear(g.probeName, float64(now), g.temp)
			}
			_ = g.target.SetFrequencyScale(1)
		}
	}
	if g.running {
		// Self-rescheduling from inside an event cannot be in the past.
		_ = g.eng.After(engine.Time(g.cfg.Interval), g.step)
	}
}

// DefaultConfig returns a mobile-SoC-flavored parameterization: ~3 W
// sustained heats the die toward throttle in a few seconds of simulated
// time (the paper cites the ~3 W thermal design point of phones).
func DefaultConfig() Config {
	return Config{
		Ambient:       30,
		Resistance:    15,   // °C/W
		Capacitance:   0.10, // J/°C — small to keep simulated runs short
		IdlePower:     0.3,
		EnergyPerOp:   0.4e-9, // 0.4 nJ/flop
		ThrottleAt:    75,
		ResumeAt:      65,
		ThrottleScale: 0.6,
		Interval:      5e-3,
	}
}
