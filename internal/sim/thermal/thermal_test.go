package thermal

import (
	"testing"

	"github.com/gables-model/gables/internal/sim/engine"
)

// fakeTarget is a synthetic compute engine producing ops at a fixed rate
// scaled by the governor's frequency setting.
type fakeTarget struct {
	eng   *engine.Engine
	rate  float64 // ops/s at full frequency
	scale float64
	ops   float64
	last  engine.Time
}

func newFake(eng *engine.Engine, rate float64) *fakeTarget {
	return &fakeTarget{eng: eng, rate: rate, scale: 1}
}

// advance accrues ops up to now; called from the sampling hooks.
func (f *fakeTarget) advance() {
	now := f.eng.Now()
	f.ops += f.rate * f.scale * float64(now-f.last)
	f.last = now
}

func (f *fakeTarget) OpsDone() float64 {
	f.advance()
	return f.ops
}

func (f *fakeTarget) SetFrequencyScale(s float64) error {
	f.advance()
	f.scale = s
	return nil
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Resistance = 0 },
		func(c *Config) { c.Capacitance = -1 },
		func(c *Config) { c.IdlePower = -1 },
		func(c *Config) { c.ThrottleAt = c.Ambient },
		func(c *Config) { c.ResumeAt = c.ThrottleAt },
		func(c *Config) { c.ThrottleScale = 1 },
		func(c *Config) { c.ThrottleScale = 0 },
		func(c *Config) { c.Interval = 0 },
	}
	for i, mutate := range cases {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestGovernorValidation(t *testing.T) {
	eng := engine.New()
	tgt := newFake(eng, 1e9)
	if _, err := NewGovernor(nil, tgt, DefaultConfig()); err == nil {
		t.Error("nil engine must be rejected")
	}
	if _, err := NewGovernor(eng, nil, DefaultConfig()); err == nil {
		t.Error("nil target must be rejected")
	}
	g, err := NewGovernor(eng, tgt, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	if err := g.Start(); err == nil {
		t.Error("double start must be rejected")
	}
	g.Stop()
}

func TestHeatingAndThrottling(t *testing.T) {
	eng := engine.New()
	// 10 Gops/s at 0.4 nJ/op = 4 W sustained — above what the RC can
	// shed below the 75 °C trip point (steady state 30 + 4·15 = 90 °C).
	tgt := newFake(eng, 10e9)
	g, err := NewGovernor(eng, tgt, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunUntil(20); err != nil {
		t.Fatal(err)
	}
	g.Stop()
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	if g.MaxTemp <= DefaultConfig().Ambient {
		t.Error("temperature must rise under load")
	}
	if g.ThrottleEvents == 0 {
		t.Errorf("4 W sustained must trip the governor (max temp %v)", g.MaxTemp)
	}
	// Hysteresis: with the clock at 60%, power drops to 2.4 W and steady
	// state 66 °C — the governor oscillates between limits rather than
	// pinning at max.
	if g.MaxTemp > 85 {
		t.Errorf("throttling must bound the temperature, peak %v", g.MaxTemp)
	}
	if tgt.scale == 1 && g.Throttled() {
		t.Error("throttled governor must have lowered the clock")
	}
}

func TestCoolRunNeverThrottles(t *testing.T) {
	eng := engine.New()
	// 1 Gop/s at 0.4 nJ/op = 0.4 W + idle: steady state ≈ 40 °C.
	tgt := newFake(eng, 1e9)
	g, err := NewGovernor(eng, tgt, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunUntil(20); err != nil {
		t.Fatal(err)
	}
	g.Stop()
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	if g.ThrottleEvents != 0 {
		t.Errorf("light load must not throttle (peak %v)", g.MaxTemp)
	}
	if g.Temperature() <= DefaultConfig().Ambient || g.Temperature() >= 60 {
		t.Errorf("temperature = %v, want moderate warm-up", g.Temperature())
	}
}

func TestThrottledThroughputLower(t *testing.T) {
	run := func(rate float64) float64 {
		eng := engine.New()
		tgt := newFake(eng, rate)
		g, err := NewGovernor(eng, tgt, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Start(); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.RunUntil(30); err != nil {
			t.Fatal(err)
		}
		g.Stop()
		if _, err := eng.Run(0); err != nil {
			t.Fatal(err)
		}
		return tgt.OpsDone() / 30
	}
	hot := run(10e9)
	if hot >= 10e9*0.999 {
		t.Errorf("sustained rate %v must sag below the 10e9 peak", hot)
	}
	cool := run(1e9)
	if cool < 1e9*0.999 {
		t.Errorf("unthrottled rate %v must hold its 1e9 peak", cool)
	}
}
