package gpu

import "testing"

func TestPresetValid(t *testing.T) {
	g := Adreno540()
	if err := g.Validate(); err != nil {
		t.Fatalf("Adreno540: %v", err)
	}
	if g.ComputeRate != 349.6e9 {
		t.Errorf("peak = %v, paper measures 349.6 GFLOPS/s", g.ComputeRate)
	}
	if g.LinkBandwidth != 24.4e9 {
		t.Errorf("link = %v, paper measures 24.4 GB/s", g.LinkBandwidth)
	}
	// A1 = 349.6/7.5 ≈ 46.6 ≈ 47× per §IV-B.
	if a := g.ComputeRate / 7.5e9; a < 46 || a > 47 {
		t.Errorf("acceleration = %v, want ~46.6", a)
	}
	if g.CoordinationOpsPerByte <= 0 {
		t.Error("GPU offload must model host coordination")
	}
	if g.MaxInflight < 8 {
		t.Error("latency-tolerant GPU needs a deep outstanding window")
	}
}
