// Package gpu provides calibrated GPU configurations for the simulated
// SoC, tuned so the §IV methodology reproduces the paper's Figure 7b.
package gpu

import "github.com/gables-model/gables/internal/sim/ip"

// Adreno540 models the Snapdragon 835's Adreno 540 GPU as the paper
// measures it with an OpenGL ES 3.1 stream kernel (1024 workgroups × 256
// threads):
//
//   - 349.6 GFLOPS/s achieved single-precision peak (567 theoretical),
//     which against the scalar CPU gives the paper's A₁ ≈ 47×;
//   - 24.4 GB/s achieved DRAM bandwidth with no write penalty — the
//     streaming read-one-array/write-another pattern is what the memory
//     system is optimized for;
//   - deep latency tolerance (many threads in flight) modeled by a larger
//     outstanding-chunk window rather than a cache: the paper's §III-C
//     example characterizes the GPU as designed for latency tolerance,
//     not bandwidth reduction;
//   - a host coordination cost of 1.25 CPU-ops per byte when offload
//     coordination is modeled: every offloaded buffer is shepherded by
//     the CPU through driver calls and completion interrupts (§II-B's
//     third bottleneck), roughly a 6 GB/s host-side touch rate on the
//     7.5 Gops/s CPU.
func Adreno540() ip.Config {
	return ip.Config{
		Name:                   "GPU",
		ComputeRate:            349.6e9,
		LinkBandwidth:          24.4e9,
		WritePenalty:           1,
		CacheSize:              1 << 20,
		CacheBandwidth:         300e9,
		MaxInflight:            16,
		CoordinationOpsPerByte: 1.25,
	}
}
