// Package sim assembles the simulated SoC: IP blocks from package ip, a
// fabric tree from package noc, a shared DRAM controller, and optional
// thermal governors — the repository's stand-in for the Snapdragon silicon
// the paper measures in §IV. A System is instantiated from a Config and
// executes micro-benchmark assignments concurrently, reporting per-IP
// achieved compute and bandwidth plus the whole-run makespan.
//
// Each Run builds a fresh engine and component graph from the Config, so
// runs are deterministic and independent.
package sim

import (
	"errors"
	"fmt"

	"github.com/gables-model/gables/internal/kernel"
	"github.com/gables-model/gables/internal/sim/engine"
	"github.com/gables-model/gables/internal/sim/ip"
	"github.com/gables-model/gables/internal/sim/mem"
	"github.com/gables-model/gables/internal/sim/noc"
	"github.com/gables-model/gables/internal/sim/thermal"
	"github.com/gables-model/gables/internal/sim/trace"
)

// IPSpec attaches an IP configuration to a fabric.
type IPSpec struct {
	ip.Config
	// Fabric names the fabric the block attaches to; empty attaches
	// directly to the DRAM controller.
	Fabric string
}

// Config describes a simulated SoC.
type Config struct {
	// Name labels the chip.
	Name string
	// DRAMBandwidth is the shared memory controller's rate in bytes/s.
	DRAMBandwidth float64
	// Fabrics declares the interconnect tree.
	Fabrics []noc.FabricSpec
	// IPs declares the blocks.
	IPs []IPSpec
	// Host names the IP whose compute server absorbs coordination costs
	// (conventionally the CPU). Required when any IP has a nonzero
	// CoordinationOpsPerByte.
	Host string
	// Thermal optionally overrides the governor parameters used when a
	// run enables thermal modeling.
	Thermal *thermal.Config
}

// Validate checks the configuration by instantiating it once.
func (c Config) Validate() error {
	_, err := c.instantiate()
	return err
}

// System is a validated simulated SoC, ready to run measurements.
type System struct {
	cfg Config
}

// New validates the configuration and returns a System.
func New(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &System{cfg: cfg}, nil
}

// Config returns the system's configuration.
func (s *System) Config() Config { return s.cfg }

// instance is one materialized run graph.
type instance struct {
	eng  *engine.Engine
	dram *mem.Server
	topo *noc.Topology
	ips  map[string]*ip.IP
	host *ip.IP
}

func (c Config) instantiate() (*instance, error) {
	if c.DRAMBandwidth <= 0 {
		return nil, fmt.Errorf("sim: %s: DRAM bandwidth must be positive", c.Name)
	}
	if len(c.IPs) == 0 {
		return nil, fmt.Errorf("sim: %s: needs at least one IP", c.Name)
	}
	eng := engine.New()
	dram, err := mem.NewServer(eng, "dram", c.DRAMBandwidth)
	if err != nil {
		return nil, err
	}
	topo, err := noc.Build(eng, c.Fabrics)
	if err != nil {
		return nil, err
	}
	inst := &instance{eng: eng, dram: dram, topo: topo, ips: make(map[string]*ip.IP, len(c.IPs))}
	needsHost := false
	for _, spec := range c.IPs {
		if _, dup := inst.ips[spec.Name]; dup {
			return nil, fmt.Errorf("sim: %s: duplicate IP %q", c.Name, spec.Name)
		}
		path, err := topo.Path(spec.Fabric)
		if err != nil {
			return nil, err
		}
		blk, err := ip.New(eng, spec.Config, path, dram)
		if err != nil {
			return nil, err
		}
		inst.ips[spec.Name] = blk
		if spec.CoordinationOpsPerByte > 0 {
			needsHost = true
		}
	}
	if c.Host != "" {
		host, ok := inst.ips[c.Host]
		if !ok {
			return nil, fmt.Errorf("sim: %s: host IP %q not declared", c.Name, c.Host)
		}
		inst.host = host
	} else if needsHost {
		return nil, fmt.Errorf("sim: %s: coordination costs configured but no host IP named", c.Name)
	}
	return inst, nil
}

// Assignment gives one IP a kernel to execute.
type Assignment struct {
	// IP names the executing block.
	IP string
	// Kernel is the work.
	Kernel kernel.Kernel
}

// DefaultMaxEvents is the livelock guard applied when RunOptions.MaxEvents
// is zero. Fingerprint normalizes against it so an explicit default and an
// implicit one address the same cache entry.
const DefaultMaxEvents = 50_000_000

// RunOptions control a measurement run.
type RunOptions struct {
	// Coordination charges each offloaded block's traffic to the host
	// CPU (§IV-C mixing methodology). Device-resident roofline runs
	// (§IV-B) leave it off.
	Coordination bool
	// Thermal enables the per-IP throttle governors; off reproduces the
	// paper's thermally controlled measurement rig.
	Thermal bool
	// MaxEvents caps the event count as a livelock guard; defaults to
	// 50 million. Negative values are rejected: they would silently
	// disable the guard.
	MaxEvents int
	// Probe, when non-nil, observes the run: event dispatches, server
	// queues and service windows, per-chunk pipeline progress, thermal
	// samples. Probes are observe-only — the RunResult is bitwise
	// identical with and without one — and excluded from Fingerprint
	// (like Kernel.Name), so traced runs must not be answered from the
	// simulation cache. One probe observes one run.
	//
	//fp:skip observe-only; results are bitwise identical with and without a probe, and simcache bypasses the cache for traced runs
	Probe trace.Probe
}

// IPResult reports one block's achieved performance.
type IPResult struct {
	IP string
	// Flops and Bytes are the work completed.
	Flops, Bytes float64
	// Time is when the block finished its assignment (seconds).
	Time float64
	// Rate is achieved flops/s over the block's own busy window.
	Rate float64
	// Bandwidth is achieved bytes/s over the same window.
	Bandwidth float64
	// MaxTemp is the peak junction temperature (thermal runs only).
	MaxTemp float64
	// Throttled reports whether the governor ever tripped.
	Throttled bool
}

// RunResult reports a whole measurement run.
type RunResult struct {
	// Makespan is the time for every assignment to finish.
	Makespan float64
	// TotalFlops is the work across assignments.
	TotalFlops float64
	// Rate is TotalFlops/Makespan — the concurrent system throughput
	// the paper's Figure 8 normalizes.
	Rate float64
	// IPs holds per-assignment results, in assignment order.
	IPs []IPResult
	// DRAMUtilization is the memory controller's busy fraction.
	DRAMUtilization float64
}

// Run executes the assignments concurrently from time zero and returns the
// measured results.
func (s *System) Run(assignments []Assignment, opt RunOptions) (*RunResult, error) {
	if len(assignments) == 0 {
		return nil, fmt.Errorf("sim: %s: no assignments", s.cfg.Name)
	}
	if opt.MaxEvents < 0 {
		return nil, fmt.Errorf("sim: %s: MaxEvents must be non-negative (negative would disable the livelock guard), got %d", s.cfg.Name, opt.MaxEvents)
	}
	if opt.MaxEvents == 0 {
		opt.MaxEvents = DefaultMaxEvents
	}
	inst, err := s.cfg.instantiate()
	if err != nil {
		return nil, err
	}
	if opt.Probe != nil {
		inst.eng.SetProbe(opt.Probe)
		inst.dram.SetProbe(opt.Probe)
		inst.topo.SetProbe(opt.Probe)
		for _, blk := range inst.ips {
			blk.SetProbe(opt.Probe)
		}
	}

	type slot struct {
		blk      *ip.IP
		finished engine.Time
		gov      *thermal.Governor
	}
	slots := make([]*slot, len(assignments))
	seen := make(map[string]bool, len(assignments))
	remaining := len(assignments)
	var govs []*thermal.Governor

	for i, a := range assignments {
		blk, ok := inst.ips[a.IP]
		if !ok {
			return nil, fmt.Errorf("sim: %s: unknown IP %q in assignment %d", s.cfg.Name, a.IP, i)
		}
		if seen[a.IP] {
			return nil, fmt.Errorf("sim: %s: IP %q assigned twice", s.cfg.Name, a.IP)
		}
		seen[a.IP] = true
		slots[i] = &slot{blk: blk}
	}

	if opt.Thermal {
		tcfg := thermal.DefaultConfig()
		if s.cfg.Thermal != nil {
			tcfg = *s.cfg.Thermal
		}
		for _, sl := range slots {
			gov, err := thermal.NewGovernor(inst.eng, sl.blk, tcfg)
			if err != nil {
				return nil, err
			}
			sl.gov = gov
			govs = append(govs, gov)
			if opt.Probe != nil {
				gov.SetProbe(opt.Probe, sl.blk.Name())
			}
			if err := gov.Start(); err != nil {
				return nil, err
			}
		}
	}

	// Outside thermal runs capacities never change mid-flight, so each
	// assigned block's compute server — a pure sink whose completions
	// only account finished chunks — can coalesce back-to-back chunk
	// completions into one engine event per busy period. The completion
	// instants it reports are bitwise identical to the uncoalesced
	// schedule. The coordination host's compute server is excluded: under
	// coordination it also services other blocks' shepherding hops, whose
	// completions forward work and must fire at their own instants.
	if !opt.Thermal {
		for _, sl := range slots {
			if opt.Coordination && inst.host != nil && sl.blk == inst.host {
				continue
			}
			sl.blk.ComputeServer().SetCoalescing(true)
		}
	}

	for i, a := range assignments {
		sl := slots[i]
		var host *mem.Server
		if opt.Coordination && inst.host != nil && sl.blk != inst.host {
			host = inst.host.ComputeServer()
		}
		err := sl.blk.RunKernel(a.Kernel, host, func() {
			sl.finished = inst.eng.Now()
			remaining--
			if remaining == 0 {
				for _, g := range govs {
					g.Stop()
				}
			}
		})
		if err != nil {
			return nil, err
		}
	}

	if _, err := inst.eng.Run(opt.MaxEvents); err != nil {
		var le *engine.LimitError
		if errors.As(err, &le) {
			return nil, fmt.Errorf("sim: %s: MaxEvents guard (%d) tripped after %d events at t=%.6gs simulated: %w",
				s.cfg.Name, le.Limit, le.Processed, float64(le.Now), err)
		}
		return nil, err
	}
	if remaining != 0 {
		return nil, fmt.Errorf("sim: %s: %d assignments never completed", s.cfg.Name, remaining)
	}

	res := &RunResult{IPs: make([]IPResult, len(assignments))}
	for i, sl := range slots {
		r := IPResult{
			IP:    assignments[i].IP,
			Flops: sl.blk.OpsDone(),
			Bytes: sl.blk.BytesMoved(),
			Time:  float64(sl.finished),
		}
		if r.Time > 0 {
			r.Rate = r.Flops / r.Time
			r.Bandwidth = r.Bytes / r.Time
		}
		if sl.gov != nil {
			r.MaxTemp = sl.gov.MaxTemp
			r.Throttled = sl.gov.ThrottleEvents > 0
		}
		res.IPs[i] = r
		res.TotalFlops += r.Flops
		if r.Time > res.Makespan {
			res.Makespan = r.Time
		}
	}
	if res.Makespan > 0 {
		res.Rate = res.TotalFlops / res.Makespan
		res.DRAMUtilization = inst.dram.Utilization(engine.Time(res.Makespan))
	}
	return res, nil
}
