// Package noc builds the simulated SoC's interconnect: a tree of fabrics
// (each a FIFO bandwidth server) rooted at the DRAM controller, mirroring
// the hierarchy of the paper's Figure 3. IPs attach to a fabric and their
// memory traffic traverses every fabric on the path to memory, so a narrow
// shared fabric throttles exactly the IPs behind it — the mechanism the
// §V-B interconnect extension models analytically.
package noc

import (
	"fmt"

	"github.com/gables-model/gables/internal/sim/engine"
	"github.com/gables-model/gables/internal/sim/mem"
	"github.com/gables-model/gables/internal/sim/trace"
)

// FabricSpec declares one fabric of the topology.
type FabricSpec struct {
	// Name identifies the fabric.
	Name string
	// Bandwidth is the fabric's aggregate service rate in bytes/s.
	Bandwidth float64
	// Parent names the next fabric toward memory; empty attaches the
	// fabric directly to the DRAM controller.
	Parent string
}

// Topology is an instantiated fabric tree.
type Topology struct {
	servers map[string]*mem.Server
	parents map[string]string
}

// Build instantiates the fabric tree on the engine, validating that parents
// exist and the hierarchy is acyclic.
func Build(eng *engine.Engine, specs []FabricSpec) (*Topology, error) {
	t := &Topology{
		servers: make(map[string]*mem.Server, len(specs)),
		parents: make(map[string]string, len(specs)),
	}
	for _, s := range specs {
		if s.Name == "" {
			return nil, fmt.Errorf("noc: fabric with empty name")
		}
		if _, dup := t.servers[s.Name]; dup {
			return nil, fmt.Errorf("noc: duplicate fabric %q", s.Name)
		}
		srv, err := mem.NewServer(eng, "fabric:"+s.Name, s.Bandwidth)
		if err != nil {
			return nil, err
		}
		t.servers[s.Name] = srv
		t.parents[s.Name] = s.Parent
	}
	for name := range t.servers {
		if _, err := t.Path(name); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Path returns the fabric servers from the named fabric to the memory
// controller, in traversal order. An empty name returns an empty path (an
// IP attached directly to memory).
func (t *Topology) Path(name string) ([]*mem.Server, error) {
	if name == "" {
		return nil, nil
	}
	var path []*mem.Server
	seen := make(map[string]bool)
	for cur := name; cur != ""; cur = t.parents[cur] {
		if seen[cur] {
			return nil, fmt.Errorf("noc: fabric cycle through %q", cur)
		}
		seen[cur] = true
		srv, ok := t.servers[cur]
		if !ok {
			return nil, fmt.Errorf("noc: unknown fabric %q", cur)
		}
		path = append(path, srv)
	}
	return path, nil
}

// Server returns the named fabric's server, for instrumentation.
func (t *Topology) Server(name string) (*mem.Server, error) {
	srv, ok := t.servers[name]
	if !ok {
		return nil, fmt.Errorf("noc: unknown fabric %q", name)
	}
	return srv, nil
}

// Names returns all fabric names (unordered).
func (t *Topology) Names() []string {
	out := make([]string, 0, len(t.servers))
	for n := range t.servers {
		out = append(out, n)
	}
	return out
}

// SetProbe attaches (or, with nil, detaches) an observe-only trace probe
// to every fabric server.
func (t *Topology) SetProbe(p trace.Probe) {
	for _, s := range t.servers {
		s.SetProbe(p)
	}
}

// Reset clears accounting on every fabric server.
func (t *Topology) Reset() {
	for _, s := range t.servers {
		s.Reset()
	}
}
