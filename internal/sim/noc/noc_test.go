package noc

import (
	"testing"

	"github.com/gables-model/gables/internal/sim/engine"
)

func specs() []FabricSpec {
	return []FabricSpec{
		{Name: "hb", Bandwidth: 28e9},
		{Name: "mm", Bandwidth: 20e9, Parent: "hb"},
		{Name: "sys", Bandwidth: 12e9, Parent: "hb"},
		{Name: "peri", Bandwidth: 2e9, Parent: "sys"},
	}
}

func TestBuildAndPath(t *testing.T) {
	topo, err := Build(engine.New(), specs())
	if err != nil {
		t.Fatal(err)
	}
	path, err := topo.Path("peri")
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 {
		t.Fatalf("path length = %d, want 3 (peri→sys→hb)", len(path))
	}
	if path[0].Name() != "fabric:peri" || path[2].Name() != "fabric:hb" {
		t.Errorf("path order wrong: %s .. %s", path[0].Name(), path[2].Name())
	}

	empty, err := topo.Path("")
	if err != nil || empty != nil {
		t.Errorf("empty fabric name must give empty path, got %v, %v", empty, err)
	}

	if _, err := topo.Path("nope"); err == nil {
		t.Error("unknown fabric must be an error")
	}
}

func TestBuildValidation(t *testing.T) {
	eng := engine.New()
	if _, err := Build(eng, []FabricSpec{{Name: "", Bandwidth: 1}}); err == nil {
		t.Error("empty name must be rejected")
	}
	if _, err := Build(eng, []FabricSpec{{Name: "a", Bandwidth: 1}, {Name: "a", Bandwidth: 1}}); err == nil {
		t.Error("duplicate must be rejected")
	}
	if _, err := Build(eng, []FabricSpec{{Name: "a", Bandwidth: 0}}); err == nil {
		t.Error("zero bandwidth must be rejected")
	}
	if _, err := Build(eng, []FabricSpec{{Name: "a", Bandwidth: 1, Parent: "ghost"}}); err == nil {
		t.Error("unknown parent must be rejected")
	}
	cyc := []FabricSpec{
		{Name: "a", Bandwidth: 1, Parent: "b"},
		{Name: "b", Bandwidth: 1, Parent: "a"},
	}
	if _, err := Build(eng, cyc); err == nil {
		t.Error("cycle must be rejected")
	}
}

func TestServerLookupAndNames(t *testing.T) {
	topo, err := Build(engine.New(), specs())
	if err != nil {
		t.Fatal(err)
	}
	s, err := topo.Server("mm")
	if err != nil || s.Name() != "fabric:mm" {
		t.Errorf("Server lookup: %v, %v", s, err)
	}
	if _, err := topo.Server("nope"); err == nil {
		t.Error("unknown server must be an error")
	}
	if got := len(topo.Names()); got != 4 {
		t.Errorf("Names len = %d, want 4", got)
	}
}

func TestReset(t *testing.T) {
	eng := engine.New()
	topo, err := Build(eng, specs())
	if err != nil {
		t.Fatal(err)
	}
	s, _ := topo.Server("hb")
	if err := s.Request(1e6, func() {}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	topo.Reset()
	if s.Served() != 0 {
		t.Error("reset must clear fabric accounting")
	}
}
