// Content-addressed fingerprints for simulation runs.
//
// A run of the discrete-event substrate is a pure function of
// (Config, assignments, RunOptions): the engine is seeded from nothing and
// every event is deterministic. Fingerprint canonicalizes that triple into
// a fixed-size key so the harness can reuse results across grid cells,
// experiment suites, processes (via the on-disk cache layer), and web
// requests. internal/simcache keys its cache with it.
//
// Canonicalization rules:
//
//   - every field is written explicitly, in struct declaration order —
//     never via reflection or map iteration, so the byte stream is stable
//     across runs and Go versions;
//   - floats are written as their IEEE-754 bit patterns, so any two
//     configs that compare == produce the same key and any bitwise
//     difference produces a different one (no formatting round-trips);
//   - strings are length-prefixed and slices count-prefixed, so
//     concatenation ambiguities ("ab","c" vs "a","bc") cannot collide;
//   - display-only labels that cannot affect simulation results —
//     Kernel.Name is the only one — are excluded, so differently labeled
//     but physically identical kernels share one cache entry;
//   - RunOptions.Probe is excluded for the same reason: probes are
//     observe-only, so a traced and an untraced run produce bitwise
//     identical results. Cache layers must nevertheless not answer a
//     traced run from cache — a hit cannot replay the event stream —
//     which internal/simcache.Run enforces by bypassing the cache when a
//     probe is attached;
//   - RunOptions.MaxEvents is normalized (0 → DefaultMaxEvents) because
//     both spellings run the same schedule.
//
// FingerprintVersion is hashed in first. Bump it whenever the simulated
// semantics of an existing field change, a field is added or removed on
// Config/ip.Config/noc.FabricSpec/thermal.Config/kernel.Kernel/RunOptions,
// or the encoding itself changes: stale on-disk cache entries then miss
// instead of serving results from an older model.
package sim

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"

	"github.com/gables-model/gables/internal/kernel"
	"github.com/gables-model/gables/internal/sim/thermal"
)

// Kernel.Name is a display label: differently labeled but physically
// identical kernels must share one cache entry (see the package comment).
//
//fp:skip kernel.Kernel.Name display label only; excluded so identically shaped kernels share a cache entry

// FingerprintVersion versions the fingerprint encoding and the simulated
// semantics it captures. See the package comment for when to bump it.
// The lock below is maintained by the fpfields analyzer: it digests the
// encoded structs' shapes, and `gables-lint -fix` refreshes it after a
// deliberate shape change has bumped this constant.
//
//fp:lock v1 2d9cd03840bf0576
const FingerprintVersion = 1

// Fingerprint returns a stable hex key identifying the result of
// (*System).Run for this configuration, assignment list, and options.
// Two calls agree if and only if they describe the same simulated run
// under the current FingerprintVersion.
//
//fp:encoder
func Fingerprint(cfg Config, assignments []Assignment, opt RunOptions) string {
	w := fpWriter{h: sha256.New()}
	w.uint64(FingerprintVersion)

	// Config, declaration order.
	w.str(cfg.Name)
	w.f64(cfg.DRAMBandwidth)
	w.uint64(uint64(len(cfg.Fabrics)))
	for _, f := range cfg.Fabrics {
		w.str(f.Name)
		w.f64(f.Bandwidth)
		w.str(f.Parent)
	}
	w.uint64(uint64(len(cfg.IPs)))
	for _, spec := range cfg.IPs {
		w.str(spec.Name)
		w.f64(spec.ComputeRate)
		w.f64(spec.LinkBandwidth)
		w.f64(spec.WritePenalty)
		w.f64(spec.CacheSize)
		w.f64(spec.CacheBandwidth)
		w.f64(spec.ChunkBytes)
		w.uint64(uint64(spec.MaxInflight))
		w.f64(spec.CoordinationOpsPerByte)
		w.f64(spec.MemoryLatency)
		w.str(spec.Fabric)
	}
	w.str(cfg.Host)
	w.thermal(cfg.Thermal)

	// Assignments, in order: order is semantically meaningful (results
	// come back assignment-ordered and ties in the engine break by
	// schedule order).
	w.uint64(uint64(len(assignments)))
	for _, a := range assignments {
		w.str(a.IP)
		// Kernel.Name is a display label only; excluded by design.
		w.f64(float64(a.Kernel.WorkingSet))
		w.uint64(uint64(a.Kernel.Trials))
		w.uint64(uint64(a.Kernel.FlopsPerWord))
		w.uint64(uint64(a.Kernel.Pattern))
	}

	// Options. Probe is excluded by design (observe-only, no effect on
	// the result — see the package comment).
	w.bool(opt.Coordination)
	w.bool(opt.Thermal)
	maxEvents := opt.MaxEvents
	if maxEvents == 0 {
		maxEvents = DefaultMaxEvents
	}
	w.uint64(uint64(maxEvents))

	return hex.EncodeToString(w.h.Sum(nil))
}

// FingerprintAssignment is a convenience for the common single-assignment
// run shape the sweep harnesses use.
func FingerprintAssignment(cfg Config, ip string, k kernel.Kernel, opt RunOptions) string {
	return Fingerprint(cfg, []Assignment{{IP: ip, Kernel: k}}, opt)
}

// fpWriter streams canonical primitives into the hash. Hash writes never
// fail, so the helpers are error-free.
type fpWriter struct {
	h   hash.Hash
	buf [8]byte
}

func (w *fpWriter) uint64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[:], v)
	w.h.Write(w.buf[:])
}

func (w *fpWriter) f64(v float64) { w.uint64(math.Float64bits(v)) }

func (w *fpWriter) bool(v bool) {
	if v {
		w.uint64(1)
	} else {
		w.uint64(0)
	}
}

func (w *fpWriter) str(s string) {
	w.uint64(uint64(len(s)))
	w.h.Write([]byte(s))
}

func (w *fpWriter) thermal(c *thermal.Config) {
	if c == nil {
		w.bool(false)
		return
	}
	w.bool(true)
	w.f64(c.Ambient)
	w.f64(c.Resistance)
	w.f64(c.Capacitance)
	w.f64(c.IdlePower)
	w.f64(c.EnergyPerOp)
	w.f64(c.ThrottleAt)
	w.f64(c.ResumeAt)
	w.f64(c.ThrottleScale)
	w.f64(c.Interval)
}
