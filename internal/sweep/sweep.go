// Package sweep runs parameter studies over the Gables model: work-split
// sweeps (the analytic counterpart of the paper's Figure 8), off-chip
// bandwidth sweeps (the Bpeak reasoning of Figures 6b–6d), and intensity
// sweeps (the data-reuse lever of Figure 6d and the §VII conjectures).
package sweep

import (
	"fmt"

	"github.com/gables-model/gables/internal/core"
	"github.com/gables-model/gables/internal/units"
)

//lint:file-ignore evalboundary analytic substrate: sweeps perturb an injected model's parameters point by point; routing each point through eval would re-derive the model it was handed

// Point is one sample of a one-dimensional sweep.
type Point struct {
	// X is the swept parameter's value.
	X float64
	// Attainable is the model's bound at that value.
	Attainable units.OpsPerSec
	// Bottleneck identifies the limiting component.
	Bottleneck core.Component
}

// Steps returns n+1 evenly spaced values spanning [lo, hi].
func Steps(lo, hi float64, n int) ([]float64, error) {
	if n < 1 {
		return nil, fmt.Errorf("sweep: need at least one step, got %d", n)
	}
	if hi < lo {
		return nil, fmt.Errorf("sweep: inverted range [%v, %v]", lo, hi)
	}
	out := make([]float64, n+1)
	for i := 0; i <= n; i++ {
		out[i] = lo + (hi-lo)*float64(i)/float64(n)
	}
	// Pin the endpoint: lo+(hi-lo) need not reconstruct hi exactly in
	// float64 (e.g. lo=0.1, hi=0.9), and downstream validators treat the
	// requested bound as exact.
	out[n] = hi
	return out, nil
}

// WorkSplit sweeps the two-IP work fraction f over the given values,
// evaluating Pattainable with intensities i0 and i1 — Gables' prediction
// for the paper's Figure 8 x-axis. The sweep runs on the model's batch
// evaluator: loop-invariant model terms are hoisted once and the inner
// loop is allocation-free, with results bitwise identical to the point
// API (the core batch contract).
func WorkSplit(m *core.Model, i0, i1 units.Intensity, fs []float64) ([]Point, error) {
	if len(m.SoC.IPs) != 2 {
		return nil, fmt.Errorf("sweep: work-split sweep needs a two-IP SoC, got %d IPs", len(m.SoC.IPs))
	}
	if len(fs) == 0 {
		return nil, fmt.Errorf("sweep: no fractions")
	}
	be, err := m.Batch()
	if err != nil {
		return nil, err
	}
	cs := core.NewCells(2, len(fs))
	fillTwoIP(cs, fs, i0, i1)
	res := core.NewCellResults(2, len(fs))
	if bad, ok := evalGrid(be, cs, false, res); !ok {
		return nil, twoIPCellError(m, fmt.Sprintf("f=%v", fs[bad]), fs[bad], i0, i1)
	}
	out := make([]Point, 0, len(fs))
	for c, f := range fs {
		out = append(out, Point{X: f, Attainable: units.OpsPerSec(res.Attainable[c]), Bottleneck: res.Bottleneck[c]})
	}
	return out, nil
}

// fillTwoIP writes the two-IP mixing cells ((1-f) at IP0/i0, f at
// IP1/i1), replicating core.TwoIPUsecase's arithmetic; invalid f values
// are caught cell-by-cell during evaluation.
//
//gables:allocfree
func fillTwoIP(cs *core.Cells, fs []float64, i0, i1 units.Intensity) {
	for c, f := range fs {
		cs.Set(c, 0, 1-f, float64(i0))
		cs.Set(c, 1, f, float64(i1))
	}
}

// evalGrid is the shared allocation-free inner loop of the analytic
// sweeps: evaluate every cell, reporting the first invalid one.
//
//gables:allocfree
func evalGrid(be *core.BatchEval, cs *core.Cells, serialized bool, res *core.CellResults) (int, bool) {
	for c := 0; c < cs.Len(); c++ {
		if !be.EvaluateCell(cs, c, serialized, res) {
			return c, false
		}
	}
	return 0, true
}

// twoIPCellError reproduces the point API's error for an invalid two-IP
// cell: the batch path only reports that a cell failed validation, so the
// slow path is re-run once to name the reason exactly as it always has.
func twoIPCellError(m *core.Model, name string, f float64, i0, i1 units.Intensity) error {
	u, err := core.TwoIPUsecase(name, f, i0, i1)
	if err != nil {
		return err
	}
	if _, err := m.Evaluate(u); err != nil {
		return err
	}
	return fmt.Errorf("sweep: cell %q failed batch validation", name)
}

// MemoryBandwidth sweeps Bpeak over the given values for a fixed usecase —
// the Figure 6b→6c→6d reasoning about how much off-chip bandwidth a
// usecase can actually use.
func MemoryBandwidth(m *core.Model, u *core.Usecase, bpeaks []units.BytesPerSec) ([]Point, error) {
	if len(bpeaks) == 0 {
		return nil, fmt.Errorf("sweep: no bandwidths")
	}
	out := make([]Point, 0, len(bpeaks))
	for _, b := range bpeaks {
		if b <= 0 {
			return nil, fmt.Errorf("sweep: bandwidth must be positive, got %v", float64(b))
		}
		variant := *m.SoC
		variant.MemoryBandwidth = b
		vm := &core.Model{SoC: &variant, SRAM: m.SRAM, Buses: m.Buses}
		res, err := vm.Evaluate(u)
		if err != nil {
			return nil, err
		}
		out = append(out, Point{X: float64(b), Attainable: res.Attainable, Bottleneck: res.Bottleneck})
	}
	return out, nil
}

// Intensity sweeps one IP's operational intensity — the data-reuse lever
// that turns Figure 6c into the balanced Figure 6d.
func Intensity(m *core.Model, u *core.Usecase, ipIndex int, intensities []units.Intensity) ([]Point, error) {
	if ipIndex < 0 || ipIndex >= len(u.Work) {
		return nil, fmt.Errorf("sweep: IP index %d out of range", ipIndex)
	}
	if len(intensities) == 0 {
		return nil, fmt.Errorf("sweep: no intensities")
	}
	for _, ii := range intensities {
		if ii <= 0 {
			return nil, fmt.Errorf("sweep: intensity must be positive, got %v", float64(ii))
		}
	}
	if len(u.Work) != len(m.SoC.IPs) {
		// The batch cells are SoC-width; let the point API report the
		// shape mismatch the way it always has.
		if _, err := m.Evaluate(u); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("sweep: usecase %q has %d work entries for a %d-IP SoC", u.Name, len(u.Work), len(m.SoC.IPs))
	}
	be, err := m.Batch()
	if err != nil {
		return nil, err
	}
	cs := core.NewCells(len(u.Work), len(intensities))
	fillIntensity(cs, u, ipIndex, intensities)
	res := core.NewCellResults(len(u.Work), len(intensities))
	if bad, ok := evalGrid(be, cs, false, res); !ok {
		variant := *u
		variant.Work = append([]core.Work(nil), u.Work...)
		variant.Work[ipIndex].Intensity = intensities[bad]
		if _, err := m.Evaluate(&variant); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("sweep: intensity cell %v failed batch validation", float64(intensities[bad]))
	}
	out := make([]Point, 0, len(intensities))
	for c, ii := range intensities {
		out = append(out, Point{X: float64(ii), Attainable: units.OpsPerSec(res.Attainable[c]), Bottleneck: res.Bottleneck[c]})
	}
	return out, nil
}

// fillIntensity writes the usecase's work vector into every cell with
// the swept IP's intensity overridden.
//
//gables:allocfree
func fillIntensity(cs *core.Cells, u *core.Usecase, ipIndex int, intensities []units.Intensity) {
	for c, ii := range intensities {
		for i, w := range u.Work {
			cs.Set(c, i, w.Fraction, float64(w.Intensity))
		}
		cs.Set(c, ipIndex, u.Work[ipIndex].Fraction, float64(ii))
	}
}

// MissRatio sweeps one IP's SRAM miss ratio under the §V-A extension —
// the reuse-sensitivity ablation for the memory-side cache.
func MissRatio(m *core.Model, u *core.Usecase, ipIndex int, ratios []float64) ([]Point, error) {
	if m.SRAM == nil {
		return nil, fmt.Errorf("sweep: model has no SRAM extension")
	}
	if ipIndex < 0 || ipIndex >= len(m.SRAM.MissRatio) {
		return nil, fmt.Errorf("sweep: IP index %d out of range", ipIndex)
	}
	if len(ratios) == 0 {
		return nil, fmt.Errorf("sweep: no ratios")
	}
	out := make([]Point, 0, len(ratios))
	for _, r := range ratios {
		sram := *m.SRAM
		sram.MissRatio = append([]float64(nil), m.SRAM.MissRatio...)
		sram.MissRatio[ipIndex] = r
		vm := &core.Model{SoC: m.SoC, SRAM: &sram, Buses: m.Buses}
		res, err := vm.Evaluate(u)
		if err != nil {
			return nil, err
		}
		out = append(out, Point{X: r, Attainable: res.Attainable, Bottleneck: res.Bottleneck})
	}
	return out, nil
}

// Grid is the two-dimensional (f × intensity) study: Gables' analytic
// prediction of the whole Figure 8 family. For each intensity line, every
// work split is evaluated with I0 = I1 = I, normalized to f=0 at the
// baseline intensity.
type GridPoint struct {
	F          float64
	Intensity  units.Intensity
	Attainable units.OpsPerSec
	Normalized float64
}

// Figure8Grid evaluates the family of mixing curves on the model's batch
// evaluator: one hoisted model, one cell buffer, an allocation-free inner
// loop, and bitwise the same numbers the point API produced. baseline is
// the intensity that normalizes the grid (the paper uses 1).
func Figure8Grid(m *core.Model, fs []float64, intensities []units.Intensity, baseline units.Intensity) ([]GridPoint, error) {
	if len(fs) == 0 || len(intensities) == 0 {
		return nil, fmt.Errorf("sweep: empty grid")
	}
	if len(m.SoC.IPs) != 2 {
		return nil, fmt.Errorf("sweep: figure-8 grid needs a two-IP SoC, got %d IPs", len(m.SoC.IPs))
	}
	base, err := core.TwoIPUsecase("baseline", 0, baseline, baseline)
	if err != nil {
		return nil, err
	}
	baseRes, err := m.Evaluate(base)
	if err != nil {
		return nil, err
	}
	if baseRes.Attainable <= 0 {
		return nil, fmt.Errorf("sweep: degenerate baseline")
	}
	be, err := m.Batch()
	if err != nil {
		return nil, err
	}
	cells := len(intensities) * len(fs)
	cs := core.NewCells(2, cells)
	fillFigure8(cs, fs, intensities)
	res := core.NewCellResults(2, cells)
	if bad, ok := evalGrid(be, cs, false, res); !ok {
		f, ii := fs[bad%len(fs)], intensities[bad/len(fs)]
		return nil, twoIPCellError(m, "grid", f, ii, ii)
	}
	out := make([]GridPoint, 0, cells)
	for ci, ii := range intensities {
		for fi, f := range fs {
			c := ci*len(fs) + fi
			out = append(out, GridPoint{
				F: f, Intensity: ii, Attainable: units.OpsPerSec(res.Attainable[c]),
				Normalized: res.Attainable[c] / float64(baseRes.Attainable),
			})
		}
	}
	return out, nil
}

// fillFigure8 writes the (intensity-major × fraction) mixing cells with
// I0 = I1 = I, the Figure 8 family's work shape.
//
//gables:allocfree
func fillFigure8(cs *core.Cells, fs []float64, intensities []units.Intensity) {
	for ci, ii := range intensities {
		for fi, f := range fs {
			c := ci*len(fs) + fi
			cs.Set(c, 0, 1-f, float64(ii))
			cs.Set(c, 1, f, float64(ii))
		}
	}
}
