// Package sweep runs parameter studies over the Gables model: work-split
// sweeps (the analytic counterpart of the paper's Figure 8), off-chip
// bandwidth sweeps (the Bpeak reasoning of Figures 6b–6d), and intensity
// sweeps (the data-reuse lever of Figure 6d and the §VII conjectures).
package sweep

import (
	"fmt"

	"github.com/gables-model/gables/internal/core"
	"github.com/gables-model/gables/internal/units"
)

//lint:file-ignore evalboundary analytic substrate: sweeps perturb an injected model's parameters point by point; routing each point through eval would re-derive the model it was handed

// Point is one sample of a one-dimensional sweep.
type Point struct {
	// X is the swept parameter's value.
	X float64
	// Attainable is the model's bound at that value.
	Attainable units.OpsPerSec
	// Bottleneck identifies the limiting component.
	Bottleneck core.Component
}

// Steps returns n+1 evenly spaced values spanning [lo, hi].
func Steps(lo, hi float64, n int) ([]float64, error) {
	if n < 1 {
		return nil, fmt.Errorf("sweep: need at least one step, got %d", n)
	}
	if hi < lo {
		return nil, fmt.Errorf("sweep: inverted range [%v, %v]", lo, hi)
	}
	out := make([]float64, n+1)
	for i := 0; i <= n; i++ {
		out[i] = lo + (hi-lo)*float64(i)/float64(n)
	}
	// Pin the endpoint: lo+(hi-lo) need not reconstruct hi exactly in
	// float64 (e.g. lo=0.1, hi=0.9), and downstream validators treat the
	// requested bound as exact.
	out[n] = hi
	return out, nil
}

// WorkSplit sweeps the two-IP work fraction f over the given values,
// evaluating Pattainable with intensities i0 and i1 — Gables' prediction
// for the paper's Figure 8 x-axis.
func WorkSplit(m *core.Model, i0, i1 units.Intensity, fs []float64) ([]Point, error) {
	if len(m.SoC.IPs) != 2 {
		return nil, fmt.Errorf("sweep: work-split sweep needs a two-IP SoC, got %d IPs", len(m.SoC.IPs))
	}
	if len(fs) == 0 {
		return nil, fmt.Errorf("sweep: no fractions")
	}
	out := make([]Point, 0, len(fs))
	for _, f := range fs {
		u, err := core.TwoIPUsecase(fmt.Sprintf("f=%v", f), f, i0, i1)
		if err != nil {
			return nil, err
		}
		res, err := m.Evaluate(u)
		if err != nil {
			return nil, err
		}
		out = append(out, Point{X: f, Attainable: res.Attainable, Bottleneck: res.Bottleneck})
	}
	return out, nil
}

// MemoryBandwidth sweeps Bpeak over the given values for a fixed usecase —
// the Figure 6b→6c→6d reasoning about how much off-chip bandwidth a
// usecase can actually use.
func MemoryBandwidth(m *core.Model, u *core.Usecase, bpeaks []units.BytesPerSec) ([]Point, error) {
	if len(bpeaks) == 0 {
		return nil, fmt.Errorf("sweep: no bandwidths")
	}
	out := make([]Point, 0, len(bpeaks))
	for _, b := range bpeaks {
		if b <= 0 {
			return nil, fmt.Errorf("sweep: bandwidth must be positive, got %v", float64(b))
		}
		variant := *m.SoC
		variant.MemoryBandwidth = b
		vm := &core.Model{SoC: &variant, SRAM: m.SRAM, Buses: m.Buses}
		res, err := vm.Evaluate(u)
		if err != nil {
			return nil, err
		}
		out = append(out, Point{X: float64(b), Attainable: res.Attainable, Bottleneck: res.Bottleneck})
	}
	return out, nil
}

// Intensity sweeps one IP's operational intensity — the data-reuse lever
// that turns Figure 6c into the balanced Figure 6d.
func Intensity(m *core.Model, u *core.Usecase, ipIndex int, intensities []units.Intensity) ([]Point, error) {
	if ipIndex < 0 || ipIndex >= len(u.Work) {
		return nil, fmt.Errorf("sweep: IP index %d out of range", ipIndex)
	}
	if len(intensities) == 0 {
		return nil, fmt.Errorf("sweep: no intensities")
	}
	out := make([]Point, 0, len(intensities))
	for _, ii := range intensities {
		if ii <= 0 {
			return nil, fmt.Errorf("sweep: intensity must be positive, got %v", float64(ii))
		}
		variant := *u
		variant.Work = append([]core.Work(nil), u.Work...)
		variant.Work[ipIndex].Intensity = ii
		res, err := m.Evaluate(&variant)
		if err != nil {
			return nil, err
		}
		out = append(out, Point{X: float64(ii), Attainable: res.Attainable, Bottleneck: res.Bottleneck})
	}
	return out, nil
}

// MissRatio sweeps one IP's SRAM miss ratio under the §V-A extension —
// the reuse-sensitivity ablation for the memory-side cache.
func MissRatio(m *core.Model, u *core.Usecase, ipIndex int, ratios []float64) ([]Point, error) {
	if m.SRAM == nil {
		return nil, fmt.Errorf("sweep: model has no SRAM extension")
	}
	if ipIndex < 0 || ipIndex >= len(m.SRAM.MissRatio) {
		return nil, fmt.Errorf("sweep: IP index %d out of range", ipIndex)
	}
	if len(ratios) == 0 {
		return nil, fmt.Errorf("sweep: no ratios")
	}
	out := make([]Point, 0, len(ratios))
	for _, r := range ratios {
		sram := *m.SRAM
		sram.MissRatio = append([]float64(nil), m.SRAM.MissRatio...)
		sram.MissRatio[ipIndex] = r
		vm := &core.Model{SoC: m.SoC, SRAM: &sram, Buses: m.Buses}
		res, err := vm.Evaluate(u)
		if err != nil {
			return nil, err
		}
		out = append(out, Point{X: r, Attainable: res.Attainable, Bottleneck: res.Bottleneck})
	}
	return out, nil
}

// Grid is the two-dimensional (f × intensity) study: Gables' analytic
// prediction of the whole Figure 8 family. For each intensity line, every
// work split is evaluated with I0 = I1 = I, normalized to f=0 at the
// baseline intensity.
type GridPoint struct {
	F          float64
	Intensity  units.Intensity
	Attainable units.OpsPerSec
	Normalized float64
}

// Figure8Grid evaluates the family of mixing curves on the model.
// baseline is the intensity that normalizes the grid (the paper uses 1).
func Figure8Grid(m *core.Model, fs []float64, intensities []units.Intensity, baseline units.Intensity) ([]GridPoint, error) {
	if len(fs) == 0 || len(intensities) == 0 {
		return nil, fmt.Errorf("sweep: empty grid")
	}
	base, err := core.TwoIPUsecase("baseline", 0, baseline, baseline)
	if err != nil {
		return nil, err
	}
	baseRes, err := m.Evaluate(base)
	if err != nil {
		return nil, err
	}
	if baseRes.Attainable <= 0 {
		return nil, fmt.Errorf("sweep: degenerate baseline")
	}
	var out []GridPoint
	for _, ii := range intensities {
		for _, f := range fs {
			u, err := core.TwoIPUsecase("grid", f, ii, ii)
			if err != nil {
				return nil, err
			}
			res, err := m.Evaluate(u)
			if err != nil {
				return nil, err
			}
			out = append(out, GridPoint{
				F: f, Intensity: ii, Attainable: res.Attainable,
				Normalized: float64(res.Attainable) / float64(baseRes.Attainable),
			})
		}
	}
	return out, nil
}
